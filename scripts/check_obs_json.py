#!/usr/bin/env python3
"""Schema checks for the JSON artifacts the publishing repo emits.

Validates the four artifact families against the shapes the C++ serializers
promise, so CI catches schema drift (a renamed key, a null that sneaks in, a
histogram losing its buckets) the moment it happens:

  * BENCH_<name>.json            -- bench/bench_util.h BenchJson
  * lifecycle table JSON         -- src/obs/lifecycle.cc TableToJson
  * flight-recorder dump JSON    -- src/obs/flight_recorder.cc Dump
  * metrics registry JSON        -- src/obs/metrics.cc ToJson
  * Chrome trace JSON            -- src/obs/trace.cc Tracer export
  * oracle report JSON           -- src/obs/oracle.cc ReportJson

Shared rules: no null, no true/false (the obs serializers never emit them),
and no NaN/Infinity (FormatMetricValue folds those to 0).

Usage:
  check_obs_json.py FILE...        classify each file by name/shape and check
  check_obs_json.py --selftest     run the built-in good/bad examples

Exit status 0 if every file passes, 1 otherwise.  Stdlib only.
"""

import json
import math
import os
import sys

LIFECYCLE_STAGES = {
    "sent", "on_wire", "overheard", "published", "durable",
    "delivered", "acked", "read", "replayed", "forwarded",
}

ORACLE_MONITORS = {
    "recorder_completeness", "receive_order", "duplicate_delivery",
    "durability_before_ack", "gateway_forwarding",
}


class SchemaError(Exception):
    pass


def fail(path, message):
    raise SchemaError("%s: %s" % (path, message))


def check_no_forbidden(value, path, where="$"):
    """No null, no booleans, no non-finite numbers, anywhere."""
    if value is None:
        fail(path, "null at %s" % where)
    if isinstance(value, bool):
        fail(path, "boolean at %s" % where)
    if isinstance(value, float) and not math.isfinite(value):
        fail(path, "non-finite number at %s" % where)
    if isinstance(value, dict):
        for key, child in value.items():
            check_no_forbidden(child, path, "%s.%s" % (where, key))
    elif isinstance(value, list):
        for i, child in enumerate(value):
            check_no_forbidden(child, path, "%s[%d]" % (where, i))


def require(condition, path, message):
    if not condition:
        fail(path, message)


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_bench(doc, path):
    require(isinstance(doc, dict), path, "bench artifact must be an object")
    require(isinstance(doc.get("bench"), str), path, 'missing string "bench" key')
    for key, value in doc.items():
        if key == "bench":
            continue
        require(is_number(value), path, "bench value %r must be a number" % key)


def check_stage_entry(entry, path, where):
    require(isinstance(entry, dict), path, "%s must be an object" % where)
    require(is_number(entry.get("first_ms")), path, "%s.first_ms missing" % where)
    require(is_number(entry.get("count")), path, "%s.count missing" % where)


def check_lifecycle(doc, path):
    require(isinstance(doc, dict), path, "lifecycle table must be an object")
    require(is_number(doc.get("observed")), path, 'missing numeric "observed"')
    require(is_number(doc.get("evicted")), path, 'missing numeric "evicted"')
    messages = doc.get("messages")
    require(isinstance(messages, list), path, 'missing "messages" array')
    for i, msg in enumerate(messages):
        where = "messages[%d]" % i
        require(isinstance(msg, dict), path, "%s must be an object" % where)
        require(isinstance(msg.get("id"), str), path, "%s.id missing" % where)
        for key in ("origin", "dst_node", "flags", "hops"):
            require(is_number(msg.get(key)), path, "%s.%s missing" % (where, key))
        stages = msg.get("stages")
        require(isinstance(stages, dict), path, "%s.stages missing" % where)
        for stage, entry in stages.items():
            require(stage in LIFECYCLE_STAGES, path,
                    "%s: unknown stage %r" % (where, stage))
            check_stage_entry(entry, path, "%s.stages.%s" % (where, stage))
        forwards = msg.get("forwards")
        if forwards is not None:
            require(isinstance(forwards, list), path,
                    "%s.forwards must be an array" % where)
            for j, hop in enumerate(forwards):
                fwhere = "%s.forwards[%d]" % (where, j)
                require(isinstance(hop, dict), path, "%s must be an object" % fwhere)
                for key in ("from", "to"):
                    require(is_number(hop.get(key)), path,
                            "%s.%s missing" % (fwhere, key))


def check_flight(doc, path):
    require(isinstance(doc, dict), path, "flight dump must be an object")
    require(isinstance(doc.get("reason"), str), path, 'missing string "reason"')
    require(isinstance(doc.get("detail"), str), path, 'missing string "detail"')
    require(is_number(doc.get("per_node_capacity")), path,
            'missing numeric "per_node_capacity"')
    require(is_number(doc.get("recorded")), path, 'missing numeric "recorded"')
    nodes = doc.get("nodes")
    require(isinstance(nodes, list), path, 'missing "nodes" array')
    for i, node in enumerate(nodes):
        where = "nodes[%d]" % i
        require(isinstance(node, dict), path, "%s must be an object" % where)
        require(is_number(node.get("node")), path, "%s.node missing" % where)
        events = node.get("events")
        require(isinstance(events, list), path, "%s.events missing" % where)
        last_seq = -1
        for j, event in enumerate(events):
            ewhere = "%s.events[%d]" % (where, j)
            require(isinstance(event, dict), path, "%s must be an object" % ewhere)
            for key in ("seq", "t_ms", "origin", "hop", "flags"):
                require(is_number(event.get(key)), path,
                        "%s.%s missing" % (ewhere, key))
            require(isinstance(event.get("id"), str), path, "%s.id missing" % ewhere)
            require(event.get("stage") in LIFECYCLE_STAGES, path,
                    "%s: unknown stage %r" % (ewhere, event.get("stage")))
            require(event["seq"] > last_seq, path,
                    "%s: seq not increasing within the ring" % ewhere)
            last_seq = event["seq"]


def check_metrics(doc, path):
    require(isinstance(doc, dict), path, "metrics export must be an object")
    require(set(doc) == {"counters", "gauges", "histograms"}, path,
            'top level must be exactly {"counters","gauges","histograms"}')
    for group in ("counters", "gauges"):
        require(isinstance(doc[group], dict), path, "%r must be an object" % group)
        for key, value in doc[group].items():
            require(is_number(value), path, "%s %r must be a number" % (group, key))
    require(isinstance(doc["histograms"], dict), path, '"histograms" must be an object')
    for key, value in doc["histograms"].items():
        require(isinstance(value, dict), path, "histogram %r must be an object" % key)
        for stat in ("count", "sum", "mean", "min", "max", "p50", "p99"):
            require(is_number(value.get(stat)), path,
                    "histogram %r missing %r" % (key, stat))
        buckets = value.get("buckets")
        require(isinstance(buckets, dict) and buckets, path,
                "histogram %r missing buckets" % key)
        require("inf" in buckets, path,
                "histogram %r missing the overflow bucket" % key)
        for bound, count in buckets.items():
            require(is_number(count), path,
                    "histogram %r bucket %r not a number" % (key, bound))


def check_trace(doc, path):
    require(isinstance(doc, dict), path, "trace must be an object")
    events = doc.get("traceEvents")
    require(isinstance(events, list), path, 'missing "traceEvents" array')
    for i, event in enumerate(events):
        where = "traceEvents[%d]" % i
        require(isinstance(event, dict), path, "%s must be an object" % where)
        require(isinstance(event.get("ph"), str), path, "%s.ph missing" % where)
        require(isinstance(event.get("name"), str), path, "%s.name missing" % where)
        for key in ("pid", "tid"):
            require(is_number(event.get(key)), path, "%s.%s missing" % (where, key))
    metadata = doc.get("metadata")
    require(isinstance(metadata, dict), path, 'missing "metadata" footer')
    for key in ("capacity", "droppedEvents", "retainedEvents"):
        require(is_number(metadata.get(key)), path,
                "metadata.%s missing (dropped-event accounting)" % key)


def check_oracle(doc, path):
    require(isinstance(doc, dict), path, "oracle report must be an object")
    monitors = doc.get("monitors")
    require(isinstance(monitors, dict), path, 'missing "monitors" object')
    require(set(monitors) == ORACLE_MONITORS, path,
            "monitors must be exactly %s" % sorted(ORACLE_MONITORS))
    for name, monitor in monitors.items():
        require(isinstance(monitor, dict), path, "monitor %r must be an object" % name)
        require(monitor.get("enabled") in (0, 1), path,
                "monitor %r enabled must be 0/1" % name)
        require(is_number(monitor.get("violations")), path,
                "monitor %r missing violations" % name)
    require(is_number(doc.get("total_violations")), path,
            'missing "total_violations"')
    require(isinstance(doc.get("violations"), list), path,
            'missing "violations" array')


def classify(path, doc):
    """Pick the checker from the filename, falling back to shape sniffing."""
    base = os.path.basename(path)
    if base.startswith("BENCH_"):
        return check_bench
    if "flightrec" in base or "flight" in base:
        return check_flight
    if "lifecycle" in base:
        return check_lifecycle
    if "oracle" in base:
        return check_oracle
    if "trace" in base:
        return check_trace
    if "metrics" in base:
        return check_metrics
    if isinstance(doc, dict):
        if "bench" in doc:
            return check_bench
        if "reason" in doc and "nodes" in doc:
            return check_flight
        if "messages" in doc and "observed" in doc:
            return check_lifecycle
        if "monitors" in doc and "total_violations" in doc:
            return check_oracle
        if "traceEvents" in doc:
            return check_trace
    return check_metrics


def check_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    # json.loads accepts NaN/Infinity by default; the artifacts must not.
    doc = json.loads(text, parse_constant=lambda token: fail(path, "token %r" % token))
    check_no_forbidden(doc, path)
    checker = classify(path, doc)
    checker(doc, path)
    return checker.__name__.removeprefix("check_")


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

GOOD = {
    "BENCH_example.json": '{"bench":"example","append.p99_us":12.5,"count":3}',
    "observability_lifecycle.json":
        '{"messages":[{"id":"msg(1.2#3)","origin":1,"dst_node":2,"flags":1,'
        '"hops":0,"stages":{"sent":{"first_ms":0,"count":1},'
        '"forwarded":{"first_ms":0.7,"count":1},'
        '"read":{"first_ms":1.5,"count":1}},'
        '"forwards":[{"from":0,"to":1}]}],"observed":3,"evicted":0}',
    "flightrec-1-crash_process.json":
        '{"reason":"crash_process","detail":"pid(2.2)","per_node_capacity":256,'
        '"recorded":9,"nodes":[{"node":1,"events":[{"seq":0,"t_ms":0,'
        '"stage":"sent","id":"msg(1.2#3)","origin":1,"hop":0,"flags":1},'
        '{"seq":3,"t_ms":0.5,"stage":"on_wire","id":"msg(1.2#3)","origin":1,'
        '"hop":0,"flags":1,"process":"pid(2.2)"}]}]}',
    "observability_metrics.json":
        '{"counters":{"net.frames_sent{medium=ack_ethernet}":41},'
        '"gauges":{"storage.live_bytes":1024},'
        '"histograms":{"lifecycle.since_sent_ms{stage=read}":{"count":2,'
        '"sum":3.0,"mean":1.5,"min":1,"max":2,"stddev":0.5,"p50":1,"p99":2,'
        '"buckets":{"0.001":0,"10":2,"inf":0}}}}',
    "observability_trace.json":
        '{"displayTimeUnit":"ms","traceEvents":[{"name":"msg.lifecycle",'
        '"ph":"i","ts":0,"pid":1,"tid":2,"s":"p"}],'
        '"metadata":{"capacity":65536,"droppedEvents":0,"retainedEvents":1}}',
    "oracle_report.json":
        '{"monitors":{"recorder_completeness":{"enabled":1,"violations":0},'
        '"receive_order":{"enabled":1,"violations":0},'
        '"duplicate_delivery":{"enabled":1,"violations":0},'
        '"durability_before_ack":{"enabled":0,"violations":0},'
        '"gateway_forwarding":{"enabled":1,"violations":0}},'
        '"total_violations":0,"violations":[]}',
}

BAD = {
    # Non-numeric bench value.
    "BENCH_bad.json": '{"bench":"bad","x":"fast"}',
    # null is never legal.
    "BENCH_null.json": '{"bench":"null","x":null}',
    # Unknown lifecycle stage name.
    "bad_lifecycle.json":
        '{"messages":[{"id":"m","origin":1,"dst_node":2,"flags":0,"hops":0,'
        '"stages":{"teleported":{"first_ms":0,"count":1}}}],'
        '"observed":1,"evicted":0}',
    # Ring seq must increase.
    "flightrec-bad.json":
        '{"reason":"explicit","detail":"","per_node_capacity":4,"recorded":2,'
        '"nodes":[{"node":1,"events":[{"seq":5,"t_ms":0,"stage":"sent",'
        '"id":"m","origin":1,"hop":0,"flags":0},{"seq":4,"t_ms":0,'
        '"stage":"read","id":"m","origin":1,"hop":0,"flags":0}]}]}',
    # Histogram without buckets.
    "bad_metrics.json":
        '{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,'
        '"mean":1,"min":1,"max":1,"p50":1,"p99":1}}}',
    # Trace footer must account for dropped events.
    "bad_trace.json":
        '{"displayTimeUnit":"ms","traceEvents":[],'
        '"metadata":{"capacity":8,"retainedEvents":8}}',
    # Boolean sneaking into an oracle report.
    "bad_oracle.json":
        '{"monitors":{"recorder_completeness":{"enabled":true,"violations":0},'
        '"receive_order":{"enabled":1,"violations":0},'
        '"duplicate_delivery":{"enabled":1,"violations":0},'
        '"durability_before_ack":{"enabled":1,"violations":0},'
        '"gateway_forwarding":{"enabled":1,"violations":0}},'
        '"total_violations":0,"violations":[]}',
    # Forward hops need numeric segment ids.
    "bad_forward_lifecycle.json":
        '{"messages":[{"id":"m","origin":1,"dst_node":1001,"flags":1,"hops":0,'
        '"stages":{"sent":{"first_ms":0,"count":1}},'
        '"forwards":[{"from":"zero","to":1}]}],"observed":1,"evicted":0}',
}


def selftest():
    import tempfile

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for name, text in GOOD.items():
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            try:
                kind = check_file(path)
                print("selftest: PASS %-32s (%s)" % (name, kind))
            except SchemaError as error:
                print("selftest: FAIL %s unexpectedly rejected: %s" % (name, error))
                failures += 1
        for name, text in BAD.items():
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            try:
                check_file(path)
                print("selftest: FAIL %s unexpectedly accepted" % name)
                failures += 1
            except SchemaError:
                print("selftest: PASS %-32s (rejected as expected)" % name)
    return failures


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0 if len(argv) >= 2 else 1
    if argv[1] == "--selftest":
        failures = selftest()
        print("selftest: %s" % ("OK" if failures == 0 else "%d failures" % failures))
        return 1 if failures else 0

    failures = 0
    for path in argv[1:]:
        try:
            kind = check_file(path)
            print("check_obs_json: OK %s (%s)" % (path, kind))
        except SchemaError as error:
            print("check_obs_json: SCHEMA ERROR %s" % error, file=sys.stderr)
            failures += 1
        except (OSError, json.JSONDecodeError) as error:
            print("check_obs_json: ERROR %s: %s" % (path, error), file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
