// Unit tests for the transport layer: the §4.3.3 guarantees — no
// duplication, guaranteed arrival, per-pair ordering — including under
// injected frame corruption.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/ethernet.h"
#include "src/transport/endpoint.h"

namespace publishing {
namespace {

struct Net {
  explicit Net(MediumFaults faults = {}, TransportOptions transport = {}) {
    EthernetOptions options;
    options.acknowledging = true;
    ether = std::make_unique<Ethernet>(&sim, MediumTimings{}, faults, 11, options);
    for (uint32_t node = 1; node <= 3; ++node) {
      endpoints[node] = std::make_unique<TransportEndpoint>(
          &sim, ether.get(), NodeId{node}, transport, [this, node](const Packet& packet) {
            received[node].push_back(packet);
          });
    }
  }

  Packet MakePacket(uint32_t src, uint32_t dst, uint64_t seq, uint8_t flags = kFlagGuaranteed,
                    size_t bytes = 128) {
    Packet packet;
    packet.header.id = MessageId{ProcessId{NodeId{src}, 9}, seq};
    packet.header.src_process = ProcessId{NodeId{src}, 9};
    packet.header.dst_process = ProcessId{NodeId{dst}, 9};
    packet.header.dst_node = NodeId{dst};
    packet.header.flags = flags;
    packet.body = Bytes(bytes, static_cast<uint8_t>(seq));
    return packet;
  }

  Simulator sim;
  std::unique_ptr<Ethernet> ether;
  std::map<uint32_t, std::unique_ptr<TransportEndpoint>> endpoints;
  std::map<uint32_t, std::vector<Packet>> received;
};

TEST(Transport, PacketSerializationRoundTrip) {
  Packet packet;
  packet.header.id = MessageId{ProcessId{NodeId{1}, 2}, 3};
  packet.header.src_process = ProcessId{NodeId{1}, 2};
  packet.header.dst_process = ProcessId{NodeId{4}, 5};
  packet.header.src_node = NodeId{1};
  packet.header.dst_node = NodeId{4};
  packet.header.channel = 42;
  packet.header.code = 7;
  packet.header.flags = kFlagGuaranteed | kFlagDeliverToKernel;
  packet.link_blob = {9, 8, 7};
  packet.body = {1, 2, 3, 4};

  auto parsed = ParsePacket(SerializePacket(packet));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header.id, packet.header.id);
  EXPECT_EQ(parsed->header.dst_process, packet.header.dst_process);
  EXPECT_EQ(parsed->header.channel, 42);
  EXPECT_EQ(parsed->header.code, 7u);
  EXPECT_TRUE(parsed->header.deliver_to_kernel());
  EXPECT_EQ(parsed->link_blob, packet.link_blob);
  EXPECT_EQ(parsed->body, packet.body);
}

TEST(Transport, AckSerializationRoundTrip) {
  AckPacket ack{MessageId{ProcessId{NodeId{1}, 2}, 3}, NodeId{4}, NodeId{5}};
  auto parsed = ParseAck(SerializeAck(ack));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->acked, ack.acked);
  EXPECT_EQ(parsed->from, NodeId{4});
  EXPECT_EQ(parsed->to, NodeId{5});
}

TEST(Transport, GuaranteedDeliveryOnCleanNetwork) {
  Net net;
  for (uint64_t i = 1; i <= 20; ++i) {
    net.endpoints[1]->Send(net.MakePacket(1, 2, i));
  }
  net.sim.RunFor(Seconds(10));
  EXPECT_EQ(net.received[2].size(), 20u);
  EXPECT_EQ(net.endpoints[1]->stats().retransmits, 0u);
}

TEST(Transport, OrderingPreservedPerDestination) {
  Net net;
  for (uint64_t i = 1; i <= 50; ++i) {
    net.endpoints[1]->Send(net.MakePacket(1, 2, i));
  }
  net.sim.RunFor(Seconds(30));
  ASSERT_EQ(net.received[2].size(), 50u);
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(net.received[2][i].header.id.sequence, i + 1);
  }
}

TEST(Transport, ExactlyOnceUnderReceiverCorruption) {
  MediumFaults faults;
  faults.receiver_error_rate = 0.3;  // 30% of copies damaged in flight.
  Net net(faults);
  for (uint64_t i = 1; i <= 40; ++i) {
    net.endpoints[1]->Send(net.MakePacket(1, 2, i));
  }
  net.sim.RunFor(Seconds(120));
  ASSERT_EQ(net.received[2].size(), 40u) << "guaranteed messages must all arrive";
  for (uint64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(net.received[2][i].header.id.sequence, i + 1) << "and in order";
  }
  EXPECT_GT(net.endpoints[1]->stats().retransmits, 0u);
  EXPECT_GT(net.endpoints[2]->stats().corrupt_dropped, 0u);
}

TEST(Transport, DuplicatesAreSuppressed) {
  MediumFaults faults;
  faults.receiver_error_rate = 0.3;  // Lost acks force duplicate data sends.
  Net net(faults);
  for (uint64_t i = 1; i <= 30; ++i) {
    net.endpoints[1]->Send(net.MakePacket(1, 2, i));
  }
  net.sim.RunFor(Seconds(120));
  EXPECT_EQ(net.received[2].size(), 30u);
  // Duplicates happen exactly when a data frame was resent after its ack was
  // lost; whatever the count, none may surface.
  const TransportStats& stats = net.endpoints[2]->stats();
  EXPECT_EQ(stats.data_delivered, 30u);
}

TEST(Transport, UnguaranteedMessagesAreFireAndForget) {
  MediumFaults faults;
  faults.receiver_error_rate = 1.0;  // Every copy is damaged.
  Net net(faults);
  net.endpoints[1]->Send(net.MakePacket(1, 2, 1, /*flags=*/0));
  net.sim.RunFor(Seconds(5));
  EXPECT_TRUE(net.received[2].empty());
  EXPECT_EQ(net.endpoints[1]->stats().retransmits, 0u) << "no retries for unguaranteed";
}

TEST(Transport, ReplayFlagBypassesDuplicateCache) {
  Net net;
  net.endpoints[1]->Send(net.MakePacket(1, 2, 5));
  net.sim.RunFor(Seconds(2));
  ASSERT_EQ(net.received[2].size(), 1u);
  // The same id again, flagged replay, must be delivered.
  net.endpoints[1]->Send(net.MakePacket(1, 2, 5, kFlagGuaranteed | kFlagReplay));
  net.sim.RunFor(Seconds(2));
  EXPECT_EQ(net.received[2].size(), 2u);
}

TEST(Transport, NoteDeliveredSuppressesLaterLiveCopy) {
  Net net;
  net.endpoints[2]->NoteDelivered(MessageId{ProcessId{NodeId{1}, 9}, 5});
  net.endpoints[1]->Send(net.MakePacket(1, 2, 5));
  net.sim.RunFor(Seconds(2));
  EXPECT_TRUE(net.received[2].empty());
  EXPECT_EQ(net.endpoints[2]->stats().duplicates_suppressed, 1u);
}

TEST(Transport, UnreachableDestinationDoesNotBlockOthers) {
  Net net;
  net.endpoints[3]->set_online(false);
  net.endpoints[1]->Send(net.MakePacket(1, 3, 1));  // Will retransmit forever.
  for (uint64_t i = 1; i <= 10; ++i) {
    net.endpoints[1]->Send(net.MakePacket(1, 2, 100 + i));
  }
  net.sim.RunFor(Seconds(5));
  EXPECT_EQ(net.received[2].size(), 10u) << "per-destination windows must not head-of-line block";
  EXPECT_TRUE(net.received[3].empty());
  // When node 3 comes back, the pending message completes.
  net.endpoints[3]->set_online(true);
  net.sim.RunFor(Seconds(10));
  EXPECT_EQ(net.received[3].size(), 1u);
}

TEST(Transport, ResetDropsOutstandingState) {
  Net net;
  net.endpoints[2]->set_online(false);
  net.endpoints[1]->Send(net.MakePacket(1, 2, 1));
  net.sim.RunFor(Seconds(1));
  net.endpoints[1]->Reset();
  net.endpoints[2]->set_online(true);
  net.sim.RunFor(Seconds(10));
  // The reset dropped the in-flight packet; nothing arrives.
  EXPECT_TRUE(net.received[2].empty());
}

class TransportWindowSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TransportWindowSweep, AllWindowSizesPreserveOrderAndDelivery) {
  TransportOptions transport;
  transport.window = GetParam();
  MediumFaults faults;
  faults.receiver_error_rate = 0.1;
  Net net(faults, transport);
  for (uint64_t i = 1; i <= 30; ++i) {
    net.endpoints[1]->Send(net.MakePacket(1, 2, i));
  }
  net.sim.RunFor(Seconds(120));
  ASSERT_EQ(net.received[2].size(), 30u);
  if (GetParam() == 1) {
    for (uint64_t i = 0; i < 30; ++i) {
      EXPECT_EQ(net.received[2][i].header.id.sequence, i + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, TransportWindowSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace publishing
