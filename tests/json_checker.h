// A minimal JSON validator for the subset src/obs emits: objects, arrays,
// strings (with escapes), and numbers.  Enough to catch unbalanced braces,
// trailing commas, and unescaped quotes.  Shared by the obs/lifecycle test
// binaries; deliberately NOT a full parser (no null/bool — the obs
// serializers never emit them, and a checker that accepted them would stop
// catching that drift).

#ifndef TESTS_JSON_CHECKER_H_
#define TESTS_JSON_CHECKER_H_

#include <cctype>
#include <cstddef>
#include <string_view>

namespace publishing {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace publishing

#endif  // TESTS_JSON_CHECKER_H_
