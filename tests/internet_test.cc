// Multi-segment internetwork tests (DESIGN.md §13): SegmentMap routing and
// supervisor reroutes, gateway store-and-forward with bounded queues, the
// home-segment publish-responsibility partition, the oracle's
// gateway_forwarding monitor, and chaos runs that partition a gateway
// mid-traffic and crash a per-segment recorder.

#include <gtest/gtest.h>

#include <string>

#include "src/internet/internet.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/lifecycle.h"
#include "src/obs/observability.h"
#include "src/obs/oracle.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

// ---------------------------------------------------------------------------
// SegmentMap unit tests
// ---------------------------------------------------------------------------

// Four segments in a ring: 0-1-2-3 chained by gateways 0..2, gateway 3
// closing 3-0.
SegmentMap RingMap4() {
  SegmentMap map;
  for (size_t k = 0; k < 4; ++k) {
    map.AddSegment(NodeId{static_cast<uint32_t>(k) * 1000});
  }
  for (size_t k = 0; k < 3; ++k) {
    map.AddGateway(NodeId{900000u + static_cast<uint32_t>(k)}, {k, k + 1});
  }
  map.AddGateway(NodeId{900003}, {3, 0});
  return map;
}

TEST(SegmentMap, HomesAndUnknownNodes) {
  SegmentMap map = RingMap4();
  map.AssignNode(NodeId{1001}, 1);
  EXPECT_EQ(map.SegmentOf(NodeId{1001}), 1);
  EXPECT_EQ(map.SegmentOf(NodeId{0}), 0);     // Recorder nodes are auto-homed.
  EXPECT_EQ(map.SegmentOf(NodeId{2000}), 2);
  EXPECT_EQ(map.SegmentOf(NodeId{900000}), -1);  // Gateways have no segment.
  EXPECT_EQ(map.SegmentOf(NodeId{424242}), -1);
}

TEST(SegmentMap, ShortestPathWithLowestGatewayTieBreak) {
  SegmentMap map = RingMap4();
  auto hop01 = map.Route(0, 1);
  ASSERT_TRUE(hop01.has_value());
  EXPECT_EQ(hop01->gateway, 0u);
  EXPECT_EQ(hop01->egress, 1u);
  // 0 -> 2 is two hops either way; BFS expands gateway 0 before gateway 3,
  // so the chain direction wins deterministically.
  auto hop02 = map.Route(0, 2);
  ASSERT_TRUE(hop02.has_value());
  EXPECT_EQ(hop02->gateway, 0u);
  EXPECT_EQ(hop02->egress, 1u);
  // 0 -> 3 is one hop through the ring-closing gateway.
  auto hop03 = map.Route(0, 3);
  ASSERT_TRUE(hop03.has_value());
  EXPECT_EQ(hop03->gateway, 3u);
  EXPECT_EQ(hop03->egress, 3u);
  // Self-routes and out-of-range segments have no next hop.
  EXPECT_FALSE(map.Route(2, 2).has_value());
  EXPECT_FALSE(map.Route(0, 7).has_value());
}

TEST(SegmentMap, DownGatewayReroutesAroundTheRing) {
  SegmentMap map = RingMap4();
  map.SetGatewayUp(0, false);
  // 0 -> 1 must now go the long way: 0 -> 3 -> 2 -> 1.
  auto hop = map.Route(0, 1);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->gateway, 3u);
  EXPECT_EQ(hop->egress, 3u);
  auto hop32 = map.Route(3, 2);
  ASSERT_TRUE(hop32.has_value());
  EXPECT_EQ(hop32->gateway, 2u);
  map.SetGatewayUp(0, true);
  EXPECT_EQ(map.Route(0, 1)->gateway, 0u);
}

TEST(SegmentMap, ChainPartitionLeavesSegmentsUnreachable) {
  SegmentMap map;
  for (size_t k = 0; k < 3; ++k) {
    map.AddSegment(NodeId{static_cast<uint32_t>(k) * 1000});
  }
  map.AddGateway(NodeId{900000}, {0, 1});
  map.AddGateway(NodeId{900001}, {1, 2});
  ASSERT_TRUE(map.Route(0, 2).has_value());
  map.SetGatewayUp(1, false);
  EXPECT_FALSE(map.Route(0, 2).has_value());  // No path: chain, not ring.
  EXPECT_TRUE(map.Route(0, 1).has_value());
}

// ---------------------------------------------------------------------------
// Stage / monitor naming
// ---------------------------------------------------------------------------

TEST(InternetNaming, ForwardedStageAndGatewayMonitor) {
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kForwarded), "forwarded");
  EXPECT_STREQ(OracleMonitorName(OracleMonitor::kGatewayForwarding),
               "gateway_forwarding");
}

// ---------------------------------------------------------------------------
// Oracle gateway_forwarding monitor (synthetic event feed)
// ---------------------------------------------------------------------------

// Nodes 0..999 home on segment 0, 1000..1999 on segment 1; everything else
// (gateways) outside.
int32_t TwoSegmentResolver(NodeId node) {
  if (node.value < 1000) {
    return 0;
  }
  if (node.value < 2000) {
    return 1;
  }
  return -1;
}

LifecycleEvent MakeEvent(LifecycleStage stage, NodeId node, uint32_t hop = 0,
                         uint8_t flags = kCausalGuaranteed) {
  LifecycleEvent event;
  event.ctx.id = MessageId{NodeId{1}, 7};
  event.ctx.origin = NodeId{1};
  event.ctx.hop = hop;
  event.ctx.flags = flags;
  event.stage = stage;
  event.node = node;
  return event;
}

LifecycleEvent MakeForward(uint32_t hop, int32_t from, int32_t to) {
  LifecycleEvent event = MakeEvent(LifecycleStage::kForwarded, NodeId{900000}, hop);
  event.from_segment = from;
  event.to_segment = to;
  return event;
}

TEST(GatewayForwardingOracle, DuplicateForwardAcrossSamePairIsFlagged) {
  InvariantOracle oracle(OracleOptions{.policy = OraclePolicy::kCount});
  oracle.SetSegmentResolver(TwoSegmentResolver);
  oracle.OnEvent(MakeEvent(LifecycleStage::kOnWire, NodeId{1}));
  oracle.OnEvent(MakeForward(0, 0, 1));
  EXPECT_EQ(oracle.total_violations(), 0u);
  // The same attempt crossing the same segment pair again = duplication.
  oracle.OnEvent(MakeForward(0, 0, 1));
  EXPECT_EQ(oracle.violations(OracleMonitor::kGatewayForwarding), 1u);
  // A retransmission (new hop) legitimately crosses the same pair.
  oracle.OnEvent(MakeForward(1, 0, 1));
  EXPECT_EQ(oracle.violations(OracleMonitor::kGatewayForwarding), 1u);
}

TEST(GatewayForwardingOracle, CrossSegmentDeliveryWithoutForwardIsFlagged) {
  InvariantOracle oracle(OracleOptions{.policy = OraclePolicy::kCount});
  oracle.SetSegmentResolver(TwoSegmentResolver);
  oracle.OnEvent(MakeEvent(LifecycleStage::kOnWire, NodeId{1}));
  // Published by segment 1's recorder, so per-segment completeness is
  // satisfied — but the frame never crossed a gateway.
  oracle.OnEvent(MakeEvent(LifecycleStage::kPublished, NodeId{1000}));
  oracle.OnEvent(MakeEvent(LifecycleStage::kDurable, NodeId{1000}));
  oracle.OnEvent(MakeEvent(LifecycleStage::kDelivered, NodeId{1001}));
  EXPECT_EQ(oracle.violations(OracleMonitor::kGatewayForwarding), 1u);
}

TEST(GatewayForwardingOracle, PerSegmentCompletenessScopesThePublisher) {
  InvariantOracle oracle(OracleOptions{.policy = OraclePolicy::kCount});
  oracle.SetSegmentResolver(TwoSegmentResolver);
  oracle.OnEvent(MakeEvent(LifecycleStage::kOnWire, NodeId{1}));
  // Published only by segment 0's recorder, then delivered on segment 1:
  // globally published, but not by the responsible recorder.
  oracle.OnEvent(MakeEvent(LifecycleStage::kPublished, NodeId{0}));
  oracle.OnEvent(MakeEvent(LifecycleStage::kDurable, NodeId{0}));
  oracle.OnEvent(MakeForward(0, 0, 1));
  oracle.OnEvent(MakeEvent(LifecycleStage::kDelivered, NodeId{1001}));
  EXPECT_EQ(oracle.violations(OracleMonitor::kRecorderCompleteness), 1u);
  EXPECT_EQ(oracle.violations(OracleMonitor::kGatewayForwarding), 0u);
}

TEST(GatewayForwardingOracle, ForwardedButNeverDeliveredIsFlaggedAtQuiescence) {
  InvariantOracle oracle(OracleOptions{.policy = OraclePolicy::kCount});
  oracle.SetSegmentResolver(TwoSegmentResolver);
  oracle.OnEvent(MakeEvent(LifecycleStage::kOnWire, NodeId{1}));
  oracle.OnEvent(MakeEvent(LifecycleStage::kPublished, NodeId{0}));
  oracle.OnEvent(MakeEvent(LifecycleStage::kPublished, NodeId{1000}));
  oracle.OnEvent(MakeForward(0, 0, 1));
  oracle.CheckQuiescent();
  EXPECT_EQ(oracle.violations(OracleMonitor::kGatewayForwarding), 1u);
  EXPECT_NE(oracle.ReportJson().find("gateway_forwarding"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Internet integration
// ---------------------------------------------------------------------------

InternetConfig BaseConfig(size_t segments, size_t nodes_per_segment = 2) {
  InternetConfig config;
  config.segments = segments;
  config.nodes_per_segment = nodes_per_segment;
  config.seed = 17;
  return config;
}

void RegisterPrograms(Internet& net, uint64_t ping_target) {
  net.registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  net.registry().Register(
      "pinger", [ping_target] { return std::make_unique<PingerProgram>(ping_target); });
}

const PingerProgram* PingerAt(Internet& net, NodeId node, const ProcessId& pid) {
  return dynamic_cast<const PingerProgram*>(net.kernel(node)->ProgramFor(pid));
}

// Full observability stack around an Internet, mirroring the single-segment
// ObsSystem harness.
struct ObsInternet {
  MetricsRegistry registry;
  InvariantOracle oracle;
  FlightRecorder flight;
  Internet net;
  Tracer tracer;
  LifecycleTracker lifecycle;

  explicit ObsInternet(const InternetConfig& config)
      : oracle(OracleOptions{.policy = OraclePolicy::kCount}),
        net(config),
        tracer(&net.sim()),
        lifecycle(&net.sim()) {
    lifecycle.AttachTracer(&tracer);
    lifecycle.AttachMetrics(&registry);
    lifecycle.AttachOracle(&oracle);
    lifecycle.AttachFlightRecorder(&flight);
    oracle.AttachFlightRecorder(&flight);
    oracle.AttachMetrics(&registry);

    Observability obs;
    obs.metrics = &registry;
    obs.tracer = &tracer;
    obs.lifecycle = &lifecycle;
    net.EnableObservability(obs);
  }
};

// A cross-segment ping-pong: the pinger's sends are published by its home
// recorder (watermarks + messages addressed into segment 0) and the echo's
// home recorder publishes the pings addressed to it — both storages fill,
// each recorder skips the direction it is not responsible for.
TEST(Internet, CrossSegmentPingPongPublishesOnBothHomes) {
  ObsInternet obs(BaseConfig(2));
  Internet& net = obs.net;
  RegisterPrograms(net, 20);
  auto echo = net.Spawn(Internet::ProcessingNode(1, 0), "echo");
  ASSERT_TRUE(echo.ok());
  auto pinger =
      net.Spawn(Internet::ProcessingNode(0, 0), "pinger", {Link{*echo, 1, 0, 0}});
  ASSERT_TRUE(pinger.ok());

  net.RunFor(Seconds(30));

  const PingerProgram* p = PingerAt(net, Internet::ProcessingNode(0, 0), *pinger);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->received(), 20u);

  // Both home recorders published their side of the conversation...
  EXPECT_GT(net.recorder(0).stats().messages_published, 0u);
  EXPECT_GT(net.recorder(1).stats().messages_published, 0u);
  EXPECT_GT(net.storage(0).messages_stored(), 0u);
  EXPECT_GT(net.storage(1).messages_stored(), 0u);
  // ...and each skipped the frames whose destination homes elsewhere.
  EXPECT_GT(net.recorder(0).stats().foreign_dst_skipped, 0u);
  EXPECT_GT(net.recorder(1).stats().foreign_dst_skipped, 0u);

  // With two parallel gateways (ring of 2), the lowest index owns the flow.
  EXPECT_GT(net.gateway(0).stats().frames_forwarded, 0u);
  EXPECT_EQ(net.gateway(1).stats().frames_forwarded, 0u);
  EXPECT_GT(net.gateway(1).stats().ignored_not_owner, 0u);

  // The lifecycle table records the gateway crossings.
  EXPECT_NE(obs.lifecycle.TableToJson().find("\"forwards\":[{\"from\":0,\"to\":1}]"),
            std::string::npos);

  obs.oracle.CheckQuiescent();
  EXPECT_EQ(obs.oracle.total_violations(), 0u) << obs.oracle.ReportJson();
}

// Transit frames (neither endpoint homed on the observing segment) must pass
// through a middle segment without being recorded or vetoed there.
TEST(Internet, TransitFramesAreNotRecordedByMiddleSegments) {
  InternetConfig config = BaseConfig(3);
  config.ring_topology = false;  // Chain 0-1-2: traffic 0<->2 transits 1.
  ObsInternet obs(config);
  Internet& net = obs.net;
  RegisterPrograms(net, 10);
  auto echo = net.Spawn(Internet::ProcessingNode(2, 0), "echo");
  ASSERT_TRUE(echo.ok());
  auto pinger =
      net.Spawn(Internet::ProcessingNode(0, 0), "pinger", {Link{*echo, 1, 0, 0}});
  ASSERT_TRUE(pinger.ok());

  net.RunFor(Seconds(60));

  const PingerProgram* p = PingerAt(net, Internet::ProcessingNode(0, 0), *pinger);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->received(), 10u);
  // Segment 1 saw every crossing frame but published none of them.
  EXPECT_GT(net.recorder(1).stats().transit_skipped, 0u);
  EXPECT_EQ(net.recorder(1).stats().messages_published, 0u);
  EXPECT_EQ(net.storage(1).messages_stored(), 0u);
  // Two crossings per direction show up in the lifecycle forward lists.
  EXPECT_NE(obs.lifecycle.TableToJson().find(
                "\"forwards\":[{\"from\":0,\"to\":1},{\"from\":1,\"to\":2}]"),
            std::string::npos);

  obs.oracle.CheckQuiescent();
  EXPECT_EQ(obs.oracle.total_violations(), 0u) << obs.oracle.ReportJson();
}

// A one-frame gateway queue under a burst of traffic must drop (bounded
// store-and-forward) and the end-to-end retransmission must still complete
// every conversation with a clean oracle.
TEST(Internet, QueueOverflowBackPressureIsRecoveredByRetransmission) {
  InternetConfig config = BaseConfig(2, /*nodes_per_segment=*/4);
  config.gateway.max_queue_frames = 1;
  config.gateway.forward_latency = MillisF(5.0);  // Slow gateway: queue builds.
  ObsInternet obs(config);
  Internet& net = obs.net;
  RegisterPrograms(net, 10);

  std::vector<ProcessId> pingers;
  for (size_t i = 0; i < 4; ++i) {
    auto echo = net.Spawn(Internet::ProcessingNode(1, i), "echo");
    ASSERT_TRUE(echo.ok());
    auto pinger = net.Spawn(Internet::ProcessingNode(0, i), "pinger",
                            {Link{*echo, 1, 0, 0}});
    ASSERT_TRUE(pinger.ok());
    pingers.push_back(*pinger);
  }

  net.RunFor(Seconds(120));

  for (size_t i = 0; i < pingers.size(); ++i) {
    const PingerProgram* p =
        PingerAt(net, Internet::ProcessingNode(0, i), pingers[i]);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->received(), 10u) << "pinger " << i;
  }
  EXPECT_GT(net.gateway(0).stats().dropped_queue_full, 0u)
      << "a one-frame queue under 4 concurrent conversations must overflow";

  obs.oracle.CheckQuiescent();
  EXPECT_EQ(obs.oracle.total_violations(), 0u) << obs.oracle.ReportJson();
}

// Chaos: partition the owning gateway mid-traffic on a 4-segment ring.  The
// supervisor reroutes and traffic finishes the long way around; the oracle
// stays clean throughout.
TEST(Internet, GatewayPartitionMidTrafficReroutesAroundTheRing) {
  ObsInternet obs(BaseConfig(4));
  Internet& net = obs.net;
  RegisterPrograms(net, 30);
  auto echo = net.Spawn(Internet::ProcessingNode(1, 0), "echo");
  ASSERT_TRUE(echo.ok());
  auto pinger =
      net.Spawn(Internet::ProcessingNode(0, 0), "pinger", {Link{*echo, 1, 0, 0}});
  ASSERT_TRUE(pinger.ok());

  net.RunFor(Millis(200));
  const PingerProgram* p = PingerAt(net, Internet::ProcessingNode(0, 0), *pinger);
  ASSERT_NE(p, nullptr);
  const uint64_t before = p->received();
  EXPECT_GT(before, 0u);
  EXPECT_LT(before, 30u) << "the fault must land mid-conversation";

  // Gateway 0 carries 0<->1; partition it.  The route becomes 0-3-2-1.
  net.SetGatewayUp(0, false);
  net.RunFor(Seconds(120));

  EXPECT_EQ(p->received(), 30u);
  EXPECT_GT(net.gateway(3).stats().frames_forwarded, 0u);
  EXPECT_GT(net.gateway(2).stats().frames_forwarded, 0u);
  EXPECT_GT(net.gateway(1).stats().frames_forwarded, 0u);

  obs.oracle.CheckQuiescent();
  EXPECT_EQ(obs.oracle.total_violations(), 0u) << obs.oracle.ReportJson();
}

// The blackhole window: the gateway dies but the supervisor has not rerouted
// yet, so frames routed through it are dropped and counted; once the map is
// updated the conversation completes.
TEST(Internet, DeadGatewayBlackholesUntilTheSupervisorReroutes) {
  ObsInternet obs(BaseConfig(4));
  Internet& net = obs.net;
  RegisterPrograms(net, 40);
  auto echo = net.Spawn(Internet::ProcessingNode(1, 0), "echo");
  ASSERT_TRUE(echo.ok());
  auto pinger =
      net.Spawn(Internet::ProcessingNode(0, 0), "pinger", {Link{*echo, 1, 0, 0}});
  ASSERT_TRUE(pinger.ok());

  net.RunFor(Millis(100));
  {
    const PingerProgram* p =
        PingerAt(net, Internet::ProcessingNode(0, 0), *pinger);
    ASSERT_NE(p, nullptr);
    ASSERT_LT(p->received(), 40u) << "the fault must land mid-conversation";
  }
  // Fault without the supervisor noticing: frames keep routing into the
  // dead gateway and die there.
  net.gateway(0).SetDown(true);
  net.RunFor(Seconds(2));
  EXPECT_GT(net.gateway(0).stats().dropped_down, 0u);

  // Supervisor catches up; retransmissions take the long way and finish.
  net.map().SetGatewayUp(0, false);
  net.RunFor(Seconds(120));
  const PingerProgram* p = PingerAt(net, Internet::ProcessingNode(0, 0), *pinger);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->received(), 40u);

  obs.oracle.CheckQuiescent();
  EXPECT_EQ(obs.oracle.total_violations(), 0u) << obs.oracle.ReportJson();
}

// Chaos: crash a per-segment recorder mid-traffic, restart it, then crash a
// process homed on that segment.  Recovery must replay from the home
// segment's recorder (its manager completes the recovery; the other segment's
// manager is never involved).
TEST(Internet, RecorderCrashThenProcessRecoveryFromHomeSegment) {
  ObsInternet obs(BaseConfig(2));
  Internet& net = obs.net;
  RegisterPrograms(net, 40);
  auto echo = net.Spawn(Internet::ProcessingNode(1, 0), "echo");
  ASSERT_TRUE(echo.ok());
  auto pinger =
      net.Spawn(Internet::ProcessingNode(0, 0), "pinger", {Link{*echo, 1, 0, 0}});
  ASSERT_TRUE(pinger.ok());

  net.RunFor(Millis(300));
  // Segment 1's recorder goes down and comes back; its stable storage
  // survives the crash (the paper's recorder restart model).
  net.CrashRecorder(1);
  net.RunFor(Millis(100));
  net.RestartRecorder(1);
  net.RunFor(Millis(300));

  // Now kill the echo process (homed on segment 1) and let its home
  // segment's manager recover it.
  ASSERT_TRUE(net.CrashProcess(*echo).ok());
  ASSERT_TRUE(net.RunUntilRecovered(*echo, Seconds(600)));
  net.RunFor(Seconds(120));

  const PingerProgram* p = PingerAt(net, Internet::ProcessingNode(0, 0), *pinger);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->received(), 40u);
  EXPECT_EQ(net.recovery(1).stats().process_recoveries_completed, 1u);
  EXPECT_EQ(net.recovery(0).stats().process_recoveries_started, 0u)
      << "the crash is segment 1's responsibility alone";

  obs.oracle.CheckQuiescent();
  EXPECT_EQ(obs.oracle.total_violations(), 0u) << obs.oracle.ReportJson();
}

// A single-segment Internet behaves like a plain cluster: no gateways, no
// forwards, and the partition function is a no-op that skips nothing.
TEST(Internet, SingleSegmentDegeneratesToACluster) {
  ObsInternet obs(BaseConfig(1));
  Internet& net = obs.net;
  RegisterPrograms(net, 10);
  auto echo = net.Spawn(Internet::ProcessingNode(0, 1), "echo");
  ASSERT_TRUE(echo.ok());
  auto pinger =
      net.Spawn(Internet::ProcessingNode(0, 0), "pinger", {Link{*echo, 1, 0, 0}});
  ASSERT_TRUE(pinger.ok());

  net.RunFor(Seconds(30));

  const PingerProgram* p = PingerAt(net, Internet::ProcessingNode(0, 0), *pinger);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->received(), 10u);
  EXPECT_EQ(net.gateway_count(), 0u);
  EXPECT_EQ(net.recorder(0).stats().transit_skipped, 0u);
  EXPECT_EQ(net.recorder(0).stats().foreign_dst_skipped, 0u);

  obs.oracle.CheckQuiescent();
  EXPECT_EQ(obs.oracle.total_violations(), 0u) << obs.oracle.ReportJson();
}

}  // namespace
}  // namespace publishing
