// Durable-mode integration tests: the acceptance path for src/storage.
//
// The paper's §4.5 claim — "it is possible to rebuild the data base from the
// disk" — made literal: a PublishingSystem journaling through a Wal is
// destroyed outright, its StableStorage reconstructed from the on-disk
// segments alone, and a brand-new system adopting that image completes a
// full §3.3.3 recovery of every process via the recorder-restart protocol
// (§3.3.4): fresh kernels answer the state queries with "unknown", which
// triggers recreation, checkpoint restore, and ordered replay.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/publishing_system.h"
#include "src/core/recorder_group.h"
#include "src/storage/recovered_db.h"
#include "src/storage/wal.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(testing::TempDir()) / ("pub_durable_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

PublishingSystemConfig BaseConfig() {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  config.cluster.seed = 42;
  return config;
}

void RegisterPrograms(PublishingSystem& system, uint64_t ping_target) {
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register(
      "pinger", [ping_target] { return std::make_unique<PingerProgram>(ping_target); });
}

const PingerProgram* PingerAt(PublishingSystem& system, NodeId node, const ProcessId& pid) {
  return dynamic_cast<const PingerProgram*>(system.cluster().kernel(node)->ProgramFor(pid));
}

const EchoProgram* EchoAt(PublishingSystem& system, NodeId node, const ProcessId& pid) {
  return dynamic_cast<const EchoProgram*>(system.cluster().kernel(node)->ProgramFor(pid));
}

// The acceptance test: destroy the recorder AND every process, rebuild from
// segments alone, and finish the workload in a fresh system.
TEST(DurableRecovery, SystemRebuiltFromDiskCompletesRecovery) {
  const std::string dir = TestDir("rebuild");
  constexpr uint64_t kPings = 30;
  ProcessId echo_pid;
  ProcessId pinger_pid;
  uint64_t pings_before_crash = 0;

  // --- Incarnation 1: durable mode, crash mid-run, destroy everything ---
  {
    WalOptions options;
    options.dir = dir;
    options.group_commit_records = 8;
    auto wal = Wal::Open(options);
    ASSERT_TRUE(wal.ok());

    auto config = BaseConfig();
    config.storage_backend = wal->get();
    PublishingSystem system(config);
    RegisterPrograms(system, kPings);
    auto echo = system.cluster().Spawn(NodeId{2}, "echo");
    ASSERT_TRUE(echo.ok());
    auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 7, 0}});
    ASSERT_TRUE(pinger.ok());
    echo_pid = *echo;
    pinger_pid = *pinger;

    system.RunFor(Millis(120));
    const PingerProgram* p = PingerAt(system, NodeId{1}, pinger_pid);
    ASSERT_NE(p, nullptr);
    pings_before_crash = p->received();
    ASSERT_GT(pings_before_crash, 0u) << "some progress must be on disk";
    ASSERT_LT(pings_before_crash, kPings) << "crash must land mid-run";

    // Crash the server, then tear the WHOLE system down — recorder, kernels,
    // processes, volatile state, everything.  Only the segment files remain.
    ASSERT_TRUE(system.CrashProcess(echo_pid).ok());
    ASSERT_TRUE(system.storage().Flush().ok());
  }

  // --- Rebuild: the database comes back from the segments alone ---
  RecoveryReport report;
  auto recovered = RecoverStableStorage(dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_GT(report.records_applied, 0u);
  ASSERT_TRUE(recovered->Knows(echo_pid));
  ASSERT_TRUE(recovered->Knows(pinger_pid));
  EXPECT_GT(recovered->messages_stored(), 0u);

  // --- Incarnation 2: adopt the image, restart the recorder, recover ---
  WalOptions options;
  options.dir = dir;  // The reopened log continues after the old segments.
  options.group_commit_records = 8;
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());

  auto config = BaseConfig();
  config.adopt_storage = &*recovered;
  config.storage_backend = wal->get();
  PublishingSystem system(config);
  RegisterPrograms(system, kPings);

  // §3.3.4: the restart protocol queries every node about every process in
  // the database.  These kernels are brand new, so every answer is
  // "unknown" — which mandates recovery for pinger and echo both.
  system.CrashRecorder();
  system.RestartRecorder();
  EXPECT_GT(system.storage().restart_number(), 0u);
  system.RunFor(Seconds(240));

  const PingerProgram* p = PingerAt(system, NodeId{1}, pinger_pid);
  ASSERT_NE(p, nullptr) << "pinger must be recreated by recovery";
  const EchoProgram* e = EchoAt(system, NodeId{2}, echo_pid);
  ASSERT_NE(e, nullptr) << "echo must be recreated by recovery";
  EXPECT_EQ(p->sent(), kPings);
  EXPECT_EQ(p->received(), kPings) << "replayed past + live traffic must finish the run";
  EXPECT_EQ(e->echoed(), kPings) << "resend suppression must keep echo exactly-once";
  EXPECT_GE(system.recovery().stats().process_recoveries_completed, 2u);
}

// Same flow but with a checkpoint in the log: the rebuilt database must
// restore from the checkpoint, not from the initial image.
TEST(DurableRecovery, RebuiltDatabaseCarriesCheckpoints) {
  const std::string dir = TestDir("rebuild_ckpt");
  constexpr uint64_t kPings = 40;
  ProcessId echo_pid;
  ProcessId pinger_pid;

  {
    WalOptions options;
    options.dir = dir;
    options.group_commit_records = 4;
    auto wal = Wal::Open(options);
    ASSERT_TRUE(wal.ok());

    auto config = BaseConfig();
    config.storage_backend = wal->get();
    PublishingSystem system(config);
    RegisterPrograms(system, kPings);
    auto echo = system.cluster().Spawn(NodeId{2}, "echo");
    ASSERT_TRUE(echo.ok());
    auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 7, 0}});
    ASSERT_TRUE(pinger.ok());
    echo_pid = *echo;
    pinger_pid = *pinger;

    system.RunFor(Millis(150));
    // Checkpoint both processes mid-run, then keep going a little.
    ASSERT_TRUE(system.cluster().kernel(NodeId{2})->CheckpointProcess(echo_pid).ok());
    ASSERT_TRUE(system.cluster().kernel(NodeId{1})->CheckpointProcess(pinger_pid).ok());
    system.RunFor(Millis(100));
    ASSERT_TRUE(system.storage().Flush().ok());
  }

  auto recovered = RecoverStableStorage(dir);
  ASSERT_TRUE(recovered.ok());
  auto info = recovered->Info(echo_pid);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->has_checkpoint) << "the checkpoint must survive the rebuild";

  WalOptions reopen;
  reopen.dir = dir;
  auto wal = Wal::Open(reopen);
  ASSERT_TRUE(wal.ok());
  auto config = BaseConfig();
  config.adopt_storage = &*recovered;
  config.storage_backend = wal->get();
  PublishingSystem system(config);
  RegisterPrograms(system, kPings);
  system.CrashRecorder();
  system.RestartRecorder();
  system.RunFor(Seconds(240));

  const PingerProgram* p = PingerAt(system, NodeId{1}, pinger_pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->received(), kPings);
  const EchoProgram* e = EchoAt(system, NodeId{2}, echo_pid);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->echoed(), kPings);
}

// §6.3 durable replicas: each RecorderGroup member journals into its own
// log directory, and each directory alone is enough to rebuild that
// member's database.
TEST(DurableRecovery, RecorderGroupMembersKeepIndependentDurableLogs) {
  const std::string dir0 = TestDir("group_m0");
  const std::string dir1 = TestDir("group_m1");
  ProcessId echo_pid;
  ProcessId pinger_pid;
  {
    ClusterConfig config;
    config.node_count = 2;
    config.start_system_processes = false;
    config.seed = 5;
    Cluster cluster(config);
    cluster.registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
    cluster.registry().Register("pinger",
                                [] { return std::make_unique<PingerProgram>(25); });
    RecorderGroup group(&cluster, 2, RecoveryManagerOptions{},
                        [&](size_t index) -> std::unique_ptr<StorageBackend> {
                          WalOptions options;
                          options.dir = index == 0 ? dir0 : dir1;
                          options.group_commit_records = 8;
                          auto wal = Wal::Open(options);
                          return wal.ok() ? std::move(*wal) : nullptr;
                        });
    echo_pid = *cluster.Spawn(NodeId{2}, "echo");
    pinger_pid = *cluster.Spawn(NodeId{1}, "pinger", {Link{echo_pid, 1, 0, 0}});
    cluster.sim().RunFor(Seconds(60));
    ASSERT_TRUE(group.storage(0).Flush().ok());
    ASSERT_TRUE(group.storage(1).Flush().ok());
    ASSERT_EQ(group.storage(0).messages_stored(), group.storage(1).messages_stored());
  }
  for (const std::string& dir : {dir0, dir1}) {
    SCOPED_TRACE(dir);
    auto recovered = RecoverStableStorage(dir);
    ASSERT_TRUE(recovered.ok());
    EXPECT_TRUE(recovered->Knows(echo_pid));
    EXPECT_TRUE(recovered->Knows(pinger_pid));
    EXPECT_GT(recovered->messages_stored(), 0u);
  }
}

}  // namespace
}  // namespace publishing
