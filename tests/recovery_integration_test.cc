// End-to-end crash/recovery tests across the whole stack: medium, transport,
// kernel, recorder, recovery manager.  These are the tests that check the
// paper's core claim — a crashed deterministic process, restored from a
// checkpoint (or its initial image) and replayed its published messages,
// is indistinguishable from one that never crashed.

#include <gtest/gtest.h>

#include "src/core/publishing_system.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

PublishingSystemConfig BaseConfig(size_t nodes = 2) {
  PublishingSystemConfig config;
  config.cluster.node_count = nodes;
  config.cluster.start_system_processes = false;
  config.cluster.seed = 42;
  return config;
}

void RegisterPrograms(PublishingSystem& system, uint64_t ping_target = 10) {
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register(
      "pinger", [ping_target] { return std::make_unique<PingerProgram>(ping_target); });
  system.cluster().registry().Register("accumulator",
                                       [] { return std::make_unique<AccumulatorProgram>(); });
}

const PingerProgram* PingerAt(PublishingSystem& system, NodeId node, const ProcessId& pid) {
  return dynamic_cast<const PingerProgram*>(system.cluster().kernel(node)->ProgramFor(pid));
}

const EchoProgram* EchoAt(PublishingSystem& system, NodeId node, const ProcessId& pid) {
  return dynamic_cast<const EchoProgram*>(system.cluster().kernel(node)->ProgramFor(pid));
}

TEST(RecoveryIntegration, PingPongCompletesWithoutFaults) {
  PublishingSystem system(BaseConfig());
  RegisterPrograms(system, 20);

  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  ASSERT_TRUE(echo.ok());
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger",
                                       {Link{*echo, /*channel=*/1, /*code=*/7, 0}});
  ASSERT_TRUE(pinger.ok());

  system.RunFor(Seconds(60));
  const PingerProgram* p = PingerAt(system, NodeId{1}, *pinger);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->sent(), 20u);
  EXPECT_EQ(p->received(), 20u);
  EXPECT_GT(system.recorder().stats().messages_published, 0u);
}

TEST(RecoveryIntegration, ServerCrashRecoversFromInitialImage) {
  PublishingSystem system(BaseConfig());
  RegisterPrograms(system, 30);

  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  ASSERT_TRUE(echo.ok());
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 7, 0}});
  ASSERT_TRUE(pinger.ok());

  system.RunFor(Millis(120));
  const PingerProgram* p_mid = PingerAt(system, NodeId{1}, *pinger);
  ASSERT_NE(p_mid, nullptr);
  ASSERT_GT(p_mid->received(), 0u);
  ASSERT_LT(p_mid->received(), 30u) << "crash must land mid-run to be interesting";

  ASSERT_TRUE(system.CrashProcess(*echo).ok());
  ASSERT_TRUE(system.RunUntilRecovered(*echo, Seconds(120)));
  system.RunFor(Seconds(120));

  const PingerProgram* p = PingerAt(system, NodeId{1}, *pinger);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->received(), 30u) << "recovered server must serve the remaining pings";
  const EchoProgram* e = EchoAt(system, NodeId{2}, *echo);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->echoed(), 30u) << "replay + live traffic must deliver each ping exactly once";
}

TEST(RecoveryIntegration, ClientCrashRecoversAndFinishes) {
  PublishingSystem system(BaseConfig());
  RegisterPrograms(system, 25);

  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  ASSERT_TRUE(echo.ok());
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 7, 0}});
  ASSERT_TRUE(pinger.ok());

  system.RunFor(Millis(120));
  ASSERT_TRUE(system.CrashProcess(*pinger).ok());
  ASSERT_TRUE(system.RunUntilRecovered(*pinger, Seconds(120)));
  system.RunFor(Seconds(120));

  const PingerProgram* p = PingerAt(system, NodeId{1}, *pinger);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->sent(), 25u);
  EXPECT_EQ(p->received(), 25u);
  // Exactly-once on the server side despite the client's resends being
  // replayed/suppressed.
  const EchoProgram* e = EchoAt(system, NodeId{2}, *echo);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->echoed(), 25u);
}

TEST(RecoveryIntegration, CrashFreeAndCrashedRunsProduceIdenticalTranscripts) {
  // Reference run: no faults.
  std::vector<uint8_t> reference;
  {
    PublishingSystem system(BaseConfig());
    RegisterPrograms(system, 15);
    auto echo = system.cluster().Spawn(NodeId{2}, "echo");
    auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 7, 0}});
    system.RunFor(Seconds(120));
    const PingerProgram* p = PingerAt(system, NodeId{1}, *pinger);
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(p->received(), 15u);
    reference = p->transcript();
  }
  // Crash run: server crashes mid-stream.
  {
    PublishingSystem system(BaseConfig());
    RegisterPrograms(system, 15);
    auto echo = system.cluster().Spawn(NodeId{2}, "echo");
    auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 7, 0}});
    system.RunFor(Millis(80));
    ASSERT_TRUE(system.CrashProcess(*echo).ok());
    ASSERT_TRUE(system.RunUntilRecovered(*echo, Seconds(120)));
    system.RunFor(Seconds(240));
    const PingerProgram* p = PingerAt(system, NodeId{1}, *pinger);
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(p->received(), 15u);
    EXPECT_EQ(p->transcript(), reference)
        << "the client must observe the same interaction sequence as a crash-free run";
  }
}

TEST(RecoveryIntegration, CheckpointShortensReplayAndStillRecovers) {
  PublishingSystem system(BaseConfig());
  RegisterPrograms(system, 40);
  system.EnableCheckpointPolicy(std::make_unique<FixedIntervalPolicy>(Millis(500)), Millis(100));

  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 7, 0}});

  system.RunFor(Seconds(4));
  ASSERT_GT(system.recorder().stats().checkpoints_stored, 0u);

  ASSERT_TRUE(system.CrashProcess(*echo).ok());
  ASSERT_TRUE(system.RunUntilRecovered(*echo, Seconds(120)));
  system.RunFor(Seconds(240));

  const PingerProgram* p = PingerAt(system, NodeId{1}, *pinger);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->received(), 40u);
  const EchoProgram* e = EchoAt(system, NodeId{2}, *echo);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->echoed(), 40u);
}

TEST(RecoveryIntegration, NodeCrashRecoversAllProcessesViaWatchdog) {
  PublishingSystemConfig config = BaseConfig(3);
  PublishingSystem system(config);
  RegisterPrograms(system, 30);

  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 7, 0}});

  system.RunFor(Millis(120));
  ASSERT_TRUE(system.CrashNode(NodeId{2}).ok());
  // The watchdog must notice the silence, power-cycle the node, and recover
  // the echo server — no direct recovery call here.
  system.RunFor(Seconds(300));

  const PingerProgram* p = PingerAt(system, NodeId{1}, *pinger);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->received(), 30u);
  EXPECT_GE(system.recovery().stats().node_crashes_detected, 1u);
  EXPECT_GE(system.recovery().stats().process_recoveries_completed, 1u);
}

}  // namespace
}  // namespace publishing
