// Tests for the causal lifecycle layer (src/obs/causal.h, lifecycle.h,
// oracle.h, flight_recorder.h): tracker aggregation and eviction, flight
// recorder ring bounds and deterministic dumps, a tripping test for each of
// the four oracle monitors (plus the exemptions that keep legitimate replay
// and control traffic clean), and system-level integration — a clean
// ping-pong run and a crash/recovery run are oracle-clean end to end, while
// a deliberately broken recorder trips recorder-completeness.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/publishing_system.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/lifecycle.h"
#include "src/obs/metrics.h"
#include "src/obs/observability.h"
#include "src/obs/oracle.h"
#include "src/obs/trace.h"
#include "tests/json_checker.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

CausalContext Ctx(uint32_t origin, uint32_t local, uint64_t sequence,
                  uint8_t flags = kCausalGuaranteed) {
  CausalContext ctx;
  ctx.id = MessageId{ProcessId{NodeId{origin}, local}, sequence};
  ctx.origin = NodeId{origin};
  ctx.flags = flags;
  return ctx;
}

LifecycleEvent Event(const CausalContext& ctx, LifecycleStage stage, uint32_t node,
                     uint64_t seq) {
  LifecycleEvent event;
  event.ctx = ctx;
  event.stage = stage;
  event.node = NodeId{node};
  event.seq = seq;
  return event;
}

// ---------------------------------------------------------------------------
// Causal vocabulary
// ---------------------------------------------------------------------------

TEST(CausalContext, FlagHelpersMirrorPacketSemantics) {
  CausalContext ctx;
  EXPECT_FALSE(ctx.valid());
  EXPECT_FALSE(ctx.guaranteed());

  ctx = Ctx(1, 2, 3, kCausalGuaranteed | kCausalReplay);
  EXPECT_TRUE(ctx.valid());
  EXPECT_TRUE(ctx.guaranteed());
  EXPECT_TRUE(ctx.replay());
  EXPECT_FALSE(ctx.control());

  ctx.flags = kCausalControl;
  EXPECT_TRUE(ctx.control());
  EXPECT_FALSE(ctx.guaranteed());
}

TEST(CausalContext, StageNamesAreStable) {
  // The names are schema: they appear in lifecycle JSON/CSV and flight dumps.
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kSent), "sent");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kOnWire), "on_wire");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kOverheard), "overheard");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kPublished), "published");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kDurable), "durable");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kDelivered), "delivered");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kAcked), "acked");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kRead), "read");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kReplayed), "replayed");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kForwarded), "forwarded");
}

// ---------------------------------------------------------------------------
// LifecycleTracker
// ---------------------------------------------------------------------------

TEST(LifecycleTracker, AggregatesStagesIntoOneRecord) {
  Simulator sim;
  LifecycleTracker tracker(&sim);

  CausalContext ctx = Ctx(1, 7, 1);
  tracker.Observe(ctx, LifecycleStage::kSent, NodeId{1});
  CausalContext retransmit = ctx;
  retransmit.hop = 1;
  tracker.Observe(retransmit, LifecycleStage::kSent, NodeId{1});
  tracker.Observe(ctx, LifecycleStage::kOnWire, NodeId{1});
  tracker.Observe(ctx, LifecycleStage::kDelivered, NodeId{2});
  tracker.Observe(ctx, LifecycleStage::kRead, NodeId{2}, ProcessId{NodeId{2}, 9});

  EXPECT_EQ(tracker.size(), 1u);
  EXPECT_EQ(tracker.observed(), 5u);
  const LifecycleRecord* rec = tracker.Find(ctx.id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->count[static_cast<size_t>(LifecycleStage::kSent)], 2u);
  EXPECT_EQ(rec->max_hop, 1u);
  EXPECT_EQ(rec->origin, NodeId{1});
  EXPECT_EQ(rec->dst_node, NodeId{2});
  EXPECT_EQ(rec->dst_process, (ProcessId{NodeId{2}, 9}));
  EXPECT_TRUE(rec->Saw(LifecycleStage::kOnWire));
  EXPECT_FALSE(rec->Saw(LifecycleStage::kPublished));
  EXPECT_EQ(rec->FirstTime(LifecycleStage::kSent), 0);
  EXPECT_EQ(rec->FirstTime(LifecycleStage::kPublished), -1);
}

TEST(LifecycleTracker, InvalidContextsAreIgnored) {
  Simulator sim;
  LifecycleTracker tracker(&sim);
  tracker.Observe(CausalContext{}, LifecycleStage::kSent, NodeId{1});
  EXPECT_EQ(tracker.size(), 0u);
}

TEST(LifecycleTracker, EvictsOldestRecordWhenFull) {
  Simulator sim;
  LifecycleTracker tracker(&sim, /*max_messages=*/4);
  for (uint64_t i = 1; i <= 6; ++i) {
    tracker.Observe(Ctx(1, 1, i), LifecycleStage::kSent, NodeId{1});
  }
  EXPECT_EQ(tracker.size(), 4u);
  EXPECT_EQ(tracker.evicted(), 2u);
  EXPECT_EQ(tracker.Find(Ctx(1, 1, 1).id), nullptr);
  EXPECT_EQ(tracker.Find(Ctx(1, 1, 2).id), nullptr);
  EXPECT_NE(tracker.Find(Ctx(1, 1, 6).id), nullptr);
}

TEST(LifecycleTracker, TableExportsAreDeterministicAndValid) {
  Simulator sim;
  LifecycleTracker tracker(&sim);
  for (uint64_t i = 1; i <= 3; ++i) {
    CausalContext ctx = Ctx(2, 5, i);
    tracker.Observe(ctx, LifecycleStage::kSent, NodeId{2});
    tracker.Observe(ctx, LifecycleStage::kOnWire, NodeId{2});
    tracker.Observe(ctx, LifecycleStage::kDelivered, NodeId{3});
  }

  const std::string json = tracker.TableToJson();
  EXPECT_EQ(json, tracker.TableToJson());  // Deterministic.
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"messages\""), std::string::npos);
  EXPECT_NE(json.find("\"sent\""), std::string::npos);
  EXPECT_NE(json.find("\"observed\":9"), std::string::npos) << json;

  const std::string csv = tracker.TableToCsv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "id,origin,dst_node,flags,hops,stage,first_ms,count");
  EXPECT_NE(csv.find("delivered"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RingBoundsEachNodeAndDumpsDeterministically) {
  FlightRecorder flight(/*per_node_capacity=*/3);
  const CausalContext ctx = Ctx(1, 1, 1);
  for (uint64_t i = 0; i < 5; ++i) {
    flight.Record(Event(ctx, LifecycleStage::kSent, /*node=*/1, /*seq=*/i));
  }
  flight.Record(Event(ctx, LifecycleStage::kDelivered, /*node=*/2, /*seq=*/5));
  EXPECT_EQ(flight.recorded(), 6u);

  // Node 1 keeps only the newest 3 events, oldest first.
  std::vector<LifecycleEvent> events = flight.NodeEvents(NodeId{1});
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 2u);
  EXPECT_EQ(events[1].seq, 3u);
  EXPECT_EQ(events[2].seq, 4u);

  const std::string dump = flight.Dump("explicit", "unit test");
  EXPECT_EQ(flight.dump_count(), 1u);
  EXPECT_EQ(flight.last_dump(), dump);
  EXPECT_TRUE(JsonChecker(dump).Valid()) << dump;
  EXPECT_NE(dump.find("\"reason\":\"explicit\""), std::string::npos);
  EXPECT_NE(dump.find("\"stage\":\"delivered\""), std::string::npos);
  // Same state, same bytes.
  EXPECT_EQ(dump, flight.Dump("explicit", "unit test"));
}

// ---------------------------------------------------------------------------
// InvariantOracle: one tripping test per monitor, fed through the tracker
// (the production path) so attachment wiring is exercised too.
// ---------------------------------------------------------------------------

struct OracleFeed {
  Simulator sim;
  InvariantOracle oracle;
  LifecycleTracker tracker;

  explicit OracleFeed(OracleOptions options = OracleOptions{.policy = OraclePolicy::kCount})
      : oracle(options), tracker(&sim) {
    tracker.AttachOracle(&oracle);
  }

  void Observe(const CausalContext& ctx, LifecycleStage stage, uint32_t node,
               ProcessId process = {}) {
    tracker.Observe(ctx, stage, NodeId{node}, process);
  }

  // The well-behaved path for one guaranteed message, up to (not including)
  // the read.
  void CleanChain(const CausalContext& ctx, uint32_t dst_node) {
    Observe(ctx, LifecycleStage::kSent, ctx.origin.value);
    Observe(ctx, LifecycleStage::kOnWire, ctx.origin.value);
    Observe(ctx, LifecycleStage::kOverheard, 0);
    Observe(ctx, LifecycleStage::kPublished, 0);
    Observe(ctx, LifecycleStage::kDurable, 0);
    Observe(ctx, LifecycleStage::kDelivered, dst_node);
    Observe(ctx, LifecycleStage::kAcked, dst_node);
  }
};

TEST(InvariantOracle, CleanLifecycleTripsNothing) {
  OracleFeed feed;
  const ProcessId reader{NodeId{2}, 4};
  for (uint64_t i = 1; i <= 5; ++i) {
    CausalContext ctx = Ctx(1, 3, i);
    feed.CleanChain(ctx, 2);
    feed.Observe(ctx, LifecycleStage::kRead, 2, reader);
  }
  feed.oracle.CheckQuiescent();
  EXPECT_EQ(feed.oracle.total_violations(), 0u);
}

TEST(InvariantOracle, DeliveryBeforePublishTripsRecorderCompleteness) {
  OracleFeed feed;
  CausalContext ctx = Ctx(1, 3, 1);
  feed.Observe(ctx, LifecycleStage::kSent, 1);
  feed.Observe(ctx, LifecycleStage::kOnWire, 1);
  feed.Observe(ctx, LifecycleStage::kDelivered, 2);  // Never published.
  EXPECT_EQ(feed.oracle.violations(OracleMonitor::kRecorderCompleteness), 1u);
  // The unjournaled delivery also breaches durability-before-ack.
  EXPECT_EQ(feed.oracle.violations(OracleMonitor::kDurabilityBeforeAck), 1u);
}

TEST(InvariantOracle, QuiescenceCatchesWireOrphans) {
  // A guaranteed message that reached the wire but was never delivered
  // anywhere must still have been published by the time the run quiesces.
  OracleFeed feed;
  CausalContext ctx = Ctx(1, 3, 1);
  feed.Observe(ctx, LifecycleStage::kSent, 1);
  feed.Observe(ctx, LifecycleStage::kOnWire, 1);
  EXPECT_EQ(feed.oracle.total_violations(), 0u);
  feed.oracle.CheckQuiescent();
  EXPECT_EQ(feed.oracle.violations(OracleMonitor::kRecorderCompleteness), 1u);
}

TEST(InvariantOracle, AckBeforeJournalTripsDurability) {
  OracleFeed feed;
  CausalContext ctx = Ctx(1, 3, 1);
  feed.Observe(ctx, LifecycleStage::kSent, 1);
  feed.Observe(ctx, LifecycleStage::kOnWire, 1);
  feed.Observe(ctx, LifecycleStage::kOverheard, 0);
  feed.Observe(ctx, LifecycleStage::kPublished, 0);
  feed.Observe(ctx, LifecycleStage::kAcked, 2);  // Published but not journaled.
  EXPECT_EQ(feed.oracle.violations(OracleMonitor::kDurabilityBeforeAck), 1u);
  EXPECT_EQ(feed.oracle.violations(OracleMonitor::kRecorderCompleteness), 0u);
}

TEST(InvariantOracle, DuplicateReadWithinOneIncarnationTrips) {
  OracleFeed feed;
  const ProcessId reader{NodeId{2}, 4};
  CausalContext ctx = Ctx(1, 3, 1);
  feed.CleanChain(ctx, 2);
  feed.Observe(ctx, LifecycleStage::kRead, 2, reader);
  feed.Observe(ctx, LifecycleStage::kRead, 2, reader);  // Suppression failed.
  EXPECT_EQ(feed.oracle.violations(OracleMonitor::kDuplicateDelivery), 1u);
  EXPECT_EQ(feed.oracle.total_violations(), 1u);
}

TEST(InvariantOracle, OutOfOrderReplayedReadsTripReceiveOrder) {
  OracleFeed feed;
  const ProcessId reader{NodeId{2}, 4};
  // Unguaranteed traffic: isolates the per-process read monitors from the
  // publication monitors.
  CausalContext a = Ctx(1, 3, 1, /*flags=*/0);
  CausalContext b = Ctx(1, 3, 2, /*flags=*/0);
  CausalContext c = Ctx(1, 3, 3, /*flags=*/0);
  feed.Observe(a, LifecycleStage::kRead, 2, reader);
  feed.Observe(b, LifecycleStage::kRead, 2, reader);
  feed.Observe(c, LifecycleStage::kRead, 2, reader);

  // Crash + recreate: the new incarnation replays reads b, then a — the
  // original order was a before b.
  feed.tracker.NoteProcessReset(reader);
  feed.Observe(b, LifecycleStage::kRead, 2, reader);
  EXPECT_EQ(feed.oracle.total_violations(), 0u);
  feed.Observe(a, LifecycleStage::kRead, 2, reader);
  EXPECT_EQ(feed.oracle.violations(OracleMonitor::kReceiveOrder), 1u);
}

TEST(InvariantOracle, InOrderReplayAfterResetIsClean) {
  OracleFeed feed;
  const ProcessId reader{NodeId{2}, 4};
  CausalContext a = Ctx(1, 3, 1, /*flags=*/0);
  CausalContext b = Ctx(1, 3, 2, /*flags=*/0);
  feed.Observe(a, LifecycleStage::kRead, 2, reader);
  feed.Observe(b, LifecycleStage::kRead, 2, reader);

  feed.tracker.NoteProcessReset(reader);
  // Replay delivery precedes each re-read; neither trips anything.
  feed.Observe(a, LifecycleStage::kReplayed, 2, reader);
  feed.Observe(a, LifecycleStage::kRead, 2, reader);
  feed.Observe(b, LifecycleStage::kReplayed, 2, reader);
  feed.Observe(b, LifecycleStage::kRead, 2, reader);
  EXPECT_EQ(feed.oracle.total_violations(), 0u);
}

TEST(InvariantOracle, ControlAndReplayTrafficAreExemptFromPublication) {
  OracleFeed feed;
  // Control traffic is acked but deliberately unpublished.
  CausalContext control = Ctx(1, 3, 1, kCausalGuaranteed | kCausalControl);
  feed.Observe(control, LifecycleStage::kSent, 1);
  feed.Observe(control, LifecycleStage::kOnWire, 1);
  feed.Observe(control, LifecycleStage::kDelivered, 2);
  feed.Observe(control, LifecycleStage::kAcked, 2);
  // A replay retransmission re-sends an already-published message; it must
  // not re-arm the completeness obligation for the quiescence sweep.
  CausalContext replay = Ctx(1, 3, 2, kCausalGuaranteed | kCausalReplay);
  feed.Observe(replay, LifecycleStage::kOnWire, 0);
  feed.Observe(replay, LifecycleStage::kDelivered, 2);
  feed.oracle.CheckQuiescent();
  EXPECT_EQ(feed.oracle.total_violations(), 0u);
}

TEST(InvariantOracle, DisabledMonitorStaysSilent) {
  OracleFeed feed(OracleOptions{.duplicate_delivery = false,
                                .policy = OraclePolicy::kCount});
  const ProcessId reader{NodeId{2}, 4};
  CausalContext ctx = Ctx(1, 3, 1, /*flags=*/0);
  feed.Observe(ctx, LifecycleStage::kRead, 2, reader);
  feed.Observe(ctx, LifecycleStage::kRead, 2, reader);
  EXPECT_EQ(feed.oracle.total_violations(), 0u);
}

TEST(InvariantOracle, ViolationHookAndReportJson) {
  OracleFeed feed;
  std::vector<OracleViolation> seen;
  feed.oracle.SetViolationHook(
      [&seen](const OracleViolation& v) { seen.push_back(v); });

  const ProcessId reader{NodeId{2}, 4};
  CausalContext ctx = Ctx(1, 3, 1, /*flags=*/0);
  feed.Observe(ctx, LifecycleStage::kRead, 2, reader);
  feed.Observe(ctx, LifecycleStage::kRead, 2, reader);

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].monitor, OracleMonitor::kDuplicateDelivery);
  EXPECT_EQ(seen[0].id, ctx.id);
  EXPECT_EQ(seen[0].process, reader);

  const std::string report = feed.oracle.ReportJson();
  EXPECT_TRUE(JsonChecker(report).Valid()) << report;
  EXPECT_NE(report.find("\"duplicate_delivery\":{\"enabled\":1,\"violations\":1"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("\"total_violations\":1"), std::string::npos);
}

TEST(InvariantOracle, FirstViolationDumpsTheFlightRecorder) {
  OracleFeed feed;
  FlightRecorder flight(/*per_node_capacity=*/16);
  feed.tracker.AttachFlightRecorder(&flight);
  feed.oracle.AttachFlightRecorder(&flight);

  const ProcessId reader{NodeId{2}, 4};
  CausalContext ctx = Ctx(1, 3, 1, /*flags=*/0);
  feed.Observe(ctx, LifecycleStage::kRead, 2, reader);
  feed.Observe(ctx, LifecycleStage::kRead, 2, reader);
  EXPECT_EQ(flight.dump_count(), 1u);
  EXPECT_NE(flight.last_dump().find("\"reason\":\"oracle_violation\""),
            std::string::npos);
  // The dump includes the tripping event itself (flight records before the
  // oracle runs).
  EXPECT_NE(flight.last_dump().find("\"stage\":\"read\""), std::string::npos);

  // Later violations are cascade: no further dumps.
  feed.Observe(ctx, LifecycleStage::kRead, 2, reader);
  EXPECT_EQ(feed.oracle.total_violations(), 2u);
  EXPECT_EQ(flight.dump_count(), 1u);
}

// ---------------------------------------------------------------------------
// System integration
// ---------------------------------------------------------------------------

// The full observability stack around a 2-node ping-pong system: metrics,
// tracer, lifecycle tracker, oracle, and flight recorder all attached.
struct FullObsHarness {
  MetricsRegistry registry;
  InvariantOracle oracle;
  FlightRecorder flight;
  PublishingSystem system;
  Tracer tracer;
  LifecycleTracker lifecycle;

  explicit FullObsHarness(OraclePolicy policy = OraclePolicy::kLog)
      : oracle(OracleOptions{.policy = policy}),
        system(MakeConfig()),
        tracer(&system.sim()),
        lifecycle(&system.sim()) {
    lifecycle.AttachTracer(&tracer);
    lifecycle.AttachMetrics(&registry);
    lifecycle.AttachOracle(&oracle);
    lifecycle.AttachFlightRecorder(&flight);
    oracle.AttachFlightRecorder(&flight);
    oracle.AttachMetrics(&registry);

    Observability obs;
    obs.metrics = &registry;
    obs.tracer = &tracer;
    obs.lifecycle = &lifecycle;
    system.EnableObservability(obs);

    system.cluster().registry().Register(
        "echo", [] { return std::make_unique<EchoProgram>(); });
    system.cluster().registry().Register(
        "pinger", [] { return std::make_unique<PingerProgram>(40); });
  }

  static PublishingSystemConfig MakeConfig() {
    PublishingSystemConfig config;
    config.cluster.node_count = 2;
    config.cluster.start_system_processes = false;
    return config;
  }

  ProcessId SpawnPingPong() {
    auto echo = system.cluster().Spawn(NodeId{2}, "echo");
    system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
    return *echo;
  }

  bool AnyRecordSawFullChain() const {
    for (const auto& [id, rec] : lifecycle.table()) {
      if (rec.Saw(LifecycleStage::kSent) && rec.Saw(LifecycleStage::kOnWire) &&
          rec.Saw(LifecycleStage::kOverheard) &&
          rec.Saw(LifecycleStage::kPublished) &&
          rec.Saw(LifecycleStage::kDurable) &&
          rec.Saw(LifecycleStage::kDelivered) && rec.Saw(LifecycleStage::kRead)) {
        return true;
      }
    }
    return false;
  }
};

TEST(LifecycleIntegration, CleanRunIsOracleCleanWithFullLifecycles) {
  FullObsHarness h;
  h.SpawnPingPong();
  h.system.RunFor(Seconds(2));
  h.oracle.CheckQuiescent();

  EXPECT_EQ(h.oracle.total_violations(), 0u) << h.oracle.ReportJson();
  EXPECT_GT(h.lifecycle.size(), 0u);
  EXPECT_TRUE(h.AnyRecordSawFullChain());

  // The per-stage instruments and the per-message trace span saw traffic.
  EXPECT_GT(h.registry.GetCounter("lifecycle.stage", {{"stage", "published"}})->value(), 0u);
  EXPECT_GT(h.registry.GetHistogram("lifecycle.since_sent_ms", {{"stage", "read"}})
                ->count(),
            0u);
  EXPECT_TRUE(h.tracer.Contains("msg.lifecycle"));
  EXPECT_TRUE(h.tracer.Contains("msg.published"));

  const std::string table = h.lifecycle.TableToJson();
  EXPECT_TRUE(JsonChecker(table).Valid());
  EXPECT_TRUE(JsonChecker(h.flight.Dump("explicit")).Valid());
}

TEST(LifecycleIntegration, CrashRecoveryStaysOracleCleanAndDumpsFlight) {
  FullObsHarness h;
  ProcessId echo = h.SpawnPingPong();
  h.system.RunFor(Seconds(2));
  ASSERT_TRUE(h.system.CrashProcess(echo).ok());
  // Fault injection dumps the flight recorder at the moment of the crash.
  EXPECT_EQ(h.flight.dump_count(), 1u);
  EXPECT_NE(h.flight.last_dump().find("\"reason\":\"crash_process\""),
            std::string::npos);

  ASSERT_TRUE(h.system.RunUntilRecovered(echo, Seconds(30)));
  h.system.RunFor(Seconds(2));
  h.oracle.CheckQuiescent();

  // Replay suppression and receive-order preservation held through recovery.
  EXPECT_EQ(h.oracle.total_violations(), 0u) << h.oracle.ReportJson();
  // Recovery actually replayed something, and the tracker saw it.
  bool any_replayed = false;
  for (const auto& [id, rec] : h.lifecycle.table()) {
    any_replayed = any_replayed || rec.Saw(LifecycleStage::kReplayed);
  }
  EXPECT_TRUE(any_replayed);
  EXPECT_TRUE(h.tracer.Contains("fault.crash_process"));
}

TEST(LifecycleIntegration, BurstReplayCountsReplayedOncePerMessage) {
  FullObsHarness h;
  ProcessId echo = h.SpawnPingPong();
  h.system.RunFor(Seconds(2));
  ASSERT_TRUE(h.system.CrashProcess(echo).ok());
  ASSERT_TRUE(h.system.RunUntilRecovered(echo, Seconds(30)));
  h.system.RunFor(Seconds(2));
  h.oracle.CheckQuiescent();
  EXPECT_EQ(h.oracle.total_violations(), 0u) << h.oracle.ReportJson();

  // The default recovery path streams the log as multi-message burst frames
  // (DESIGN.md §11)...
  EXPECT_GT(h.system.recovery().stats().replay_bursts_sent, 0u);
  // ...and each replayed message still hits the `replayed` lifecycle stage
  // exactly once for the recovery round, burst packing notwithstanding.
  uint64_t replayed_records = 0;
  for (const auto& [id, rec] : h.lifecycle.table()) {
    if (rec.Saw(LifecycleStage::kReplayed)) {
      ++replayed_records;
      EXPECT_EQ(rec.count[static_cast<size_t>(LifecycleStage::kReplayed)], 1u)
          << "message " << ToString(id) << " observed `replayed` more than once";
    }
  }
  EXPECT_GT(replayed_records, 0u);
}

TEST(LifecycleIntegration, CrashFlightDumpIsDeterministic) {
  auto run = [] {
    FullObsHarness h;
    ProcessId echo = h.SpawnPingPong();
    h.system.RunFor(Seconds(2));
    EXPECT_TRUE(h.system.CrashProcess(echo).ok());
    return h.flight.last_dump();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// A recorder tap that lies: it claims every frame was recorded but silently
// drops every `skip_every`-th data frame on the floor, so those messages are
// delivered without ever being published — exactly the §4.4.1 gating breach
// the recorder-completeness monitor exists to catch.
class FrameSkippingTap final : public PromiscuousListener {
 public:
  FrameSkippingTap(Recorder* recorder, uint64_t skip_every)
      : recorder_(recorder), skip_every_(skip_every) {}

  bool OnWireFrame(const Frame& frame) override {
    if (frame.type == FrameType::kData && ++data_frames_ % skip_every_ == 0) {
      return true;  // "Recorded", except it wasn't.
    }
    return recorder_->OnWireFrame(frame);
  }

 private:
  Recorder* recorder_;
  uint64_t skip_every_;
  uint64_t data_frames_ = 0;
};

TEST(LifecycleIntegration, BrokenRecorderTripsCompletenessMonitor) {
  FullObsHarness h(OraclePolicy::kCount);
  FrameSkippingTap tap(&h.system.recorder(), /*skip_every=*/3);
  h.system.cluster().medium().DetachListener(&h.system.recorder());
  h.system.cluster().medium().AttachListener(&tap, Cluster::kRecorderNode);

  h.SpawnPingPong();
  h.system.RunFor(Seconds(2));

  EXPECT_GT(h.oracle.violations(OracleMonitor::kRecorderCompleteness), 0u);
  // The first violation snapshotted the flight recorder.
  EXPECT_GE(h.flight.dump_count(), 1u);
  EXPECT_NE(h.flight.last_dump().find("oracle_violation"), std::string::npos);

  h.system.cluster().medium().DetachListener(&tap);
}

}  // namespace
}  // namespace publishing
