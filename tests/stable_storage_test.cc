// Unit tests for the recorder's stable storage (§3.3.1, §4.5).

#include <gtest/gtest.h>

#include "src/core/stable_storage.h"

namespace publishing {
namespace {

ProcessId Pid(uint32_t node, uint32_t local) { return ProcessId{NodeId{node}, local}; }
MessageId Mid(const ProcessId& sender, uint64_t seq) { return MessageId{sender, seq}; }

TEST(StableStorage, CreationAndDestructionLifecycle) {
  StableStorage storage;
  ProcessId pid = Pid(1, 2);
  EXPECT_FALSE(storage.Knows(pid));
  storage.RecordCreation(pid, "prog", {}, NodeId{1});
  ASSERT_TRUE(storage.Knows(pid));
  auto info = storage.Info(pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->program, "prog");
  EXPECT_EQ(info->home_node, NodeId{1});
  EXPECT_FALSE(info->destroyed);

  storage.RecordDestruction(pid);
  info = storage.Info(pid);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->destroyed);
  EXPECT_TRUE(storage.AllProcesses().empty());
}

TEST(StableStorage, MessagesAppendAndReplayInArrivalOrder) {
  StableStorage storage;
  ProcessId pid = Pid(1, 2);
  ProcessId sender = Pid(1, 3);
  storage.RecordCreation(pid, "prog", {}, NodeId{1});
  for (uint64_t i = 1; i <= 5; ++i) {
    storage.AppendMessage(pid, Mid(sender, i), Bytes{static_cast<uint8_t>(i)});
  }
  auto replay = storage.ReplayList(pid);
  ASSERT_EQ(replay.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(replay[i].id.sequence, i + 1);
  }
}

TEST(StableStorage, ReadOrderOverridesArrivalOrderInReplay) {
  StableStorage storage;
  ProcessId pid = Pid(1, 2);
  ProcessId sender = Pid(1, 3);
  storage.RecordCreation(pid, "prog", {}, NodeId{1});
  for (uint64_t i = 1; i <= 4; ++i) {
    storage.AppendMessage(pid, Mid(sender, i), Bytes{static_cast<uint8_t>(i)});
  }
  // The process read 3 and 4 (channel selection) but never 1 and 2.
  storage.RecordRead(pid, Mid(sender, 3));
  storage.RecordRead(pid, Mid(sender, 4));

  auto replay = storage.ReplayList(pid);
  ASSERT_EQ(replay.size(), 4u);
  EXPECT_EQ(replay[0].id.sequence, 3u);  // Read entries first, in read order.
  EXPECT_EQ(replay[1].id.sequence, 4u);
  EXPECT_EQ(replay[2].id.sequence, 1u);  // Then unread, in arrival order.
  EXPECT_EQ(replay[3].id.sequence, 2u);
}

TEST(StableStorage, DuplicateAppendsAreIgnored) {
  StableStorage storage;
  ProcessId pid = Pid(1, 2);
  storage.RecordCreation(pid, "prog", {}, NodeId{1});
  storage.AppendMessage(pid, Mid(Pid(1, 3), 1), Bytes{1});
  storage.AppendMessage(pid, Mid(Pid(1, 3), 1), Bytes{1});  // Retransmission.
  EXPECT_EQ(storage.ReplayList(pid).size(), 1u);
}

TEST(StableStorage, ReplayedReReadsDoNotCorruptReadOrder) {
  StableStorage storage;
  ProcessId pid = Pid(1, 2);
  storage.RecordCreation(pid, "prog", {}, NodeId{1});
  storage.AppendMessage(pid, Mid(Pid(1, 3), 1), Bytes{1});
  storage.AppendMessage(pid, Mid(Pid(1, 3), 2), Bytes{2});
  storage.RecordRead(pid, Mid(Pid(1, 3), 1));
  storage.RecordRead(pid, Mid(Pid(1, 3), 2));
  // During recovery the process re-reads both; order must not change.
  storage.RecordRead(pid, Mid(Pid(1, 3), 2));
  storage.RecordRead(pid, Mid(Pid(1, 3), 1));
  auto replay = storage.ReplayList(pid);
  ASSERT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay[0].id.sequence, 1u);
  EXPECT_EQ(replay[1].id.sequence, 2u);
}

TEST(StableStorage, CheckpointDiscardsSubsumedMessagesOnly) {
  StableStorage storage;
  ProcessId pid = Pid(1, 2);
  ProcessId sender = Pid(1, 3);
  storage.RecordCreation(pid, "prog", {}, NodeId{1});
  for (uint64_t i = 1; i <= 6; ++i) {
    storage.AppendMessage(pid, Mid(sender, i), Bytes{static_cast<uint8_t>(i)});
  }
  // Process has read 1..4; checkpoint captured after 3 reads (the 4th read's
  // notice raced ahead of the checkpoint message).
  for (uint64_t i = 1; i <= 4; ++i) {
    storage.RecordRead(pid, Mid(sender, i));
  }
  storage.StoreCheckpoint(pid, Bytes(100, 0xCC), /*reads_done=*/3);

  auto replay = storage.ReplayList(pid);
  ASSERT_EQ(replay.size(), 3u) << "messages 1..3 subsumed; 4 (read), 5, 6 retained";
  EXPECT_EQ(replay[0].id.sequence, 4u);
  EXPECT_EQ(replay[1].id.sequence, 5u);
  EXPECT_EQ(replay[2].id.sequence, 6u);

  auto checkpoint = storage.LoadCheckpoint(pid);
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_EQ(checkpoint->size(), 100u);
}

TEST(StableStorage, LastSentWatermarkIsMonotonic) {
  StableStorage storage;
  ProcessId sender = Pid(2, 9);
  storage.RecordSent(sender, 5);
  storage.RecordSent(sender, 3);  // Out-of-order observation (retransmit).
  storage.RecordSent(sender, 8);
  EXPECT_EQ(storage.LastSent(sender), 8u);
  EXPECT_EQ(storage.LastSent(Pid(9, 9)), 0u);
}

TEST(StableStorage, ProcessesOnNodeFiltersCorrectly) {
  StableStorage storage;
  storage.RecordCreation(Pid(1, 2), "a", {}, NodeId{1});
  storage.RecordCreation(Pid(1, 3), "b", {}, NodeId{2});  // Created on 1, lives on 2.
  storage.RecordCreation(Pid(2, 2), "c", {}, NodeId{2});
  storage.RecordDestruction(Pid(2, 2));
  auto on_node2 = storage.ProcessesOnNode(NodeId{2});
  ASSERT_EQ(on_node2.size(), 1u);
  EXPECT_EQ(on_node2[0], Pid(1, 3));
}

TEST(StableStorage, SetHomeNodeMovesProcess) {
  StableStorage storage;
  storage.RecordCreation(Pid(1, 2), "a", {}, NodeId{1});
  storage.SetHomeNode(Pid(1, 2), NodeId{3});
  EXPECT_TRUE(storage.ProcessesOnNode(NodeId{1}).empty());
  EXPECT_EQ(storage.ProcessesOnNode(NodeId{3}).size(), 1u);
}

TEST(StableStorage, LocalIdHighWaterTracksCreationOrigin) {
  StableStorage storage;
  storage.RecordCreation(Pid(1, 2), "a", {}, NodeId{1});
  storage.RecordCreation(Pid(1, 7), "b", {}, NodeId{1});
  storage.RecordCreation(Pid(2, 9), "c", {}, NodeId{2});
  EXPECT_EQ(storage.LocalIdHighWater(NodeId{1}), 7u);
  EXPECT_EQ(storage.LocalIdHighWater(NodeId{2}), 9u);
  EXPECT_EQ(storage.LocalIdHighWater(NodeId{3}), 0u);
}

TEST(StableStorage, PageAccountingRoundsPerProcess) {
  StableStorage storage;
  storage.RecordCreation(Pid(1, 2), "a", {}, NodeId{1});
  storage.AppendMessage(Pid(1, 2), Mid(Pid(1, 3), 1), Bytes(100, 1));
  EXPECT_EQ(storage.TotalPages(), 1u) << "100 bytes still occupy one 4 KB page";
  storage.AppendMessage(Pid(1, 2), Mid(Pid(1, 3), 2), Bytes(5000, 1));
  EXPECT_EQ(storage.TotalPages(), 2u);
  EXPECT_EQ(storage.TotalBytes(), 5100u);
  EXPECT_GE(storage.PeakBytes(), 5100u);
}

TEST(StableStorage, RestartNumberMonotonic) {
  StableStorage storage;
  EXPECT_EQ(storage.restart_number(), 0u);
  EXPECT_EQ(storage.IncrementRestartNumber(), 1u);
  EXPECT_EQ(storage.IncrementRestartNumber(), 2u);
}

TEST(StableStorage, DestroyedProcessAcceptsNoMoreMessages) {
  StableStorage storage;
  storage.RecordCreation(Pid(1, 2), "a", {}, NodeId{1});
  storage.RecordDestruction(Pid(1, 2));
  storage.AppendMessage(Pid(1, 2), Mid(Pid(1, 3), 1), Bytes{1});
  EXPECT_TRUE(storage.ReplayList(Pid(1, 2)).empty());
}

}  // namespace
}  // namespace publishing
