// Unit tests for the durable log-structured storage engine (src/storage):
// record framing, torn-tail detection, the segmented WAL with group commit,
// journal replay equivalence, and compaction crash-consistency.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/common/rng.h"
#include "src/core/storage_journal.h"
#include "src/sim/stats.h"
#include "src/storage/compactor.h"
#include "src/storage/log_segment.h"
#include "src/storage/recovered_db.h"
#include "src/storage/wal.h"

namespace publishing {
namespace {

namespace fs = std::filesystem;

// A fresh, empty directory under the test temp root.
std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(testing::TempDir()) / ("pub_storage_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

Bytes MakePayload(size_t n, uint8_t seed) {
  Bytes out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(seed + i);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

TEST(LogSegment, FrameRoundTrip) {
  Bytes buffer;
  std::vector<Bytes> payloads = {MakePayload(1, 10), MakePayload(100, 20), MakePayload(0, 0),
                                 MakePayload(4096, 30)};
  for (const Bytes& p : payloads) {
    AppendRecordFrame(buffer, p);
  }
  size_t offset = 0;
  for (const Bytes& p : payloads) {
    FrameDecodeResult frame = DecodeRecordFrame(buffer, offset);
    ASSERT_EQ(frame.parse, FrameParse::kOk);
    EXPECT_EQ(Bytes(frame.payload.begin(), frame.payload.end()), p);
    offset = frame.next_offset;
  }
  EXPECT_EQ(DecodeRecordFrame(buffer, offset).parse, FrameParse::kEnd);
}

TEST(LogSegment, FlippedPayloadByteIsCorrupt) {
  Bytes buffer;
  AppendRecordFrame(buffer, MakePayload(32, 1));
  buffer[kRecordFrameOverhead + 5] ^= 0x01;
  EXPECT_EQ(DecodeRecordFrame(buffer, 0).parse, FrameParse::kCorrupt);
}

TEST(LogSegment, AbsurdLengthIsCorruptNotAllocation) {
  Bytes buffer;
  AppendRecordFrame(buffer, MakePayload(8, 1));
  // Overwrite the length field with something past kMaxRecordBytes.
  buffer[0] = 0xff;
  buffer[1] = 0xff;
  buffer[2] = 0xff;
  buffer[3] = 0xff;
  EXPECT_EQ(DecodeRecordFrame(buffer, 0).parse, FrameParse::kCorrupt);
}

TEST(LogSegment, TruncatedFrameIsTorn) {
  Bytes buffer;
  AppendRecordFrame(buffer, MakePayload(32, 1));
  for (size_t cut = 1; cut < buffer.size(); ++cut) {
    Bytes prefix(buffer.begin(), buffer.begin() + static_cast<ptrdiff_t>(cut));
    FrameDecodeResult frame = DecodeRecordFrame(prefix, 0);
    EXPECT_EQ(frame.parse, FrameParse::kTorn) << "cut at " << cut;
  }
}

TEST(LogSegment, HeaderRoundTrip) {
  Bytes header = EncodeSegmentHeader(42);
  ASSERT_EQ(header.size(), kSegmentHeaderBytes);
  auto seq = DecodeSegmentHeader(header);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 42u);
  header[0] ^= 0xff;
  EXPECT_FALSE(DecodeSegmentHeader(header).ok());
}

// ---------------------------------------------------------------------------
// Segment files on disk
// ---------------------------------------------------------------------------

TEST(LogSegment, WriteScanRoundTrip) {
  const std::string dir = TestDir("segment_roundtrip");
  const std::string path = dir + "/wal-0000000007.seg";
  std::vector<Bytes> payloads;
  {
    SegmentWriter writer;
    ASSERT_TRUE(writer.Open(path, 7).ok());
    for (int i = 0; i < 10; ++i) {
      payloads.push_back(MakePayload(16 + static_cast<size_t>(i) * 13,
                                     static_cast<uint8_t>(i)));
      ASSERT_TRUE(writer.Append(payloads.back()).ok());
    }
    ASSERT_TRUE(writer.Sync().ok());
  }
  auto scan = ScanSegment(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->seq, 7u);
  EXPECT_TRUE(scan->clean);
  EXPECT_EQ(scan->tail, FrameParse::kEnd);
  EXPECT_EQ(scan->dropped_bytes, 0u);
  ASSERT_EQ(scan->records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(scan->records[i], payloads[i]);
  }
}

// Satellite: a crash mid-write can truncate the file at ANY byte of the last
// record's frame; the scan must surface every earlier record and drop
// exactly the torn tail — never crash, never mis-accept.
TEST(LogSegment, TruncateAtEveryByteOffsetDropsOnlyTornTail) {
  const std::string dir = TestDir("segment_truncate");
  const std::string full = dir + "/full.seg";
  std::vector<Bytes> payloads;
  size_t last_frame_start = 0;
  {
    SegmentWriter writer;
    ASSERT_TRUE(writer.Open(full, 1).ok());
    for (int i = 0; i < 5; ++i) {
      payloads.push_back(MakePayload(24 + static_cast<size_t>(i) * 7,
                                     static_cast<uint8_t>(0x40 + i)));
      last_frame_start = writer.bytes();
      ASSERT_TRUE(writer.Append(payloads.back()).ok());
    }
    ASSERT_TRUE(writer.Sync().ok());
  }
  const size_t full_size = fs::file_size(full);
  ASSERT_GT(full_size, last_frame_start);

  const std::string cut_path = dir + "/cut.seg";
  for (size_t cut = last_frame_start; cut < full_size; ++cut) {
    fs::copy_file(full, cut_path, fs::copy_options::overwrite_existing);
    fs::resize_file(cut_path, cut);
    auto scan = ScanSegment(cut_path);
    ASSERT_TRUE(scan.ok()) << "cut at " << cut;
    ASSERT_EQ(scan->records.size(), payloads.size() - 1) << "cut at " << cut;
    for (size_t i = 0; i + 1 < payloads.size(); ++i) {
      EXPECT_EQ(scan->records[i], payloads[i]) << "cut at " << cut;
    }
    if (cut == last_frame_start) {
      // Truncation exactly on the frame boundary looks like a clean end.
      EXPECT_TRUE(scan->clean);
      EXPECT_EQ(scan->dropped_bytes, 0u);
    } else {
      EXPECT_FALSE(scan->clean) << "cut at " << cut;
      EXPECT_EQ(scan->tail, FrameParse::kTorn) << "cut at " << cut;
      EXPECT_EQ(scan->dropped_bytes, cut - last_frame_start) << "cut at " << cut;
    }
  }
}

// ---------------------------------------------------------------------------
// WAL: group commit, rollover, reopen
// ---------------------------------------------------------------------------

TEST(Wal, GroupCommitByRecordCount) {
  WalOptions options;
  options.dir = TestDir("wal_group_count");
  options.group_commit_records = 4;
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());
  Bytes record = MakePayload(64, 9);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*wal)->Append(record, 0).ok());
  }
  EXPECT_EQ((*wal)->stats().syncs, 0u);
  EXPECT_EQ((*wal)->PendingRecords(), 3u);
  ASSERT_TRUE((*wal)->Append(record, 0).ok());
  EXPECT_EQ((*wal)->stats().syncs, 1u);
  EXPECT_EQ((*wal)->PendingRecords(), 0u);
  // An explicit Sync with nothing pending is free.
  ASSERT_TRUE((*wal)->Sync().ok());
  EXPECT_EQ((*wal)->stats().syncs, 1u);
}

TEST(Wal, GroupCommitByVirtualTime) {
  WalOptions options;
  options.dir = TestDir("wal_group_time");
  options.group_commit_records = 1000;  // Count trigger effectively off.
  options.group_commit_interval = 100;
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());
  Bytes record = MakePayload(16, 3);
  ASSERT_TRUE((*wal)->Append(record, 50).ok());
  EXPECT_EQ((*wal)->stats().syncs, 0u) << "window not yet elapsed";
  ASSERT_TRUE((*wal)->Append(record, 120).ok());
  EXPECT_EQ((*wal)->stats().syncs, 1u) << "window elapsed since last sync";
  ASSERT_TRUE((*wal)->Append(record, 150).ok());
  EXPECT_EQ((*wal)->stats().syncs, 1u) << "new window starts at the sync";
  ASSERT_TRUE((*wal)->Append(record, 230).ok());
  EXPECT_EQ((*wal)->stats().syncs, 2u);
}

TEST(Wal, RollsSegmentsAndReopenStartsFresh) {
  WalOptions options;
  options.dir = TestDir("wal_roll");
  options.segment_bytes = 256;
  options.group_commit_records = 1;
  uint64_t highest_seq = 0;
  {
    auto wal = Wal::Open(options);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*wal)->Append(MakePayload(100, static_cast<uint8_t>(i)), 0).ok());
    }
    EXPECT_GT((*wal)->SegmentCount(), 1u);
    auto paths = ListSegmentPaths(options.dir);
    ASSERT_TRUE(paths.ok());
    EXPECT_EQ(paths->size(), (*wal)->SegmentCount());
    auto last = ScanSegment(paths->back());
    ASSERT_TRUE(last.ok());
    highest_seq = last->seq;
  }
  // Reopen: appends go to a NEW segment past the highest sequence; old
  // segments (and any torn tails in them) are never appended to.
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(MakePayload(10, 0xaa), 0).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  auto paths = ListSegmentPaths(options.dir);
  ASSERT_TRUE(paths.ok());
  auto last = ScanSegment(paths->back());
  ASSERT_TRUE(last.ok());
  EXPECT_GT(last->seq, highest_seq);
  ASSERT_EQ(last->records.size(), 1u);
  EXPECT_EQ(last->records[0], MakePayload(10, 0xaa));
}

// ---------------------------------------------------------------------------
// Journal replay: a recovered database is observably identical
// ---------------------------------------------------------------------------

ProcessId Pid(uint32_t node, uint32_t local) { return ProcessId{NodeId{node}, local}; }
MessageId Mid(const ProcessId& sender, uint64_t seq) { return MessageId{sender, seq}; }

// Drives a representative mutation history through `db`.
void ApplyHistory(StableStorage& db) {
  ProcessId a = Pid(1, 100);
  ProcessId b = Pid(2, 200);
  db.RecordCreation(a, "pinger", {Link{b, 1, 7, 0}}, NodeId{1});
  db.RecordCreation(b, "echo", {}, NodeId{2});
  for (uint64_t seq = 1; seq <= 8; ++seq) {
    db.AppendMessage(b, Mid(a, seq), MakePayload(40, static_cast<uint8_t>(seq)));
    db.RecordSent(a, seq);
  }
  // Duplicate append: must stay a no-op after replay too.
  db.AppendMessage(b, Mid(a, 3), MakePayload(40, 3));
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    db.RecordRead(b, Mid(a, seq));
  }
  db.StoreCheckpoint(b, MakePayload(128, 0x55), /*reads_done=*/3);
  db.SetRecovering(a, true);
  db.SetHomeNode(a, NodeId{3});
  // Node-unit side.
  db.AppendNodeMessage(NodeId{2}, Mid(a, 50), MakePayload(30, 0x66));
  db.StampNodeMessage(NodeId{2}, Mid(a, 50), 7);
  db.StoreNodeCheckpoint(NodeId{2}, MakePayload(64, 0x77), 5);
  db.IncrementRestartNumber();
  // A destroyed process leaves a tombstone.
  ProcessId c = Pid(1, 101);
  db.RecordCreation(c, "echo", {}, NodeId{1});
  db.RecordDestruction(c);
}

void ExpectEquivalent(const StableStorage& got, const StableStorage& want) {
  EXPECT_EQ(got.restart_number(), want.restart_number());
  EXPECT_EQ(got.messages_stored(), want.messages_stored());
  EXPECT_EQ(got.TotalBytes(), want.TotalBytes());
  EXPECT_EQ(got.AllProcesses(), want.AllProcesses());
  for (const ProcessId& pid : want.AllProcesses()) {
    SCOPED_TRACE(ToString(pid));
    auto got_info = got.Info(pid);
    auto want_info = want.Info(pid);
    ASSERT_TRUE(got_info.ok());
    ASSERT_TRUE(want_info.ok());
    EXPECT_EQ(got_info->program, want_info->program);
    EXPECT_EQ(got_info->initial_links, want_info->initial_links);
    EXPECT_EQ(got_info->home_node, want_info->home_node);
    EXPECT_EQ(got_info->destroyed, want_info->destroyed);
    EXPECT_EQ(got_info->recoverable, want_info->recoverable);
    EXPECT_EQ(got_info->recovering, want_info->recovering);
    EXPECT_EQ(got_info->has_checkpoint, want_info->has_checkpoint);
    EXPECT_EQ(got_info->checkpoint_reads, want_info->checkpoint_reads);
    EXPECT_EQ(got_info->last_sent_seq, want_info->last_sent_seq);
    EXPECT_EQ(got_info->log_bytes, want_info->log_bytes);
    EXPECT_EQ(got_info->log_entries, want_info->log_entries);
    auto got_replay = got.ReplayList(pid);
    auto want_replay = want.ReplayList(pid);
    ASSERT_EQ(got_replay.size(), want_replay.size());
    for (size_t i = 0; i < want_replay.size(); ++i) {
      EXPECT_EQ(got_replay[i].id, want_replay[i].id);
      EXPECT_EQ(got_replay[i].arrival, want_replay[i].arrival);
      EXPECT_EQ(got_replay[i].read, want_replay[i].read);
      EXPECT_EQ(got_replay[i].read_seq, want_replay[i].read_seq);
      EXPECT_EQ(got_replay[i].packet, want_replay[i].packet);
    }
    if (want_info->has_checkpoint) {
      auto got_ckpt = got.LoadCheckpoint(pid);
      auto want_ckpt = want.LoadCheckpoint(pid);
      ASSERT_TRUE(got_ckpt.ok());
      ASSERT_TRUE(want_ckpt.ok());
      EXPECT_EQ(*got_ckpt, *want_ckpt);
    }
    EXPECT_EQ(got.LastSent(pid), want.LastSent(pid));
  }
  // Node-unit storage.
  auto got_node = got.LoadNodeCheckpoint(NodeId{2});
  auto want_node = want.LoadNodeCheckpoint(NodeId{2});
  ASSERT_EQ(got_node.ok(), want_node.ok());
  if (want_node.ok()) {
    EXPECT_EQ(got_node->image, want_node->image);
    EXPECT_EQ(got_node->node_step, want_node->node_step);
  }
  auto got_nreplay = got.NodeReplayList(NodeId{2});
  auto want_nreplay = want.NodeReplayList(NodeId{2});
  ASSERT_EQ(got_nreplay.size(), want_nreplay.size());
  for (size_t i = 0; i < want_nreplay.size(); ++i) {
    EXPECT_EQ(got_nreplay[i].id, want_nreplay[i].id);
    EXPECT_EQ(got_nreplay[i].step, want_nreplay[i].step);
    EXPECT_EQ(got_nreplay[i].packet, want_nreplay[i].packet);
  }
}

TEST(RecoveredDb, ReplayReproducesDatabaseExactly) {
  WalOptions options;
  options.dir = TestDir("recover_exact");
  options.group_commit_records = 4;
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());

  StableStorage reference;
  ApplyHistory(reference);

  StableStorage durable;
  durable.AttachBackend(wal->get());
  ApplyHistory(durable);
  ASSERT_TRUE(durable.Flush().ok());
  wal->reset();  // Close all segment files.

  RecoveryReport report;
  auto recovered = RecoverStableStorage(options.dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_GT(report.records_applied, 0u);
  EXPECT_EQ(report.records_skipped, 0u);
  EXPECT_EQ(report.torn_segments, 0u);
  ExpectEquivalent(*recovered, reference);
}

TEST(RecoveredDb, EmptyOrMissingDirectoryIsEmptyDatabase) {
  RecoveryReport report;
  auto recovered = RecoverStableStorage(TestDir("recover_empty"), &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.segments_scanned, 0u);
  EXPECT_TRUE(recovered->AllProcesses().empty());
  auto missing = RecoverStableStorage("/nonexistent/pub-wal-dir");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->AllProcesses().empty());
}

TEST(RecoveredDb, TornTailDropsOnlyLastRecord) {
  WalOptions options;
  options.dir = TestDir("recover_torn");
  options.group_commit_records = 1;
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());

  StableStorage durable;
  durable.AttachBackend(wal->get());
  ProcessId a = Pid(1, 100);
  ProcessId b = Pid(2, 200);
  durable.RecordCreation(a, "pinger", {}, NodeId{1});
  durable.RecordCreation(b, "echo", {}, NodeId{2});
  durable.AppendMessage(b, Mid(a, 1), MakePayload(64, 1));
  durable.AppendMessage(b, Mid(a, 2), MakePayload(64, 2));
  ASSERT_TRUE(durable.Flush().ok());
  wal->reset();

  // Tear the tail: chop bytes off the last (only) segment's final record.
  auto paths = ListSegmentPaths(options.dir);
  ASSERT_TRUE(paths.ok());
  ASSERT_FALSE(paths->empty());
  const std::string& last = paths->back();
  fs::resize_file(last, fs::file_size(last) - 10);

  RecoveryReport report;
  auto recovered = RecoverStableStorage(options.dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.torn_segments, 1u);
  EXPECT_GT(report.dropped_tail_bytes, 0u);
  // Everything but the torn append survived.
  auto replay = recovered->ReplayList(b);
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay[0].id, Mid(a, 1));
  EXPECT_TRUE(recovered->Knows(a));
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

TEST(Compactor, GrowthPolicy) {
  CompactorOptions options;
  options.min_bytes = 1000;
  options.growth_factor = 2.0;
  Compactor compactor(options);
  EXPECT_FALSE(compactor.ShouldCompact(500, 1000));
  EXPECT_FALSE(compactor.ShouldCompact(1999, 1000));
  EXPECT_TRUE(compactor.ShouldCompact(2000, 1000));
  EXPECT_FALSE(compactor.ShouldCompact(999, 10)) << "below min_bytes never compacts";
}

TEST(Wal, CompactionRewritesLiveImageAndDeletesOldSegments) {
  WalOptions options;
  options.dir = TestDir("wal_compact");
  options.segment_bytes = 2048;
  options.group_commit_records = 1;
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());

  StableStorage reference;
  StableStorage durable;
  durable.AttachBackend(wal->get());
  auto drive = [](StableStorage& db) {
    ProcessId a = Pid(1, 100);
    ProcessId b = Pid(2, 200);
    db.RecordCreation(a, "pinger", {}, NodeId{1});
    db.RecordCreation(b, "echo", {}, NodeId{2});
    for (uint64_t seq = 1; seq <= 50; ++seq) {
      db.AppendMessage(b, Mid(a, seq), MakePayload(80, static_cast<uint8_t>(seq)));
      db.RecordSent(a, seq);
      db.RecordRead(b, Mid(a, seq));
    }
    // The checkpoint subsumes all 50 reads: most of the log dies.
    db.StoreCheckpoint(b, MakePayload(64, 0x11), /*reads_done=*/50);
  };
  drive(reference);
  drive(durable);

  const size_t before_segments = wal->get()->SegmentCount();
  ASSERT_GT(before_segments, 1u) << "history must span several segments";
  ASSERT_TRUE(wal->get()->CompactNow());
  EXPECT_EQ(wal->get()->stats().compactions, 1u);
  EXPECT_GT(wal->get()->stats().compaction_segments_deleted, 0u);
  // Snapshot segment + fresh active segment.
  EXPECT_EQ(wal->get()->SegmentCount(), 2u);

  // Post-compaction appends land after the snapshot and must survive too.
  durable.AppendMessage(Pid(2, 200), Mid(Pid(1, 100), 51), MakePayload(80, 51));
  reference.AppendMessage(Pid(2, 200), Mid(Pid(1, 100), 51), MakePayload(80, 51));
  ASSERT_TRUE(durable.Flush().ok());
  wal->reset();

  RecoveryReport report;
  auto recovered = RecoverStableStorage(options.dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.snapshots_applied, 1u);
  EXPECT_EQ(report.dangling_snapshots, 0u);
  ExpectEquivalent(*recovered, reference);
}

TEST(Wal, CheckpointTriggersCompactionViaGrowthPolicy) {
  WalOptions options;
  options.dir = TestDir("wal_auto_compact");
  options.segment_bytes = 1024;
  options.group_commit_records = 1;
  options.compactor.min_bytes = 512;  // Tiny: force the trigger quickly.
  options.compactor.growth_factor = 1.5;
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());

  StableStorage durable;
  durable.AttachBackend(wal->get());
  ProcessId a = Pid(1, 100);
  ProcessId b = Pid(2, 200);
  durable.RecordCreation(a, "pinger", {}, NodeId{1});
  durable.RecordCreation(b, "echo", {}, NodeId{2});
  for (uint64_t seq = 1; seq <= 100; ++seq) {
    durable.AppendMessage(b, Mid(a, seq), MakePayload(120, static_cast<uint8_t>(seq)));
    durable.RecordRead(b, Mid(a, seq));
    if (seq % 20 == 0) {
      durable.StoreCheckpoint(b, MakePayload(32, 0x22), seq);
    }
  }
  EXPECT_GT(wal->get()->stats().compactions, 0u)
      << "checkpoints over a growing log must eventually trigger compaction";
  EXPECT_GT(wal->get()->stats().compaction_bytes_reclaimed, 0u);
}

TEST(RecoveredDb, DanglingSnapshotIsIgnored) {
  // Simulate a crash mid-compaction: the snapshot segment was written
  // without its kSnapshotEnd, and the old segments were NOT yet deleted.
  WalOptions options;
  options.dir = TestDir("recover_dangling");
  options.group_commit_records = 1;
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());

  StableStorage reference;
  StableStorage durable;
  durable.AttachBackend(wal->get());
  auto drive = [](StableStorage& db) {
    ProcessId a = Pid(1, 100);
    ProcessId b = Pid(2, 200);
    db.RecordCreation(a, "pinger", {}, NodeId{1});
    db.RecordCreation(b, "echo", {}, NodeId{2});
    for (uint64_t seq = 1; seq <= 10; ++seq) {
      db.AppendMessage(b, Mid(a, seq), MakePayload(48, static_cast<uint8_t>(seq)));
    }
  };
  drive(reference);
  drive(durable);
  ASSERT_TRUE(durable.Flush().ok());
  wal->reset();

  // Hand-write a snapshot segment with the end marker missing, as if the
  // compactor died between the last record and the fsync barrier (the old
  // segments are only deleted after the barrier, so they are still here).
  std::vector<Bytes> snapshot = StorageJournal::SnapshotRecords(reference);
  ASSERT_GT(snapshot.size(), 2u);
  snapshot.resize(2);  // kSnapshotBegin + first process image, no end.
  SegmentWriter writer;
  ASSERT_TRUE(writer.Open(SegmentPath(options.dir, 999), 999).ok());
  for (const Bytes& record : snapshot) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  writer.Close();

  RecoveryReport report;
  auto recovered = RecoverStableStorage(options.dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.dangling_snapshots, 1u);
  EXPECT_EQ(report.snapshots_applied, 0u);
  EXPECT_GT(report.records_skipped, 0u);
  ExpectEquivalent(*recovered, reference);
}

// Undecodable journal payloads inside valid CRC frames are skipped, not
// fatal, and everything around them still applies.
TEST(RecoveredDb, UndecodableRecordIsSkipped) {
  const std::string dir = TestDir("recover_badrecord");
  SegmentWriter writer;
  ASSERT_TRUE(writer.Open(SegmentPath(dir, 1), 1).ok());
  Bytes good1 = StorageJournal::EncodeCreate(Pid(1, 100), "pinger", {}, NodeId{1}, true);
  Bytes garbage = {0xee, 0x01, 0x02};  // Unknown op.
  Bytes truncated = StorageJournal::EncodeDestroy(Pid(1, 100));
  truncated.resize(3);  // Valid op byte, torn body.
  Bytes good2 = StorageJournal::EncodeCreate(Pid(2, 200), "echo", {}, NodeId{2}, true);
  ASSERT_TRUE(writer.Append(good1).ok());
  ASSERT_TRUE(writer.Append(garbage).ok());
  ASSERT_TRUE(writer.Append(truncated).ok());
  ASSERT_TRUE(writer.Append(good2).ok());
  ASSERT_TRUE(writer.Sync().ok());
  writer.Close();

  RecoveryReport report;
  auto recovered = RecoverStableStorage(dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.records_applied, 2u);
  EXPECT_EQ(report.records_skipped, 2u);
  EXPECT_TRUE(recovered->Knows(Pid(1, 100)));
  EXPECT_TRUE(recovered->Knows(Pid(2, 200)));
}

// ---------------------------------------------------------------------------
// StatAccumulator extensions (used by the storage bench)
// ---------------------------------------------------------------------------

TEST(StatAccumulator, VarianceAndPercentiles) {
  StatAccumulator acc;
  for (int i = 1; i <= 100; ++i) {
    acc.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(acc.mean(), 50.5);
  // Population variance of 1..100 = (100^2 - 1) / 12 = 833.25.
  EXPECT_NEAR(acc.variance(), 833.25, 1e-9);
  EXPECT_NEAR(acc.stddev(), 28.866, 1e-3);
  EXPECT_NEAR(acc.p50(), 51.0, 1.0);
  EXPECT_NEAR(acc.p99(), 100.0, 1.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(100.0), 100.0);
}

TEST(StatAccumulator, ReservoirStaysBoundedAndDeterministic) {
  StatAccumulator a;
  StatAccumulator b;
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng.NextDouble());
  }
  for (double s : samples) {
    a.Add(s);
  }
  for (double s : samples) {
    b.Add(s);
  }
  EXPECT_EQ(a.count(), 20000u);
  // Same inputs, same seed: identical percentile estimates.
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
  // Uniform(0,1): the estimates should land near the true quantiles.
  EXPECT_NEAR(a.p50(), 0.5, 0.05);
  EXPECT_NEAR(a.p99(), 0.99, 0.02);
}

}  // namespace
}  // namespace publishing
