// Tests for src/obs: registry semantics, label handling, trace export
// well-formedness, ring-buffer bounds, and the two system-level guarantees
// the subsystem makes — identical runs serialize byte-identically, and an
// uninstrumented run behaves bit-identically to an instrumented one.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/core/publishing_system.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/lifecycle.h"
#include "src/obs/metrics.h"
#include "src/obs/observability.h"
#include "src/obs/oracle.h"
#include "src/obs/trace.h"
#include "tests/json_checker.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("a.count");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);

  Gauge* g = registry.GetGauge("a.gauge");
  g->Set(2.5);
  g->Add(-0.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.0);

  Histogram* h = registry.GetHistogram("a.hist");
  h->Observe(1.0);
  h->Observe(3.0);
  EXPECT_EQ(h->stats().count(), 2u);
  EXPECT_DOUBLE_EQ(h->stats().mean(), 2.0);
}

TEST(MetricsRegistry, LookupReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  // Force rebalancing of the underlying map with many more instruments.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("x" + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("x"), a);
}

TEST(MetricsRegistry, LabelsDistinguishInstrumentsAndSortInKey) {
  MetricsRegistry registry;
  Counter* eth = registry.GetCounter("net.frames", {{"medium", "ethernet"}});
  Counter* ring = registry.GetCounter("net.frames", {{"medium", "token_ring"}});
  EXPECT_NE(eth, ring);
  // Label order must not matter: the key canonicalizes by sorting.
  EXPECT_EQ(MetricKey("m", {{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
  EXPECT_EQ(MetricKey("m", {}), "m");
  Counter* ab = registry.GetCounter("k", {{"b", "2"}, {"a", "1"}});
  Counter* ba = registry.GetCounter("k", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(ab, ba);
}

TEST(MetricsRegistry, JsonAndCsvAreWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("c.one")->Add(7);
  registry.GetGauge("g.two", {{"k", "v"}})->Set(0.25);
  Histogram* h = registry.GetHistogram("h.three");
  for (int i = 1; i <= 10; ++i) {
    h->Observe(static_cast<double>(i));
  }
  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"c.one\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("g.two{k=v}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;

  const std::string csv = registry.ToCsv();
  EXPECT_NE(csv.find("metric,stat,value"), std::string::npos);
  EXPECT_NE(csv.find("c.one"), std::string::npos);
}

TEST(MetricsRegistry, HistogramExportsBucketsAndQuantiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat.ms");
  // One sample per decade bucket, plus an overflow sample.
  const double samples[] = {0.0005, 0.005, 0.05, 0.5, 5.0, 50.0, 500.0, 5000.0, 50000.0};
  for (double s : samples) {
    h->Observe(s);
  }
  EXPECT_EQ(h->count(), 9u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.0005 + 0.005 + 0.05 + 0.5 + 5.0 + 50.0 + 500.0 +
                                 5000.0 + 50000.0);
  EXPECT_EQ(h->min(), 0.0005);
  EXPECT_EQ(h->max(), 50000.0);
  EXPECT_LE(h->p50(), h->p99());
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(h->bucket(i), 1u) << "bucket " << i;
  }

  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"buckets\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"0.001\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"inf\":1"), std::string::npos) << json;
}

TEST(Metrics, FormatMetricValueIsDeterministic) {
  EXPECT_EQ(FormatMetricValue(7.0), "7");
  EXPECT_EQ(FormatMetricValue(0.5), "0.5");
  EXPECT_EQ(FormatMetricValue(-3.0), "-3");
  // NaN (empty histogram stats) serializes as 0, not "nan".
  EXPECT_EQ(FormatMetricValue(std::nan("")), "0");
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, RecordsSpansAndExportsValidChromeJson) {
  Simulator sim;
  Tracer tracer(&sim);
  sim.ScheduleAt(Millis(1), [&] {
    tracer.Instant("boot", "sim", obs_track::kSim);
  });
  uint64_t span = 0;
  sim.ScheduleAt(Millis(2), [&] {
    span = tracer.BeginSpan("work", "sim", obs_track::kSim, {{"k", "v"}});
  });
  sim.ScheduleAt(Millis(5), [&] {
    tracer.EndSpan(span, "work", "sim", obs_track::kSim);
    tracer.Complete(Millis(4), "tail", "sim", obs_track::kSim);
    tracer.CounterSample("depth", obs_track::kSim, 3);
  });
  sim.Run();

  EXPECT_EQ(tracer.size(), 5u);
  EXPECT_TRUE(tracer.Contains("work"));
  EXPECT_FALSE(tracer.Contains("nonexistent"));
  const std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(Tracer, RingBufferBoundsMemoryAndCountsDrops) {
  Simulator sim;
  Tracer tracer(&sim, /*capacity=*/16);
  for (int i = 0; i < 100; ++i) {
    tracer.Instant("e" + std::to_string(i), "sim", obs_track::kSim);
  }
  EXPECT_EQ(tracer.size(), 16u);
  EXPECT_EQ(tracer.dropped(), 84u);
  // Oldest events were overwritten; the newest survive.
  EXPECT_FALSE(tracer.Contains("e0"));
  EXPECT_TRUE(tracer.Contains("e99"));
  EXPECT_TRUE(JsonChecker(tracer.ToChromeJson()).Valid());
}

TEST(Tracer, ExportFooterReportsDroppedEvents) {
  // The Chrome JSON self-reports whether the ring wrapped, so a consumer can
  // tell a complete trace from a truncated one without external bookkeeping.
  Simulator sim;
  Tracer tracer(&sim, /*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    tracer.Instant("e" + std::to_string(i), "sim", obs_track::kSim);
  }
  const std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"metadata\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"capacity\":8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"droppedEvents\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"retainedEvents\":8"), std::string::npos) << json;

  Tracer quiet(&sim, /*capacity=*/8);
  quiet.Instant("only", "sim", obs_track::kSim);
  EXPECT_NE(quiet.ToChromeJson().find("\"droppedEvents\":0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// System-level: determinism and behaviour equivalence
// ---------------------------------------------------------------------------

struct InstrumentedRun {
  std::string metrics_json;
  std::string trace_json;
  std::string lifecycle_json;
  std::string flight_dump;
  uint64_t oracle_violations = 0;
  uint64_t messages_published = 0;
  uint64_t data_delivered = 0;
  SimTime end_time = 0;
};

// `instrument` attaches metrics + tracer; `lifecycle` additionally attaches
// the full causal stack (tracker, oracle, flight recorder).
InstrumentedRun RunPingPong(bool instrument, bool crash, bool lifecycle = false) {
  // Sinks before the system: attached components hold raw pointers into
  // them until destruction, so the sinks must outlive the system.
  MetricsRegistry registry;
  InvariantOracle oracle;
  FlightRecorder flight;
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);

  Tracer tracer(&system.sim());
  LifecycleTracker tracker(&system.sim());
  if (instrument) {
    Observability obs;
    obs.metrics = &registry;
    obs.tracer = &tracer;
    if (lifecycle) {
      tracker.AttachTracer(&tracer);
      tracker.AttachMetrics(&registry);
      tracker.AttachOracle(&oracle);
      tracker.AttachFlightRecorder(&flight);
      oracle.AttachFlightRecorder(&flight);
      oracle.AttachMetrics(&registry);
      obs.lifecycle = &tracker;
    }
    system.EnableObservability(obs);
  }

  system.cluster().registry().Register("echo",
                                       [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(40); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  system.RunFor(Seconds(2));
  if (crash) {
    EXPECT_TRUE(system.CrashProcess(*echo).ok());
    EXPECT_TRUE(system.RunUntilRecovered(*echo, Seconds(30)));
    system.RunFor(Seconds(2));
  }
  (void)pinger;

  InstrumentedRun run;
  run.metrics_json = registry.ToJson();
  run.trace_json = tracer.ToChromeJson();
  run.lifecycle_json = tracker.TableToJson();
  run.flight_dump = flight.Dump("explicit", "end of run");
  run.oracle_violations = oracle.total_violations();
  run.messages_published = system.recorder().stats().messages_published;
  run.data_delivered = system.recorder().endpoint().stats().data_delivered;
  run.end_time = system.sim().Now();
  return run;
}

TEST(ObservabilityIntegration, IdenticalRunsSerializeByteIdentically) {
  InstrumentedRun a = RunPingPong(/*instrument=*/true, /*crash=*/true);
  InstrumentedRun b = RunPingPong(/*instrument=*/true, /*crash=*/true);
  EXPECT_GT(a.messages_published, 0u);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(ObservabilityIntegration, InstrumentationDoesNotChangeBehaviour) {
  InstrumentedRun with = RunPingPong(/*instrument=*/true, /*crash=*/true);
  InstrumentedRun without = RunPingPong(/*instrument=*/false, /*crash=*/true);
  EXPECT_EQ(with.messages_published, without.messages_published);
  EXPECT_EQ(with.data_delivered, without.data_delivered);
  EXPECT_EQ(with.end_time, without.end_time);
}

TEST(ObservabilityIntegration, LifecycleStackDoesNotChangeBehaviour) {
  // The stronger equivalence claim for this PR: even with the full causal
  // stack attached — tracker, oracle, flight recorder — the run is
  // bit-identical to an uninstrumented one.
  InstrumentedRun with =
      RunPingPong(/*instrument=*/true, /*crash=*/true, /*lifecycle=*/true);
  InstrumentedRun without = RunPingPong(/*instrument=*/false, /*crash=*/true);
  EXPECT_EQ(with.messages_published, without.messages_published);
  EXPECT_EQ(with.data_delivered, without.data_delivered);
  EXPECT_EQ(with.end_time, without.end_time);
  EXPECT_EQ(with.oracle_violations, 0u);
}

TEST(ObservabilityIntegration, LifecycleExportsSerializeByteIdentically) {
  InstrumentedRun a =
      RunPingPong(/*instrument=*/true, /*crash=*/true, /*lifecycle=*/true);
  InstrumentedRun b =
      RunPingPong(/*instrument=*/true, /*crash=*/true, /*lifecycle=*/true);
  EXPECT_NE(a.lifecycle_json.find("\"messages\""), std::string::npos);
  EXPECT_EQ(a.lifecycle_json, b.lifecycle_json);
  EXPECT_EQ(a.flight_dump, b.flight_dump);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_TRUE(JsonChecker(a.lifecycle_json).Valid());
  EXPECT_TRUE(JsonChecker(a.flight_dump).Valid());
}

TEST(ObservabilityIntegration, MetricsCoverEveryLayerAndMatchLegacyStats) {
  InstrumentedRun run = RunPingPong(/*instrument=*/true, /*crash=*/false);
  EXPECT_NE(run.metrics_json.find("sim.events_fired"), std::string::npos);
  EXPECT_NE(run.metrics_json.find("net.frames_sent{medium=ack_ethernet}"),
            std::string::npos);
  EXPECT_NE(run.metrics_json.find("transport.data_delivered"), std::string::npos);
  EXPECT_NE(run.metrics_json.find("recorder.messages_published"), std::string::npos);
  EXPECT_TRUE(JsonChecker(run.metrics_json).Valid());
}

TEST(ObservabilityIntegration, SteadyStatePublishCopiesNoPayloadBytes) {
  // The zero-copy contract (ISSUE acceptance criterion): with no faults
  // injected, the publish path sender -> wire -> recorder -> storage shares
  // one allocation per message; buf.bytes_copied stays 0 while
  // buf.bytes_shared proves the payload actually travelled by refcount.
  MetricsRegistry registry;
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);
  Observability obs;
  obs.metrics = &registry;
  system.EnableObservability(obs);

  system.cluster().registry().Register("echo",
                                       [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(40); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  system.RunFor(Seconds(2));

  EXPECT_GT(system.recorder().stats().messages_published, 0u);
  EXPECT_EQ(registry.GetCounter("buf.bytes_copied")->value(), 0u);
  EXPECT_GT(registry.GetCounter("buf.bytes_shared")->value(), 0u);
}

TEST(ObservabilityIntegration, FaultInjectionIsTheOnlyCopier) {
  // Corrupting one frame pays for exactly the copies the damage needs (the
  // CoW clone at the injection site, plus the receiver's corrupt-then-unwrap
  // on delivery) and nothing else.
  MetricsRegistry registry;
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  config.cluster.faults.receiver_error_rate = 0.2;
  PublishingSystem system(config);
  Observability obs;
  obs.metrics = &registry;
  system.EnableObservability(obs);

  system.cluster().registry().Register("echo",
                                       [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(10); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  system.RunFor(Seconds(2));

  EXPECT_GT(system.recorder().stats().messages_published, 0u);
  EXPECT_GT(registry.GetCounter("buf.bytes_copied")->value(), 0u);
}

TEST(ObservabilityIntegration, TraceCapturesRecoveryTimeline) {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);
  MetricsRegistry registry;
  Tracer tracer(&system.sim());
  Observability obs;
  obs.metrics = &registry;
  obs.tracer = &tracer;
  system.EnableObservability(obs);

  system.cluster().registry().Register("echo",
                                       [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(20); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  system.RunFor(Seconds(1));
  ASSERT_TRUE(system.CrashProcess(*echo).ok());
  ASSERT_TRUE(system.RunUntilRecovered(*echo, Seconds(30)));

  EXPECT_TRUE(tracer.Contains("recovery.crash_notice"));
  EXPECT_TRUE(tracer.Contains("recovery.process"));
  EXPECT_TRUE(tracer.Contains("recovery.replay"));
  EXPECT_TRUE(tracer.Contains("recovery.caught_up"));
  EXPECT_TRUE(tracer.Contains("net.transmit"));
  EXPECT_TRUE(tracer.Contains("transport.rtt"));
  EXPECT_TRUE(tracer.Contains("recorder.publish"));
  EXPECT_EQ(registry.GetCounter("recovery.completed")->value(), 1u);
}

TEST(ObservabilityIntegration, DetachingResetsToNullObject) {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);
  MetricsRegistry registry;
  Observability obs;
  obs.metrics = &registry;
  system.EnableObservability(obs);
  system.EnableObservability(Observability{});  // Detach.

  system.cluster().registry().Register("echo",
                                       [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(5); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  system.RunFor(Seconds(1));
  // The registry saw nothing after the detach (instruments exist from the
  // first attach but hold no samples).
  EXPECT_EQ(registry.GetCounter("recorder.messages_published")->value(), 0u);
  EXPECT_GT(system.recorder().stats().messages_published, 0u);
}

}  // namespace
}  // namespace publishing
