// Tests for the shared, immutable Buffer underlying the zero-copy wire path.

#include "src/common/buffer.h"

#include <gtest/gtest.h>

#include <utility>

namespace publishing {
namespace {

Bytes MakeBytes(std::initializer_list<uint8_t> init) { return Bytes(init); }

TEST(BufferTest, DefaultIsEmpty) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.use_count(), 0);
  EXPECT_EQ(b, Bytes{});
}

TEST(BufferTest, TakesOwnershipWithoutCopying) {
  ResetBufferStats();
  Buffer b(MakeBytes({1, 2, 3, 4}));
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[3], 4);
  EXPECT_EQ(GetBufferStats().bytes_copied, 0u);
  EXPECT_EQ(GetBufferStats().bytes_shared, 0u);
}

TEST(BufferTest, CopyConstructionSharesStorage) {
  ResetBufferStats();
  Buffer a(MakeBytes({1, 2, 3, 4}));
  Buffer b = a;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(GetBufferStats().bytes_copied, 0u);
  EXPECT_EQ(GetBufferStats().bytes_shared, 4u);
  EXPECT_EQ(GetBufferStats().shares, 1u);
}

TEST(BufferTest, MoveTransfersWithoutAccounting) {
  ResetBufferStats();
  Buffer a(MakeBytes({1, 2, 3}));
  Buffer b = std::move(a);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.use_count(), 1);
  EXPECT_EQ(GetBufferStats().bytes_shared, 0u);
  EXPECT_EQ(GetBufferStats().bytes_copied, 0u);
}

TEST(BufferTest, SliceIsZeroCopyView) {
  ResetBufferStats();
  Buffer a(MakeBytes({10, 11, 12, 13, 14}));
  Buffer mid = a.Slice(1, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0], 11);
  EXPECT_EQ(mid[2], 13);
  EXPECT_EQ(mid.data(), a.data() + 1);
  EXPECT_EQ(GetBufferStats().bytes_copied, 0u);
}

TEST(BufferTest, SliceOfSliceComposesOffsets) {
  Buffer a(MakeBytes({0, 1, 2, 3, 4, 5, 6, 7}));
  Buffer inner = a.Slice(2, 5).Slice(1, 3);
  EXPECT_EQ(inner.size(), 3u);
  EXPECT_EQ(inner[0], 3);
  EXPECT_EQ(inner[2], 5);
}

TEST(BufferTest, SliceClampsOutOfRange) {
  Buffer a(MakeBytes({1, 2, 3}));
  EXPECT_EQ(a.Slice(5, 2).size(), 0u);
  EXPECT_EQ(a.Slice(1, 99).size(), 2u);
}

TEST(BufferTest, SliceKeepsStorageAliveAfterParentDies) {
  Buffer tail;
  {
    Buffer a(MakeBytes({7, 8, 9}));
    tail = a.Slice(1, 2);
  }
  EXPECT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0], 8);
  EXPECT_EQ(tail[1], 9);
}

TEST(BufferTest, MutateCopyCountsCopiedBytesAndLeavesOriginalIntact) {
  ResetBufferStats();
  Buffer a(MakeBytes({1, 2, 3, 4}));
  Buffer damaged = a.MutateCopy([](Bytes& bytes) { bytes[0] ^= 0xFF; });
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(damaged[0], 1 ^ 0xFF);
  EXPECT_EQ(damaged[1], 2);
  EXPECT_NE(a.data(), damaged.data());
  EXPECT_EQ(GetBufferStats().bytes_copied, 4u);
  EXPECT_EQ(GetBufferStats().copies, 1u);
}

TEST(BufferTest, ToBytesCountsCopy) {
  ResetBufferStats();
  Buffer a(MakeBytes({5, 6, 7}));
  Bytes out = a.ToBytes();
  EXPECT_EQ(out, (Bytes{5, 6, 7}));
  EXPECT_EQ(GetBufferStats().bytes_copied, 3u);
}

TEST(BufferTest, CopyOfCountsCopy) {
  ResetBufferStats();
  Bytes src = MakeBytes({1, 2});
  Buffer b = Buffer::CopyOf(src);
  EXPECT_EQ(b, src);
  EXPECT_EQ(GetBufferStats().bytes_copied, 2u);
}

TEST(BufferTest, EqualityComparesVisibleBytes) {
  Buffer a(MakeBytes({1, 2, 3}));
  Buffer b(MakeBytes({0, 1, 2, 3, 9}));
  EXPECT_EQ(a, b.Slice(1, 3));
  EXPECT_EQ(a, (Bytes{1, 2, 3}));
  EXPECT_FALSE(a == (Bytes{1, 2}));
}

TEST(BufferBuilderTest, BuildsFromWriterWithoutExtraCopies) {
  ResetBufferStats();
  BufferBuilder builder;
  builder.writer().WriteU32(0xDEADBEEF);
  builder.writer().WriteU8(7);
  Buffer b = builder.Build();
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b[0], 0xEF);
  EXPECT_EQ(b[4], 7);
  EXPECT_EQ(GetBufferStats().bytes_copied, 0u);
}

}  // namespace
}  // namespace publishing
