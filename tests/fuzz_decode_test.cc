// Robustness: every wire decoder must reject arbitrary garbage gracefully —
// the recorder rebuilds its database from disk pages (§4.5) and parses
// everything it overhears, so corrupt inputs must never crash it.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/storage_journal.h"
#include "src/demos/node_image.h"
#include "src/demos/process_image.h"
#include "src/demos/protocol.h"
#include "src/storage/log_segment.h"
#include "src/transport/packet.h"

namespace publishing {
namespace {

Bytes RandomBytes(Rng& rng, size_t max_len) {
  Bytes out(rng.NextBelow(max_len + 1));
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  return out;
}

template <typename Decoder>
void FuzzDecoder(uint64_t seed, Decoder decode) {
  Rng rng(seed);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = RandomBytes(rng, 512);
    auto result = decode(garbage);
    (void)result;  // Must not crash; error or value are both acceptable.
  }
}

TEST(FuzzDecode, Packet) {
  FuzzDecoder(1, [](const Bytes& b) { return ParsePacket(b).ok(); });
}
TEST(FuzzDecode, Ack) {
  FuzzDecoder(2, [](const Bytes& b) { return ParseAck(b).ok(); });
}
TEST(FuzzDecode, CreateProcessRequest) {
  FuzzDecoder(3, [](const Bytes& b) { return DecodeCreateProcessRequest(b).ok(); });
}
TEST(FuzzDecode, ProcessNotice) {
  FuzzDecoder(4, [](const Bytes& b) { return DecodeProcessNotice(b).ok(); });
}
TEST(FuzzDecode, Checkpoint) {
  FuzzDecoder(5, [](const Bytes& b) { return DecodeCheckpoint(b).ok(); });
}
TEST(FuzzDecode, RecreateRequest) {
  FuzzDecoder(6, [](const Bytes& b) { return DecodeRecreateRequest(b).ok(); });
}
TEST(FuzzDecode, StateQueryAndReply) {
  FuzzDecoder(7, [](const Bytes& b) { return DecodeStateQuery(b).ok(); });
  FuzzDecoder(8, [](const Bytes& b) { return DecodeStateReply(b).ok(); });
}
TEST(FuzzDecode, ProcessImage) {
  FuzzDecoder(9, [](const Bytes& b) { return DecodeProcessImage(b).ok(); });
}
TEST(FuzzDecode, NodeImage) {
  FuzzDecoder(10, [](const Bytes& b) { return DecodeNodeImage(b).ok(); });
}
TEST(FuzzDecode, NodeRecoveryPayloads) {
  FuzzDecoder(11, [](const Bytes& b) { return DecodeRestoreNodeRequest(b).ok(); });
  FuzzDecoder(12, [](const Bytes& b) { return DecodeNodeReplayMessage(b).ok(); });
  FuzzDecoder(13, [](const Bytes& b) { return DecodeNodeCheckpoint(b).ok(); });
}

// Truncation sweep: every prefix of a VALID encoding must decode to an error
// (never crash, never silently succeed with partial data).
TEST(FuzzDecode, TruncatedValidPacketAlwaysRejected) {
  Packet packet;
  packet.header.id = MessageId{ProcessId{NodeId{1}, 2}, 3};
  packet.header.src_process = ProcessId{NodeId{1}, 2};
  packet.header.dst_process = ProcessId{NodeId{4}, 5};
  packet.header.flags = kFlagGuaranteed;
  packet.link_blob = Bytes(10, 0xAA);
  packet.body = Bytes(100, 0xBB);
  Bytes full = SerializePacket(packet);
  for (size_t len = 0; len < full.size(); ++len) {
    Bytes prefix(full.begin(), full.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(ParsePacket(prefix).ok()) << "prefix length " << len;
  }
  EXPECT_TRUE(ParsePacket(full).ok());
}

// Bit-flip sweep on a valid node image: decode must not crash, and flips the
// decoder accepts must still produce a structurally sane image.
TEST(FuzzDecode, BitFlippedNodeImageHandled) {
  NodeImage image;
  image.node = NodeId{2};
  image.node_step = 42;
  NodeProcessEntry entry;
  entry.pid = ProcessId{NodeId{2}, 7};
  entry.image.program_name = "prog";
  entry.image.program_state = Bytes(32, 0x11);
  image.processes.push_back(entry);
  Bytes full = EncodeNodeImage(image);

  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = full;
    mutated[rng.NextBelow(mutated.size())] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    auto decoded = DecodeNodeImage(mutated);
    if (decoded.ok()) {
      EXPECT_LE(decoded->processes.size(), 1000u);
    }
  }
}


// --- Storage-engine record framing (src/storage/log_segment.h) ---

// Arbitrary garbage through the frame decoder: any FrameParse outcome is
// fine, crashing or out-of-bounds reads are not.
TEST(FuzzDecode, SegmentFrameGarbage) {
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = RandomBytes(rng, 512);
    FrameDecodeResult frame = DecodeRecordFrame(garbage, 0);
    if (frame.parse == FrameParse::kOk) {
      EXPECT_LE(frame.next_offset, garbage.size());
    }
  }
}

// Random single-byte flips over a valid frame: the decoder must never
// accept an altered payload as valid.  Either the frame is rejected
// (kTorn/kCorrupt) or — when the flip is confined to bytes past the frame —
// the payload decodes byte-identical.
TEST(FuzzDecode, SegmentFrameBitFlipsNeverMisaccept) {
  Rng rng(22);
  for (int i = 0; i < 1000; ++i) {
    Bytes payload = RandomBytes(rng, 128);
    Bytes frame_bytes;
    AppendRecordFrame(frame_bytes, payload);
    Bytes mutated = frame_bytes;
    const size_t pos = rng.NextBelow(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    FrameDecodeResult frame = DecodeRecordFrame(mutated, 0);
    if (frame.parse == FrameParse::kOk) {
      EXPECT_EQ(Bytes(frame.payload.begin(), frame.payload.end()), payload)
          << "flip at " << pos << " was accepted with altered content";
    }
  }
}

// Random truncations of a multi-record buffer must yield a valid prefix of
// the original records and then a kTorn/kEnd tail — never an invented or
// reordered record.
TEST(FuzzDecode, SegmentFrameTruncationYieldsPrefix) {
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    std::vector<Bytes> payloads;
    Bytes buffer;
    const size_t n = 1 + rng.NextBelow(6);
    for (size_t j = 0; j < n; ++j) {
      payloads.push_back(RandomBytes(rng, 64));
      AppendRecordFrame(buffer, payloads.back());
    }
    Bytes cut(buffer.begin(),
              buffer.begin() + static_cast<ptrdiff_t>(rng.NextBelow(buffer.size() + 1)));
    size_t offset = 0;
    size_t index = 0;
    for (;;) {
      FrameDecodeResult frame = DecodeRecordFrame(cut, offset);
      if (frame.parse != FrameParse::kOk) {
        EXPECT_NE(frame.parse, FrameParse::kCorrupt) << "truncation is torn, not corrupt";
        break;
      }
      ASSERT_LT(index, payloads.size());
      EXPECT_EQ(Bytes(frame.payload.begin(), frame.payload.end()), payloads[index]);
      ++index;
      offset = frame.next_offset;
    }
  }
}

// Journal records through StorageJournal::Apply: garbage must come back as
// a status, never a crash, and must leave no half-applied wreckage that a
// later valid record trips over.
TEST(FuzzDecode, JournalRecordGarbage) {
  Rng rng(24);
  StableStorage db;
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = RandomBytes(rng, 256);
    (void)StorageJournal::Apply(db, garbage);
  }
  // The database still works after the bombardment.
  ProcessId pid{NodeId{1}, 900};
  Bytes create = StorageJournal::EncodeCreate(pid, "prog", {}, NodeId{1}, true);
  EXPECT_TRUE(StorageJournal::Apply(db, create).ok());
  EXPECT_TRUE(db.Knows(pid));
}

// Bit flips over valid journal records: Apply either rejects or applies a
// record that decodes cleanly; unknown ops are always rejected.
TEST(FuzzDecode, JournalRecordBitFlips) {
  Rng rng(25);
  ProcessId pid{NodeId{2}, 901};
  const Bytes original =
      StorageJournal::EncodeAppendMessage(pid, MessageId{pid, 5}, Bytes(40, 0x3c));
  for (int i = 0; i < 1000; ++i) {
    Bytes mutated = original;
    mutated[rng.NextBelow(mutated.size())] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    StableStorage db;
    db.RecordCreation(pid, "prog", {}, NodeId{2});
    (void)StorageJournal::Apply(db, mutated);  // Any status; no crash.
  }
}

}  // namespace
}  // namespace publishing
