// Tests for the offline replay debugger (§6.5).

#include <gtest/gtest.h>

#include "src/core/publishing_system.h"
#include "src/core/replay_debugger.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

struct DebugFixture {
  DebugFixture() {
    PublishingSystemConfig config;
    config.cluster.node_count = 2;
    config.cluster.start_system_processes = false;
    config.cluster.seed = 3;
    system = std::make_unique<PublishingSystem>(config);
    system->cluster().registry().Register("echo",
                                          [] { return std::make_unique<EchoProgram>(); });
    system->cluster().registry().Register("pinger",
                                          [] { return std::make_unique<PingerProgram>(15); });
    echo = *system->cluster().Spawn(NodeId{2}, "echo");
    pinger = *system->cluster().Spawn(NodeId{1}, "pinger", {Link{echo, 1, 0, 0}});
  }

  uint64_t LiveEchoCount() {
    return dynamic_cast<const EchoProgram*>(system->cluster().kernel(NodeId{2})->ProgramFor(echo))
        ->echoed();
  }

  std::unique_ptr<PublishingSystem> system;
  ProcessId echo;
  ProcessId pinger;
};

TEST(ReplayDebugger, ReconstructsStateFromInitialImage) {
  DebugFixture f;
  f.system->RunFor(Seconds(30));
  ASSERT_EQ(f.LiveEchoCount(), 15u);

  ReplayDebugger debugger(&f.system->storage(), &f.system->cluster().registry(), f.echo);
  ASSERT_TRUE(debugger.Initialize().ok());
  EXPECT_EQ(debugger.remaining(), 15u);
  auto steps = debugger.RunToEnd();
  ASSERT_TRUE(steps.ok());
  EXPECT_EQ(*steps, 15u);
  EXPECT_EQ(dynamic_cast<const EchoProgram*>(debugger.program())->echoed(), 15u);
}

TEST(ReplayDebugger, ReconstructsFromCheckpointPlusTail) {
  DebugFixture f;
  f.system->RunFor(Millis(15));
  f.system->cluster().kernel(NodeId{2})->CheckpointProcess(f.echo);
  f.system->RunFor(Seconds(30));
  ASSERT_EQ(f.LiveEchoCount(), 15u);

  ReplayDebugger debugger(&f.system->storage(), &f.system->cluster().registry(), f.echo);
  ASSERT_TRUE(debugger.Initialize().ok());
  EXPECT_LT(debugger.remaining(), 15u) << "the checkpoint must subsume some messages";
  ASSERT_TRUE(debugger.RunToEnd().ok());
  EXPECT_EQ(dynamic_cast<const EchoProgram*>(debugger.program())->echoed(), 15u);
}

TEST(ReplayDebugger, StepsReportTheSendsTheProgramWouldMake) {
  DebugFixture f;
  f.system->RunFor(Seconds(30));

  ReplayDebugger debugger(&f.system->storage(), &f.system->cluster().registry(), f.echo);
  ASSERT_TRUE(debugger.Initialize().ok());
  auto step = debugger.Step();
  ASSERT_TRUE(step.ok());
  ASSERT_EQ(step->sends.size(), 1u) << "the echo replies once per ping";
  EXPECT_EQ(step->sends[0].dest, f.pinger);
  EXPECT_EQ(step->sends[0].channel, PingerProgram::kPongChannel);
}

TEST(ReplayDebugger, RunUntilMessageStopsMidHistory) {
  DebugFixture f;
  f.system->RunFor(Seconds(30));

  ReplayDebugger debugger(&f.system->storage(), &f.system->cluster().registry(), f.echo);
  ASSERT_TRUE(debugger.Initialize().ok());
  // The 5th ping carries the pinger's 5th message id... find it by stepping
  // a scout debugger, then use RunUntilMessage on a fresh one.
  ReplayDebugger scout(&f.system->storage(), &f.system->cluster().registry(), f.echo);
  ASSERT_TRUE(scout.Initialize().ok());
  MessageId fifth;
  for (int i = 0; i < 5; ++i) {
    auto step = scout.Step();
    ASSERT_TRUE(step.ok());
    fifth = step->id;
  }
  auto steps = debugger.RunUntilMessage(fifth);
  ASSERT_TRUE(steps.ok());
  EXPECT_EQ(*steps, 5u);
  EXPECT_EQ(dynamic_cast<const EchoProgram*>(debugger.program())->echoed(), 5u);
  EXPECT_FALSE(debugger.AtEnd());
}

TEST(ReplayDebugger, UnknownProcessFailsCleanly) {
  DebugFixture f;
  f.system->RunFor(Seconds(5));
  ReplayDebugger debugger(&f.system->storage(), &f.system->cluster().registry(),
                          ProcessId{NodeId{9}, 99});
  EXPECT_FALSE(debugger.Initialize().ok());
}

TEST(ReplayDebugger, MissingMessageIdReportsNotFound) {
  DebugFixture f;
  f.system->RunFor(Seconds(30));
  ReplayDebugger debugger(&f.system->storage(), &f.system->cluster().registry(), f.echo);
  ASSERT_TRUE(debugger.Initialize().ok());
  auto steps = debugger.RunUntilMessage(MessageId{ProcessId{NodeId{7}, 7}, 7});
  ASSERT_FALSE(steps.ok());
  EXPECT_EQ(steps.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace publishing
