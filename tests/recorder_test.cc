// Unit tests for the Recorder itself: what gets logged, what gets vetoed,
// and what the tap ignores.

#include <gtest/gtest.h>

#include "src/core/recorder.h"
#include "src/net/ethernet.h"
#include "src/net/link_layer.h"

namespace publishing {
namespace {

struct RecorderFixture {
  RecorderFixture()
      : ether(&sim, MediumTimings{}, MediumFaults{}, 1, EthernetOptions{}),
        recorder(&sim, &ether, &names, &storage, RecorderOptions{}) {}

  Frame DataFrame(uint32_t src_node, uint64_t seq, uint8_t flags = kFlagGuaranteed) {
    Packet packet;
    packet.header.id = MessageId{ProcessId{NodeId{src_node}, 9}, seq};
    packet.header.src_process = ProcessId{NodeId{src_node}, 9};
    packet.header.dst_process = ProcessId{NodeId{2}, 9};
    packet.header.src_node = NodeId{src_node};
    packet.header.dst_node = NodeId{2};
    packet.header.flags = flags;
    packet.body = Bytes(64, 0x42);
    Frame frame;
    frame.src = NodeId{src_node};
    frame.dst = NodeId{2};
    frame.payload = LinkWrap(SerializePacket(packet));
    return frame;
  }

  Simulator sim;
  NameService names;
  StableStorage storage;
  Ethernet ether;
  Recorder recorder;
};

TEST(Recorder, LogsGuaranteedDataFrames) {
  RecorderFixture f;
  EXPECT_TRUE(f.recorder.OnWireFrame(f.DataFrame(1, 1)));
  EXPECT_TRUE(f.recorder.OnWireFrame(f.DataFrame(1, 2)));
  EXPECT_EQ(f.recorder.stats().messages_published, 2u);
  EXPECT_EQ(f.storage.ReplayList(ProcessId{NodeId{2}, 9}).size(), 2u);
  EXPECT_EQ(f.storage.LastSent(ProcessId{NodeId{1}, 9}), 2u);
}

TEST(Recorder, UnguaranteedFramesAreNotLogged) {
  RecorderFixture f;
  EXPECT_TRUE(f.recorder.OnWireFrame(f.DataFrame(1, 1, /*flags=*/0)));
  EXPECT_EQ(f.recorder.stats().messages_published, 0u);
  EXPECT_TRUE(f.storage.ReplayList(ProcessId{NodeId{2}, 9}).empty());
  // But the sender watermark still advanced (restart floors need it).
  EXPECT_EQ(f.storage.LastSent(ProcessId{NodeId{1}, 9}), 1u);
}

TEST(Recorder, ControlFramesAreNotLoggedButWatermarked) {
  RecorderFixture f;
  EXPECT_TRUE(f.recorder.OnWireFrame(f.DataFrame(1, 7, kFlagGuaranteed | kFlagControl)));
  EXPECT_EQ(f.recorder.stats().messages_published, 0u);
  EXPECT_EQ(f.recorder.stats().control_seen, 1u);
  EXPECT_EQ(f.storage.LastSent(ProcessId{NodeId{1}, 9}), 7u);
}

TEST(Recorder, ReplayFramesAreIgnored) {
  RecorderFixture f;
  EXPECT_TRUE(f.recorder.OnWireFrame(f.DataFrame(1, 1, kFlagGuaranteed | kFlagReplay)));
  EXPECT_EQ(f.recorder.stats().messages_published, 0u);
  EXPECT_EQ(f.recorder.stats().replay_seen, 1u);
  EXPECT_EQ(f.storage.LastSent(ProcessId{NodeId{1}, 9}), 0u)
      << "replayed ids are old; they must not move the watermark";
}

TEST(Recorder, OwnTransmissionsAreSkipped) {
  RecorderFixture f;
  Frame frame = f.DataFrame(1, 1);
  frame.src = f.recorder.node();
  EXPECT_TRUE(f.recorder.OnWireFrame(frame));
  EXPECT_EQ(f.recorder.stats().messages_published, 0u);
}

TEST(Recorder, CorruptFramesAreVetoed) {
  RecorderFixture f;
  Frame frame = f.DataFrame(1, 1);
  frame.payload = LinkCorrupt(frame.payload, 10);
  EXPECT_FALSE(f.recorder.OnWireFrame(frame))
      << "a frame the recorder cannot read must be vetoed";
  EXPECT_EQ(f.recorder.stats().messages_published, 0u);
}

TEST(Recorder, DownRecorderVetoesEverything) {
  RecorderFixture f;
  f.recorder.Crash();
  EXPECT_FALSE(f.recorder.OnWireFrame(f.DataFrame(1, 1)));
  f.recorder.Restart();
  EXPECT_TRUE(f.recorder.OnWireFrame(f.DataFrame(1, 2)));
}

TEST(Recorder, RestartBumpsRestartNumberAndFiresHandler) {
  RecorderFixture f;
  uint64_t seen = 0;
  f.recorder.set_restart_handler([&seen](uint64_t n) { seen = n; });
  f.recorder.Crash();
  f.recorder.Restart();
  EXPECT_EQ(seen, 1u);
  f.recorder.Crash();
  f.recorder.Restart();
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(f.storage.restart_number(), 2u);
}

TEST(Recorder, ApplyNoticeIsIdempotent) {
  RecorderFixture f;
  ProcessNotice notice;
  notice.pid = ProcessId{NodeId{2}, 5};
  notice.program = "prog";
  Packet packet;
  packet.header.src_node = NodeId{2};
  packet.body = EncodeProcessNotice(KernelOp::kNoticeCreated, notice);
  EXPECT_TRUE(f.recorder.ApplyNotice(packet));
  EXPECT_TRUE(f.recorder.ApplyNotice(packet));  // Overheard twice: harmless.
  auto info = f.storage.Info(notice.pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->program, "prog");
}

TEST(Recorder, RetransmittedFrameLoggedOnce) {
  RecorderFixture f;
  Frame frame = f.DataFrame(1, 1);
  EXPECT_TRUE(f.recorder.OnWireFrame(frame));
  EXPECT_TRUE(f.recorder.OnWireFrame(frame));  // Lost-ack retransmission.
  EXPECT_EQ(f.storage.ReplayList(ProcessId{NodeId{2}, 9}).size(), 1u);
}

}  // namespace
}  // namespace publishing
