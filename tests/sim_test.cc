// Unit tests for the discrete-event simulator and statistics helpers.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace publishing {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Millis(30));
}

TEST(Simulator, SameTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(Simulator, ScheduleAfterIsRelativeToNow) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.ScheduleAt(Millis(10), [&] {
    sim.ScheduleAfter(Millis(5), [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, Millis(15));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleAt(Millis(10), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id)) << "double cancel must report failure";
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReportsFailure) {
  Simulator sim;
  EventId id = sim.ScheduleAt(Millis(1), [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(Simulator, CancelInvalidIdIsSafe) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(EventId{}));
  EXPECT_FALSE(sim.Cancel(EventId{9999}));
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenIdle) {
  Simulator sim;
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  bool early = false;
  bool late = false;
  sim.ScheduleAt(Millis(10), [&] { early = true; });
  sim.ScheduleAt(Millis(30), [&] { late = true; });
  sim.RunUntil(Millis(20));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.Now(), Millis(20));
  sim.Run();
  EXPECT_TRUE(late);
}

TEST(Simulator, StepReturnsFalseWhenDrained) {
  Simulator sim;
  sim.ScheduleAt(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(Simulator, PendingEventsAccounting) {
  Simulator sim;
  EventId a = sim.ScheduleAt(1, [] {});
  sim.ScheduleAt(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelWithStaleHandleAfterSlotReuseReportsFailure) {
  Simulator sim;
  bool victim_fired = false;
  EventId stale = sim.ScheduleAt(Millis(1), [] {});
  sim.Run();
  // The fired event's slab slot is recycled for the next schedule; the stale
  // handle's generation no longer matches, so it must not cancel the newcomer.
  EventId fresh = sim.ScheduleAt(Millis(2), [&] { victim_fired = true; });
  EXPECT_FALSE(sim.Cancel(stale));
  sim.Run();
  EXPECT_TRUE(victim_fired);
  EXPECT_TRUE(fresh.IsValid());
}

TEST(Simulator, CancelFromWithinOwnCallbackReportsFailure) {
  Simulator sim;
  EventId id;
  bool cancel_result = true;
  id = sim.ScheduleAt(Millis(1), [&] { cancel_result = sim.Cancel(id); });
  sim.Run();
  EXPECT_FALSE(cancel_result) << "an event is already fired while its callback runs";
}

TEST(Simulator, CancelFromAnotherCallbackPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId doomed = sim.ScheduleAt(Millis(20), [&] { fired = true; });
  sim.ScheduleAt(Millis(10), [&] { EXPECT_TRUE(sim.Cancel(doomed)); });
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.Now(), Millis(10)) << "cancelled event must not advance the clock";
}

TEST(Simulator, SameInstantFifoSurvivesInterleavedCancellations) {
  // Cancelling from the middle of a same-instant batch rearranges the heap
  // (swap-with-last + sift); the survivors must still fire in schedule order.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(sim.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 64; i += 3) {
    EXPECT_TRUE(sim.Cancel(ids[static_cast<size_t>(i)]));
  }
  sim.Run();
  std::vector<int> expected;
  for (int i = 0; i < 64; ++i) {
    if (i % 3 != 0) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(Simulator, SameInstantFifoSurvivesSlotReuse) {
  // Recycled slab slots get fresh sequence numbers, so FIFO order within an
  // instant reflects schedule order even when slots are reused out of order.
  Simulator sim;
  std::vector<int> order;
  for (int round = 0; round < 3; ++round) {
    EventId a = sim.ScheduleAt(Millis(1), [] {});
    EventId b = sim.ScheduleAt(Millis(1), [] {});
    sim.Cancel(b);
    sim.Cancel(a);
  }
  for (int i = 0; i < 8; ++i) {
    sim.ScheduleAt(Millis(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Simulator, MemoryBoundedByPendingEventsNotTotalScheduled) {
  // 10M schedule/retire cycles with at most `kWindow` events pending must not
  // grow the slab past the pending peak.  The old engine kept O(total ever
  // scheduled) bitsets; this is the regression test for that leak.
  Simulator sim;
  constexpr int kWindow = 16;
  constexpr int kCycles = 10'000'000;
  std::vector<EventId> window;
  int fired = 0;
  for (int i = 0; i < kCycles; ++i) {
    EventId id = sim.ScheduleAfter(1 + (i % 7), [&fired] { ++fired; });
    window.push_back(id);
    if (window.size() == kWindow) {
      // Retire half by cancelling, half by firing.
      for (size_t j = 0; j < kWindow / 2; ++j) {
        sim.Cancel(window[j]);
      }
      sim.RunFor(8);
      window.clear();
    }
  }
  sim.Run();
  EXPECT_GT(fired, 0);
  EXPECT_LE(sim.slab_slots(), static_cast<size_t>(2 * kWindow))
      << "slab must be bounded by peak pending events";
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimCallback, CaptureLightLambdasStayInline) {
  int x = 0;
  int* p = &x;
  SimCallback cb([p] { ++*p; });
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(x, 1);
}

TEST(SimCallback, OversizedCapturesFallBackToHeap) {
  std::vector<int> big(100, 7);
  int sum = 0;
  std::array<char, 128> pad{};
  SimCallback cb([big, pad, &sum] { sum = big[0] + pad[0]; });
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(sum, 7);
}

TEST(SimCallback, MoveTransfersCallable) {
  int hits = 0;
  SimCallback a([&hits] { ++hits; });
  SimCallback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(PeriodicTask, FiresEveryPeriodUntilStopped) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task(&sim, Millis(10), [&] { ++fired; });
  task.Start();
  sim.RunUntil(Millis(55));
  EXPECT_EQ(fired, 5);
  task.Stop();
  sim.RunUntil(Millis(200));
  EXPECT_EQ(fired, 5);
}

TEST(PeriodicTask, StopFromWithinBodyIsSafe) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task(&sim, Millis(10), [&] {
    ++fired;
    // Stopping oneself mid-callback must not re-arm.
  });
  task.Start();
  sim.ScheduleAt(Millis(25), [&] { task.Stop(); });
  sim.RunUntil(Millis(100));
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTask, StopFromInsideOwnCallbackDoesNotRearm) {
  // The firing event's handle is already stale when the body runs; Stop()
  // must cope with cancelling it (a no-op) and suppress the re-arm.
  Simulator sim;
  int fired = 0;
  PeriodicTask* self = nullptr;
  PeriodicTask task(&sim, Millis(10), [&] {
    ++fired;
    if (fired == 3) {
      self->Stop();
    }
  });
  self = &task;
  task.Start();
  sim.RunUntil(Millis(500));
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, StopThenStartFromInsideOwnCallbackContinues) {
  Simulator sim;
  int fired = 0;
  PeriodicTask* self = nullptr;
  PeriodicTask task(&sim, Millis(10), [&] {
    ++fired;
    if (fired == 2) {
      self->Stop();
      self->Start();  // re-arm fresh: next fire one full period later
    }
  });
  self = &task;
  task.Start();
  sim.RunUntil(Millis(45));
  EXPECT_EQ(fired, 4);
  task.Stop();
}

TEST(Stats, StatAccumulatorBasics) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  acc.Add(2.0);
  acc.Add(4.0);
  acc.Add(9.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Stats, UtilizationTracksBusyFraction) {
  UtilizationTracker util;
  util.SetBusy(Millis(0), true);
  util.SetBusy(Millis(30), false);
  util.SetBusy(Millis(80), true);
  util.SetBusy(Millis(100), false);
  util.Finish(Millis(100));
  EXPECT_DOUBLE_EQ(util.Utilization(), 0.5);
  EXPECT_EQ(util.busy_time(), Millis(50));
}

}  // namespace
}  // namespace publishing
