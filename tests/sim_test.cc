// Unit tests for the discrete-event simulator and statistics helpers.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace publishing {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Millis(30));
}

TEST(Simulator, SameTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(Simulator, ScheduleAfterIsRelativeToNow) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.ScheduleAt(Millis(10), [&] {
    sim.ScheduleAfter(Millis(5), [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, Millis(15));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleAt(Millis(10), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id)) << "double cancel must report failure";
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReportsFailure) {
  Simulator sim;
  EventId id = sim.ScheduleAt(Millis(1), [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(Simulator, CancelInvalidIdIsSafe) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(EventId{}));
  EXPECT_FALSE(sim.Cancel(EventId{9999}));
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenIdle) {
  Simulator sim;
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  bool early = false;
  bool late = false;
  sim.ScheduleAt(Millis(10), [&] { early = true; });
  sim.ScheduleAt(Millis(30), [&] { late = true; });
  sim.RunUntil(Millis(20));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.Now(), Millis(20));
  sim.Run();
  EXPECT_TRUE(late);
}

TEST(Simulator, StepReturnsFalseWhenDrained) {
  Simulator sim;
  sim.ScheduleAt(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(Simulator, PendingEventsAccounting) {
  Simulator sim;
  EventId a = sim.ScheduleAt(1, [] {});
  sim.ScheduleAt(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(PeriodicTask, FiresEveryPeriodUntilStopped) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task(&sim, Millis(10), [&] { ++fired; });
  task.Start();
  sim.RunUntil(Millis(55));
  EXPECT_EQ(fired, 5);
  task.Stop();
  sim.RunUntil(Millis(200));
  EXPECT_EQ(fired, 5);
}

TEST(PeriodicTask, StopFromWithinBodyIsSafe) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task(&sim, Millis(10), [&] {
    ++fired;
    // Stopping oneself mid-callback must not re-arm.
  });
  task.Start();
  sim.ScheduleAt(Millis(25), [&] { task.Stop(); });
  sim.RunUntil(Millis(100));
  EXPECT_EQ(fired, 2);
}

TEST(Stats, StatAccumulatorBasics) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  acc.Add(2.0);
  acc.Add(4.0);
  acc.Add(9.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Stats, UtilizationTracksBusyFraction) {
  UtilizationTracker util;
  util.SetBusy(Millis(0), true);
  util.SetBusy(Millis(30), false);
  util.SetBusy(Millis(80), true);
  util.SetBusy(Millis(100), false);
  util.Finish(Millis(100));
  EXPECT_DOUBLE_EQ(util.Utilization(), 0.5);
  EXPECT_EQ(util.busy_time(), Millis(50));
}

}  // namespace
}  // namespace publishing
