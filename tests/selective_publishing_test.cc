// Tests for §6.6.1 — not publishing traffic for non-recoverable processes.

#include <gtest/gtest.h>

#include "src/core/publishing_system.h"
#include "src/queueing/simulation.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

PublishingSystemConfig BaseConfig() {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  config.cluster.seed = 31;
  return config;
}

TEST(SelectivePublishing, NonRecoverableTrafficIsNotStored) {
  PublishingSystem system(BaseConfig());
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(20); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo", {}, /*recoverable=*/false);
  auto pinger =
      system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}}, /*recoverable=*/false);
  system.RunFor(Seconds(60));

  const auto* p =
      dynamic_cast<const PingerProgram*>(system.cluster().kernel(NodeId{1})->ProgramFor(*pinger));
  ASSERT_EQ(p->received(), 20u) << "traffic itself flows normally";
  EXPECT_TRUE(system.storage().ReplayList(*echo).empty());
  EXPECT_TRUE(system.storage().ReplayList(*pinger).empty());
  EXPECT_EQ(system.storage().messages_stored(), 0u);
}

TEST(SelectivePublishing, NonRecoverableProcessIsNotRecovered) {
  PublishingSystem system(BaseConfig());
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(50); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo", {}, /*recoverable=*/false);
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  system.RunFor(Millis(80));
  ASSERT_TRUE(system.CrashProcess(*echo).ok());
  system.RunFor(Seconds(30));
  // "If a crash were to occur during their execution, the user may not want
  // to restart them" — the crash is final.
  EXPECT_EQ(system.recovery().stats().process_recoveries_started, 0u);
  EXPECT_EQ(system.cluster().kernel(NodeId{2})->QueryProcessState(*echo),
            ProcessStateAnswer::kCrashed);
}

TEST(SelectivePublishing, RecoverableNeighborsAreUnaffected) {
  PublishingSystem system(BaseConfig());
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(20); });
  auto recoverable_echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto throwaway_echo = system.cluster().Spawn(NodeId{2}, "echo", {}, /*recoverable=*/false);
  auto pinger =
      system.cluster().Spawn(NodeId{1}, "pinger", {Link{*recoverable_echo, 1, 0, 0}});
  (void)throwaway_echo;
  system.RunFor(Millis(80));
  ASSERT_TRUE(system.CrashProcess(*recoverable_echo).ok());
  ASSERT_TRUE(system.RunUntilRecovered(*recoverable_echo, Seconds(120)));
  system.RunFor(Seconds(120));
  const auto* p =
      dynamic_cast<const PingerProgram*>(system.cluster().kernel(NodeId{1})->ProgramFor(*pinger));
  EXPECT_EQ(p->received(), 20u);
}

TEST(SelectivePublishing, AblationIncreasesRecorderCapacity) {
  // §6.6.1: not publishing a share of the traffic buys extra capacity.  At
  // the mean operating point the binding resource is the network — which
  // unpublished messages still cross — so only the induced checkpoint
  // traffic shrinks and it takes a larger share to free up a whole node
  // (the paper's one-more-VAX example was at the disk-bound point).
  QueueingConfig config;
  config.op = StandardOperatingPoints()[0];
  CapacityEstimate baseline = EstimateCapacity(config);
  config.non_recoverable_fraction = 0.5;
  CapacityEstimate ablated = EstimateCapacity(config);
  EXPECT_GT(ablated.max_nodes, baseline.max_nodes);
  // At the disk-bound point a modest share is enough when the disk binds.
  QueueingConfig disk_bound;
  disk_bound.op = StandardOperatingPoints()[4];
  disk_bound.buffered_writes = false;
  disk_bound.non_recoverable_fraction = 0.0;
  AnalyticUtilizations with_all = ComputeAnalyticUtilizations(disk_bound);
  disk_bound.non_recoverable_fraction = 0.15;
  AnalyticUtilizations with_less = ComputeAnalyticUtilizations(disk_bound);
  EXPECT_LT(with_less.disk, with_all.disk * 0.90);
}

}  // namespace
}  // namespace publishing
