// Multi-recorder tests (§6.3): n-1 of n recorders can fail without the
// network becoming unavailable; priority vectors decide who recovers what;
// a lower-priority recorder takes over when the responsible one fails.

#include <gtest/gtest.h>

#include "src/core/recorder_group.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

struct GroupFixture {
  explicit GroupFixture(size_t recorders, uint64_t ping_target = 30) {
    ClusterConfig config;
    config.node_count = 2;
    config.start_system_processes = false;
    config.seed = 5;
    cluster = std::make_unique<Cluster>(config);
    cluster->registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
    cluster->registry().Register(
        "pinger", [ping_target] { return std::make_unique<PingerProgram>(ping_target); });
    RecoveryManagerOptions recovery;
    recovery.takeover_recheck = Millis(500);
    group = std::make_unique<RecorderGroup>(cluster.get(), recorders, recovery);
    echo = *cluster->Spawn(NodeId{2}, "echo");
    pinger = *cluster->Spawn(NodeId{1}, "pinger", {Link{echo, 1, 0, 0}});
  }

  const PingerProgram* Pinger() {
    return dynamic_cast<const PingerProgram*>(cluster->kernel(NodeId{1})->ProgramFor(pinger));
  }
  const EchoProgram* Echo() {
    return dynamic_cast<const EchoProgram*>(cluster->kernel(NodeId{2})->ProgramFor(echo));
  }

  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<RecorderGroup> group;
  ProcessId echo;
  ProcessId pinger;
};

TEST(MultiRecorder, AllMembersRecordAllMessages) {
  GroupFixture f(3);
  f.cluster->sim().RunFor(Seconds(60));
  ASSERT_EQ(f.Pinger()->received(), 30u);
  const uint64_t published0 = f.group->recorder(0).stats().messages_published;
  EXPECT_GT(published0, 0u);
  EXPECT_EQ(f.group->recorder(1).stats().messages_published, published0);
  EXPECT_EQ(f.group->recorder(2).stats().messages_published, published0);
  // Their logs agree.
  EXPECT_EQ(f.group->storage(0).messages_stored(), f.group->storage(1).messages_stored());
}

TEST(MultiRecorder, TrafficContinuesWhileOneRecorderIsDown) {
  GroupFixture f(2, /*ping_target=*/60);
  f.cluster->sim().RunFor(Millis(50));
  f.group->CrashRecorder(1);
  f.cluster->sim().RunFor(Seconds(60));
  // With a single recorder this crash would have suspended the network; the
  // survivor supplies the acknowledgements (§6.3).
  EXPECT_EQ(f.Pinger()->received(), 60u);
}

TEST(MultiRecorder, NetworkSuspendsWhenAllRecordersAreDown) {
  GroupFixture f(2, /*ping_target=*/400);
  f.cluster->sim().RunFor(Millis(50));
  const uint64_t before = f.Pinger()->received();
  f.group->CrashRecorder(0);
  f.group->CrashRecorder(1);
  ASSERT_TRUE(f.group->AllDown());
  f.cluster->sim().RunFor(Seconds(5));
  // A few in-flight deliveries may land, but progress stops.
  EXPECT_LE(f.Pinger()->received(), before + 2);
  // Restarting one recorder resumes traffic.
  f.group->RestartRecorder(0);
  f.cluster->sim().RunFor(Seconds(120));
  EXPECT_GT(f.Pinger()->received(), before + 10);
}

TEST(MultiRecorder, ResponsibilityFollowsPriorityVector) {
  GroupFixture f(3);
  f.group->SetPriorityVector(NodeId{2}, {2, 1, 0});
  auto responsible = f.group->ResponsibleFor(NodeId{2});
  ASSERT_TRUE(responsible.ok());
  EXPECT_EQ(*responsible, 2u);
  f.group->CrashRecorder(2);
  responsible = f.group->ResponsibleFor(NodeId{2});
  ASSERT_TRUE(responsible.ok());
  EXPECT_EQ(*responsible, 1u);
}

TEST(MultiRecorder, ResponsibleRecorderRecoversCrashedProcess) {
  GroupFixture f(2, /*ping_target=*/40);
  f.cluster->sim().RunFor(Millis(80));
  f.cluster->kernel(NodeId{2})->CrashProcess(f.echo);
  f.cluster->sim().RunFor(Seconds(120));
  EXPECT_EQ(f.Pinger()->received(), 40u);
  EXPECT_GE(f.group->manager(0).stats().process_recoveries_completed, 1u);
  EXPECT_EQ(f.group->manager(1).stats().process_recoveries_completed, 0u)
      << "only the responsible recorder may recover (no duplicate processes)";
}

TEST(MultiRecorder, LowerPriorityRecorderTakesOverWhenResponsibleOneFails) {
  GroupFixture f(2, /*ping_target=*/40);
  f.cluster->sim().RunFor(Millis(80));
  // Member 0 is responsible for everything by default; kill it, then crash
  // the echo process.  Member 1 must take over the recovery.
  f.group->CrashRecorder(0);
  f.cluster->sim().RunFor(Millis(20));
  f.cluster->kernel(NodeId{2})->CrashProcess(f.echo);
  f.cluster->sim().RunFor(Seconds(200));
  EXPECT_EQ(f.Pinger()->received(), 40u);
  EXPECT_GE(f.group->manager(1).stats().process_recoveries_completed, 1u);
}

TEST(MultiRecorder, SecondariesLearnNoticesByOverhearing) {
  GroupFixture f(2);
  f.cluster->sim().RunFor(Seconds(10));
  // Both storages know the processes even though only member 0's endpoint
  // received the creation notices.
  EXPECT_TRUE(f.group->storage(0).Knows(f.echo));
  EXPECT_TRUE(f.group->storage(1).Knows(f.echo));
  auto info0 = f.group->storage(0).Info(f.echo);
  auto info1 = f.group->storage(1).Info(f.echo);
  ASSERT_TRUE(info0.ok());
  ASSERT_TRUE(info1.ok());
  EXPECT_EQ(info0->program, info1->program);
}

}  // namespace
}  // namespace publishing
