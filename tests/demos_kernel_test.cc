// Unit tests for the DEMOS/MP kernel layer: links, channels, selective
// receive, link passing, DELIVERTOKERNEL process control, the process-
// creation chain, the named-link server, and the determinism property the
// recovery model rests on.

#include <gtest/gtest.h>

#include "src/core/publishing_system.h"
#include "src/demos/system_programs.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

// Records every delivered message's (channel, code) and whether a link rode
// along; replies over passed links with its own tally.
class RecorderProgram : public UserProgram {
 public:
  void OnStart(KernelApi& api) override { (void)api; }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    (void)api;
    log_.push_back({msg.channel, msg.code, msg.passed_link.IsValid()});
  }

  void SaveState(Writer& w) const override {
    w.WriteU32(static_cast<uint32_t>(log_.size()));
    for (const auto& [channel, code, link] : log_) {
      w.WriteU16(channel);
      w.WriteU32(code);
      w.WriteBool(link);
    }
  }
  Status LoadState(Reader& r) override {
    const uint32_t n = *r.ReadU32();
    log_.clear();
    for (uint32_t i = 0; i < n; ++i) {
      uint16_t channel = *r.ReadU16();
      uint32_t code = *r.ReadU32();
      bool link = *r.ReadBool();
      log_.push_back({channel, code, link});
    }
    return Status::Ok();
  }

  struct Entry {
    uint16_t channel;
    uint32_t code;
    bool had_link;
  };
  const std::vector<Entry>& log() const { return log_; }

 private:
  std::vector<Entry> log_;
};

// Receives only channel 10 until it has read 2 messages, then anything.
// Used to exercise out-of-order (channel-selective) receive, §4.2.2.2.
class SelectiveProgram : public RecorderProgram {
 public:
  std::vector<uint16_t> ReceiveChannels() const override {
    if (log().size() < 2) {
      return {10};
    }
    return {};
  }
};

// Requests one child via the full process-control chain, remembers the
// child's pid and its DELIVERTOKERNEL link, and optionally destroys it.
class SpawnerProgram : public UserProgram {
 public:
  static constexpr uint16_t kReplyChannel = 6;

  void OnStart(KernelApi& api) override {
    api.RequestCreateProcess("child", NodeId{2}, kReplyChannel, {});
  }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    (void)api;
    if (msg.channel != kReplyChannel) {
      return;
    }
    auto reply = DecodeCreateProcessReply(msg.body);
    if (reply.ok() && reply->ok) {
      child_ = reply->created;
      dtk_link_ = msg.passed_link;
    }
  }

  void SaveState(Writer& w) const override {
    w.WriteProcessId(child_);
    w.WriteU32(dtk_link_.value);
  }
  Status LoadState(Reader& r) override {
    child_ = *r.ReadProcessId();
    dtk_link_ = LinkId{*r.ReadU32()};
    return Status::Ok();
  }

  ProcessId child() const { return child_; }
  LinkId dtk_link() const { return dtk_link_; }

 private:
  ProcessId child_;
  LinkId dtk_link_;
};

struct Fixture {
  explicit Fixture(bool system_processes = false, size_t nodes = 2) {
    PublishingSystemConfig config;
    config.cluster.node_count = nodes;
    config.cluster.start_system_processes = system_processes;
    config.cluster.seed = 11;
    system = std::make_unique<PublishingSystem>(config);
    auto& registry = system->cluster().registry();
    registry.Register("recorder", [] { return std::make_unique<RecorderProgram>(); });
    registry.Register("selective", [] { return std::make_unique<SelectiveProgram>(); });
    registry.Register("echo", [] { return std::make_unique<EchoProgram>(); });
    registry.Register("child", [] { return std::make_unique<AccumulatorProgram>(); });
    registry.Register("spawner", [] { return std::make_unique<SpawnerProgram>(); });
  }

  NodeKernel* kernel(uint32_t node) { return system->cluster().kernel(NodeId{node}); }

  template <typename T>
  const T* Program(uint32_t node, const ProcessId& pid) {
    return dynamic_cast<const T*>(kernel(node)->ProgramFor(pid));
  }

  std::unique_ptr<PublishingSystem> system;
};

// Sends one message from a scratch process into `dst` with full control of
// channel/code/link.
class OneShotSender : public UserProgram {
 public:
  OneShotSender(Link target, bool pass_link) : target_(target), pass_link_(pass_link) {}

  void OnStart(KernelApi& api) override {
    LinkId pass;
    if (pass_link_) {
      pass = *api.CreateLink(/*channel=*/77, /*code=*/123);
    }
    // Target links are injected as initial link 1.
    api.Send(LinkId{1}, Bytes{42}, pass);
    api.Exit();
  }
  void OnMessage(KernelApi&, const DeliveredMessage&) override {}
  void SaveState(Writer& w) const override { (void)w; }
  Status LoadState(Reader&) override { return Status::Ok(); }

 private:
  Link target_;
  bool pass_link_;
};

TEST(DemosKernel, MessagesCarryTheLinksChannelAndCode) {
  Fixture f;
  auto dst = f.system->cluster().Spawn(NodeId{2}, "recorder");
  f.system->cluster().registry().Register("oneshot", [&dst] {
    return std::make_unique<OneShotSender>(Link{*dst, 33, 4444, 0}, false);
  });
  f.system->cluster().Spawn(NodeId{1}, "oneshot", {Link{*dst, 33, 4444, 0}});
  f.system->RunFor(Seconds(5));

  const auto* program = f.Program<RecorderProgram>(2, *dst);
  ASSERT_EQ(program->log().size(), 1u);
  EXPECT_EQ(program->log()[0].channel, 33);
  EXPECT_EQ(program->log()[0].code, 4444u);
  EXPECT_FALSE(program->log()[0].had_link);
}

TEST(DemosKernel, PassedLinksMoveIntoTheReceiversTable) {
  Fixture f;
  auto dst = f.system->cluster().Spawn(NodeId{2}, "recorder");
  f.system->cluster().registry().Register("oneshot", [&dst] {
    return std::make_unique<OneShotSender>(Link{*dst, 1, 0, 0}, true);
  });
  f.system->cluster().Spawn(NodeId{1}, "oneshot", {Link{*dst, 1, 0, 0}});
  f.system->RunFor(Seconds(5));

  const auto* program = f.Program<RecorderProgram>(2, *dst);
  ASSERT_EQ(program->log().size(), 1u);
  EXPECT_TRUE(program->log()[0].had_link)
      << "§4.2.2.3: when the message is read the link moves into the receiver's table";
}

TEST(DemosKernel, ChannelSelectiveReceiveReadsOutOfQueueOrder) {
  Fixture f;
  auto dst = f.system->cluster().Spawn(NodeId{2}, "selective");
  // Send channel-20 messages first, then channel-10 ones.  The selective
  // reader wants channel 10 first, so it must read out of queue order.
  auto pinger_prog = [&]() {
    class Burst : public UserProgram {
     public:
      void OnStart(KernelApi& api) override {
        api.Send(LinkId{1}, Bytes{1});  // channel 20 (link 1)
        api.Send(LinkId{1}, Bytes{2});
        api.Send(LinkId{2}, Bytes{3});  // channel 10 (link 2)
        api.Send(LinkId{2}, Bytes{4});
        api.Exit();
      }
      void OnMessage(KernelApi&, const DeliveredMessage&) override {}
      void SaveState(Writer&) const override {}
      Status LoadState(Reader&) override { return Status::Ok(); }
    };
    return std::make_unique<Burst>();
  };
  f.system->cluster().registry().Register("burst",
                                          [&pinger_prog] { return pinger_prog(); });
  f.system->cluster().Spawn(NodeId{1}, "burst",
                            {Link{*dst, 20, 0, 0}, Link{*dst, 10, 0, 0}});
  f.system->RunFor(Seconds(10));

  const auto* program = f.Program<SelectiveProgram>(2, *dst);
  ASSERT_EQ(program->log().size(), 4u);
  // The two channel-10 messages must have been read first.
  EXPECT_EQ(program->log()[0].channel, 10);
  EXPECT_EQ(program->log()[1].channel, 10);
  EXPECT_EQ(program->log()[2].channel, 20);
  EXPECT_EQ(program->log()[3].channel, 20);
}

TEST(DemosKernel, CreateProcessChainProducesChildAndControlLink) {
  Fixture f(/*system_processes=*/true, /*nodes=*/3);
  f.system->RunFor(Seconds(2));  // Boot the system processes.
  auto spawner = f.system->cluster().Spawn(NodeId{1}, "spawner");
  f.system->RunFor(Seconds(30));

  const auto* program = f.Program<SpawnerProgram>(1, *spawner);
  ASSERT_NE(program, nullptr);
  ASSERT_TRUE(program->child().IsValid()) << "reply did not arrive";
  EXPECT_EQ(program->child().origin, NodeId{2}) << "child created on the requested node";
  EXPECT_TRUE(program->dtk_link().IsValid());
  EXPECT_EQ(f.kernel(2)->QueryProcessState(program->child()),
            ProcessStateAnswer::kFunctioning);
  // The chain really ran through the system processes.
  const auto* manager = dynamic_cast<const ProcessManagerProgram*>(
      f.kernel(1)->ProgramFor(f.system->cluster().process_manager()));
  ASSERT_NE(manager, nullptr);
  EXPECT_GE(manager->forwarded(), 1u);
}

TEST(DemosKernel, DestroyViaDeliverToKernelLink) {
  Fixture f(/*system_processes=*/true, /*nodes=*/3);
  f.system->RunFor(Seconds(2));
  auto spawner = f.system->cluster().Spawn(NodeId{1}, "spawner");
  f.system->RunFor(Seconds(30));
  const auto* program = f.Program<SpawnerProgram>(1, *spawner);
  ASSERT_TRUE(program->child().IsValid());

  // Drive the destroy through the spawner's DTK link by injecting a control
  // op from a helper: reuse the kernel's own test surface instead.
  ProcessId child = program->child();
  // Send kDestroyProcess over a DTK link directly.
  class Destroyer : public UserProgram {
   public:
    void OnStart(KernelApi& api) override {
      api.Send(LinkId{1}, EncodeOpOnly(KernelOp::kDestroyProcess));
      api.Exit();
    }
    void OnMessage(KernelApi&, const DeliveredMessage&) override {}
    void SaveState(Writer&) const override {}
    Status LoadState(Reader&) override { return Status::Ok(); }
  };
  f.system->cluster().registry().Register("destroyer",
                                          [] { return std::make_unique<Destroyer>(); });
  f.system->cluster().Spawn(NodeId{1}, "destroyer",
                            {Link{child, 0, 0, kLinkDeliverToKernel}});
  f.system->RunFor(Seconds(30));
  EXPECT_EQ(f.kernel(2)->QueryProcessState(child), ProcessStateAnswer::kUnknown);
}

TEST(DemosKernel, MoveLinkInstallsIntoControlledProcess) {
  Fixture f;
  auto target = f.system->cluster().Spawn(NodeId{2}, "recorder");
  auto echo = f.system->cluster().Spawn(NodeId{2}, "echo");

  // Mover holds: link 1 = DTK to target, link 2 = a link to echo to move.
  class Mover : public UserProgram {
   public:
    void OnStart(KernelApi& api) override {
      api.Send(LinkId{1}, EncodeOpOnly(KernelOp::kMoveLink), LinkId{2});
      api.Exit();
    }
    void OnMessage(KernelApi&, const DeliveredMessage&) override {}
    void SaveState(Writer&) const override {}
    Status LoadState(Reader&) override { return Status::Ok(); }
  };
  f.system->cluster().registry().Register("mover", [] { return std::make_unique<Mover>(); });
  f.system->cluster().Spawn(
      NodeId{1}, "mover",
      {Link{*target, 0, 0, kLinkDeliverToKernel}, Link{*echo, 1, 555, 0}});
  f.system->RunFor(Seconds(10));

  // The moved link occupies the target's next table slot (slot 1: it had no
  // initial links).  The MOVELINK consumed a read.
  auto reads = f.kernel(2)->ReadsDone(*target);
  ASSERT_TRUE(reads.ok());
  EXPECT_EQ(*reads, 1u);
}

TEST(DemosKernel, StopHoldsMessagesAndStartReleasesThem) {
  Fixture f;
  auto dst = f.system->cluster().Spawn(NodeId{2}, "recorder");
  f.system->RunFor(Millis(50));
  ASSERT_TRUE(f.kernel(2)->StopProcess(*dst).ok());

  f.system->cluster().registry().Register("oneshot", [&dst] {
    return std::make_unique<OneShotSender>(Link{*dst, 5, 0, 0}, false);
  });
  f.system->cluster().Spawn(NodeId{1}, "oneshot", {Link{*dst, 5, 0, 0}});
  f.system->RunFor(Seconds(5));
  EXPECT_TRUE(f.Program<RecorderProgram>(2, *dst)->log().empty());

  ASSERT_TRUE(f.kernel(2)->StartProcess(*dst).ok());
  f.system->RunFor(Seconds(5));
  EXPECT_EQ(f.Program<RecorderProgram>(2, *dst)->log().size(), 1u);
}

TEST(DemosKernel, NamedLinkServerRegistersAndResolves) {
  Fixture f(/*system_processes=*/true, /*nodes=*/2);
  f.system->RunFor(Seconds(2));
  auto echo = f.system->cluster().Spawn(NodeId{2}, "echo");

  // Registrar: registers a link to echo under "printer", then looks it up
  // and sends a message through the resolved link.
  class Registrar : public UserProgram {
   public:
    void OnStart(KernelApi& api) override {
      api.Send(LinkId{1}, EncodeNameRegister("printer"), LinkId{2});
      auto reply = api.CreateLink(/*channel=*/50, 0);
      api.Send(LinkId{1}, EncodeNameLookup("printer"), *reply);
    }
    void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
      if (msg.channel != 50) {
        return;
      }
      auto reply = DecodeNameReply(msg.body);
      found_ = reply.ok() && reply->found;
      if (found_ && msg.passed_link.IsValid()) {
        api.Send(msg.passed_link, Bytes{99});
      }
    }
    void SaveState(Writer& w) const override { w.WriteBool(found_); }
    Status LoadState(Reader& r) override {
      found_ = *r.ReadBool();
      return Status::Ok();
    }
    bool found() const { return found_; }

   private:
    bool found_ = false;
  };
  f.system->cluster().registry().Register("registrar",
                                          [] { return std::make_unique<Registrar>(); });
  auto registrar = f.system->cluster().Spawn(
      NodeId{1}, "registrar",
      {Link{f.system->cluster().name_server(), kNameServiceChannel, 0, 0},
       Link{*echo, 1, 0, 0}});
  f.system->RunFor(Seconds(30));

  const auto* program = f.Program<Registrar>(1, *registrar);
  ASSERT_NE(program, nullptr);
  EXPECT_TRUE(program->found());
  EXPECT_EQ(f.Program<EchoProgram>(2, *echo)->echoed(), 1u)
      << "the looked-up link must actually reach the registered process";
}

TEST(DemosKernel, IdenticalSeedsProduceIdenticalRuns) {
  auto run = [] {
    Fixture f;
    auto echo = f.system->cluster().Spawn(NodeId{2}, "echo");
    f.system->cluster().registry().Register(
        "pinger", [] { return std::make_unique<PingerProgram>(25); });
    auto pinger = f.system->cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
    f.system->RunFor(Seconds(60));
    const auto* program = f.Program<PingerProgram>(1, *pinger);
    Writer w;
    program->SaveState(w);
    return w.TakeBytes();
  };
  EXPECT_EQ(run(), run()) << "whole-system runs must be bit-for-bit reproducible";
}

TEST(DemosKernel, SendOverUnknownLinkFails) {
  Fixture f;
  auto echo = f.system->cluster().Spawn(NodeId{2}, "echo");
  class BadSender : public UserProgram {
   public:
    void OnStart(KernelApi& api) override {
      status_ = api.Send(LinkId{42}, Bytes{1});
    }
    void OnMessage(KernelApi&, const DeliveredMessage&) override {}
    void SaveState(Writer&) const override {}
    Status LoadState(Reader&) override { return Status::Ok(); }
    Status status_ = Status::Ok();
  };
  auto* raw = new BadSender();  // Owned by the kernel once instantiated.
  f.system->cluster().registry().Register(
      "bad", [raw] { return std::unique_ptr<UserProgram>(raw); });
  f.system->cluster().Spawn(NodeId{1}, "bad");
  f.system->RunFor(Seconds(2));
  EXPECT_EQ(raw->status_.code(), StatusCode::kNotFound);
  (void)echo;
}

}  // namespace
}  // namespace publishing
