// Network-partition tests (§3.6).
//
// "With a single recorder, network partitioning can not be handled" — the
// recorder's side keeps working, cross-partition traffic suspends, and on
// rejoin the guaranteed transport heals the conversation exactly-once,
// PROVIDED the recovery manager did not try to resurrect the unreachable
// node's processes in the meantime (the documented chaos case, demonstrated
// below with the watchdog disabled/enabled respectively).

#include <gtest/gtest.h>

#include "src/core/publishing_system.h"
#include "src/obs/lifecycle.h"
#include "src/obs/observability.h"
#include "src/obs/oracle.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

PublishingSystemConfig BaseConfig() {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  config.cluster.seed = 13;
  // Keep the watchdog out of the way for the clean-heal cases: a partition
  // looks exactly like a node crash to it (§3.6's point).
  config.recovery.node_policy = NodeRecoveryPolicy::kIgnore;
  return config;
}

TEST(Partition, CrossPartitionTrafficSuspendsAndResumesExactlyOnce) {
  PublishingSystem system(BaseConfig());
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(40); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  system.RunFor(Millis(60));
  const auto* p =
      dynamic_cast<const PingerProgram*>(system.cluster().kernel(NodeId{1})->ProgramFor(*pinger));
  const uint64_t before = p->received();
  ASSERT_GT(before, 0u);
  ASSERT_LT(before, 40u);

  // Split node 2 away from the recorder+client side.
  system.cluster().medium().SetPartitionGroup(NodeId{2}, 1);
  system.RunFor(Seconds(3));
  EXPECT_LE(p->received(), before + 1) << "cross-partition progress must stop";

  // Heal: retransmissions deliver everything exactly once.
  system.cluster().medium().HealPartitions();
  system.RunFor(Seconds(120));
  EXPECT_EQ(p->received(), 40u);
  const auto* e =
      dynamic_cast<const EchoProgram*>(system.cluster().kernel(NodeId{2})->ProgramFor(*echo));
  EXPECT_EQ(e->echoed(), 40u);
}

TEST(Partition, IntraPartitionTrafficOnRecorderSideContinues) {
  PublishingSystem system(BaseConfig());
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(40); });
  // Both processes on node 1, same side as the recorder.
  auto echo = system.cluster().Spawn(NodeId{1}, "echo");
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  system.cluster().medium().SetPartitionGroup(NodeId{2}, 1);
  system.RunFor(Seconds(60));
  const auto* e =
      dynamic_cast<const EchoProgram*>(system.cluster().kernel(NodeId{1})->ProgramFor(*echo));
  EXPECT_EQ(e->echoed(), 40u) << "the recorder's partition is unaffected";
}

TEST(Partition, RecorderlessPartitionSuspendsEvenLocalTraffic) {
  // Node 2's intranode messages still go out on the wire for publishing
  // (§4.4.1); with the recorder unreachable they are never recorded, so the
  // medium never lets them be received: the partition without the recorder
  // freezes entirely (the paper's availability argument for §6.3).
  PublishingSystem system(BaseConfig());
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(40); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.cluster().Spawn(NodeId{2}, "pinger", {Link{*echo, 1, 0, 0}});

  system.RunFor(Millis(50));
  const auto* e =
      dynamic_cast<const EchoProgram*>(system.cluster().kernel(NodeId{2})->ProgramFor(*echo));
  const uint64_t before = e->echoed();
  system.cluster().medium().SetPartitionGroup(NodeId{2}, 1);
  system.RunFor(Seconds(3));
  EXPECT_LE(e->echoed(), before + 1);
}

TEST(Partition, SingleRecorderPlusWatchdogCausesTheDocumentedChaos) {
  // §3.6: "If the network splits, the part with the recorder will attempt to
  // restart ... all processes that were running on the now inaccessible part
  // of the network.  Should the network once again join, chaos would
  // result."  We demonstrate the hazard: the watchdog declares the
  // partitioned node dead and recovery tears down the (perfectly healthy)
  // process when the partition heals.
  PublishingSystemConfig config = BaseConfig();
  config.recovery.node_policy = NodeRecoveryPolicy::kRestartSameNode;
  config.recovery.watchdog_timeout = Millis(400);
  PublishingSystem system(config);
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(400); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  system.RunFor(Millis(60));
  system.cluster().medium().SetPartitionGroup(NodeId{2}, 1);
  system.RunFor(Seconds(5));
  // The watchdog has (wrongly) declared node 2 crashed.
  EXPECT_GE(system.recovery().stats().node_crashes_detected, 1u);

  system.cluster().medium().HealPartitions();
  system.RunFor(Seconds(30));
  // The stale recovery's recreate request destroyed and re-created the
  // healthy process — visible as a recovery that should never have happened.
  EXPECT_GE(system.recovery().stats().process_recoveries_started, 1u)
      << "this is the documented single-recorder partition hazard, not a feature";
}

TEST(Partition, SplitAndHealStaysOracleClean) {
  // Through the split, the stall, and the healed retransmissions, the
  // publication invariants hold: nothing was delivered unpublished (vetoed
  // frames don't reach stations), replay suppression absorbed the
  // duplicate retransmits, and at quiescence every guaranteed message that
  // touched the wire has been published.
  InvariantOracle oracle;
  PublishingSystem system(BaseConfig());
  LifecycleTracker tracker(&system.sim());
  tracker.AttachOracle(&oracle);
  Observability obs;
  obs.lifecycle = &tracker;
  system.EnableObservability(obs);

  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(40); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  system.RunFor(Millis(60));
  system.cluster().medium().SetPartitionGroup(NodeId{2}, 1);
  system.RunFor(Seconds(3));
  system.cluster().medium().HealPartitions();
  system.RunFor(Seconds(120));

  const auto* p =
      dynamic_cast<const PingerProgram*>(system.cluster().kernel(NodeId{1})->ProgramFor(*pinger));
  ASSERT_EQ(p->received(), 40u);
  oracle.CheckQuiescent();
  EXPECT_EQ(oracle.total_violations(), 0u) << oracle.ReportJson();
}

}  // namespace
}  // namespace publishing
