// Tests for the DESIGN.md §11 recovery fast path: windowed pipelined replay
// bursts (loss, reordering, go-back-N), recursive crashes landing inside an
// open replay window, the concurrent recovery scheduler's admission cap and
// byte budget, zero-copy replay delivery, and the replay-cursor/replay-list
// equivalence over stable storage.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/core/publishing_system.h"
#include "src/core/stable_storage.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/lifecycle.h"
#include "src/obs/observability.h"
#include "src/obs/oracle.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

PublishingSystemConfig BaseConfig(size_t nodes = 2) {
  PublishingSystemConfig config;
  config.cluster.node_count = nodes;
  config.cluster.start_system_processes = false;
  config.cluster.seed = 91;
  return config;
}

void RegisterPrograms(PublishingSystem& system, uint64_t ping_target) {
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register(
      "pinger", [ping_target] { return std::make_unique<PingerProgram>(ping_target); });
}

const PingerProgram* PingerAt(PublishingSystem& system, NodeId node, const ProcessId& pid) {
  return dynamic_cast<const PingerProgram*>(system.cluster().kernel(node)->ProgramFor(pid));
}

// Full observability stack around a PublishingSystem so the invariant oracle
// watches every lifecycle transition during a faulty pipelined recovery.
struct ObsSystem {
  MetricsRegistry registry;
  InvariantOracle oracle;
  FlightRecorder flight;
  PublishingSystem system;
  Tracer tracer;
  LifecycleTracker lifecycle;

  explicit ObsSystem(const PublishingSystemConfig& config)
      : oracle(OracleOptions{.policy = OraclePolicy::kCount}),
        system(config),
        tracer(&system.sim()),
        lifecycle(&system.sim()) {
    lifecycle.AttachTracer(&tracer);
    lifecycle.AttachMetrics(&registry);
    lifecycle.AttachOracle(&oracle);
    lifecycle.AttachFlightRecorder(&flight);
    oracle.AttachFlightRecorder(&flight);
    oracle.AttachMetrics(&registry);

    Observability obs;
    obs.metrics = &registry;
    obs.tracer = &tracer;
    obs.lifecycle = &lifecycle;
    system.EnableObservability(obs);
  }
};

// A lossy wire drops and effectively reorders burst frames mid-recovery
// (later bursts land while earlier ones are being retransmitted); the
// go-back-N window plus the kernel's strict-order reorder buffer must still
// deliver the exact replay, and the oracle must stay clean.
TEST(RecoveryReplay, PipelinedRecoverySurvivesLossyWire) {
  PublishingSystemConfig config = BaseConfig();
  config.cluster.faults.receiver_error_rate = 0.15;
  config.cluster.faults.listener_miss_rate = 0.05;
  // Small bursts and a wide window: many frames in flight at once, so drops
  // hit the middle of the stream and the reorder buffer actually fills.
  config.recovery.replay_burst_max_messages = 2;
  config.recovery.replay_window = 6;
  ObsSystem obs(config);
  PublishingSystem& system = obs.system;
  RegisterPrograms(system, 40);
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  system.RunFor(Millis(400));
  ASSERT_TRUE(system.CrashProcess(*echo).ok());
  ASSERT_TRUE(system.RunUntilRecovered(*echo, Seconds(600)));
  system.RunFor(Seconds(600));

  EXPECT_EQ(PingerAt(system, NodeId{1}, *pinger)->received(), 40u);
  const auto& stats = system.recovery().stats();
  EXPECT_GE(stats.replay_bursts_sent, 2u);
  EXPECT_GE(stats.replay_burst_retransmits, 1u)
      << "a 15% receiver error rate must cost at least one go-back-N resend";
  EXPECT_GT(system.cluster().kernel(NodeId{2})->stats().replay_bursts_accepted, 0u);

  obs.oracle.CheckQuiescent();
  EXPECT_EQ(obs.oracle.total_violations(), 0u);
}

// §3.5 recursive crash arriving while the replay window is open: the round
// must abort (timer cancelled, in-flight bytes returned to the budget) and
// the next round must still deliver the exact outcome.
TEST(RecoveryReplay, RecursiveCrashInsideReplayWindowAbortsRound) {
  PublishingSystemConfig config = BaseConfig();
  // One logged message per burst and a window of one stretches the replay
  // across many burst round-trips, guaranteeing the second crash lands while
  // the window is open.
  config.recovery.replay_burst_max_messages = 1;
  config.recovery.replay_window = 1;
  PublishingSystem system(config);
  RegisterPrograms(system, 60);
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  system.RunFor(Millis(150));
  ASSERT_TRUE(system.CrashProcess(*echo).ok());
  system.RunFor(Millis(30));
  ASSERT_TRUE(system.recovery().IsRecovering(*echo));
  ASSERT_TRUE(system.CrashProcess(*echo).ok());

  ASSERT_TRUE(system.RunUntilRecovered(*echo, Seconds(300)));
  system.RunFor(Seconds(300));
  EXPECT_EQ(PingerAt(system, NodeId{1}, *pinger)->received(), 60u);
  EXPECT_GE(system.recovery().stats().recursive_recoveries, 1u);
  EXPECT_EQ(system.recovery().outstanding_replay_bytes(), 0u)
      << "the aborted round must return its in-flight bytes to the budget";
}

// Mass crash under a tight admission cap: at most max_concurrent_recoveries
// run at any instant, the overflow is queued (and counted), and every queued
// recovery is eventually admitted and completes.
TEST(RecoveryReplay, SchedulerCapsConcurrentRecoveriesAndDrainsQueue) {
  constexpr size_t kProcesses = 8;
  constexpr uint64_t kMessagesEach = 10;
  PublishingSystemConfig config = BaseConfig();
  config.recovery.watchdog_period = Millis(50);
  config.recovery.watchdog_timeout = Millis(200);
  config.recovery.max_concurrent_recoveries = 2;
  PublishingSystem system(config);
  RegisterPrograms(system, kMessagesEach + 100);

  std::vector<ProcessId> echoes;
  for (size_t i = 0; i < kProcesses; ++i) {
    auto echo = system.cluster().Spawn(NodeId{2}, "echo");
    ASSERT_TRUE(echo.ok());
    ASSERT_TRUE(system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}}).ok());
    echoes.push_back(*echo);
  }

  NodeKernel* kernel = system.cluster().kernel(NodeId{2});
  for (int slice = 0; slice < 1000; ++slice) {
    bool all_done = true;
    for (const ProcessId& echo : echoes) {
      auto reads = kernel->ReadsDone(echo);
      if (!reads.ok() || *reads < kMessagesEach) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      break;
    }
    system.RunFor(Millis(100));
  }

  std::set<ProcessId> outstanding(echoes.begin(), echoes.end());
  system.recovery().set_recovery_done_callback(
      [&outstanding](const ProcessId& pid) { outstanding.erase(pid); });

  system.CrashNode(NodeId{2});
  size_t max_active = 0;
  for (int slice = 0; slice < 5000 && !outstanding.empty(); ++slice) {
    system.RunFor(Millis(10));
    max_active = std::max(max_active, system.recovery().active_recoveries());
  }

  EXPECT_TRUE(outstanding.empty()) << outstanding.size() << " processes never recovered";
  EXPECT_LE(max_active, 2u);
  EXPECT_GE(max_active, 1u);
  EXPECT_GE(system.recovery().stats().recoveries_deferred, kProcesses - 2);
  EXPECT_EQ(system.recovery().pending_recoveries(), 0u);
  EXPECT_EQ(system.recovery().outstanding_replay_bytes(), 0u);
}

// The replay path must move logged payloads from stable storage to kernel
// delivery without one physical byte copy: cursor entries, burst segments,
// and frame payloads are all refcounted views of the recorded wire bytes.
TEST(RecoveryReplay, PipelinedReplayCopiesNoPayloadBytes) {
  constexpr uint64_t kMessages = 30;
  PublishingSystem system(BaseConfig());
  RegisterPrograms(system, kMessages + 100);
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  (void)pinger;

  NodeKernel* kernel = system.cluster().kernel(NodeId{2});
  for (int slice = 0; slice < 1000; ++slice) {
    auto reads = kernel->ReadsDone(*echo);
    if (reads.ok() && *reads >= kMessages) {
      break;
    }
    system.RunFor(Millis(100));
  }

  ResetBufferStats();
  ASSERT_TRUE(system.CrashProcess(*echo).ok());
  ASSERT_TRUE(system.RunUntilRecovered(*echo, Seconds(600)));

  EXPECT_EQ(GetBufferStats().bytes_copied, 0u)
      << "replay must share the recorded wire bytes, never duplicate them";
  EXPECT_GT(system.recorder().stats().replay_bursts_seen, 0u);
  EXPECT_GE(system.recorder().stats().replay_segments_seen, kMessages);
}

// --- Replay cursor over stable storage ------------------------------------

ProcessId Pid(uint32_t node, uint32_t local) { return ProcessId{NodeId{node}, local}; }
MessageId Mid(const ProcessId& sender, uint64_t seq) { return MessageId{sender, seq}; }

// Replay() and the compatibility ReplayList() wrapper must agree exactly —
// including after read-order overrides and checkpoint compaction — and
// assembling the cursor must not copy any payload bytes.
TEST(ReplayCursor, MatchesReplayListAfterReadsAndCheckpoint) {
  StableStorage storage;
  ProcessId pid = Pid(1, 2);
  ProcessId sender = Pid(1, 3);
  storage.RecordCreation(pid, "prog", {}, NodeId{1});
  for (uint64_t i = 1; i <= 6; ++i) {
    storage.AppendMessage(pid, Mid(sender, i), Bytes(16, static_cast<uint8_t>(i)));
  }
  // Read 2 then 1: read order overrides arrival order for those two.
  storage.RecordRead(pid, Mid(sender, 2));
  storage.RecordRead(pid, Mid(sender, 1));
  // Checkpoint past the first read: message 2 is subsumed and drops out.
  storage.StoreCheckpoint(pid, Bytes(32, 0xCC), /*reads_done=*/1);

  auto list = storage.ReplayList(pid);
  ResetBufferStats();
  ReplayCursor cursor = storage.Replay(pid);
  EXPECT_EQ(GetBufferStats().bytes_copied, 0u);

  ASSERT_EQ(cursor.size(), list.size());
  size_t expected_bytes = 0;
  for (size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(cursor[i].id, list[i].id) << "entry " << i;
    expected_bytes += list[i].packet.size();
  }
  EXPECT_EQ(cursor.payload_bytes(), expected_bytes);
  // Read order (1) first, then unread arrivals (3..6); 2 was checkpointed.
  ASSERT_FALSE(cursor.empty());
  EXPECT_EQ(cursor[0].id.sequence, 1u);
  EXPECT_EQ(cursor.size(), 5u);
}

}  // namespace
}  // namespace publishing
