// Unit tests for src/common: ids, status, serialization, checksum, rng.

#include <gtest/gtest.h>

#include <set>

#include "src/common/checksum.h"
#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/serialization.h"
#include "src/common/status.h"

namespace publishing {
namespace {

TEST(Ids, OrderingAndEquality) {
  ProcessId a{NodeId{1}, 2};
  ProcessId b{NodeId{1}, 3};
  ProcessId c{NodeId{2}, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ProcessId{NodeId{1}, 2}));
  EXPECT_FALSE(a.IsValid() == false);
  EXPECT_FALSE(ProcessId{}.IsValid());
  EXPECT_FALSE(MessageId{}.IsValid());
  EXPECT_TRUE((MessageId{a, 1}).IsValid());
}

TEST(Ids, ToStringFormats) {
  EXPECT_EQ(ToString(NodeId{7}), "node7");
  EXPECT_EQ(ToString(ProcessId{NodeId{3}, 9}), "pid(3.9)");
  EXPECT_EQ(ToString(MessageId{ProcessId{NodeId{3}, 9}, 42}), "msg(3.9#42)");
}

TEST(Ids, HashDistinguishesComponents) {
  std::set<size_t> hashes;
  for (uint32_t node = 0; node < 10; ++node) {
    for (uint32_t local = 0; local < 10; ++local) {
      hashes.insert(std::hash<ProcessId>{}(ProcessId{NodeId{node}, local}));
    }
  }
  EXPECT_EQ(hashes.size(), 100u) << "hash collisions in a tiny id space";
}

TEST(Status, CodesAndMessages) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status err(StatusCode::kNotFound, "thing missing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NOT_FOUND: thing missing");
}

TEST(Result, ValueAndStatusPaths) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad(Status(StatusCode::kExhausted, "full"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kExhausted);
}

TEST(Serialization, PrimitivesRoundTrip) {
  Writer w;
  w.WriteU8(0xAB);
  w.WriteU16(0xBEEF);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI64(-123456789);
  w.WriteDouble(3.14159);
  w.WriteBool(true);
  w.WriteString("hello");
  w.WriteProcessId(ProcessId{NodeId{4}, 5});
  w.WriteMessageId(MessageId{ProcessId{NodeId{4}, 5}, 99});

  Reader r(std::span<const uint8_t>(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU16(), 0xBEEF);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*r.ReadI64(), -123456789);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_TRUE(*r.ReadBool());
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_EQ(*r.ReadProcessId(), (ProcessId{NodeId{4}, 5}));
  EXPECT_EQ(*r.ReadMessageId(), (MessageId{ProcessId{NodeId{4}, 5}, 99}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialization, UnderrunIsCorruptNotCrash) {
  Writer w;
  w.WriteU32(7);
  Reader r(std::span<const uint8_t>(w.bytes().data(), 2));  // Truncated.
  auto value = r.ReadU32();
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kCorrupt);
}

TEST(Serialization, BytesLengthPrefixValidated) {
  Writer w;
  w.WriteU32(1000);  // Claims 1000 bytes follow; none do.
  Reader r(std::span<const uint8_t>(w.bytes().data(), w.bytes().size()));
  auto bytes = r.ReadBytes();
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kCorrupt);
}

class SerializationSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SerializationSweep, ByteStringsOfAllSizesRoundTrip) {
  const size_t size = GetParam();
  Bytes data(size);
  for (size_t i = 0; i < size; ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  Writer w;
  w.WriteBytes(std::span<const uint8_t>(data.data(), data.size()));
  Reader r(std::span<const uint8_t>(w.bytes().data(), w.bytes().size()));
  auto out = r.ReadBytes();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, data);
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerializationSweep,
                         ::testing::Values(0, 1, 2, 3, 127, 128, 1024, 65536));

TEST(Checksum, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (the classic check value).
  const char* s = "123456789";
  uint32_t crc = Crc32(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s), 9));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Checksum, IncrementalMatchesOneShot) {
  Bytes data(1000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  uint32_t state = Crc32Init();
  state = Crc32Update(state, std::span<const uint8_t>(data.data(), 400));
  state = Crc32Update(state, std::span<const uint8_t>(data.data() + 400, 600));
  EXPECT_EQ(Crc32Final(state), Crc32(std::span<const uint8_t>(data.data(), data.size())));
}

class ChecksumCorruption : public ::testing::TestWithParam<size_t> {};

TEST_P(ChecksumCorruption, SingleBitFlipsAreDetected) {
  Bytes data(64, 0x5C);
  const uint32_t clean = Crc32(std::span<const uint8_t>(data.data(), data.size()));
  data[GetParam() / 8] ^= static_cast<uint8_t>(1u << (GetParam() % 8));
  EXPECT_NE(clean, Crc32(std::span<const uint8_t>(data.data(), data.size())));
}

INSTANTIATE_TEST_SUITE_P(BitPositions, ChecksumCorruption,
                         ::testing::Values(0, 1, 7, 8, 100, 255, 256, 511));

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowIsInRangeAndCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(99);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(55);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.NextU64() == child_b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace publishing
