// Property tests: the central theorem of publishing, checked adversarially —
// for ANY crash schedule, the final application state equals the crash-free
// run.  Parameterized over seeds, media, checkpoint policies, and crash
// counts.

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/rng.h"
#include "src/core/publishing_system.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

struct RunOutcome {
  Bytes pinger_state;
  uint64_t echo_count = 0;
  bool completed = false;
};

// Runs a ping-pong workload; if `crash_seed` != 0, injects `crashes` process
// crashes at pseudo-random points.
RunOutcome RunWorkload(MediumKind medium, uint64_t system_seed, uint64_t crash_seed,
                       int crashes, bool with_checkpoints) {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.medium = medium;
  config.cluster.start_system_processes = false;
  config.cluster.seed = system_seed;
  PublishingSystem system(config);
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(30); });
  if (with_checkpoints) {
    system.EnableCheckpointPolicy(std::make_unique<FixedIntervalPolicy>(Millis(200)));
  }

  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  if (crash_seed != 0) {
    Rng rng(crash_seed);
    for (int i = 0; i < crashes; ++i) {
      system.RunFor(Millis(static_cast<int64_t>(20 + rng.NextBelow(120))));
      // Alternate victims; sometimes both.
      const uint64_t pick = rng.NextBelow(3);
      if (pick == 0 || pick == 2) {
        system.CrashProcess(*echo);
      }
      if (pick == 1 || pick == 2) {
        system.CrashProcess(*pinger);
      }
      system.RunFor(Millis(static_cast<int64_t>(rng.NextBelow(200))));
    }
  }
  system.RunFor(Seconds(900));

  RunOutcome outcome;
  const auto* p =
      dynamic_cast<const PingerProgram*>(system.cluster().kernel(NodeId{1})->ProgramFor(*pinger));
  const auto* e =
      dynamic_cast<const EchoProgram*>(system.cluster().kernel(NodeId{2})->ProgramFor(*echo));
  if (p == nullptr || e == nullptr) {
    return outcome;
  }
  outcome.completed = p->done();
  outcome.echo_count = e->echoed();
  Writer w;
  p->SaveState(w);
  outcome.pinger_state = w.TakeBytes();
  return outcome;
}

using Param = std::tuple<MediumKind, uint64_t /*crash seed*/, int /*crashes*/, bool /*ckpt*/>;

class CrashEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(CrashEquivalence, CrashedRunMatchesCrashFreeRun) {
  const auto [medium, crash_seed, crashes, with_checkpoints] = GetParam();
  RunOutcome reference = RunWorkload(medium, 1, 0, 0, with_checkpoints);
  ASSERT_TRUE(reference.completed);
  ASSERT_EQ(reference.echo_count, 30u);

  RunOutcome crashed = RunWorkload(medium, 1, crash_seed, crashes, with_checkpoints);
  ASSERT_TRUE(crashed.completed) << "the workload must finish despite crashes";
  EXPECT_EQ(crashed.echo_count, reference.echo_count) << "exactly-once processing";
  EXPECT_EQ(crashed.pinger_state, reference.pinger_state)
      << "client state must be bit-identical to the crash-free run";
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const auto [medium, crash_seed, crashes, ckpt] = info.param;
  std::string name;
  switch (medium) {
    case MediumKind::kEthernet:
      name = "Ether";
      break;
    case MediumKind::kAcknowledgingEthernet:
      name = "AckEther";
      break;
    case MediumKind::kStarHub:
      name = "Star";
      break;
    case MediumKind::kTokenRing:
      name = "Ring";
      break;
  }
  name += "_seed" + std::to_string(crash_seed);
  name += "_crashes" + std::to_string(crashes);
  name += ckpt ? "_ckpt" : "_nockpt";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Media, CrashEquivalence,
    ::testing::Values(Param{MediumKind::kAcknowledgingEthernet, 101, 2, false},
                      Param{MediumKind::kAcknowledgingEthernet, 102, 3, true},
                      Param{MediumKind::kEthernet, 103, 2, false},
                      Param{MediumKind::kEthernet, 104, 2, true},
                      Param{MediumKind::kStarHub, 105, 2, false},
                      Param{MediumKind::kStarHub, 106, 3, true},
                      Param{MediumKind::kTokenRing, 107, 2, false},
                      Param{MediumKind::kTokenRing, 108, 2, true}),
    ParamName);

class CrashSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashSeedSweep, ManyRandomSchedulesAllConverge) {
  RunOutcome reference = RunWorkload(MediumKind::kAcknowledgingEthernet, 1, 0, 0, true);
  RunOutcome crashed =
      RunWorkload(MediumKind::kAcknowledgingEthernet, 1, GetParam(), 3, true);
  ASSERT_TRUE(crashed.completed);
  EXPECT_EQ(crashed.pinger_state, reference.pinger_state);
  EXPECT_EQ(crashed.echo_count, 30u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110, 121, 132));

// Node-crash variant: whole processors die at random points.
class NodeCrashSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NodeCrashSweep, NodeCrashSchedulesConverge) {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  config.cluster.seed = 1;
  PublishingSystem system(config);
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(25); });
  system.EnableCheckpointPolicy(std::make_unique<StorageBalancedPolicy>());
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  Rng rng(GetParam());
  system.RunFor(Millis(static_cast<int64_t>(30 + rng.NextBelow(100))));
  system.CrashNode(NodeId{2});
  system.RunFor(Seconds(900));

  const auto* p =
      dynamic_cast<const PingerProgram*>(system.cluster().kernel(NodeId{1})->ProgramFor(*pinger));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->received(), 25u);
  const auto* e =
      dynamic_cast<const EchoProgram*>(system.cluster().kernel(NodeId{2})->ProgramFor(*echo));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->echoed(), 25u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeCrashSweep, ::testing::Values(5, 15, 25, 35, 45, 55));

}  // namespace
}  // namespace publishing
