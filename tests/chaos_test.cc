// Chaos soak: everything that can crash, crashes — processes, whole nodes,
// and the recorder itself, in randomized order, repeatedly, while a
// multi-process workload runs across 4 nodes.  The run must still converge
// to the exact crash-free outcome.  This is the paper's thesis statement
// executed adversarially.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "src/common/rng.h"
#include "src/core/publishing_system.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/lifecycle.h"
#include "src/obs/observability.h"
#include "src/obs/oracle.h"
#include "tests/json_checker.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

struct ChaosWorld {
  explicit ChaosWorld(uint64_t seed) {
    PublishingSystemConfig config;
    config.cluster.node_count = 4;
    config.cluster.start_system_processes = false;
    config.cluster.seed = seed;
    config.recovery.watchdog_timeout = Millis(600);
    system = std::make_unique<PublishingSystem>(config);
    auto& registry = system->cluster().registry();
    registry.Register("echo", [] { return std::make_unique<EchoProgram>(); });
    registry.Register("pinger-a", [] { return std::make_unique<PingerProgram>(40); });
    registry.Register("pinger-b", [] { return std::make_unique<PingerProgram>(40); });
    system->EnableCheckpointPolicy(std::make_unique<StorageBalancedPolicy>(), Millis(100));

    // Two independent client/server pairs sharing the network.
    echo_a = *system->cluster().Spawn(NodeId{3}, "echo");
    echo_b = *system->cluster().Spawn(NodeId{4}, "echo");
    pinger_a = *system->cluster().Spawn(NodeId{1}, "pinger-a", {Link{echo_a, 1, 0, 0}});
    pinger_b = *system->cluster().Spawn(NodeId{2}, "pinger-b", {Link{echo_b, 1, 0, 0}});
  }

  struct Outcome {
    uint64_t a_received = 0;
    uint64_t b_received = 0;
    uint64_t a_echoed = 0;
    uint64_t b_echoed = 0;
    Bytes a_state;
    Bytes b_state;

    friend bool operator==(const Outcome&, const Outcome&) = default;
  };

  Outcome Finish() {
    system->RunFor(Seconds(2400));
    Outcome outcome;
    const auto* pa = dynamic_cast<const PingerProgram*>(
        system->cluster().kernel(NodeId{1})->ProgramFor(pinger_a));
    const auto* pb = dynamic_cast<const PingerProgram*>(
        system->cluster().kernel(NodeId{2})->ProgramFor(pinger_b));
    const auto* ea = dynamic_cast<const EchoProgram*>(
        system->cluster().kernel(NodeId{3})->ProgramFor(echo_a));
    const auto* eb = dynamic_cast<const EchoProgram*>(
        system->cluster().kernel(NodeId{4})->ProgramFor(echo_b));
    if (pa == nullptr || pb == nullptr || ea == nullptr || eb == nullptr) {
      return outcome;
    }
    outcome.a_received = pa->received();
    outcome.b_received = pb->received();
    outcome.a_echoed = ea->echoed();
    outcome.b_echoed = eb->echoed();
    Writer wa;
    pa->SaveState(wa);
    outcome.a_state = wa.TakeBytes();
    Writer wb;
    pb->SaveState(wb);
    outcome.b_state = wb.TakeBytes();
    return outcome;
  }

  std::unique_ptr<PublishingSystem> system;
  ProcessId echo_a, echo_b, pinger_a, pinger_b;
};

// 8 randomized fault events drawn from all fault classes, driven by `seed`.
void InjectChaos(ChaosWorld& world, uint64_t seed) {
  Rng rng(seed);
  bool recorder_down = false;
  for (int event = 0; event < 8; ++event) {
    world.system->RunFor(Millis(static_cast<int64_t>(40 + rng.NextBelow(250))));
    switch (rng.NextBelow(recorder_down ? 6 : 5)) {
      case 0:
        world.system->CrashProcess(world.echo_a);
        break;
      case 1:
        world.system->CrashProcess(world.echo_b);
        break;
      case 2:
        world.system->CrashProcess(world.pinger_a);
        break;
      case 3:
        world.system->CrashNode(NodeId{static_cast<uint32_t>(1 + rng.NextBelow(4))});
        break;
      case 4:
        if (!recorder_down) {
          world.system->CrashRecorder();
          recorder_down = true;
        }
        break;
      case 5:
        world.system->RestartRecorder();
        recorder_down = false;
        break;
    }
    // Never leave the recorder down for long: nothing moves while it is out.
    if (recorder_down && rng.NextBernoulli(0.7)) {
      world.system->RunFor(Millis(static_cast<int64_t>(rng.NextBelow(300))));
      world.system->RestartRecorder();
      recorder_down = false;
    }
  }
  if (recorder_down) {
    world.system->RestartRecorder();
  }
}

class ChaosSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSweep, EverythingCrashesAndTheOutcomeIsStillExact) {
  // Reference: the crash-free world.
  ChaosWorld::Outcome reference = ChaosWorld(7).Finish();
  ASSERT_EQ(reference.a_received, 40u);
  ASSERT_EQ(reference.b_received, 40u);

  ChaosWorld world(7);
  InjectChaos(world, GetParam());

  ChaosWorld::Outcome chaotic = world.Finish();
  EXPECT_EQ(chaotic.a_received, 40u);
  EXPECT_EQ(chaotic.b_received, 40u);
  EXPECT_EQ(chaotic.a_echoed, reference.a_echoed) << "exactly-once on server A";
  EXPECT_EQ(chaotic.b_echoed, reference.b_echoed) << "exactly-once on server B";
  EXPECT_EQ(chaotic.a_state, reference.a_state) << "client A state bit-identical";
  EXPECT_EQ(chaotic.b_state, reference.b_state) << "client B state bit-identical";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005, 6006, 7007, 8008));

// ---------------------------------------------------------------------------
// Causal observability under chaos (ISSUE 4)
// ---------------------------------------------------------------------------

// The causal stack for a chaos world.  Declared before the world in each
// test so the sinks outlive the system that holds pointers into them.
struct ChaosObs {
  MetricsRegistry metrics;
  InvariantOracle oracle{OracleOptions{.policy = OraclePolicy::kCount}};
  FlightRecorder flight;
  std::unique_ptr<LifecycleTracker> tracker;

  void Attach(PublishingSystem& system) {
    tracker = std::make_unique<LifecycleTracker>(&system.sim());
    tracker->AttachMetrics(&metrics);
    tracker->AttachOracle(&oracle);
    tracker->AttachFlightRecorder(&flight);
    Observability obs;
    obs.lifecycle = tracker.get();
    system.EnableObservability(obs);
  }

  uint64_t StageCount(LifecycleStage stage) {
    return metrics.GetCounter("lifecycle.stage", {{"stage", LifecycleStageName(stage)}})
        ->value();
  }
};

// Returns the id of some message whose flight-recorder events (union across
// all node rings) cover the complete publish pipeline, or "" if none does.
std::string FullChainMessage(const FlightRecorder& flight, uint32_t node_count) {
  std::map<MessageId, std::set<LifecycleStage>> stages;
  for (uint32_t n = 0; n <= node_count; ++n) {
    for (const LifecycleEvent& event : flight.NodeEvents(NodeId{n})) {
      stages[event.ctx.id].insert(event.stage);
    }
  }
  for (const auto& [id, seen] : stages) {
    if (seen.contains(LifecycleStage::kSent) &&
        seen.contains(LifecycleStage::kOnWire) &&
        seen.contains(LifecycleStage::kOverheard) &&
        seen.contains(LifecycleStage::kPublished) &&
        seen.contains(LifecycleStage::kDurable) &&
        seen.contains(LifecycleStage::kDelivered) &&
        seen.contains(LifecycleStage::kRead)) {
      return ToString(id);
    }
  }
  return "";
}

TEST(ChaosFlightRecorder, CrashDumpIsDeterministicAndHoldsFullLifecycles) {
  auto run = [](std::string* dump, std::string* full_chain_id) {
    ChaosObs obs;
    ChaosWorld world(7);
    obs.Attach(*world.system);
    world.system->RunFor(Seconds(1));  // Mid-traffic: messages in flight.
    EXPECT_TRUE(world.system->CrashProcess(world.echo_a).ok());
    // CrashProcess dumped the rings at injection time, before recovery
    // started rewriting history.
    EXPECT_EQ(obs.flight.dump_count(), 1u);
    *dump = obs.flight.last_dump();
    *full_chain_id = FullChainMessage(obs.flight, 4);
  };

  std::string dump_a, chain_a;
  run(&dump_a, &chain_a);
  EXPECT_TRUE(JsonChecker(dump_a).Valid());
  EXPECT_NE(dump_a.find("\"reason\":\"crash_process\""), std::string::npos);
  // At least one in-flight message's complete lifecycle — sent, on-wire,
  // overheard, published, durable, delivered, read — is in the dump.
  ASSERT_FALSE(chain_a.empty());
  EXPECT_NE(dump_a.find("\"id\":\"" + chain_a + "\""), std::string::npos);

  // Identical virtual-time runs produce byte-identical dumps.
  std::string dump_b, chain_b;
  run(&dump_b, &chain_b);
  EXPECT_EQ(dump_a, dump_b);
  EXPECT_EQ(chain_a, chain_b);
}

TEST(ChaosOracle, FullChaosSweepIsOracleClean) {
  // The strongest end-to-end claim the oracle can make: through process,
  // node, and recorder crashes, no delivery ever outran publication or
  // durability, replay never duplicated a read, and recovered processes
  // re-read in the original order.
  ChaosObs obs;
  ChaosWorld world(7);
  obs.Attach(*world.system);
  InjectChaos(world, 1001);
  ChaosWorld::Outcome outcome = world.Finish();
  obs.oracle.CheckQuiescent();

  EXPECT_EQ(outcome.a_received, 40u);
  EXPECT_EQ(outcome.b_received, 40u);
  EXPECT_EQ(obs.oracle.total_violations(), 0u) << obs.oracle.ReportJson();
  // Chaos actually exercised the machinery under observation.  (The metrics
  // counters, unlike the bounded table, survive hours of virtual-time
  // control traffic evicting early records.)
  EXPECT_GT(obs.StageCount(LifecycleStage::kReplayed), 0u);
  EXPECT_GT(obs.StageCount(LifecycleStage::kPublished), 0u);
  EXPECT_GT(obs.StageCount(LifecycleStage::kRead), 0u);
}

}  // namespace
}  // namespace publishing
