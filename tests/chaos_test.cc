// Chaos soak: everything that can crash, crashes — processes, whole nodes,
// and the recorder itself, in randomized order, repeatedly, while a
// multi-process workload runs across 4 nodes.  The run must still converge
// to the exact crash-free outcome.  This is the paper's thesis statement
// executed adversarially.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/publishing_system.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

struct ChaosWorld {
  explicit ChaosWorld(uint64_t seed) {
    PublishingSystemConfig config;
    config.cluster.node_count = 4;
    config.cluster.start_system_processes = false;
    config.cluster.seed = seed;
    config.recovery.watchdog_timeout = Millis(600);
    system = std::make_unique<PublishingSystem>(config);
    auto& registry = system->cluster().registry();
    registry.Register("echo", [] { return std::make_unique<EchoProgram>(); });
    registry.Register("pinger-a", [] { return std::make_unique<PingerProgram>(40); });
    registry.Register("pinger-b", [] { return std::make_unique<PingerProgram>(40); });
    system->EnableCheckpointPolicy(std::make_unique<StorageBalancedPolicy>(), Millis(100));

    // Two independent client/server pairs sharing the network.
    echo_a = *system->cluster().Spawn(NodeId{3}, "echo");
    echo_b = *system->cluster().Spawn(NodeId{4}, "echo");
    pinger_a = *system->cluster().Spawn(NodeId{1}, "pinger-a", {Link{echo_a, 1, 0, 0}});
    pinger_b = *system->cluster().Spawn(NodeId{2}, "pinger-b", {Link{echo_b, 1, 0, 0}});
  }

  struct Outcome {
    uint64_t a_received = 0;
    uint64_t b_received = 0;
    uint64_t a_echoed = 0;
    uint64_t b_echoed = 0;
    Bytes a_state;
    Bytes b_state;

    friend bool operator==(const Outcome&, const Outcome&) = default;
  };

  Outcome Finish() {
    system->RunFor(Seconds(2400));
    Outcome outcome;
    const auto* pa = dynamic_cast<const PingerProgram*>(
        system->cluster().kernel(NodeId{1})->ProgramFor(pinger_a));
    const auto* pb = dynamic_cast<const PingerProgram*>(
        system->cluster().kernel(NodeId{2})->ProgramFor(pinger_b));
    const auto* ea = dynamic_cast<const EchoProgram*>(
        system->cluster().kernel(NodeId{3})->ProgramFor(echo_a));
    const auto* eb = dynamic_cast<const EchoProgram*>(
        system->cluster().kernel(NodeId{4})->ProgramFor(echo_b));
    if (pa == nullptr || pb == nullptr || ea == nullptr || eb == nullptr) {
      return outcome;
    }
    outcome.a_received = pa->received();
    outcome.b_received = pb->received();
    outcome.a_echoed = ea->echoed();
    outcome.b_echoed = eb->echoed();
    Writer wa;
    pa->SaveState(wa);
    outcome.a_state = wa.TakeBytes();
    Writer wb;
    pb->SaveState(wb);
    outcome.b_state = wb.TakeBytes();
    return outcome;
  }

  std::unique_ptr<PublishingSystem> system;
  ProcessId echo_a, echo_b, pinger_a, pinger_b;
};

class ChaosSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSweep, EverythingCrashesAndTheOutcomeIsStillExact) {
  // Reference: the crash-free world.
  ChaosWorld::Outcome reference = ChaosWorld(7).Finish();
  ASSERT_EQ(reference.a_received, 40u);
  ASSERT_EQ(reference.b_received, 40u);

  // Chaos: 8 randomized fault events drawn from all fault classes.
  ChaosWorld world(7);
  Rng rng(GetParam());
  bool recorder_down = false;
  for (int event = 0; event < 8; ++event) {
    world.system->RunFor(Millis(static_cast<int64_t>(40 + rng.NextBelow(250))));
    switch (rng.NextBelow(recorder_down ? 6 : 5)) {
      case 0:
        world.system->CrashProcess(world.echo_a);
        break;
      case 1:
        world.system->CrashProcess(world.echo_b);
        break;
      case 2:
        world.system->CrashProcess(world.pinger_a);
        break;
      case 3:
        world.system->CrashNode(NodeId{static_cast<uint32_t>(1 + rng.NextBelow(4))});
        break;
      case 4:
        if (!recorder_down) {
          world.system->CrashRecorder();
          recorder_down = true;
        }
        break;
      case 5:
        world.system->RestartRecorder();
        recorder_down = false;
        break;
    }
    // Never leave the recorder down for long: nothing moves while it is out.
    if (recorder_down && rng.NextBernoulli(0.7)) {
      world.system->RunFor(Millis(static_cast<int64_t>(rng.NextBelow(300))));
      world.system->RestartRecorder();
      recorder_down = false;
    }
  }
  if (recorder_down) {
    world.system->RestartRecorder();
  }

  ChaosWorld::Outcome chaotic = world.Finish();
  EXPECT_EQ(chaotic.a_received, 40u);
  EXPECT_EQ(chaotic.b_received, 40u);
  EXPECT_EQ(chaotic.a_echoed, reference.a_echoed) << "exactly-once on server A";
  EXPECT_EQ(chaotic.b_echoed, reference.b_echoed) << "exactly-once on server B";
  EXPECT_EQ(chaotic.a_state, reference.a_state) << "client A state bit-identical";
  EXPECT_EQ(chaotic.b_state, reference.b_state) << "client B state bit-identical";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005, 6006, 7007, 8008));

}  // namespace
}  // namespace publishing
