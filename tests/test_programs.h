// Deterministic programs shared by the test suites and benches.

#ifndef TESTS_TEST_PROGRAMS_H_
#define TESTS_TEST_PROGRAMS_H_

#include <cstdint>
#include <vector>

#include "src/demos/program.h"

namespace publishing {

// Replies to every message: if the message passed a reply link, echoes the
// body back over it (consuming the link).
class EchoProgram : public UserProgram {
 public:
  void OnStart(KernelApi& api) override { (void)api; }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    ++echoed_;
    if (msg.passed_link.IsValid()) {
      api.Send(msg.passed_link, msg.body);
    }
  }

  void SaveState(Writer& w) const override { w.WriteU64(echoed_); }
  Status LoadState(Reader& r) override {
    auto echoed = r.ReadU64();
    if (!echoed.ok()) {
      return echoed.status();
    }
    echoed_ = *echoed;
    return Status::Ok();
  }

  uint64_t echoed() const { return echoed_; }

 private:
  uint64_t echoed_ = 0;
};

// Sends `target` pings over initial link 1 (each carrying a fresh reply
// link on channel 2) and counts the echoes.  The body of ping i is the
// 8-byte little-endian value i, so transcripts are comparable across runs.
class PingerProgram : public UserProgram {
 public:
  static constexpr uint16_t kPongChannel = 2;
  static constexpr uint32_t kServerLink = 1;

  explicit PingerProgram(uint64_t target = 10) : target_(target) {}

  void OnStart(KernelApi& api) override { SendNext(api); }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    if (msg.channel != kPongChannel) {
      return;
    }
    ++received_;
    transcript_.push_back(msg.body.size() >= 8 ? msg.body[0] : 0xFF);
    if (sent_ < target_) {
      SendNext(api);
    }
  }

  void SaveState(Writer& w) const override {
    w.WriteU64(target_);
    w.WriteU64(sent_);
    w.WriteU64(received_);
    w.WriteU32(static_cast<uint32_t>(transcript_.size()));
    for (uint8_t b : transcript_) {
      w.WriteU8(b);
    }
  }

  Status LoadState(Reader& r) override {
    auto target = r.ReadU64();
    if (!target.ok()) {
      return target.status();
    }
    target_ = *target;
    auto sent = r.ReadU64();
    if (!sent.ok()) {
      return sent.status();
    }
    sent_ = *sent;
    auto received = r.ReadU64();
    if (!received.ok()) {
      return received.status();
    }
    received_ = *received;
    auto count = r.ReadU32();
    if (!count.ok()) {
      return count.status();
    }
    transcript_.clear();
    for (uint32_t i = 0; i < *count; ++i) {
      auto b = r.ReadU8();
      if (!b.ok()) {
        return b.status();
      }
      transcript_.push_back(*b);
    }
    return Status::Ok();
  }

  uint64_t sent() const { return sent_; }
  uint64_t received() const { return received_; }
  bool done() const { return received_ >= target_; }
  const std::vector<uint8_t>& transcript() const { return transcript_; }

 private:
  void SendNext(KernelApi& api) {
    auto reply = api.CreateLink(kPongChannel, static_cast<uint32_t>(sent_));
    if (!reply.ok()) {
      return;
    }
    Writer w;
    w.WriteU64(sent_);
    ++sent_;
    api.Send(LinkId{kServerLink}, w.TakeBytes(), *reply);
  }

  uint64_t target_;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  std::vector<uint8_t> transcript_;
};

// Accumulates a checksum over everything it receives — used to compare a
// crash/recovery run against a crash-free run bit for bit.
class AccumulatorProgram : public UserProgram {
 public:
  void OnStart(KernelApi& api) override { (void)api; }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    (void)api;
    ++count_;
    for (uint8_t b : msg.body) {
      hash_ = hash_ * 1099511628211ull + b;
    }
    hash_ = hash_ * 1099511628211ull + msg.channel;
  }

  void SaveState(Writer& w) const override {
    w.WriteU64(count_);
    w.WriteU64(hash_);
  }
  Status LoadState(Reader& r) override {
    auto count = r.ReadU64();
    if (!count.ok()) {
      return count.status();
    }
    count_ = *count;
    auto hash = r.ReadU64();
    if (!hash.ok()) {
      return hash.status();
    }
    hash_ = *hash;
    return Status::Ok();
  }

  uint64_t count() const { return count_; }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t count_ = 0;
  uint64_t hash_ = 14695981039346656037ull;
};

}  // namespace publishing

#endif  // TESTS_TEST_PROGRAMS_H_
