// Tests for the Chapter 5 open queuing model: simulation/analytic agreement,
// the paper's saturation findings, and the capacity ("115 users") claim.

#include <gtest/gtest.h>

#include "src/queueing/simulation.h"

namespace publishing {
namespace {

QueueingConfig MeanConfig() {
  QueueingConfig config;
  config.op = StandardOperatingPoints()[0];
  config.nodes = 5;
  config.disks = 1;
  config.duration = Seconds(200);
  config.seed = 7;
  return config;
}

TEST(Queueing, StateSizeDistributionIsNormalized) {
  double total = 0.0;
  for (const StateSizeBucket& bucket : StateSizeDistribution()) {
    total += bucket.fraction;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(MeanStateBytes(), 4096.0);
  EXPECT_LT(MeanStateBytes(), 65536.0);
}

TEST(Queueing, SimulationMatchesAnalyticUtilizations) {
  QueueingConfig config = MeanConfig();
  QueueingResult sim = RunQueueingSimulation(config);
  AnalyticUtilizations analytic = ComputeAnalyticUtilizations(config);

  EXPECT_NEAR(sim.network_utilization, analytic.network, 0.06);
  EXPECT_NEAR(sim.cpu_utilization, analytic.cpu, 0.05);
  EXPECT_NEAR(sim.disk_utilization, analytic.disk, 0.04);
}

TEST(Queueing, MeanOperatingPointViableAtFiveNodes) {
  QueueingConfig config = MeanConfig();
  QueueingResult result = RunQueueingSimulation(config);
  EXPECT_FALSE(result.Saturated())
      << "§5.1: \"the simple system was viable for at least 5 nodes\"";
  EXPECT_LT(result.network_utilization, 0.97);
}

TEST(Queueing, UtilizationGrowsMonotonicallyWithNodes) {
  double previous = 0.0;
  for (size_t nodes = 1; nodes <= 5; ++nodes) {
    QueueingConfig config = MeanConfig();
    config.nodes = nodes;
    AnalyticUtilizations u = ComputeAnalyticUtilizations(config);
    EXPECT_GT(u.network, previous);
    previous = u.network;
  }
}

TEST(Queueing, MaxSyscallRateSaturatesBeyondThreeNodes) {
  QueueingConfig config = MeanConfig();
  config.op = StandardOperatingPoints()[3];
  ASSERT_EQ(config.op.name, "max-syscall-rate");

  config.nodes = 3;
  AnalyticUtilizations three = ComputeAnalyticUtilizations(config);
  EXPECT_LT(three.network, 1.0) << "three nodes must still (barely) fit";

  config.nodes = 4;
  AnalyticUtilizations four = ComputeAnalyticUtilizations(config);
  EXPECT_GT(std::max(four.network, four.cpu), 1.0)
      << "§5.1: the max system-call point saturates with more than 3 nodes";
}

TEST(Queueing, UnbufferedDiskSaturatesAtMaxLongMessageRate) {
  QueueingConfig config = MeanConfig();
  config.op = StandardOperatingPoints()[4];
  ASSERT_EQ(config.op.name, "max-disk-rate");
  config.nodes = 5;

  config.buffered_writes = false;
  AnalyticUtilizations unbuffered = ComputeAnalyticUtilizations(config);
  EXPECT_GT(unbuffered.disk, 1.0)
      << "§5.1: one disk write per message saturates the disk system";

  config.buffered_writes = true;
  AnalyticUtilizations buffered = ComputeAnalyticUtilizations(config);
  EXPECT_LT(buffered.disk, 1.0)
      << "§5.1: \"this saturation was removed by allowing messages to be "
         "written out in 4k byte buffers\"";
}

TEST(Queueing, CapacityIsOneHundredFifteenUsers) {
  QueueingConfig config = MeanConfig();
  CapacityEstimate capacity = EstimateCapacity(config);
  EXPECT_EQ(capacity.max_nodes, 5u);
  EXPECT_NEAR(capacity.max_users, 115.0, 0.5)
      << "abstract: \"the recorder ... can support a system of up to 115 users\"";
}

TEST(Queueing, MoreDisksReduceDiskUtilization) {
  QueueingConfig config = MeanConfig();
  config.op = StandardOperatingPoints()[4];  // Disk-heavy point.
  config.nodes = 5;
  QueueingResult one = RunQueueingSimulation(config);
  config.disks = 3;
  QueueingResult three = RunQueueingSimulation(config);
  EXPECT_LT(three.disk_utilization, one.disk_utilization);
}

TEST(Queueing, CheckpointTrafficApproximatesMessageBytes) {
  // The storage-balanced policy writes about as many checkpoint bytes as it
  // publishes message bytes (§5.1).
  QueueingConfig config = MeanConfig();
  config.duration = Seconds(300);
  QueueingResult result = RunQueueingSimulation(config);
  ASSERT_GT(result.checkpoint_messages, 0u);
  const double data_msgs = static_cast<double>(result.messages - result.checkpoint_messages);
  const double msg_bytes =
      data_msgs * (config.op.short_msgs_per_second * kShortMessageBytes +
                   config.op.long_msgs_per_second * kLongMessageBytes) /
      (config.op.short_msgs_per_second + config.op.long_msgs_per_second);
  const double ckpt_bytes =
      static_cast<double>(result.checkpoint_messages) * kCheckpointMessageBytes;
  EXPECT_NEAR(ckpt_bytes / msg_bytes, 1.0, 0.25);
}

TEST(Queueing, RecorderBufferStaysSmall) {
  // §5.1: "we found no cases in which much buffer space was needed in the
  // recording node (at most 28k bytes)".
  QueueingConfig config = MeanConfig();
  QueueingResult result = RunQueueingSimulation(config);
  EXPECT_LT(result.peak_recorder_buffer_bytes, 64u * 1024u);
}

}  // namespace
}  // namespace publishing
