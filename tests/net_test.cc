// Unit tests for src/net: link layer, Ethernet (plain and acknowledging),
// star hub, and token ring.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "src/net/ethernet.h"
#include "src/net/link_layer.h"
#include "src/net/star_hub.h"
#include "src/net/token_ring.h"

namespace publishing {
namespace {

class TestStation : public Station {
 public:
  TestStation(Medium* medium, NodeId node) : medium_(medium), node_(node) {
    medium_->Attach(this);
  }
  ~TestStation() override { medium_->Detach(node_); }

  NodeId Address() const override { return node_; }
  void OnFrame(const Frame& frame) override { frames.push_back(frame); }

  std::vector<Frame> frames;

 private:
  Medium* medium_;
  NodeId node_;
};

class TestListener : public PromiscuousListener {
 public:
  bool OnWireFrame(const Frame& frame) override {
    frames.push_back(frame);
    return record_ok;
  }
  std::vector<Frame> frames;
  bool record_ok = true;
};

Frame MakeFrame(uint32_t src, uint32_t dst, size_t body_bytes = 64) {
  Frame frame;
  frame.src = NodeId{src};
  frame.dst = dst == 0xFFFFFFFF ? kBroadcastNode : NodeId{dst};
  frame.payload = LinkWrap(Bytes(body_bytes, 0x3C));
  return frame;
}

// ---------------------------------------------------------------------------
// Link layer
// ---------------------------------------------------------------------------

TEST(LinkLayer, WrapUnwrapRoundTrip) {
  Bytes body = {1, 2, 3, 4, 5};
  Buffer wire = LinkWrap(body);
  EXPECT_EQ(wire.size(), body.size() + 4);
  auto out = LinkUnwrap(wire);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, body);
}

TEST(LinkLayer, UnwrapIsZeroCopySliceOfWirePayload) {
  Buffer wire = LinkWrap(Bytes(64, 0x42));
  ResetBufferStats();
  auto body = LinkUnwrap(wire);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->data(), wire.data()) << "body must view the wire storage";
  EXPECT_EQ(GetBufferStats().bytes_copied, 0u);
}

TEST(LinkLayer, CorruptionIsRejected) {
  Buffer wire = LinkWrap(Bytes(100, 0x7E));
  wire = LinkCorrupt(wire, 50);
  EXPECT_FALSE(LinkUnwrap(wire).ok());
}

TEST(LinkLayer, CorruptionIsCopyOnWrite) {
  Buffer wire = LinkWrap(Bytes(100, 0x7E));
  ResetBufferStats();
  Buffer damaged = LinkCorrupt(wire, 50);
  EXPECT_TRUE(LinkUnwrap(wire).ok()) << "shared original must stay intact";
  EXPECT_FALSE(LinkUnwrap(damaged).ok());
  EXPECT_EQ(GetBufferStats().bytes_copied, wire.size());
}

TEST(LinkLayer, InvalidationGuaranteesRejection) {
  // §6.1.2: the recorder complements the checksum so the destination cannot
  // accept a frame the recorder failed to read.
  Buffer wire = LinkWrap(Bytes(32, 0x11));
  wire = LinkInvalidate(wire);
  EXPECT_FALSE(LinkUnwrap(wire).ok());
  // Invalidation is its own inverse (complement twice = original).
  wire = LinkInvalidate(wire);
  EXPECT_TRUE(LinkUnwrap(wire).ok());
}

TEST(LinkLayer, TooShortPayloadRejected) {
  EXPECT_FALSE(LinkUnwrap(Bytes{1, 2, 3}).ok());
}

// ---------------------------------------------------------------------------
// Medium-independent semantics, parameterized over all four media.
// ---------------------------------------------------------------------------

enum class Kind { kEther, kAckEther, kStar, kRing };

std::unique_ptr<Medium> MakeMedium(Simulator* sim, Kind kind) {
  switch (kind) {
    case Kind::kEther: {
      EthernetOptions options;
      options.acknowledging = false;
      return std::make_unique<Ethernet>(sim, MediumTimings{}, MediumFaults{}, 1, options);
    }
    case Kind::kAckEther: {
      EthernetOptions options;
      options.acknowledging = true;
      return std::make_unique<Ethernet>(sim, MediumTimings{}, MediumFaults{}, 1, options);
    }
    case Kind::kStar:
      return std::make_unique<StarHub>(sim, MediumTimings{}, MediumFaults{}, 1);
    case Kind::kRing:
      return std::make_unique<TokenRing>(sim, MediumTimings{}, MediumFaults{}, 1,
                                         TokenRingOptions{});
  }
  return nullptr;
}

class AllMediaTest : public ::testing::TestWithParam<Kind> {};

TEST_P(AllMediaTest, UnicastDeliversExactlyOnceWithValidPayload) {
  Simulator sim;
  auto medium = MakeMedium(&sim, GetParam());
  TestStation a(medium.get(), NodeId{1});
  TestStation b(medium.get(), NodeId{2});
  TestStation c(medium.get(), NodeId{3});

  medium->Send(MakeFrame(1, 2));
  sim.RunFor(Seconds(2));

  ASSERT_EQ(b.frames.size(), 1u);
  EXPECT_TRUE(LinkUnwrap(b.frames[0].payload).ok());
  EXPECT_TRUE(a.frames.empty());
  EXPECT_TRUE(c.frames.empty());
}

TEST_P(AllMediaTest, BroadcastReachesAllButSender) {
  Simulator sim;
  auto medium = MakeMedium(&sim, GetParam());
  TestStation a(medium.get(), NodeId{1});
  TestStation b(medium.get(), NodeId{2});
  TestStation c(medium.get(), NodeId{3});

  medium->Send(MakeFrame(1, 0xFFFFFFFF));
  sim.RunFor(Seconds(2));

  EXPECT_EQ(a.frames.size(), 0u);
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 1u);
}

TEST_P(AllMediaTest, PromiscuousListenerSeesEveryFrame) {
  Simulator sim;
  auto medium = MakeMedium(&sim, GetParam());
  TestStation a(medium.get(), NodeId{1});
  TestStation b(medium.get(), NodeId{2});
  TestListener listener;
  medium->AttachListener(&listener);

  for (int i = 0; i < 5; ++i) {
    medium->Send(MakeFrame(1, 2));
  }
  sim.RunFor(Seconds(5));
  EXPECT_EQ(listener.frames.size(), 5u);
  EXPECT_EQ(b.frames.size(), 5u);
}

TEST_P(AllMediaTest, ListenerMissPreventsCorrectReception) {
  // §4.4.1: "If it incorrectly receives a message ... the recorder can block
  // the transmission, ensuring that no other processor correctly receives
  // it."  On the ring the frame still arrives but with an invalidated
  // checksum; elsewhere it is simply not delivered.
  Simulator sim;
  auto medium = MakeMedium(&sim, GetParam());
  TestStation a(medium.get(), NodeId{1});
  TestStation b(medium.get(), NodeId{2});
  TestListener listener;
  listener.record_ok = false;
  medium->AttachListener(&listener);

  medium->Send(MakeFrame(1, 2));
  sim.RunFor(Seconds(2));

  bool correctly_received = false;
  for (const Frame& frame : b.frames) {
    if (!frame.corrupted && LinkUnwrap(frame.payload).ok()) {
      correctly_received = true;
    }
  }
  EXPECT_FALSE(correctly_received);
  EXPECT_EQ(medium->stats().frames_vetoed, 1u);
}

TEST_P(AllMediaTest, ChannelUtilizationIsAccounted) {
  Simulator sim;
  auto medium = MakeMedium(&sim, GetParam());
  TestStation a(medium.get(), NodeId{1});
  TestStation b(medium.get(), NodeId{2});
  for (int i = 0; i < 20; ++i) {
    medium->Send(MakeFrame(1, 2, 1024));
  }
  sim.RunFor(Seconds(5));
  medium->mutable_stats().channel.Finish(sim.Now());
  EXPECT_GT(medium->stats().channel.busy_time(), 0);
  EXPECT_EQ(medium->stats().frames_sent, 20u);
}

INSTANTIATE_TEST_SUITE_P(Media, AllMediaTest,
                         ::testing::Values(Kind::kEther, Kind::kAckEther, Kind::kStar,
                                           Kind::kRing),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           switch (info.param) {
                             case Kind::kEther:
                               return "Ethernet";
                             case Kind::kAckEther:
                               return "AcknowledgingEthernet";
                             case Kind::kStar:
                               return "StarHub";
                             case Kind::kRing:
                               return "TokenRing";
                           }
                           return "?";
                         });

// ---------------------------------------------------------------------------
// Medium-specific behaviour
// ---------------------------------------------------------------------------

TEST(Ethernet, ContentionCausesCollisionsOnlyWithMultipleSenders) {
  Simulator sim;
  EthernetOptions options;
  Ethernet ether(&sim, MediumTimings{}, MediumFaults{}, 7, options);
  TestStation a(&ether, NodeId{1});
  TestStation b(&ether, NodeId{2});
  TestStation c(&ether, NodeId{3});

  // Single sender: no contention possible.
  for (int i = 0; i < 50; ++i) {
    ether.Send(MakeFrame(1, 2));
  }
  sim.RunFor(Seconds(5));
  EXPECT_EQ(ether.stats().collisions, 0u);

  // Two senders queue simultaneously: contention rounds occur.
  for (int i = 0; i < 50; ++i) {
    ether.Send(MakeFrame(1, 3));
    ether.Send(MakeFrame(2, 3));
  }
  sim.RunFor(Seconds(10));
  EXPECT_GT(ether.stats().collisions, 0u);
}

TEST(Ethernet, AckFramesBypassContentionInAcknowledgingMode) {
  Simulator sim;
  EthernetOptions options;
  options.acknowledging = true;
  Ethernet ether(&sim, MediumTimings{}, MediumFaults{}, 7, options);
  TestStation a(&ether, NodeId{1});
  TestStation b(&ether, NodeId{2});

  Frame ack = MakeFrame(2, 1, 8);
  ack.type = FrameType::kAck;
  ether.Send(std::move(ack));
  sim.RunFor(Millis(1));
  ASSERT_EQ(a.frames.size(), 1u);  // Delivered in the reserved slot, fast.
}

TEST(StarHub, DeliveryTakesTwoLegs) {
  Simulator sim;
  StarHub star(&sim, MediumTimings{}, MediumFaults{}, 1);
  TestStation a(&star, NodeId{1});
  TestStation b(&star, NodeId{2});
  Frame frame = MakeFrame(1, 2, 1024);
  const SimDuration one_leg = MediumTimings{}.TransmitTime(frame.WireBytes());
  star.Send(std::move(frame));
  sim.RunFor(one_leg + one_leg / 2);
  EXPECT_TRUE(b.frames.empty()) << "frame must still be on the hub leg";
  sim.RunFor(one_leg);
  EXPECT_EQ(b.frames.size(), 1u);
}

TEST(TokenRing, DestinationBeforeRecorderPaysAnExtraRotation) {
  Simulator sim;
  TokenRingOptions options;
  TokenRing ring(&sim, MediumTimings{}, MediumFaults{}, 1, options);
  // Attach order = ring order: 1(recorder position 0), 2, 3, 4.
  TestStation r(&ring, NodeId{1});
  TestStation s(&ring, NodeId{2});
  TestStation before(&ring, NodeId{4});  // Hmm: position 3.
  TestStation after(&ring, NodeId{3});   // Position 2.

  // Sender is node 2 (position 1).  Recorder at position 0 is 3 hops away
  // (1->2->3->0 going forward: positions 2,3,0).  Node 3 (position 2) is 1
  // hop: BEFORE the recorder.  Node 4 (position 3) is 2 hops: also before.
  ring.Send(MakeFrame(2, 3));
  sim.RunFor(Seconds(1));
  EXPECT_EQ(ring.extra_rotations(), 1u);
  EXPECT_EQ(after.frames.size(), 1u);
}

TEST(TokenRing, ReceiverFaultInjectionMarksFramesCorrupted) {
  Simulator sim;
  MediumFaults faults;
  faults.receiver_error_rate = 1.0;
  TokenRing ring(&sim, MediumTimings{}, faults, 1, TokenRingOptions{});
  TestStation a(&ring, NodeId{1});
  TestStation b(&ring, NodeId{2});
  ring.Send(MakeFrame(1, 2));
  sim.RunFor(Seconds(1));
  ASSERT_EQ(b.frames.size(), 1u);
  EXPECT_TRUE(b.frames[0].corrupted);
}

}  // namespace
}  // namespace publishing
