// Tests for §6.6.2 — recovering nodes rather than processes.
//
// In node-unit mode intranode messages never touch the network (the dominant
// publishing cost disappears, cf. Figure 5.7); the kernel runs a
// deterministic scheduler, extranode arrivals are stamped with the node's
// event counter, and a crashed node is rebuilt from a whole-node checkpoint
// plus a step-synchronized replay of its extranode messages.

#include <gtest/gtest.h>

#include "src/core/publishing_system.h"
#include "src/demos/node_image.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

PublishingSystemConfig NodeUnitConfig(size_t nodes = 2) {
  PublishingSystemConfig config;
  config.cluster.node_count = nodes;
  config.cluster.start_system_processes = false;
  config.cluster.seed = 19;
  config.node_unit_mode = true;
  return config;
}

// A local pipeline: stage-1 receives extranode pings, forwards each
// *intranode* to stage-2, which replies extranode to the original sender via
// the passed link.  Exercises intranode traffic interleaved with extranode.
class Stage1Program : public UserProgram {
 public:
  static constexpr uint32_t kStage2Link = 1;

  void OnStart(KernelApi& api) override { (void)api; }
  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    ++forwarded_;
    // Forward body + reply link to stage 2 (intranode).
    api.Send(LinkId{kStage2Link}, msg.body, msg.passed_link);
  }
  void SaveState(Writer& w) const override { w.WriteU64(forwarded_); }
  Status LoadState(Reader& r) override {
    forwarded_ = *r.ReadU64();
    return Status::Ok();
  }
  uint64_t forwarded_ = 0;
};

struct Fixture {
  explicit Fixture(uint64_t pings = 30) {
    system = std::make_unique<PublishingSystem>(NodeUnitConfig());
    auto& registry = system->cluster().registry();
    registry.Register("echo", [] { return std::make_unique<EchoProgram>(); });
    registry.Register("stage1", [] { return std::make_unique<Stage1Program>(); });
    registry.Register("pinger",
                      [pings] { return std::make_unique<PingerProgram>(pings); });
    // Node 2 hosts the two-stage pipeline; node 1 the client.
    stage2 = *system->cluster().Spawn(NodeId{2}, "echo");
    stage1 = *system->cluster().Spawn(NodeId{2}, "stage1",
                                      {Link{stage2, /*channel=*/3, 0, 0}});
    pinger = *system->cluster().Spawn(NodeId{1}, "pinger", {Link{stage1, 1, 0, 0}});
  }

  const PingerProgram* Pinger() {
    return dynamic_cast<const PingerProgram*>(
        system->cluster().kernel(NodeId{1})->ProgramFor(pinger));
  }
  const EchoProgram* Stage2() {
    return dynamic_cast<const EchoProgram*>(
        system->cluster().kernel(NodeId{2})->ProgramFor(stage2));
  }

  std::unique_ptr<PublishingSystem> system;
  ProcessId stage1;
  ProcessId stage2;
  ProcessId pinger;
};

TEST(NodeUnit, IntranodeMessagesStayOffTheNetwork) {
  Fixture f;
  f.system->RunFor(Seconds(60));
  ASSERT_EQ(f.Pinger()->received(), 30u);
  // Every wire frame involves distinct nodes: the stage1->stage2 hops (30 of
  // them) must not appear as published messages for node-local traffic.
  // With process-level publishing, the recorder would have logged ~90
  // data messages; here only the extranode ones (ping + pong) appear.
  EXPECT_EQ(f.system->recorder().stats().messages_published, 60u);
}

TEST(NodeUnit, NodeImageRoundTrips) {
  Fixture f;
  f.system->RunFor(Seconds(30));
  auto image_bytes = f.system->cluster().kernel(NodeId{2})->CaptureNodeImage();
  ASSERT_TRUE(image_bytes.ok());
  auto image = DecodeNodeImage(*image_bytes);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->node, NodeId{2});
  EXPECT_EQ(image->processes.size(), 2u);
  EXPECT_GT(image->node_step, 0u);
  // Re-encoding is stable.
  EXPECT_EQ(EncodeNodeImage(*image), *image_bytes);
}

TEST(NodeUnit, NodeCrashRecoversFromScratchViaStampedReplay) {
  Fixture f(40);
  // Initial node checkpoint right after boot (the "binary image" of the
  // whole node).
  f.system->RunFor(Millis(10));
  ASSERT_TRUE(f.system->cluster().kernel(NodeId{2})->CheckpointNode().ok());

  f.system->RunFor(Millis(150));
  const uint64_t mid = f.Pinger()->received();
  ASSERT_GT(mid, 0u);
  ASSERT_LT(mid, 40u);

  f.system->CrashNode(NodeId{2});
  f.system->RunFor(Seconds(600));

  EXPECT_EQ(f.Pinger()->received(), 40u);
  EXPECT_EQ(f.Stage2()->echoed(), 40u) << "each ping processed exactly once end-to-end";
}

TEST(NodeUnit, PeriodicNodeCheckpointsShortenReplay) {
  Fixture f(60);
  f.system->EnableNodeCheckpointInterval(Millis(100));
  f.system->RunFor(Millis(400));
  ASSERT_GT(f.system->recorder().stats().checkpoints_stored, 0u);

  f.system->CrashNode(NodeId{2});
  f.system->RunFor(Seconds(600));
  EXPECT_EQ(f.Pinger()->received(), 60u);
  EXPECT_EQ(f.Stage2()->echoed(), 60u);
}

TEST(NodeUnit, ProcessFaultIsRoundedUpToNodeRecovery) {
  Fixture f(40);
  f.system->RunFor(Millis(10));
  ASSERT_TRUE(f.system->cluster().kernel(NodeId{2})->CheckpointNode().ok());
  f.system->RunFor(Millis(120));

  // A single-process fault: §1.1.2 lets the system round it up.
  ASSERT_TRUE(f.system->CrashProcess(f.stage1).ok());
  f.system->RunFor(Seconds(600));
  EXPECT_EQ(f.Pinger()->received(), 40u);
  EXPECT_EQ(f.Stage2()->echoed(), 40u);
}

TEST(NodeUnit, CrashedRunMatchesCrashFreeRun) {
  auto run = [](bool crash) {
    Fixture f(30);
    f.system->EnableNodeCheckpointInterval(Millis(150));
    if (crash) {
      f.system->RunFor(Millis(200));
      f.system->CrashNode(NodeId{2});
    }
    f.system->RunFor(Seconds(900));
    EXPECT_EQ(f.Pinger()->received(), 30u);
    Writer w;
    f.Pinger()->SaveState(w);
    return w.TakeBytes();
  };
  EXPECT_EQ(run(true), run(false))
      << "node-unit recovery must be transparent to remote clients";
}

TEST(NodeUnit, ClientNodeCrashAlsoRecovers) {
  Fixture f(40);
  f.system->RunFor(Millis(10));
  ASSERT_TRUE(f.system->cluster().kernel(NodeId{1})->CheckpointNode().ok());
  f.system->RunFor(Millis(150));
  f.system->CrashNode(NodeId{1});
  f.system->RunFor(Seconds(600));
  EXPECT_EQ(f.Pinger()->received(), 40u);
  EXPECT_EQ(f.Stage2()->echoed(), 40u)
      << "the server must see each forwarded ping exactly once despite client resends";
}

}  // namespace
}  // namespace publishing
