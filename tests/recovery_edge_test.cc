// Edge-case recovery tests: recorder crash/restart (§3.3.4), recursive
// crashes (§3.5), recovery onto a spare node, recovery under injected frame
// faults, channel-selective readers, and crashes of the system processes.

#include <gtest/gtest.h>

#include "src/core/publishing_system.h"
#include "src/demos/system_programs.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

PublishingSystemConfig BaseConfig(size_t nodes = 2) {
  PublishingSystemConfig config;
  config.cluster.node_count = nodes;
  config.cluster.start_system_processes = false;
  config.cluster.seed = 77;
  return config;
}

void RegisterPrograms(PublishingSystem& system, uint64_t ping_target) {
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register(
      "pinger", [ping_target] { return std::make_unique<PingerProgram>(ping_target); });
}

const PingerProgram* PingerAt(PublishingSystem& system, NodeId node, const ProcessId& pid) {
  return dynamic_cast<const PingerProgram*>(system.cluster().kernel(node)->ProgramFor(pid));
}

TEST(RecoveryEdge, RecorderCrashSuspendsAllTraffic) {
  PublishingSystem system(BaseConfig());
  RegisterPrograms(system, 1000);
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  auto pinger = *system.cluster().names().Locate(ProcessId{NodeId{1}, 2});
  (void)pinger;

  system.RunFor(Millis(100));
  auto* client = system.cluster().kernel(NodeId{1});
  const uint64_t before = client->stats().program_reads;
  ASSERT_GT(before, 0u);

  system.CrashRecorder();
  system.RunFor(Seconds(3));
  // §3.3.4: "all message traffic to processes must be suspended whenever the
  // recorder goes down."  A stray in-flight delivery or two is tolerable.
  EXPECT_LE(client->stats().program_reads, before + 2);

  system.RestartRecorder();
  system.RunFor(Seconds(10));
  EXPECT_GT(client->stats().program_reads, before + 5) << "traffic resumes after restart";
}

TEST(RecoveryEdge, RecorderRestartRecoversProcessesThatCrashedWhileItWasDown) {
  PublishingSystem system(BaseConfig());
  RegisterPrograms(system, 60);
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  system.RunFor(Millis(100));
  system.CrashRecorder();
  system.RunFor(Millis(100));
  // The echo process dies while the recorder is down: the crash trap cannot
  // be published, so only the restart protocol can find it.
  system.cluster().kernel(NodeId{2})->CrashProcess(*echo);
  system.RunFor(Seconds(1));
  ASSERT_FALSE(system.recovery().IsRecovering(*echo));

  system.RestartRecorder();
  // §3.3.4: the restart's state queries discover the crashed process and
  // start recovery.
  ASSERT_TRUE(system.RunUntilRecovered(*echo, Seconds(120)));
  system.RunFor(Seconds(240));
  EXPECT_EQ(PingerAt(system, NodeId{1}, *pinger)->received(), 60u);
  EXPECT_GE(system.recovery().stats().state_queries_sent, 2u);
}

TEST(RecoveryEdge, RecursiveCrashOfRecoveringProcessRestartsRecovery) {
  PublishingSystemConfig config = BaseConfig();
  // Pin the paper's stop-and-wait replay: pipelined bursts finish before the
  // 30ms probe below can catch the recovery mid-flight.  The recursive crash
  // inside a pipelined replay window is covered in recovery_replay_test.
  config.recovery.pipelined_replay = false;
  PublishingSystem system(config);
  RegisterPrograms(system, 60);
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  system.RunFor(Millis(150));
  ASSERT_TRUE(system.CrashProcess(*echo).ok());
  // Let the recovery get going, then crash the recovering process (§3.5).
  system.RunFor(Millis(30));
  ASSERT_TRUE(system.recovery().IsRecovering(*echo));
  ASSERT_TRUE(system.CrashProcess(*echo).ok());

  ASSERT_TRUE(system.RunUntilRecovered(*echo, Seconds(300)));
  system.RunFor(Seconds(300));
  EXPECT_EQ(PingerAt(system, NodeId{1}, *pinger)->received(), 60u);
  EXPECT_GE(system.recovery().stats().recursive_recoveries, 1u);
}

TEST(RecoveryEdge, NodeCrashMigratesProcessesToSpareNode) {
  PublishingSystemConfig config = BaseConfig(3);
  config.recovery.node_policy = NodeRecoveryPolicy::kMigrateToSpare;
  config.recovery.spare_node = NodeId{3};
  PublishingSystem system(config);
  RegisterPrograms(system, 40);
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  system.RunFor(Millis(100));
  system.CrashNode(NodeId{2});
  system.RunFor(Seconds(600));

  // The echo process now lives on the spare node, same pid (§3.3.3:
  // "processes maintain this identifier, even if they should migrate").
  EXPECT_EQ(system.cluster().kernel(NodeId{3})->QueryProcessState(*echo),
            ProcessStateAnswer::kFunctioning);
  auto location = system.cluster().names().Locate(*echo);
  ASSERT_TRUE(location.ok());
  EXPECT_EQ(*location, NodeId{3});
  EXPECT_EQ(PingerAt(system, NodeId{1}, *pinger)->received(), 40u);
}

TEST(RecoveryEdge, RecoveryWorksUnderWireFaults) {
  PublishingSystemConfig config = BaseConfig();
  config.cluster.faults.receiver_error_rate = 0.1;
  config.cluster.faults.listener_miss_rate = 0.05;  // Recorder misses 5%.
  PublishingSystem system(config);
  RegisterPrograms(system, 40);
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  system.RunFor(Millis(300));
  ASSERT_TRUE(system.CrashProcess(*echo).ok());
  ASSERT_TRUE(system.RunUntilRecovered(*echo, Seconds(600)));
  system.RunFor(Seconds(600));

  EXPECT_EQ(PingerAt(system, NodeId{1}, *pinger)->received(), 40u);
  const auto* server =
      dynamic_cast<const EchoProgram*>(system.cluster().kernel(NodeId{2})->ProgramFor(*echo));
  EXPECT_EQ(server->echoed(), 40u) << "exactly-once must hold even with recorder misses";
  EXPECT_GT(system.cluster().medium().stats().frames_vetoed, 0u)
      << "the fault injection must actually have exercised the veto path";
}

TEST(RecoveryEdge, ChannelSelectiveReaderRecoversWithSameReadOrder) {
  // A process that reads out of arrival order (§4.4.2) must see the same
  // read order after recovery.
  class TwoPhaseReader : public UserProgram {
   public:
    std::vector<uint16_t> ReceiveChannels() const override {
      // Urgent channel (10) until 3 urgent messages are in; then anything.
      if (urgent_seen_ < 3) {
        return {10};
      }
      return {};
    }
    void OnStart(KernelApi& api) override { (void)api; }
    void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
      (void)api;
      if (msg.channel == 10) {
        ++urgent_seen_;
      }
      order_hash_ = order_hash_ * 1099511628211ull + msg.channel;
      order_hash_ = order_hash_ * 1099511628211ull + (msg.body.empty() ? 0 : msg.body[0]);
      ++reads_;
    }
    void SaveState(Writer& w) const override {
      w.WriteU64(urgent_seen_);
      w.WriteU64(order_hash_);
      w.WriteU64(reads_);
    }
    Status LoadState(Reader& r) override {
      urgent_seen_ = *r.ReadU64();
      order_hash_ = *r.ReadU64();
      reads_ = *r.ReadU64();
      return Status::Ok();
    }
    uint64_t order_hash() const { return order_hash_; }
    uint64_t reads() const { return reads_; }

   private:
    uint64_t urgent_seen_ = 0;
    uint64_t order_hash_ = 14695981039346656037ull;
    uint64_t reads_ = 0;
  };

  class BurstSender : public UserProgram {
   public:
    void OnStart(KernelApi& api) override {
      // 4 normal (channel 20) first, then 3 urgent (channel 10): the reader
      // will consume urgent ones out of queue order.
      for (uint8_t i = 0; i < 4; ++i) {
        api.Send(LinkId{1}, Bytes{i});
      }
      for (uint8_t i = 0; i < 3; ++i) {
        api.Send(LinkId{2}, Bytes{static_cast<uint8_t>(100 + i)});
      }
    }
    void OnMessage(KernelApi&, const DeliveredMessage&) override {}
    void SaveState(Writer&) const override {}
    Status LoadState(Reader&) override { return Status::Ok(); }
  };

  auto run = [](bool crash) {
    PublishingSystem system(BaseConfig());
    system.cluster().registry().Register(
        "reader", [] { return std::make_unique<TwoPhaseReader>(); });
    system.cluster().registry().Register(
        "burst", [] { return std::make_unique<BurstSender>(); });
    auto reader = system.cluster().Spawn(NodeId{2}, "reader");
    system.cluster().Spawn(NodeId{1}, "burst",
                           {Link{*reader, 20, 0, 0}, Link{*reader, 10, 0, 0}});
    system.RunFor(Seconds(5));
    if (crash) {
      system.CrashProcess(*reader);
      system.RunUntilRecovered(*reader, Seconds(120));
      system.RunFor(Seconds(60));
    }
    const auto* program = dynamic_cast<const TwoPhaseReader*>(
        system.cluster().kernel(NodeId{2})->ProgramFor(*reader));
    EXPECT_EQ(program->reads(), 7u);
    return program->order_hash();
  };

  EXPECT_EQ(run(false), run(true))
      << "replay must reproduce the original out-of-order read sequence";
}

TEST(RecoveryEdge, ProcessManagerCrashMidCreationRecoversAndCompletes) {
  PublishingSystemConfig config = BaseConfig(2);
  config.cluster.start_system_processes = true;
  PublishingSystem system(config);
  system.cluster().registry().Register("child",
                                       [] { return std::make_unique<AccumulatorProgram>(); });

  // A requester that creates 5 children sequentially.
  class Requester : public UserProgram {
   public:
    void OnStart(KernelApi& api) override {
      api.RequestCreateProcess("child", NodeId{2}, 6, {});
    }
    void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
      if (msg.channel != 6) {
        return;
      }
      auto reply = DecodeCreateProcessReply(msg.body);
      if (reply.ok() && reply->ok) {
        ++created_;
        if (created_ < 5) {
          api.RequestCreateProcess("child", NodeId{2}, 6, {});
        }
      }
    }
    void SaveState(Writer& w) const override { w.WriteU64(created_); }
    Status LoadState(Reader& r) override {
      created_ = *r.ReadU64();
      return Status::Ok();
    }
    uint64_t created_ = 0;
  };
  system.cluster().registry().Register("requester",
                                       [] { return std::make_unique<Requester>(); });
  system.RunFor(Seconds(2));
  auto requester = system.cluster().Spawn(NodeId{1}, "requester");

  system.RunFor(Millis(80));
  // Crash the process manager itself mid-stream.
  ASSERT_TRUE(system.CrashProcess(system.cluster().process_manager()).ok());
  ASSERT_TRUE(system.RunUntilRecovered(system.cluster().process_manager(), Seconds(300)));
  system.RunFor(Seconds(600));

  const auto* program = dynamic_cast<const Requester*>(
      system.cluster().kernel(NodeId{1})->ProgramFor(*requester));
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->created_, 5u)
      << "creations in flight across the manager crash must still complete";
  // Exactly 5 children exist (no duplicates from replayed requests).
  size_t children = 0;
  for (const ProcessId& pid : system.cluster().kernel(NodeId{2})->LiveProcesses()) {
    auto info = system.storage().Info(pid);
    if (info.ok() && info->program == "child") {
      ++children;
    }
  }
  EXPECT_EQ(children, 5u);
}

TEST(RecoveryEdge, DestroyedProcessIsNotRecovered) {
  PublishingSystem system(BaseConfig());
  RegisterPrograms(system, 10);
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.RunFor(Millis(50));
  // Destroy it properly, then crash the node: recovery must not resurrect it.
  class Destroyer : public UserProgram {
   public:
    void OnStart(KernelApi& api) override {
      api.Send(LinkId{1}, EncodeOpOnly(KernelOp::kDestroyProcess));
      api.Exit();
    }
    void OnMessage(KernelApi&, const DeliveredMessage&) override {}
    void SaveState(Writer&) const override {}
    Status LoadState(Reader&) override { return Status::Ok(); }
  };
  system.cluster().registry().Register("destroyer",
                                       [] { return std::make_unique<Destroyer>(); });
  system.cluster().Spawn(NodeId{1}, "destroyer", {Link{*echo, 0, 0, kLinkDeliverToKernel}});
  system.RunFor(Seconds(5));
  ASSERT_EQ(system.cluster().kernel(NodeId{2})->QueryProcessState(*echo),
            ProcessStateAnswer::kUnknown);

  system.CrashNode(NodeId{2});
  system.RunFor(Seconds(60));
  EXPECT_EQ(system.cluster().kernel(NodeId{2})->QueryProcessState(*echo),
            ProcessStateAnswer::kUnknown)
      << "destroyed processes must stay destroyed across node recovery";
}

}  // namespace
}  // namespace publishing
