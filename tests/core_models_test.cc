// Tests for the analytic models in src/core: the §3.2.3 recovery-time bound
// (including the worked example), Young's interval (§3.2.4), the checkpoint
// policies, and the §5.2.2 publish-path costs.

#include <gtest/gtest.h>

#include "src/core/checkpoint_policy.h"
#include "src/core/recorder.h"
#include "src/core/recovery_time_model.h"

namespace publishing {
namespace {

TEST(RecoveryTimeModel, WorkedExampleFromSection323) {
  RecoveryTimeModel model;  // Defaults are the worked example's parameters.
  model.OnCheckpoint(/*pages=*/4, /*now=*/0);

  // "Immediately following the checkpoint, the recovery time is just the
  // time to reload the checkpoint": 100ms + 4 pages x 10ms = 140ms.
  EXPECT_EQ(ToMillis(model.MaxRecoveryTime(0)), 140.0);

  // After 100ms of execution at f_cpu = 0.5: 140 + 200 = 340ms.
  EXPECT_EQ(ToMillis(model.MaxRecoveryTime(Millis(100))), 340.0);

  // After a 500-byte message: + t_mfix (2ms) + 500 x 0.01ms = +7ms.
  model.OnMessage(500);
  EXPECT_EQ(ToMillis(model.MaxRecoveryTime(Millis(100))), 347.0);
}

TEST(RecoveryTimeModel, ComponentsAreAdditive) {
  RecoveryTimeModel model;
  model.OnCheckpoint(2, Millis(50));
  model.OnMessage(1000);
  model.OnMessage(1000);
  const SimTime now = Millis(150);
  EXPECT_EQ(model.MaxRecoveryTime(now),
            model.ReloadTime() + model.ReplayTime() + model.ComputeTime(now));
  EXPECT_EQ(model.messages_since_checkpoint(), 2u);
  EXPECT_EQ(model.bytes_since_checkpoint(), 2000u);
}

TEST(RecoveryTimeModel, CheckpointResetsAccumulators) {
  RecoveryTimeModel model;
  model.OnCheckpoint(4, 0);
  model.OnMessage(100);
  model.OnCheckpoint(4, Millis(10));
  EXPECT_EQ(model.messages_since_checkpoint(), 0u);
  EXPECT_EQ(ToMillis(model.ReplayTime()), 0.0);
}

TEST(Young, OptimalIntervalFormula) {
  // sqrt(2 * 0.5s * 600s) = sqrt(600) ~= 24.5s.
  SimDuration interval = YoungOptimalInterval(Millis(500), Seconds(600));
  EXPECT_NEAR(ToSeconds(interval), 24.49, 0.05);
}

TEST(Young, OverheadCurveHasMinimumAtOptimum) {
  const SimDuration save = Millis(500);
  const SimDuration mtbf = Seconds(600);
  const SimDuration young = YoungOptimalInterval(save, mtbf);
  const double at_young = YoungExpectedOverheadFraction(young, save, mtbf);
  EXPECT_LT(at_young, YoungExpectedOverheadFraction(young / 4, save, mtbf));
  EXPECT_LT(at_young, YoungExpectedOverheadFraction(young * 4, save, mtbf));
}

TEST(CheckpointPolicies, FixedIntervalTriggersOnSchedule) {
  FixedIntervalPolicy policy(Seconds(1));
  CheckpointContext context;
  context.last_checkpoint = 0;
  context.now = Millis(500);
  EXPECT_FALSE(policy.ShouldCheckpoint(context));
  context.now = Seconds(1);
  EXPECT_TRUE(policy.ShouldCheckpoint(context));
}

TEST(CheckpointPolicies, StorageBalancedComparesLogToStateSize) {
  StorageBalancedPolicy policy;
  CheckpointContext context;
  context.checkpoint_bytes = 8192;
  context.log_bytes = 4096;
  EXPECT_FALSE(policy.ShouldCheckpoint(context));
  context.log_bytes = 8193;
  EXPECT_TRUE(policy.ShouldCheckpoint(context));
}

TEST(CheckpointPolicies, RecoveryBoundTriggersWhenTMaxExceedsBudget) {
  RecoveryBoundPolicy policy(Millis(500), RecoveryTimeParams{});
  CheckpointContext context;
  context.last_checkpoint = 0;
  context.checkpoint_bytes = 16384;  // 4 pages -> reload = 140ms.
  context.now = Millis(50);
  context.messages_since = 10;
  context.log_bytes = 10 * 1024;
  // t_max = 140 (reload) + 20 (t_mfix) + 102.4 (t_byte) + 100 (compute)
  //       = 362ms < 500: no checkpoint yet.
  EXPECT_FALSE(policy.ShouldCheckpoint(context));
  context.now = Millis(125);  // Compute term grows to 250ms -> 512ms > 500.
  EXPECT_TRUE(policy.ShouldCheckpoint(context));
}

TEST(CheckpointPolicies, YoungPolicyUsesComputedInterval) {
  YoungPolicy policy(Millis(500), Seconds(600));
  CheckpointContext context;
  context.last_checkpoint = 0;
  context.now = Seconds(20);
  EXPECT_FALSE(policy.ShouldCheckpoint(context));
  context.now = Seconds(25);
  EXPECT_TRUE(policy.ShouldCheckpoint(context));
}

TEST(PublishPaths, CostsMatchSection522) {
  EXPECT_EQ(ToMillis(PublishCpuCost(PublishPath::kFullProtocol)), 57.0);
  EXPECT_EQ(ToMillis(PublishCpuCost(PublishPath::kInlined)), 12.0);
  EXPECT_NEAR(ToMillis(PublishCpuCost(PublishPath::kMediaLayer)), 0.8, 1e-9);
}

}  // namespace
}  // namespace publishing
