#include "src/demos/cluster.h"

#include "src/common/logging.h"

namespace publishing {

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  switch (config_.medium) {
    case MediumKind::kEthernet: {
      EthernetOptions options = config_.ethernet;
      options.acknowledging = false;
      medium_ = std::make_unique<Ethernet>(&sim_, config_.timings, config_.faults, config_.seed,
                                           options);
      break;
    }
    case MediumKind::kAcknowledgingEthernet: {
      EthernetOptions options = config_.ethernet;
      options.acknowledging = true;
      medium_ = std::make_unique<Ethernet>(&sim_, config_.timings, config_.faults, config_.seed,
                                           options);
      break;
    }
    case MediumKind::kStarHub:
      medium_ = std::make_unique<StarHub>(&sim_, config_.timings, config_.faults, config_.seed);
      break;
    case MediumKind::kTokenRing:
      medium_ = std::make_unique<TokenRing>(&sim_, config_.timings, config_.faults, config_.seed,
                                            config_.token_ring);
      break;
  }

  registry_.Register("sys.procman", [] { return std::make_unique<ProcessManagerProgram>(); });
  registry_.Register("sys.memsched", [] { return std::make_unique<MemorySchedulerProgram>(); });
  registry_.Register("sys.namesrv", [] { return std::make_unique<NamedLinkServerProgram>(); });

  KernelOptions kernel_options = config_.kernel;
  kernel_options.recorder_node = kRecorderNode;
  for (size_t i = 0; i < config_.node_count; ++i) {
    NodeId node{static_cast<uint32_t>(i + 1)};
    kernels_.push_back(std::make_unique<NodeKernel>(&sim_, medium_.get(), node, &registry_,
                                                    &names_, kernel_options));
  }

  if (config_.start_system_processes) {
    BootSystemProcesses();
  }
}

Cluster::~Cluster() = default;

NodeKernel* Cluster::kernel(NodeId node) {
  for (auto& kernel : kernels_) {
    if (kernel->node() == node) {
      return kernel.get();
    }
  }
  return nullptr;
}

std::vector<NodeId> Cluster::node_ids() const {
  std::vector<NodeId> out;
  out.reserve(kernels_.size());
  for (const auto& kernel : kernels_) {
    out.push_back(kernel->node());
  }
  return out;
}

void Cluster::BootSystemProcesses() {
  if (system_booted_) {
    return;
  }
  system_booted_ = true;
  NodeKernel* system_kernel = kernel(config_.system_node);
  if (system_kernel == nullptr) {
    PUB_LOG_ERROR("cluster: system node %s does not exist",
                  ToString(config_.system_node).c_str());
    return;
  }

  // Memory scheduler first, with one kernel-process link per node (§4.3.2).
  std::vector<Link> scheduler_links;
  for (const auto& k : kernels_) {
    scheduler_links.push_back(
        Link{k->KernelProcessId(), kProcessServiceChannel, /*code=*/k->node().value, 0});
  }
  auto scheduler = system_kernel->SpawnProcess("sys.memsched", scheduler_links);
  if (!scheduler.ok()) {
    PUB_LOG_ERROR("cluster: cannot start memory scheduler: %s",
                  scheduler.status().ToString().c_str());
    return;
  }
  memory_scheduler_ = *scheduler;

  // Process manager with a link down to the scheduler (§4.2.3: "the process
  // manager has a link to the memory scheduler").
  auto manager = system_kernel->SpawnProcess(
      "sys.procman", {Link{memory_scheduler_, kProcessServiceChannel, 0, 0}});
  if (!manager.ok()) {
    PUB_LOG_ERROR("cluster: cannot start process manager: %s",
                  manager.status().ToString().c_str());
    return;
  }
  process_manager_ = *manager;

  auto name_server = system_kernel->SpawnProcess("sys.namesrv", {});
  if (!name_server.ok()) {
    PUB_LOG_ERROR("cluster: cannot start named-link server: %s",
                  name_server.status().ToString().c_str());
    return;
  }
  name_server_ = *name_server;

  for (auto& k : kernels_) {
    k->set_process_manager(process_manager_);
  }
}

Result<ProcessId> Cluster::Spawn(NodeId node, const std::string& program,
                                 std::vector<Link> initial_links, bool recoverable) {
  NodeKernel* k = kernel(node);
  if (k == nullptr) {
    return Status(StatusCode::kNotFound, "no such node " + ToString(node));
  }
  return k->SpawnProcess(program, std::move(initial_links), recoverable);
}

}  // namespace publishing
