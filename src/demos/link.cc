#include "src/demos/link.h"

namespace publishing {

void SerializeLink(Writer& w, const Link& link) {
  w.WriteProcessId(link.dest);
  w.WriteU16(link.channel);
  w.WriteU32(link.code);
  w.WriteU8(link.flags);
}

Result<Link> ParseLink(Reader& r) {
  Link link;
  auto dest = r.ReadProcessId();
  if (!dest.ok()) {
    return dest.status();
  }
  link.dest = *dest;
  auto channel = r.ReadU16();
  if (!channel.ok()) {
    return channel.status();
  }
  link.channel = *channel;
  auto code = r.ReadU32();
  if (!code.ok()) {
    return code.status();
  }
  link.code = *code;
  auto flags = r.ReadU8();
  if (!flags.ok()) {
    return flags.status();
  }
  link.flags = *flags;
  return link;
}

Bytes LinkToBytes(const Link& link) {
  Writer w;
  SerializeLink(w, link);
  return w.TakeBytes();
}

Result<Link> LinkFromBytes(const Bytes& bytes) {
  Reader r(std::span<const uint8_t>(bytes.data(), bytes.size()));
  auto link = ParseLink(r);
  if (!link.ok()) {
    return link.status();
  }
  if (!r.AtEnd()) {
    return Status(StatusCode::kCorrupt, "trailing bytes after link");
  }
  return link;
}

}  // namespace publishing
