// The serialized process image: what a checkpoint contains (§1.1.3, §4.4.3).
//
//   * sequencing state the kernel owns: send sequence number, read count,
//     link table (the "process save area"),
//   * the program's own serialized state (the "writable address space").
//
// Unread queued messages are deliberately NOT part of the image: the
// recorder retains the published messages the checkpoint has not read and
// replays them on recovery (§3.3.1).  The same format is consumed by the
// replay debugger (§6.5) to reconstruct process states offline.

#ifndef SRC_DEMOS_PROCESS_IMAGE_H_
#define SRC_DEMOS_PROCESS_IMAGE_H_

#include <string>
#include <vector>

#include "src/common/serialization.h"
#include "src/demos/link.h"

namespace publishing {

struct ProcessImage {
  std::string program_name;
  bool stopped = false;
  uint64_t next_send_seq = 1;
  uint64_t reads_done = 0;
  uint32_t next_link_id = 1;
  std::vector<std::pair<uint32_t, Link>> links;
  Bytes program_state;
};

Bytes EncodeProcessImage(const ProcessImage& image);
Result<ProcessImage> DecodeProcessImage(const Bytes& bytes);

}  // namespace publishing

#endif  // SRC_DEMOS_PROCESS_IMAGE_H_
