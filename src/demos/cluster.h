// Cluster: a whole simulated DEMOS/MP installation — one shared medium, N
// processing nodes each running a NodeKernel, the system processes, and the
// cluster-wide name service.  This is the substrate the recorder and
// recovery manager (src/core) attach to; see Figure 3.2.
//
// Node numbering: node 0 is reserved for the recorder; processing nodes are
// 1..N in attach order.

#ifndef SRC_DEMOS_CLUSTER_H_
#define SRC_DEMOS_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/demos/node_directory.h"
#include "src/demos/node_kernel.h"
#include "src/demos/system_programs.h"
#include "src/net/ethernet.h"
#include "src/net/star_hub.h"
#include "src/net/token_ring.h"

namespace publishing {

enum class MediumKind {
  kEthernet,                // Plain CSMA/CD (§6.1.1 baseline).
  kAcknowledgingEthernet,   // Reserved recorder-ack slot (§6.1.1).
  kStarHub,                 // Recorder-as-hub star (§4.1).
  kTokenRing,               // Ring with recorder ack field (§6.1.2).
};

struct ClusterConfig {
  size_t node_count = 3;
  MediumKind medium = MediumKind::kAcknowledgingEthernet;
  MediumTimings timings;
  MediumFaults faults;
  EthernetOptions ethernet;
  TokenRingOptions token_ring;
  uint64_t seed = 1;
  KernelOptions kernel;  // Template applied to every node.
  // Spawn the process manager / memory scheduler / named-link server chain.
  bool start_system_processes = true;
  NodeId system_node{1};
};

class Cluster : public NodeDirectory {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster() override;

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Simulator& sim() override { return sim_; }
  Medium& medium() { return *medium_; }
  NameService& names() override { return names_; }
  ProgramRegistry& registry() { return registry_; }

  // Null for unknown/recorder node ids.
  NodeKernel* kernel(NodeId node) override;
  std::vector<NodeId> node_ids() const override;
  const ClusterConfig& config() const { return config_; }

  // Spawns the system-process chain; invoked from the constructor when
  // config.start_system_processes is set.  Idempotent.
  void BootSystemProcesses();

  ProcessId process_manager() const { return process_manager_; }
  ProcessId memory_scheduler() const { return memory_scheduler_; }
  ProcessId name_server() const { return name_server_; }

  // Direct spawn, bypassing the manager chain (boot-style creation).
  Result<ProcessId> Spawn(NodeId node, const std::string& program,
                          std::vector<Link> initial_links = {}, bool recoverable = true);

  static constexpr NodeId kRecorderNode{0};

 private:
  ClusterConfig config_;
  Simulator sim_;
  std::unique_ptr<Medium> medium_;
  NameService names_;
  ProgramRegistry registry_;
  std::vector<std::unique_ptr<NodeKernel>> kernels_;
  ProcessId process_manager_;
  ProcessId memory_scheduler_;
  ProcessId name_server_;
  bool system_booted_ = false;
};

}  // namespace publishing

#endif  // SRC_DEMOS_CLUSTER_H_
