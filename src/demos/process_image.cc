#include "src/demos/process_image.h"

namespace publishing {

Bytes EncodeProcessImage(const ProcessImage& image) {
  Writer w;
  w.WriteString(image.program_name);
  w.WriteBool(image.stopped);
  w.WriteU64(image.next_send_seq);
  w.WriteU64(image.reads_done);
  w.WriteU32(image.next_link_id);
  w.WriteU32(static_cast<uint32_t>(image.links.size()));
  for (const auto& [id, link] : image.links) {
    w.WriteU32(id);
    SerializeLink(w, link);
  }
  w.WriteBytes(std::span<const uint8_t>(image.program_state.data(), image.program_state.size()));
  return w.TakeBytes();
}

Result<ProcessImage> DecodeProcessImage(const Bytes& bytes) {
  Reader r(std::span<const uint8_t>(bytes.data(), bytes.size()));
  ProcessImage image;
  auto name = r.ReadString();
  if (!name.ok()) {
    return name.status();
  }
  image.program_name = std::move(*name);
  auto stopped = r.ReadBool();
  if (!stopped.ok()) {
    return stopped.status();
  }
  image.stopped = *stopped;
  auto seq = r.ReadU64();
  if (!seq.ok()) {
    return seq.status();
  }
  image.next_send_seq = *seq;
  auto reads = r.ReadU64();
  if (!reads.ok()) {
    return reads.status();
  }
  image.reads_done = *reads;
  auto next_link = r.ReadU32();
  if (!next_link.ok()) {
    return next_link.status();
  }
  image.next_link_id = *next_link;
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < *count; ++i) {
    auto id = r.ReadU32();
    if (!id.ok()) {
      return id.status();
    }
    auto link = ParseLink(r);
    if (!link.ok()) {
      return link.status();
    }
    image.links.emplace_back(*id, *link);
  }
  auto state = r.ReadBytes();
  if (!state.ok()) {
    return state.status();
  }
  image.program_state = std::move(*state);
  if (!r.AtEnd()) {
    return Status(StatusCode::kCorrupt, "trailing bytes after process image");
  }
  return image;
}

}  // namespace publishing
