#include "src/demos/node_kernel.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/demos/node_image.h"
#include "src/demos/process_image.h"

namespace publishing {

// ---------------------------------------------------------------------------
// KernelApi adapter handed to program handlers.
// ---------------------------------------------------------------------------

class NodeKernel::ApiImpl : public KernelApi {
 public:
  ApiImpl(NodeKernel* kernel, ProcessRecord* proc) : kernel_(kernel), proc_(proc) {}

  ProcessId Self() const override { return proc_->pid; }
  NodeId CurrentNode() const override { return kernel_->node_; }

  Result<LinkId> CreateLink(uint16_t channel, uint32_t code) override {
    LinkId id{proc_->next_link_id++};
    proc_->links[id.value] = Link{proc_->pid, channel, code, 0};
    return id;
  }

  Status DestroyLink(LinkId link) override {
    if (proc_->links.erase(link.value) == 0) {
      return Status(StatusCode::kNotFound, "no such link");
    }
    return Status::Ok();
  }

  Result<LinkId> DuplicateLink(LinkId link) override {
    auto it = proc_->links.find(link.value);
    if (it == proc_->links.end()) {
      return Status(StatusCode::kNotFound, "no such link");
    }
    LinkId id{proc_->next_link_id++};
    proc_->links[id.value] = it->second;
    return id;
  }

  Result<Link> InspectLink(LinkId link) const override {
    auto it = proc_->links.find(link.value);
    if (it == proc_->links.end()) {
      return Status(StatusCode::kNotFound, "no such link");
    }
    return it->second;
  }

  Status Send(LinkId link, Bytes body, LinkId pass_link) override {
    auto it = proc_->links.find(link.value);
    if (it == proc_->links.end()) {
      return Status(StatusCode::kNotFound, "no such link");
    }
    Bytes link_blob;
    if (pass_link.IsValid()) {
      auto pass_it = proc_->links.find(pass_link.value);
      if (pass_it == proc_->links.end()) {
        return Status(StatusCode::kNotFound, "no such passed link");
      }
      // "The link is removed from the sender's link table and copied into
      // the message" (§4.2.2.3).
      link_blob = LinkToBytes(pass_it->second);
      proc_->links.erase(pass_it);
    }
    return kernel_->SendFromProcess(*proc_, it->second, std::move(body), std::move(link_blob));
  }

  Status RequestCreateProcess(const std::string& program, NodeId target_node,
                              uint16_t reply_channel, std::vector<LinkId> links_to_move) override {
    CreateProcessRequest req;
    req.program = program;
    req.target_node = target_node;
    req.requester = proc_->pid;
    req.reply_channel = reply_channel;
    for (LinkId id : links_to_move) {
      auto it = proc_->links.find(id.value);
      if (it == proc_->links.end()) {
        return Status(StatusCode::kNotFound, "no such link to move");
      }
      req.initial_links.push_back(it->second);
      proc_->links.erase(it);
    }
    // Route to the process manager if one is configured; otherwise straight
    // to the target node's kernel process (small single-purpose systems).
    ProcessId dst = kernel_->options_.process_manager;
    if (!dst.IsValid()) {
      NodeId node = (target_node == kAnyNode) ? kernel_->node_ : target_node;
      dst = ProcessId{node, kKernelLocalId};
    }
    Link synthetic{dst, kProcessServiceChannel, 0, 0};
    return kernel_->SendFromProcess(*proc_, synthetic, EncodeCreateProcessRequest(req), {});
  }

  void Charge(SimDuration cpu_time) override { charged_ += cpu_time; }
  void Exit() override { proc_->exit_requested = true; }

  SimDuration charged() const { return charged_; }

 private:
  NodeKernel* kernel_;
  ProcessRecord* proc_;
  SimDuration charged_ = 0;
};

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

NodeKernel::NodeKernel(Simulator* sim, Medium* medium, NodeId node,
                       const ProgramRegistry* registry, NameService* names,
                       KernelOptions options)
    : sim_(sim),
      medium_(medium),
      node_(node),
      registry_(registry),
      names_(names),
      options_(options) {
  endpoint_ = std::make_unique<TransportEndpoint>(
      sim_, medium_, node_, options_.transport, [this](const Packet& packet) {
        ChargeKernel(options_.costs.receive_cpu + options_.costs.net_protocol_cpu);
        ++stats_.receives;
        OnPacket(packet);
      });
  names_->SetLocation(KernelProcessId(), node_);
}

NodeKernel::~NodeKernel() = default;

void NodeKernel::ChargeKernel(SimDuration cpu) { stats_.kernel_cpu += cpu; }

// ---------------------------------------------------------------------------
// Send paths
// ---------------------------------------------------------------------------

Status NodeKernel::SendFromProcess(ProcessRecord& proc, const Link& link, Bytes body,
                                   Bytes link_blob) {
  const uint64_t seq = proc.next_send_seq++;
  ++stats_.sends;
  auto location = names_->Locate(link.dest);
  if (seq <= proc.suppress_through) {
    // The original process already sent this message before the crash; the
    // receiver has it (or the recorder will replay it).  Drop at the source
    // (§4.7: "the message kernel has been modified to not send any messages
    // with ids less than this id").
    //
    // Node-unit mode (§6.6.2) is the exception for *intranode* sends: those
    // are never published, so the restored co-resident process needs the
    // re-send — it is replaying too.
    const bool intranode_unit =
        options_.node_unit_mode && location.ok() && *location == node_;
    if (!intranode_unit) {
      ++stats_.sends_suppressed;
      return Status::Ok();
    }
  }
  if (!location.ok()) {
    return location.status();
  }
  Packet packet;
  packet.header.id = MessageId{proc.pid, seq};
  packet.header.src_process = proc.pid;
  packet.header.dst_process = link.dest;
  packet.header.src_node = node_;
  packet.header.dst_node = *location;
  packet.header.channel = link.channel;
  packet.header.code = link.code;
  packet.header.flags = kFlagGuaranteed;
  if (link.deliver_to_kernel()) {
    packet.header.flags |= kFlagDeliverToKernel;
  }
  packet.link_blob = std::move(link_blob);
  packet.body = std::move(body);
  SendPacket(std::move(packet));
  return Status::Ok();
}

void NodeKernel::SendKernelMessage(const ProcessId& dst, Bytes body, uint8_t extra_flags,
                                   Bytes link_blob) {
  auto location = names_->Locate(dst);
  if (!location.ok()) {
    PUB_LOG_DEBUG("%s: dropping kernel message to unlocatable %s", ToString(node_).c_str(),
                  ToString(dst).c_str());
    return;
  }
  Packet packet;
  packet.header.id = MessageId{KernelProcessId(), kernel_send_seq_++};
  packet.header.src_process = KernelProcessId();
  packet.header.dst_process = dst;
  packet.header.src_node = node_;
  packet.header.dst_node = *location;
  packet.header.flags = extra_flags;
  packet.link_blob = std::move(link_blob);
  packet.body = std::move(body);
  SendPacket(std::move(packet));
}

void NodeKernel::SendPacket(Packet packet) {
  if (!up_) {
    return;
  }
  // Node-unit mode keeps intranode messages off the network (§6.6.2: the
  // whole point is "not to put intranode messages onto the network").
  const bool wire_intranode = options_.publishing_enabled && !options_.node_unit_mode;
  if (wire_intranode || packet.header.dst_node != node_) {
    // §4.4.1: "we have modified the message kernel in DEMOS/MP to send all
    // messages, including intranode messages, on the network".
    ChargeKernel(options_.costs.send_cpu + options_.costs.net_protocol_cpu);
    ++stats_.wire_sends;
    endpoint_->Send(std::move(packet));
    return;
  }
  // Intranode messages short-circuit the network (the unmodified-DEMOS
  // baseline of Figure 5.7, and the whole point of node-unit mode).
  ChargeKernel(options_.costs.send_cpu);
  ++stats_.intranode_sends;
  local_in_flight_.push_back(packet);
  sim_->ScheduleAfter(options_.costs.dispatch_latency, [this, packet = std::move(packet)] {
    if (!up_) {
      return;
    }
    // Deliveries are FIFO (constant latency), so the front is this packet —
    // unless a node restore already consumed the in-flight set.
    if (!local_in_flight_.empty() && local_in_flight_.front().header.id == packet.header.id) {
      local_in_flight_.pop_front();
    } else {
      return;  // Superseded by a node restore; the image carried it.
    }
    ChargeKernel(options_.costs.receive_cpu);
    ++stats_.receives;
    // Local messages bypass the extranode bookkeeping in OnPacket: they are
    // regenerated deterministically on replay, never recorded.
    RouteArrival(packet);
  });
}

void NodeKernel::NotifyRecorder(KernelOp op, const ProcessNotice& notice) {
  if (!options_.publishing_enabled) {
    return;
  }
  ProcessId recorder{options_.recorder_node, kKernelLocalId};
  SendKernelMessage(recorder, EncodeProcessNotice(op, notice),
                    kFlagGuaranteed | kFlagControl, {});
}

// ---------------------------------------------------------------------------
// Inbound packets
// ---------------------------------------------------------------------------

void NodeKernel::OnPacket(const Packet& packet) {
  if (!up_) {
    return;
  }
  if (options_.node_unit_mode && !packet.header.control()) {
    // §6.6.2: an extranode (published) arrival.  While the node replays, it
    // is held; live, it advances the event counter and is stamped for the
    // recorder before normal routing.
    if (node_recovering_) {
      ++stats_.live_held_during_recovery;
      node_pending_live_.push_back(packet);
      return;
    }
    ++node_step_;
    if (read_order_feed_ != nullptr && options_.publishing_enabled) {
      read_order_feed_->OnExtranodeArrival(node_, packet.header.id, node_step_);
    }
  }
  RouteArrival(packet);
}

void NodeKernel::RouteArrival(const Packet& packet) {
  if (packet.header.dst_process == KernelProcessId()) {
    HandleKernelPacket(packet);
    return;
  }
  ProcessRecord* proc = Find(packet.header.dst_process);
  if (proc == nullptr || proc->state == ProcessRunState::kCrashed) {
    // Unknown or halted destination: the message is still published (the
    // recorder saw it on the wire) and will be replayed after recovery.
    return;
  }

  QueuedMessage msg;
  msg.id = packet.header.id;
  msg.from = packet.header.src_process;
  msg.channel = packet.header.channel;
  msg.code = packet.header.code;
  msg.packet_flags = packet.header.flags;
  msg.link_blob = packet.link_blob;
  msg.body = packet.body;

  if (proc->state == ProcessRunState::kRecovering) {
    if (packet.header.replay()) {
      if (proc->replayed_ids.contains(msg.id)) {
        return;  // A superseded recovery attempt already injected this one.
      }
      proc->replayed_ids.insert(msg.id);
      // Seed the duplicate cache: a live retransmission of this message may
      // still arrive after recovery completes and must be suppressed.
      endpoint_->NoteDelivered(msg.id);
      ++stats_.replay_accepted;
      proc->queue.push_back(std::move(msg));
      ScheduleDispatch(proc->pid);
    } else {
      // §3.3.3: non-replay messages are held until the last recovery message
      // has been delivered; those the recovery process also replayed are
      // filtered by id at completion.
      ++stats_.live_held_during_recovery;
      proc->pending_live.push_back(std::move(msg));
    }
    return;
  }
  if (packet.header.replay()) {
    // Straggler replay for a process that already finished recovering.
    return;
  }
  proc->queue.push_back(std::move(msg));
  ScheduleDispatch(proc->pid);
}

// ---------------------------------------------------------------------------
// Dispatch / program execution
// ---------------------------------------------------------------------------

bool NodeKernel::ChannelEligible(const std::vector<uint16_t>& wanted, uint16_t channel) const {
  if (wanted.empty()) {
    return true;
  }
  return std::find(wanted.begin(), wanted.end(), channel) != wanted.end();
}

void NodeKernel::ScheduleDispatch(const ProcessId& pid) {
  sim_->ScheduleAfter(0, [this, pid] { DispatchLoop(pid); });
}

void NodeKernel::DispatchLoop(const ProcessId& pid) {
  ProcessRecord* proc = Find(pid);
  if (proc == nullptr || !up_) {
    return;
  }
  for (;;) {
    if (proc->handler_busy || proc->stopped || proc->state == ProcessRunState::kCrashed) {
      return;
    }
    if (sim_->Now() < proc->busy_until) {
      sim_->ScheduleAt(proc->busy_until, [this, pid] { DispatchLoop(pid); });
      return;
    }
    // Pick the first message the process is willing to read.  Kernel-destined
    // (DELIVERTOKERNEL) messages are always eligible: they take effect at
    // their position in the read stream (§4.4.3).
    const std::vector<uint16_t> wanted =
        proc->program ? proc->program->ReceiveChannels() : std::vector<uint16_t>{};
    size_t index = proc->queue.size();
    for (size_t i = 0; i < proc->queue.size(); ++i) {
      if (proc->queue[i].deliver_to_kernel() || ChannelEligible(wanted, proc->queue[i].channel)) {
        index = i;
        break;
      }
    }
    if (index == proc->queue.size()) {
      return;
    }
    QueuedMessage msg = std::move(proc->queue[index]);
    proc->queue.erase(proc->queue.begin() + static_cast<ptrdiff_t>(index));

    if (msg.deliver_to_kernel()) {
      // Consume atomically: count the read, then apply the control action
      // while "assuming the identity of the controlled process" (§4.4.3).
      ++proc->reads_done;
      ++stats_.program_reads;
      if (read_order_feed_ != nullptr && options_.publishing_enabled &&
          !options_.node_unit_mode) {
        read_order_feed_->OnMessageRead(proc->pid, msg.id);
      }
      ObserveRead(proc->pid, msg);
      HandleDeliverToKernel(*proc, msg);
      BumpNodeStep();
      if (Find(pid) == nullptr) {
        return;  // The control action destroyed the process.
      }
      continue;
    }

    proc->handler_busy = true;
    sim_->ScheduleAfter(options_.costs.dispatch_latency,
                        [this, pid, msg = std::move(msg)]() mutable {
                          RunHandler(pid, std::move(msg));
                        });
    return;
  }
}

void NodeKernel::RunHandler(const ProcessId& pid, QueuedMessage msg) {
  ProcessRecord* proc = Find(pid);
  if (proc == nullptr || !up_ || proc->state == ProcessRunState::kCrashed) {
    return;
  }
  DeliveredMessage delivered;
  delivered.id = msg.id;
  delivered.from = msg.from;
  delivered.channel = msg.channel;
  delivered.code = msg.code;
  delivered.body = std::move(msg.body);
  if (!msg.link_blob.empty()) {
    auto link = LinkFromBytes(msg.link_blob);
    if (link.ok()) {
      // "When the message is read the link is moved into the receiver's link
      // table" (§4.2.2.3).
      LinkId id{proc->next_link_id++};
      proc->links[id.value] = *link;
      delivered.passed_link = id;
    }
  }

  ApiImpl api(this, proc);
  proc->program->OnMessage(api, delivered);
  CompleteHandler(pid, msg, api.charged());
}

void NodeKernel::CompleteHandler(const ProcessId& pid, const QueuedMessage& msg,
                                 SimDuration charged) {
  ProcessRecord* proc = Find(pid);
  if (proc == nullptr) {
    return;
  }
  ++proc->reads_done;
  ++stats_.program_reads;
  stats_.program_cpu += charged;
  if (read_order_feed_ != nullptr && options_.publishing_enabled &&
      !options_.node_unit_mode) {
    read_order_feed_->OnMessageRead(proc->pid, msg.id);
  }
  ObserveRead(proc->pid, msg);
  proc->handler_busy = false;
  proc->busy_until = sim_->Now() + charged;
  BumpNodeStep();
  if (proc->exit_requested) {
    DestroyProcessInternal(pid, /*notify=*/true);
    return;
  }
  if (proc->checkpoint_pending) {
    proc->checkpoint_pending = false;
    EmitCheckpoint(*proc);
  }
  ScheduleDispatch(pid);
}

// ---------------------------------------------------------------------------
// Process lifecycle
// ---------------------------------------------------------------------------

Result<ProcessId> NodeKernel::SpawnProcess(const std::string& program,
                                           std::vector<Link> initial_links, bool recoverable) {
  if (!up_) {
    return Status(StatusCode::kUnavailable, "node is down");
  }
  return CreateProcessInternal(program, std::move(initial_links), recoverable);
}

Result<ProcessId> NodeKernel::CreateProcessInternal(const std::string& program,
                                                    std::vector<Link> initial_links,
                                                    bool recoverable) {
  auto instance = registry_->Instantiate(program);
  if (!instance.ok()) {
    return instance.status();
  }
  ProcessId pid{node_, next_local_id_++};
  auto record = std::make_unique<ProcessRecord>();
  record->pid = pid;
  record->program_name = program;
  record->program = std::move(*instance);
  record->initial_links = initial_links;
  for (const Link& link : initial_links) {
    record->links[record->next_link_id++] = link;
  }
  record->handler_busy = true;  // Held until OnStart completes.
  ProcessRecord* raw = record.get();
  processes_[pid] = std::move(record);
  names_->SetLocation(pid, node_);
  ++stats_.processes_created;

  ProcessNotice notice;
  notice.pid = pid;
  notice.program = program;
  notice.initial_links = initial_links;
  notice.recoverable = recoverable;
  NotifyRecorder(KernelOp::kNoticeCreated, notice);

  sim_->ScheduleAfter(options_.costs.create_latency, [this, pid, raw] {
    ProcessRecord* proc = Find(pid);
    if (proc == nullptr || proc != raw || proc->state == ProcessRunState::kCrashed) {
      return;
    }
    ApiImpl api(this, proc);
    proc->program->OnStart(api);
    proc->handler_busy = false;
    proc->busy_until = sim_->Now() + api.charged();
    stats_.program_cpu += api.charged();
    if (proc->exit_requested) {
      DestroyProcessInternal(pid, /*notify=*/true);
      return;
    }
    ScheduleDispatch(pid);
  });
  return pid;
}

void NodeKernel::DestroyProcessInternal(ProcessId pid, bool notify) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return;
  }
  std::string program = it->second->program_name;
  processes_.erase(it);
  names_->Remove(pid);
  ++stats_.processes_destroyed;
  if (notify) {
    ProcessNotice notice;
    notice.pid = pid;
    notice.program = program;
    NotifyRecorder(KernelOp::kNoticeDestroyed, notice);
  }
}

Status NodeKernel::StopProcess(const ProcessId& pid) {
  ProcessRecord* proc = Find(pid);
  if (proc == nullptr) {
    return Status(StatusCode::kNotFound, "no such process");
  }
  proc->stopped = true;
  return Status::Ok();
}

Status NodeKernel::StartProcess(const ProcessId& pid) {
  ProcessRecord* proc = Find(pid);
  if (proc == nullptr) {
    return Status(StatusCode::kNotFound, "no such process");
  }
  proc->stopped = false;
  ScheduleDispatch(pid);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

Status NodeKernel::CrashProcess(const ProcessId& pid) {
  ProcessRecord* proc = Find(pid);
  if (proc == nullptr) {
    return Status(StatusCode::kNotFound, "no such process");
  }
  // "Such errors cause traps to the operating system kernel, which stops the
  // process and sends a message to the recovery manager" (§3.3.2).
  proc->state = ProcessRunState::kCrashed;
  proc->program.reset();
  proc->queue.clear();
  proc->pending_live.clear();
  proc->replayed_ids.clear();
  proc->pending_bursts.clear();
  proc->next_burst_seq = 1;
  proc->links.clear();
  proc->handler_busy = false;
  if (options_.publishing_enabled) {
    ProcessId recorder{options_.recorder_node, kKernelLocalId};
    SendKernelMessage(recorder, EncodeRecoveryTarget(KernelOp::kNoticeCrash, {pid}),
                      kFlagGuaranteed | kFlagControl, {});
  }
  return Status::Ok();
}

void NodeKernel::CrashNode() {
  up_ = false;
  processes_.clear();
  endpoint_->Reset();
  endpoint_->set_online(false);
  node_step_ = 0;
  node_recovering_ = false;
  node_complete_seen_ = false;
  node_complete_reply_to_ = ProcessId{};
  staged_replays_.clear();
  node_pending_live_.clear();
  node_replayed_ids_.clear();
  local_in_flight_.clear();
}

void NodeKernel::RestartNode() {
  up_ = true;
  next_local_id_ = 2;
  kernel_send_seq_ = 1;
  endpoint_->set_online(true);
}

// ---------------------------------------------------------------------------
// Kernel process: control, recovery, watchdog
// ---------------------------------------------------------------------------

void NodeKernel::HandleKernelPacket(const Packet& packet) {
  switch (PeekOp(packet.body)) {
    case KernelOp::kCreateProcessRequest: {
      auto req = DecodeCreateProcessRequest(packet.body);
      if (!req.ok()) {
        return;
      }
      HandleCreateOnThisNode(*req, req->requester);
      return;
    }
    case KernelOp::kPing: {
      auto ping = DecodePing(packet.body);
      if (!ping.ok()) {
        return;
      }
      SendKernelMessage(packet.header.src_process, EncodePing(KernelOp::kPong, *ping),
                        kFlagControl, {});
      return;
    }
    case KernelOp::kStopProcess: {
      auto target = DecodeRecoveryTarget(packet.body);
      if (target.ok()) {
        StopProcess(target->pid);
      }
      return;
    }
    case KernelOp::kStartProcess: {
      auto target = DecodeRecoveryTarget(packet.body);
      if (target.ok()) {
        StartProcess(target->pid);
      }
      return;
    }
    case KernelOp::kRecreateRequest:
      HandleRecreateRequest(packet);
      return;
    case KernelOp::kRecoveryComplete:
      HandleRecoveryComplete(packet);
      return;
    case KernelOp::kReplayBurst:
      HandleReplayBurst(packet);
      return;
    case KernelOp::kSetLocalIdFloor: {
      auto floor = DecodeLocalIdFloor(packet.body);
      if (floor.ok()) {
        next_local_id_ = std::max(next_local_id_, floor->floor + 1);
        kernel_send_seq_ = std::max(kernel_send_seq_, floor->kernel_seq_floor + 1);
      }
      return;
    }
    case KernelOp::kStateQuery:
      HandleStateQuery(packet);
      return;
    case KernelOp::kRestoreNodeRequest:
      HandleRestoreNodeRequest(packet);
      return;
    case KernelOp::kNodeReplayMessage:
      HandleNodeReplayMessage(packet);
      return;
    case KernelOp::kNodeRecoveryComplete:
      HandleNodeRecoveryComplete(packet);
      return;
    default:
      PUB_LOG_DEBUG("%s: unhandled kernel op %u", ToString(node_).c_str(),
                    static_cast<unsigned>(PeekOp(packet.body)));
      return;
  }
}

void NodeKernel::HandleDeliverToKernel(ProcessRecord& proc, const QueuedMessage& msg) {
  switch (PeekOp(msg.body)) {
    case KernelOp::kMoveLink: {
      if (msg.link_blob.empty()) {
        return;
      }
      auto link = LinkFromBytes(msg.link_blob);
      if (link.ok()) {
        proc.links[proc.next_link_id++] = *link;
      }
      return;
    }
    case KernelOp::kDestroyProcess:
      DestroyProcessInternal(proc.pid, /*notify=*/true);
      return;
    case KernelOp::kStopProcess:
      proc.stopped = true;
      return;
    case KernelOp::kStartProcess:
      proc.stopped = false;
      return;
    default:
      return;
  }
}

void NodeKernel::HandleCreateOnThisNode(const CreateProcessRequest& req,
                                        const ProcessId& requester) {
  CreateProcessReply reply;
  auto created = CreateProcessInternal(req.program, req.initial_links, /*recoverable=*/true);
  reply.ok = created.ok();
  Bytes dtk_blob;
  if (created.ok()) {
    reply.created = *created;
    Link dtk{*created, req.reply_channel, 0, kLinkDeliverToKernel};
    dtk_blob = LinkToBytes(dtk);
  }
  if (requester.IsValid()) {
    // The reply — and the DELIVERTOKERNEL link granting control of the new
    // process — goes back to the requester as an ordinary published message.
    Packet packet;
    packet.header.id = MessageId{KernelProcessId(), kernel_send_seq_++};
    packet.header.src_process = KernelProcessId();
    packet.header.dst_process = requester;
    packet.header.src_node = node_;
    packet.header.flags = kFlagGuaranteed;
    packet.header.channel = req.reply_channel;
    auto location = names_->Locate(requester);
    if (!location.ok()) {
      return;
    }
    packet.header.dst_node = *location;
    packet.link_blob = std::move(dtk_blob);
    packet.body = EncodeCreateProcessReply(reply);
    SendPacket(std::move(packet));
  }
}

void NodeKernel::SetObservability(const Observability& obs) {
  endpoint_->SetObservability(obs);
  lifecycle_ = obs.lifecycle;
}

void NodeKernel::ObserveRead(const ProcessId& reader, const QueuedMessage& msg) {
  if (lifecycle_ == nullptr) {
    return;
  }
  CausalContext ctx;
  ctx.id = msg.id;
  ctx.origin = msg.id.sender.origin;
  ctx.flags = msg.packet_flags;
  lifecycle_->Observe(ctx, LifecycleStage::kRead, node_, reader);
}

void NodeKernel::HandleRecreateRequest(const Packet& packet) {
  auto req = DecodeRecreateRequest(packet.body);
  if (!req.ok()) {
    return;
  }
  // "If the process already exists, it is destroyed" (§4.7).
  DestroyProcessInternal(req->pid, /*notify=*/false);
  processes_.erase(req->pid);
  // New incarnation: per-incarnation invariants (duplicate delivery,
  // receive-order across recovery) roll their state here.
  if (lifecycle_ != nullptr) {
    lifecycle_->NoteProcessReset(req->pid);
  }

  auto instance = registry_->Instantiate(req->program);
  if (!instance.ok()) {
    PUB_LOG_ERROR("%s: cannot recreate %s: no program '%s'", ToString(node_).c_str(),
                  ToString(req->pid).c_str(), req->program.c_str());
    return;
  }
  auto record = std::make_unique<ProcessRecord>();
  record->pid = req->pid;
  record->program_name = req->program;
  record->program = std::move(*instance);
  record->state = ProcessRunState::kRecovering;
  record->suppress_through = req->last_sent_seq;
  record->recovery_round = req->recovery_round;

  if (req->has_checkpoint) {
    Status restored = RestoreState(*record, req->checkpoint_state);
    if (!restored.ok()) {
      PUB_LOG_ERROR("%s: checkpoint restore failed for %s: %s", ToString(node_).c_str(),
                    ToString(req->pid).c_str(), restored.ToString().c_str());
      return;
    }
    // suppress_through comes from the recorder, not the (older) checkpoint.
    record->suppress_through = req->last_sent_seq;
  } else {
    // Restart from the binary image: initial links, then OnStart re-runs
    // with its sends suppressed.
    record->initial_links = req->initial_links;
    for (const Link& link : req->initial_links) {
      record->links[record->next_link_id++] = link;
    }
    record->handler_busy = true;
    ProcessId pid = req->pid;
    sim_->ScheduleAfter(options_.costs.create_latency, [this, pid] {
      ProcessRecord* proc = Find(pid);
      if (proc == nullptr || proc->program == nullptr) {
        return;
      }
      ApiImpl api(this, proc);
      proc->program->OnStart(api);
      proc->handler_busy = false;
      proc->busy_until = sim_->Now() + api.charged();
      stats_.program_cpu += api.charged();
      ScheduleDispatch(pid);
    });
  }
  ProcessId pid = req->pid;
  processes_[pid] = std::move(record);
  names_->SetLocation(pid, node_);

  SendKernelMessage(packet.header.src_process,
                    EncodeRecoveryTarget(KernelOp::kRecreateAck, {pid, req->recovery_round}),
                    kFlagGuaranteed | kFlagControl, {});
}

void NodeKernel::HandleReplayBurst(const Packet& packet) {
  auto burst = DecodeReplayBurst(packet.body);
  if (!burst.ok()) {
    return;
  }
  ProcessRecord* proc = Find(burst->pid);
  if (proc == nullptr || proc->state != ProcessRunState::kRecovering ||
      proc->recovery_round != burst->recovery_round) {
    return;  // Stale attempt (§3.5) or not recovering: drop, no ack.
  }
  if (packet.segments.size() != burst->segment_count) {
    return;  // Garbled gather frame: let the sender's timer resend it.
  }
  if (burst->burst_seq < proc->next_burst_seq) {
    // Duplicate of an already-unpacked burst (our ack was lost, or a
    // go-back-N resend overlapped it): re-ack so the sender advances.
    SendReplayBurstAck(packet.header.src_process, *proc);
    return;
  }
  proc->pending_bursts[burst->burst_seq] = packet.segments;
  // Unpack strictly in burst_seq order — this is what preserves the paper's
  // replay-in-recorded-read-order semantics across an unordered window.
  for (auto it = proc->pending_bursts.find(proc->next_burst_seq);
       it != proc->pending_bursts.end();
       it = proc->pending_bursts.find(proc->next_burst_seq)) {
    std::vector<Buffer> segments = std::move(it->second);
    proc->pending_bursts.erase(it);
    ++proc->next_burst_seq;
    ++stats_.replay_bursts_accepted;
    for (const Buffer& segment : segments) {
      UnpackReplaySegment(*proc, segment);
    }
    // Unpacking can crash the process recursively; stop if the record is
    // no longer the same recovering incarnation.
    proc = Find(burst->pid);
    if (proc == nullptr || proc->state != ProcessRunState::kRecovering ||
        proc->recovery_round != burst->recovery_round) {
      return;
    }
  }
  SendReplayBurstAck(packet.header.src_process, *proc);
}

void NodeKernel::UnpackReplaySegment(ProcessRecord& proc, const Buffer& segment) {
  auto packet = ParsePacket(segment);
  if (!packet.ok()) {
    PUB_LOG_ERROR("%s: corrupt replay segment for %s", ToString(node_).c_str(),
                  ToString(proc.pid).c_str());
    return;
  }
  packet->header.flags |= kFlagReplay | kFlagGuaranteed;
  packet->header.dst_node = node_;
  // The lifecycle's `replayed` stage counts once per message per recovery
  // round: the in-order unpack above already drops whole duplicate bursts,
  // and replayed_ids filters re-injections across superseded rounds.
  if (lifecycle_ != nullptr && !proc.replayed_ids.contains(packet->header.id)) {
    CausalContext ctx;
    ctx.id = packet->header.id;
    ctx.origin = packet->header.src_node;
    ctx.flags = packet->header.flags;
    lifecycle_->Observe(ctx, LifecycleStage::kReplayed, node_, packet->header.dst_process);
  }
  RouteArrival(*packet);
}

void NodeKernel::SendReplayBurstAck(const ProcessId& dst, const ProcessRecord& proc) {
  // Unguaranteed: a lost ack just means the sender's go-back-N timer fires
  // and the duplicate burst is re-acked above.
  SendKernelMessage(dst,
                    EncodeReplayBurstAck({proc.pid, proc.recovery_round,
                                          proc.next_burst_seq - 1}),
                    kFlagControl, {});
}

void NodeKernel::HandleRecoveryComplete(const Packet& packet) {
  auto target = DecodeRecoveryTarget(packet.body);
  if (!target.ok()) {
    return;
  }
  ProcessRecord* proc = Find(target->pid);
  if (proc != nullptr && proc->state == ProcessRunState::kRecovering &&
      proc->recovery_round == target->recovery_round) {
    // Release live messages that were held during replay, minus those the
    // recovery process also delivered (id filter, §3.3.3).
    for (QueuedMessage& msg : proc->pending_live) {
      if (!proc->replayed_ids.contains(msg.id)) {
        proc->queue.push_back(std::move(msg));
      }
    }
    proc->pending_live.clear();
    proc->replayed_ids.clear();
    proc->pending_bursts.clear();
    proc->next_burst_seq = 1;
    proc->state = ProcessRunState::kRunning;
    ScheduleDispatch(proc->pid);
  }
  SendKernelMessage(
      packet.header.src_process,
      EncodeRecoveryTarget(KernelOp::kRecoveryCompleteAck,
                           {target->pid, target->recovery_round}),
      kFlagGuaranteed | kFlagControl, {});
}

void NodeKernel::HandleStateQuery(const Packet& packet) {
  auto query = DecodeStateQuery(packet.body);
  if (!query.ok()) {
    return;
  }
  StateReply reply;
  reply.restart_number = query->restart_number;
  reply.node = node_;
  for (const ProcessId& pid : query->pids) {
    reply.answers.emplace_back(pid, QueryProcessState(pid));
  }
  SendKernelMessage(packet.header.src_process, EncodeStateReply(reply),
                    kFlagGuaranteed | kFlagControl, {});
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

Status NodeKernel::CheckpointProcess(const ProcessId& pid) {
  if (!options_.publishing_enabled) {
    return Status(StatusCode::kUnavailable, "publishing disabled");
  }
  ProcessRecord* proc = Find(pid);
  if (proc == nullptr) {
    return Status(StatusCode::kNotFound, "no such process");
  }
  if (proc->state != ProcessRunState::kRunning) {
    return Status(StatusCode::kUnavailable, "process not in a checkpointable state");
  }
  if (proc->handler_busy) {
    proc->checkpoint_pending = true;  // Captured when the handler completes.
    return Status::Ok();
  }
  EmitCheckpoint(*proc);
  return Status::Ok();
}

void NodeKernel::EmitCheckpoint(ProcessRecord& proc) {
  CheckpointPayload payload;
  payload.pid = proc.pid;
  payload.reads_done = proc.reads_done;
  payload.state = CaptureState(proc);
  ++stats_.checkpoints_sent;
  ProcessId recorder{options_.recorder_node, kKernelLocalId};
  SendKernelMessage(recorder, EncodeCheckpoint(payload), kFlagGuaranteed | kFlagControl, {});
}

ProcessImage NodeKernel::BuildProcessImage(const ProcessRecord& proc) const {
  ProcessImage image;
  image.program_name = proc.program_name;
  image.stopped = proc.stopped;
  image.next_send_seq = proc.next_send_seq;
  image.reads_done = proc.reads_done;
  image.next_link_id = proc.next_link_id;
  for (const auto& [id, link] : proc.links) {
    image.links.emplace_back(id, link);
  }
  Writer program_state;
  proc.program->SaveState(program_state);
  image.program_state = program_state.TakeBytes();
  return image;
}

Bytes NodeKernel::CaptureState(const ProcessRecord& proc) const {
  return EncodeProcessImage(BuildProcessImage(proc));
}

Status NodeKernel::RestoreState(ProcessRecord& proc, const Bytes& state) {
  auto image = DecodeProcessImage(state);
  if (!image.ok()) {
    return image.status();
  }
  proc.stopped = image->stopped;
  proc.next_send_seq = image->next_send_seq;
  proc.reads_done = image->reads_done;
  proc.next_link_id = image->next_link_id;
  proc.links.clear();
  for (const auto& [id, link] : image->links) {
    proc.links[id] = link;
  }
  Reader pr(std::span<const uint8_t>(image->program_state.data(), image->program_state.size()));
  return proc.program->LoadState(pr);
}

// ---------------------------------------------------------------------------
// Node-unit recovery (§6.6.2)
// ---------------------------------------------------------------------------

void NodeKernel::BumpNodeStep() {
  ++node_step_;
  if (node_recovering_) {
    DrainStagedReplays();
  }
}

void NodeKernel::DrainStagedReplays() {
  // Inject each staged extranode message exactly when the event counter
  // reaches the position at which the original run received it ("the
  // recovering node will not use the message until that time", §6.6.2).
  while (!staged_replays_.empty() && staged_replays_.front().first == node_step_ + 1) {
    Packet packet = std::move(staged_replays_.front().second);
    staged_replays_.pop_front();
    ++node_step_;
    ++stats_.replay_accepted;
    RouteArrival(packet);
  }
  FinishNodeRecoveryIfDone();
}

void NodeKernel::FinishNodeRecoveryIfDone() {
  if (!node_recovering_ || !node_complete_seen_ || !staged_replays_.empty()) {
    return;
  }
  node_recovering_ = false;
  node_complete_seen_ = false;
  // Release extranode messages that arrived during the replay, minus those
  // the replay itself delivered.
  std::deque<Packet> pending = std::move(node_pending_live_);
  node_pending_live_.clear();
  for (Packet& packet : pending) {
    if (node_replayed_ids_.contains(packet.header.id)) {
      continue;
    }
    ++node_step_;
    if (read_order_feed_ != nullptr && options_.publishing_enabled) {
      read_order_feed_->OnExtranodeArrival(node_, packet.header.id, node_step_);
    }
    RouteArrival(packet);
  }
  node_replayed_ids_.clear();
  if (node_complete_reply_to_.IsValid()) {
    SendKernelMessage(
        node_complete_reply_to_,
        EncodeNodeRecoveryRound(KernelOp::kNodeRecoveryCompleteAck,
                                {node_, node_recovery_round_}),
        kFlagGuaranteed | kFlagControl, {});
    node_complete_reply_to_ = ProcessId{};
  }
  PUB_LOG_INFO("%s: node-unit recovery complete at step %llu", ToString(node_).c_str(),
               static_cast<unsigned long long>(node_step_));
}

void NodeKernel::HandleRestoreNodeRequest(const Packet& packet) {
  auto req = DecodeRestoreNodeRequest(packet.body);
  if (!req.ok() || req->node != node_) {
    return;
  }
  // Wipe the incarnation: every process, the transport's in-flight state,
  // the scheduler counter.
  processes_.clear();
  endpoint_->Reset();
  staged_replays_.clear();
  node_pending_live_.clear();
  node_replayed_ids_.clear();
  local_in_flight_.clear();  // The wiped incarnation's deliveries die with it.
  node_recovering_ = true;
  node_complete_seen_ = false;
  node_recovery_round_ = req->recovery_round;
  node_step_ = 0;
  next_local_id_ = 2;
  kernel_send_seq_ = 1;

  std::map<ProcessId, uint64_t> last_sent(req->last_sent.begin(), req->last_sent.end());
  // Jump the kernel-process sequence well past anything the dead incarnation
  // may have consumed (including unpublished control traffic the recorder
  // never saw; the stride bounds that slack).
  auto kernel_floor = last_sent.find(KernelProcessId());
  if (kernel_floor != last_sent.end()) {
    kernel_send_seq_ = std::max(kernel_send_seq_, kernel_floor->second + (uint64_t{1} << 20));
  }
  if (req->has_image) {
    auto image = DecodeNodeImage(req->image);
    if (!image.ok()) {
      PUB_LOG_ERROR("%s: corrupt node image: %s", ToString(node_).c_str(),
                    image.status().ToString().c_str());
      return;
    }
    node_step_ = image->node_step;
    next_local_id_ = image->next_local_id;
    // max(): keep the anti-reuse floor applied above.
    kernel_send_seq_ = std::max(kernel_send_seq_, image->kernel_send_seq);
    for (const NodeProcessEntry& entry : image->processes) {
      auto instance = registry_->Instantiate(entry.image.program_name);
      if (!instance.ok()) {
        PUB_LOG_ERROR("%s: cannot restore %s: no program '%s'", ToString(node_).c_str(),
                      ToString(entry.pid).c_str(), entry.image.program_name.c_str());
        continue;
      }
      auto record = std::make_unique<ProcessRecord>();
      record->pid = entry.pid;
      record->program_name = entry.image.program_name;
      record->program = std::move(*instance);
      Status restored = RestoreState(*record, EncodeProcessImage(entry.image));
      if (!restored.ok()) {
        PUB_LOG_ERROR("%s: node image restore failed for %s", ToString(node_).c_str(),
                      ToString(entry.pid).c_str());
        continue;
      }
      auto sent_it = last_sent.find(entry.pid);
      record->suppress_through = sent_it == last_sent.end() ? 0 : sent_it->second;
      for (const QueuedMessageImage& msg : entry.queue) {
        QueuedMessage queued;
        queued.id = msg.id;
        queued.from = msg.from;
        queued.channel = msg.channel;
        queued.code = msg.code;
        queued.packet_flags = msg.packet_flags;
        queued.link_blob = msg.link_blob;
        queued.body = msg.body;
        record->queue.push_back(std::move(queued));
      }
      ProcessId pid = entry.pid;
      processes_[pid] = std::move(record);
      names_->SetLocation(pid, node_);
      ScheduleDispatch(pid);
    }
  }
  SendKernelMessage(packet.header.src_process,
                    EncodeNodeRecoveryRound(KernelOp::kRestoreNodeAck,
                                            {node_, req->recovery_round}),
                    kFlagGuaranteed | kFlagControl, {});
  DrainStagedReplays();
}

void NodeKernel::HandleNodeReplayMessage(const Packet& packet) {
  if (!node_recovering_) {
    return;  // Stale replay from a superseded attempt.
  }
  auto replay = DecodeNodeReplayMessage(packet.body);
  if (!replay.ok()) {
    return;
  }
  auto original = ParsePacket(replay->packet);
  if (!original.ok()) {
    return;
  }
  node_replayed_ids_.insert(original->header.id);
  // A live retransmission of the same message may still be in flight.
  endpoint_->NoteDelivered(original->header.id);
  staged_replays_.emplace_back(replay->step, std::move(*original));
  DrainStagedReplays();
}

void NodeKernel::HandleNodeRecoveryComplete(const Packet& packet) {
  auto round = DecodeNodeRecoveryRound(packet.body);
  if (!round.ok()) {
    return;
  }
  if (!node_recovering_ || round->recovery_round != node_recovery_round_) {
    // Stale attempt: acknowledge so the old recovery process terminates.
    SendKernelMessage(packet.header.src_process,
                      EncodeNodeRecoveryRound(KernelOp::kNodeRecoveryCompleteAck, *round),
                      kFlagGuaranteed | kFlagControl, {});
    return;
  }
  node_complete_seen_ = true;
  node_complete_reply_to_ = packet.header.src_process;
  FinishNodeRecoveryIfDone();
}

Result<Bytes> NodeKernel::CaptureNodeImage() const {
  if (node_recovering_) {
    return Status(StatusCode::kUnavailable, "node is recovering");
  }
  NodeImage image;
  image.node = node_;
  image.node_step = node_step_;
  image.next_local_id = next_local_id_;
  image.kernel_send_seq = kernel_send_seq_;
  for (const auto& [pid, proc] : processes_) {
    if (proc->state == ProcessRunState::kCrashed) {
      continue;
    }
    if (proc->handler_busy) {
      return Status(StatusCode::kUnavailable, "a handler is mid-flight; retry");
    }
    NodeProcessEntry entry;
    entry.pid = pid;
    entry.image = BuildProcessImage(*proc);
    for (const QueuedMessage& msg : proc->queue) {
      QueuedMessageImage queued;
      queued.id = msg.id;
      queued.from = msg.from;
      queued.channel = msg.channel;
      queued.code = msg.code;
      queued.packet_flags = msg.packet_flags;
      queued.link_blob = msg.link_blob;
      queued.body = msg.body;
      entry.queue.push_back(std::move(queued));
    }
    image.processes.push_back(std::move(entry));
  }
  // Deterministic ordering for bit-identical images.
  std::sort(image.processes.begin(), image.processes.end(),
            [](const NodeProcessEntry& a, const NodeProcessEntry& b) { return a.pid < b.pid; });
  // Intranode messages between send and delivery exist in no queue yet; fold
  // them into their destinations' queues (they would arrive next anyway).
  for (const Packet& packet : local_in_flight_) {
    NodeProcessEntry* entry = nullptr;
    for (NodeProcessEntry& candidate : image.processes) {
      if (candidate.pid == packet.header.dst_process) {
        entry = &candidate;
        break;
      }
    }
    if (entry == nullptr) {
      // Kernel-addressed (instant-execution) message in flight: no queue can
      // hold it; wait for a quieter instant.
      return Status(StatusCode::kUnavailable, "kernel-bound intranode message in flight");
    }
    QueuedMessageImage queued;
    queued.id = packet.header.id;
    queued.from = packet.header.src_process;
    queued.channel = packet.header.channel;
    queued.code = packet.header.code;
    queued.packet_flags = packet.header.flags;
    queued.link_blob = packet.link_blob;
    queued.body = packet.body;
    entry->queue.push_back(std::move(queued));
  }
  return EncodeNodeImage(image);
}

Status NodeKernel::CheckpointNode() {
  if (!options_.publishing_enabled || !options_.node_unit_mode) {
    return Status(StatusCode::kUnavailable, "node-unit mode is off");
  }
  auto image = CaptureNodeImage();
  if (!image.ok()) {
    return image.status();
  }
  NodeCheckpointPayload payload;
  payload.node = node_;
  payload.node_step = node_step_;
  payload.image = std::move(*image);
  ++stats_.checkpoints_sent;
  ProcessId recorder{options_.recorder_node, kKernelLocalId};
  SendKernelMessage(recorder, EncodeNodeCheckpoint(payload), kFlagGuaranteed | kFlagControl,
                    {});
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

ProcessStateAnswer NodeKernel::QueryProcessState(const ProcessId& pid) const {
  const ProcessRecord* proc = Find(pid);
  if (proc == nullptr) {
    return ProcessStateAnswer::kUnknown;
  }
  switch (proc->state) {
    case ProcessRunState::kRunning:
    case ProcessRunState::kStopped:
      return ProcessStateAnswer::kFunctioning;
    case ProcessRunState::kRecovering:
      return ProcessStateAnswer::kRecovering;
    case ProcessRunState::kCrashed:
      return ProcessStateAnswer::kCrashed;
  }
  return ProcessStateAnswer::kUnknown;
}

const UserProgram* NodeKernel::ProgramFor(const ProcessId& pid) const {
  const ProcessRecord* proc = Find(pid);
  return proc == nullptr ? nullptr : proc->program.get();
}

Result<uint64_t> NodeKernel::ReadsDone(const ProcessId& pid) const {
  const ProcessRecord* proc = Find(pid);
  if (proc == nullptr) {
    return Status(StatusCode::kNotFound, "no such process");
  }
  return proc->reads_done;
}

std::vector<ProcessId> NodeKernel::LiveProcesses() const {
  std::vector<ProcessId> out;
  for (const auto& [pid, proc] : processes_) {
    if (proc->state != ProcessRunState::kCrashed) {
      out.push_back(pid);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

NodeKernel::ProcessRecord* NodeKernel::Find(const ProcessId& pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

const NodeKernel::ProcessRecord* NodeKernel::Find(const ProcessId& pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

}  // namespace publishing
