// Deterministic user-program runtime.
//
// The recovery model requires processes that are "deterministic upon their
// input interactions" (§1.1.1): restarted from the same state and fed the
// same messages in the same order, a program must emit the same messages.
// We enforce the paper's constraint structurally — a UserProgram is an event
// handler whose only inputs are its serialized state and delivered messages,
// and whose only outputs are KernelApi calls.  Programs have no access to
// wall-clock time, randomness, or shared memory.
//
// Virtual CPU usage is modeled with KernelApi::Charge(): the charged time
// delays when the process next becomes runnable, which is what makes the
// recovery-time model's t_compute term (§3.2.3) measurable.

#ifndef SRC_DEMOS_PROGRAM_H_
#define SRC_DEMOS_PROGRAM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/serialization.h"
#include "src/common/status.h"
#include "src/demos/link.h"
#include "src/sim/time.h"

namespace publishing {

// A message as handed to a program by the receive kernel call (§4.2.2.3).
struct DeliveredMessage {
  MessageId id;
  ProcessId from;
  uint16_t channel = 0;
  uint32_t code = 0;
  LinkId passed_link;  // Invalid when no link was passed.
  Bytes body;
};

// The kernel-call surface available to user programs.  Every call returns a
// condition code (part of the visible deterministic interaction, §4.4.3).
class KernelApi {
 public:
  virtual ~KernelApi() = default;

  // Identity of the calling process.
  virtual ProcessId Self() const = 0;
  virtual NodeId CurrentNode() const = 0;

  // Creates a link to the calling process with the given channel/code
  // (§4.2.2.1: "for a process to receive messages, it must create a link to
  // itself").
  virtual Result<LinkId> CreateLink(uint16_t channel, uint32_t code) = 0;
  virtual Status DestroyLink(LinkId link) = 0;

  // Duplicates a held link (capability copy; how the named-link server hands
  // out registered links without giving its own copy away).
  virtual Result<LinkId> DuplicateLink(LinkId link) = 0;

  // Reads a link table entry (inspection only; links remain kernel-owned).
  virtual Result<Link> InspectLink(LinkId link) const = 0;

  // Sends `body` over `link`, optionally passing `pass_link` (which is
  // removed from the caller's table, §4.2.2.3).
  virtual Status Send(LinkId link, Bytes body, LinkId pass_link = {}) = 0;

  // Requests creation of `program` on `target_node` via the kernel process
  // chain.  The reply (CreateProcessReply + a DELIVERTOKERNEL link to the
  // child) arrives later as a message on `reply_channel`.  `links_to_move`
  // are removed from the caller's table and installed as the child's initial
  // links (§4.2.2.1: "the creating process may insert a number of initial
  // links into the new process's link table").
  virtual Status RequestCreateProcess(const std::string& program, NodeId target_node,
                                      uint16_t reply_channel,
                                      std::vector<LinkId> links_to_move) = 0;

  // Consumes virtual CPU time; the process becomes runnable again only after
  // the charged duration elapses.
  virtual void Charge(SimDuration cpu_time) = 0;

  // Terminates the calling process after the current handler returns.
  virtual void Exit() = 0;
};

// Base class for deterministic programs.
class UserProgram {
 public:
  virtual ~UserProgram() = default;

  // Invoked once when the process is created from its binary image.  NOT
  // re-invoked when the process is restored from a checkpoint.
  virtual void OnStart(KernelApi& api) = 0;

  // Invoked for each received message.
  virtual void OnMessage(KernelApi& api, const DeliveredMessage& msg) = 0;

  // Channels this process is currently willing to receive from; empty means
  // "any" (§4.2.2.2).  Consulted by the kernel before each delivery.  Must be
  // a pure function of program state.
  virtual std::vector<uint16_t> ReceiveChannels() const { return {}; }

  // Checkpoint support: serialize/restore the program's entire state.
  virtual void SaveState(Writer& w) const = 0;
  virtual Status LoadState(Reader& r) = 0;
};

// Maps program names ("binary images", §3.3.1) to factories.  The recovery
// manager restarts crashed processes by name, so every program that may be
// recovered must be registered under the same name on every node.
class ProgramRegistry {
 public:
  using Factory = std::function<std::unique_ptr<UserProgram>()>;

  void Register(const std::string& name, Factory factory) { factories_[name] = std::move(factory); }

  Result<std::unique_ptr<UserProgram>> Instantiate(const std::string& name) const {
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status(StatusCode::kNotFound, "no program registered as '" + name + "'");
    }
    return it->second();
  }

  bool Has(const std::string& name) const { return factories_.contains(name); }

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace publishing

#endif  // SRC_DEMOS_PROGRAM_H_
