// The DEMOS system processes (§4.2.1, §4.2.3): user-level processes that
// provide "structure and policy" above the kernel's primitives.
//
//   * ProcessManagerProgram — entry point for process-control requests;
//     tracks per-job resource limits and forwards create requests down the
//     chain (§4.2.3: "the request is then passed through the three
//     processes, each performing its particular function").
//   * MemorySchedulerProgram — picks the node for a new process (§4.3.2) and
//     forwards the request to that node's kernel process.
//   * NamedLinkServerProgram — the rendezvous service (§4.2.2.1): processes
//     register links under names; others look them up.
//
// Because these are ordinary deterministic UserPrograms, they are themselves
// recoverable by publishing — crashing the process manager mid-creation and
// recovering it is one of the integration tests.

#ifndef SRC_DEMOS_SYSTEM_PROGRAMS_H_
#define SRC_DEMOS_SYSTEM_PROGRAMS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/demos/program.h"
#include "src/demos/protocol.h"

namespace publishing {

// Channel on which the named-link server accepts requests.
inline constexpr uint16_t kNameServiceChannel = 998;

// Named-link server wire protocol.
enum class NameOp : uint8_t {
  kRegister = 1,  // Body: name; passed link: the link to register.
  kLookup = 2,    // Body: name; passed link: reply link.
  kReply = 3,     // Body: name + found flag; passed link: the registered link.
};

Bytes EncodeNameRegister(const std::string& name);
Bytes EncodeNameLookup(const std::string& name);
struct NameReply {
  std::string name;
  bool found = false;
};
Bytes EncodeNameReply(const NameReply& reply);
Result<NameReply> DecodeNameReply(const Bytes& body);
// Decodes the name out of a register/lookup request.
Result<std::string> DecodeNameRequest(const Bytes& body);

class ProcessManagerProgram : public UserProgram {
 public:
  // Initial link 1: the memory scheduler.
  static constexpr uint32_t kSchedulerLink = 1;

  void OnStart(KernelApi& api) override;
  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override;
  void SaveState(Writer& w) const override;
  Status LoadState(Reader& r) override;

  uint64_t forwarded() const { return forwarded_; }
  void set_job_limit(uint32_t limit) { job_limit_ = limit; }

 private:
  uint64_t forwarded_ = 0;
  uint32_t job_limit_ = 0;  // 0 = unlimited processes per requesting job.
  // Live process count per job (keyed by requester origin-node+local).
  std::map<uint64_t, uint32_t> job_counts_;
};

class MemorySchedulerProgram : public UserProgram {
 public:
  // Initial links 1..N: kernel processes, in cluster node order.

  void OnStart(KernelApi& api) override;
  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override;
  void SaveState(Writer& w) const override;
  Status LoadState(Reader& r) override;

  uint64_t scheduled() const { return scheduled_; }

 private:
  Result<LinkId> LinkForNode(KernelApi& api, NodeId node) const;

  uint64_t scheduled_ = 0;
  uint64_t round_robin_ = 0;  // Placement cursor for kAnyNode requests.
  std::vector<std::pair<uint32_t, uint32_t>> node_links_;  // (node, link id).
};

class NamedLinkServerProgram : public UserProgram {
 public:
  void OnStart(KernelApi& api) override;
  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override;
  std::vector<uint16_t> ReceiveChannels() const override { return {kNameServiceChannel}; }
  void SaveState(Writer& w) const override;
  Status LoadState(Reader& r) override;

  size_t registered_count() const { return names_.size(); }

 private:
  // Registered links stay in the server's kernel link table (where the
  // capability actually lives and gets checkpointed); program state only
  // remembers which slot holds which name.
  std::map<std::string, uint32_t> names_;
};

}  // namespace publishing

#endif  // SRC_DEMOS_SYSTEM_PROGRAMS_H_
