// The DEMOS/MP per-node message kernel (§4.2, §4.3), modified for published
// communications (§4.4–4.7).
//
// Responsibilities:
//   * link tables and the kernel-call surface user programs see (KernelApi);
//   * per-process message queues with channel-selective receive (§4.2.2.2);
//   * the kernel process: process creation/destruction, DELIVERTOKERNEL
//     process control executed "as" the controlled process (§4.4.3), watchdog
//     replies, and the recovery-side protocol (recreate, replay completion,
//     recorder state queries §3.3.4);
//   * publishing modifications (§4.4.1): with publishing enabled, every
//     message — including intranode ones — is transmitted on the network so
//     the recorder can record it; creation/destruction notices and checkpoint
//     images are sent to the recorder; message sends during recovery with
//     sequence numbers at or below the pre-crash high-water mark are
//     suppressed (§4.7).
//
// Process-control semantics: DELIVERTOKERNEL messages travel through the
// destination process's message queue and take effect in read order, so that
// replaying the published stream reproduces link-table mutations at exactly
// the same point in the process's execution (§4.4.3's MOVELINK problem).

#ifndef SRC_DEMOS_NODE_KERNEL_H_
#define SRC_DEMOS_NODE_KERNEL_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/demos/link.h"
#include "src/demos/process_image.h"
#include "src/demos/program.h"
#include "src/demos/protocol.h"
#include "src/sim/simulator.h"
#include "src/transport/endpoint.h"

namespace publishing {

// Read-order feed: how the recorder learns the order in which a process
// consumed its messages.  In the paper the recorder infers this passively
// from transport acknowledgements plus explicit out-of-order notices
// (§4.4.1/§4.4.2); our transport acks do not carry read positions, so the
// kernel reports each read through this interface instead.  The information
// content is identical; see DESIGN.md.
class ReadOrderFeed {
 public:
  virtual ~ReadOrderFeed() = default;

  virtual void OnMessageRead(const ProcessId& reader, const MessageId& id) = 0;

  // Node-unit recovery (§6.6.2): an extranode message arrived when the
  // node's deterministic-scheduler event counter read `step`.  Models the
  // paper's "whenever an extranode message is received ... inform the
  // recorder of how many instructions have been executed prior to receipt".
  virtual void OnExtranodeArrival(NodeId node, const MessageId& id, uint64_t step) {
    (void)node;
    (void)id;
    (void)step;
  }
};

// Cluster-wide process location registry (models the kernels' routing
// tables, §4.3.3).  Updated on creation, destruction, and recovery.
class NameService {
 public:
  void SetLocation(const ProcessId& pid, NodeId node) { table_[pid] = node; }
  void Remove(const ProcessId& pid) { table_.erase(pid); }

  Result<NodeId> Locate(const ProcessId& pid) const {
    auto it = table_.find(pid);
    if (it == table_.end()) {
      return Status(StatusCode::kNotFound, "no location for " + ToString(pid));
    }
    return it->second;
  }

 private:
  std::unordered_map<ProcessId, NodeId> table_;
};

// Virtual CPU cost model; the Figure 5.7/5.8 benches read these back out of
// KernelStats.  Defaults are calibrated to the paper's measurements: an
// intranode send/receive pair costs ~4 ms of kernel CPU without publishing
// and ~30 ms with it, the difference being "due entirely to the network
// protocol and to the servicing of the network device interrupts" (§5.2.1).
struct KernelCosts {
  SimDuration send_cpu = Millis(2);          // Kernel-call side of a send.
  SimDuration receive_cpu = Millis(2);       // Queue manipulation on receive.
  SimDuration net_protocol_cpu = Millis(13); // Full protocol stack traversal.
  SimDuration dispatch_latency = Micros(500);
  SimDuration create_latency = Millis(2);
};

struct KernelOptions {
  // When false, intranode messages bypass the network and no recorder
  // traffic is generated — the paper's unmodified DEMOS/MP baseline.
  bool publishing_enabled = true;
  // §6.6.2: recover the node as a unit.  Intranode messages stay off the
  // network (the dominant publishing cost disappears); the kernel runs a
  // deterministic scheduler and stamps every extranode arrival with its
  // event-counter position so replay can reproduce the interleaving.
  bool node_unit_mode = false;
  NodeId recorder_node{0};
  // Where create requests are routed (the process-manager system process).
  ProcessId process_manager;
  KernelCosts costs;
  TransportOptions transport;
};

struct KernelStats {
  uint64_t sends = 0;
  uint64_t intranode_sends = 0;
  uint64_t wire_sends = 0;
  uint64_t receives = 0;
  uint64_t program_reads = 0;
  uint64_t sends_suppressed = 0;       // Recovery resend suppression (§4.7).
  uint64_t replay_accepted = 0;
  uint64_t replay_bursts_accepted = 0;  // In-order bursts unpacked (§11).
  uint64_t live_held_during_recovery = 0;
  uint64_t checkpoints_sent = 0;
  uint64_t processes_created = 0;
  uint64_t processes_destroyed = 0;
  SimDuration kernel_cpu = 0;          // Accumulated virtual kernel CPU.
  SimDuration program_cpu = 0;         // Accumulated Charge()d program CPU.
};

enum class ProcessRunState : uint8_t {
  kRunning = 0,
  kStopped = 1,
  kRecovering = 2,
  kCrashed = 3,
};

class NodeKernel {
 public:
  NodeKernel(Simulator* sim, Medium* medium, NodeId node, const ProgramRegistry* registry,
             NameService* names, KernelOptions options);
  ~NodeKernel();

  NodeKernel(const NodeKernel&) = delete;
  NodeKernel& operator=(const NodeKernel&) = delete;

  // --- Bootstrap / direct control (used by Cluster and tests) ---

  // Creates a process directly on this node, bypassing the process-manager
  // chain (how system processes are started at boot, §4.2.1).  A process
  // spawned with recoverable=false is exempt from publishing (§6.6.1: "there
  // are a large number of processes which do not need to be recoverable" —
  // equipotent status commands, backups); the recorder stores nothing for it
  // and crashes of it are final.
  Result<ProcessId> SpawnProcess(const std::string& program, std::vector<Link> initial_links,
                                 bool recoverable = true);

  // Captures and publishes a checkpoint for `pid` (invoked by checkpoint
  // policies; transparent to the process, §3.2.2).  If the process is mid-
  // handler the capture is deferred until the handler completes.
  Status CheckpointProcess(const ProcessId& pid);

  // §6.6.2: captures the entire node (all processes, queues, kernel
  // counters) and publishes it as one checkpoint.  Returns kUnavailable if a
  // handler is mid-flight (callers retry on the next poll).
  Status CheckpointNode();
  Result<Bytes> CaptureNodeImage() const;

  uint64_t node_step() const { return node_step_; }
  bool node_recovering() const { return node_recovering_; }

  // --- Fault injection ---

  // Simulates a detected sporadic fault in one process: the process halts
  // and the kernel notifies the recovery manager (§3.3.2).
  Status CrashProcess(const ProcessId& pid);

  // Simulates a processor crash: every process is lost, the node falls
  // silent (watchdog timeouts will detect it, §4.6).
  void CrashNode();

  // Brings a crashed node back up with empty state.
  void RestartNode();

  bool node_up() const { return up_; }

  // Scheduling control (§4.2.3); also reachable over the wire via
  // kStopProcess/kStartProcess kernel-process requests.
  Status StopProcess(const ProcessId& pid);
  Status StartProcess(const ProcessId& pid);

  // --- Introspection ---

  NodeId node() const { return node_; }
  ProcessId KernelProcessId() const { return ProcessId{node_, kKernelLocalId}; }
  ProcessStateAnswer QueryProcessState(const ProcessId& pid) const;
  // Program instance for white-box assertions in tests; null if absent.
  const UserProgram* ProgramFor(const ProcessId& pid) const;
  Result<uint64_t> ReadsDone(const ProcessId& pid) const;
  std::vector<ProcessId> LiveProcesses() const;
  const KernelStats& stats() const { return stats_; }
  TransportEndpoint& endpoint() { return *endpoint_; }

  // Forwards to the transport endpoint and keeps the lifecycle sink for the
  // kernel's own stages (message reads, process recreation).
  void SetObservability(const Observability& obs);

  void set_read_order_feed(ReadOrderFeed* feed) { read_order_feed_ = feed; }

  // Wires the process-manager address once the system processes exist.
  void set_process_manager(const ProcessId& pid) { options_.process_manager = pid; }

  static constexpr uint32_t kKernelLocalId = 1;

 private:
  struct QueuedMessage {
    MessageId id;
    ProcessId from;
    uint16_t channel = 0;
    uint32_t code = 0;
    uint8_t packet_flags = 0;
    Bytes link_blob;
    Bytes body;

    bool deliver_to_kernel() const { return (packet_flags & kFlagDeliverToKernel) != 0; }
  };

  struct ProcessRecord {
    ProcessId pid;
    std::string program_name;
    std::unique_ptr<UserProgram> program;
    ProcessRunState state = ProcessRunState::kRunning;
    bool stopped = false;

    std::map<uint32_t, Link> links;
    uint32_t next_link_id = 1;

    std::deque<QueuedMessage> queue;
    uint64_t next_send_seq = 1;
    uint64_t suppress_through = 0;  // Sends with seq <= this are dropped.
    uint64_t reads_done = 0;

    bool handler_busy = false;
    SimTime busy_until = 0;  // Charge()d CPU keeps the process off the queue.
    bool exit_requested = false;
    bool checkpoint_pending = false;
    std::vector<Link> initial_links;  // For restart-from-image bookkeeping.

    // Recovery bookkeeping (§3.3.3): live messages held until replay ends,
    // and the ids already replayed (to drop duplicates from the held set).
    std::deque<QueuedMessage> pending_live;
    std::unordered_set<MessageId> replayed_ids;
    uint64_t recovery_round = 0;  // Attempt nonce; stale completions ignored.

    // Pipelined replay reassembly (DESIGN.md §11): bursts unpack strictly in
    // burst_seq order; arrivals past a gap buffer here until the go-back-N
    // sender fills it.  Cumulative ack value = next_burst_seq - 1.
    uint64_t next_burst_seq = 1;
    std::map<uint64_t, std::vector<Buffer>> pending_bursts;
  };

  class ApiImpl;
  friend class ApiImpl;

  // --- Send/receive plumbing ---
  void OnPacket(const Packet& packet);
  void RouteArrival(const Packet& packet);
  void SendPacket(Packet packet);
  Status SendFromProcess(ProcessRecord& proc, const Link& link, Bytes body, Bytes link_blob);
  void SendKernelMessage(const ProcessId& dst, Bytes body, uint8_t extra_flags, Bytes link_blob);
  void NotifyRecorder(KernelOp op, const ProcessNotice& notice);

  // --- Dispatch ---
  void ScheduleDispatch(const ProcessId& pid);
  void DispatchLoop(const ProcessId& pid);
  void RunHandler(const ProcessId& pid, QueuedMessage msg);
  void CompleteHandler(const ProcessId& pid, const QueuedMessage& msg, SimDuration charged);
  bool ChannelEligible(const std::vector<uint16_t>& wanted, uint16_t channel) const;

  // --- Kernel process ---
  void HandleKernelPacket(const Packet& packet);
  void HandleDeliverToKernel(ProcessRecord& proc, const QueuedMessage& msg);
  void HandleCreateOnThisNode(const CreateProcessRequest& req, const ProcessId& requester);
  void HandleRecreateRequest(const Packet& packet);
  void HandleRecoveryComplete(const Packet& packet);
  void HandleReplayBurst(const Packet& packet);
  void UnpackReplaySegment(ProcessRecord& proc, const Buffer& segment);
  void SendReplayBurstAck(const ProcessId& dst, const ProcessRecord& proc);
  void HandleStateQuery(const Packet& packet);
  Result<ProcessId> CreateProcessInternal(const std::string& program,
                                          std::vector<Link> initial_links, bool recoverable);
  // `pid` is taken by value: callers pass ids that live inside the record
  // this function erases (e.g. proc.pid from HandleDeliverToKernel).
  void DestroyProcessInternal(ProcessId pid, bool notify);

  // --- Checkpoint capture ---
  ProcessImage BuildProcessImage(const ProcessRecord& proc) const;
  Bytes CaptureState(const ProcessRecord& proc) const;
  Status RestoreState(ProcessRecord& proc, const Bytes& state);
  void EmitCheckpoint(ProcessRecord& proc);

  // --- Node-unit recovery (§6.6.2) ---
  void BumpNodeStep();
  void DrainStagedReplays();
  void FinishNodeRecoveryIfDone();
  void HandleRestoreNodeRequest(const Packet& packet);
  void HandleNodeReplayMessage(const Packet& packet);
  void HandleNodeRecoveryComplete(const Packet& packet);

  ProcessRecord* Find(const ProcessId& pid);
  const ProcessRecord* Find(const ProcessId& pid) const;
  void ChargeKernel(SimDuration cpu);
  void ObserveRead(const ProcessId& reader, const QueuedMessage& msg);

  Simulator* sim_;
  Medium* medium_;
  NodeId node_;
  const ProgramRegistry* registry_;
  NameService* names_;
  KernelOptions options_;
  std::unique_ptr<TransportEndpoint> endpoint_;
  ReadOrderFeed* read_order_feed_ = nullptr;
  LifecycleTracker* lifecycle_ = nullptr;

  bool up_ = true;
  uint32_t next_local_id_ = 2;  // 1 is the kernel process.
  uint64_t kernel_send_seq_ = 1;
  std::unordered_map<ProcessId, std::unique_ptr<ProcessRecord>> processes_;
  KernelStats stats_;

  // §6.6.2 deterministic-scheduler state.  node_step_ counts node events
  // (handler completions, control-message consumptions, extranode arrivals)
  // — the "instruction counter" replay synchronizes against.
  uint64_t node_step_ = 0;
  bool node_recovering_ = false;
  uint64_t node_recovery_round_ = 0;
  bool node_complete_seen_ = false;
  ProcessId node_complete_reply_to_;
  std::deque<std::pair<uint64_t, Packet>> staged_replays_;
  std::deque<Packet> node_pending_live_;
  std::unordered_set<MessageId> node_replayed_ids_;
  // Intranode messages between send and local delivery: they are in no
  // process queue yet, so a node checkpoint must capture them explicitly.
  std::deque<Packet> local_in_flight_;
};

}  // namespace publishing

#endif  // SRC_DEMOS_NODE_KERNEL_H_
