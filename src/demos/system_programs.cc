#include "src/demos/system_programs.h"

#include "src/common/logging.h"

namespace publishing {
namespace {

uint64_t JobKey(const ProcessId& pid) { return (uint64_t{pid.origin.value} << 32) | pid.local; }

}  // namespace

// ---------------------------------------------------------------------------
// Named-link protocol helpers
// ---------------------------------------------------------------------------

Bytes EncodeNameRegister(const std::string& name) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(NameOp::kRegister));
  w.WriteString(name);
  return w.TakeBytes();
}

Bytes EncodeNameLookup(const std::string& name) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(NameOp::kLookup));
  w.WriteString(name);
  return w.TakeBytes();
}

Bytes EncodeNameReply(const NameReply& reply) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(NameOp::kReply));
  w.WriteString(reply.name);
  w.WriteBool(reply.found);
  return w.TakeBytes();
}

Result<NameReply> DecodeNameReply(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = r.ReadU8();
  if (!op.ok()) {
    return op.status();
  }
  if (*op != static_cast<uint8_t>(NameOp::kReply)) {
    return Status(StatusCode::kCorrupt, "not a name reply");
  }
  NameReply reply;
  auto name = r.ReadString();
  if (!name.ok()) {
    return name.status();
  }
  reply.name = std::move(*name);
  auto found = r.ReadBool();
  if (!found.ok()) {
    return found.status();
  }
  reply.found = *found;
  return reply;
}

Result<std::string> DecodeNameRequest(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = r.ReadU8();
  if (!op.ok()) {
    return op.status();
  }
  auto name = r.ReadString();
  if (!name.ok()) {
    return name.status();
  }
  return *name;
}

// ---------------------------------------------------------------------------
// ProcessManagerProgram
// ---------------------------------------------------------------------------

void ProcessManagerProgram::OnStart(KernelApi& api) { (void)api; }

void ProcessManagerProgram::OnMessage(KernelApi& api, const DeliveredMessage& msg) {
  if (PeekOp(msg.body) != KernelOp::kCreateProcessRequest) {
    return;
  }
  auto req = DecodeCreateProcessRequest(msg.body);
  if (!req.ok()) {
    return;
  }
  api.Charge(Millis(1));
  const uint64_t job = JobKey(req->requester);
  if (job_limit_ != 0 && job_counts_[job] >= job_limit_) {
    PUB_LOG_DEBUG("process manager: job limit reached for %s",
                  ToString(req->requester).c_str());
    return;
  }
  ++job_counts_[job];
  ++forwarded_;
  // Pass the request down the chain unmodified (§4.2.3).
  api.Send(LinkId{kSchedulerLink}, msg.body);
}

void ProcessManagerProgram::SaveState(Writer& w) const {
  w.WriteU64(forwarded_);
  w.WriteU32(job_limit_);
  w.WriteU32(static_cast<uint32_t>(job_counts_.size()));
  for (const auto& [job, count] : job_counts_) {
    w.WriteU64(job);
    w.WriteU32(count);
  }
}

Status ProcessManagerProgram::LoadState(Reader& r) {
  auto forwarded = r.ReadU64();
  if (!forwarded.ok()) {
    return forwarded.status();
  }
  forwarded_ = *forwarded;
  auto limit = r.ReadU32();
  if (!limit.ok()) {
    return limit.status();
  }
  job_limit_ = *limit;
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  job_counts_.clear();
  for (uint32_t i = 0; i < *count; ++i) {
    auto job = r.ReadU64();
    if (!job.ok()) {
      return job.status();
    }
    auto jobs = r.ReadU32();
    if (!jobs.ok()) {
      return jobs.status();
    }
    job_counts_[*job] = *jobs;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// MemorySchedulerProgram
// ---------------------------------------------------------------------------

void MemorySchedulerProgram::OnStart(KernelApi& api) {
  // Discover the kernel-process links wired in at boot (one per node, in
  // cluster order: "the memory scheduler maintains a link to the kernel
  // process of each node", §4.3.2).
  node_links_.clear();
  for (uint32_t id = 1;; ++id) {
    auto link = api.InspectLink(LinkId{id});
    if (!link.ok()) {
      break;
    }
    node_links_.emplace_back(link->dest.origin.value, id);
  }
}

Result<LinkId> MemorySchedulerProgram::LinkForNode(KernelApi& api, NodeId node) const {
  (void)api;
  for (const auto& [node_value, link_id] : node_links_) {
    if (node_value == node.value) {
      return LinkId{link_id};
    }
  }
  return Status(StatusCode::kNotFound, "no kernel link for " + ToString(node));
}

void MemorySchedulerProgram::OnMessage(KernelApi& api, const DeliveredMessage& msg) {
  if (PeekOp(msg.body) != KernelOp::kCreateProcessRequest) {
    return;
  }
  auto req = DecodeCreateProcessRequest(msg.body);
  if (!req.ok()) {
    return;
  }
  api.Charge(Millis(1));
  NodeId node = req->target_node;
  if (node == kAnyNode) {
    // "the memory scheduler chooses the node from which the request came"
    // (§4.3.2).
    node = req->requester.origin;
  }
  auto link = LinkForNode(api, node);
  if (!link.ok() && !node_links_.empty()) {
    // Unknown node (e.g. a migrated requester): place round-robin.
    link = LinkId{node_links_[round_robin_++ % node_links_.size()].second};
  }
  if (!link.ok()) {
    return;
  }
  ++scheduled_;
  api.Send(*link, msg.body);
}

void MemorySchedulerProgram::SaveState(Writer& w) const {
  w.WriteU64(scheduled_);
  w.WriteU64(round_robin_);
  w.WriteU32(static_cast<uint32_t>(node_links_.size()));
  for (const auto& [node, link] : node_links_) {
    w.WriteU32(node);
    w.WriteU32(link);
  }
}

Status MemorySchedulerProgram::LoadState(Reader& r) {
  auto scheduled = r.ReadU64();
  if (!scheduled.ok()) {
    return scheduled.status();
  }
  scheduled_ = *scheduled;
  auto rr = r.ReadU64();
  if (!rr.ok()) {
    return rr.status();
  }
  round_robin_ = *rr;
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  node_links_.clear();
  for (uint32_t i = 0; i < *count; ++i) {
    auto node = r.ReadU32();
    if (!node.ok()) {
      return node.status();
    }
    auto link = r.ReadU32();
    if (!link.ok()) {
      return link.status();
    }
    node_links_.emplace_back(*node, *link);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// NamedLinkServerProgram
// ---------------------------------------------------------------------------

void NamedLinkServerProgram::OnStart(KernelApi& api) { (void)api; }

void NamedLinkServerProgram::OnMessage(KernelApi& api, const DeliveredMessage& msg) {
  if (msg.body.empty()) {
    return;
  }
  const auto op = static_cast<NameOp>(msg.body[0]);
  auto name = DecodeNameRequest(msg.body);
  if (!name.ok()) {
    return;
  }
  api.Charge(Micros(500));
  switch (op) {
    case NameOp::kRegister: {
      if (!msg.passed_link.IsValid()) {
        return;
      }
      // The passed link is already in our kernel link table; remember which
      // slot it occupies.  Re-registration replaces the binding.
      names_[*name] = msg.passed_link.value;
      return;
    }
    case NameOp::kLookup: {
      if (!msg.passed_link.IsValid()) {
        return;  // Nowhere to reply.
      }
      NameReply reply;
      reply.name = *name;
      LinkId pass;
      auto it = names_.find(*name);
      if (it != names_.end()) {
        // Send() consumes the passed link, so hand out a duplicate and keep
        // the registered original.
        auto dup = api.DuplicateLink(LinkId{it->second});
        if (dup.ok()) {
          reply.found = true;
          pass = *dup;
        }
      }
      api.Send(msg.passed_link, EncodeNameReply(reply), pass);
      return;
    }
    case NameOp::kReply:
      return;
  }
}

void NamedLinkServerProgram::SaveState(Writer& w) const {
  w.WriteU32(static_cast<uint32_t>(names_.size()));
  for (const auto& [name, slot] : names_) {
    w.WriteString(name);
    w.WriteU32(slot);
  }
}

Status NamedLinkServerProgram::LoadState(Reader& r) {
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  names_.clear();
  for (uint32_t i = 0; i < *count; ++i) {
    auto name = r.ReadString();
    if (!name.ok()) {
      return name.status();
    }
    auto slot = r.ReadU32();
    if (!slot.ok()) {
      return slot.status();
    }
    names_[*name] = *slot;
  }
  return Status::Ok();
}

}  // namespace publishing
