// NodeDirectory: the slice of a DEMOS installation the recovery machinery
// needs — virtual time, name resolution, and access to the processing-node
// kernels it watches over.
//
// Cluster implements it for the paper's single-segment installation; the
// multi-segment internetwork (src/internet) implements it once per media
// segment, scoped to that segment's nodes, so each segment's recovery
// manager watches and recovers exactly the processes its own recorder is
// responsible for.

#ifndef SRC_DEMOS_NODE_DIRECTORY_H_
#define SRC_DEMOS_NODE_DIRECTORY_H_

#include <vector>

#include "src/common/ids.h"

namespace publishing {

class NameService;
class NodeKernel;
class Simulator;

class NodeDirectory {
 public:
  virtual ~NodeDirectory() = default;

  virtual Simulator& sim() = 0;
  virtual NameService& names() = 0;
  // The processing nodes in this directory's scope (recorder and gateway
  // nodes excluded), in a deterministic order.
  virtual std::vector<NodeId> node_ids() const = 0;
  // Null for node ids outside the scope (including the recorder's node).
  virtual NodeKernel* kernel(NodeId node) = 0;
};

}  // namespace publishing

#endif  // SRC_DEMOS_NODE_DIRECTORY_H_
