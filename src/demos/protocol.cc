#include "src/demos/protocol.h"

namespace publishing {
namespace {

Status TrailingBytes() { return Status(StatusCode::kCorrupt, "trailing bytes in payload"); }

Result<KernelOp> ReadOp(Reader& r, KernelOp expected) {
  auto op = r.ReadU8();
  if (!op.ok()) {
    return op.status();
  }
  if (*op != static_cast<uint8_t>(expected)) {
    return Status(StatusCode::kCorrupt, "unexpected kernel op");
  }
  return expected;
}

void WriteLinks(Writer& w, const std::vector<Link>& links) {
  w.WriteU32(static_cast<uint32_t>(links.size()));
  for (const Link& link : links) {
    SerializeLink(w, link);
  }
}

Result<std::vector<Link>> ReadLinks(Reader& r) {
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  std::vector<Link> links;
  links.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto link = ParseLink(r);
    if (!link.ok()) {
      return link.status();
    }
    links.push_back(*link);
  }
  return links;
}

}  // namespace

KernelOp PeekOp(const Bytes& body) {
  if (body.empty()) {
    return static_cast<KernelOp>(0);
  }
  return static_cast<KernelOp>(body[0]);
}

Bytes EncodeCreateProcessRequest(const CreateProcessRequest& req) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kCreateProcessRequest));
  w.WriteString(req.program);
  w.WriteNodeId(req.target_node);
  w.WriteProcessId(req.requester);
  w.WriteU16(req.reply_channel);
  WriteLinks(w, req.initial_links);
  return w.TakeBytes();
}

Result<CreateProcessRequest> DecodeCreateProcessRequest(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kCreateProcessRequest);
  if (!op.ok()) {
    return op.status();
  }
  CreateProcessRequest req;
  auto program = r.ReadString();
  if (!program.ok()) {
    return program.status();
  }
  req.program = std::move(*program);
  auto node = r.ReadNodeId();
  if (!node.ok()) {
    return node.status();
  }
  req.target_node = *node;
  auto requester = r.ReadProcessId();
  if (!requester.ok()) {
    return requester.status();
  }
  req.requester = *requester;
  auto channel = r.ReadU16();
  if (!channel.ok()) {
    return channel.status();
  }
  req.reply_channel = *channel;
  auto links = ReadLinks(r);
  if (!links.ok()) {
    return links.status();
  }
  req.initial_links = std::move(*links);
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return req;
}

Bytes EncodeCreateProcessReply(const CreateProcessReply& reply) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kCreateProcessReply));
  w.WriteProcessId(reply.created);
  w.WriteBool(reply.ok);
  return w.TakeBytes();
}

Result<CreateProcessReply> DecodeCreateProcessReply(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kCreateProcessReply);
  if (!op.ok()) {
    return op.status();
  }
  CreateProcessReply reply;
  auto pid = r.ReadProcessId();
  if (!pid.ok()) {
    return pid.status();
  }
  reply.created = *pid;
  auto ok = r.ReadBool();
  if (!ok.ok()) {
    return ok.status();
  }
  reply.ok = *ok;
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return reply;
}

Bytes EncodeOpOnly(KernelOp op) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(op));
  return w.TakeBytes();
}

Bytes EncodePing(KernelOp op, const PingPayload& ping) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(op));
  w.WriteU64(ping.nonce);
  return w.TakeBytes();
}

Result<PingPayload> DecodePing(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = r.ReadU8();
  if (!op.ok()) {
    return op.status();
  }
  PingPayload ping;
  auto nonce = r.ReadU64();
  if (!nonce.ok()) {
    return nonce.status();
  }
  ping.nonce = *nonce;
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return ping;
}

Bytes EncodeProcessNotice(KernelOp op, const ProcessNotice& notice) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(op));
  w.WriteProcessId(notice.pid);
  w.WriteString(notice.program);
  WriteLinks(w, notice.initial_links);
  w.WriteU64(notice.first_send_seq);
  w.WriteBool(notice.recoverable);
  return w.TakeBytes();
}

Result<ProcessNotice> DecodeProcessNotice(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = r.ReadU8();
  if (!op.ok()) {
    return op.status();
  }
  ProcessNotice notice;
  auto pid = r.ReadProcessId();
  if (!pid.ok()) {
    return pid.status();
  }
  notice.pid = *pid;
  auto program = r.ReadString();
  if (!program.ok()) {
    return program.status();
  }
  notice.program = std::move(*program);
  auto links = ReadLinks(r);
  if (!links.ok()) {
    return links.status();
  }
  notice.initial_links = std::move(*links);
  auto seq = r.ReadU64();
  if (!seq.ok()) {
    return seq.status();
  }
  notice.first_send_seq = *seq;
  auto recoverable = r.ReadBool();
  if (!recoverable.ok()) {
    return recoverable.status();
  }
  notice.recoverable = *recoverable;
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return notice;
}

Bytes EncodeCheckpoint(const CheckpointPayload& checkpoint) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kCheckpoint));
  w.WriteProcessId(checkpoint.pid);
  w.WriteU64(checkpoint.reads_done);
  w.WriteBytes(std::span<const uint8_t>(checkpoint.state.data(), checkpoint.state.size()));
  return w.TakeBytes();
}

Result<CheckpointPayload> DecodeCheckpoint(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kCheckpoint);
  if (!op.ok()) {
    return op.status();
  }
  CheckpointPayload checkpoint;
  auto pid = r.ReadProcessId();
  if (!pid.ok()) {
    return pid.status();
  }
  checkpoint.pid = *pid;
  auto reads = r.ReadU64();
  if (!reads.ok()) {
    return reads.status();
  }
  checkpoint.reads_done = *reads;
  auto state = r.ReadBytes();
  if (!state.ok()) {
    return state.status();
  }
  checkpoint.state = std::move(*state);
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return checkpoint;
}

Bytes EncodeRecreateRequest(const RecreateRequest& req) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kRecreateRequest));
  w.WriteProcessId(req.pid);
  w.WriteString(req.program);
  w.WriteBool(req.has_checkpoint);
  w.WriteBytes(
      std::span<const uint8_t>(req.checkpoint_state.data(), req.checkpoint_state.size()));
  WriteLinks(w, req.initial_links);
  w.WriteU64(req.last_sent_seq);
  w.WriteU64(req.replay_count);
  w.WriteU64(req.recovery_round);
  return w.TakeBytes();
}

Result<RecreateRequest> DecodeRecreateRequest(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kRecreateRequest);
  if (!op.ok()) {
    return op.status();
  }
  RecreateRequest req;
  auto pid = r.ReadProcessId();
  if (!pid.ok()) {
    return pid.status();
  }
  req.pid = *pid;
  auto program = r.ReadString();
  if (!program.ok()) {
    return program.status();
  }
  req.program = std::move(*program);
  auto has_checkpoint = r.ReadBool();
  if (!has_checkpoint.ok()) {
    return has_checkpoint.status();
  }
  req.has_checkpoint = *has_checkpoint;
  auto state = r.ReadBytes();
  if (!state.ok()) {
    return state.status();
  }
  req.checkpoint_state = std::move(*state);
  auto links = ReadLinks(r);
  if (!links.ok()) {
    return links.status();
  }
  req.initial_links = std::move(*links);
  auto last_sent = r.ReadU64();
  if (!last_sent.ok()) {
    return last_sent.status();
  }
  req.last_sent_seq = *last_sent;
  auto replay_count = r.ReadU64();
  if (!replay_count.ok()) {
    return replay_count.status();
  }
  req.replay_count = *replay_count;
  auto round = r.ReadU64();
  if (!round.ok()) {
    return round.status();
  }
  req.recovery_round = *round;
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return req;
}

Bytes EncodeRecoveryTarget(KernelOp op, const RecoveryTarget& target) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(op));
  w.WriteProcessId(target.pid);
  w.WriteU64(target.recovery_round);
  return w.TakeBytes();
}

Result<RecoveryTarget> DecodeRecoveryTarget(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = r.ReadU8();
  if (!op.ok()) {
    return op.status();
  }
  RecoveryTarget target;
  auto pid = r.ReadProcessId();
  if (!pid.ok()) {
    return pid.status();
  }
  target.pid = *pid;
  auto round = r.ReadU64();
  if (!round.ok()) {
    return round.status();
  }
  target.recovery_round = *round;
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return target;
}

Bytes EncodeReplayBurst(const ReplayBurst& burst) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kReplayBurst));
  w.WriteProcessId(burst.pid);
  w.WriteU64(burst.recovery_round);
  w.WriteU64(burst.burst_seq);
  w.WriteU32(burst.segment_count);
  return w.TakeBytes();
}

Result<ReplayBurst> DecodeReplayBurst(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kReplayBurst);
  if (!op.ok()) {
    return op.status();
  }
  ReplayBurst burst;
  auto pid = r.ReadProcessId();
  if (!pid.ok()) {
    return pid.status();
  }
  burst.pid = *pid;
  auto round = r.ReadU64();
  if (!round.ok()) {
    return round.status();
  }
  burst.recovery_round = *round;
  auto seq = r.ReadU64();
  if (!seq.ok()) {
    return seq.status();
  }
  burst.burst_seq = *seq;
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  burst.segment_count = *count;
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return burst;
}

Bytes EncodeReplayBurstAck(const ReplayBurstAck& ack) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kReplayBurstAck));
  w.WriteProcessId(ack.pid);
  w.WriteU64(ack.recovery_round);
  w.WriteU64(ack.cumulative_seq);
  return w.TakeBytes();
}

Result<ReplayBurstAck> DecodeReplayBurstAck(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kReplayBurstAck);
  if (!op.ok()) {
    return op.status();
  }
  ReplayBurstAck ack;
  auto pid = r.ReadProcessId();
  if (!pid.ok()) {
    return pid.status();
  }
  ack.pid = *pid;
  auto round = r.ReadU64();
  if (!round.ok()) {
    return round.status();
  }
  ack.recovery_round = *round;
  auto seq = r.ReadU64();
  if (!seq.ok()) {
    return seq.status();
  }
  ack.cumulative_seq = *seq;
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return ack;
}

Bytes EncodeLocalIdFloor(const LocalIdFloor& payload) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kSetLocalIdFloor));
  w.WriteU32(payload.floor);
  w.WriteU64(payload.kernel_seq_floor);
  return w.TakeBytes();
}

Result<LocalIdFloor> DecodeLocalIdFloor(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kSetLocalIdFloor);
  if (!op.ok()) {
    return op.status();
  }
  LocalIdFloor payload;
  auto floor = r.ReadU32();
  if (!floor.ok()) {
    return floor.status();
  }
  payload.floor = *floor;
  auto seq_floor = r.ReadU64();
  if (!seq_floor.ok()) {
    return seq_floor.status();
  }
  payload.kernel_seq_floor = *seq_floor;
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return payload;
}

Bytes EncodeNodeCheckpoint(const NodeCheckpointPayload& payload) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kCheckpointNode));
  w.WriteNodeId(payload.node);
  w.WriteU64(payload.node_step);
  w.WriteBytes(std::span<const uint8_t>(payload.image.data(), payload.image.size()));
  return w.TakeBytes();
}

Result<NodeCheckpointPayload> DecodeNodeCheckpoint(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kCheckpointNode);
  if (!op.ok()) {
    return op.status();
  }
  NodeCheckpointPayload payload;
  auto node = r.ReadNodeId();
  if (!node.ok()) {
    return node.status();
  }
  payload.node = *node;
  auto step = r.ReadU64();
  if (!step.ok()) {
    return step.status();
  }
  payload.node_step = *step;
  auto image = r.ReadBytes();
  if (!image.ok()) {
    return image.status();
  }
  payload.image = std::move(*image);
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return payload;
}

Bytes EncodeRestoreNodeRequest(const RestoreNodeRequest& req) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kRestoreNodeRequest));
  w.WriteNodeId(req.node);
  w.WriteBool(req.has_image);
  w.WriteBytes(std::span<const uint8_t>(req.image.data(), req.image.size()));
  w.WriteU64(req.recovery_round);
  w.WriteU32(static_cast<uint32_t>(req.last_sent.size()));
  for (const auto& [pid, seq] : req.last_sent) {
    w.WriteProcessId(pid);
    w.WriteU64(seq);
  }
  return w.TakeBytes();
}

Result<RestoreNodeRequest> DecodeRestoreNodeRequest(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kRestoreNodeRequest);
  if (!op.ok()) {
    return op.status();
  }
  RestoreNodeRequest req;
  auto node = r.ReadNodeId();
  if (!node.ok()) {
    return node.status();
  }
  req.node = *node;
  auto has_image = r.ReadBool();
  if (!has_image.ok()) {
    return has_image.status();
  }
  req.has_image = *has_image;
  auto image = r.ReadBytes();
  if (!image.ok()) {
    return image.status();
  }
  req.image = std::move(*image);
  auto round = r.ReadU64();
  if (!round.ok()) {
    return round.status();
  }
  req.recovery_round = *round;
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < *count; ++i) {
    auto pid = r.ReadProcessId();
    if (!pid.ok()) {
      return pid.status();
    }
    auto seq = r.ReadU64();
    if (!seq.ok()) {
      return seq.status();
    }
    req.last_sent.emplace_back(*pid, *seq);
  }
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return req;
}

Bytes EncodeNodeReplayMessage(const NodeReplayMessage& msg) {
  return EncodeNodeReplayMessage(msg.step,
                                 std::span<const uint8_t>(msg.packet.data(), msg.packet.size()));
}

Bytes EncodeNodeReplayMessage(uint64_t step, std::span<const uint8_t> packet) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kNodeReplayMessage));
  w.WriteU64(step);
  w.WriteBytes(packet);
  return w.TakeBytes();
}

Result<NodeReplayMessage> DecodeNodeReplayMessage(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kNodeReplayMessage);
  if (!op.ok()) {
    return op.status();
  }
  NodeReplayMessage msg;
  auto step = r.ReadU64();
  if (!step.ok()) {
    return step.status();
  }
  msg.step = *step;
  auto packet = r.ReadBytes();
  if (!packet.ok()) {
    return packet.status();
  }
  msg.packet = std::move(*packet);
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return msg;
}

Bytes EncodeNodeRecoveryRound(KernelOp op, const NodeRecoveryRound& round) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(op));
  w.WriteNodeId(round.node);
  w.WriteU64(round.recovery_round);
  return w.TakeBytes();
}

Result<NodeRecoveryRound> DecodeNodeRecoveryRound(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = r.ReadU8();
  if (!op.ok()) {
    return op.status();
  }
  NodeRecoveryRound round;
  auto node = r.ReadNodeId();
  if (!node.ok()) {
    return node.status();
  }
  round.node = *node;
  auto round_number = r.ReadU64();
  if (!round_number.ok()) {
    return round_number.status();
  }
  round.recovery_round = *round_number;
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return round;
}

const char* ProcessStateAnswerName(ProcessStateAnswer answer) {
  switch (answer) {
    case ProcessStateAnswer::kFunctioning:
      return "functioning";
    case ProcessStateAnswer::kCrashed:
      return "crashed";
    case ProcessStateAnswer::kRecovering:
      return "recovering";
    case ProcessStateAnswer::kUnknown:
      return "unknown";
  }
  return "?";
}

Bytes EncodeStateQuery(const StateQuery& query) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kStateQuery));
  w.WriteU64(query.restart_number);
  w.WriteU32(static_cast<uint32_t>(query.pids.size()));
  for (const ProcessId& pid : query.pids) {
    w.WriteProcessId(pid);
  }
  return w.TakeBytes();
}

Result<StateQuery> DecodeStateQuery(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kStateQuery);
  if (!op.ok()) {
    return op.status();
  }
  StateQuery query;
  auto restart = r.ReadU64();
  if (!restart.ok()) {
    return restart.status();
  }
  query.restart_number = *restart;
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < *count; ++i) {
    auto pid = r.ReadProcessId();
    if (!pid.ok()) {
      return pid.status();
    }
    query.pids.push_back(*pid);
  }
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return query;
}

Bytes EncodeStateReply(const StateReply& reply) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(KernelOp::kStateReply));
  w.WriteU64(reply.restart_number);
  w.WriteNodeId(reply.node);
  w.WriteU32(static_cast<uint32_t>(reply.answers.size()));
  for (const auto& [pid, answer] : reply.answers) {
    w.WriteProcessId(pid);
    w.WriteU8(static_cast<uint8_t>(answer));
  }
  return w.TakeBytes();
}

Result<StateReply> DecodeStateReply(const Bytes& body) {
  Reader r(std::span<const uint8_t>(body.data(), body.size()));
  auto op = ReadOp(r, KernelOp::kStateReply);
  if (!op.ok()) {
    return op.status();
  }
  StateReply reply;
  auto restart = r.ReadU64();
  if (!restart.ok()) {
    return restart.status();
  }
  reply.restart_number = *restart;
  auto node = r.ReadNodeId();
  if (!node.ok()) {
    return node.status();
  }
  reply.node = *node;
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < *count; ++i) {
    auto pid = r.ReadProcessId();
    if (!pid.ok()) {
      return pid.status();
    }
    auto answer = r.ReadU8();
    if (!answer.ok()) {
      return answer.status();
    }
    reply.answers.emplace_back(*pid, static_cast<ProcessStateAnswer>(*answer));
  }
  if (!r.AtEnd()) {
    return TrailingBytes();
  }
  return reply;
}

}  // namespace publishing
