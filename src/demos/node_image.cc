#include "src/demos/node_image.h"

namespace publishing {
namespace {

void WriteQueued(Writer& w, const QueuedMessageImage& msg) {
  w.WriteMessageId(msg.id);
  w.WriteProcessId(msg.from);
  w.WriteU16(msg.channel);
  w.WriteU32(msg.code);
  w.WriteU8(msg.packet_flags);
  w.WriteBytes(std::span<const uint8_t>(msg.link_blob.data(), msg.link_blob.size()));
  w.WriteBytes(std::span<const uint8_t>(msg.body.data(), msg.body.size()));
}

Result<QueuedMessageImage> ReadQueued(Reader& r) {
  QueuedMessageImage msg;
  auto id = r.ReadMessageId();
  if (!id.ok()) {
    return id.status();
  }
  msg.id = *id;
  auto from = r.ReadProcessId();
  if (!from.ok()) {
    return from.status();
  }
  msg.from = *from;
  auto channel = r.ReadU16();
  if (!channel.ok()) {
    return channel.status();
  }
  msg.channel = *channel;
  auto code = r.ReadU32();
  if (!code.ok()) {
    return code.status();
  }
  msg.code = *code;
  auto flags = r.ReadU8();
  if (!flags.ok()) {
    return flags.status();
  }
  msg.packet_flags = *flags;
  auto link_blob = r.ReadBytes();
  if (!link_blob.ok()) {
    return link_blob.status();
  }
  msg.link_blob = std::move(*link_blob);
  auto body = r.ReadBytes();
  if (!body.ok()) {
    return body.status();
  }
  msg.body = std::move(*body);
  return msg;
}

}  // namespace

Bytes EncodeNodeImage(const NodeImage& image) {
  Writer w;
  w.WriteNodeId(image.node);
  w.WriteU64(image.node_step);
  w.WriteU32(image.next_local_id);
  w.WriteU64(image.kernel_send_seq);
  w.WriteU32(static_cast<uint32_t>(image.processes.size()));
  for (const NodeProcessEntry& entry : image.processes) {
    w.WriteProcessId(entry.pid);
    Bytes process_image = EncodeProcessImage(entry.image);
    w.WriteBytes(std::span<const uint8_t>(process_image.data(), process_image.size()));
    w.WriteU32(static_cast<uint32_t>(entry.queue.size()));
    for (const QueuedMessageImage& msg : entry.queue) {
      WriteQueued(w, msg);
    }
  }
  return w.TakeBytes();
}

Result<NodeImage> DecodeNodeImage(const Bytes& bytes) {
  Reader r(std::span<const uint8_t>(bytes.data(), bytes.size()));
  NodeImage image;
  auto node = r.ReadNodeId();
  if (!node.ok()) {
    return node.status();
  }
  image.node = *node;
  auto step = r.ReadU64();
  if (!step.ok()) {
    return step.status();
  }
  image.node_step = *step;
  auto next_local = r.ReadU32();
  if (!next_local.ok()) {
    return next_local.status();
  }
  image.next_local_id = *next_local;
  auto kernel_seq = r.ReadU64();
  if (!kernel_seq.ok()) {
    return kernel_seq.status();
  }
  image.kernel_send_seq = *kernel_seq;
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < *count; ++i) {
    NodeProcessEntry entry;
    auto pid = r.ReadProcessId();
    if (!pid.ok()) {
      return pid.status();
    }
    entry.pid = *pid;
    auto image_bytes = r.ReadBytes();
    if (!image_bytes.ok()) {
      return image_bytes.status();
    }
    auto process_image = DecodeProcessImage(*image_bytes);
    if (!process_image.ok()) {
      return process_image.status();
    }
    entry.image = std::move(*process_image);
    auto queue_count = r.ReadU32();
    if (!queue_count.ok()) {
      return queue_count.status();
    }
    for (uint32_t q = 0; q < *queue_count; ++q) {
      auto msg = ReadQueued(r);
      if (!msg.ok()) {
        return msg.status();
      }
      entry.queue.push_back(std::move(*msg));
    }
    image.processes.push_back(std::move(entry));
  }
  if (!r.AtEnd()) {
    return Status(StatusCode::kCorrupt, "trailing bytes after node image");
  }
  return image;
}

}  // namespace publishing
