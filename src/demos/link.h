// DEMOS links (§4.2.2.1).
//
// A link is a capability naming a destination process.  It carries the
// channel and code that will be stamped into the header of every message
// sent over it, and it may be marked DELIVERTOKERNEL (§4.4.3): messages sent
// over such a link are intercepted by the kernel process of the destination
// node, which performs process-control actions while "assuming the identity"
// of the controlled process.
//
// Links live outside process address spaces — in kernel link tables or in
// messages — and processes refer to them only by LinkId (their index in the
// owning process's table).

#ifndef SRC_DEMOS_LINK_H_
#define SRC_DEMOS_LINK_H_

#include <cstdint>

#include "src/common/ids.h"
#include "src/common/serialization.h"
#include "src/common/status.h"

namespace publishing {

enum LinkFlags : uint8_t {
  // Messages over this link are handled by the destination node's kernel
  // process on behalf of the destination process (§4.4.3).
  kLinkDeliverToKernel = 1 << 0,
};

struct Link {
  ProcessId dest;        // Process this link grants access to.
  uint16_t channel = 0;  // Stamped into message headers (§4.2.2.2).
  uint32_t code = 0;     // Ditto; lets the receiver tell links apart.
  uint8_t flags = 0;

  bool deliver_to_kernel() const { return (flags & kLinkDeliverToKernel) != 0; }

  friend bool operator==(const Link&, const Link&) = default;
};

void SerializeLink(Writer& w, const Link& link);
Result<Link> ParseLink(Reader& r);

// Convenience: a link serialized standalone into a byte string (the
// "passed link" slot of a packet).
Bytes LinkToBytes(const Link& link);
Result<Link> LinkFromBytes(const Bytes& bytes);

}  // namespace publishing

#endif  // SRC_DEMOS_LINK_H_
