// Kernel-to-kernel and kernel-to-recorder wire protocol.
//
// Three conversations share this vocabulary:
//   * process control (§4.2.3/§4.4.3): create/destroy/move-link/stop, carried
//     either to a node's kernel process directly or over DELIVERTOKERNEL
//     links;
//   * publishing notices (§4.5): process creation/destruction and checkpoint
//     submissions the recorder needs to maintain its database;
//   * recovery (§3.3, §4.7): watchdog pings, recreate requests, replay
//     completion, and the recorder-restart state-query protocol (§3.3.4).

#ifndef SRC_DEMOS_PROTOCOL_H_
#define SRC_DEMOS_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/serialization.h"
#include "src/common/status.h"
#include "src/demos/link.h"

namespace publishing {

// First byte of every kernel-protocol message body.
enum class KernelOp : uint8_t {
  // --- Process control ---
  kCreateProcessRequest = 1,
  kCreateProcessReply = 2,
  kDestroyProcess = 3,
  kMoveLink = 4,     // Install the passed link into the controlled process.
  kStopProcess = 5,
  kStartProcess = 6,

  // --- Watchdog (§3.3.2 / §4.6) ---
  kPing = 16,
  kPong = 17,

  // --- Publishing notices (§4.5) ---
  kNoticeCreated = 32,
  kNoticeDestroyed = 33,
  kCheckpoint = 34,
  kNoticeCrash = 35,  // Fault trap: a process halted on a detected error.
  kCheckpointNode = 36,  // §6.6.2: whole-node checkpoint image.

  // --- Node-unit recovery (§6.6.2) ---
  kRestoreNodeRequest = 53,
  kRestoreNodeAck = 54,
  kNodeReplayMessage = 55,   // Extranode message + its execution-step stamp.
  kNodeRecoveryComplete = 56,
  kNodeRecoveryCompleteAck = 57,

  // --- Recovery (§3.3.3 / §4.7) ---
  kRecreateRequest = 48,
  kRecreateAck = 49,
  kRecoveryComplete = 50,
  kRecoveryCompleteAck = 51,
  kSetLocalIdFloor = 52,  // Restarted node: do not reuse local ids <= floor.

  // --- Pipelined replay (DESIGN.md §11) ---
  kReplayBurst = 58,     // Window of logged messages packed into one frame.
  kReplayBurstAck = 59,  // Cumulative ack for in-order-processed bursts.

  // --- Recorder restart state queries (§3.3.4) ---
  kStateQuery = 64,
  kStateReply = 65,
};

// Returns 0 if the body is empty.
KernelOp PeekOp(const Bytes& body);

// --- Process control payloads ---

// "Create on the requester's node" placeholder (§4.3.2: "If the parameter is
// not present, the memory scheduler chooses the node from which the request
// came").
inline constexpr NodeId kAnyNode{0xFFFFFFFEu};

// Channel on which system services (process manager, memory scheduler,
// kernel processes) accept requests.
inline constexpr uint16_t kProcessServiceChannel = 999;

struct CreateProcessRequest {
  std::string program;
  NodeId target_node = kAnyNode;
  ProcessId requester;           // Receives the CreateProcessReply.
  uint16_t reply_channel = 0;    // Channel the requester expects the reply on.
  std::vector<Link> initial_links;
};
Bytes EncodeCreateProcessRequest(const CreateProcessRequest& req);
Result<CreateProcessRequest> DecodeCreateProcessRequest(const Bytes& body);

struct CreateProcessReply {
  ProcessId created;
  bool ok = false;
};
Bytes EncodeCreateProcessReply(const CreateProcessReply& reply);
Result<CreateProcessReply> DecodeCreateProcessReply(const Bytes& body);

// kMoveLink / kDestroyProcess / kStop / kStart carry no payload beyond the
// op byte (the link rides in the packet's passed-link slot; the target
// process is the packet's destination).
Bytes EncodeOpOnly(KernelOp op);

// --- Watchdog ---

struct PingPayload {
  uint64_t nonce = 0;
};
Bytes EncodePing(KernelOp op, const PingPayload& ping);
Result<PingPayload> DecodePing(const Bytes& body);

// --- Publishing notices ---

struct ProcessNotice {
  ProcessId pid;
  std::string program;        // Initial "binary image" name (§3.3.1).
  std::vector<Link> initial_links;
  uint64_t first_send_seq = 1;
  bool recoverable = true;    // §6.6.1: messages to non-recoverable
                              // processes are not published.
};
Bytes EncodeProcessNotice(KernelOp op, const ProcessNotice& notice);
Result<ProcessNotice> DecodeProcessNotice(const Bytes& body);

struct CheckpointPayload {
  ProcessId pid;
  uint64_t reads_done = 0;     // Messages read by the process so far; the
                               // recorder may discard log entries this
                               // checkpoint subsumes (§3.3.1).
  Bytes state;                 // Serialized process image.
};
Bytes EncodeCheckpoint(const CheckpointPayload& checkpoint);
Result<CheckpointPayload> DecodeCheckpoint(const Bytes& body);

// --- Recovery ---

struct RecreateRequest {
  ProcessId pid;
  std::string program;
  bool has_checkpoint = false;
  Bytes checkpoint_state;          // Valid when has_checkpoint.
  std::vector<Link> initial_links; // Used when restarting from the image.
  uint64_t last_sent_seq = 0;      // Highest seq published from pid; sends at
                                   // or below this are suppressed (§4.7).
  uint64_t replay_count = 0;       // Messages the recovery process will inject.
  uint64_t recovery_round = 0;     // Distinguishes recovery attempts so a
                                   // recursive crash (§3.5) cannot complete a
                                   // successor attempt with stale messages.
};
Bytes EncodeRecreateRequest(const RecreateRequest& req);
Result<RecreateRequest> DecodeRecreateRequest(const Bytes& body);

struct RecoveryTarget {
  ProcessId pid;
  uint64_t recovery_round = 0;  // 0 when not tied to a specific attempt.
};
Bytes EncodeRecoveryTarget(KernelOp op, const RecoveryTarget& target);
Result<RecoveryTarget> DecodeRecoveryTarget(const Bytes& body);

// --- Pipelined replay (DESIGN.md §11) ---
//
// The recovery manager streams the replay list as numbered bursts instead of
// one stop-and-wait frame per logged message.  The burst body carries only
// this descriptor; the logged packets themselves ride as shared-Buffer
// scatter/gather segments on the Packet/Frame (zero payload bytes copied
// between stable storage and the kernel).  Bursts travel unguaranteed — the
// recovery layer runs its own window with cumulative acks and go-back-N
// retransmission, because the transport's per-destination stop-and-wait
// window is exactly the serialization this path exists to escape.
struct ReplayBurst {
  ProcessId pid;                // Process being recovered.
  uint64_t recovery_round = 0;  // §3.5 attempt nonce; stale bursts dropped.
  uint64_t burst_seq = 0;       // 1-based position in the replay stream.
  uint32_t segment_count = 0;   // Expected segments; mismatch = corrupt frame.
};
Bytes EncodeReplayBurst(const ReplayBurst& burst);
Result<ReplayBurst> DecodeReplayBurst(const Bytes& body);

struct ReplayBurstAck {
  ProcessId pid;
  uint64_t recovery_round = 0;
  uint64_t cumulative_seq = 0;  // Every burst <= this was unpacked in order.
};
Bytes EncodeReplayBurstAck(const ReplayBurstAck& ack);
Result<ReplayBurstAck> DecodeReplayBurstAck(const Bytes& body);

struct LocalIdFloor {
  uint32_t floor = 0;            // Do not assign local process ids <= floor.
  uint64_t kernel_seq_floor = 0; // Resume kernel-process message ids above
                                 // this (keeps ids unique across restarts).
};
Bytes EncodeLocalIdFloor(const LocalIdFloor& payload);
Result<LocalIdFloor> DecodeLocalIdFloor(const Bytes& body);

// --- Node-unit recovery payloads (§6.6.2) ---

struct NodeCheckpointPayload {
  NodeId node;
  uint64_t node_step = 0;  // Execution-step counter at capture.
  Bytes image;             // Serialized NodeImage (src/demos/node_image.h).
};
Bytes EncodeNodeCheckpoint(const NodeCheckpointPayload& payload);
Result<NodeCheckpointPayload> DecodeNodeCheckpoint(const Bytes& body);

struct RestoreNodeRequest {
  NodeId node;
  bool has_image = false;
  Bytes image;
  uint64_t recovery_round = 0;
  // Per-process extranode-send high-water marks: re-sends at or below these
  // are suppressed during replay.
  std::vector<std::pair<ProcessId, uint64_t>> last_sent;
};
Bytes EncodeRestoreNodeRequest(const RestoreNodeRequest& req);
Result<RestoreNodeRequest> DecodeRestoreNodeRequest(const Bytes& body);

struct NodeReplayMessage {
  uint64_t step = 0;   // Inject when the node's step counter reaches this.
  Bytes packet;        // The original serialized transport packet.
};
Bytes EncodeNodeReplayMessage(const NodeReplayMessage& msg);
// Span overload: lets the recovery manager serialize straight from the
// stored Buffer view without a counted ToBytes materialization first.
Bytes EncodeNodeReplayMessage(uint64_t step, std::span<const uint8_t> packet);
Result<NodeReplayMessage> DecodeNodeReplayMessage(const Bytes& body);

struct NodeRecoveryRound {
  NodeId node;
  uint64_t recovery_round = 0;
};
Bytes EncodeNodeRecoveryRound(KernelOp op, const NodeRecoveryRound& round);
Result<NodeRecoveryRound> DecodeNodeRecoveryRound(const Bytes& body);

// --- Recorder restart state queries (§3.3.4) ---

// "the process is functioning / has crashed / is being recovered / is
// unknown" — the four answers a node can give about a process.
enum class ProcessStateAnswer : uint8_t {
  kFunctioning = 0,
  kCrashed = 1,
  kRecovering = 2,
  kUnknown = 3,
};
const char* ProcessStateAnswerName(ProcessStateAnswer answer);

struct StateQuery {
  uint64_t restart_number = 0;  // Stable-storage counter (§3.4); replies with
                                // a stale number are ignored.
  std::vector<ProcessId> pids;
};
Bytes EncodeStateQuery(const StateQuery& query);
Result<StateQuery> DecodeStateQuery(const Bytes& body);

struct StateReply {
  uint64_t restart_number = 0;
  NodeId node;
  std::vector<std::pair<ProcessId, ProcessStateAnswer>> answers;
};
Bytes EncodeStateReply(const StateReply& reply);
Result<StateReply> DecodeStateReply(const Bytes& body);

}  // namespace publishing

#endif  // SRC_DEMOS_PROTOCOL_H_
