// Whole-node checkpoint image for node-unit recovery (§6.6.2).
//
// "For a number of reasons, they may wish to recover a node as a unit.
// Some may not be able to afford the extra cost for intranode messages."
//
// Unlike a per-process checkpoint (ProcessImage), a node image must contain
// each process's message queue: intranode messages are not published in this
// mode, so queued ones exist nowhere else.  The image also carries the
// kernel's own state — the deterministic scheduler's step counter, the local
// process-id counter, and the kernel-process send sequence — so the restored
// node re-executes identically.

#ifndef SRC_DEMOS_NODE_IMAGE_H_
#define SRC_DEMOS_NODE_IMAGE_H_

#include <vector>

#include "src/demos/process_image.h"

namespace publishing {

// One queued-but-unread message (serialized verbatim).
struct QueuedMessageImage {
  MessageId id;
  ProcessId from;
  uint16_t channel = 0;
  uint32_t code = 0;
  uint8_t packet_flags = 0;
  Bytes link_blob;
  Bytes body;
};

struct NodeProcessEntry {
  ProcessId pid;
  ProcessImage image;
  std::vector<QueuedMessageImage> queue;
};

struct NodeImage {
  NodeId node;
  uint64_t node_step = 0;      // Deterministic-scheduler position (§6.6.2).
  uint32_t next_local_id = 2;
  uint64_t kernel_send_seq = 1;
  std::vector<NodeProcessEntry> processes;
};

Bytes EncodeNodeImage(const NodeImage& image);
Result<NodeImage> DecodeNodeImage(const Bytes& bytes);

}  // namespace publishing

#endif  // SRC_DEMOS_NODE_IMAGE_H_
