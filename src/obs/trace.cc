#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace publishing {

namespace {

// Chrome-trace timestamps are microseconds; SimTime is nanoseconds.  Three
// decimals preserve full nanosecond resolution.
std::string FormatMicros(SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

void AppendArgs(std::string& out, const TraceArgs& args) {
  out += "\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"' + JsonEscape(args[i].first) + "\":\"" + JsonEscape(args[i].second) + '"';
  }
  out += '}';
}

}  // namespace

Tracer::Tracer(const Simulator* sim, size_t capacity)
    : sim_(sim), capacity_(capacity == 0 ? 1 : capacity) {
  events_.reserve(std::min<size_t>(capacity_, 1024));
}

SimTime Tracer::now() const { return sim_->Now(); }

void Tracer::Push(Record record) {
  record.seq = next_seq_++;
  if (events_.size() < capacity_) {
    events_.push_back(std::move(record));
    return;
  }
  events_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void Tracer::Complete(SimTime start, std::string name, std::string category, uint64_t track,
                      TraceArgs args) {
  Record record;
  record.ts = start;
  record.dur = now() - start;
  record.phase = Phase::kComplete;
  record.track = track;
  record.name = std::move(name);
  record.category = std::move(category);
  record.args = std::move(args);
  Push(std::move(record));
}

void Tracer::Instant(std::string name, std::string category, uint64_t track, TraceArgs args) {
  Record record;
  record.ts = now();
  record.phase = Phase::kInstant;
  record.track = track;
  record.name = std::move(name);
  record.category = std::move(category);
  record.args = std::move(args);
  Push(std::move(record));
}

uint64_t Tracer::BeginSpan(std::string name, std::string category, uint64_t track,
                           TraceArgs args) {
  const uint64_t id = next_async_id_++;
  Record record;
  record.ts = now();
  record.phase = Phase::kAsyncBegin;
  record.track = track;
  record.async_id = id;
  record.name = std::move(name);
  record.category = std::move(category);
  record.args = std::move(args);
  Push(std::move(record));
  return id;
}

void Tracer::EndSpan(uint64_t id, std::string name, std::string category, uint64_t track,
                     TraceArgs args) {
  Record record;
  record.ts = now();
  record.phase = Phase::kAsyncEnd;
  record.track = track;
  record.async_id = id;
  record.name = std::move(name);
  record.category = std::move(category);
  record.args = std::move(args);
  Push(std::move(record));
}

void Tracer::CounterSample(std::string name, uint64_t track, double value) {
  Record record;
  record.ts = now();
  record.phase = Phase::kCounter;
  record.track = track;
  record.name = std::move(name);
  record.args.emplace_back("value", FormatMetricValue(value));
  Push(std::move(record));
}

void Tracer::SetTrackName(uint64_t track, std::string name) {
  track_names_[track] = std::move(name);
}

bool Tracer::Contains(std::string_view needle) const {
  for (const Record& record : events_) {
    if (record.name == needle || record.category == needle) {
      return true;
    }
  }
  return false;
}

std::string Tracer::ToChromeJson() const {
  // Chronological order: the ring stores oldest-first from `head_`.
  std::vector<const Record*> ordered;
  ordered.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    ordered.push_back(&events_[(head_ + i) % events_.size()]);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Record* a, const Record* b) {
                     if (a->ts != b->ts) {
                       return a->ts < b->ts;
                     }
                     return a->seq < b->seq;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) {
      out += ',';
    }
    first = false;
  };

  // Track (thread) names: defaults for the standard tracks, overridable.
  std::map<uint64_t, std::string> names = {
      {obs_track::kSim, "sim"},           {obs_track::kNet, "net"},
      {obs_track::kTransport, "transport"}, {obs_track::kRecorder, "recorder"},
      {obs_track::kStorage, "storage"},   {obs_track::kRecovery, "recovery"},
      {obs_track::kLifecycle, "lifecycle"},
  };
  for (const auto& [track, name] : track_names_) {
    names[track] = name;
  }
  for (const auto& [track, name] : names) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(track) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + JsonEscape(name) + "\"}}";
  }

  for (const Record* record : ordered) {
    comma();
    out += "{\"pid\":1,\"tid\":" + std::to_string(record->track);
    out += ",\"ts\":" + FormatMicros(record->ts);
    switch (record->phase) {
      case Phase::kComplete:
        out += ",\"ph\":\"X\",\"dur\":" + FormatMicros(record->dur);
        break;
      case Phase::kInstant:
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case Phase::kAsyncBegin:
        out += ",\"ph\":\"b\",\"id\":" + std::to_string(record->async_id);
        break;
      case Phase::kAsyncEnd:
        out += ",\"ph\":\"e\",\"id\":" + std::to_string(record->async_id);
        break;
      case Phase::kCounter:
        out += ",\"ph\":\"C\"";
        break;
    }
    out += ",\"name\":\"" + JsonEscape(record->name) + '"';
    out += ",\"cat\":\"" + JsonEscape(record->category.empty() ? "obs" : record->category) + '"';
    out += ',';
    if (record->phase == Phase::kCounter) {
      // Counter args carry the numeric sample (unquoted).
      out += "\"args\":{\"value\":" + record->args.front().second + '}';
    } else {
      AppendArgs(out, record->args);
    }
    out += '}';
  }
  // Footer: how much of the run the ring actually retained.  Viewers ignore
  // unknown top-level keys; tests and the schema checker read these to catch
  // silently truncated traces.
  out += "],\"metadata\":{\"capacity\":" + std::to_string(capacity_);
  out += ",\"droppedEvents\":" + std::to_string(dropped_);
  out += ",\"retainedEvents\":" + std::to_string(events_.size()) + "}}";
  return out;
}

bool Tracer::WriteChromeJsonFile(const std::string& path) const {
  return WriteTextFile(path, ToChromeJson());
}

}  // namespace publishing
