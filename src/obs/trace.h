// Virtual-time event tracer with Chrome trace_event JSON export.
//
// Records what happened *when in virtual time*, as opposed to the metrics
// registry's aggregate *how much*.  Four record shapes:
//   * complete spans  — a named interval [start, now] on a track ("X"),
//   * async spans     — begin/end pairs matched by id, for intervals that
//                       cross simulator events (a recovery, a transport
//                       round trip, a group-commit window) ("b"/"e"),
//   * instants        — point events (crash detected, veto, fsync) ("i"),
//   * counter samples — a value over time (queue depth) ("C").
//
// Memory is bounded: events land in a fixed-capacity ring buffer and the
// oldest are overwritten once it fills (dropped() reports how many).  The
// export is ordered by (virtual timestamp, record sequence), so identical
// runs serialize byte-identically.
//
// ToChromeJson() emits the Trace Event Format consumed by chrome://tracing
// and Perfetto (https://ui.perfetto.dev): tracks render as named threads,
// timestamps are virtual-time microseconds.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace publishing {

class Simulator;

// Key/value annotations attached to a trace record, rendered into the
// Chrome-trace "args" object.
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

// Standard tracks (rendered as named threads).  One per instrumented layer;
// the export emits thread_name metadata for each track it saw.
namespace obs_track {
inline constexpr uint64_t kSim = 1;
inline constexpr uint64_t kNet = 2;
inline constexpr uint64_t kTransport = 3;
inline constexpr uint64_t kRecorder = 4;
inline constexpr uint64_t kStorage = 5;
inline constexpr uint64_t kRecovery = 6;
inline constexpr uint64_t kLifecycle = 7;
}  // namespace obs_track

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  // `sim` supplies virtual time for every record; not owned, must outlive
  // the tracer.
  explicit Tracer(const Simulator* sim, size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  SimTime now() const;

  // A span that started at virtual time `start` and ends now.
  void Complete(SimTime start, std::string name, std::string category, uint64_t track,
                TraceArgs args = {});
  // A point event at the current virtual time.
  void Instant(std::string name, std::string category, uint64_t track, TraceArgs args = {});
  // Opens an async span; returns the id to close it with.  Async spans may
  // overlap and cross simulator events.
  uint64_t BeginSpan(std::string name, std::string category, uint64_t track,
                     TraceArgs args = {});
  // Closes the async span `id` opened by BeginSpan (same name/category).
  void EndSpan(uint64_t id, std::string name, std::string category, uint64_t track,
               TraceArgs args = {});
  // Samples a counter series at the current virtual time.
  void CounterSample(std::string name, uint64_t track, double value);

  // Overrides the default display name for a track.
  void SetTrackName(uint64_t track, std::string name);

  size_t size() const { return events_.size(); }
  size_t capacity() const { return capacity_; }
  // Records overwritten because the ring filled.
  uint64_t dropped() const { return dropped_; }

  // True if any retained record's name or category equals `needle` — the
  // cheap way for examples/tests to assert a layer showed up.
  bool Contains(std::string_view needle) const;

  std::string ToChromeJson() const;
  bool WriteChromeJsonFile(const std::string& path) const;

 private:
  enum class Phase { kComplete, kInstant, kAsyncBegin, kAsyncEnd, kCounter };

  struct Record {
    SimTime ts = 0;
    SimDuration dur = 0;  // kComplete only.
    Phase phase = Phase::kInstant;
    uint64_t track = 0;
    uint64_t async_id = 0;  // kAsyncBegin / kAsyncEnd only.
    uint64_t seq = 0;       // Insertion order; stable export tie-break.
    std::string name;
    std::string category;
    TraceArgs args;
  };

  void Push(Record record);

  const Simulator* sim_;
  size_t capacity_;
  std::vector<Record> events_;  // Ring: oldest at `head_` once full.
  size_t head_ = 0;
  uint64_t dropped_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_async_id_ = 1;
  std::map<uint64_t, std::string> track_names_;
};

}  // namespace publishing

#endif  // SRC_OBS_TRACE_H_
