#include "src/obs/flight_recorder.h"

#include "src/obs/metrics.h"

namespace publishing {

FlightRecorder::FlightRecorder(size_t per_node_capacity)
    : per_node_capacity_(per_node_capacity == 0 ? 1 : per_node_capacity) {}

void FlightRecorder::Record(const LifecycleEvent& event) {
  Ring& ring = rings_[event.node];
  if (ring.events.size() < per_node_capacity_) {
    ring.events.push_back(event);
  } else {
    ring.events[ring.head] = event;
    ring.head = (ring.head + 1) % per_node_capacity_;
    ring.full = true;
  }
  ++recorded_;
}

std::vector<LifecycleEvent> FlightRecorder::NodeEvents(NodeId node) const {
  std::vector<LifecycleEvent> out;
  auto it = rings_.find(node);
  if (it == rings_.end()) {
    return out;
  }
  const Ring& ring = it->second;
  out.reserve(ring.events.size());
  for (size_t i = 0; i < ring.events.size(); ++i) {
    out.push_back(ring.events[(ring.head + i) % ring.events.size()]);
  }
  return out;
}

std::string FlightRecorder::Dump(const std::string& reason, const std::string& detail) {
  std::string out = "{\"reason\":\"" + JsonEscape(reason) + '"';
  out += ",\"detail\":\"" + JsonEscape(detail) + '"';
  out += ",\"per_node_capacity\":" + std::to_string(per_node_capacity_);
  out += ",\"recorded\":" + std::to_string(recorded_);
  out += ",\"nodes\":[";
  bool first_node = true;
  for (const auto& [node, ring] : rings_) {
    if (!first_node) {
      out += ',';
    }
    first_node = false;
    out += "{\"node\":" + std::to_string(node.value) + ",\"events\":[";
    bool first_event = true;
    for (size_t i = 0; i < ring.events.size(); ++i) {
      const LifecycleEvent& event = ring.events[(ring.head + i) % ring.events.size()];
      if (!first_event) {
        out += ',';
      }
      first_event = false;
      out += "{\"seq\":" + std::to_string(event.seq);
      out += ",\"t_ms\":" + FormatMetricValue(ToMillis(event.time));
      out += ",\"stage\":\"";
      out += LifecycleStageName(event.stage);
      out += "\",\"id\":\"" + JsonEscape(ToString(event.ctx.id)) + '"';
      out += ",\"origin\":" + std::to_string(event.ctx.origin.value);
      out += ",\"hop\":" + std::to_string(event.ctx.hop);
      out += ",\"flags\":" + std::to_string(event.ctx.flags);
      if (event.process.IsValid()) {
        out += ",\"process\":\"" + JsonEscape(ToString(event.process)) + '"';
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}";

  last_dump_ = out;
  ++dump_count_;
  if (!dump_dir_.empty()) {
    const std::string path = dump_dir_ + "/flightrec-" + std::to_string(dump_count_) +
                             "-" + reason + ".json";
    WriteTextFile(path, out);
  }
  return out;
}

}  // namespace publishing
