// The wiring surface of the observability subsystem.
//
// An Observability value is a pair of optional sinks — a MetricsRegistry and
// a Tracer — handed to each instrumented component.  The default-constructed
// value (both null) is the null object: every component's hooks resolve to
// cached null pointers and the instrumentation compiles down to untaken
// branches, keeping uninstrumented runs bit-identical to the seed behaviour.
//
// Attach pattern (ScopedMetrics discipline): a component's SetObservability
// resolves every instrument it will ever touch *once* — names, labels, the
// lot — and stores raw Counter*/Gauge*/Histogram* handles.  Hot paths then
// cost one predictable null check.  Components must not look instruments up
// per event.
//
// PublishingSystem::EnableObservability fans one Observability out to every
// layer: simulator, medium, transport endpoints, recorder, recovery manager,
// and the storage backend.

#ifndef SRC_OBS_OBSERVABILITY_H_
#define SRC_OBS_OBSERVABILITY_H_

#include "src/obs/lifecycle.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace publishing {

struct Observability {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  // The causal sink: per-message lifecycle tracking, and through its
  // attachments the invariant oracle and the flight recorder (lifecycle.h).
  LifecycleTracker* lifecycle = nullptr;

  bool enabled() const {
    return metrics != nullptr || tracer != nullptr || lifecycle != nullptr;
  }
};

// RAII complete-span: opens at construction, emits on destruction.  A null
// tracer makes it a no-op.  For spans that cross simulator events, use
// Tracer::BeginSpan/EndSpan instead.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, const char* category, uint64_t track)
      : tracer_(tracer), name_(name), category_(category), track_(track) {
    if (tracer_ != nullptr) {
      start_ = tracer_->now();
    }
  }

  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->Complete(start_, name_, category_, track_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  const char* category_;
  uint64_t track_;
  SimTime start_ = 0;
};

}  // namespace publishing

#endif  // SRC_OBS_OBSERVABILITY_H_
