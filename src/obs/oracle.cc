#include "src/obs/oracle.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace publishing {

const char* OracleMonitorName(OracleMonitor monitor) {
  switch (monitor) {
    case OracleMonitor::kRecorderCompleteness:
      return "recorder_completeness";
    case OracleMonitor::kReceiveOrder:
      return "receive_order";
    case OracleMonitor::kDuplicateDelivery:
      return "duplicate_delivery";
    case OracleMonitor::kDurabilityBeforeAck:
      return "durability_before_ack";
  }
  return "unknown";
}

InvariantOracle::InvariantOracle(Options options) : options_(options) {
  if (options_.max_retained_violations == 0) {
    options_.max_retained_violations = 1;
  }
}

void InvariantOracle::AttachMetrics(MetricsRegistry* metrics) {
  for (size_t i = 0; i < kOracleMonitorCount; ++i) {
    violation_counters_[i] =
        metrics == nullptr
            ? nullptr
            : metrics->GetCounter(
                  "oracle.violations",
                  {{"monitor", OracleMonitorName(static_cast<OracleMonitor>(i))}});
  }
}

void InvariantOracle::Violate(OracleMonitor monitor, const LifecycleEvent& event,
                              std::string detail) {
  Violate(monitor, event.ctx.id, event.process, event.time, std::move(detail));
}

void InvariantOracle::Violate(OracleMonitor monitor, const MessageId& id,
                              ProcessId process, SimTime time, std::string detail) {
  const size_t m = static_cast<size_t>(monitor);
  ++total_violations_;
  ++violation_counts_[m];
  if (violation_counters_[m] != nullptr) {
    violation_counters_[m]->Add();
  }

  OracleViolation violation;
  violation.monitor = monitor;
  violation.id = id;
  violation.process = process;
  violation.time = time;
  violation.detail = std::move(detail);
  recent_.push_back(violation);
  while (recent_.size() > options_.max_retained_violations) {
    recent_.pop_front();
  }

  // One dump per run: the first violation is where the causal history still
  // surrounds the offending message; later violations are usually cascade.
  if (flight_ != nullptr && total_violations_ == 1) {
    flight_->Dump("oracle_violation", std::string(OracleMonitorName(monitor)) +
                                          ": " + violation.detail);
  }
  if (hook_) {
    hook_(violation);
  }

  if (options_.policy != OraclePolicy::kCount) {
    PUB_LOG_ERROR("oracle violation [%s] %s %s: %s", OracleMonitorName(monitor),
                  ToString(id).c_str(),
                  process.IsValid() ? ToString(process).c_str() : "",
                  violation.detail.c_str());
  }
  if (options_.policy == OraclePolicy::kAbort) {
    std::abort();
  }
}

void InvariantOracle::OnEvent(const LifecycleEvent& event) {
  const CausalContext& ctx = event.ctx;
  // The per-message guarantees only bind guaranteed, non-control payload
  // traffic: unguaranteed sends are best-effort and control packets (crash
  // notices, recovery handshakes) are acked but deliberately unpublished.
  const bool bound = ctx.guaranteed() && !ctx.control();

  switch (event.stage) {
    case LifecycleStage::kSent:
      break;
    case LifecycleStage::kOnWire: {
      MessageState& ms = messages_[ctx.id];
      ms.guaranteed = ms.guaranteed || ctx.guaranteed();
      ms.control = ms.control || ctx.control();
      // A replay transmission re-sends an already-published message; it must
      // not re-arm the completeness obligation.
      if (!ctx.replay()) {
        ms.on_wire = true;
      }
      break;
    }
    case LifecycleStage::kOverheard:
      break;
    case LifecycleStage::kPublished:
      messages_[ctx.id].published = true;
      break;
    case LifecycleStage::kDurable:
      messages_[ctx.id].durable = true;
      break;
    case LifecycleStage::kDelivered: {
      if (!bound || ctx.replay()) {
        break;
      }
      const MessageState& ms = messages_[ctx.id];
      if (options_.recorder_completeness && !ms.published) {
        Violate(OracleMonitor::kRecorderCompleteness, event,
                "delivered before the recorder published it (gating breached)");
      }
      if (options_.durability_before_ack && !ms.durable) {
        Violate(OracleMonitor::kDurabilityBeforeAck, event,
                "delivered before the publication was journaled");
      }
      break;
    }
    case LifecycleStage::kAcked: {
      if (!bound || ctx.replay()) {
        break;
      }
      if (options_.durability_before_ack && !messages_[ctx.id].durable) {
        Violate(OracleMonitor::kDurabilityBeforeAck, event,
                "end-to-end ack before the publication was journaled");
      }
      break;
    }
    case LifecycleStage::kReplayed:
      // Replay *delivery* is not a read: the recovering process re-reads the
      // message later through the normal read path, which emits kRead.
      // Feeding both into the per-process monitors would double-count.
      break;
    case LifecycleStage::kRead: {
      if (!event.process.IsValid()) {
        break;
      }
      ProcessState& ps = processes_[event.process];
      if (!ps.read_this_incarnation.insert(ctx.id).second) {
        if (options_.duplicate_delivery) {
          Violate(OracleMonitor::kDuplicateDelivery, event,
                  "message read twice within one process incarnation");
        }
        break;
      }
      ps.read_log.push_back(ctx.id);
      // Re-reading something the previous incarnation read: replay must
      // preserve the original read order.
      auto it = ps.prev_read_index.find(ctx.id);
      if (it != ps.prev_read_index.end()) {
        const int64_t index = static_cast<int64_t>(it->second);
        if (options_.receive_order && index <= ps.last_prev_index) {
          Violate(OracleMonitor::kReceiveOrder, event,
                  "replayed read out of original order (index " +
                      std::to_string(index) + " after " +
                      std::to_string(ps.last_prev_index) + ")");
        }
        ps.last_prev_index = std::max(ps.last_prev_index, index);
      }
      break;
    }
  }
  last_event_time_ = event.time;
}

void InvariantOracle::OnProcessReset(const ProcessId& pid) {
  ProcessState& ps = processes_[pid];
  ps.prev_read_index.clear();
  for (size_t i = 0; i < ps.read_log.size(); ++i) {
    ps.prev_read_index.emplace(ps.read_log[i], i);
  }
  ps.read_log.clear();
  ps.last_prev_index = -1;
  ps.read_this_incarnation.clear();
}

void InvariantOracle::CheckQuiescent() {
  if (!options_.recorder_completeness) {
    return;
  }
  // Deterministic violation order despite the unordered map.
  std::vector<MessageId> unpublished;
  for (const auto& [id, ms] : messages_) {
    if (ms.on_wire && ms.guaranteed && !ms.control && !ms.published) {
      unpublished.push_back(id);
    }
  }
  std::sort(unpublished.begin(), unpublished.end());
  for (const MessageId& id : unpublished) {
    Violate(OracleMonitor::kRecorderCompleteness, id, ProcessId{}, last_event_time_,
            "reached the wire but was never published (checked at quiescence)");
  }
}

std::string InvariantOracle::ReportJson() const {
  std::string out = "{\"monitors\":{";
  const bool enabled[kOracleMonitorCount] = {
      options_.recorder_completeness, options_.receive_order,
      options_.duplicate_delivery, options_.durability_before_ack};
  for (size_t i = 0; i < kOracleMonitorCount; ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"';
    out += OracleMonitorName(static_cast<OracleMonitor>(i));
    out += "\":{\"enabled\":";
    out += enabled[i] ? '1' : '0';
    out += ",\"violations\":" + std::to_string(violation_counts_[i]) + '}';
  }
  out += "},\"total_violations\":" + std::to_string(total_violations_);
  out += ",\"violations\":[";
  bool first = true;
  for (const OracleViolation& v : recent_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"monitor\":\"";
    out += OracleMonitorName(v.monitor);
    out += "\",\"id\":\"" + JsonEscape(ToString(v.id)) + '"';
    if (v.process.IsValid()) {
      out += ",\"process\":\"" + JsonEscape(ToString(v.process)) + '"';
    }
    out += ",\"time_ms\":" + FormatMetricValue(ToMillis(v.time));
    out += ",\"detail\":\"" + JsonEscape(v.detail) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace publishing
