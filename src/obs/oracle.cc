#include "src/obs/oracle.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace publishing {

const char* OracleMonitorName(OracleMonitor monitor) {
  switch (monitor) {
    case OracleMonitor::kRecorderCompleteness:
      return "recorder_completeness";
    case OracleMonitor::kReceiveOrder:
      return "receive_order";
    case OracleMonitor::kDuplicateDelivery:
      return "duplicate_delivery";
    case OracleMonitor::kDurabilityBeforeAck:
      return "durability_before_ack";
    case OracleMonitor::kGatewayForwarding:
      return "gateway_forwarding";
  }
  return "unknown";
}

InvariantOracle::InvariantOracle(Options options) : options_(options) {
  if (options_.max_retained_violations == 0) {
    options_.max_retained_violations = 1;
  }
}

void InvariantOracle::AttachMetrics(MetricsRegistry* metrics) {
  for (size_t i = 0; i < kOracleMonitorCount; ++i) {
    violation_counters_[i] =
        metrics == nullptr
            ? nullptr
            : metrics->GetCounter(
                  "oracle.violations",
                  {{"monitor", OracleMonitorName(static_cast<OracleMonitor>(i))}});
  }
}

void InvariantOracle::Violate(OracleMonitor monitor, const LifecycleEvent& event,
                              std::string detail) {
  Violate(monitor, event.ctx.id, event.process, event.time, std::move(detail));
}

void InvariantOracle::Violate(OracleMonitor monitor, const MessageId& id,
                              ProcessId process, SimTime time, std::string detail) {
  const size_t m = static_cast<size_t>(monitor);
  ++total_violations_;
  ++violation_counts_[m];
  if (violation_counters_[m] != nullptr) {
    violation_counters_[m]->Add();
  }

  OracleViolation violation;
  violation.monitor = monitor;
  violation.id = id;
  violation.process = process;
  violation.time = time;
  violation.detail = std::move(detail);
  recent_.push_back(violation);
  while (recent_.size() > options_.max_retained_violations) {
    recent_.pop_front();
  }

  // One dump per run: the first violation is where the causal history still
  // surrounds the offending message; later violations are usually cascade.
  if (flight_ != nullptr && total_violations_ == 1) {
    flight_->Dump("oracle_violation", std::string(OracleMonitorName(monitor)) +
                                          ": " + violation.detail);
  }
  if (hook_) {
    hook_(violation);
  }

  if (options_.policy != OraclePolicy::kCount) {
    PUB_LOG_ERROR("oracle violation [%s] %s %s: %s", OracleMonitorName(monitor),
                  ToString(id).c_str(),
                  process.IsValid() ? ToString(process).c_str() : "",
                  violation.detail.c_str());
  }
  if (options_.policy == OraclePolicy::kAbort) {
    std::abort();
  }
}

void InvariantOracle::OnEvent(const LifecycleEvent& event) {
  const CausalContext& ctx = event.ctx;
  // The per-message guarantees only bind guaranteed, non-control payload
  // traffic: unguaranteed sends are best-effort and control packets (crash
  // notices, recovery handshakes) are acked but deliberately unpublished.
  const bool bound = ctx.guaranteed() && !ctx.control();

  switch (event.stage) {
    case LifecycleStage::kSent:
      break;
    case LifecycleStage::kOnWire: {
      MessageState& ms = messages_[ctx.id];
      ms.guaranteed = ms.guaranteed || ctx.guaranteed();
      ms.control = ms.control || ctx.control();
      // A replay transmission re-sends an already-published message; it must
      // not re-arm the completeness obligation.
      if (!ctx.replay()) {
        ms.on_wire = true;
      }
      break;
    }
    case LifecycleStage::kOverheard:
      break;
    case LifecycleStage::kPublished: {
      MessageState& ms = messages_[ctx.id];
      ms.published = true;
      if (segment_resolver_) {
        // `event.node` is the publishing recorder's node; the resolver maps
        // it to the segment that recorder is responsible for.
        const int32_t segment = segment_resolver_(event.node);
        if (segment >= 0) {
          ms.published_segments |= uint64_t{1} << std::min<int32_t>(segment, 63);
        }
      }
      break;
    }
    case LifecycleStage::kDurable:
      messages_[ctx.id].durable = true;
      break;
    case LifecycleStage::kDelivered: {
      MessageState& ms = messages_[ctx.id];
      ms.delivered = true;
      if (!bound || ctx.replay()) {
        break;
      }
      if (options_.recorder_completeness && !ms.published) {
        Violate(OracleMonitor::kRecorderCompleteness, event,
                "delivered before the recorder published it (gating breached)");
      }
      if (options_.durability_before_ack && !ms.durable) {
        Violate(OracleMonitor::kDurabilityBeforeAck, event,
                "delivered before the publication was journaled");
      }
      if (segment_resolver_) {
        const int32_t dst_segment = segment_resolver_(event.node);
        const int32_t src_segment = segment_resolver_(ctx.origin);
        // Per-segment completeness: delivery on segment S requires a
        // publication by S's responsible recorder, not just any recorder.
        if (options_.recorder_completeness && ms.published && dst_segment >= 0 &&
            (ms.published_segments &
             (uint64_t{1} << std::min<int32_t>(dst_segment, 63))) == 0) {
          Violate(OracleMonitor::kRecorderCompleteness, event,
                  "delivered on segment " + std::to_string(dst_segment) +
                      " without a publication by that segment's recorder");
        }
        if (options_.gateway_forwarding && src_segment >= 0 && dst_segment >= 0 &&
            src_segment != dst_segment && !ms.forwarded) {
          Violate(OracleMonitor::kGatewayForwarding, event,
                  "delivered across segments (" + std::to_string(src_segment) +
                      " -> " + std::to_string(dst_segment) +
                      ") without any gateway forward");
        }
      }
      break;
    }
    case LifecycleStage::kAcked: {
      if (!bound || ctx.replay()) {
        break;
      }
      if (options_.durability_before_ack && !messages_[ctx.id].durable) {
        Violate(OracleMonitor::kDurabilityBeforeAck, event,
                "end-to-end ack before the publication was journaled");
      }
      break;
    }
    case LifecycleStage::kReplayed:
      // Replay *delivery* is not a read: the recovering process re-reads the
      // message later through the normal read path, which emits kRead.
      // Feeding both into the per-process monitors would double-count.
      messages_[ctx.id].delivered = true;
      break;
    case LifecycleStage::kForwarded: {
      MessageState& ms = messages_[ctx.id];
      ms.guaranteed = ms.guaranteed || ctx.guaranteed();
      ms.control = ms.control || ctx.control();
      ms.forwarded = true;
      if (options_.gateway_forwarding && !ctx.replay()) {
        // One transmission attempt (hop) may legitimately cross several
        // gateways and a retransmission crosses them again with a higher
        // hop, but the same attempt crossing the same segment pair twice
        // means a gateway duplicated it (routing loop or double ownership).
        const uint64_t tuple =
            (uint64_t{ctx.hop} << 32) |
            (uint64_t{static_cast<uint16_t>(event.from_segment)} << 16) |
            uint64_t{static_cast<uint16_t>(event.to_segment)};
        if (!forward_tuples_[ctx.id].insert(tuple).second) {
          Violate(OracleMonitor::kGatewayForwarding, event,
                  "transmission forwarded twice across segments " +
                      std::to_string(event.from_segment) + " -> " +
                      std::to_string(event.to_segment) +
                      " (gateway duplication)");
        }
      }
      break;
    }
    case LifecycleStage::kRead: {
      if (!event.process.IsValid()) {
        break;
      }
      ProcessState& ps = processes_[event.process];
      if (!ps.read_this_incarnation.insert(ctx.id).second) {
        if (options_.duplicate_delivery) {
          Violate(OracleMonitor::kDuplicateDelivery, event,
                  "message read twice within one process incarnation");
        }
        break;
      }
      ps.read_log.push_back(ctx.id);
      // Re-reading something the previous incarnation read: replay must
      // preserve the original read order.
      auto it = ps.prev_read_index.find(ctx.id);
      if (it != ps.prev_read_index.end()) {
        const int64_t index = static_cast<int64_t>(it->second);
        if (options_.receive_order && index <= ps.last_prev_index) {
          Violate(OracleMonitor::kReceiveOrder, event,
                  "replayed read out of original order (index " +
                      std::to_string(index) + " after " +
                      std::to_string(ps.last_prev_index) + ")");
        }
        ps.last_prev_index = std::max(ps.last_prev_index, index);
      }
      break;
    }
  }
  last_event_time_ = event.time;
}

void InvariantOracle::OnProcessReset(const ProcessId& pid) {
  ProcessState& ps = processes_[pid];
  ps.prev_read_index.clear();
  for (size_t i = 0; i < ps.read_log.size(); ++i) {
    ps.prev_read_index.emplace(ps.read_log[i], i);
  }
  ps.read_log.clear();
  ps.last_prev_index = -1;
  ps.read_this_incarnation.clear();
}

void InvariantOracle::CheckQuiescent() {
  if (options_.recorder_completeness) {
    // Deterministic violation order despite the unordered map.
    std::vector<MessageId> unpublished;
    for (const auto& [id, ms] : messages_) {
      if (ms.on_wire && ms.guaranteed && !ms.control && !ms.published) {
        unpublished.push_back(id);
      }
    }
    std::sort(unpublished.begin(), unpublished.end());
    for (const MessageId& id : unpublished) {
      Violate(OracleMonitor::kRecorderCompleteness, id, ProcessId{}, last_event_time_,
              "reached the wire but was never published (checked at quiescence)");
    }
  }
  if (options_.gateway_forwarding) {
    // Nothing a gateway forwarded may be silently dropped: a guaranteed,
    // non-control message that crossed a gateway must eventually reach its
    // destination (retransmission covers transient queue drops, so at
    // quiescence the obligation is unconditional).
    std::vector<MessageId> dropped;
    for (const auto& [id, ms] : messages_) {
      if (ms.forwarded && ms.guaranteed && !ms.control && !ms.delivered) {
        dropped.push_back(id);
      }
    }
    std::sort(dropped.begin(), dropped.end());
    for (const MessageId& id : dropped) {
      Violate(OracleMonitor::kGatewayForwarding, id, ProcessId{}, last_event_time_,
              "forwarded across a gateway but never delivered (checked at "
              "quiescence)");
    }
  }
}

std::string InvariantOracle::ReportJson() const {
  std::string out = "{\"monitors\":{";
  const bool enabled[kOracleMonitorCount] = {
      options_.recorder_completeness, options_.receive_order,
      options_.duplicate_delivery, options_.durability_before_ack,
      options_.gateway_forwarding};
  for (size_t i = 0; i < kOracleMonitorCount; ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"';
    out += OracleMonitorName(static_cast<OracleMonitor>(i));
    out += "\":{\"enabled\":";
    out += enabled[i] ? '1' : '0';
    out += ",\"violations\":" + std::to_string(violation_counts_[i]) + '}';
  }
  out += "},\"total_violations\":" + std::to_string(total_violations_);
  out += ",\"violations\":[";
  bool first = true;
  for (const OracleViolation& v : recent_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"monitor\":\"";
    out += OracleMonitorName(v.monitor);
    out += "\",\"id\":\"" + JsonEscape(ToString(v.id)) + '"';
    if (v.process.IsValid()) {
      out += ",\"process\":\"" + JsonEscape(ToString(v.process)) + '"';
    }
    out += ",\"time_ms\":" + FormatMetricValue(ToMillis(v.time));
    out += ",\"detail\":\"" + JsonEscape(v.detail) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace publishing
