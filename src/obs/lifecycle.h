// Per-message lifecycle tracking: the causal layer of the observability
// subsystem.
//
// A LifecycleTracker is the single sink for CausalContext stage observations
// from every instrumented layer (transport endpoints, the medium, the
// recorder, stable storage, the node kernels).  For each message it keeps one
// LifecycleRecord — first virtual time and occurrence count per stage, hop
// count, destination — in a bounded table with FIFO eviction, and fans each
// raw observation out to the optional attachments:
//
//   * Tracer          — one async span per message ("msg.lifecycle", opened
//                       at first sent, closed at first read) plus per-stage
//                       instants, on the dedicated lifecycle track;
//   * MetricsRegistry — `lifecycle.since_sent_ms{stage=...}` histograms
//                       (virtual-time latency from sent to each later stage)
//                       and stage counters;
//   * InvariantOracle — online invariant checking (oracle.h);
//   * FlightRecorder  — bounded per-node ring of recent events, dumpable on
//                       crash or violation (flight_recorder.h).
//
// Like every obs sink, the tracker is passive and optional: components cache
// an `Observability::lifecycle` pointer once and pay a single null check per
// hook, so detached runs stay bit-identical to the seed.
//
// TableToJson()/TableToCsv() serialize the table deterministically (records
// sorted by message id, stages in enum order, fixed number formatting), so
// identical runs dump byte-identical lifecycle tables.

#ifndef SRC_OBS_LIFECYCLE_H_
#define SRC_OBS_LIFECYCLE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/obs/causal.h"
#include "src/sim/time.h"

namespace publishing {

class FlightRecorder;
class Histogram;
class Counter;
class InvariantOracle;
class MetricsRegistry;
class Simulator;
class Tracer;

// Aggregated lifecycle of one message.  `first_time[s]` is -1 until stage
// `s` is first observed; `count[s]` counts every observation (retransmits
// show up as count[kSent] > 1, hop > 0).
struct LifecycleRecord {
  MessageId id;
  NodeId origin;
  NodeId dst_node;        // Node of the first delivered/replayed observation.
  ProcessId dst_process;  // Process of the first read observation, if any.
  uint8_t flags = 0;
  uint32_t max_hop = 0;
  uint64_t first_seq = 0;  // Tracker seq of the first observation (insertion order).
  SimTime first_time[kLifecycleStageCount];
  uint32_t count[kLifecycleStageCount];
  uint64_t span_id = 0;  // Open "msg.lifecycle" async span, 0 if none/closed.
  // Distinct (from_segment, to_segment) gateway hops, in first-seen order,
  // capped at kMaxForwardPairs (retransmits crossing the same gateway do not
  // add entries; count[kForwarded] still counts every crossing).
  static constexpr size_t kMaxForwardPairs = 8;
  std::vector<std::pair<int32_t, int32_t>> forwards;

  LifecycleRecord() {
    for (size_t i = 0; i < kLifecycleStageCount; ++i) {
      first_time[i] = -1;
      count[i] = 0;
    }
  }

  bool Saw(LifecycleStage stage) const {
    return count[static_cast<size_t>(stage)] > 0;
  }
  SimTime FirstTime(LifecycleStage stage) const {
    return first_time[static_cast<size_t>(stage)];
  }
};

class LifecycleTracker {
 public:
  static constexpr size_t kDefaultMaxMessages = 1 << 16;

  // `sim` supplies virtual time for every observation; not owned, must
  // outlive the tracker.  The table keeps at most `max_messages` records,
  // evicting the oldest (by first observation) once full.
  explicit LifecycleTracker(const Simulator* sim,
                            size_t max_messages = kDefaultMaxMessages);

  LifecycleTracker(const LifecycleTracker&) = delete;
  LifecycleTracker& operator=(const LifecycleTracker&) = delete;

  // Optional attachments.  All are borrowed pointers that must outlive the
  // tracker (or be detached by re-attaching nullptr).  AttachMetrics resolves
  // every instrument once, per the ScopedMetrics discipline.
  void AttachTracer(Tracer* tracer);
  void AttachMetrics(MetricsRegistry* metrics);
  void AttachOracle(InvariantOracle* oracle) { oracle_ = oracle; }
  void AttachFlightRecorder(FlightRecorder* flight) { flight_ = flight; }

  InvariantOracle* oracle() const { return oracle_; }
  FlightRecorder* flight_recorder() const { return flight_; }

  // The instrumentation hook: record that `stage` happened to the message
  // carried by `ctx` on `node` (for `process`, when the layer knows it).
  void Observe(const CausalContext& ctx, LifecycleStage stage, NodeId node,
               ProcessId process = {});

  // Gateway hook: the message crossed from `from_segment` onto `to_segment`
  // at gateway node `node` (src/internet).  Same as Observe(kForwarded) but
  // carries the segment ids into the event for the oracle's
  // gateway_forwarding monitor and the per-record forward list.
  void ObserveForwarded(const CausalContext& ctx, NodeId node,
                        int32_t from_segment, int32_t to_segment);

  // A process was recreated (new incarnation) during recovery.  Forwarded to
  // the oracle so per-incarnation invariants (duplicate delivery, receive
  // order) reset their state instead of flagging legitimate replays.
  void NoteProcessReset(const ProcessId& pid);

  // A fault was injected (crash_process / crash_node / crash_recorder) or an
  // invariant tripped.  Emits a tracer instant and asks the flight recorder
  // to dump.
  void NoteFault(const std::string& kind, const std::string& detail);

  // Table access for tests and reporters.
  size_t size() const { return table_.size(); }
  uint64_t observed() const { return next_seq_; }
  uint64_t evicted() const { return evicted_; }
  const LifecycleRecord* Find(const MessageId& id) const;
  const std::map<MessageId, LifecycleRecord>& table() const { return table_; }

  // Deterministic exports of the lifecycle table.
  std::string TableToJson() const;
  std::string TableToCsv() const;
  bool WriteJsonFile(const std::string& path) const;
  bool WriteCsvFile(const std::string& path) const;

 private:
  LifecycleRecord& FindOrCreate(const CausalContext& ctx);
  void ObserveEvent(LifecycleEvent& event);

  const Simulator* sim_;
  size_t max_messages_;
  std::map<MessageId, LifecycleRecord> table_;
  std::deque<MessageId> insertion_order_;  // For FIFO eviction.
  uint64_t next_seq_ = 0;
  uint64_t evicted_ = 0;

  Tracer* tracer_ = nullptr;
  InvariantOracle* oracle_ = nullptr;
  FlightRecorder* flight_ = nullptr;

  // Cached instruments (null when no registry attached).
  Counter* stage_counters_[kLifecycleStageCount] = {};
  Histogram* since_sent_ms_[kLifecycleStageCount] = {};
  Counter* faults_ = nullptr;
  Counter* evictions_ = nullptr;
};

}  // namespace publishing

#endif  // SRC_OBS_LIFECYCLE_H_
