// Crash flight recorder: a bounded ring of recent lifecycle events per node.
//
// The tracker's table answers "what happened to message X overall"; the
// flight recorder answers "what were the last N things each node saw before
// the crash".  Every lifecycle observation is appended to the ring of the
// node it happened on; when a fault is injected, an oracle monitor trips, or
// a test asks explicitly, Dump() serializes every ring — nodes sorted by id,
// events in observation order — into one deterministic JSON document, and
// optionally writes it to `<dir>/flightrec-<n>-<reason>.json` for CI to pick
// up as a failure artifact.
//
// Identical runs produce byte-identical dumps: all timestamps are virtual,
// event sequence numbers come from the tracker, and the serialization uses
// the fixed obs number formatting.

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/obs/causal.h"

namespace publishing {

class FlightRecorder {
 public:
  static constexpr size_t kDefaultPerNodeCapacity = 256;

  explicit FlightRecorder(size_t per_node_capacity = kDefaultPerNodeCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // When set, every Dump() is also written to
  // `<dir>/flightrec-<dump_count>-<reason>.json` (directory must exist).
  void SetDumpDirectory(std::string dir) { dump_dir_ = std::move(dir); }

  // Appends `event` to the ring of `event.node`, evicting the oldest entry
  // once the ring is full.
  void Record(const LifecycleEvent& event);

  // Serializes all rings into one deterministic JSON document and retains it
  // as last_dump().  `reason` is a short machine tag ("crash_process",
  // "oracle_violation", "explicit", ...); `detail` is free-form.
  std::string Dump(const std::string& reason, const std::string& detail = "");

  size_t per_node_capacity() const { return per_node_capacity_; }
  uint64_t recorded() const { return recorded_; }
  uint64_t dump_count() const { return dump_count_; }
  const std::string& last_dump() const { return last_dump_; }
  // Events currently retained for `node`, oldest first.
  std::vector<LifecycleEvent> NodeEvents(NodeId node) const;

 private:
  struct Ring {
    std::vector<LifecycleEvent> events;  // Ring storage, oldest at `head`.
    size_t head = 0;
    bool full = false;
  };

  size_t per_node_capacity_;
  std::map<NodeId, Ring> rings_;
  uint64_t recorded_ = 0;
  uint64_t dump_count_ = 0;
  std::string last_dump_;
  std::string dump_dir_;
};

}  // namespace publishing

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
