// Virtual-time metrics registry (the registry DESIGN.md promised for the
// simulator, grown into its own subsystem).
//
// Three instrument kinds, all deterministic:
//   * Counter   — monotonically increasing u64 (frames sent, fsyncs, ...)
//   * Gauge     — last-write-wins double (queue depth, WAL bytes on disk)
//   * Histogram — StatAccumulator-backed sample distribution (ack latency,
//                 group-commit batch sizes); bounded memory, deterministic
//                 reservoir percentiles.
//
// Instruments are identified by a name plus optional labels, rendered as
// `name{key=value,...}` with labels sorted by key, so the same (name, labels)
// pair always resolves to the same instrument and snapshots order the same
// way on every run.  Lookup returns a stable pointer the caller caches once
// at attach time; the hot path is then a single null check plus an add —
// the ScopedMetrics/null-object discipline every instrumented component in
// src/{sim,net,transport,core,storage} follows.  With no registry attached
// the hooks are dead branches and runs are bit-identical to uninstrumented
// ones.
//
// Snapshots serialize to JSON (machine-readable, the BENCH_*.json seed) and
// CSV; both orderings are lexicographic by key, so two identical runs
// produce byte-identical files.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/stats.h"

namespace publishing {

// Label set for one instrument, e.g. {{"medium", "ethernet"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Canonical instrument key: `name` alone when `labels` is empty, otherwise
// `name{k1=v1,k2=v2}` with labels sorted by key.
std::string MetricKey(std::string_view name, const MetricLabels& labels);

class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  // Upper bounds of the export buckets (exponential decades).  Samples above
  // the last bound land in the overflow bucket, exported as "inf".  The JSON
  // export emits per-bucket (non-cumulative) counts keyed by upper bound, in
  // increasing-bound order, alongside count/sum — self-describing without a
  // side channel.
  static constexpr double kBucketBounds[] = {0.001, 0.01, 0.1, 1.0,
                                             10.0,  100.0, 1000.0, 10000.0};
  static constexpr size_t kBucketCount =
      sizeof(kBucketBounds) / sizeof(kBucketBounds[0]) + 1;  // + overflow.

  void Observe(double sample) {
    stats_.Add(sample);
    ++buckets_[BucketIndex(sample)];
  }
  const StatAccumulator& stats() const { return stats_; }

  // Convenience accessors mirroring StatAccumulator, so call sites don't
  // reach through stats() for the common summary values.
  uint64_t count() const { return stats_.count(); }
  double sum() const { return stats_.sum(); }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double p50() const { return stats_.p50(); }
  double p99() const { return stats_.p99(); }

  // Samples in bucket `i` (the overflow bucket is i == kBucketCount - 1).
  uint64_t bucket(size_t i) const { return buckets_[i]; }

 private:
  static size_t BucketIndex(double sample) {
    for (size_t i = 0; i < kBucketCount - 1; ++i) {
      if (sample <= kBucketBounds[i]) {
        return i;
      }
    }
    return kBucketCount - 1;
  }

  StatAccumulator stats_;
  uint64_t buckets_[kBucketCount] = {};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the instrument for (name, labels).  The returned
  // pointer is stable for the registry's lifetime; callers cache it and pay
  // no lookup on the hot path.  A name may only be used with one instrument
  // kind; reusing it with another kind returns a fresh instrument under the
  // same key (last registration wins in the snapshot) — don't.
  Counter* GetCounter(std::string_view name, const MetricLabels& labels = {});
  Gauge* GetGauge(std::string_view name, const MetricLabels& labels = {});
  Histogram* GetHistogram(std::string_view name, const MetricLabels& labels = {});

  size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

  // Deterministic serializations: keys sorted lexicographically, fixed
  // number formatting.  Histograms expand to count/sum/mean/min/max/stddev/
  // p50/p99 sub-objects.
  std::string ToJson() const;
  std::string ToCsv() const;

  // Writes ToJson()/ToCsv() to `path`.  Returns false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;
  bool WriteCsvFile(const std::string& path) const;

  // Read access for tests and report generators.
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const { return counters_; }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const { return gauges_; }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Escapes `s` for inclusion in a JSON string literal (quotes not included).
std::string JsonEscape(std::string_view s);

// Formats a double the way every obs serializer does: integral values print
// without a fraction, others with up to 17 significant digits (round-trip
// exact, deterministic across runs).
std::string FormatMetricValue(double value);

// Writes `content` to `path`, the way every obs exporter does.  Returns
// false on I/O failure.
bool WriteTextFile(const std::string& path, std::string_view content);

}  // namespace publishing

#endif  // SRC_OBS_METRICS_H_
