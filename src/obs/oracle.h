// Online invariant oracle for the publishing guarantees.
//
// The paper's correctness story is per-message — every guaranteed message put
// on the medium is published by the recorder before delivery, is durable
// before the end-to-end acknowledgement, and is replayed to a recovering
// process exactly once and in original receive order (PAPER.md §3–4).  The
// oracle checks those properties *while the run executes*, from the same
// lifecycle stream the tracker sees, instead of trusting tier-1 assertions to
// notice a violation after the fact.
//
// Monitors (individually switchable):
//   * recorder_completeness  — a guaranteed, non-replay, non-control message
//       must be published before it is delivered (publication gating), and at
//       quiescence nothing guaranteed that reached the wire is unpublished.
//   * receive_order          — when a recovered process re-reads messages it
//       read before the crash, the replayed reads must preserve the original
//       read order (strictly increasing pre-crash read indices).
//   * duplicate_delivery     — within one process incarnation no message id
//       is read twice (replay suppression must filter duplicates).
//   * durability_before_ack  — a guaranteed, non-replay, non-control message
//       must be journaled to stable storage before the receiver's end-to-end
//       acknowledgement (and before delivery).
//   * gateway_forwarding     — in a multi-segment internetwork (src/internet)
//       no gateway duplicates a transmission across the same segment pair, a
//       message delivered on a foreign segment must have crossed a gateway,
//       and nothing forwarded is silently dropped (checked at quiescence).
//
// When a segment resolver is installed (SetSegmentResolver), the
// recorder_completeness monitor is additionally scoped per segment: a message
// delivered on segment S must have been published by a recorder responsible
// for S, not merely by *some* recorder on another segment.
//
// The oracle is a passive sink: it never mutates the system under test, and
// with no oracle attached the lifecycle hooks cost one null check.  On a
// violation it applies the configured policy — log (PUB_LOG_ERROR), count
// silently, or abort the process after dumping the flight recorder — and
// always records the violation for ReportJson()/tests.

#ifndef SRC_OBS_ORACLE_H_
#define SRC_OBS_ORACLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/ids.h"
#include "src/obs/causal.h"

namespace publishing {

class Counter;
class FlightRecorder;
class MetricsRegistry;

enum class OraclePolicy {
  kLog,    // Log each violation (and count it).
  kCount,  // Count silently; tests read violations() afterwards.
  kAbort,  // Dump the flight recorder, log, then std::abort().
};

enum class OracleMonitor : uint8_t {
  kRecorderCompleteness = 0,
  kReceiveOrder = 1,
  kDuplicateDelivery = 2,
  kDurabilityBeforeAck = 3,
  kGatewayForwarding = 4,
};

inline constexpr size_t kOracleMonitorCount = 5;

const char* OracleMonitorName(OracleMonitor monitor);

struct OracleViolation {
  OracleMonitor monitor = OracleMonitor::kRecorderCompleteness;
  MessageId id;
  ProcessId process;  // Reader, for the per-process monitors.
  SimTime time = 0;
  std::string detail;
};

struct OracleOptions {
  bool recorder_completeness = true;
  bool receive_order = true;
  bool duplicate_delivery = true;
  bool durability_before_ack = true;
  bool gateway_forwarding = true;
  OraclePolicy policy = OraclePolicy::kLog;
  // Violations retained for inspection; older ones are dropped (counts are
  // never dropped).
  size_t max_retained_violations = 64;
};

class InvariantOracle {
 public:
  using Options = OracleOptions;

  explicit InvariantOracle(Options options = Options());

  InvariantOracle(const InvariantOracle&) = delete;
  InvariantOracle& operator=(const InvariantOracle&) = delete;

  // Optional wiring.  The flight recorder is dumped on the first violation
  // (reason "oracle_violation"); metrics get per-monitor violation counters.
  void AttachFlightRecorder(FlightRecorder* flight) { flight_ = flight; }
  void AttachMetrics(MetricsRegistry* metrics);
  // Extra hook for tests (runs on every violation, after recording).
  void SetViolationHook(std::function<void(const OracleViolation&)> hook) {
    hook_ = std::move(hook);
  }
  // Installs the node -> segment partition function (src/internet's
  // SegmentMap::SegmentResolver).  Enables the cross-segment checks: per-
  // segment completeness scoping and delivered-without-forward detection.
  // The resolver must return -1 for nodes outside any segment (gateways) and
  // must outlive the oracle.  Null reverts to single-segment behaviour.
  void SetSegmentResolver(std::function<int32_t(NodeId)> resolver) {
    segment_resolver_ = std::move(resolver);
  }

  // Feed: called by the LifecycleTracker for every stage observation.
  void OnEvent(const LifecycleEvent& event);

  // A process incarnation ended and a new one began (recovery recreate).
  // Rolls the per-incarnation state: the current read log becomes the
  // previous-incarnation reference for the receive-order monitor.
  void OnProcessReset(const ProcessId& pid);

  // End-of-run check: every guaranteed, non-control message that reached the
  // wire must have been published.  Call when the simulation has quiesced
  // (in-flight retransmissions would otherwise be false positives).
  void CheckQuiescent();

  uint64_t total_violations() const { return total_violations_; }
  uint64_t violations(OracleMonitor monitor) const {
    return violation_counts_[static_cast<size_t>(monitor)];
  }
  const std::deque<OracleViolation>& recent_violations() const { return recent_; }

  // Deterministic JSON: per-monitor enable flags and counts, plus retained
  // violations in occurrence order.
  std::string ReportJson() const;

 private:
  struct MessageState {
    bool on_wire = false;
    bool published = false;
    bool durable = false;
    bool guaranteed = false;
    bool control = false;
    bool delivered = false;  // Live or replayed delivery reached a node.
    bool forwarded = false;  // Crossed at least one gateway.
    // Segments whose recorder published this message (bit min(segment, 63)).
    // Only maintained when a segment resolver is installed.
    uint64_t published_segments = 0;
  };

  struct ProcessState {
    // Read log of the current incarnation, in read order.
    std::vector<MessageId> read_log;
    // Message id -> index in the *previous* incarnation's read log.
    std::unordered_map<MessageId, size_t> prev_read_index;
    // Highest previous-incarnation index re-read so far this incarnation.
    // -1 until the first re-read.
    int64_t last_prev_index = -1;
    // Ids read this incarnation (duplicate-delivery monitor).
    std::unordered_set<MessageId> read_this_incarnation;
  };

  void Violate(OracleMonitor monitor, const LifecycleEvent& event,
               std::string detail);
  void Violate(OracleMonitor monitor, const MessageId& id, ProcessId process,
               SimTime time, std::string detail);

  Options options_;
  std::unordered_map<MessageId, MessageState> messages_;
  std::unordered_map<ProcessId, ProcessState> processes_;
  // Per message: encoded (hop, from_segment, to_segment) gateway crossings
  // already seen, for duplicate-forward detection.  Kept out of MessageState
  // so messages that never cross a gateway pay nothing.
  std::unordered_map<MessageId, std::unordered_set<uint64_t>> forward_tuples_;
  std::function<int32_t(NodeId)> segment_resolver_;

  uint64_t total_violations_ = 0;
  uint64_t violation_counts_[kOracleMonitorCount] = {};
  SimTime last_event_time_ = 0;
  std::deque<OracleViolation> recent_;

  FlightRecorder* flight_ = nullptr;
  Counter* violation_counters_[kOracleMonitorCount] = {};
  std::function<void(const OracleViolation&)> hook_;
};

}  // namespace publishing

#endif  // SRC_OBS_ORACLE_H_
