// Causal message-lifecycle vocabulary shared by every instrumented layer.
//
// A CausalContext is stamped onto each wire frame at transport send and rides
// the frame unchanged through link wrap/unwrap, the medium, the recorder tap,
// and delivery, so every observation of the same message — at any layer, on
// any node — keys to one lifecycle record.  The stages below are the
// end-to-end story of a published message:
//
//   sent -> on-wire -> overheard -> published -> durable -> delivered -> read
//                                                     (or -> replayed, after
//                                                      a crash)
//
// plus `acked` (the receiver's end-to-end acknowledgement, which the
// durability-before-ack invariant watches).  Stage observations are plain
// data handed to a LifecycleTracker; with no tracker attached the hooks are
// untaken branches and runs stay bit-identical to the seed behaviour.

#ifndef SRC_OBS_CAUSAL_H_
#define SRC_OBS_CAUSAL_H_

#include <cstddef>
#include <cstdint>

#include "src/common/ids.h"
#include "src/sim/time.h"

namespace publishing {

// Mirror of the transport PacketFlags bit layout (src/transport/packet.h).
// Redeclared here so src/obs stays below src/transport in the layering; the
// transport endpoint static_asserts the two stay in sync.
inline constexpr uint8_t kCausalGuaranteed = 1 << 0;
inline constexpr uint8_t kCausalReplay = 1 << 2;
inline constexpr uint8_t kCausalControl = 1 << 3;

// Stamped into every Frame by the sending transport endpoint.
struct CausalContext {
  MessageId id;       // The carried packet's globally unique message id.
  NodeId origin;      // Node that stamped the context (the sender).
  uint32_t hop = 0;   // Transmission attempt: 0 first send, +1 per retransmit.
  uint8_t flags = 0;  // The packet's flag bits (kCausal* layout).

  bool valid() const { return id.IsValid(); }
  bool guaranteed() const { return (flags & kCausalGuaranteed) != 0; }
  bool replay() const { return (flags & kCausalReplay) != 0; }
  bool control() const { return (flags & kCausalControl) != 0; }
};

enum class LifecycleStage : uint8_t {
  kSent = 0,       // Accepted by the sending transport endpoint.
  kOnWire = 1,     // Transmission started on the medium.
  kOverheard = 2,  // The recorder's promiscuous tap parsed it.
  kPublished = 3,  // Appended to the recorder's stable storage.
  kDurable = 4,    // The append was journaled (WAL or in-memory model).
  kDelivered = 5,  // The destination transport handed it up, live.
  kAcked = 6,      // The destination sent the end-to-end acknowledgement.
  kRead = 7,       // The destination process consumed it.
  kReplayed = 8,   // Re-injected delivery during recovery replay.
  kForwarded = 9,  // A gateway carried it onto another media segment
                   // (src/internet); from/to segment ids ride the event.
};

inline constexpr size_t kLifecycleStageCount = 10;

const char* LifecycleStageName(LifecycleStage stage);

// One stage observation.  `node` is where the stage happened; `process` is
// the destination/reader when the observing layer knows it.
struct LifecycleEvent {
  CausalContext ctx;
  LifecycleStage stage = LifecycleStage::kSent;
  SimTime time = 0;
  NodeId node;
  ProcessId process;
  uint64_t seq = 0;  // Global observation order, assigned by the tracker.
  // kForwarded only: the media segments the gateway carried the frame
  // between.  -1 (the default) on every other stage.
  int32_t from_segment = -1;
  int32_t to_segment = -1;
};

}  // namespace publishing

#endif  // SRC_OBS_CAUSAL_H_
