#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace publishing {

namespace {

template <typename T>
T* FindOrCreate(std::map<std::string, std::unique_ptr<T>>& table, std::string_view name,
                const MetricLabels& labels) {
  std::string key = MetricKey(name, labels);
  auto it = table.find(key);
  if (it == table.end()) {
    it = table.emplace(std::move(key), std::make_unique<T>()).first;
  }
  return it->second.get();
}

void AppendHistogramJson(std::string& out, const Histogram& h) {
  const StatAccumulator& s = h.stats();
  out += "{\"count\":" + FormatMetricValue(static_cast<double>(s.count()));
  out += ",\"sum\":" + FormatMetricValue(s.sum());
  out += ",\"mean\":" + FormatMetricValue(s.mean());
  out += ",\"min\":" + FormatMetricValue(s.min());
  out += ",\"max\":" + FormatMetricValue(s.max());
  out += ",\"stddev\":" + FormatMetricValue(s.stddev());
  out += ",\"p50\":" + FormatMetricValue(s.p50());
  out += ",\"p99\":" + FormatMetricValue(s.p99());
  out += ",\"buckets\":{";
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"';
    // %g, not the %.17g of FormatMetricValue: the bounds are human-chosen
    // decade constants and the keys are schema ("0.1", never
    // "0.10000000000000001").
    char bound[32];
    if (i + 1 < Histogram::kBucketCount) {
      std::snprintf(bound, sizeof(bound), "%g", Histogram::kBucketBounds[i]);
    }
    out += i + 1 < Histogram::kBucketCount ? std::string(bound)
                                           : std::string("inf");
    out += "\":" + FormatMetricValue(static_cast<double>(h.bucket(i)));
  }
  out += "}}";
}

}  // namespace

std::string MetricKey(std::string_view name, const MetricLabels& labels) {
  if (labels.empty()) {
    return std::string(name);
  }
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  key += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) {
      key += ',';
    }
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMetricValue(double value) {
  if (std::isnan(value)) {
    return "0";  // JSON has no NaN; an unobserved stat reads as zero.
  }
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

Counter* MetricsRegistry::GetCounter(std::string_view name, const MetricLabels& labels) {
  return FindOrCreate(counters_, name, labels);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, const MetricLabels& labels) {
  return FindOrCreate(gauges_, name, labels);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name, const MetricLabels& labels) {
  return FindOrCreate(histograms_, name, labels);
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(key) + "\":" +
           FormatMetricValue(static_cast<double>(counter->value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(key) + "\":" + FormatMetricValue(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [key, histogram] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(key) + "\":";
    AppendHistogramJson(out, *histogram);
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToCsv() const {
  std::string out = "metric,stat,value\n";
  auto row = [&out](const std::string& key, const char* stat, double value) {
    // Commas inside a key (multi-label instruments) would split the column;
    // quote the key field unconditionally.
    out += '"' + key + "\"," + stat + ',' + FormatMetricValue(value) + '\n';
  };
  for (const auto& [key, counter] : counters_) {
    row(key, "value", static_cast<double>(counter->value()));
  }
  for (const auto& [key, gauge] : gauges_) {
    row(key, "value", gauge->value());
  }
  for (const auto& [key, histogram] : histograms_) {
    const StatAccumulator& s = histogram->stats();
    row(key, "count", static_cast<double>(s.count()));
    row(key, "sum", s.sum());
    row(key, "mean", s.mean());
    row(key, "min", s.min());
    row(key, "max", s.max());
    row(key, "stddev", s.stddev());
    row(key, "p50", s.p50());
    row(key, "p99", s.p99());
  }
  return out;
}

bool WriteTextFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written != content.size()) {
    std::fclose(f);
  }
  return ok;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  return WriteTextFile(path, ToJson());
}

bool MetricsRegistry::WriteCsvFile(const std::string& path) const {
  return WriteTextFile(path, ToCsv());
}

}  // namespace publishing
