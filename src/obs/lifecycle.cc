#include "src/obs/lifecycle.h"

#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/oracle.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace publishing {

const char* LifecycleStageName(LifecycleStage stage) {
  switch (stage) {
    case LifecycleStage::kSent:
      return "sent";
    case LifecycleStage::kOnWire:
      return "on_wire";
    case LifecycleStage::kOverheard:
      return "overheard";
    case LifecycleStage::kPublished:
      return "published";
    case LifecycleStage::kDurable:
      return "durable";
    case LifecycleStage::kDelivered:
      return "delivered";
    case LifecycleStage::kAcked:
      return "acked";
    case LifecycleStage::kRead:
      return "read";
    case LifecycleStage::kReplayed:
      return "replayed";
    case LifecycleStage::kForwarded:
      return "forwarded";
  }
  return "unknown";
}

LifecycleTracker::LifecycleTracker(const Simulator* sim, size_t max_messages)
    : sim_(sim), max_messages_(max_messages == 0 ? 1 : max_messages) {}

void LifecycleTracker::AttachTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    tracer_->SetTrackName(obs_track::kLifecycle, "lifecycle");
  }
}

void LifecycleTracker::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    for (size_t i = 0; i < kLifecycleStageCount; ++i) {
      stage_counters_[i] = nullptr;
      since_sent_ms_[i] = nullptr;
    }
    faults_ = nullptr;
    evictions_ = nullptr;
    return;
  }
  for (size_t i = 0; i < kLifecycleStageCount; ++i) {
    const char* stage = LifecycleStageName(static_cast<LifecycleStage>(i));
    stage_counters_[i] = metrics->GetCounter("lifecycle.stage", {{"stage", stage}});
    // sent -> sent latency is always zero; no histogram for it.
    since_sent_ms_[i] =
        i == 0 ? nullptr
               : metrics->GetHistogram("lifecycle.since_sent_ms", {{"stage", stage}});
  }
  faults_ = metrics->GetCounter("lifecycle.faults");
  evictions_ = metrics->GetCounter("lifecycle.evictions");
}

LifecycleRecord& LifecycleTracker::FindOrCreate(const CausalContext& ctx) {
  auto it = table_.find(ctx.id);
  if (it != table_.end()) {
    return it->second;
  }
  while (table_.size() >= max_messages_ && !insertion_order_.empty()) {
    const MessageId victim = insertion_order_.front();
    insertion_order_.pop_front();
    if (table_.erase(victim) > 0) {
      ++evicted_;
      if (evictions_ != nullptr) {
        evictions_->Add();
      }
    }
  }
  it = table_.emplace(ctx.id, LifecycleRecord{}).first;
  it->second.id = ctx.id;
  it->second.origin = ctx.origin;
  it->second.first_seq = next_seq_;
  insertion_order_.push_back(ctx.id);
  return it->second;
}

void LifecycleTracker::Observe(const CausalContext& ctx, LifecycleStage stage,
                               NodeId node, ProcessId process) {
  if (!ctx.valid()) {
    return;
  }
  LifecycleEvent event;
  event.ctx = ctx;
  event.stage = stage;
  event.time = sim_->Now();
  event.node = node;
  event.process = process;
  ObserveEvent(event);
}

void LifecycleTracker::ObserveForwarded(const CausalContext& ctx, NodeId node,
                                        int32_t from_segment, int32_t to_segment) {
  if (!ctx.valid()) {
    return;
  }
  LifecycleEvent event;
  event.ctx = ctx;
  event.stage = LifecycleStage::kForwarded;
  event.time = sim_->Now();
  event.node = node;
  event.from_segment = from_segment;
  event.to_segment = to_segment;
  ObserveEvent(event);
}

void LifecycleTracker::ObserveEvent(LifecycleEvent& event) {
  const CausalContext& ctx = event.ctx;
  const LifecycleStage stage = event.stage;
  const NodeId node = event.node;
  const ProcessId process = event.process;
  event.seq = next_seq_++;

  const size_t s = static_cast<size_t>(stage);
  LifecycleRecord& rec = FindOrCreate(ctx);
  rec.flags |= ctx.flags;
  if (ctx.hop > rec.max_hop) {
    rec.max_hop = ctx.hop;
  }
  const bool stage_first = rec.count[s] == 0;
  ++rec.count[s];
  if (stage_first) {
    rec.first_time[s] = event.time;
    if (stage == LifecycleStage::kDelivered || stage == LifecycleStage::kReplayed) {
      rec.dst_node = node;
    }
    if (stage == LifecycleStage::kRead && process.IsValid()) {
      rec.dst_process = process;
    }
  }
  if (stage == LifecycleStage::kForwarded &&
      rec.forwards.size() < LifecycleRecord::kMaxForwardPairs) {
    const std::pair<int32_t, int32_t> hop{event.from_segment, event.to_segment};
    bool known = false;
    for (const auto& seen : rec.forwards) {
      if (seen == hop) {
        known = true;
        break;
      }
    }
    if (!known) {
      rec.forwards.push_back(hop);
    }
  }

  if (stage_counters_[s] != nullptr) {
    stage_counters_[s]->Add();
  }
  const SimTime sent_at = rec.FirstTime(LifecycleStage::kSent);
  if (since_sent_ms_[s] != nullptr && sent_at >= 0 && stage != LifecycleStage::kSent) {
    since_sent_ms_[s]->Observe(ToMillis(event.time - sent_at));
  }

  if (tracer_ != nullptr) {
    if (stage == LifecycleStage::kSent && stage_first) {
      rec.span_id = tracer_->BeginSpan("msg.lifecycle", "lifecycle",
                                       obs_track::kLifecycle,
                                       {{"id", ToString(ctx.id)}});
    }
    if (stage_first && stage != LifecycleStage::kSent) {
      tracer_->Instant(std::string("msg.") + LifecycleStageName(stage), "lifecycle",
                       obs_track::kLifecycle, {{"id", ToString(ctx.id)}});
    }
    if (stage == LifecycleStage::kRead && rec.span_id != 0) {
      tracer_->EndSpan(rec.span_id, "msg.lifecycle", "lifecycle",
                       obs_track::kLifecycle, {{"id", ToString(ctx.id)}});
      rec.span_id = 0;
    }
  }

  // Flight recorder before the oracle: a violation dump must include the
  // event that tripped it.
  if (flight_ != nullptr) {
    flight_->Record(event);
  }
  if (oracle_ != nullptr) {
    oracle_->OnEvent(event);
  }
}

void LifecycleTracker::NoteProcessReset(const ProcessId& pid) {
  if (tracer_ != nullptr) {
    tracer_->Instant("process.reset", "lifecycle", obs_track::kLifecycle,
                     {{"process", ToString(pid)}});
  }
  if (oracle_ != nullptr) {
    oracle_->OnProcessReset(pid);
  }
}

void LifecycleTracker::NoteFault(const std::string& kind, const std::string& detail) {
  if (faults_ != nullptr) {
    faults_->Add();
  }
  if (tracer_ != nullptr) {
    tracer_->Instant("fault." + kind, "lifecycle", obs_track::kLifecycle,
                     {{"detail", detail}});
  }
  if (flight_ != nullptr) {
    flight_->Dump(kind, detail);
  }
}

const LifecycleRecord* LifecycleTracker::Find(const MessageId& id) const {
  auto it = table_.find(id);
  return it == table_.end() ? nullptr : &it->second;
}

std::string LifecycleTracker::TableToJson() const {
  std::string out = "{\"messages\":[";
  bool first_rec = true;
  for (const auto& [id, rec] : table_) {
    if (!first_rec) {
      out += ',';
    }
    first_rec = false;
    out += "{\"id\":\"" + JsonEscape(ToString(id)) + '"';
    out += ",\"origin\":" + std::to_string(rec.origin.value);
    out += ",\"dst_node\":" + std::to_string(rec.dst_node.value);
    if (rec.dst_process.IsValid()) {
      out += ",\"dst_process\":\"" + JsonEscape(ToString(rec.dst_process)) + '"';
    }
    out += ",\"flags\":" + std::to_string(rec.flags);
    out += ",\"hops\":" + std::to_string(rec.max_hop);
    if (!rec.forwards.empty()) {
      out += ",\"forwards\":[";
      bool first_fwd = true;
      for (const auto& [from, to] : rec.forwards) {
        if (!first_fwd) {
          out += ',';
        }
        first_fwd = false;
        out += "{\"from\":" + std::to_string(from);
        out += ",\"to\":" + std::to_string(to) + '}';
      }
      out += ']';
    }
    out += ",\"stages\":{";
    bool first_stage = true;
    for (size_t s = 0; s < kLifecycleStageCount; ++s) {
      if (rec.count[s] == 0) {
        continue;
      }
      if (!first_stage) {
        out += ',';
      }
      first_stage = false;
      out += '"';
      out += LifecycleStageName(static_cast<LifecycleStage>(s));
      out += "\":{\"first_ms\":" + FormatMetricValue(ToMillis(rec.first_time[s]));
      out += ",\"count\":" + std::to_string(rec.count[s]) + '}';
    }
    out += "}}";
  }
  out += "],\"observed\":" + std::to_string(next_seq_);
  out += ",\"evicted\":" + std::to_string(evicted_) + '}';
  return out;
}

std::string LifecycleTracker::TableToCsv() const {
  std::string out = "id,origin,dst_node,flags,hops,stage,first_ms,count\n";
  for (const auto& [id, rec] : table_) {
    for (size_t s = 0; s < kLifecycleStageCount; ++s) {
      if (rec.count[s] == 0) {
        continue;
      }
      out += '"' + ToString(id) + "\",";
      out += std::to_string(rec.origin.value) + ',';
      out += std::to_string(rec.dst_node.value) + ',';
      out += std::to_string(rec.flags) + ',';
      out += std::to_string(rec.max_hop) + ',';
      out += LifecycleStageName(static_cast<LifecycleStage>(s));
      out += ',';
      out += FormatMetricValue(ToMillis(rec.first_time[s]));
      out += ',' + std::to_string(rec.count[s]) + '\n';
    }
  }
  return out;
}

bool LifecycleTracker::WriteJsonFile(const std::string& path) const {
  return WriteTextFile(path, TableToJson());
}

bool LifecycleTracker::WriteCsvFile(const std::string& path) const {
  return WriteTextFile(path, TableToCsv());
}

}  // namespace publishing
