#include "src/transport/packet.h"

namespace publishing {

Bytes SerializePacket(const Packet& packet) {
  Writer w;
  w.WriteMessageId(packet.header.id);
  w.WriteProcessId(packet.header.src_process);
  w.WriteProcessId(packet.header.dst_process);
  w.WriteNodeId(packet.header.src_node);
  w.WriteNodeId(packet.header.dst_node);
  w.WriteU16(packet.header.channel);
  w.WriteU32(packet.header.code);
  w.WriteU8(packet.header.flags);
  w.WriteBytes(std::span<const uint8_t>(packet.link_blob.data(), packet.link_blob.size()));
  w.WriteBytes(std::span<const uint8_t>(packet.body.data(), packet.body.size()));
  return w.TakeBytes();
}

Result<Packet> ParsePacket(std::span<const uint8_t> bytes) {
  Reader r(bytes);
  Packet packet;
  auto id = r.ReadMessageId();
  if (!id.ok()) {
    return id.status();
  }
  packet.header.id = *id;
  auto src = r.ReadProcessId();
  if (!src.ok()) {
    return src.status();
  }
  packet.header.src_process = *src;
  auto dst = r.ReadProcessId();
  if (!dst.ok()) {
    return dst.status();
  }
  packet.header.dst_process = *dst;
  auto src_node = r.ReadNodeId();
  if (!src_node.ok()) {
    return src_node.status();
  }
  packet.header.src_node = *src_node;
  auto dst_node = r.ReadNodeId();
  if (!dst_node.ok()) {
    return dst_node.status();
  }
  packet.header.dst_node = *dst_node;
  auto channel = r.ReadU16();
  if (!channel.ok()) {
    return channel.status();
  }
  packet.header.channel = *channel;
  auto code = r.ReadU32();
  if (!code.ok()) {
    return code.status();
  }
  packet.header.code = *code;
  auto flags = r.ReadU8();
  if (!flags.ok()) {
    return flags.status();
  }
  packet.header.flags = *flags;
  auto link_blob = r.ReadBytes();
  if (!link_blob.ok()) {
    return link_blob.status();
  }
  packet.link_blob = std::move(*link_blob);
  auto body = r.ReadBytes();
  if (!body.ok()) {
    return body.status();
  }
  packet.body = std::move(*body);
  if (!r.AtEnd()) {
    return Status(StatusCode::kCorrupt, "trailing bytes after packet");
  }
  return packet;
}

Bytes SerializeAck(const AckPacket& ack) {
  Writer w;
  w.WriteMessageId(ack.acked);
  w.WriteNodeId(ack.from);
  w.WriteNodeId(ack.to);
  return w.TakeBytes();
}

Result<AckPacket> ParseAck(std::span<const uint8_t> bytes) {
  Reader r(bytes);
  AckPacket ack;
  auto id = r.ReadMessageId();
  if (!id.ok()) {
    return id.status();
  }
  ack.acked = *id;
  auto from = r.ReadNodeId();
  if (!from.ok()) {
    return from.status();
  }
  ack.from = *from;
  auto to = r.ReadNodeId();
  if (!to.ok()) {
    return to.status();
  }
  ack.to = *to;
  if (!r.AtEnd()) {
    return Status(StatusCode::kCorrupt, "trailing bytes after ack");
  }
  return ack;
}

}  // namespace publishing
