// Transport packets: the routable unit of DEMOS/MP inter-node communication
// (§4.3.3) and the thing the recorder parses off the wire (§4.5).
//
// The header carries everything publishing needs without looking at the
// body: the globally unique message id (sender process + send sequence,
// which drives duplicate suppression and resend suppression during
// recovery), source and destination process, and the link-derived channel
// and code fields the receiver's kernel uses for selective receive.

#ifndef SRC_TRANSPORT_PACKET_H_
#define SRC_TRANSPORT_PACKET_H_

#include <cstdint>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/ids.h"
#include "src/common/serialization.h"
#include "src/common/status.h"

namespace publishing {

// Packet flag bits.
enum PacketFlags : uint8_t {
  kFlagGuaranteed = 1 << 0,      // End-to-end acknowledged (§4.3.3).
  kFlagDeliverToKernel = 1 << 1, // Process-control: intercepted by the
                                 // destination node's kernel process (§4.4.3).
  kFlagReplay = 1 << 2,          // Injected by a recovery process; bypasses
                                 // the duplicate cache (§4.7).
  kFlagControl = 1 << 3,         // Watchdog / recovery-manager traffic that
                                 // the recorder does not publish.
};

struct PacketHeader {
  MessageId id;            // Unique message identifier.
  ProcessId src_process;
  ProcessId dst_process;
  NodeId src_node;
  NodeId dst_node;
  uint16_t channel = 0;    // From the link the message was sent over.
  uint32_t code = 0;       // Ditto (§4.2.2.1).
  uint8_t flags = 0;

  bool guaranteed() const { return (flags & kFlagGuaranteed) != 0; }
  bool deliver_to_kernel() const { return (flags & kFlagDeliverToKernel) != 0; }
  bool replay() const { return (flags & kFlagReplay) != 0; }
  bool control() const { return (flags & kFlagControl) != 0; }
};

struct Packet {
  PacketHeader header;
  // Serialized passed link, empty when the message carries none (§4.2.2.3).
  Bytes link_blob;
  // Uninterpreted message body.
  Bytes body;
  // Scatter/gather sidecar: shared Buffer views riding along with the packet
  // (replay bursts carry the logged packets here, straight out of stable
  // storage).  In-memory only — NOT serialized, so ParsePacket stays the
  // exact inverse of SerializePacket; segment bytes are billed to the wire
  // via Frame::WireBytes instead (gather-DMA model).
  std::vector<Buffer> segments;
};

// Transport acknowledgement: "processor from which the message originates
// expects an acknowledgement from the processor on which the destination
// process resides" (§4.3.3).  The recorder overhears these to learn the
// order in which nodes accepted messages (§4.4.1).
struct AckPacket {
  MessageId acked;
  NodeId from;  // Acknowledging (destination) node.
  NodeId to;    // Original sender node.
};

// Parsers take spans so both owned Bytes and shared Buffer views flow in
// without materializing a copy; ParsePacket is the exact inverse of
// SerializePacket (the recorder relies on this to append the overheard wire
// bytes directly instead of re-serializing).
Bytes SerializePacket(const Packet& packet);
Result<Packet> ParsePacket(std::span<const uint8_t> bytes);

Bytes SerializeAck(const AckPacket& ack);
Result<AckPacket> ParseAck(std::span<const uint8_t> bytes);

}  // namespace publishing

#endif  // SRC_TRANSPORT_PACKET_H_
