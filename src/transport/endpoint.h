// Per-node transport endpoint (§4.3.3).
//
// Provides, over any Medium, the three guarantees DEMOS/MP's network layer
// gives the message kernel when neither endpoint crashes:
//   * messages are not duplicated (id cache),
//   * all guaranteed messages sent arrive (end-to-end ack + retransmit),
//   * messages from one process to another arrive in send order (at most one
//     unacknowledged guaranteed message in transit per processor — the
//     paper's stop-and-wait scheme; a windowed mode is provided as the
//     "future work" §4.3.3 footnote describes).
//
// Publication gating (§3.3.4/§6.1) lives *below* this layer: every medium in
// src/net only delivers frames the recorder successfully recorded, so a
// frame the recorder missed simply looks like a lost frame here and is
// retransmitted.

#ifndef SRC_TRANSPORT_ENDPOINT_H_
#define SRC_TRANSPORT_ENDPOINT_H_

#include <deque>
#include <functional>
#include <unordered_set>

#include "src/net/link_layer.h"
#include "src/net/medium.h"
#include "src/transport/packet.h"

namespace publishing {

struct TransportOptions {
  // Retransmission timeout for unacknowledged guaranteed packets.
  SimDuration retransmit_timeout = Millis(40);
  // Exponential backoff cap.
  SimDuration max_retransmit_timeout = Millis(640);
  // Maximum guaranteed packets in flight from this node *per destination
  // node*.  1 reproduces the paper's ordering scheme (stop-and-wait); larger
  // values model the windowing follow-up.  Scoping the window to the
  // destination keeps an unreachable node from blocking traffic to everyone
  // else while preserving per-destination FIFO — the ordering the recovery
  // protocol depends on.
  size_t window = 1;
  // Entries retained in the duplicate-suppression cache.  "The size of the
  // cache is adjusted to make the lifetime of a message in the cache many
  // times greater than the time for a message to follow the longest path
  // through the network."
  size_t dup_cache_size = 4096;
};

struct TransportStats {
  uint64_t data_sent = 0;
  uint64_t data_delivered = 0;
  uint64_t acks_sent = 0;
  uint64_t retransmits = 0;
  uint64_t duplicates_suppressed = 0;
  uint64_t corrupt_dropped = 0;
};

class TransportEndpoint : public Station {
 public:
  // `deliver` receives each accepted inbound packet exactly once, in arrival
  // order.
  TransportEndpoint(Simulator* sim, Medium* medium, NodeId node, TransportOptions options,
                    std::function<void(const Packet&)> deliver);
  ~TransportEndpoint() override;

  TransportEndpoint(const TransportEndpoint&) = delete;
  TransportEndpoint& operator=(const TransportEndpoint&) = delete;

  // Queues a packet.  Guaranteed packets (kFlagGuaranteed) are retransmitted
  // until acknowledged; others are fire-and-forget.
  void Send(Packet packet);

  // Marks a message id as already delivered, so any later live copy (e.g. a
  // retransmission racing a completed recovery) is suppressed.  The kernel
  // calls this for every replayed message it accepts.
  void NoteDelivered(const MessageId& id) { RememberId(id); }

  // Drops all transport state (outstanding sends, dup cache).  Used when the
  // node crashes: a restarted node remembers nothing (§3.3.2 treats a
  // processor crash as the crash of every process on it).
  void Reset();

  // Suspends/resumes frame processing, simulating a crashed node that is
  // physically attached but silent.
  void set_online(bool online) { online_ = online; }
  bool online() const { return online_; }

  NodeId Address() const override { return node_; }
  void OnFrame(const Frame& frame) override;

  const TransportStats& stats() const { return stats_; }

  // Resolves the shared transport instruments (all endpoints aggregate into
  // the same `transport.*` series) and keeps the tracer for per-packet
  // round-trip spans.  Null members detach.
  void SetObservability(const Observability& obs);

 private:
  struct InFlight {
    Packet packet;
    SimDuration timeout;
    EventId timer;
    SimTime first_sent = 0;   // For the ack-latency histogram.
    uint64_t span_id = 0;     // Open transport.rtt async span, 0 = none.
    uint32_t attempts = 0;    // Transmissions so far (CausalContext hop).
  };

  void TrySendNext();
  void TransmitInFlight(size_t index);
  void OnRetransmitTimer(MessageId id);
  void HandleData(const Packet& packet);
  void HandleAck(const AckPacket& ack);
  void NoteCorruptDropped();
  void RememberId(const MessageId& id);
  bool SeenId(const MessageId& id) const;

  Simulator* sim_;
  Medium* medium_;
  NodeId node_;
  TransportOptions options_;
  std::function<void(const Packet&)> deliver_;
  bool online_ = true;

  std::deque<Packet> send_queue_;       // Guaranteed packets awaiting a window slot.
  std::deque<InFlight> in_flight_;      // Unacknowledged guaranteed packets.
  std::unordered_set<MessageId> dup_cache_;
  std::deque<MessageId> dup_order_;     // FIFO eviction for the cache.
  TransportStats stats_;

  // Observability handles (null = detached).
  Tracer* tracer_ = nullptr;
  LifecycleTracker* lifecycle_ = nullptr;
  Counter* obs_data_sent_ = nullptr;
  Counter* obs_data_delivered_ = nullptr;
  Counter* obs_acks_sent_ = nullptr;
  Counter* obs_retransmits_ = nullptr;
  Counter* obs_dup_hits_ = nullptr;
  Counter* obs_corrupt_dropped_ = nullptr;
  Histogram* obs_ack_latency_ = nullptr;
};

}  // namespace publishing

#endif  // SRC_TRANSPORT_ENDPOINT_H_
