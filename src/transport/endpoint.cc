#include "src/transport/endpoint.h"

#include <algorithm>

#include "src/common/logging.h"

namespace publishing {

// The CausalContext mirrors the packet flag bit layout so src/obs can reason
// about guaranteed/replay/control without depending on src/transport.
static_assert(kCausalGuaranteed == kFlagGuaranteed);
static_assert(kCausalReplay == kFlagReplay);
static_assert(kCausalControl == kFlagControl);

namespace {

CausalContext MakeCausal(const PacketHeader& header, NodeId origin, uint32_t hop) {
  CausalContext ctx;
  ctx.id = header.id;
  ctx.origin = origin;
  ctx.hop = hop;
  ctx.flags = header.flags;
  return ctx;
}

}  // namespace

TransportEndpoint::TransportEndpoint(Simulator* sim, Medium* medium, NodeId node,
                                     TransportOptions options,
                                     std::function<void(const Packet&)> deliver)
    : sim_(sim), medium_(medium), node_(node), options_(options), deliver_(std::move(deliver)) {
  medium_->Attach(this);
}

TransportEndpoint::~TransportEndpoint() { medium_->Detach(node_); }

void TransportEndpoint::SetObservability(const Observability& obs) {
  tracer_ = obs.tracer;
  lifecycle_ = obs.lifecycle;
  if (obs.metrics != nullptr) {
    obs_data_sent_ = obs.metrics->GetCounter("transport.data_sent");
    obs_data_delivered_ = obs.metrics->GetCounter("transport.data_delivered");
    obs_acks_sent_ = obs.metrics->GetCounter("transport.acks_sent");
    obs_retransmits_ = obs.metrics->GetCounter("transport.retransmits");
    obs_dup_hits_ = obs.metrics->GetCounter("transport.dup_cache_hits");
    obs_corrupt_dropped_ = obs.metrics->GetCounter("transport.corrupt_dropped");
    obs_ack_latency_ = obs.metrics->GetHistogram("transport.ack_latency_ms");
  } else {
    obs_data_sent_ = nullptr;
    obs_data_delivered_ = nullptr;
    obs_acks_sent_ = nullptr;
    obs_retransmits_ = nullptr;
    obs_dup_hits_ = nullptr;
    obs_corrupt_dropped_ = nullptr;
    obs_ack_latency_ = nullptr;
  }
}

void TransportEndpoint::Send(Packet packet) {
  packet.header.src_node = node_;
  if (!packet.header.guaranteed()) {
    // "Unguaranteed messages exist ... for sending dated or statistical
    // information": transmit immediately, never retransmit.
    Frame frame;
    frame.src = node_;
    frame.dst = packet.header.dst_node;
    frame.type = packet.header.control() ? FrameType::kControl : FrameType::kData;
    frame.payload = LinkWrap(SerializePacket(packet));
    // Gather segments ride on the frame as shared views (no payload copy);
    // WireBytes accounts for their transmit time.
    frame.segments = std::move(packet.segments);
    frame.causal = MakeCausal(packet.header, node_, 0);
    ++stats_.data_sent;
    if (obs_data_sent_ != nullptr) {
      obs_data_sent_->Add(1);
    }
    if (lifecycle_ != nullptr) {
      lifecycle_->Observe(frame.causal, LifecycleStage::kSent, node_);
    }
    medium_->Send(std::move(frame));
    return;
  }
  send_queue_.push_back(std::move(packet));
  TrySendNext();
}

void TransportEndpoint::Reset() {
  for (InFlight& inflight : in_flight_) {
    sim_->Cancel(inflight.timer);
  }
  in_flight_.clear();
  send_queue_.clear();
  dup_cache_.clear();
  dup_order_.clear();
}

void TransportEndpoint::TrySendNext() {
  for (auto it = send_queue_.begin(); it != send_queue_.end();) {
    const NodeId dst = it->header.dst_node;
    size_t outstanding = 0;
    for (const InFlight& inflight : in_flight_) {
      if (inflight.packet.header.dst_node == dst) {
        ++outstanding;
      }
    }
    if (outstanding >= options_.window) {
      ++it;
      continue;
    }
    InFlight inflight;
    inflight.packet = std::move(*it);
    it = send_queue_.erase(it);
    inflight.timeout = options_.retransmit_timeout;
    inflight.first_sent = sim_->Now();
    if (tracer_ != nullptr) {
      inflight.span_id = tracer_->BeginSpan(
          "transport.rtt", "transport", obs_track::kTransport,
          {{"dst_node", std::to_string(inflight.packet.header.dst_node.value)}});
    }
    in_flight_.push_back(std::move(inflight));
    TransmitInFlight(in_flight_.size() - 1);
  }
}

void TransportEndpoint::TransmitInFlight(size_t index) {
  InFlight& inflight = in_flight_[index];
  Frame frame;
  frame.src = node_;
  frame.dst = inflight.packet.header.dst_node;
  frame.type =
      inflight.packet.header.control() ? FrameType::kControl : FrameType::kData;
  frame.payload = LinkWrap(SerializePacket(inflight.packet));
  frame.causal = MakeCausal(inflight.packet.header, node_, inflight.attempts++);
  ++stats_.data_sent;
  if (obs_data_sent_ != nullptr) {
    obs_data_sent_->Add(1);
  }
  if (lifecycle_ != nullptr) {
    lifecycle_->Observe(frame.causal, LifecycleStage::kSent, node_);
  }
  medium_->Send(std::move(frame));

  const MessageId id = inflight.packet.header.id;
  inflight.timer = sim_->ScheduleAfter(inflight.timeout, [this, id] { OnRetransmitTimer(id); });
}

void TransportEndpoint::OnRetransmitTimer(MessageId id) {
  if (!online_) {
    return;
  }
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].packet.header.id == id) {
      ++stats_.retransmits;
      if (obs_retransmits_ != nullptr) {
        obs_retransmits_->Add(1);
      }
      if (tracer_ != nullptr) {
        tracer_->Instant("transport.retransmit", "transport", obs_track::kTransport,
                         {{"dst_node",
                           std::to_string(in_flight_[i].packet.header.dst_node.value)}});
      }
      in_flight_[i].timeout =
          std::min(in_flight_[i].timeout * 2, options_.max_retransmit_timeout);
      TransmitInFlight(i);
      return;
    }
  }
}

void TransportEndpoint::OnFrame(const Frame& frame) {
  if (!online_) {
    return;
  }
  // Fault injection damaged our copy: substitute a CoW-damaged clone and let
  // the CRC catch it.  The clean path unwraps the shared payload in place.
  auto body = frame.corrupted
                  ? LinkUnwrap(LinkCorrupt(frame.payload, frame.payload.size() / 2))
                  : LinkUnwrap(frame.payload);
  if (!body.ok()) {
    NoteCorruptDropped();
    return;
  }
  if (frame.type == FrameType::kAck) {
    auto ack = ParseAck(*body);
    if (!ack.ok()) {
      NoteCorruptDropped();
      return;
    }
    if (ack->to == node_) {
      HandleAck(*ack);
    }
    return;
  }
  auto packet = ParsePacket(*body);
  if (!packet.ok()) {
    NoteCorruptDropped();
    return;
  }
  if (packet->header.dst_node == node_ || packet->header.dst_node == kBroadcastNode) {
    // Re-attach the frame's gather segments (shared views — a refcount bump,
    // not a payload copy) so the receiver sees the same scatter/gather packet
    // the sender handed the medium.
    packet->segments = frame.segments;
    HandleData(*packet);
  }
}

void TransportEndpoint::HandleData(const Packet& packet) {
  if (packet.header.guaranteed()) {
    // Acknowledge even duplicates: the original ack may have been lost.
    AckPacket ack{packet.header.id, node_, packet.header.src_node};
    Frame frame;
    frame.src = node_;
    frame.dst = packet.header.src_node;
    frame.type = FrameType::kAck;
    frame.payload = LinkWrap(SerializeAck(ack));
    ++stats_.acks_sent;
    if (obs_acks_sent_ != nullptr) {
      obs_acks_sent_->Add(1);
    }
    // The ack stage is observed here — not at the ack frame on the medium —
    // because only this layer still knows the acked packet's flags, which
    // the durability-before-ack monitor needs to exempt control traffic.
    if (lifecycle_ != nullptr) {
      lifecycle_->Observe(MakeCausal(packet.header, packet.header.src_node, 0),
                          LifecycleStage::kAcked, node_);
    }
    medium_->Send(std::move(frame));
  }
  if (!packet.header.replay()) {
    if (SeenId(packet.header.id)) {
      ++stats_.duplicates_suppressed;
      if (obs_dup_hits_ != nullptr) {
        obs_dup_hits_->Add(1);
      }
      return;
    }
    RememberId(packet.header.id);
  }
  ++stats_.data_delivered;
  if (obs_data_delivered_ != nullptr) {
    obs_data_delivered_->Add(1);
  }
  if (lifecycle_ != nullptr) {
    lifecycle_->Observe(
        MakeCausal(packet.header, packet.header.src_node, 0),
        packet.header.replay() ? LifecycleStage::kReplayed : LifecycleStage::kDelivered,
        node_, packet.header.dst_process);
  }
  deliver_(packet);
}

void TransportEndpoint::HandleAck(const AckPacket& ack) {
  for (auto it = in_flight_.begin(); it != in_flight_.end(); ++it) {
    if (it->packet.header.id == ack.acked) {
      sim_->Cancel(it->timer);
      if (obs_ack_latency_ != nullptr) {
        obs_ack_latency_->Observe(ToMillis(sim_->Now() - it->first_sent));
      }
      if (tracer_ != nullptr && it->span_id != 0) {
        tracer_->EndSpan(it->span_id, "transport.rtt", "transport",
                         obs_track::kTransport);
      }
      in_flight_.erase(it);
      TrySendNext();
      return;
    }
  }
}

void TransportEndpoint::NoteCorruptDropped() {
  ++stats_.corrupt_dropped;
  if (obs_corrupt_dropped_ != nullptr) {
    obs_corrupt_dropped_->Add(1);
  }
}

void TransportEndpoint::RememberId(const MessageId& id) {
  dup_cache_.insert(id);
  dup_order_.push_back(id);
  while (dup_order_.size() > options_.dup_cache_size) {
    dup_cache_.erase(dup_order_.front());
    dup_order_.pop_front();
  }
}

bool TransportEndpoint::SeenId(const MessageId& id) const { return dup_cache_.contains(id); }

}  // namespace publishing
