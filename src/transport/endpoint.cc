#include "src/transport/endpoint.h"

#include <algorithm>

#include "src/common/logging.h"

namespace publishing {

TransportEndpoint::TransportEndpoint(Simulator* sim, Medium* medium, NodeId node,
                                     TransportOptions options,
                                     std::function<void(const Packet&)> deliver)
    : sim_(sim), medium_(medium), node_(node), options_(options), deliver_(std::move(deliver)) {
  medium_->Attach(this);
}

TransportEndpoint::~TransportEndpoint() { medium_->Detach(node_); }

void TransportEndpoint::Send(Packet packet) {
  packet.header.src_node = node_;
  if (!packet.header.guaranteed()) {
    // "Unguaranteed messages exist ... for sending dated or statistical
    // information": transmit immediately, never retransmit.
    Frame frame;
    frame.src = node_;
    frame.dst = packet.header.dst_node;
    frame.type = packet.header.control() ? FrameType::kControl : FrameType::kData;
    frame.payload = LinkWrap(SerializePacket(packet));
    ++stats_.data_sent;
    medium_->Send(std::move(frame));
    return;
  }
  send_queue_.push_back(std::move(packet));
  TrySendNext();
}

void TransportEndpoint::Reset() {
  for (InFlight& inflight : in_flight_) {
    sim_->Cancel(inflight.timer);
  }
  in_flight_.clear();
  send_queue_.clear();
  dup_cache_.clear();
  dup_order_.clear();
}

void TransportEndpoint::TrySendNext() {
  for (auto it = send_queue_.begin(); it != send_queue_.end();) {
    const NodeId dst = it->header.dst_node;
    size_t outstanding = 0;
    for (const InFlight& inflight : in_flight_) {
      if (inflight.packet.header.dst_node == dst) {
        ++outstanding;
      }
    }
    if (outstanding >= options_.window) {
      ++it;
      continue;
    }
    InFlight inflight;
    inflight.packet = std::move(*it);
    it = send_queue_.erase(it);
    inflight.timeout = options_.retransmit_timeout;
    in_flight_.push_back(std::move(inflight));
    TransmitInFlight(in_flight_.size() - 1);
  }
}

void TransportEndpoint::TransmitInFlight(size_t index) {
  InFlight& inflight = in_flight_[index];
  Frame frame;
  frame.src = node_;
  frame.dst = inflight.packet.header.dst_node;
  frame.type =
      inflight.packet.header.control() ? FrameType::kControl : FrameType::kData;
  frame.payload = LinkWrap(SerializePacket(inflight.packet));
  ++stats_.data_sent;
  medium_->Send(std::move(frame));

  const MessageId id = inflight.packet.header.id;
  inflight.timer = sim_->ScheduleAfter(inflight.timeout, [this, id] { OnRetransmitTimer(id); });
}

void TransportEndpoint::OnRetransmitTimer(MessageId id) {
  if (!online_) {
    return;
  }
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].packet.header.id == id) {
      ++stats_.retransmits;
      in_flight_[i].timeout =
          std::min(in_flight_[i].timeout * 2, options_.max_retransmit_timeout);
      TransmitInFlight(i);
      return;
    }
  }
}

void TransportEndpoint::OnFrame(const Frame& frame) {
  if (!online_) {
    return;
  }
  Bytes payload = frame.payload;
  if (frame.corrupted) {
    // Fault injection damaged our copy; let the CRC catch it.
    LinkCorruptByte(payload, static_cast<size_t>(frame.payload.size() / 2));
  }
  auto body = LinkUnwrap(payload);
  if (!body.ok()) {
    ++stats_.corrupt_dropped;
    return;
  }
  if (frame.type == FrameType::kAck) {
    auto ack = ParseAck(*body);
    if (!ack.ok()) {
      ++stats_.corrupt_dropped;
      return;
    }
    if (ack->to == node_) {
      HandleAck(*ack);
    }
    return;
  }
  auto packet = ParsePacket(*body);
  if (!packet.ok()) {
    ++stats_.corrupt_dropped;
    return;
  }
  if (packet->header.dst_node == node_ || packet->header.dst_node == kBroadcastNode) {
    HandleData(*packet);
  }
}

void TransportEndpoint::HandleData(const Packet& packet) {
  if (packet.header.guaranteed()) {
    // Acknowledge even duplicates: the original ack may have been lost.
    AckPacket ack{packet.header.id, node_, packet.header.src_node};
    Frame frame;
    frame.src = node_;
    frame.dst = packet.header.src_node;
    frame.type = FrameType::kAck;
    frame.payload = LinkWrap(SerializeAck(ack));
    ++stats_.acks_sent;
    medium_->Send(std::move(frame));
  }
  if (!packet.header.replay()) {
    if (SeenId(packet.header.id)) {
      ++stats_.duplicates_suppressed;
      return;
    }
    RememberId(packet.header.id);
  }
  ++stats_.data_delivered;
  deliver_(packet);
}

void TransportEndpoint::HandleAck(const AckPacket& ack) {
  for (auto it = in_flight_.begin(); it != in_flight_.end(); ++it) {
    if (it->packet.header.id == ack.acked) {
      sim_->Cancel(it->timer);
      in_flight_.erase(it);
      TrySendNext();
      return;
    }
  }
}

void TransportEndpoint::RememberId(const MessageId& id) {
  dup_cache_.insert(id);
  dup_order_.push_back(id);
  while (dup_order_.size() > options_.dup_cache_size) {
    dup_cache_.erase(dup_order_.front());
    dup_order_.pop_front();
  }
}

bool TransportEndpoint::SeenId(const MessageId& id) const { return dup_cache_.contains(id); }

}  // namespace publishing
