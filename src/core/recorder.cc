#include "src/core/recorder.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/net/link_layer.h"
#include "src/transport/packet.h"

namespace publishing {

SimDuration PublishCpuCost(PublishPath path) {
  switch (path) {
    case PublishPath::kFullProtocol:
      return Millis(57);  // §5.2.2: "This time was 57 ms per message."
    case PublishPath::kInlined:
      return Millis(12);  // "...we reduced this number to 12 ms."
    case PublishPath::kMediaLayer:
      return MillisF(0.8);  // "...can be reduced to the desired 0.8 ms".
  }
  return 0;
}

Recorder::Recorder(Simulator* sim, Medium* medium, NameService* names, StableStorage* storage,
                   RecorderOptions options)
    : sim_(sim), names_(names), storage_(storage), options_(options) {
  // Stamp journal appends with virtual time so a durable backend can group
  // commits over time windows.
  storage_->set_clock([this] { return static_cast<uint64_t>(sim_->Now()); });
  endpoint_ = std::make_unique<TransportEndpoint>(
      sim_, medium, options_.node, options_.transport,
      [this](const Packet& packet) { OnPacketDelivered(packet); });
  medium->AttachListener(this, options_.node);
  names_->SetLocation(RecorderPid(), options_.node);
}

Recorder::~Recorder() = default;

void Recorder::SetObservability(const Observability& obs) {
  tracer_ = obs.tracer;
  lifecycle_ = obs.lifecycle;
  if (obs.metrics != nullptr) {
    obs_frames_seen_ = obs.metrics->GetCounter("recorder.frames_seen");
    obs_messages_published_ = obs.metrics->GetCounter("recorder.messages_published");
    obs_bytes_published_ = obs.metrics->GetCounter("recorder.bytes_published");
    obs_checkpoints_stored_ = obs.metrics->GetCounter("recorder.checkpoints_stored");
    obs_publish_cost_ = obs.metrics->GetHistogram("recorder.publish_cost_ms");
  } else {
    obs_frames_seen_ = nullptr;
    obs_messages_published_ = nullptr;
    obs_bytes_published_ = nullptr;
    obs_checkpoints_stored_ = nullptr;
    obs_publish_cost_ = nullptr;
  }
  endpoint_->SetObservability(obs);
}

bool Recorder::OnWireFrame(const Frame& frame) {
  if (down_) {
    // §3.3.4: "all message traffic to processes must be suspended whenever
    // the recorder goes down" — vetoing every frame suspends it.
    return false;
  }
  ++stats_.frames_seen;
  if (obs_frames_seen_ != nullptr) {
    obs_frames_seen_->Add(1);
  }
  if (!frame.segments.empty()) {
    // Replay-burst gather frames.  Counted before the own-transmission check
    // below: bursts originate from the recovery manager on this node, and
    // these stats are how benches and tests see them at all.
    ++stats_.replay_bursts_seen;
    stats_.replay_segments_seen += frame.segments.size();
  }
  if (frame.src == options_.node) {
    // Our own transmissions (replays, acks) need no recording.
    return true;
  }
  if (frame.type == FrameType::kAck) {
    ++stats_.acks_seen;
    return true;
  }
  auto body = LinkUnwrap(frame.payload);
  if (!body.ok()) {
    return false;  // We could not read it; nobody may use it.
  }
  auto packet = ParsePacket(*body);
  if (!packet.ok()) {
    return false;
  }
  return RecordParsedPacket(*packet, *body);
}

bool Recorder::RecordParsedPacket(const Packet& packet, const Buffer& wire_body) {
  if (down_) {
    return false;
  }
  // Responsibility scoping (src/internet): a frame in transit between two
  // foreign nodes crosses this segment only to reach a gateway.  It is not
  // ours to record or veto — the destination's home recorder gates it on the
  // segment where it is finally delivered.
  const bool src_scope =
      !options_.responsible_for || options_.responsible_for(packet.header.src_node);
  const bool dst_scope =
      packet.header.dst_node == kBroadcastNode
          ? src_scope
          : !options_.responsible_for ||
                options_.responsible_for(packet.header.dst_node);
  if (!src_scope && !dst_scope) {
    ++stats_.transit_skipped;
    return true;
  }
  const size_t wire_bytes = wire_body.size();
  if (lifecycle_ != nullptr) {
    CausalContext ctx;
    ctx.id = packet.header.id;
    ctx.origin = packet.header.src_node;
    ctx.flags = packet.header.flags;
    lifecycle_->Observe(ctx, LifecycleStage::kOverheard, options_.node);
  }
  if (packet.header.replay()) {
    ++stats_.replay_seen;
    return true;  // Recovery injections are already in the log.
  }
  // Track the sender's high-water mark even for control traffic — restart
  // floors (§4.7) need the kernel processes' sequence numbers too.  Scoped to
  // our own senders: a foreign sender's watermark lives with its home
  // recorder, which overhears every frame that sender puts on its segment.
  if (src_scope) {
    storage_->RecordSent(packet.header.src_process, packet.header.id.sequence);
  }
  if (packet.header.control()) {
    ++stats_.control_seen;
    return true;
  }
  if (!packet.header.guaranteed()) {
    // Unguaranteed messages carry dated data by contract (§4.3.3) and are
    // not replayed.
    return true;
  }
  if (!dst_scope) {
    // Outbound cross-segment traffic: the destination's home recorder
    // publishes it where it is delivered; we only needed the send watermark.
    ++stats_.foreign_dst_skipped;
    return true;
  }
  const SimDuration publish_cost = PublishCpuCost(options_.path);
  stats_.publish_cpu += publish_cost;
  ++stats_.messages_published;
  stats_.bytes_published += wire_bytes;
  if (obs_messages_published_ != nullptr) {
    obs_messages_published_->Add(1);
    obs_bytes_published_->Add(wire_bytes);
    obs_publish_cost_->Observe(ToMillis(publish_cost));
  }
  if (tracer_ != nullptr) {
    // The publish span covers the recorder CPU spent on this message,
    // anchored at the moment the frame was overheard.
    const SimTime span_start = std::max<SimTime>(0, sim_->Now() - publish_cost);
    tracer_->Complete(span_start, "recorder.publish", "recorder",
                      obs_track::kRecorder,
                      {{"bytes", std::to_string(wire_bytes)},
                       {"dst_node", std::to_string(packet.header.dst_node.value)}});
  }
  // Append the overheard wire bytes themselves (ParsePacket is the exact
  // inverse of SerializePacket, so `wire_body` IS the serialized packet):
  // the log entry shares the frame's storage instead of re-serializing.
  if (options_.node_unit) {
    storage_->AppendNodeMessage(packet.header.dst_node, packet.header.id, wire_body);
  } else {
    storage_->AppendMessage(packet.header.dst_process, packet.header.id, wire_body);
  }
  if (lifecycle_ != nullptr) {
    CausalContext ctx;
    ctx.id = packet.header.id;
    ctx.origin = packet.header.src_node;
    ctx.flags = packet.header.flags;
    lifecycle_->Observe(ctx, LifecycleStage::kPublished, options_.node);
  }
  return true;
}

void Recorder::OnMessageRead(const ProcessId& reader, const MessageId& id) {
  if (down_) {
    return;
  }
  storage_->RecordRead(reader, id);
}

void Recorder::OnExtranodeArrival(NodeId node, const MessageId& id, uint64_t step) {
  if (down_) {
    return;
  }
  storage_->StampNodeMessage(node, id, step);
}

void Recorder::OnPacketDelivered(const Packet& packet) {
  if (down_) {
    return;
  }
  if (packet.header.dst_process != RecorderPid()) {
    if (packet_handler_ && packet_handler_(packet)) {
      return;
    }
    return;
  }
  if (ApplyNotice(packet)) {
    return;
  }
  if (PeekOp(packet.body) == KernelOp::kNoticeCrash) {
    auto target = DecodeRecoveryTarget(packet.body);
    if (target.ok() && crash_notice_handler_) {
      crash_notice_handler_(target->pid);
    }
    return;
  }
  if (packet_handler_ && packet_handler_(packet)) {
    return;
  }
  PUB_LOG_DEBUG("recorder: unhandled packet op %u",
                static_cast<unsigned>(PeekOp(packet.body)));
}

bool Recorder::ApplyNotice(const Packet& packet) {
  switch (PeekOp(packet.body)) {
    case KernelOp::kNoticeCreated: {
      auto notice = DecodeProcessNotice(packet.body);
      if (notice.ok()) {
        storage_->RecordCreation(notice->pid, notice->program, notice->initial_links,
                                 packet.header.src_node, notice->recoverable);
      }
      return true;
    }
    case KernelOp::kNoticeDestroyed: {
      auto notice = DecodeProcessNotice(packet.body);
      if (notice.ok()) {
        storage_->RecordDestruction(notice->pid);
      }
      return true;
    }
    case KernelOp::kCheckpoint: {
      auto checkpoint = DecodeCheckpoint(packet.body);
      if (checkpoint.ok()) {
        ++stats_.checkpoints_stored;
        if (obs_checkpoints_stored_ != nullptr) {
          obs_checkpoints_stored_->Add(1);
        }
        storage_->StoreCheckpoint(checkpoint->pid, std::move(checkpoint->state),
                                  checkpoint->reads_done);
      }
      return true;
    }
    case KernelOp::kCheckpointNode: {
      auto checkpoint = DecodeNodeCheckpoint(packet.body);
      if (checkpoint.ok()) {
        ++stats_.checkpoints_stored;
        if (obs_checkpoints_stored_ != nullptr) {
          obs_checkpoints_stored_->Add(1);
        }
        storage_->StoreNodeCheckpoint(checkpoint->node, std::move(checkpoint->image),
                                      checkpoint->node_step);
      }
      return true;
    }
    default:
      return false;
  }
}

void Recorder::Crash() {
  down_ = true;
  endpoint_->set_online(false);
  endpoint_->Reset();
  if (tracer_ != nullptr) {
    tracer_->Instant("recorder.crash", "recorder", obs_track::kRecorder, {});
  }
}

void Recorder::Restart() {
  if (!down_) {
    return;
  }
  down_ = false;
  endpoint_->set_online(true);
  const uint64_t restart_number = storage_->IncrementRestartNumber();
  if (tracer_ != nullptr) {
    tracer_->Instant("recorder.restart", "recorder", obs_track::kRecorder,
                     {{"restart", std::to_string(restart_number)}});
  }
  PUB_LOG_INFO("recorder: restart #%llu", static_cast<unsigned long long>(restart_number));
  if (restart_handler_) {
    restart_handler_(restart_number);
  }
}

}  // namespace publishing
