#include "src/core/storage_journal.h"

#include <cassert>

namespace publishing {

namespace {

Writer BeginRecord(JournalOp op) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(op));
  return w;
}

Status Corrupt(const char* what) {
  return Status(StatusCode::kCorrupt, std::string("journal record: ") + what);
}

// Reads the fields common to several ops; each returns kCorrupt on underrun
// via the Reader's own bounds checks.
#define READ_OR_RETURN(var, expr)     \
  auto var##_r = (expr);              \
  if (!var##_r.ok()) {                \
    return var##_r.status();          \
  }                                   \
  auto var = std::move(*var##_r)

void WriteMessageIdSet(Writer& w, const std::unordered_set<MessageId>& set) {
  w.WriteU32(static_cast<uint32_t>(set.size()));
  for (const MessageId& id : set) {
    w.WriteMessageId(id);
  }
}

Status ReadMessageIdSet(Reader& r, std::unordered_set<MessageId>& out) {
  READ_OR_RETURN(count, r.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    READ_OR_RETURN(id, r.ReadMessageId());
    out.insert(id);
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Incremental encoders
// ---------------------------------------------------------------------------

Bytes StorageJournal::EncodeCreate(const ProcessId& pid, const std::string& program,
                                   const std::vector<Link>& links, NodeId home,
                                   bool recoverable) {
  Writer w = BeginRecord(JournalOp::kCreate);
  w.WriteProcessId(pid);
  w.WriteString(program);
  w.WriteU32(static_cast<uint32_t>(links.size()));
  for (const Link& link : links) {
    SerializeLink(w, link);
  }
  w.WriteNodeId(home);
  w.WriteBool(recoverable);
  return w.TakeBytes();
}

Bytes StorageJournal::EncodeDestroy(const ProcessId& pid) {
  Writer w = BeginRecord(JournalOp::kDestroy);
  w.WriteProcessId(pid);
  return w.TakeBytes();
}

Bytes StorageJournal::EncodeSetHome(const ProcessId& pid, NodeId node) {
  Writer w = BeginRecord(JournalOp::kSetHome);
  w.WriteProcessId(pid);
  w.WriteNodeId(node);
  return w.TakeBytes();
}

Bytes StorageJournal::EncodeAppendMessage(const ProcessId& pid, const MessageId& id,
                                          std::span<const uint8_t> packet) {
  Writer w = BeginRecord(JournalOp::kAppendMessage);
  w.WriteProcessId(pid);
  w.WriteMessageId(id);
  w.WriteBytes(packet);
  return w.TakeBytes();
}

Bytes StorageJournal::EncodeRecordRead(const ProcessId& reader, const MessageId& id) {
  Writer w = BeginRecord(JournalOp::kRecordRead);
  w.WriteProcessId(reader);
  w.WriteMessageId(id);
  return w.TakeBytes();
}

Bytes StorageJournal::EncodeRecordSent(const ProcessId& sender, uint64_t seq) {
  Writer w = BeginRecord(JournalOp::kRecordSent);
  w.WriteProcessId(sender);
  w.WriteU64(seq);
  return w.TakeBytes();
}

Bytes StorageJournal::EncodeStoreCheckpoint(const ProcessId& pid, const Bytes& state,
                                            uint64_t reads_done) {
  Writer w = BeginRecord(JournalOp::kStoreCheckpoint);
  w.WriteProcessId(pid);
  w.WriteBytes(state);
  w.WriteU64(reads_done);
  return w.TakeBytes();
}

Bytes StorageJournal::EncodeSetRecovering(const ProcessId& pid, bool recovering) {
  Writer w = BeginRecord(JournalOp::kSetRecovering);
  w.WriteProcessId(pid);
  w.WriteBool(recovering);
  return w.TakeBytes();
}

Bytes StorageJournal::EncodeAppendNodeMessage(NodeId node, const MessageId& id,
                                              std::span<const uint8_t> packet) {
  Writer w = BeginRecord(JournalOp::kAppendNodeMessage);
  w.WriteNodeId(node);
  w.WriteMessageId(id);
  w.WriteBytes(packet);
  return w.TakeBytes();
}

Bytes StorageJournal::EncodeStampNodeMessage(NodeId node, const MessageId& id, uint64_t step) {
  Writer w = BeginRecord(JournalOp::kStampNodeMessage);
  w.WriteNodeId(node);
  w.WriteMessageId(id);
  w.WriteU64(step);
  return w.TakeBytes();
}

Bytes StorageJournal::EncodeStoreNodeCheckpoint(NodeId node, const Bytes& image,
                                                uint64_t step) {
  Writer w = BeginRecord(JournalOp::kStoreNodeCheckpoint);
  w.WriteNodeId(node);
  w.WriteBytes(image);
  w.WriteU64(step);
  return w.TakeBytes();
}

Bytes StorageJournal::EncodeRestartNumber(uint64_t number) {
  Writer w = BeginRecord(JournalOp::kRestartNumber);
  w.WriteU64(number);
  return w.TakeBytes();
}

JournalOp StorageJournal::OpOf(std::span<const uint8_t> record) {
  if (record.empty()) {
    return JournalOp::kInvalid;
  }
  const uint8_t op = record[0];
  if ((op >= static_cast<uint8_t>(JournalOp::kCreate) &&
       op <= static_cast<uint8_t>(JournalOp::kRestartNumber)) ||
      (op >= static_cast<uint8_t>(JournalOp::kSnapshotBegin) &&
       op <= static_cast<uint8_t>(JournalOp::kSnapshotEnd))) {
    return static_cast<JournalOp>(op);
  }
  return JournalOp::kInvalid;
}

// ---------------------------------------------------------------------------
// Snapshot (full-image) records
// ---------------------------------------------------------------------------

std::vector<Bytes> StorageJournal::SnapshotRecords(const StableStorage& db) {
  std::vector<Bytes> records;
  records.reserve(db.logs_.size() + db.node_logs_.size() + 3);
  {
    Writer w = BeginRecord(JournalOp::kSnapshotBegin);
    w.WriteU32(1);  // Snapshot format version.
    records.push_back(w.TakeBytes());
  }
  for (const auto& [pid, log] : db.logs_) {
    Writer w = BeginRecord(JournalOp::kSnapshotProcess);
    w.WriteProcessId(pid);
    w.WriteString(log.info.program);
    w.WriteU32(static_cast<uint32_t>(log.info.initial_links.size()));
    for (const Link& link : log.info.initial_links) {
      SerializeLink(w, link);
    }
    w.WriteNodeId(log.info.home_node);
    w.WriteBool(log.info.destroyed);
    w.WriteBool(log.info.recoverable);
    w.WriteBool(log.info.recovering);
    w.WriteBool(log.info.has_checkpoint);
    w.WriteU64(log.info.checkpoint_reads);
    w.WriteU64(log.info.last_sent_seq);
    w.WriteBytes(log.checkpoint);
    w.WriteU32(static_cast<uint32_t>(log.entries.size()));
    for (const LogEntry& entry : log.entries) {
      w.WriteMessageId(entry.id);
      w.WriteU64(entry.arrival);
      w.WriteBool(entry.read);
      w.WriteU64(entry.read_seq);
      w.WriteBytes(entry.packet);
    }
    w.WriteU64(log.next_read_seq);
    WriteMessageIdSet(w, log.ever_read);
    WriteMessageIdSet(w, log.ever_logged);
    records.push_back(w.TakeBytes());
  }
  for (const auto& [node, log] : db.node_logs_) {
    Writer w = BeginRecord(JournalOp::kSnapshotNode);
    w.WriteNodeId(node);
    w.WriteBool(log.has_checkpoint);
    w.WriteBytes(log.checkpoint);
    w.WriteU64(log.checkpoint_step);
    w.WriteU32(static_cast<uint32_t>(log.entries.size()));
    for (const StableStorage::NodeLogEntry& entry : log.entries) {
      w.WriteMessageId(entry.id);
      w.WriteU64(entry.arrival);
      w.WriteU64(entry.step);
      w.WriteBool(entry.stamped);
      w.WriteBytes(entry.packet);
    }
    WriteMessageIdSet(w, log.ever_logged);
    records.push_back(w.TakeBytes());
  }
  {
    Writer w = BeginRecord(JournalOp::kSnapshotCounters);
    w.WriteU64(db.next_arrival_);
    w.WriteU64(db.restart_number_);
    w.WriteU64(db.messages_stored_);
    w.WriteU64(db.peak_bytes_);
    records.push_back(w.TakeBytes());
  }
  {
    Writer w = BeginRecord(JournalOp::kSnapshotEnd);
    w.WriteU64(records.size() + 1);  // Total records including this one.
    records.push_back(w.TakeBytes());
  }
  return records;
}

// ---------------------------------------------------------------------------
// Apply
// ---------------------------------------------------------------------------

Status StorageJournal::Apply(StableStorage& db, std::span<const uint8_t> record) {
  assert(db.backend() == nullptr && "replay must not re-journal");
  const JournalOp op = OpOf(record);
  if (op == JournalOp::kInvalid) {
    return Corrupt("unknown op");
  }
  Reader r(record.subspan(1));
  switch (op) {
    case JournalOp::kCreate: {
      READ_OR_RETURN(pid, r.ReadProcessId());
      READ_OR_RETURN(program, r.ReadString());
      READ_OR_RETURN(nlinks, r.ReadU32());
      std::vector<Link> links;
      for (uint32_t i = 0; i < nlinks; ++i) {
        auto link = ParseLink(r);
        if (!link.ok()) {
          return link.status();
        }
        links.push_back(*link);
      }
      READ_OR_RETURN(home, r.ReadNodeId());
      READ_OR_RETURN(recoverable, r.ReadBool());
      db.RecordCreation(pid, program, std::move(links), home, recoverable);
      return Status::Ok();
    }
    case JournalOp::kDestroy: {
      READ_OR_RETURN(pid, r.ReadProcessId());
      db.RecordDestruction(pid);
      return Status::Ok();
    }
    case JournalOp::kSetHome: {
      READ_OR_RETURN(pid, r.ReadProcessId());
      READ_OR_RETURN(node, r.ReadNodeId());
      db.SetHomeNode(pid, node);
      return Status::Ok();
    }
    case JournalOp::kAppendMessage: {
      READ_OR_RETURN(pid, r.ReadProcessId());
      READ_OR_RETURN(id, r.ReadMessageId());
      READ_OR_RETURN(packet, r.ReadBytes());
      db.AppendMessage(pid, id, std::move(packet));
      return Status::Ok();
    }
    case JournalOp::kRecordRead: {
      READ_OR_RETURN(reader, r.ReadProcessId());
      READ_OR_RETURN(id, r.ReadMessageId());
      db.RecordRead(reader, id);
      return Status::Ok();
    }
    case JournalOp::kRecordSent: {
      READ_OR_RETURN(sender, r.ReadProcessId());
      READ_OR_RETURN(seq, r.ReadU64());
      db.RecordSent(sender, seq);
      return Status::Ok();
    }
    case JournalOp::kStoreCheckpoint: {
      READ_OR_RETURN(pid, r.ReadProcessId());
      READ_OR_RETURN(state, r.ReadBytes());
      READ_OR_RETURN(reads_done, r.ReadU64());
      db.StoreCheckpoint(pid, std::move(state), reads_done);
      return Status::Ok();
    }
    case JournalOp::kSetRecovering: {
      READ_OR_RETURN(pid, r.ReadProcessId());
      READ_OR_RETURN(recovering, r.ReadBool());
      db.SetRecovering(pid, recovering);
      return Status::Ok();
    }
    case JournalOp::kAppendNodeMessage: {
      READ_OR_RETURN(node, r.ReadNodeId());
      READ_OR_RETURN(id, r.ReadMessageId());
      READ_OR_RETURN(packet, r.ReadBytes());
      db.AppendNodeMessage(node, id, std::move(packet));
      return Status::Ok();
    }
    case JournalOp::kStampNodeMessage: {
      READ_OR_RETURN(node, r.ReadNodeId());
      READ_OR_RETURN(id, r.ReadMessageId());
      READ_OR_RETURN(step, r.ReadU64());
      db.StampNodeMessage(node, id, step);
      return Status::Ok();
    }
    case JournalOp::kStoreNodeCheckpoint: {
      READ_OR_RETURN(node, r.ReadNodeId());
      READ_OR_RETURN(image, r.ReadBytes());
      READ_OR_RETURN(step, r.ReadU64());
      db.StoreNodeCheckpoint(node, std::move(image), step);
      return Status::Ok();
    }
    case JournalOp::kRestartNumber: {
      READ_OR_RETURN(number, r.ReadU64());
      db.restart_number_ = number;
      return Status::Ok();
    }
    case JournalOp::kSnapshotBegin: {
      READ_OR_RETURN(version, r.ReadU32());
      if (version != 1) {
        return Corrupt("unsupported snapshot version");
      }
      // The snapshot supersedes everything applied so far.
      db.logs_.clear();
      db.node_logs_.clear();
      db.next_arrival_ = 1;
      db.restart_number_ = 0;
      db.messages_stored_ = 0;
      db.peak_bytes_ = 0;
      return Status::Ok();
    }
    case JournalOp::kSnapshotProcess:
      return ApplySnapshotProcess(db, r);
    case JournalOp::kSnapshotNode:
      return ApplySnapshotNode(db, r);
    case JournalOp::kSnapshotCounters: {
      READ_OR_RETURN(next_arrival, r.ReadU64());
      READ_OR_RETURN(restart_number, r.ReadU64());
      READ_OR_RETURN(messages_stored, r.ReadU64());
      READ_OR_RETURN(peak_bytes, r.ReadU64());
      db.next_arrival_ = next_arrival;
      db.restart_number_ = restart_number;
      db.messages_stored_ = messages_stored;
      db.peak_bytes_ = static_cast<size_t>(peak_bytes);
      return Status::Ok();
    }
    case JournalOp::kSnapshotEnd: {
      READ_OR_RETURN(count, r.ReadU64());
      (void)count;
      return Status::Ok();
    }
    case JournalOp::kInvalid:
      break;
  }
  return Corrupt("unknown op");
}

Status StorageJournal::ApplySnapshotProcess(StableStorage& db, Reader& r) {
  READ_OR_RETURN(pid, r.ReadProcessId());
  StableStorage::ProcessLog log;
  READ_OR_RETURN(program, r.ReadString());
  log.info.program = std::move(program);
  READ_OR_RETURN(nlinks, r.ReadU32());
  for (uint32_t i = 0; i < nlinks; ++i) {
    auto link = ParseLink(r);
    if (!link.ok()) {
      return link.status();
    }
    log.info.initial_links.push_back(*link);
  }
  READ_OR_RETURN(home, r.ReadNodeId());
  log.info.home_node = home;
  READ_OR_RETURN(destroyed, r.ReadBool());
  log.info.destroyed = destroyed;
  READ_OR_RETURN(recoverable, r.ReadBool());
  log.info.recoverable = recoverable;
  READ_OR_RETURN(recovering, r.ReadBool());
  log.info.recovering = recovering;
  READ_OR_RETURN(has_checkpoint, r.ReadBool());
  log.info.has_checkpoint = has_checkpoint;
  READ_OR_RETURN(checkpoint_reads, r.ReadU64());
  log.info.checkpoint_reads = checkpoint_reads;
  READ_OR_RETURN(last_sent, r.ReadU64());
  log.info.last_sent_seq = last_sent;
  READ_OR_RETURN(checkpoint, r.ReadBytes());
  log.checkpoint = std::move(checkpoint);
  log.info.checkpoint_bytes = log.checkpoint.size();
  READ_OR_RETURN(nentries, r.ReadU32());
  for (uint32_t i = 0; i < nentries; ++i) {
    LogEntry entry;
    READ_OR_RETURN(id, r.ReadMessageId());
    entry.id = id;
    READ_OR_RETURN(arrival, r.ReadU64());
    entry.arrival = arrival;
    READ_OR_RETURN(read, r.ReadBool());
    entry.read = read;
    READ_OR_RETURN(read_seq, r.ReadU64());
    entry.read_seq = read_seq;
    READ_OR_RETURN(packet, r.ReadBytes());
    entry.packet = std::move(packet);
    log.info.log_bytes += entry.packet.size();
    log.entries.push_back(std::move(entry));
  }
  log.info.log_entries = log.entries.size();
  READ_OR_RETURN(next_read_seq, r.ReadU64());
  log.next_read_seq = next_read_seq;
  Status status = ReadMessageIdSet(r, log.ever_read);
  if (!status.ok()) {
    return status;
  }
  status = ReadMessageIdSet(r, log.ever_logged);
  if (!status.ok()) {
    return status;
  }
  // The snapshot carries the entries but not the derived replay index;
  // recompute it so a rebuilt database replays as fast as a live one.
  StableStorage::RebuildReplayIndex(log);
  db.logs_[pid] = std::move(log);
  return Status::Ok();
}

Status StorageJournal::ApplySnapshotNode(StableStorage& db, Reader& r) {
  READ_OR_RETURN(node, r.ReadNodeId());
  StableStorage::NodeLog log;
  READ_OR_RETURN(has_checkpoint, r.ReadBool());
  log.has_checkpoint = has_checkpoint;
  READ_OR_RETURN(checkpoint, r.ReadBytes());
  log.checkpoint = std::move(checkpoint);
  READ_OR_RETURN(step, r.ReadU64());
  log.checkpoint_step = step;
  READ_OR_RETURN(nentries, r.ReadU32());
  for (uint32_t i = 0; i < nentries; ++i) {
    StableStorage::NodeLogEntry entry;
    READ_OR_RETURN(id, r.ReadMessageId());
    entry.id = id;
    READ_OR_RETURN(arrival, r.ReadU64());
    entry.arrival = arrival;
    READ_OR_RETURN(estep, r.ReadU64());
    entry.step = estep;
    READ_OR_RETURN(stamped, r.ReadBool());
    entry.stamped = stamped;
    READ_OR_RETURN(packet, r.ReadBytes());
    entry.packet = std::move(packet);
    log.entries.push_back(std::move(entry));
  }
  Status status = ReadMessageIdSet(r, log.ever_logged);
  if (!status.ok()) {
    return status;
  }
  db.node_logs_[node] = std::move(log);
  return Status::Ok();
}

}  // namespace publishing
