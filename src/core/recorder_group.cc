#include "src/core/recorder_group.h"

#include "src/net/link_layer.h"

namespace publishing {

RecorderGroup::RecorderGroup(Cluster* cluster, size_t member_count,
                             RecoveryManagerOptions recovery_options,
                             BackendFactory backend_factory)
    : cluster_(cluster) {
  for (size_t i = 0; i < member_count; ++i) {
    auto member = std::make_unique<Member>();
    member->storage = std::make_unique<StableStorage>();
    if (backend_factory) {
      member->backend = backend_factory(i);
      if (member->backend != nullptr) {
        member->storage->AttachBackend(member->backend.get());
      }
    }
    RecorderOptions options;
    options.node = (i == 0) ? Cluster::kRecorderNode : NodeId{1000 + static_cast<uint32_t>(i)};
    member->recorder = std::make_unique<Recorder>(&cluster_->sim(), &cluster_->medium(),
                                                  &cluster_->names(), member->storage.get(),
                                                  options);
    // The group is the sole promiscuous listener; members only keep their
    // endpoints attached.
    cluster_->medium().DetachListener(member->recorder.get());
    member->manager = std::make_unique<RecoveryManager>(cluster_, member->recorder.get(),
                                                        recovery_options);
    const size_t index = i;
    member->manager->set_responsibility_filter([this, index](NodeId node) {
      auto responsible = ResponsibleFor(node);
      return responsible.ok() && *responsible == index;
    });
    member->manager->Start();
    members_.push_back(std::move(member));
  }
  cluster_->medium().AttachListener(this);
  for (NodeId node : cluster_->node_ids()) {
    cluster_->kernel(node)->set_read_order_feed(this);
  }
}

RecorderGroup::~RecorderGroup() { cluster_->medium().DetachListener(this); }

bool RecorderGroup::OnWireFrame(const Frame& frame) {
  // Parse once, fan out to every functioning member.
  if (frame.type == FrameType::kAck) {
    bool any_up = false;
    for (auto& member : members_) {
      if (!member->recorder->down()) {
        any_up = true;
        member->recorder->OnWireFrame(frame);
      }
    }
    return any_up;
  }
  if (frame.src == Cluster::kRecorderNode || frame.src.value >= 1000) {
    return true;  // One of our own transmissions.
  }
  auto body = LinkUnwrap(frame.payload);
  if (!body.ok()) {
    return false;
  }
  auto packet = ParsePacket(*body);
  if (!packet.ok()) {
    return false;
  }

  bool any_up = false;
  bool all_functioning_recorded = true;
  for (auto& member : members_) {
    if (member->recorder->down()) {
      continue;
    }
    any_up = true;
    if (!member->recorder->RecordParsedPacket(*packet, *body)) {
      all_functioning_recorded = false;
    }
    // Secondaries overhear the notices the primary receives over its
    // endpoint; applying them at the tap keeps every member's database
    // current (idempotent, so the primary applying twice is harmless —
    // except for the primary itself, which applies via its endpoint).
    if (member->recorder->node() != Cluster::kRecorderNode && packet->header.control() &&
        packet->header.dst_process ==
            ProcessId{Cluster::kRecorderNode, NodeKernel::kKernelLocalId}) {
      member->recorder->ApplyNotice(*packet);
      if (PeekOp(packet->body) == KernelOp::kNoticeCrash) {
        auto target = DecodeRecoveryTarget(packet->body);
        if (target.ok()) {
          member->manager->OnProcessCrashNotice(target->pid);
        }
      }
    }
  }
  return any_up && all_functioning_recorded;
}

void RecorderGroup::OnMessageRead(const ProcessId& reader, const MessageId& id) {
  for (auto& member : members_) {
    member->recorder->OnMessageRead(reader, id);
  }
}

void RecorderGroup::SetPriorityVector(NodeId node, std::vector<size_t> order) {
  priority_vectors_[node] = std::move(order);
}

std::vector<size_t> RecorderGroup::PriorityFor(NodeId node) const {
  auto it = priority_vectors_.find(node);
  if (it != priority_vectors_.end()) {
    return it->second;
  }
  std::vector<size_t> order(members_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  return order;
}

Result<size_t> RecorderGroup::ResponsibleFor(NodeId node) const {
  for (size_t index : PriorityFor(node)) {
    if (index < members_.size() && !members_[index]->recorder->down()) {
      return index;
    }
  }
  return Status(StatusCode::kUnavailable, "no functioning recorder");
}

void RecorderGroup::CrashRecorder(size_t index) { members_[index]->recorder->Crash(); }

void RecorderGroup::RestartRecorder(size_t index) { members_[index]->recorder->Restart(); }

bool RecorderGroup::AllDown() const {
  for (const auto& member : members_) {
    if (!member->recorder->down()) {
      return false;
    }
  }
  return true;
}

}  // namespace publishing
