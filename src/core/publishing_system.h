// PublishingSystem: the top-level facade a downstream user instantiates.
//
// Composes the full Figure 3.2 picture: a Cluster of DEMOS/MP nodes on a
// shared medium, the recorder with its stable storage, the recovery manager
// with its watchdogs, and (optionally) a checkpoint policy.  Provides the
// fault-injection and run-control surface the examples, tests, and benches
// drive.
//
// Typical use:
//
//   PublishingSystemConfig config;
//   config.cluster.node_count = 3;
//   PublishingSystem system(config);
//   system.cluster().registry().Register("worker", ...);
//   auto pid = system.cluster().Spawn(NodeId{2}, "worker");
//   system.RunFor(Seconds(1));
//   system.CrashProcess(*pid);          // transparent recovery kicks in
//   system.RunUntilQuiet(Seconds(5));

#ifndef SRC_CORE_PUBLISHING_SYSTEM_H_
#define SRC_CORE_PUBLISHING_SYSTEM_H_

#include <memory>

#include "src/common/buffer.h"
#include "src/core/checkpoint_policy.h"
#include "src/core/recorder.h"
#include "src/core/recovery_manager.h"
#include "src/demos/cluster.h"

namespace publishing {

struct PublishingSystemConfig {
  ClusterConfig cluster;
  RecorderOptions recorder;
  RecoveryManagerOptions recovery;
  bool start_recovery_manager = true;
  // §6.6.2: run the whole system in node-unit mode — intranode messages stay
  // off the network and crashed nodes are recovered as units from node
  // checkpoints plus step-stamped extranode replay.
  bool node_unit_mode = false;
  // Durable mode (src/storage): every effective stable-storage mutation is
  // journaled through this backend (typically a Wal).  Not owned; must
  // outlive the system.  nullptr = in-memory only (the default).
  StorageBackend* storage_backend = nullptr;
  // Seed the recorder's database from a previously recovered image
  // (RecoverStableStorage) instead of starting empty — the §4.5 rebuild
  // path.  Moved from; not owned.
  StableStorage* adopt_storage = nullptr;
};

class PublishingSystem {
 public:
  explicit PublishingSystem(PublishingSystemConfig config);
  ~PublishingSystem();

  PublishingSystem(const PublishingSystem&) = delete;
  PublishingSystem& operator=(const PublishingSystem&) = delete;

  Cluster& cluster() { return *cluster_; }
  Simulator& sim() { return cluster_->sim(); }
  Recorder& recorder() { return *recorder_; }
  RecoveryManager& recovery() { return *recovery_; }
  StableStorage& storage() { return storage_; }

  // Fans one Observability value out to every layer: simulator, medium (with
  // a label naming the configured medium kind), the recorder and its
  // endpoint, every node kernel's endpoint, the recovery manager, and the
  // storage backend if one is attached.  Pass a default-constructed value to
  // detach everything.
  void EnableObservability(const Observability& obs);
  const Observability& observability() const { return obs_; }

  // Installs a checkpoint policy; replaces any previous one.
  void EnableCheckpointPolicy(std::unique_ptr<CheckpointPolicy> policy,
                              SimDuration poll_period = Millis(100));
  CheckpointScheduler* checkpoint_scheduler() { return checkpoint_scheduler_.get(); }

  // §6.6.2: periodic whole-node checkpoints (node-unit mode).  Captures that
  // land mid-handler are skipped and retried on the next tick.
  void EnableNodeCheckpointInterval(SimDuration period);

  // --- Fault injection ---
  Status CrashProcess(const ProcessId& pid);
  Status CrashNode(NodeId node);
  void CrashRecorder();
  void RestartRecorder() { recorder_->Restart(); }

  // --- Run control ---
  void RunFor(SimDuration span) { sim().RunFor(span); }
  // Runs until `pid` has finished recovering (or `deadline` virtual time
  // elapses).  Returns true on recovery.
  bool RunUntilRecovered(const ProcessId& pid, SimDuration deadline);

 private:
  PublishingSystemConfig config_;
  std::unique_ptr<Cluster> cluster_;
  StableStorage storage_;
  std::unique_ptr<Recorder> recorder_;
  std::unique_ptr<RecoveryManager> recovery_;
  std::unique_ptr<CheckpointScheduler> checkpoint_scheduler_;
  std::unique_ptr<PeriodicTask> node_checkpoint_task_;
  std::unique_ptr<BufferStatsSink> buffer_sink_;
  Observability obs_;
  uint64_t log_time_token_ = 0;
};

}  // namespace publishing

#endif  // SRC_CORE_PUBLISHING_SYSTEM_H_
