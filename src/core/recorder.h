// The recorder: publishing's central contribution (§3.3, §4.5).
//
// A passive promiscuous listener on the medium.  Every data frame it records
// goes into stable storage; a frame it fails to record is vetoed so that "no
// other processor correctly receives it" (§4.4.1) — the medium models
// provide the veto mechanics.  The recorder also owns a transport endpoint
// on the recording node for the traffic explicitly addressed to it:
// creation/destruction notices, crash traps, and checkpoint images.
//
// Crashing the recorder suspends all network traffic (every frame is vetoed
// while it is down, §3.3.4); restart bumps the stable-storage restart number
// and hands control to the recovery manager's state-query protocol.

#ifndef SRC_CORE_RECORDER_H_
#define SRC_CORE_RECORDER_H_

#include <functional>
#include <memory>

#include "src/core/stable_storage.h"
#include "src/demos/node_kernel.h"
#include "src/transport/endpoint.h"

namespace publishing {

// §5.2.2: per-message publishing cost depends on how deep in the protocol
// stack the recorder intercepts messages.
enum class PublishPath {
  kFullProtocol,  // Unmodified DEMOS/MP kernel as recorder software: 57 ms.
  kInlined,       // Subroutine calls replaced by inline routines: 12 ms.
  kMediaLayer,    // Interception at the media layer: the 0.8 ms design goal.
};

SimDuration PublishCpuCost(PublishPath path);

struct RecorderOptions {
  NodeId node{0};
  PublishPath path = PublishPath::kMediaLayer;
  // §6.6.2 node-unit mode: log per destination NODE (with execution-step
  // stamps) instead of per process; intranode traffic never reaches the wire
  // in this mode.
  bool node_unit = false;
  TransportOptions transport;
  // Multi-segment responsibility partition (src/internet).  When set, this
  // recorder records send watermarks only for frames whose *source* node it
  // is responsible for and publishes only messages whose *destination* node
  // it is responsible for; frames between two foreign nodes are in transit
  // through this segment and pass un-vetoed and unrecorded — their home
  // recorders overhear them on their own segments.  Broadcast destinations
  // inherit the source's scope (broadcasts never cross a gateway).  Null
  // (the default): responsible for every node, the single-segment paper
  // configuration.
  std::function<bool(NodeId)> responsible_for;
};

struct RecorderStats {
  uint64_t frames_seen = 0;
  uint64_t messages_published = 0;
  uint64_t bytes_published = 0;
  uint64_t acks_seen = 0;
  uint64_t control_seen = 0;
  uint64_t replay_seen = 0;
  uint64_t replay_bursts_seen = 0;    // Burst frames overheard on the wire.
  uint64_t replay_segments_seen = 0;  // Logged packets riding in those bursts.
  uint64_t checkpoints_stored = 0;
  uint64_t transit_skipped = 0;      // Neither endpoint in scope (internet).
  uint64_t foreign_dst_skipped = 0;  // Sender in scope, destination not:
                                     // watermark recorded, publish left to
                                     // the destination's home recorder.
  SimDuration publish_cpu = 0;
};

class Recorder : public PromiscuousListener, public ReadOrderFeed {
 public:
  Recorder(Simulator* sim, Medium* medium, NameService* names, StableStorage* storage,
           RecorderOptions options);
  ~Recorder() override;

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // PromiscuousListener: returns false (veto) while down or on parse failure.
  bool OnWireFrame(const Frame& frame) override;

  // ReadOrderFeed: the kernels report each message read (models the paper's
  // passive ack tracing + out-of-order notices, §4.4.1/§4.4.2).
  void OnMessageRead(const ProcessId& reader, const MessageId& id) override;
  // §6.6.2: a node reported the scheduler position of an extranode arrival.
  void OnExtranodeArrival(NodeId node, const MessageId& id, uint64_t step) override;

  // --- Crash / restart (§3.3.4) ---
  void Crash();
  void Restart();
  bool down() const { return down_; }

  // Invoked with the pid from each kNoticeCrash trap.
  void set_crash_notice_handler(std::function<void(const ProcessId&)> handler) {
    crash_notice_handler_ = std::move(handler);
  }
  // Invoked after Restart() with the new restart number.
  void set_restart_handler(std::function<void(uint64_t)> handler) {
    restart_handler_ = std::move(handler);
  }
  // First crack at packets addressed to the recording node that are not
  // recorder notices (recovery-process traffic).  Return true if consumed.
  void set_packet_handler(std::function<bool(const Packet&)> handler) {
    packet_handler_ = std::move(handler);
  }

  // Applies a creation/destruction/checkpoint notice to stable storage.
  // Normally invoked from this recorder's own endpoint; in multi-recorder
  // groups (§6.3) the secondaries overhear notices off the wire and apply
  // them here.  Returns true if the packet was a notice.
  bool ApplyNotice(const Packet& packet);

  // Records one overheard data packet.  `wire_body` is the link-unwrapped
  // frame payload — the exact SerializePacket bytes, shared with the frame —
  // and `packet` its parsed form; appending `wire_body` directly is what
  // keeps the publish path zero-copy (no re-serialization).  Returns false if
  // this recorder is down.  Factored out so a RecorderGroup can share the
  // parse across members.
  bool RecordParsedPacket(const Packet& packet, const Buffer& wire_body);

  // Resolves the recorder's instruments (recorder.* series) and keeps the
  // tracer for per-message publish spans.  Forwards to the owned endpoint.
  void SetObservability(const Observability& obs);

  ProcessId RecorderPid() const { return ProcessId{options_.node, NodeKernel::kKernelLocalId}; }
  NodeId node() const { return options_.node; }
  StableStorage& storage() { return *storage_; }
  const StableStorage& storage() const { return *storage_; }
  TransportEndpoint& endpoint() { return *endpoint_; }
  const RecorderStats& stats() const { return stats_; }

 private:
  void OnPacketDelivered(const Packet& packet);

  Simulator* sim_;
  NameService* names_;
  StableStorage* storage_;
  RecorderOptions options_;
  std::unique_ptr<TransportEndpoint> endpoint_;
  bool down_ = false;
  std::function<void(const ProcessId&)> crash_notice_handler_;
  std::function<void(uint64_t)> restart_handler_;
  std::function<bool(const Packet&)> packet_handler_;
  RecorderStats stats_;

  // Observability handles (null = detached).
  Tracer* tracer_ = nullptr;
  LifecycleTracker* lifecycle_ = nullptr;
  Counter* obs_frames_seen_ = nullptr;
  Counter* obs_messages_published_ = nullptr;
  Counter* obs_bytes_published_ = nullptr;
  Counter* obs_checkpoints_stored_ = nullptr;
  Histogram* obs_publish_cost_ = nullptr;
};

}  // namespace publishing

#endif  // SRC_CORE_RECORDER_H_
