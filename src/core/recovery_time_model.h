// The recovery-time bound model of §3.2.3 and Young's optimal checkpoint
// interval (§3.2.4).
//
//   t_max = t_reload + t_replay + t_compute
//         = (t_cfix + t_page * l_check)
//         + (t_mfix * n_msgs + t_byte * sum(l_msg))
//         + (elapsed_since_checkpoint / f_cpu)
//
// The load-dependent parameters are empirical; the process-specific terms
// are accumulated by the kernel "each time a process is checkpointed or
// receives a message".  The RecoveryBound checkpoint policy checkpoints a
// process whenever its t_max exceeds its specified recovery-time budget,
// guaranteeing the bound.

#ifndef SRC_CORE_RECOVERY_TIME_MODEL_H_
#define SRC_CORE_RECOVERY_TIME_MODEL_H_

#include <cmath>
#include <cstdint>

#include "src/sim/time.h"

namespace publishing {

// Load-dependent parameters (§3.2.3), defaulted to the worked example.
struct RecoveryTimeParams {
  SimDuration t_cfix = Millis(100);   // Fixed per-process reload cost.
  SimDuration t_page = Millis(10);    // Per checkpoint page reloaded.
  SimDuration t_mfix = Millis(2);     // Per message looked up and replayed.
  SimDuration t_byte = Micros(10);    // Per message byte replayed (0.01 ms).
  double f_cpu = 0.5;                 // CPU fraction available to recovery.
};

// Process-specific accumulator.
class RecoveryTimeModel {
 public:
  explicit RecoveryTimeModel(RecoveryTimeParams params = {}) : params_(params) {}

  // Call when the process is checkpointed: `pages` is the checkpoint length
  // in pages, `now` the capture time.
  void OnCheckpoint(uint64_t pages, SimTime now) {
    checkpoint_pages_ = pages;
    checkpoint_time_ = now;
    messages_since_ = 0;
    message_bytes_since_ = 0;
  }

  // Call for every message the process receives.
  void OnMessage(uint64_t bytes) {
    ++messages_since_;
    message_bytes_since_ += bytes;
  }

  SimDuration ReloadTime() const {
    return params_.t_cfix + params_.t_page * static_cast<SimDuration>(checkpoint_pages_);
  }

  SimDuration ReplayTime() const {
    return params_.t_mfix * static_cast<SimDuration>(messages_since_) +
           params_.t_byte * static_cast<SimDuration>(message_bytes_since_);
  }

  SimDuration ComputeTime(SimTime now) const {
    double since = static_cast<double>(now - checkpoint_time_);
    return static_cast<SimDuration>(since / params_.f_cpu);
  }

  // The §3.2.3 upper bound (serial composition of the three phases).
  SimDuration MaxRecoveryTime(SimTime now) const {
    return ReloadTime() + ReplayTime() + ComputeTime(now);
  }

  uint64_t messages_since_checkpoint() const { return messages_since_; }
  uint64_t bytes_since_checkpoint() const { return message_bytes_since_; }
  const RecoveryTimeParams& params() const { return params_; }

 private:
  RecoveryTimeParams params_;
  uint64_t checkpoint_pages_ = 0;
  SimTime checkpoint_time_ = 0;
  uint64_t messages_since_ = 0;
  uint64_t message_bytes_since_ = 0;
};

// Young's first-order optimum checkpoint interval (§3.2.4):
// T_interval = sqrt(2 * T_save * T_fail).
inline SimDuration YoungOptimalInterval(SimDuration checkpoint_save_time,
                                        SimDuration mean_time_between_failures) {
  double product = 2.0 * static_cast<double>(checkpoint_save_time) *
                   static_cast<double>(mean_time_between_failures);
  return static_cast<SimDuration>(std::sqrt(product));
}

// Young's expected overhead per failure interval for a given checkpoint
// interval: time spent writing checkpoints plus expected recomputation.
// Used by the checkpoint-interval ablation bench.
inline double YoungExpectedOverheadFraction(SimDuration interval, SimDuration save_time,
                                            SimDuration mtbf) {
  double ti = static_cast<double>(interval);
  double ts = static_cast<double>(save_time);
  double tf = static_cast<double>(mtbf);
  // Checkpointing cost fraction + expected lost work fraction.
  return ts / ti + (ti / 2.0 + ts) / tf;
}

}  // namespace publishing

#endif  // SRC_CORE_RECOVERY_TIME_MODEL_H_
