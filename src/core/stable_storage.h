// The recorder's stable storage (§3.3.1, §4.5).
//
// Holds, per process, exactly the database entry the paper enumerates:
//   * the process identifier,
//   * the identifier of the most recent message sent by the process,
//   * the messages received since the last checkpoint (with read order),
//   * the last checkpoint,
//   * whether or not the process is recovering,
// plus the restart counter used by the recorder-restart protocol (§3.4).
//
// The store survives recorder crashes by construction: the Recorder object
// only keeps summaries; crash/restart drops the Recorder's volatile state
// and rebuilds from this object ("it is possible to rebuild the data base
// from the disk", §4.5).  Disk-page accounting (4 KB pages, compaction on
// checkpoint) models the storage-cost numbers of §5.1.

#ifndef SRC_CORE_STABLE_STORAGE_H_
#define SRC_CORE_STABLE_STORAGE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/ids.h"
#include "src/common/serialization.h"
#include "src/common/status.h"
#include "src/demos/link.h"
#include "src/obs/lifecycle.h"
#include "src/storage/storage_backend.h"

namespace publishing {

// One published message in a process's input stream.
struct LogEntry {
  MessageId id;
  uint64_t arrival = 0;   // Monotonic arrival index at the recorder.
  // Serialized transport packet (replayable as-is).  A shared view of the
  // overheard wire bytes: the recorder appends the unwrapped frame payload
  // without re-serializing, so the entry and the frame share one storage.
  Buffer packet;
  bool read = false;
  uint64_t read_seq = 0;  // Position in the process's read stream.
};

// Zero-copy walk over one process's replay stream, in replay order (read
// entries in read order, then unread entries in arrival order).  Each item
// shares the stored packet's Buffer storage — assembling or walking a cursor
// never materializes payload bytes.  The cursor is a snapshot: entries
// appended to the log after construction (live traffic published while a
// recovery is in flight) are not visible through it, which is exactly the
// snapshot semantics BeginReplay depends on.
class ReplayCursor {
 public:
  ReplayCursor() = default;
  explicit ReplayCursor(std::vector<LogEntry> entries) : entries_(std::move(entries)) {
    for (const LogEntry& entry : entries_) {
      payload_bytes_ += entry.packet.size();
    }
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  // Total logged payload bytes the cursor spans (drives replay back-pressure
  // budgets without touching the payloads).
  size_t payload_bytes() const { return payload_bytes_; }

  const LogEntry& operator[](size_t i) const { return entries_[i]; }
  std::vector<LogEntry>::const_iterator begin() const { return entries_.begin(); }
  std::vector<LogEntry>::const_iterator end() const { return entries_.end(); }

  // Compatibility escape hatch for callers that still want the materialized
  // list (ReplayList).  Rvalue-only: the cursor is spent afterwards.
  std::vector<LogEntry> TakeEntries() && { return std::move(entries_); }

 private:
  std::vector<LogEntry> entries_;
  size_t payload_bytes_ = 0;
};

struct ProcessLogInfo {
  std::string program;
  std::vector<Link> initial_links;
  NodeId home_node;
  bool destroyed = false;
  bool recoverable = true;  // §6.6.1: false = publish nothing for it.
  bool recovering = false;  // §3.3.1: part of the durable database entry.
  bool has_checkpoint = false;
  uint64_t checkpoint_reads = 0;   // reads_done at the stored checkpoint.
  uint64_t last_sent_seq = 0;      // Highest send sequence published.
  size_t log_bytes = 0;            // Published bytes retained for replay.
  size_t log_entries = 0;          // Messages retained for replay.
  size_t checkpoint_bytes = 0;
};

class StableStorage {
 public:
  static constexpr size_t kPageBytes = 4096;

  StableStorage() = default;
  // No copying: a copy would alias the attached backend and double-journal.
  // Moves re-point the backend's snapshot source at the new object.
  StableStorage(const StableStorage&) = delete;
  StableStorage& operator=(const StableStorage&) = delete;
  StableStorage(StableStorage&& other) noexcept;
  StableStorage& operator=(StableStorage&& other) noexcept;

  // --- Durable backend (src/storage) ---
  // Attaches a journaling backend: every *effective* mutation from here on
  // is appended to it as a serialized record (see StorageJournal), making
  // the §4.5 claim literal — the database can be rebuilt from disk via
  // RecoverStableStorage().  nullptr detaches.  The in-memory model (no
  // backend) remains the default.
  void AttachBackend(StorageBackend* backend);
  StorageBackend* backend() const { return backend_; }
  // Clock stamped onto journal appends; lets the backend group-commit over
  // virtual-time windows.  The Recorder wires this to its simulator.
  void set_clock(std::function<uint64_t()> clock) { clock_ = std::move(clock); }
  // Forces every journaled record durable (no-op without a backend).
  Status Flush();

  // Lifecycle sink: effective message appends observe kDurable (the append
  // is journaled — or, without a backend, stable by the in-memory model).
  // `node` is the recorder node the storage belongs to.  nullptr detaches.
  void SetLifecycle(LifecycleTracker* lifecycle, NodeId node) {
    lifecycle_ = lifecycle;
    lifecycle_node_ = node;
  }

  // --- Process lifecycle ---
  void RecordCreation(const ProcessId& pid, const std::string& program,
                      std::vector<Link> initial_links, NodeId home_node,
                      bool recoverable = true);
  void RecordDestruction(const ProcessId& pid);
  // Recovery onto a different node moves the process's home (§3.3.3 step 1).
  void SetHomeNode(const ProcessId& pid, NodeId node);
  bool Knows(const ProcessId& pid) const { return logs_.contains(pid); }

  // --- Publishing ---
  // Appends a published message for `pid`; creates an implicit entry if the
  // creation notice has not arrived yet.
  void AppendMessage(const ProcessId& pid, const MessageId& id, Buffer packet);
  // Records that `reader` consumed `id`.  Re-reads during replay (ids already
  // recorded as read) are ignored.
  void RecordRead(const ProcessId& reader, const MessageId& id);
  // Updates the highest-sent watermark for a sender.
  void RecordSent(const ProcessId& sender, uint64_t seq);

  // --- Checkpoints ---
  // Stores a checkpoint taken when the process had performed `reads_done`
  // reads, and discards the log entries it subsumes (§3.3.1: "After the
  // checkpoint has been reliably stored, older checkpoints and messages can
  // be discarded").
  void StoreCheckpoint(const ProcessId& pid, Bytes state, uint64_t reads_done);
  Result<Bytes> LoadCheckpoint(const ProcessId& pid) const;

  // §3.3.1's "whether or not the process is recovering", journaled so a
  // rebuilt recorder knows which recoveries its dead incarnation left
  // in flight.
  void SetRecovering(const ProcessId& pid, bool recovering);

  // --- Recovery support ---
  // Assembles the replay stream for `pid`: entries read since the checkpoint
  // in read order, then unread entries in arrival order (the queue at
  // crash).  O(k) in the number of replayed messages — the read order is
  // maintained incrementally at read time (read_order/by_id below), so no
  // re-sort happens here — and zero payload bytes are copied (every item
  // shares the stored Buffer).
  ReplayCursor Replay(const ProcessId& pid) const;
  // Compatibility wrapper over Replay() for callers wanting the materialized
  // vector.  Same order, same cost: no per-attempt re-sort, payloads shared.
  std::vector<LogEntry> ReplayList(const ProcessId& pid) const;
  Result<ProcessLogInfo> Info(const ProcessId& pid) const;
  uint64_t LastSent(const ProcessId& pid) const;
  // Every non-destroyed process the recorder believes should exist, by node.
  std::vector<ProcessId> ProcessesOnNode(NodeId node) const;
  std::vector<ProcessId> AllProcesses() const;
  // Highest local process id created on `node` (restart floor, §4.7).
  uint32_t LocalIdHighWater(NodeId node) const;

  // --- Node-unit recovery storage (§6.6.2) ---

  struct NodeLogEntry {
    MessageId id;
    uint64_t arrival = 0;
    uint64_t step = 0;     // Event-counter stamp; valid when `stamped`.
    bool stamped = false;  // False until the node reported the arrival.
    Buffer packet;         // Shared view of the overheard wire bytes.
  };

  // Appends an overheard extranode message for `node`.
  void AppendNodeMessage(NodeId node, const MessageId& id, Buffer packet);
  // Records the execution position at which `node` received message `id`.
  void StampNodeMessage(NodeId node, const MessageId& id, uint64_t step);
  // Stores a whole-node checkpoint and discards entries it subsumes.
  void StoreNodeCheckpoint(NodeId node, Bytes image, uint64_t node_step);
  struct NodeCheckpointInfo {
    Bytes image;
    uint64_t node_step = 0;
  };
  Result<NodeCheckpointInfo> LoadNodeCheckpoint(NodeId node) const;
  // Stamped entries newer than the checkpoint, in stamp order.  Unstamped
  // entries (the node never received them) are excluded: their senders are
  // still retransmitting and will deliver them live.
  std::vector<NodeLogEntry> NodeReplayList(NodeId node) const;

  // --- Recorder restart (§3.4) ---
  // Journaled and synced: the restart number must be durable before the
  // state-query protocol uses it to stamp queries.
  uint64_t IncrementRestartNumber();
  uint64_t restart_number() const { return restart_number_; }

  // --- Accounting (§5.1 storage results) ---
  size_t TotalBytes() const;
  size_t TotalPages() const;
  size_t PeakBytes() const { return peak_bytes_; }
  uint64_t messages_stored() const { return messages_stored_; }

 private:
  struct ProcessLog {
    ProcessLogInfo info;
    Bytes checkpoint;
    std::vector<LogEntry> entries;              // Arrival order.
    uint64_t next_read_seq = 1;
    std::unordered_set<MessageId> ever_read;    // Replay re-read filter.
    std::unordered_set<MessageId> ever_logged;  // Retransmit dedup: a frame
                                                // retransmitted because its
                                                // ack was lost must not be
                                                // logged twice.
    // Incremental replay index.  by_id maps a retained entry to its position
    // in `entries` (O(1) RecordRead instead of a linear scan); read_order
    // lists retained read entries in read_seq order (read_seq is monotonic,
    // so appends keep it sorted by construction).  Both are maintained at
    // publish/read time and compacted alongside the entries they index, so
    // replay assembly never re-sorts.
    std::unordered_map<MessageId, size_t> by_id;
    std::vector<MessageId> read_order;
  };

  struct NodeLog {
    bool has_checkpoint = false;
    Bytes checkpoint;
    uint64_t checkpoint_step = 0;
    std::vector<NodeLogEntry> entries;
    std::unordered_set<MessageId> ever_logged;
  };

  // StorageJournal serializes/restores the private image for snapshots and
  // applies journal records during rebuild.
  friend class StorageJournal;

  ProcessLog& Ensure(const ProcessId& pid);
  void RefreshAccounting();
  // Recomputes by_id/read_order from `entries` — the cold path used after
  // checkpoint compaction and snapshot restore (StorageJournal fills
  // `entries` directly); the hot path maintains both incrementally.
  static void RebuildReplayIndex(ProcessLog& log);
  void ObserveDurable(const MessageId& id) {
    if (lifecycle_ == nullptr) {
      return;
    }
    CausalContext ctx;
    ctx.id = id;
    ctx.origin = id.sender.origin;
    ctx.flags = kCausalGuaranteed;  // Only guaranteed traffic is published.
    lifecycle_->Observe(ctx, LifecycleStage::kDurable, lifecycle_node_);
  }
  // Appends one record to the attached backend (no-op without one).
  void Journal(Bytes record);

  std::map<ProcessId, ProcessLog> logs_;
  std::map<NodeId, NodeLog> node_logs_;
  uint64_t next_arrival_ = 1;
  uint64_t restart_number_ = 0;
  uint64_t messages_stored_ = 0;
  size_t peak_bytes_ = 0;
  StorageBackend* backend_ = nullptr;
  std::function<uint64_t()> clock_;
  LifecycleTracker* lifecycle_ = nullptr;
  NodeId lifecycle_node_;
};

}  // namespace publishing

#endif  // SRC_CORE_STABLE_STORAGE_H_
