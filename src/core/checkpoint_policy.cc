#include "src/core/checkpoint_policy.h"

namespace publishing {

CheckpointScheduler::CheckpointScheduler(Cluster* cluster, Recorder* recorder,
                                         std::unique_ptr<CheckpointPolicy> policy,
                                         SimDuration poll_period)
    : cluster_(cluster),
      recorder_(recorder),
      policy_(std::move(policy)),
      poll_period_(poll_period) {
  task_ = std::make_unique<PeriodicTask>(&cluster_->sim(), poll_period_, [this] { Poll(); });
}

CheckpointScheduler::~CheckpointScheduler() = default;

void CheckpointScheduler::Start() { task_->Start(); }

void CheckpointScheduler::Stop() { task_->Stop(); }

void CheckpointScheduler::Poll() {
  if (recorder_->down()) {
    return;  // Checkpoints could not be stored anyway.
  }
  ++stats_.polls;
  const SimTime now = cluster_->sim().Now();
  for (NodeId node : cluster_->node_ids()) {
    NodeKernel* kernel = cluster_->kernel(node);
    if (kernel == nullptr || !kernel->node_up()) {
      continue;
    }
    for (const ProcessId& pid : kernel->LiveProcesses()) {
      auto info = recorder_->storage().Info(pid);
      if (!info.ok() || info->destroyed) {
        continue;
      }
      CheckpointContext context;
      context.pid = pid;
      context.now = now;
      context.last_checkpoint = last_checkpoint_[pid];
      context.log_bytes = info->log_bytes;
      context.checkpoint_bytes = info->checkpoint_bytes;
      context.messages_since = info->log_entries;
      if (!policy_->ShouldCheckpoint(context)) {
        continue;
      }
      if (kernel->CheckpointProcess(pid).ok()) {
        last_checkpoint_[pid] = now;
        ++stats_.checkpoints_requested;
      }
    }
  }
}

}  // namespace publishing
