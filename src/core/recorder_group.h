// Multiple recorders for reliability (§6.3).
//
// "Network availability can be increased by providing multiple recorders.
// During normal operation, all recorders record all messages.  If there are
// n recorders, n-1 can fail before the network becomes unavailable."
//
// The group attaches to the medium as the single promiscuous listener and
// fans each frame out to every functioning member; a frame counts as
// published only when every *functioning* member recorded it (the surviving
// recorders "supply the acknowledges" for failed ones).  If every member is
// down, all frames are vetoed and the network suspends, exactly as in the
// single-recorder case.
//
// Recovery coordination uses per-node priority vectors V_i: the highest-
// priority functioning member recovers node i; lower-priority members defer
// and periodically re-check, taking over if the responsible recorder fails
// mid-recovery (RecoveryManager::RecheckTakeover).
//
// A restarted member's log misses the messages sent while it was down; per
// §6.3 it becomes fully current again as processes naturally checkpoint
// ("eventually, all the processes will naturally checkpoint or be forced
// to"), since checkpoint notices are overheard and subsume the missed tail.

#ifndef SRC_CORE_RECORDER_GROUP_H_
#define SRC_CORE_RECORDER_GROUP_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/recorder.h"
#include "src/core/recovery_manager.h"
#include "src/demos/cluster.h"

namespace publishing {

class RecorderGroup : public PromiscuousListener, public ReadOrderFeed {
 public:
  // Constructs one durable backend per member (index-keyed, so each member
  // gets its own log directory).  May return nullptr for in-memory members.
  using BackendFactory = std::function<std::unique_ptr<StorageBackend>(size_t index)>;

  // Members get endpoints on node 0 (primary — the address kernels send
  // notices and checkpoints to) and nodes 1000+i (secondaries, which
  // overhear notices promiscuously instead).  With a backend factory, each
  // member journals its database through its own backend (§6.3 durable
  // replicas: n recorders, n independent logs).
  RecorderGroup(Cluster* cluster, size_t member_count, RecoveryManagerOptions recovery_options,
                BackendFactory backend_factory = nullptr);
  ~RecorderGroup() override;

  RecorderGroup(const RecorderGroup&) = delete;
  RecorderGroup& operator=(const RecorderGroup&) = delete;

  // PromiscuousListener.
  bool OnWireFrame(const Frame& frame) override;
  // ReadOrderFeed: fan out to functioning members.
  void OnMessageRead(const ProcessId& reader, const MessageId& id) override;

  // Priority vector for `node` (§6.3): member indices, highest priority
  // first.  Defaults to {0, 1, ..., n-1} for every node.
  void SetPriorityVector(NodeId node, std::vector<size_t> order);

  // Index of the highest-priority functioning member for `node`.
  Result<size_t> ResponsibleFor(NodeId node) const;

  void CrashRecorder(size_t index);
  void RestartRecorder(size_t index);
  bool AllDown() const;

  size_t size() const { return members_.size(); }
  Recorder& recorder(size_t index) { return *members_[index]->recorder; }
  RecoveryManager& manager(size_t index) { return *members_[index]->manager; }
  StableStorage& storage(size_t index) { return *members_[index]->storage; }

 private:
  struct Member {
    // Declared before `storage` only for clarity of ownership; the storage
    // never touches the backend from its destructor.
    std::unique_ptr<StorageBackend> backend;
    std::unique_ptr<StableStorage> storage;
    std::unique_ptr<Recorder> recorder;
    std::unique_ptr<RecoveryManager> manager;
  };

  std::vector<size_t> PriorityFor(NodeId node) const;

  Cluster* cluster_;
  std::vector<std::unique_ptr<Member>> members_;
  std::map<NodeId, std::vector<size_t>> priority_vectors_;
};

}  // namespace publishing

#endif  // SRC_CORE_RECORDER_GROUP_H_
