// The recovery manager (§3.3.3) and its watchdog and recovery processes.
//
// Lives on the recording node.  It learns about crashes two ways:
//   * kNoticeCrash traps from kernels (single-process crashes, §3.3.2), and
//   * watchdog timeouts (processor crashes, §4.6: a watch process per node
//     periodically sends "are you alive" requests and declares the node
//     crashed when replies stop).
//
// For each crashed process it runs a recovery process (§4.7):
//   1. pick a node (same node, or a spare under the migration policy);
//   2. send a recreate request carrying the checkpoint (or the initial
//      image's name), the last-sent watermark, and the recovery round;
//   3. on recreate-ack, stream every logged message, flagged kFlagReplay, in
//      the recorded read order — by default as windowed replay bursts with
//      cumulative acks and go-back-N retransmission (DESIGN.md §11); the
//      paper's one-at-a-time stop-and-wait injection remains available as
//      the pipelined_replay=false baseline;
//   4. send recovery-complete; on its ack the process is live again.
//
// Under a mass crash the manager acts as a concurrent recovery scheduler:
// recoveries past max_concurrent_recoveries queue for admission, and a global
// outstanding-replay-byte budget back-pressures burst transmission so the
// recorder is never asked to push more replay payload than it can service.
//
// Recursive crashes (§3.5) abort the attempt and start a new round; the
// round number keeps stale completions from finishing the new attempt.
// After a recorder restart, the state-query protocol (§3.3.4) classifies
// every known process as functioning / crashed / recovering / unknown and
// restarts recovery where needed, ignoring replies from older restarts.

#ifndef SRC_CORE_RECOVERY_MANAGER_H_
#define SRC_CORE_RECOVERY_MANAGER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/core/recorder.h"
#include "src/demos/node_directory.h"

namespace publishing {

enum class NodeRecoveryPolicy {
  kRestartSameNode,  // Power-cycle the node, then recover its processes there.
  kMigrateToSpare,   // Recover the node's processes on a configured spare.
  kIgnore,           // Leave the node down (operator action "do not recover").
};

struct RecoveryManagerOptions {
  SimDuration watchdog_period = Millis(200);
  // A node is declared crashed when no pong has been seen for this long.
  SimDuration watchdog_timeout = Millis(900);
  NodeRecoveryPolicy node_policy = NodeRecoveryPolicy::kRestartSameNode;
  NodeId spare_node{};  // Target for kMigrateToSpare.
  // §6.6.2: recover crashed nodes as units (whole-node image + step-stamped
  // extranode replay) instead of process by process.  Requires the cluster
  // and recorder to run in node-unit mode too.
  bool node_unit = false;
  // Multi-recorder (§6.3): when this manager is not the responsible recorder
  // for a crashed node, it re-checks after this interval and takes over if
  // the node is still down and responsibility has shifted to it (i.e. the
  // higher-priority recorder failed during the recovery).
  SimDuration takeover_recheck = Seconds(2);

  // --- Pipelined replay (DESIGN.md §11) ---
  // When set, replay streams the log as windowed multi-message bursts with
  // cumulative acks and go-back-N retransmission instead of one guaranteed
  // stop-and-wait frame per logged message (the paper's §4.7 behaviour,
  // still available as the baseline with pipelined_replay = false).
  bool pipelined_replay = true;
  size_t replay_burst_max_messages = 16;   // Logged packets per burst frame.
  size_t replay_burst_max_bytes = 8192;    // Payload-byte cap per burst.
  size_t replay_window = 4;                // Bursts in flight per recovery.
  SimDuration replay_retransmit_timeout = Millis(80);
  SimDuration replay_max_retransmit_timeout = Millis(640);

  // --- Concurrent recovery scheduler ---
  // At most this many process recoveries run at once (0 = unlimited); the
  // rest queue and are admitted as slots free up.  The byte budget bounds
  // un-acked replay payload across ALL active recoveries — back-pressure so
  // a mass crash cannot swamp the recorder's CPU/medium (each recovery is
  // always allowed one burst in flight, so the budget cannot deadlock).
  size_t max_concurrent_recoveries = 8;
  size_t max_outstanding_replay_bytes = 64 * 1024;
};

struct RecoveryManagerStats {
  uint64_t process_recoveries_started = 0;
  uint64_t process_recoveries_completed = 0;
  uint64_t node_crashes_detected = 0;
  uint64_t recursive_recoveries = 0;
  uint64_t state_queries_sent = 0;
  uint64_t stale_state_replies_ignored = 0;
  uint64_t replay_bursts_sent = 0;
  uint64_t replay_burst_retransmits = 0;
  uint64_t recoveries_deferred = 0;  // Queued behind max_concurrent_recoveries.
};

class RecoveryManager {
 public:
  // `directory` scopes this manager: it watches and recovers the processes
  // on the directory's nodes (the whole installation for a Cluster; one
  // segment's nodes in the src/internet topology).
  RecoveryManager(NodeDirectory* directory, Recorder* recorder,
                  RecoveryManagerOptions options);
  ~RecoveryManager();

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  // Starts the watchdogs and hooks the recorder's notice/restart handlers.
  void Start();

  // Entry points (also reachable directly from tests).
  void OnProcessCrashNotice(const ProcessId& pid);
  void OnRecorderRestart(uint64_t restart_number);
  void TriggerNodeRecovery(NodeId node);

  bool IsRecovering(const ProcessId& pid) const {
    return recoveries_.contains(pid) || pending_set_.contains(pid);
  }
  size_t active_recoveries() const { return recoveries_.size(); }
  size_t pending_recoveries() const { return pending_.size(); }
  size_t outstanding_replay_bytes() const { return outstanding_replay_bytes_; }
  const RecoveryManagerStats& stats() const { return stats_; }

  // Invoked each time a process recovery finishes (tests use this to wait).
  void set_recovery_done_callback(std::function<void(const ProcessId&)> cb) {
    recovery_done_ = std::move(cb);
  }

  // Multi-recorder coordination (§6.3): consulted before this manager acts
  // on a crash.  Null (default) means "always responsible" — the
  // single-recorder configuration.
  void set_responsibility_filter(std::function<bool(NodeId)> filter) {
    responsibility_ = std::move(filter);
  }

  // Resolves the manager's instruments (recovery.* series) and keeps the
  // tracer for the crash → replay → caught-up recovery timeline.
  void SetObservability(const Observability& obs);

 private:
  enum class Phase { kAwaitRecreateAck, kReplaying, kAwaitCompleteAck };

  // One burst frame's worth of logged packets: shared views into stable
  // storage, partitioned once from the replay cursor.
  struct ReplayBurstBuffers {
    std::vector<Buffer> segments;
    size_t bytes = 0;  // Sum of segment payload sizes.
  };

  struct RecoveryProcess {
    ProcessId target;       // Process being recovered.
    ProcessId rproc;        // The recovery process's own network identity.
    NodeId node;            // Node the process is being recreated on.
    uint64_t round = 0;
    Phase phase = Phase::kAwaitRecreateAck;
    // Pipelined replay window state (Phase::kReplaying).
    std::vector<ReplayBurstBuffers> bursts;
    size_t next_burst = 0;       // Index of the next unsent burst.
    uint64_t highest_acked = 0;  // Bursts [0, highest_acked) cumulatively acked.
    size_t bytes_in_flight = 0;  // Un-acked payload bytes, counted once.
    EventId retransmit_timer;    // Go-back-N timer; invalid when idle.
    SimDuration retransmit_timeout = 0;
    uint64_t span_id = 0;          // Open recovery.process span, 0 = none.
    uint64_t replay_span_id = 0;   // Open recovery.replay span, 0 = none.
  };

  struct NodeWatch {
    std::unique_ptr<PeriodicTask> task;
    SimTime last_pong = 0;
    bool declared_down = false;
    uint64_t ping_nonce = 0;
  };

  // §6.6.2 whole-node recovery attempt.
  struct NodeRecovery {
    NodeId node;
    ProcessId rproc;
    uint64_t round = 0;
    Phase phase = Phase::kAwaitRecreateAck;
    uint64_t span_id = 0;          // Open recovery.process span, 0 = none.
    uint64_t replay_span_id = 0;   // Open recovery.replay span, 0 = none.
  };

  void StartRecovery(const ProcessId& pid, NodeId target_node);
  void AdmitRecovery(const ProcessId& pid, NodeId target_node);
  void AdmitPending();
  void BeginReplay(RecoveryProcess& rp);
  void PumpReplayWindow(RecoveryProcess& rp);
  void PumpAllReplaying();
  void SendBurst(RecoveryProcess& rp, size_t index);
  void ArmReplayTimer(RecoveryProcess& rp);
  void OnReplayTimeout(const ProcessId& pid, uint64_t round);
  void FinishReplay(RecoveryProcess& rp);
  // Cancels the go-back-N timer and returns un-acked bytes to the global
  // budget; required before erasing a recovery in any phase.
  void ReleaseReplayState(RecoveryProcess& rp);
  void StartNodeRecovery(NodeId node);
  void BeginNodeReplay(NodeRecovery& nr);
  bool HandlePacket(const Packet& packet);
  void HandlePong(NodeId node);
  void WatchdogTick(NodeId node);
  void DeclareNodeCrashed(NodeId node);
  void RecheckTakeover(NodeId node);
  void SendFromRecoveryPid(const ProcessId& rproc, const ProcessId& dst_kernel, Bytes body);
  uint64_t seq_for(const ProcessId& rproc);

  NodeDirectory* directory_;
  Recorder* recorder_;
  RecoveryManagerOptions options_;
  Simulator* sim_;

  std::map<ProcessId, RecoveryProcess> recoveries_;
  std::map<NodeId, NodeRecovery> node_recoveries_;
  // Admission queue: crashes past the concurrency cap wait here in FIFO
  // order and are admitted as active recoveries complete or abort.
  std::deque<std::pair<ProcessId, NodeId>> pending_;
  std::set<ProcessId> pending_set_;
  size_t outstanding_replay_bytes_ = 0;  // Across all active recoveries.
  std::unordered_map<ProcessId, uint64_t> rproc_seqs_;
  std::map<NodeId, NodeWatch> watches_;
  uint32_t next_rproc_local_ = 100;
  uint64_t next_round_ = 1;
  uint64_t current_restart_number_ = 0;
  RecoveryManagerStats stats_;
  std::function<void(const ProcessId&)> recovery_done_;
  std::function<bool(NodeId)> responsibility_;

  // Observability handles (null = detached).
  Tracer* tracer_ = nullptr;
  Counter* obs_recoveries_started_ = nullptr;
  Counter* obs_recoveries_completed_ = nullptr;
  Counter* obs_node_crashes_ = nullptr;
  Counter* obs_replayed_messages_ = nullptr;
  Counter* obs_replay_bursts_ = nullptr;
  Counter* obs_replay_burst_retransmits_ = nullptr;
  Counter* obs_recoveries_deferred_ = nullptr;
};

}  // namespace publishing

#endif  // SRC_CORE_RECOVERY_MANAGER_H_
