// The recovery manager (§3.3.3) and its watchdog and recovery processes.
//
// Lives on the recording node.  It learns about crashes two ways:
//   * kNoticeCrash traps from kernels (single-process crashes, §3.3.2), and
//   * watchdog timeouts (processor crashes, §4.6: a watch process per node
//     periodically sends "are you alive" requests and declares the node
//     crashed when replies stop).
//
// For each crashed process it runs a recovery process (§4.7):
//   1. pick a node (same node, or a spare under the migration policy);
//   2. send a recreate request carrying the checkpoint (or the initial
//      image's name), the last-sent watermark, and the recovery round;
//   3. on recreate-ack, inject every logged message, flagged kFlagReplay, in
//      the recorded read order;
//   4. send recovery-complete; on its ack the process is live again.
//
// Recursive crashes (§3.5) abort the attempt and start a new round; the
// round number keeps stale completions from finishing the new attempt.
// After a recorder restart, the state-query protocol (§3.3.4) classifies
// every known process as functioning / crashed / recovering / unknown and
// restarts recovery where needed, ignoring replies from older restarts.

#ifndef SRC_CORE_RECOVERY_MANAGER_H_
#define SRC_CORE_RECOVERY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/recorder.h"
#include "src/demos/cluster.h"

namespace publishing {

enum class NodeRecoveryPolicy {
  kRestartSameNode,  // Power-cycle the node, then recover its processes there.
  kMigrateToSpare,   // Recover the node's processes on a configured spare.
  kIgnore,           // Leave the node down (operator action "do not recover").
};

struct RecoveryManagerOptions {
  SimDuration watchdog_period = Millis(200);
  // A node is declared crashed when no pong has been seen for this long.
  SimDuration watchdog_timeout = Millis(900);
  NodeRecoveryPolicy node_policy = NodeRecoveryPolicy::kRestartSameNode;
  NodeId spare_node{};  // Target for kMigrateToSpare.
  // §6.6.2: recover crashed nodes as units (whole-node image + step-stamped
  // extranode replay) instead of process by process.  Requires the cluster
  // and recorder to run in node-unit mode too.
  bool node_unit = false;
  // Multi-recorder (§6.3): when this manager is not the responsible recorder
  // for a crashed node, it re-checks after this interval and takes over if
  // the node is still down and responsibility has shifted to it (i.e. the
  // higher-priority recorder failed during the recovery).
  SimDuration takeover_recheck = Seconds(2);
};

struct RecoveryManagerStats {
  uint64_t process_recoveries_started = 0;
  uint64_t process_recoveries_completed = 0;
  uint64_t node_crashes_detected = 0;
  uint64_t recursive_recoveries = 0;
  uint64_t state_queries_sent = 0;
  uint64_t stale_state_replies_ignored = 0;
};

class RecoveryManager {
 public:
  RecoveryManager(Cluster* cluster, Recorder* recorder, RecoveryManagerOptions options);
  ~RecoveryManager();

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  // Starts the watchdogs and hooks the recorder's notice/restart handlers.
  void Start();

  // Entry points (also reachable directly from tests).
  void OnProcessCrashNotice(const ProcessId& pid);
  void OnRecorderRestart(uint64_t restart_number);
  void TriggerNodeRecovery(NodeId node);

  bool IsRecovering(const ProcessId& pid) const { return recoveries_.contains(pid); }
  size_t active_recoveries() const { return recoveries_.size(); }
  const RecoveryManagerStats& stats() const { return stats_; }

  // Invoked each time a process recovery finishes (tests use this to wait).
  void set_recovery_done_callback(std::function<void(const ProcessId&)> cb) {
    recovery_done_ = std::move(cb);
  }

  // Multi-recorder coordination (§6.3): consulted before this manager acts
  // on a crash.  Null (default) means "always responsible" — the
  // single-recorder configuration.
  void set_responsibility_filter(std::function<bool(NodeId)> filter) {
    responsibility_ = std::move(filter);
  }

  // Resolves the manager's instruments (recovery.* series) and keeps the
  // tracer for the crash → replay → caught-up recovery timeline.
  void SetObservability(const Observability& obs);

 private:
  enum class Phase { kAwaitRecreateAck, kAwaitCompleteAck };

  struct RecoveryProcess {
    ProcessId target;       // Process being recovered.
    ProcessId rproc;        // The recovery process's own network identity.
    NodeId node;            // Node the process is being recreated on.
    uint64_t round = 0;
    Phase phase = Phase::kAwaitRecreateAck;
    std::vector<LogEntry> replay;  // Snapshot of the log at start.
    uint64_t span_id = 0;          // Open recovery.process span, 0 = none.
    uint64_t replay_span_id = 0;   // Open recovery.replay span, 0 = none.
  };

  struct NodeWatch {
    std::unique_ptr<PeriodicTask> task;
    SimTime last_pong = 0;
    bool declared_down = false;
    uint64_t ping_nonce = 0;
  };

  // §6.6.2 whole-node recovery attempt.
  struct NodeRecovery {
    NodeId node;
    ProcessId rproc;
    uint64_t round = 0;
    Phase phase = Phase::kAwaitRecreateAck;
    uint64_t span_id = 0;          // Open recovery.process span, 0 = none.
    uint64_t replay_span_id = 0;   // Open recovery.replay span, 0 = none.
  };

  void StartRecovery(const ProcessId& pid, NodeId target_node);
  void BeginReplay(RecoveryProcess& rp);
  void StartNodeRecovery(NodeId node);
  void BeginNodeReplay(NodeRecovery& nr);
  bool HandlePacket(const Packet& packet);
  void HandlePong(NodeId node);
  void WatchdogTick(NodeId node);
  void DeclareNodeCrashed(NodeId node);
  void RecheckTakeover(NodeId node);
  void SendFromRecoveryPid(const ProcessId& rproc, const ProcessId& dst_kernel, Bytes body);
  uint64_t seq_for(const ProcessId& rproc);

  Cluster* cluster_;
  Recorder* recorder_;
  RecoveryManagerOptions options_;
  Simulator* sim_;

  std::map<ProcessId, RecoveryProcess> recoveries_;
  std::map<NodeId, NodeRecovery> node_recoveries_;
  std::unordered_map<ProcessId, uint64_t> rproc_seqs_;
  std::map<NodeId, NodeWatch> watches_;
  uint32_t next_rproc_local_ = 100;
  uint64_t next_round_ = 1;
  uint64_t current_restart_number_ = 0;
  RecoveryManagerStats stats_;
  std::function<void(const ProcessId&)> recovery_done_;
  std::function<bool(NodeId)> responsibility_;

  // Observability handles (null = detached).
  Tracer* tracer_ = nullptr;
  Counter* obs_recoveries_started_ = nullptr;
  Counter* obs_recoveries_completed_ = nullptr;
  Counter* obs_node_crashes_ = nullptr;
  Counter* obs_replayed_messages_ = nullptr;
};

}  // namespace publishing

#endif  // SRC_CORE_RECOVERY_MANAGER_H_
