// Post-mortem / time-travel debugger over published messages (§6.5).
//
// "A programmer would like some way of backing up a process, or processes,
// to the point where the problem originally occurred.  Published
// communications offers this as a side effect."
//
// Entirely offline: given the recorder's stable storage and the program
// registry, reconstructs a process at its last checkpoint (or initial image)
// and single-steps it through its published message history.  Each step
// reports the message delivered and every message the program would have
// sent, without touching the live system.

#ifndef SRC_CORE_REPLAY_DEBUGGER_H_
#define SRC_CORE_REPLAY_DEBUGGER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/stable_storage.h"
#include "src/demos/program.h"

namespace publishing {

// A message the debugged program emitted during a step.
struct DebuggerSend {
  ProcessId dest;
  uint16_t channel = 0;
  uint32_t code = 0;
  size_t body_bytes = 0;
};

struct DebuggerStep {
  MessageId id;          // The message that was delivered.
  ProcessId from;
  uint16_t channel = 0;
  size_t body_bytes = 0;
  std::vector<DebuggerSend> sends;  // What the program emitted in response.
};

class ReplayDebugger {
 public:
  ReplayDebugger(const StableStorage* storage, const ProgramRegistry* registry,
                 ProcessId target);
  ~ReplayDebugger();

  ReplayDebugger(const ReplayDebugger&) = delete;
  ReplayDebugger& operator=(const ReplayDebugger&) = delete;

  // Loads the checkpoint (or instantiates the initial image) and queues the
  // published message tail.  Must be called before stepping.
  Status Initialize();

  bool AtEnd() const { return cursor_ >= replay_.size(); }
  size_t remaining() const { return replay_.size() - cursor_; }
  uint64_t steps_taken() const { return steps_; }

  // Delivers the next published message to the reconstructed program.
  // DELIVERTOKERNEL entries are skipped (reported with channel 0xFFFF).
  Result<DebuggerStep> Step();

  // Steps until the history is exhausted; returns the number of steps.
  Result<uint64_t> RunToEnd();

  // Steps until (and including) the given message id; kNotFound if the id
  // never appears.
  Result<uint64_t> RunUntilMessage(const MessageId& id);

  // The reconstructed program, for white-box state inspection.
  const UserProgram* program() const { return program_.get(); }
  UserProgram* mutable_program() { return program_.get(); }

 private:
  class OfflineApi;

  const StableStorage* storage_;
  const ProgramRegistry* registry_;
  ProcessId target_;
  std::unique_ptr<UserProgram> program_;
  std::unique_ptr<OfflineApi> api_;
  std::vector<LogEntry> replay_;
  size_t cursor_ = 0;
  uint64_t steps_ = 0;
  bool initialized_ = false;
};

}  // namespace publishing

#endif  // SRC_CORE_REPLAY_DEBUGGER_H_
