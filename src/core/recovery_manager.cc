#include "src/core/recovery_manager.h"

#include "src/common/logging.h"

namespace publishing {

namespace {
// The recovery manager's own network identity on the recording node.
constexpr uint32_t kManagerLocalId = 2;
}  // namespace

RecoveryManager::RecoveryManager(Cluster* cluster, Recorder* recorder,
                                 RecoveryManagerOptions options)
    : cluster_(cluster), recorder_(recorder), options_(options), sim_(&cluster->sim()) {}

RecoveryManager::~RecoveryManager() = default;

void RecoveryManager::SetObservability(const Observability& obs) {
  tracer_ = obs.tracer;
  if (obs.metrics != nullptr) {
    obs_recoveries_started_ = obs.metrics->GetCounter("recovery.started");
    obs_recoveries_completed_ = obs.metrics->GetCounter("recovery.completed");
    obs_node_crashes_ = obs.metrics->GetCounter("recovery.node_crashes_detected");
    obs_replayed_messages_ = obs.metrics->GetCounter("recovery.replayed_messages");
  } else {
    obs_recoveries_started_ = nullptr;
    obs_recoveries_completed_ = nullptr;
    obs_node_crashes_ = nullptr;
    obs_replayed_messages_ = nullptr;
  }
}

void RecoveryManager::Start() {
  ProcessId manager{recorder_->node(), kManagerLocalId};
  cluster_->names().SetLocation(manager, recorder_->node());

  recorder_->set_crash_notice_handler(
      [this](const ProcessId& pid) { OnProcessCrashNotice(pid); });
  recorder_->set_restart_handler([this](uint64_t n) { OnRecorderRestart(n); });
  recorder_->set_packet_handler([this](const Packet& packet) { return HandlePacket(packet); });

  // One watch process per processing node (§4.6).
  for (NodeId node : cluster_->node_ids()) {
    NodeWatch watch;
    watch.last_pong = sim_->Now();
    watch.task = std::make_unique<PeriodicTask>(sim_, options_.watchdog_period,
                                                [this, node] { WatchdogTick(node); });
    watch.task->Start();
    watches_[node] = std::move(watch);
  }
}

uint64_t RecoveryManager::seq_for(const ProcessId& rproc) { return ++rproc_seqs_[rproc]; }

void RecoveryManager::SendFromRecoveryPid(const ProcessId& rproc, const ProcessId& dst,
                                          Bytes body) {
  auto location = cluster_->names().Locate(dst);
  if (!location.ok()) {
    return;
  }
  Packet packet;
  packet.header.id = MessageId{rproc, seq_for(rproc)};
  packet.header.src_process = rproc;
  packet.header.dst_process = dst;
  packet.header.src_node = recorder_->node();
  packet.header.dst_node = *location;
  packet.header.flags = kFlagGuaranteed | kFlagControl;
  packet.body = std::move(body);
  recorder_->endpoint().Send(std::move(packet));
}

// ---------------------------------------------------------------------------
// Watchdogs (§4.6)
// ---------------------------------------------------------------------------

void RecoveryManager::WatchdogTick(NodeId node) {
  NodeWatch& watch = watches_[node];
  if (recorder_->down()) {
    // No traffic flows while the recorder is down; suspend judgement.
    watch.last_pong = sim_->Now();
    return;
  }
  if (!watch.declared_down && sim_->Now() - watch.last_pong > options_.watchdog_timeout) {
    DeclareNodeCrashed(node);
    return;
  }
  // "Are you alive?" — unguaranteed control traffic; losses are tolerated
  // because the next period asks again.
  ProcessId manager{recorder_->node(), kManagerLocalId};
  ProcessId kernel{node, NodeKernel::kKernelLocalId};
  auto location = cluster_->names().Locate(kernel);
  if (!location.ok()) {
    return;
  }
  Packet packet;
  packet.header.id = MessageId{manager, seq_for(manager)};
  packet.header.src_process = manager;
  packet.header.dst_process = kernel;
  packet.header.src_node = recorder_->node();
  packet.header.dst_node = *location;
  packet.header.flags = kFlagControl;
  packet.body = EncodePing(KernelOp::kPing, {++watch.ping_nonce});
  recorder_->endpoint().Send(std::move(packet));
}

void RecoveryManager::HandlePong(NodeId node) {
  auto it = watches_.find(node);
  if (it == watches_.end()) {
    return;
  }
  it->second.last_pong = sim_->Now();
  it->second.declared_down = false;
}

void RecoveryManager::DeclareNodeCrashed(NodeId node) {
  NodeWatch& watch = watches_[node];
  watch.declared_down = true;
  ++stats_.node_crashes_detected;
  if (obs_node_crashes_ != nullptr) {
    obs_node_crashes_->Add(1);
  }
  if (tracer_ != nullptr) {
    tracer_->Instant("recovery.node_crash_detected", "recovery", obs_track::kRecovery,
                     {{"node", std::to_string(node.value)}});
  }
  if (responsibility_ && !responsibility_(node)) {
    // A higher-priority recorder owns this node.  "If P_i does not recover
    // in a set interval, R periodically requeries its higher priority nodes
    // to see if they are willing to recover" (§6.3) — re-check later and
    // take over if responsibility has shifted to us.
    PUB_LOG_INFO("recovery: node %u crashed; deferring to higher-priority recorder",
                 node.value);
    RecheckTakeover(node);
    return;
  }
  PUB_LOG_INFO("recovery: node %u declared crashed", node.value);
  TriggerNodeRecovery(node);
}

void RecoveryManager::RecheckTakeover(NodeId node) {
  sim_->ScheduleAfter(options_.takeover_recheck, [this, node] {
    NodeWatch& watch = watches_[node];
    if (!watch.declared_down || recorder_->down()) {
      return;  // Recovered in the meantime (or we cannot act).
    }
    if (!responsibility_ || responsibility_(node)) {
      PUB_LOG_INFO("recovery: taking over recovery of node %u", node.value);
      TriggerNodeRecovery(node);
    } else {
      RecheckTakeover(node);  // Still someone else's job; keep watching.
    }
  });
}

void RecoveryManager::TriggerNodeRecovery(NodeId node) {
  NodeId target;
  switch (options_.node_policy) {
    case NodeRecoveryPolicy::kIgnore:
      return;
    case NodeRecoveryPolicy::kRestartSameNode: {
      NodeKernel* kernel = cluster_->kernel(node);
      if (kernel == nullptr) {
        return;
      }
      if (!kernel->node_up()) {
        kernel->RestartNode();  // Operator power-cycles the processor.
      }
      target = node;
      break;
    }
    case NodeRecoveryPolicy::kMigrateToSpare:
      target = options_.spare_node;
      if (cluster_->kernel(target) == nullptr) {
        PUB_LOG_ERROR("recovery: spare node %u missing", target.value);
        return;
      }
      break;
  }

  if (options_.node_unit) {
    StartNodeRecovery(target);
    return;
  }

  // Make sure the (re)started node never reuses ids the dead incarnation
  // consumed (§4.7 / DESIGN.md).
  ProcessId manager{recorder_->node(), kManagerLocalId};
  LocalIdFloor floor;
  floor.floor = recorder_->storage().LocalIdHighWater(target);
  floor.kernel_seq_floor = recorder_->storage().LastSent(
                               ProcessId{target, NodeKernel::kKernelLocalId}) +
                           (uint64_t{1} << 20);
  SendFromRecoveryPid(manager, ProcessId{target, NodeKernel::kKernelLocalId},
                      EncodeLocalIdFloor(floor));

  for (const ProcessId& pid : recorder_->storage().ProcessesOnNode(node)) {
    StartRecovery(pid, target);
  }
}

// ---------------------------------------------------------------------------
// Process recovery (§3.3.3, §4.7)
// ---------------------------------------------------------------------------

void RecoveryManager::OnProcessCrashNotice(const ProcessId& pid) {
  if (tracer_ != nullptr) {
    tracer_->Instant("recovery.crash_notice", "recovery", obs_track::kRecovery,
                     {{"pid", ToString(pid)}});
  }
  if (responsibility_) {
    auto info = recorder_->storage().Info(pid);
    if (info.ok() && !responsibility_(info->home_node)) {
      return;  // Another recorder owns this process's node (§6.3).
    }
  }
  if (options_.node_unit) {
    // §1.1.2: "the system is permitted to 'round up' any system fault to a
    // crash of all the processes affected" — in node-unit mode a process
    // fault becomes a node recovery.
    auto location = cluster_->names().Locate(pid);
    if (location.ok()) {
      TriggerNodeRecovery(*location);
    }
    return;
  }
  auto it = recoveries_.find(pid);
  NodeId target;
  if (it != recoveries_.end()) {
    // Recursive crash of a recovering process (§3.5): terminate the old
    // recovery process and start a fresh one.
    ++stats_.recursive_recoveries;
    target = it->second.node;
    recoveries_.erase(it);
  } else {
    auto info = recorder_->storage().Info(pid);
    if (!info.ok() || info->destroyed || info->program.empty()) {
      return;
    }
    target = info->home_node;
  }
  StartRecovery(pid, target);
}

void RecoveryManager::StartRecovery(const ProcessId& pid, NodeId target_node) {
  if (recoveries_.contains(pid)) {
    return;
  }
  auto info = recorder_->storage().Info(pid);
  if (!info.ok() || info->destroyed || info->program.empty() || !info->recoverable) {
    return;
  }
  RecoveryProcess rp;
  rp.target = pid;
  rp.rproc = ProcessId{recorder_->node(), next_rproc_local_++};
  rp.node = target_node;
  rp.round = next_round_++;
  cluster_->names().SetLocation(rp.rproc, recorder_->node());

  RecreateRequest req;
  req.pid = pid;
  req.program = info->program;
  req.last_sent_seq = recorder_->storage().LastSent(pid);
  req.recovery_round = rp.round;
  auto checkpoint = recorder_->storage().LoadCheckpoint(pid);
  if (checkpoint.ok()) {
    req.has_checkpoint = true;
    req.checkpoint_state = std::move(*checkpoint);
  } else {
    req.initial_links = info->initial_links;
  }

  ++stats_.process_recoveries_started;
  if (obs_recoveries_started_ != nullptr) {
    obs_recoveries_started_->Add(1);
  }
  if (tracer_ != nullptr) {
    rp.span_id = tracer_->BeginSpan(
        "recovery.process", "recovery", obs_track::kRecovery,
        {{"pid", ToString(pid)},
         {"node", std::to_string(target_node.value)},
         {"round", std::to_string(rp.round)},
         {"checkpoint", req.has_checkpoint ? "yes" : "no"}});
    if (req.has_checkpoint) {
      tracer_->Instant("recovery.checkpoint_loaded", "recovery", obs_track::kRecovery,
                       {{"pid", ToString(pid)},
                        {"bytes", std::to_string(req.checkpoint_state.size())}});
    }
  }
  // §3.3.1: "whether or not the process is recovering" is part of the stable
  // database entry, so a recorder rebuilt from disk knows which recoveries
  // its previous incarnation left in flight.
  recorder_->storage().SetRecovering(pid, true);
  PUB_LOG_INFO("recovery: recovering %s on node %u (round %llu)", ToString(pid).c_str(),
               target_node.value, static_cast<unsigned long long>(rp.round));
  SendFromRecoveryPid(rp.rproc, ProcessId{target_node, NodeKernel::kKernelLocalId},
                      EncodeRecreateRequest(req));
  recoveries_[pid] = std::move(rp);
}

void RecoveryManager::BeginReplay(RecoveryProcess& rp) {
  recorder_->storage().SetHomeNode(rp.target, rp.node);
  // Snapshot the log only now, after the kernel has acknowledged the
  // recreate.  Every message the crashed/recreating process failed to accept
  // was necessarily published (the tap precedes delivery) and delivered —
  // hence dropped — before the kernel processed the recreate request, so a
  // snapshot taken after the recreate-ack provably contains all of them.
  // Anything logged later is being held in the kernel's pending-live queue
  // and gets released (minus replayed ids) at recovery completion.
  rp.replay = recorder_->storage().ReplayList(rp.target);
  if (tracer_ != nullptr) {
    rp.replay_span_id = tracer_->BeginSpan(
        "recovery.replay", "recovery", obs_track::kRecovery,
        {{"pid", ToString(rp.target)},
         {"messages", std::to_string(rp.replay.size())}});
  }
  if (obs_replayed_messages_ != nullptr) {
    obs_replayed_messages_->Add(rp.replay.size());
  }
  // Inject every published message, flagged as replay so the duplicate cache
  // lets it through (§4.7).  The transport's one-outstanding-per-node rule
  // keeps these — and the completion that follows — in order.
  for (const LogEntry& entry : rp.replay) {
    auto packet = ParsePacket(entry.packet);
    if (!packet.ok()) {
      PUB_LOG_ERROR("recovery: corrupt log entry for %s", ToString(rp.target).c_str());
      continue;
    }
    packet->header.flags |= kFlagReplay | kFlagGuaranteed;
    packet->header.dst_node = rp.node;
    recorder_->endpoint().Send(std::move(*packet));
  }
  SendFromRecoveryPid(rp.rproc, ProcessId{rp.node, NodeKernel::kKernelLocalId},
                      EncodeRecoveryTarget(KernelOp::kRecoveryComplete, {rp.target, rp.round}));
  rp.phase = Phase::kAwaitCompleteAck;
}

// ---------------------------------------------------------------------------
// Node-unit recovery (§6.6.2)
// ---------------------------------------------------------------------------

void RecoveryManager::StartNodeRecovery(NodeId node) {
  if (node_recoveries_.contains(node)) {
    return;
  }
  NodeRecovery nr;
  nr.node = node;
  nr.rproc = ProcessId{recorder_->node(), next_rproc_local_++};
  nr.round = next_round_++;
  cluster_->names().SetLocation(nr.rproc, recorder_->node());

  RestoreNodeRequest req;
  req.node = node;
  req.recovery_round = nr.round;
  auto checkpoint = recorder_->storage().LoadNodeCheckpoint(node);
  if (checkpoint.ok()) {
    req.has_image = true;
    req.image = std::move(checkpoint->image);
  }
  for (const ProcessId& pid : recorder_->storage().ProcessesOnNode(node)) {
    req.last_sent.emplace_back(pid, recorder_->storage().LastSent(pid));
  }
  // The kernel process's own watermark rides along too: the restored kernel
  // must not reuse message ids its dead incarnation already consumed (they
  // sit in peers' duplicate caches).
  ProcessId kernel_pid{node, NodeKernel::kKernelLocalId};
  req.last_sent.emplace_back(kernel_pid, recorder_->storage().LastSent(kernel_pid));
  ++stats_.process_recoveries_started;
  if (obs_recoveries_started_ != nullptr) {
    obs_recoveries_started_->Add(1);
  }
  if (tracer_ != nullptr) {
    nr.span_id = tracer_->BeginSpan(
        "recovery.process", "recovery", obs_track::kRecovery,
        {{"node", std::to_string(node.value)},
         {"round", std::to_string(nr.round)},
         {"checkpoint", req.has_image ? "yes" : "no"},
         {"unit", "node"}});
    if (req.has_image) {
      tracer_->Instant("recovery.checkpoint_loaded", "recovery", obs_track::kRecovery,
                       {{"node", std::to_string(node.value)},
                        {"bytes", std::to_string(req.image.size())}});
    }
  }
  PUB_LOG_INFO("recovery: node-unit recovery of node %u (round %llu, image: %s)", node.value,
               static_cast<unsigned long long>(nr.round), req.has_image ? "yes" : "none");
  SendFromRecoveryPid(nr.rproc, ProcessId{node, NodeKernel::kKernelLocalId},
                      EncodeRestoreNodeRequest(req));
  node_recoveries_[node] = std::move(nr);
}

void RecoveryManager::BeginNodeReplay(NodeRecovery& nr) {
  // Snapshot after the restore-ack, for the same reason BeginReplay does.
  const auto node_replay = recorder_->storage().NodeReplayList(nr.node);
  if (tracer_ != nullptr) {
    nr.replay_span_id = tracer_->BeginSpan(
        "recovery.replay", "recovery", obs_track::kRecovery,
        {{"node", std::to_string(nr.node.value)},
         {"messages", std::to_string(node_replay.size())}});
  }
  if (obs_replayed_messages_ != nullptr) {
    obs_replayed_messages_->Add(node_replay.size());
  }
  for (const StableStorage::NodeLogEntry& entry : node_replay) {
    NodeReplayMessage msg;
    msg.step = entry.step;
    msg.packet = entry.packet.ToBytes();
    SendFromRecoveryPid(nr.rproc, ProcessId{nr.node, NodeKernel::kKernelLocalId},
                        EncodeNodeReplayMessage(msg));
  }
  SendFromRecoveryPid(
      nr.rproc, ProcessId{nr.node, NodeKernel::kKernelLocalId},
      EncodeNodeRecoveryRound(KernelOp::kNodeRecoveryComplete, {nr.node, nr.round}));
  nr.phase = Phase::kAwaitCompleteAck;
}

// ---------------------------------------------------------------------------
// Inbound packets
// ---------------------------------------------------------------------------

bool RecoveryManager::HandlePacket(const Packet& packet) {
  switch (PeekOp(packet.body)) {
    case KernelOp::kPong:
      HandlePong(packet.header.src_node);
      return true;
    case KernelOp::kRecreateAck: {
      auto target = DecodeRecoveryTarget(packet.body);
      if (!target.ok()) {
        return true;
      }
      auto it = recoveries_.find(target->pid);
      if (it != recoveries_.end() && it->second.round == target->recovery_round &&
          it->second.phase == Phase::kAwaitRecreateAck) {
        BeginReplay(it->second);
      }
      return true;
    }
    case KernelOp::kRecoveryCompleteAck: {
      auto target = DecodeRecoveryTarget(packet.body);
      if (!target.ok()) {
        return true;
      }
      auto it = recoveries_.find(target->pid);
      if (it != recoveries_.end() && it->second.round == target->recovery_round &&
          it->second.phase == Phase::kAwaitCompleteAck) {
        ProcessId pid = it->second.target;
        if (tracer_ != nullptr) {
          if (it->second.replay_span_id != 0) {
            tracer_->EndSpan(it->second.replay_span_id, "recovery.replay", "recovery",
                             obs_track::kRecovery);
          }
          if (it->second.span_id != 0) {
            tracer_->EndSpan(it->second.span_id, "recovery.process", "recovery",
                             obs_track::kRecovery);
          }
          tracer_->Instant("recovery.caught_up", "recovery", obs_track::kRecovery,
                           {{"pid", ToString(pid)}});
        }
        recoveries_.erase(it);
        recorder_->storage().SetRecovering(pid, false);
        ++stats_.process_recoveries_completed;
        if (obs_recoveries_completed_ != nullptr) {
          obs_recoveries_completed_->Add(1);
        }
        PUB_LOG_INFO("recovery: %s recovered", ToString(pid).c_str());
        if (recovery_done_) {
          recovery_done_(pid);
        }
      }
      return true;
    }
    case KernelOp::kRestoreNodeAck: {
      auto round = DecodeNodeRecoveryRound(packet.body);
      if (!round.ok()) {
        return true;
      }
      auto it = node_recoveries_.find(round->node);
      if (it != node_recoveries_.end() && it->second.round == round->recovery_round &&
          it->second.phase == Phase::kAwaitRecreateAck) {
        BeginNodeReplay(it->second);
      }
      return true;
    }
    case KernelOp::kNodeRecoveryCompleteAck: {
      auto round = DecodeNodeRecoveryRound(packet.body);
      if (!round.ok()) {
        return true;
      }
      auto it = node_recoveries_.find(round->node);
      if (it != node_recoveries_.end() && it->second.round == round->recovery_round &&
          it->second.phase == Phase::kAwaitCompleteAck) {
        if (tracer_ != nullptr) {
          if (it->second.replay_span_id != 0) {
            tracer_->EndSpan(it->second.replay_span_id, "recovery.replay", "recovery",
                             obs_track::kRecovery);
          }
          if (it->second.span_id != 0) {
            tracer_->EndSpan(it->second.span_id, "recovery.process", "recovery",
                             obs_track::kRecovery);
          }
          tracer_->Instant("recovery.caught_up", "recovery", obs_track::kRecovery,
                           {{"node", std::to_string(round->node.value)}});
        }
        node_recoveries_.erase(it);
        ++stats_.process_recoveries_completed;
        if (obs_recoveries_completed_ != nullptr) {
          obs_recoveries_completed_->Add(1);
        }
        PUB_LOG_INFO("recovery: node %u recovered as a unit", round->node.value);
        if (recovery_done_) {
          recovery_done_(ProcessId{round->node, NodeKernel::kKernelLocalId});
        }
      }
      return true;
    }
    case KernelOp::kStateReply: {
      auto reply = DecodeStateReply(packet.body);
      if (!reply.ok()) {
        return true;
      }
      if (reply->restart_number != current_restart_number_) {
        // §3.4: responses belonging to an earlier restart are ignored.
        ++stats_.stale_state_replies_ignored;
        return true;
      }
      for (const auto& [pid, answer] : reply->answers) {
        auto info = recorder_->storage().Info(pid);
        if (!info.ok() || info->home_node != reply->node) {
          continue;
        }
        switch (answer) {
          case ProcessStateAnswer::kFunctioning:
            break;  // Nothing happened; no action (§3.3.4).
          case ProcessStateAnswer::kCrashed:
          case ProcessStateAnswer::kRecovering:
          case ProcessStateAnswer::kUnknown:
            StartRecovery(pid, reply->node);
            break;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Recorder restart (§3.3.4)
// ---------------------------------------------------------------------------

void RecoveryManager::OnRecorderRestart(uint64_t restart_number) {
  current_restart_number_ = restart_number;
  // Recovery processes did not survive the recorder crash; the state replies
  // will tell us which targets are stuck in "recovering".
  recoveries_.clear();
  // Reset the watchdogs' clocks — no pongs flowed while we were down.
  for (auto& [node, watch] : watches_) {
    watch.last_pong = sim_->Now();
  }
  ProcessId manager{recorder_->node(), kManagerLocalId};
  StateQuery query;
  query.restart_number = restart_number;
  query.pids = recorder_->storage().AllProcesses();
  for (NodeId node : cluster_->node_ids()) {
    ++stats_.state_queries_sent;
    SendFromRecoveryPid(manager, ProcessId{node, NodeKernel::kKernelLocalId},
                        EncodeStateQuery(query));
  }
}

}  // namespace publishing
