#include "src/core/recovery_manager.h"

#include <algorithm>

#include "src/common/logging.h"

namespace publishing {

namespace {
// The recovery manager's own network identity on the recording node.
constexpr uint32_t kManagerLocalId = 2;
}  // namespace

RecoveryManager::RecoveryManager(NodeDirectory* directory, Recorder* recorder,
                                 RecoveryManagerOptions options)
    : directory_(directory), recorder_(recorder), options_(options),
      sim_(&directory->sim()) {}

RecoveryManager::~RecoveryManager() = default;

void RecoveryManager::SetObservability(const Observability& obs) {
  tracer_ = obs.tracer;
  if (obs.metrics != nullptr) {
    obs_recoveries_started_ = obs.metrics->GetCounter("recovery.started");
    obs_recoveries_completed_ = obs.metrics->GetCounter("recovery.completed");
    obs_node_crashes_ = obs.metrics->GetCounter("recovery.node_crashes_detected");
    obs_replayed_messages_ = obs.metrics->GetCounter("recovery.replayed_messages");
    obs_replay_bursts_ = obs.metrics->GetCounter("recovery.replay_bursts_sent");
    obs_replay_burst_retransmits_ =
        obs.metrics->GetCounter("recovery.replay_burst_retransmits");
    obs_recoveries_deferred_ = obs.metrics->GetCounter("recovery.deferred");
  } else {
    obs_recoveries_started_ = nullptr;
    obs_recoveries_completed_ = nullptr;
    obs_node_crashes_ = nullptr;
    obs_replayed_messages_ = nullptr;
    obs_replay_bursts_ = nullptr;
    obs_replay_burst_retransmits_ = nullptr;
    obs_recoveries_deferred_ = nullptr;
  }
}

void RecoveryManager::Start() {
  ProcessId manager{recorder_->node(), kManagerLocalId};
  directory_->names().SetLocation(manager, recorder_->node());

  recorder_->set_crash_notice_handler(
      [this](const ProcessId& pid) { OnProcessCrashNotice(pid); });
  recorder_->set_restart_handler([this](uint64_t n) { OnRecorderRestart(n); });
  recorder_->set_packet_handler([this](const Packet& packet) { return HandlePacket(packet); });

  // One watch process per processing node (§4.6).
  for (NodeId node : directory_->node_ids()) {
    NodeWatch watch;
    watch.last_pong = sim_->Now();
    watch.task = std::make_unique<PeriodicTask>(sim_, options_.watchdog_period,
                                                [this, node] { WatchdogTick(node); });
    watch.task->Start();
    watches_[node] = std::move(watch);
  }
}

uint64_t RecoveryManager::seq_for(const ProcessId& rproc) { return ++rproc_seqs_[rproc]; }

void RecoveryManager::SendFromRecoveryPid(const ProcessId& rproc, const ProcessId& dst,
                                          Bytes body) {
  auto location = directory_->names().Locate(dst);
  if (!location.ok()) {
    return;
  }
  Packet packet;
  packet.header.id = MessageId{rproc, seq_for(rproc)};
  packet.header.src_process = rproc;
  packet.header.dst_process = dst;
  packet.header.src_node = recorder_->node();
  packet.header.dst_node = *location;
  packet.header.flags = kFlagGuaranteed | kFlagControl;
  packet.body = std::move(body);
  recorder_->endpoint().Send(std::move(packet));
}

// ---------------------------------------------------------------------------
// Watchdogs (§4.6)
// ---------------------------------------------------------------------------

void RecoveryManager::WatchdogTick(NodeId node) {
  NodeWatch& watch = watches_[node];
  if (recorder_->down()) {
    // No traffic flows while the recorder is down; suspend judgement.
    watch.last_pong = sim_->Now();
    return;
  }
  if (!watch.declared_down && sim_->Now() - watch.last_pong > options_.watchdog_timeout) {
    DeclareNodeCrashed(node);
    return;
  }
  // "Are you alive?" — unguaranteed control traffic; losses are tolerated
  // because the next period asks again.
  ProcessId manager{recorder_->node(), kManagerLocalId};
  ProcessId kernel{node, NodeKernel::kKernelLocalId};
  auto location = directory_->names().Locate(kernel);
  if (!location.ok()) {
    return;
  }
  Packet packet;
  packet.header.id = MessageId{manager, seq_for(manager)};
  packet.header.src_process = manager;
  packet.header.dst_process = kernel;
  packet.header.src_node = recorder_->node();
  packet.header.dst_node = *location;
  packet.header.flags = kFlagControl;
  packet.body = EncodePing(KernelOp::kPing, {++watch.ping_nonce});
  recorder_->endpoint().Send(std::move(packet));
}

void RecoveryManager::HandlePong(NodeId node) {
  auto it = watches_.find(node);
  if (it == watches_.end()) {
    return;
  }
  it->second.last_pong = sim_->Now();
  it->second.declared_down = false;
}

void RecoveryManager::DeclareNodeCrashed(NodeId node) {
  NodeWatch& watch = watches_[node];
  watch.declared_down = true;
  ++stats_.node_crashes_detected;
  if (obs_node_crashes_ != nullptr) {
    obs_node_crashes_->Add(1);
  }
  if (tracer_ != nullptr) {
    tracer_->Instant("recovery.node_crash_detected", "recovery", obs_track::kRecovery,
                     {{"node", std::to_string(node.value)}});
  }
  if (responsibility_ && !responsibility_(node)) {
    // A higher-priority recorder owns this node.  "If P_i does not recover
    // in a set interval, R periodically requeries its higher priority nodes
    // to see if they are willing to recover" (§6.3) — re-check later and
    // take over if responsibility has shifted to us.
    PUB_LOG_INFO("recovery: node %u crashed; deferring to higher-priority recorder",
                 node.value);
    RecheckTakeover(node);
    return;
  }
  PUB_LOG_INFO("recovery: node %u declared crashed", node.value);
  TriggerNodeRecovery(node);
}

void RecoveryManager::RecheckTakeover(NodeId node) {
  sim_->ScheduleAfter(options_.takeover_recheck, [this, node] {
    NodeWatch& watch = watches_[node];
    if (!watch.declared_down || recorder_->down()) {
      return;  // Recovered in the meantime (or we cannot act).
    }
    if (!responsibility_ || responsibility_(node)) {
      PUB_LOG_INFO("recovery: taking over recovery of node %u", node.value);
      TriggerNodeRecovery(node);
    } else {
      RecheckTakeover(node);  // Still someone else's job; keep watching.
    }
  });
}

void RecoveryManager::TriggerNodeRecovery(NodeId node) {
  NodeId target;
  switch (options_.node_policy) {
    case NodeRecoveryPolicy::kIgnore:
      return;
    case NodeRecoveryPolicy::kRestartSameNode: {
      NodeKernel* kernel = directory_->kernel(node);
      if (kernel == nullptr) {
        return;
      }
      if (!kernel->node_up()) {
        kernel->RestartNode();  // Operator power-cycles the processor.
      }
      target = node;
      break;
    }
    case NodeRecoveryPolicy::kMigrateToSpare:
      target = options_.spare_node;
      if (directory_->kernel(target) == nullptr) {
        PUB_LOG_ERROR("recovery: spare node %u missing", target.value);
        return;
      }
      break;
  }

  if (options_.node_unit) {
    StartNodeRecovery(target);
    return;
  }

  // Make sure the (re)started node never reuses ids the dead incarnation
  // consumed (§4.7 / DESIGN.md).
  ProcessId manager{recorder_->node(), kManagerLocalId};
  LocalIdFloor floor;
  floor.floor = recorder_->storage().LocalIdHighWater(target);
  floor.kernel_seq_floor = recorder_->storage().LastSent(
                               ProcessId{target, NodeKernel::kKernelLocalId}) +
                           (uint64_t{1} << 20);
  SendFromRecoveryPid(manager, ProcessId{target, NodeKernel::kKernelLocalId},
                      EncodeLocalIdFloor(floor));

  for (const ProcessId& pid : recorder_->storage().ProcessesOnNode(node)) {
    StartRecovery(pid, target);
  }
}

// ---------------------------------------------------------------------------
// Process recovery (§3.3.3, §4.7)
// ---------------------------------------------------------------------------

void RecoveryManager::OnProcessCrashNotice(const ProcessId& pid) {
  if (tracer_ != nullptr) {
    tracer_->Instant("recovery.crash_notice", "recovery", obs_track::kRecovery,
                     {{"pid", ToString(pid)}});
  }
  if (responsibility_) {
    auto info = recorder_->storage().Info(pid);
    if (info.ok() && !responsibility_(info->home_node)) {
      return;  // Another recorder owns this process's node (§6.3).
    }
  }
  if (options_.node_unit) {
    // §1.1.2: "the system is permitted to 'round up' any system fault to a
    // crash of all the processes affected" — in node-unit mode a process
    // fault becomes a node recovery.
    auto location = directory_->names().Locate(pid);
    if (location.ok()) {
      TriggerNodeRecovery(*location);
    }
    return;
  }
  auto it = recoveries_.find(pid);
  NodeId target;
  if (it != recoveries_.end()) {
    // Recursive crash of a recovering process (§3.5): terminate the old
    // recovery process — abandoning any replay window in flight — and start
    // a fresh one.  The new round number keeps stale bursts and completions
    // from the dead attempt out of the new one.
    ++stats_.recursive_recoveries;
    target = it->second.node;
    ReleaseReplayState(it->second);
    recoveries_.erase(it);
  } else {
    auto info = recorder_->storage().Info(pid);
    if (!info.ok() || info->destroyed || info->program.empty()) {
      return;
    }
    target = info->home_node;
  }
  StartRecovery(pid, target);
}

void RecoveryManager::StartRecovery(const ProcessId& pid, NodeId target_node) {
  if (recoveries_.contains(pid) || pending_set_.contains(pid)) {
    return;
  }
  if (options_.max_concurrent_recoveries > 0 &&
      recoveries_.size() >= options_.max_concurrent_recoveries) {
    // Scheduler admission control: queue behind the concurrency cap.
    pending_.emplace_back(pid, target_node);
    pending_set_.insert(pid);
    ++stats_.recoveries_deferred;
    if (obs_recoveries_deferred_ != nullptr) {
      obs_recoveries_deferred_->Add(1);
    }
    if (tracer_ != nullptr) {
      tracer_->Instant("recovery.deferred", "recovery", obs_track::kRecovery,
                       {{"pid", ToString(pid)},
                        {"queued", std::to_string(pending_.size())}});
    }
    return;
  }
  AdmitRecovery(pid, target_node);
}

void RecoveryManager::AdmitPending() {
  while (!pending_.empty() &&
         (options_.max_concurrent_recoveries == 0 ||
          recoveries_.size() < options_.max_concurrent_recoveries)) {
    auto [pid, node] = pending_.front();
    pending_.pop_front();
    pending_set_.erase(pid);
    if (!recoveries_.contains(pid)) {
      AdmitRecovery(pid, node);
    }
  }
}

void RecoveryManager::AdmitRecovery(const ProcessId& pid, NodeId target_node) {
  auto info = recorder_->storage().Info(pid);
  if (!info.ok() || info->destroyed || info->program.empty() || !info->recoverable) {
    return;
  }
  RecoveryProcess rp;
  rp.target = pid;
  rp.rproc = ProcessId{recorder_->node(), next_rproc_local_++};
  rp.node = target_node;
  rp.round = next_round_++;
  directory_->names().SetLocation(rp.rproc, recorder_->node());

  RecreateRequest req;
  req.pid = pid;
  req.program = info->program;
  req.last_sent_seq = recorder_->storage().LastSent(pid);
  req.recovery_round = rp.round;
  auto checkpoint = recorder_->storage().LoadCheckpoint(pid);
  if (checkpoint.ok()) {
    req.has_checkpoint = true;
    req.checkpoint_state = std::move(*checkpoint);
  } else {
    req.initial_links = info->initial_links;
  }

  ++stats_.process_recoveries_started;
  if (obs_recoveries_started_ != nullptr) {
    obs_recoveries_started_->Add(1);
  }
  if (tracer_ != nullptr) {
    rp.span_id = tracer_->BeginSpan(
        "recovery.process", "recovery", obs_track::kRecovery,
        {{"pid", ToString(pid)},
         {"node", std::to_string(target_node.value)},
         {"round", std::to_string(rp.round)},
         {"checkpoint", req.has_checkpoint ? "yes" : "no"}});
    if (req.has_checkpoint) {
      tracer_->Instant("recovery.checkpoint_loaded", "recovery", obs_track::kRecovery,
                       {{"pid", ToString(pid)},
                        {"bytes", std::to_string(req.checkpoint_state.size())}});
    }
  }
  // §3.3.1: "whether or not the process is recovering" is part of the stable
  // database entry, so a recorder rebuilt from disk knows which recoveries
  // its previous incarnation left in flight.
  recorder_->storage().SetRecovering(pid, true);
  PUB_LOG_INFO("recovery: recovering %s on node %u (round %llu)", ToString(pid).c_str(),
               target_node.value, static_cast<unsigned long long>(rp.round));
  SendFromRecoveryPid(rp.rproc, ProcessId{target_node, NodeKernel::kKernelLocalId},
                      EncodeRecreateRequest(req));
  recoveries_[pid] = std::move(rp);
}

void RecoveryManager::BeginReplay(RecoveryProcess& rp) {
  recorder_->storage().SetHomeNode(rp.target, rp.node);
  // Snapshot the log only now, after the kernel has acknowledged the
  // recreate.  Every message the crashed/recreating process failed to accept
  // was necessarily published (the tap precedes delivery) and delivered —
  // hence dropped — before the kernel processed the recreate request, so a
  // snapshot taken after the recreate-ack provably contains all of them.
  // Anything logged later is being held in the kernel's pending-live queue
  // and gets released (minus replayed ids) at recovery completion.
  ReplayCursor cursor = recorder_->storage().Replay(rp.target);
  if (tracer_ != nullptr) {
    rp.replay_span_id = tracer_->BeginSpan(
        "recovery.replay", "recovery", obs_track::kRecovery,
        {{"pid", ToString(rp.target)},
         {"messages", std::to_string(cursor.size())},
         {"bytes", std::to_string(cursor.payload_bytes())},
         {"mode", options_.pipelined_replay ? "pipelined" : "stop_and_wait"}});
  }
  if (obs_replayed_messages_ != nullptr) {
    obs_replayed_messages_->Add(cursor.size());
  }
  if (!options_.pipelined_replay) {
    // Baseline (§4.7 verbatim): inject every published message one at a
    // time, flagged as replay so the duplicate cache lets it through.  The
    // transport's one-outstanding-per-node rule keeps these — and the
    // completion that follows — in order.
    for (const LogEntry& entry : cursor) {
      auto packet = ParsePacket(entry.packet);
      if (!packet.ok()) {
        PUB_LOG_ERROR("recovery: corrupt log entry for %s", ToString(rp.target).c_str());
        continue;
      }
      packet->header.flags |= kFlagReplay | kFlagGuaranteed;
      packet->header.dst_node = rp.node;
      recorder_->endpoint().Send(std::move(*packet));
    }
    FinishReplay(rp);
    return;
  }
  // Pipelined fast path (DESIGN.md §11): partition the cursor into burst
  // frames of shared segments — each Buffer below is a refcount bump on the
  // stored wire bytes, never a payload copy — and stream them through a
  // sliding window.  The kernel unpacks bursts strictly in burst_seq order,
  // so the paper's in-order replay semantics are preserved.
  rp.bursts.clear();
  ReplayBurstBuffers current;
  for (const LogEntry& entry : cursor) {
    if (!current.segments.empty() &&
        (current.segments.size() >= options_.replay_burst_max_messages ||
         current.bytes + entry.packet.size() > options_.replay_burst_max_bytes)) {
      rp.bursts.push_back(std::move(current));
      current = {};
    }
    current.bytes += entry.packet.size();
    current.segments.push_back(entry.packet);
  }
  if (!current.segments.empty()) {
    rp.bursts.push_back(std::move(current));
  }
  if (rp.bursts.empty()) {
    FinishReplay(rp);
    return;
  }
  rp.phase = Phase::kReplaying;
  rp.next_burst = 0;
  rp.highest_acked = 0;
  rp.bytes_in_flight = 0;
  rp.retransmit_timeout = options_.replay_retransmit_timeout;
  PumpReplayWindow(rp);
}

void RecoveryManager::SendBurst(RecoveryProcess& rp, size_t index) {
  const ReplayBurstBuffers& burst = rp.bursts[index];
  Packet packet;
  packet.header.id = MessageId{rp.rproc, seq_for(rp.rproc)};
  packet.header.src_process = rp.rproc;
  packet.header.dst_process = ProcessId{rp.node, NodeKernel::kKernelLocalId};
  packet.header.src_node = recorder_->node();
  packet.header.dst_node = rp.node;
  // Unguaranteed control: the transport's stop-and-wait window is exactly
  // the serialization bursting exists to escape; loss recovery is this
  // layer's go-back-N.  Control also keeps the recorder from re-publishing.
  packet.header.flags = kFlagControl;
  packet.body = EncodeReplayBurst({rp.target, rp.round, index + 1,
                                   static_cast<uint32_t>(burst.segments.size())});
  packet.segments = burst.segments;  // Shared views; zero payload bytes copied.
  ++stats_.replay_bursts_sent;
  if (obs_replay_bursts_ != nullptr) {
    obs_replay_bursts_->Add(1);
  }
  recorder_->endpoint().Send(std::move(packet));
}

void RecoveryManager::PumpReplayWindow(RecoveryProcess& rp) {
  while (rp.next_burst < rp.bursts.size() &&
         rp.next_burst < rp.highest_acked + options_.replay_window) {
    const size_t burst_bytes = rp.bursts[rp.next_burst].bytes;
    if (rp.bytes_in_flight > 0 && options_.max_outstanding_replay_bytes > 0 &&
        outstanding_replay_bytes_ + burst_bytes > options_.max_outstanding_replay_bytes) {
      // Global back-pressure; resumes when acks drain the budget.  A
      // recovery with nothing in flight always proceeds (no deadlock).
      break;
    }
    SendBurst(rp, rp.next_burst);
    rp.bytes_in_flight += burst_bytes;
    outstanding_replay_bytes_ += burst_bytes;
    ++rp.next_burst;
  }
  ArmReplayTimer(rp);
}

void RecoveryManager::PumpAllReplaying() {
  for (auto& [pid, rp] : recoveries_) {
    if (rp.phase == Phase::kReplaying) {
      PumpReplayWindow(rp);
    }
  }
}

void RecoveryManager::ArmReplayTimer(RecoveryProcess& rp) {
  sim_->Cancel(rp.retransmit_timer);
  rp.retransmit_timer = EventId{};
  if (rp.highest_acked >= rp.next_burst) {
    return;  // Nothing in flight.
  }
  const ProcessId pid = rp.target;
  const uint64_t round = rp.round;
  rp.retransmit_timer = sim_->ScheduleAfter(
      rp.retransmit_timeout, [this, pid, round] { OnReplayTimeout(pid, round); });
}

void RecoveryManager::OnReplayTimeout(const ProcessId& pid, uint64_t round) {
  auto it = recoveries_.find(pid);
  if (it == recoveries_.end() || it->second.round != round ||
      it->second.phase != Phase::kReplaying) {
    return;
  }
  RecoveryProcess& rp = it->second;
  // Go-back-N: resend every un-acked burst in the window (the kernel drops
  // out-of-order bursts, so anything after a lost frame was discarded).
  rp.retransmit_timeout =
      std::min(rp.retransmit_timeout * 2, options_.replay_max_retransmit_timeout);
  for (size_t i = rp.highest_acked; i < rp.next_burst; ++i) {
    SendBurst(rp, i);
    ++stats_.replay_burst_retransmits;
    if (obs_replay_burst_retransmits_ != nullptr) {
      obs_replay_burst_retransmits_->Add(1);
    }
  }
  if (tracer_ != nullptr) {
    tracer_->Instant("recovery.replay_retransmit", "recovery", obs_track::kRecovery,
                     {{"pid", ToString(pid)},
                      {"from_seq", std::to_string(rp.highest_acked + 1)}});
  }
  ArmReplayTimer(rp);
}

void RecoveryManager::FinishReplay(RecoveryProcess& rp) {
  rp.bursts.clear();
  SendFromRecoveryPid(rp.rproc, ProcessId{rp.node, NodeKernel::kKernelLocalId},
                      EncodeRecoveryTarget(KernelOp::kRecoveryComplete, {rp.target, rp.round}));
  rp.phase = Phase::kAwaitCompleteAck;
}

void RecoveryManager::ReleaseReplayState(RecoveryProcess& rp) {
  sim_->Cancel(rp.retransmit_timer);
  rp.retransmit_timer = EventId{};
  outstanding_replay_bytes_ -= rp.bytes_in_flight;
  rp.bytes_in_flight = 0;
  rp.bursts.clear();
}

// ---------------------------------------------------------------------------
// Node-unit recovery (§6.6.2)
// ---------------------------------------------------------------------------

void RecoveryManager::StartNodeRecovery(NodeId node) {
  if (node_recoveries_.contains(node)) {
    return;
  }
  NodeRecovery nr;
  nr.node = node;
  nr.rproc = ProcessId{recorder_->node(), next_rproc_local_++};
  nr.round = next_round_++;
  directory_->names().SetLocation(nr.rproc, recorder_->node());

  RestoreNodeRequest req;
  req.node = node;
  req.recovery_round = nr.round;
  auto checkpoint = recorder_->storage().LoadNodeCheckpoint(node);
  if (checkpoint.ok()) {
    req.has_image = true;
    req.image = std::move(checkpoint->image);
  }
  for (const ProcessId& pid : recorder_->storage().ProcessesOnNode(node)) {
    req.last_sent.emplace_back(pid, recorder_->storage().LastSent(pid));
  }
  // The kernel process's own watermark rides along too: the restored kernel
  // must not reuse message ids its dead incarnation already consumed (they
  // sit in peers' duplicate caches).
  ProcessId kernel_pid{node, NodeKernel::kKernelLocalId};
  req.last_sent.emplace_back(kernel_pid, recorder_->storage().LastSent(kernel_pid));
  ++stats_.process_recoveries_started;
  if (obs_recoveries_started_ != nullptr) {
    obs_recoveries_started_->Add(1);
  }
  if (tracer_ != nullptr) {
    nr.span_id = tracer_->BeginSpan(
        "recovery.process", "recovery", obs_track::kRecovery,
        {{"node", std::to_string(node.value)},
         {"round", std::to_string(nr.round)},
         {"checkpoint", req.has_image ? "yes" : "no"},
         {"unit", "node"}});
    if (req.has_image) {
      tracer_->Instant("recovery.checkpoint_loaded", "recovery", obs_track::kRecovery,
                       {{"node", std::to_string(node.value)},
                        {"bytes", std::to_string(req.image.size())}});
    }
  }
  PUB_LOG_INFO("recovery: node-unit recovery of node %u (round %llu, image: %s)", node.value,
               static_cast<unsigned long long>(nr.round), req.has_image ? "yes" : "none");
  SendFromRecoveryPid(nr.rproc, ProcessId{node, NodeKernel::kKernelLocalId},
                      EncodeRestoreNodeRequest(req));
  node_recoveries_[node] = std::move(nr);
}

void RecoveryManager::BeginNodeReplay(NodeRecovery& nr) {
  // Snapshot after the restore-ack, for the same reason BeginReplay does.
  const auto node_replay = recorder_->storage().NodeReplayList(nr.node);
  if (tracer_ != nullptr) {
    nr.replay_span_id = tracer_->BeginSpan(
        "recovery.replay", "recovery", obs_track::kRecovery,
        {{"node", std::to_string(nr.node.value)},
         {"messages", std::to_string(node_replay.size())}});
  }
  if (obs_replayed_messages_ != nullptr) {
    obs_replayed_messages_->Add(node_replay.size());
  }
  for (const StableStorage::NodeLogEntry& entry : node_replay) {
    // Serialize straight from the stored Buffer view — no counted ToBytes
    // materialization on the replay path.
    SendFromRecoveryPid(nr.rproc, ProcessId{nr.node, NodeKernel::kKernelLocalId},
                        EncodeNodeReplayMessage(entry.step, entry.packet));
  }
  SendFromRecoveryPid(
      nr.rproc, ProcessId{nr.node, NodeKernel::kKernelLocalId},
      EncodeNodeRecoveryRound(KernelOp::kNodeRecoveryComplete, {nr.node, nr.round}));
  nr.phase = Phase::kAwaitCompleteAck;
}

// ---------------------------------------------------------------------------
// Inbound packets
// ---------------------------------------------------------------------------

bool RecoveryManager::HandlePacket(const Packet& packet) {
  switch (PeekOp(packet.body)) {
    case KernelOp::kPong:
      HandlePong(packet.header.src_node);
      return true;
    case KernelOp::kRecreateAck: {
      auto target = DecodeRecoveryTarget(packet.body);
      if (!target.ok()) {
        return true;
      }
      auto it = recoveries_.find(target->pid);
      if (it != recoveries_.end() && it->second.round == target->recovery_round &&
          it->second.phase == Phase::kAwaitRecreateAck) {
        BeginReplay(it->second);
      }
      return true;
    }
    case KernelOp::kReplayBurstAck: {
      auto ack = DecodeReplayBurstAck(packet.body);
      if (!ack.ok()) {
        return true;
      }
      auto it = recoveries_.find(ack->pid);
      if (it == recoveries_.end() || it->second.round != ack->recovery_round ||
          it->second.phase != Phase::kReplaying) {
        return true;  // Stale round or attempt already gone (§3.5).
      }
      RecoveryProcess& rp = it->second;
      if (ack->cumulative_seq <= rp.highest_acked) {
        return true;  // Duplicate/reordered ack.
      }
      const uint64_t acked_upto = std::min<uint64_t>(ack->cumulative_seq, rp.next_burst);
      for (uint64_t i = rp.highest_acked; i < acked_upto; ++i) {
        const size_t burst_bytes = rp.bursts[i].bytes;
        rp.bytes_in_flight -= burst_bytes;
        outstanding_replay_bytes_ -= burst_bytes;
      }
      rp.highest_acked = acked_upto;
      rp.retransmit_timeout = options_.replay_retransmit_timeout;  // Progress resets backoff.
      if (rp.highest_acked >= rp.bursts.size()) {
        sim_->Cancel(rp.retransmit_timer);
        rp.retransmit_timer = EventId{};
        FinishReplay(rp);
      } else {
        PumpReplayWindow(rp);
      }
      // The ack freed byte budget — budget-stalled recoveries may now pump.
      PumpAllReplaying();
      return true;
    }
    case KernelOp::kRecoveryCompleteAck: {
      auto target = DecodeRecoveryTarget(packet.body);
      if (!target.ok()) {
        return true;
      }
      auto it = recoveries_.find(target->pid);
      if (it != recoveries_.end() && it->second.round == target->recovery_round &&
          it->second.phase == Phase::kAwaitCompleteAck) {
        ProcessId pid = it->second.target;
        if (tracer_ != nullptr) {
          if (it->second.replay_span_id != 0) {
            tracer_->EndSpan(it->second.replay_span_id, "recovery.replay", "recovery",
                             obs_track::kRecovery);
          }
          if (it->second.span_id != 0) {
            tracer_->EndSpan(it->second.span_id, "recovery.process", "recovery",
                             obs_track::kRecovery);
          }
          tracer_->Instant("recovery.caught_up", "recovery", obs_track::kRecovery,
                           {{"pid", ToString(pid)}});
        }
        ReleaseReplayState(it->second);
        recoveries_.erase(it);
        recorder_->storage().SetRecovering(pid, false);
        ++stats_.process_recoveries_completed;
        if (obs_recoveries_completed_ != nullptr) {
          obs_recoveries_completed_->Add(1);
        }
        PUB_LOG_INFO("recovery: %s recovered", ToString(pid).c_str());
        if (recovery_done_) {
          recovery_done_(pid);
        }
        AdmitPending();  // A slot freed; admit queued recoveries.
      }
      return true;
    }
    case KernelOp::kRestoreNodeAck: {
      auto round = DecodeNodeRecoveryRound(packet.body);
      if (!round.ok()) {
        return true;
      }
      auto it = node_recoveries_.find(round->node);
      if (it != node_recoveries_.end() && it->second.round == round->recovery_round &&
          it->second.phase == Phase::kAwaitRecreateAck) {
        BeginNodeReplay(it->second);
      }
      return true;
    }
    case KernelOp::kNodeRecoveryCompleteAck: {
      auto round = DecodeNodeRecoveryRound(packet.body);
      if (!round.ok()) {
        return true;
      }
      auto it = node_recoveries_.find(round->node);
      if (it != node_recoveries_.end() && it->second.round == round->recovery_round &&
          it->second.phase == Phase::kAwaitCompleteAck) {
        if (tracer_ != nullptr) {
          if (it->second.replay_span_id != 0) {
            tracer_->EndSpan(it->second.replay_span_id, "recovery.replay", "recovery",
                             obs_track::kRecovery);
          }
          if (it->second.span_id != 0) {
            tracer_->EndSpan(it->second.span_id, "recovery.process", "recovery",
                             obs_track::kRecovery);
          }
          tracer_->Instant("recovery.caught_up", "recovery", obs_track::kRecovery,
                           {{"node", std::to_string(round->node.value)}});
        }
        node_recoveries_.erase(it);
        ++stats_.process_recoveries_completed;
        if (obs_recoveries_completed_ != nullptr) {
          obs_recoveries_completed_->Add(1);
        }
        PUB_LOG_INFO("recovery: node %u recovered as a unit", round->node.value);
        if (recovery_done_) {
          recovery_done_(ProcessId{round->node, NodeKernel::kKernelLocalId});
        }
      }
      return true;
    }
    case KernelOp::kStateReply: {
      auto reply = DecodeStateReply(packet.body);
      if (!reply.ok()) {
        return true;
      }
      if (reply->restart_number != current_restart_number_) {
        // §3.4: responses belonging to an earlier restart are ignored.
        ++stats_.stale_state_replies_ignored;
        return true;
      }
      for (const auto& [pid, answer] : reply->answers) {
        auto info = recorder_->storage().Info(pid);
        if (!info.ok() || info->home_node != reply->node) {
          continue;
        }
        switch (answer) {
          case ProcessStateAnswer::kFunctioning:
            break;  // Nothing happened; no action (§3.3.4).
          case ProcessStateAnswer::kCrashed:
          case ProcessStateAnswer::kRecovering:
          case ProcessStateAnswer::kUnknown:
            StartRecovery(pid, reply->node);
            break;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Recorder restart (§3.3.4)
// ---------------------------------------------------------------------------

void RecoveryManager::OnRecorderRestart(uint64_t restart_number) {
  current_restart_number_ = restart_number;
  // Recovery processes did not survive the recorder crash; the state replies
  // will tell us which targets are stuck in "recovering".
  for (auto& [pid, rp] : recoveries_) {
    ReleaseReplayState(rp);
  }
  recoveries_.clear();
  pending_.clear();
  pending_set_.clear();
  outstanding_replay_bytes_ = 0;
  // Reset the watchdogs' clocks — no pongs flowed while we were down.
  for (auto& [node, watch] : watches_) {
    watch.last_pong = sim_->Now();
  }
  ProcessId manager{recorder_->node(), kManagerLocalId};
  StateQuery query;
  query.restart_number = restart_number;
  query.pids = recorder_->storage().AllProcesses();
  for (NodeId node : directory_->node_ids()) {
    ++stats_.state_queries_sent;
    SendFromRecoveryPid(manager, ProcessId{node, NodeKernel::kKernelLocalId},
                        EncodeStateQuery(query));
  }
}

}  // namespace publishing
