#include "src/core/stable_storage.h"

#include <algorithm>

#include "src/core/storage_journal.h"

namespace publishing {

StableStorage::StableStorage(StableStorage&& other) noexcept
    : logs_(std::move(other.logs_)),
      node_logs_(std::move(other.node_logs_)),
      next_arrival_(other.next_arrival_),
      restart_number_(other.restart_number_),
      messages_stored_(other.messages_stored_),
      peak_bytes_(other.peak_bytes_),
      backend_(other.backend_),
      clock_(std::move(other.clock_)),
      lifecycle_(other.lifecycle_),
      lifecycle_node_(other.lifecycle_node_) {
  other.backend_ = nullptr;
  if (backend_ != nullptr) {
    // The backend's snapshot source captured `other`; re-point it here.
    backend_->SetSnapshotSource([this] { return StorageJournal::SnapshotRecords(*this); });
  }
}

StableStorage& StableStorage::operator=(StableStorage&& other) noexcept {
  if (this != &other) {
    logs_ = std::move(other.logs_);
    node_logs_ = std::move(other.node_logs_);
    next_arrival_ = other.next_arrival_;
    restart_number_ = other.restart_number_;
    messages_stored_ = other.messages_stored_;
    peak_bytes_ = other.peak_bytes_;
    backend_ = other.backend_;
    clock_ = std::move(other.clock_);
    lifecycle_ = other.lifecycle_;
    lifecycle_node_ = other.lifecycle_node_;
    other.backend_ = nullptr;
    if (backend_ != nullptr) {
      backend_->SetSnapshotSource([this] { return StorageJournal::SnapshotRecords(*this); });
    }
  }
  return *this;
}

void StableStorage::AttachBackend(StorageBackend* backend) {
  backend_ = backend;
  if (backend_ != nullptr) {
    backend_->SetSnapshotSource([this] { return StorageJournal::SnapshotRecords(*this); });
  }
}

void StableStorage::Journal(Bytes record) {
  if (backend_ != nullptr) {
    (void)backend_->Append(record, clock_ ? clock_() : 0);
  }
}

Status StableStorage::Flush() {
  return backend_ != nullptr ? backend_->Sync() : Status::Ok();
}

StableStorage::ProcessLog& StableStorage::Ensure(const ProcessId& pid) { return logs_[pid]; }

void StableStorage::RecordCreation(const ProcessId& pid, const std::string& program,
                                   std::vector<Link> initial_links, NodeId home_node,
                                   bool recoverable) {
  Journal(StorageJournal::EncodeCreate(pid, program, initial_links, home_node, recoverable));
  ProcessLog& log = Ensure(pid);
  log.info.program = program;
  log.info.initial_links = std::move(initial_links);
  log.info.home_node = home_node;
  log.info.destroyed = false;
  log.info.recoverable = recoverable;
}

void StableStorage::RecordDestruction(const ProcessId& pid) {
  auto it = logs_.find(pid);
  if (it == logs_.end()) {
    return;
  }
  Journal(StorageJournal::EncodeDestroy(pid));
  // Keep a tombstone so restart queries do not resurrect it, but free the
  // replay data.
  it->second.info.destroyed = true;
  it->second.entries.clear();
  it->second.by_id.clear();
  it->second.read_order.clear();
  it->second.checkpoint.clear();
  it->second.info.has_checkpoint = false;
  it->second.info.log_bytes = 0;
  it->second.info.checkpoint_bytes = 0;
}

void StableStorage::SetHomeNode(const ProcessId& pid, NodeId node) {
  auto it = logs_.find(pid);
  if (it != logs_.end()) {
    Journal(StorageJournal::EncodeSetHome(pid, node));
    it->second.info.home_node = node;
  }
}

void StableStorage::AppendMessage(const ProcessId& pid, const MessageId& id, Buffer packet) {
  ProcessLog& log = Ensure(pid);
  if (log.info.destroyed || !log.info.recoverable) {
    return;  // §6.6.1: nothing is published for non-recoverable processes.
  }
  if (!log.ever_logged.insert(id).second) {
    return;  // Duplicate of a frame we already published.
  }
  Journal(StorageJournal::EncodeAppendMessage(pid, id, packet));
  ObserveDurable(id);
  LogEntry entry;
  entry.id = id;
  entry.arrival = next_arrival_++;
  entry.packet = std::move(packet);
  log.info.log_bytes += entry.packet.size();
  log.by_id.emplace(entry.id, log.entries.size());
  log.entries.push_back(std::move(entry));
  log.info.log_entries = log.entries.size();
  ++messages_stored_;
  RefreshAccounting();
}

void StableStorage::RecordRead(const ProcessId& reader, const MessageId& id) {
  auto it = logs_.find(reader);
  if (it == logs_.end()) {
    return;
  }
  ProcessLog& log = it->second;
  if (log.ever_read.contains(id)) {
    return;  // Replay re-read; order already known.
  }
  auto pos = log.by_id.find(id);
  if (pos == log.by_id.end()) {
    return;
  }
  LogEntry& entry = log.entries[pos->second];
  Journal(StorageJournal::EncodeRecordRead(reader, id));
  entry.read = true;
  entry.read_seq = log.next_read_seq++;
  log.ever_read.insert(id);
  // read_seq is monotonic, so appending keeps read_order sorted by read_seq
  // — this is what lets Replay() skip the per-attempt sort.
  log.read_order.push_back(id);
}

void StableStorage::RecordSent(const ProcessId& sender, uint64_t seq) {
  ProcessLog& log = Ensure(sender);
  if (seq > log.info.last_sent_seq) {
    Journal(StorageJournal::EncodeRecordSent(sender, seq));
    log.info.last_sent_seq = seq;
  }
}

void StableStorage::StoreCheckpoint(const ProcessId& pid, Bytes state, uint64_t reads_done) {
  ProcessLog& log = Ensure(pid);
  if (log.info.destroyed) {
    return;
  }
  Journal(StorageJournal::EncodeStoreCheckpoint(pid, state, reads_done));
  log.checkpoint = std::move(state);
  log.info.has_checkpoint = true;
  log.info.checkpoint_reads = reads_done;
  log.info.checkpoint_bytes = log.checkpoint.size();
  // Discard subsumed messages.  Reads race with the checkpoint message in
  // transit, so drop only entries whose read position (read_seq is global
  // per process) falls within the checkpoint's read count.
  std::erase_if(log.entries,
                [&](const LogEntry& e) { return e.read && e.read_seq <= reads_done; });
  // Compaction moved the surviving entries; re-point the replay index at
  // their new positions (same O(n) pass the erase already paid for).
  RebuildReplayIndex(log);
  log.info.log_bytes = 0;
  for (const LogEntry& entry : log.entries) {
    log.info.log_bytes += entry.packet.size();
  }
  log.info.log_entries = log.entries.size();
  RefreshAccounting();
  if (backend_ != nullptr) {
    // §3.3.1: the checkpoint must be reliably stored before the log prefix
    // it subsumes can go; this is also the compaction trigger.
    backend_->OnCheckpointStored();
  }
}

Result<Bytes> StableStorage::LoadCheckpoint(const ProcessId& pid) const {
  auto it = logs_.find(pid);
  if (it == logs_.end() || !it->second.info.has_checkpoint) {
    return Status(StatusCode::kNotFound, "no checkpoint for " + ToString(pid));
  }
  return it->second.checkpoint;
}

void StableStorage::SetRecovering(const ProcessId& pid, bool recovering) {
  auto it = logs_.find(pid);
  if (it == logs_.end() || it->second.info.recovering == recovering) {
    return;
  }
  Journal(StorageJournal::EncodeSetRecovering(pid, recovering));
  it->second.info.recovering = recovering;
}

void StableStorage::RebuildReplayIndex(ProcessLog& log) {
  log.by_id.clear();
  log.by_id.reserve(log.entries.size());
  size_t read_count = 0;
  for (size_t i = 0; i < log.entries.size(); ++i) {
    log.by_id.emplace(log.entries[i].id, i);
    if (log.entries[i].read) {
      ++read_count;
    }
  }
  // Drop read_order ids whose entries were compacted away.  Surviving ids
  // stay in read_seq order, so the incremental (checkpoint) path needs no
  // sort.
  std::erase_if(log.read_order, [&](const MessageId& id) {
    auto it = log.by_id.find(id);
    return it == log.by_id.end() || !log.entries[it->second].read;
  });
  if (log.read_order.size() != read_count) {
    // Cold restore: StorageJournal filled `entries` directly (no incremental
    // read_order exists), so derive it from the persisted read_seq stamps.
    log.read_order.clear();
    log.read_order.reserve(read_count);
    for (const LogEntry& entry : log.entries) {
      if (entry.read) {
        log.read_order.push_back(entry.id);
      }
    }
    std::sort(log.read_order.begin(), log.read_order.end(),
              [&](const MessageId& a, const MessageId& b) {
                return log.entries[log.by_id.at(a)].read_seq <
                       log.entries[log.by_id.at(b)].read_seq;
              });
  }
}

ReplayCursor StableStorage::Replay(const ProcessId& pid) const {
  auto it = logs_.find(pid);
  if (it == logs_.end()) {
    return {};
  }
  const ProcessLog& log = it->second;
  std::vector<LogEntry> out;
  out.reserve(log.entries.size());
  // Read entries in read order — read_order is maintained sorted, so this is
  // a straight index walk; each push shares the stored packet Buffer.
  for (const MessageId& id : log.read_order) {
    auto pos = log.by_id.find(id);
    if (pos != log.by_id.end()) {
      out.push_back(log.entries[pos->second]);
    }
  }
  // Then unread entries in arrival order (`entries` is arrival-ordered).
  for (const LogEntry& entry : log.entries) {
    if (!entry.read) {
      out.push_back(entry);
    }
  }
  return ReplayCursor(std::move(out));
}

std::vector<LogEntry> StableStorage::ReplayList(const ProcessId& pid) const {
  return std::move(Replay(pid)).TakeEntries();
}

Result<ProcessLogInfo> StableStorage::Info(const ProcessId& pid) const {
  auto it = logs_.find(pid);
  if (it == logs_.end()) {
    return Status(StatusCode::kNotFound, "unknown process " + ToString(pid));
  }
  return it->second.info;
}

uint64_t StableStorage::LastSent(const ProcessId& pid) const {
  auto it = logs_.find(pid);
  return it == logs_.end() ? 0 : it->second.info.last_sent_seq;
}

std::vector<ProcessId> StableStorage::ProcessesOnNode(NodeId node) const {
  std::vector<ProcessId> out;
  for (const auto& [pid, log] : logs_) {
    if (!log.info.destroyed && !log.info.program.empty() && log.info.home_node == node) {
      out.push_back(pid);
    }
  }
  return out;
}

std::vector<ProcessId> StableStorage::AllProcesses() const {
  std::vector<ProcessId> out;
  for (const auto& [pid, log] : logs_) {
    if (!log.info.destroyed && !log.info.program.empty()) {
      out.push_back(pid);
    }
  }
  return out;
}

uint32_t StableStorage::LocalIdHighWater(NodeId node) const {
  uint32_t high = 0;
  for (const auto& [pid, log] : logs_) {
    if (pid.origin == node) {
      high = std::max(high, pid.local);
    }
  }
  return high;
}

void StableStorage::AppendNodeMessage(NodeId node, const MessageId& id, Buffer packet) {
  NodeLog& log = node_logs_[node];
  if (!log.ever_logged.insert(id).second) {
    return;  // Retransmission of an already-published frame.
  }
  Journal(StorageJournal::EncodeAppendNodeMessage(node, id, packet));
  ObserveDurable(id);
  NodeLogEntry entry;
  entry.id = id;
  entry.arrival = next_arrival_++;
  entry.packet = std::move(packet);
  log.entries.push_back(std::move(entry));
  ++messages_stored_;
}

void StableStorage::StampNodeMessage(NodeId node, const MessageId& id, uint64_t step) {
  auto it = node_logs_.find(node);
  if (it == node_logs_.end()) {
    return;
  }
  for (NodeLogEntry& entry : it->second.entries) {
    if (entry.id == id && !entry.stamped) {
      Journal(StorageJournal::EncodeStampNodeMessage(node, id, step));
      entry.step = step;
      entry.stamped = true;
      return;
    }
  }
}

void StableStorage::StoreNodeCheckpoint(NodeId node, Bytes image, uint64_t node_step) {
  Journal(StorageJournal::EncodeStoreNodeCheckpoint(node, image, node_step));
  NodeLog& log = node_logs_[node];
  log.has_checkpoint = true;
  log.checkpoint = std::move(image);
  log.checkpoint_step = node_step;
  // Entries the checkpoint has already absorbed: stamped at or before the
  // capture position (read ones are in process state, unread ones in the
  // serialized queues).
  std::erase_if(log.entries, [node_step](const NodeLogEntry& entry) {
    return entry.stamped && entry.step <= node_step;
  });
  if (backend_ != nullptr) {
    backend_->OnCheckpointStored();
  }
}

Result<StableStorage::NodeCheckpointInfo> StableStorage::LoadNodeCheckpoint(NodeId node) const {
  auto it = node_logs_.find(node);
  if (it == node_logs_.end() || !it->second.has_checkpoint) {
    return Status(StatusCode::kNotFound, "no node checkpoint for " + ToString(node));
  }
  NodeCheckpointInfo info;
  info.image = it->second.checkpoint;
  info.node_step = it->second.checkpoint_step;
  return info;
}

std::vector<StableStorage::NodeLogEntry> StableStorage::NodeReplayList(NodeId node) const {
  auto it = node_logs_.find(node);
  if (it == node_logs_.end()) {
    return {};
  }
  const uint64_t base = it->second.has_checkpoint ? it->second.checkpoint_step : 0;
  std::vector<NodeLogEntry> out;
  for (const NodeLogEntry& entry : it->second.entries) {
    if (entry.stamped && entry.step > base) {
      out.push_back(entry);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const NodeLogEntry& a, const NodeLogEntry& b) { return a.step < b.step; });
  return out;
}

uint64_t StableStorage::IncrementRestartNumber() {
  ++restart_number_;
  // The restart number stamps state queries (§3.4); a recorder that forgot
  // it could reuse a number and mis-pair replies, so it goes durable
  // immediately rather than riding the group-commit window.
  Journal(StorageJournal::EncodeRestartNumber(restart_number_));
  if (backend_ != nullptr) {
    (void)backend_->Sync();
  }
  return restart_number_;
}

size_t StableStorage::TotalBytes() const {
  size_t total = 0;
  for (const auto& [pid, log] : logs_) {
    total += log.info.log_bytes + log.info.checkpoint_bytes;
  }
  return total;
}

size_t StableStorage::TotalPages() const {
  // Messages are buffered into 4 KB pages per process (§4.5); each process's
  // log occupies whole pages.
  size_t pages = 0;
  for (const auto& [pid, log] : logs_) {
    size_t bytes = log.info.log_bytes + log.info.checkpoint_bytes;
    pages += (bytes + kPageBytes - 1) / kPageBytes;
  }
  return pages;
}

void StableStorage::RefreshAccounting() { peak_bytes_ = std::max(peak_bytes_, TotalBytes()); }

}  // namespace publishing
