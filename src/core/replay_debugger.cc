#include "src/core/replay_debugger.h"

#include <utility>

#include "src/demos/process_image.h"
#include "src/demos/protocol.h"
#include "src/transport/packet.h"

namespace publishing {

// KernelApi stub for offline replay: resolves links from a private table and
// records the program's outputs instead of transmitting them.
class ReplayDebugger::OfflineApi : public KernelApi {
 public:
  explicit OfflineApi(ProcessId self) : self_(self) {}

  ProcessId Self() const override { return self_; }
  NodeId CurrentNode() const override { return self_.origin; }

  Result<LinkId> CreateLink(uint16_t channel, uint32_t code) override {
    LinkId id{next_link_id_++};
    links_[id.value] = Link{self_, channel, code, 0};
    return id;
  }

  Status DestroyLink(LinkId link) override {
    if (links_.erase(link.value) == 0) {
      return Status(StatusCode::kNotFound, "no such link");
    }
    return Status::Ok();
  }

  Result<LinkId> DuplicateLink(LinkId link) override {
    auto it = links_.find(link.value);
    if (it == links_.end()) {
      return Status(StatusCode::kNotFound, "no such link");
    }
    LinkId id{next_link_id_++};
    links_[id.value] = it->second;
    return id;
  }

  Result<Link> InspectLink(LinkId link) const override {
    auto it = links_.find(link.value);
    if (it == links_.end()) {
      return Status(StatusCode::kNotFound, "no such link");
    }
    return it->second;
  }

  Status Send(LinkId link, Bytes body, LinkId pass_link) override {
    auto it = links_.find(link.value);
    if (it == links_.end()) {
      return Status(StatusCode::kNotFound, "no such link");
    }
    if (pass_link.IsValid()) {
      links_.erase(pass_link.value);
    }
    sends_.push_back(DebuggerSend{it->second.dest, it->second.channel, it->second.code,
                                  body.size()});
    return Status::Ok();
  }

  Status RequestCreateProcess(const std::string&, NodeId, uint16_t,
                              std::vector<LinkId>) override {
    return Status::Ok();  // Recorded nowhere; offline replay has no cluster.
  }

  void Charge(SimDuration) override {}
  void Exit() override {}

  void InstallAt(uint32_t id, const Link& link) {
    links_[id] = link;
    next_link_id_ = std::max(next_link_id_, id + 1);
  }
  LinkId InstallNext(const Link& link) {
    LinkId id{next_link_id_++};
    links_[id.value] = link;
    return id;
  }
  void set_next_link_id(uint32_t id) { next_link_id_ = std::max(next_link_id_, id); }

  std::vector<DebuggerSend> TakeSends() { return std::exchange(sends_, {}); }

 private:
  ProcessId self_;
  std::map<uint32_t, Link> links_;
  uint32_t next_link_id_ = 1;
  std::vector<DebuggerSend> sends_;
};

ReplayDebugger::ReplayDebugger(const StableStorage* storage, const ProgramRegistry* registry,
                               ProcessId target)
    : storage_(storage), registry_(registry), target_(target) {}

ReplayDebugger::~ReplayDebugger() = default;

Status ReplayDebugger::Initialize() {
  auto info = storage_->Info(target_);
  if (!info.ok()) {
    return info.status();
  }
  if (info->program.empty()) {
    return Status(StatusCode::kNotFound, "no program image recorded for " + ToString(target_));
  }
  auto program = registry_->Instantiate(info->program);
  if (!program.ok()) {
    return program.status();
  }
  program_ = std::move(*program);
  api_ = std::make_unique<OfflineApi>(target_);

  auto checkpoint = storage_->LoadCheckpoint(target_);
  if (checkpoint.ok()) {
    auto image = DecodeProcessImage(*checkpoint);
    if (!image.ok()) {
      return image.status();
    }
    Reader state(
        std::span<const uint8_t>(image->program_state.data(), image->program_state.size()));
    Status loaded = program_->LoadState(state);
    if (!loaded.ok()) {
      return loaded;
    }
    for (const auto& [id, link] : image->links) {
      api_->InstallAt(id, link);
    }
    api_->set_next_link_id(image->next_link_id);
  } else {
    // Fresh image: replay OnStart too, so the link table evolves exactly as
    // it did live.
    for (const Link& link : info->initial_links) {
      api_->InstallNext(link);
    }
    program_->OnStart(*api_);
    api_->TakeSends();  // OnStart outputs are not attributed to a step.
  }

  replay_ = storage_->ReplayList(target_);
  cursor_ = 0;
  initialized_ = true;
  return Status::Ok();
}

Result<DebuggerStep> ReplayDebugger::Step() {
  if (!initialized_) {
    return Status(StatusCode::kInternal, "Initialize() not called");
  }
  if (AtEnd()) {
    return Status(StatusCode::kNotFound, "history exhausted");
  }
  const LogEntry& entry = replay_[cursor_++];
  auto packet = ParsePacket(entry.packet);
  if (!packet.ok()) {
    return packet.status();
  }

  DebuggerStep step;
  step.id = packet->header.id;
  step.from = packet->header.src_process;
  step.channel = packet->header.channel;
  step.body_bytes = packet->body.size();
  if (packet->header.deliver_to_kernel()) {
    // Process-control entries mutate kernel state, not program state; the
    // only program-visible effect we need to mirror is MOVELINK's table
    // growth.
    step.channel = 0xFFFF;
    if (PeekOp(packet->body) == KernelOp::kMoveLink && !packet->link_blob.empty()) {
      auto link = LinkFromBytes(packet->link_blob);
      if (link.ok()) {
        api_->InstallNext(*link);
      }
    }
    ++steps_;
    return step;
  }

  DeliveredMessage msg;
  msg.id = packet->header.id;
  msg.from = packet->header.src_process;
  msg.channel = packet->header.channel;
  msg.code = packet->header.code;
  msg.body = packet->body;
  if (!packet->link_blob.empty()) {
    auto link = LinkFromBytes(packet->link_blob);
    if (link.ok()) {
      msg.passed_link = api_->InstallNext(*link);
    }
  }
  program_->OnMessage(*api_, msg);
  step.sends = api_->TakeSends();
  ++steps_;
  return step;
}

Result<uint64_t> ReplayDebugger::RunToEnd() {
  uint64_t steps = 0;
  while (!AtEnd()) {
    auto step = Step();
    if (!step.ok()) {
      return step.status();
    }
    ++steps;
  }
  return steps;
}

Result<uint64_t> ReplayDebugger::RunUntilMessage(const MessageId& id) {
  uint64_t steps = 0;
  while (!AtEnd()) {
    auto step = Step();
    if (!step.ok()) {
      return step.status();
    }
    ++steps;
    if (step->id == id) {
      return steps;
    }
  }
  return Status(StatusCode::kNotFound, "message never appears in the published history");
}

}  // namespace publishing
