// Checkpoint policies and the scheduler that applies them (§3.2.3, §3.2.4,
// §5.1).
//
// Publishing allows checkpoint frequency to be chosen per process; these are
// the policies the thesis discusses:
//   * FixedInterval   — baseline.
//   * Young           — interval = sqrt(2 * T_save * T_mtbf) (§3.2.4).
//   * StorageBalanced — checkpoint when published-message storage exceeds
//                       the checkpoint size, the policy the queuing study
//                       used (§5.1: "this policy tries to balance the cost
//                       of doing a checkpoint for a process against the disk
//                       space required for published message storage").
//   * RecoveryBound   — checkpoint whenever the §3.2.3 t_max estimate
//                       exceeds a per-process recovery-time budget.
//
// The scheduler polls every `poll_period` and asks the policy, per live
// process, whether to checkpoint now.  Policies see the recorder's stable
// storage for sizes and the recovery-time model for bounds.

#ifndef SRC_CORE_CHECKPOINT_POLICY_H_
#define SRC_CORE_CHECKPOINT_POLICY_H_

#include <map>
#include <memory>

#include "src/core/recorder.h"
#include "src/core/recovery_time_model.h"
#include "src/demos/cluster.h"

namespace publishing {

// Per-process view a policy decides from.
struct CheckpointContext {
  ProcessId pid;
  SimTime now = 0;
  SimTime last_checkpoint = 0;       // 0 = never checkpointed.
  size_t log_bytes = 0;              // Published bytes held for this process.
  size_t checkpoint_bytes = 0;       // Size of the last checkpoint (0 first).
  uint64_t messages_since = 0;       // Log entries since last checkpoint.
};

class CheckpointPolicy {
 public:
  virtual ~CheckpointPolicy() = default;

  virtual const char* name() const = 0;
  virtual bool ShouldCheckpoint(const CheckpointContext& context) const = 0;
};

class FixedIntervalPolicy : public CheckpointPolicy {
 public:
  explicit FixedIntervalPolicy(SimDuration interval) : interval_(interval) {}

  const char* name() const override { return "fixed-interval"; }
  bool ShouldCheckpoint(const CheckpointContext& context) const override {
    return context.now - context.last_checkpoint >= interval_;
  }

 private:
  SimDuration interval_;
};

class YoungPolicy : public CheckpointPolicy {
 public:
  YoungPolicy(SimDuration save_time, SimDuration mtbf)
      : interval_(YoungOptimalInterval(save_time, mtbf)) {}

  const char* name() const override { return "young"; }
  SimDuration interval() const { return interval_; }
  bool ShouldCheckpoint(const CheckpointContext& context) const override {
    return context.now - context.last_checkpoint >= interval_;
  }

 private:
  SimDuration interval_;
};

class StorageBalancedPolicy : public CheckpointPolicy {
 public:
  const char* name() const override { return "storage-balanced"; }
  bool ShouldCheckpoint(const CheckpointContext& context) const override {
    // First checkpoint: wait until something was published.
    size_t state_size = context.checkpoint_bytes == 0 ? 1024 : context.checkpoint_bytes;
    return context.log_bytes > state_size;
  }
};

class RecoveryBoundPolicy : public CheckpointPolicy {
 public:
  RecoveryBoundPolicy(SimDuration bound, RecoveryTimeParams params)
      : bound_(bound), params_(params) {}

  const char* name() const override { return "recovery-bound"; }
  bool ShouldCheckpoint(const CheckpointContext& context) const override {
    RecoveryTimeModel model(params_);
    uint64_t pages =
        (context.checkpoint_bytes + StableStorage::kPageBytes - 1) / StableStorage::kPageBytes;
    model.OnCheckpoint(pages == 0 ? 1 : pages, context.last_checkpoint);
    // Approximate per-message byte volume from the aggregate.
    for (uint64_t i = 0; i < context.messages_since; ++i) {
      model.OnMessage(context.messages_since == 0
                          ? 0
                          : context.log_bytes / context.messages_since);
    }
    return model.MaxRecoveryTime(context.now) > bound_;
  }

 private:
  SimDuration bound_;
  RecoveryTimeParams params_;
};

struct CheckpointSchedulerStats {
  uint64_t checkpoints_requested = 0;
  uint64_t polls = 0;
};

// Polls live processes and checkpoints them per the policy.  Transparent to
// the processes themselves (§3.2.2): capture happens in the kernel.
class CheckpointScheduler {
 public:
  CheckpointScheduler(Cluster* cluster, Recorder* recorder,
                      std::unique_ptr<CheckpointPolicy> policy, SimDuration poll_period);
  ~CheckpointScheduler();

  void Start();
  void Stop();

  const CheckpointSchedulerStats& stats() const { return stats_; }
  const CheckpointPolicy& policy() const { return *policy_; }

 private:
  void Poll();

  Cluster* cluster_;
  Recorder* recorder_;
  std::unique_ptr<CheckpointPolicy> policy_;
  SimDuration poll_period_;
  std::unique_ptr<PeriodicTask> task_;
  std::map<ProcessId, SimTime> last_checkpoint_;
  std::map<ProcessId, uint64_t> last_message_count_;
  CheckpointSchedulerStats stats_;
};

}  // namespace publishing

#endif  // SRC_CORE_CHECKPOINT_POLICY_H_
