#include "src/core/publishing_system.h"

#include "src/common/logging.h"

namespace publishing {

namespace {
// Mirrors the process-wide buffer counters into the metrics registry as they
// happen.  The hot path still only bumps two uint64s when no sink is
// installed (the uninstrumented default).
class CounterBufferSink final : public BufferStatsSink {
 public:
  explicit CounterBufferSink(MetricsRegistry* metrics)
      : bytes_copied_(metrics->GetCounter("buf.bytes_copied")),
        bytes_shared_(metrics->GetCounter("buf.bytes_shared")) {}

  void OnBufferCopy(uint64_t bytes) override { bytes_copied_->Add(bytes); }
  void OnBufferShare(uint64_t bytes) override { bytes_shared_->Add(bytes); }

 private:
  Counter* bytes_copied_;
  Counter* bytes_shared_;
};
}  // namespace

PublishingSystem::PublishingSystem(PublishingSystemConfig config) : config_(std::move(config)) {
  // The recorder and its traffic live on node 0 (Cluster::kRecorderNode).
  config_.recorder.node = Cluster::kRecorderNode;
  config_.cluster.kernel.recorder_node = Cluster::kRecorderNode;
  if (config_.node_unit_mode) {
    config_.cluster.kernel.node_unit_mode = true;
    config_.recorder.node_unit = true;
    config_.recovery.node_unit = true;
  }

  // Defer the system-process boot until the recorder listens, so their
  // creation notices and messages are published too.
  const bool boot_system = config_.cluster.start_system_processes;
  config_.cluster.start_system_processes = false;

  if (config_.adopt_storage != nullptr) {
    storage_ = std::move(*config_.adopt_storage);
  }
  if (config_.storage_backend != nullptr) {
    storage_.AttachBackend(config_.storage_backend);
  }

  cluster_ = std::make_unique<Cluster>(config_.cluster);
  recorder_ = std::make_unique<Recorder>(&cluster_->sim(), &cluster_->medium(),
                                         &cluster_->names(), &storage_, config_.recorder);
  for (NodeId node : cluster_->node_ids()) {
    cluster_->kernel(node)->set_read_order_feed(recorder_.get());
  }
  recovery_ = std::make_unique<RecoveryManager>(cluster_.get(), recorder_.get(),
                                                config_.recovery);
  if (config_.start_recovery_manager) {
    recovery_->Start();
  }
  if (boot_system) {
    cluster_->BootSystemProcesses();
  }
  // Stamp log lines with this system's virtual clock.  The token guard means
  // a second system constructed later takes over, and our destructor only
  // clears the source if we are still the active registration.
  log_time_token_ = SetLogTimeSource([this] { return cluster_->sim().Now(); });
}

PublishingSystem::~PublishingSystem() {
  // Detach instrumentation before members tear down: the caller may destroy
  // the registry/tracer in any order relative to this system, and teardown
  // itself (cancelling watchdog timers, for one) must not touch dead sinks.
  if (obs_.enabled()) {
    EnableObservability(Observability{});
  }
  ClearLogTimeSource(log_time_token_);
}

void PublishingSystem::EnableObservability(const Observability& obs) {
  obs_ = obs;
  sim().SetObservability(obs);
  const char* label = "ethernet";
  switch (config_.cluster.medium) {
    case MediumKind::kEthernet:
      label = "ethernet";
      break;
    case MediumKind::kAcknowledgingEthernet:
      label = "ack_ethernet";
      break;
    case MediumKind::kStarHub:
      label = "star_hub";
      break;
    case MediumKind::kTokenRing:
      label = "token_ring";
      break;
  }
  cluster_->medium().SetObservability(obs, label);
  recorder_->SetObservability(obs);  // Covers the recorder's own endpoint.
  storage_.SetLifecycle(obs.lifecycle, Cluster::kRecorderNode);
  for (NodeId node : cluster_->node_ids()) {
    NodeKernel* kernel = cluster_->kernel(node);
    if (kernel != nullptr) {
      kernel->SetObservability(obs);  // Endpoint + the kernel's read stages.
    }
  }
  recovery_->SetObservability(obs);
  if (config_.storage_backend != nullptr) {
    config_.storage_backend->SetObservability(obs);
  }
  // Buffer accounting is process-wide, so the most recently instrumented
  // system owns the sink; detaching (null metrics) always uninstalls ours.
  if (obs.metrics != nullptr) {
    buffer_sink_ = std::make_unique<CounterBufferSink>(obs.metrics);
    SetBufferStatsSink(buffer_sink_.get());
  } else if (buffer_sink_ != nullptr) {
    // Another system instrumented after us may own the global slot by now;
    // only clear it if it is still ours.
    if (GetBufferStatsSink() == buffer_sink_.get()) {
      SetBufferStatsSink(nullptr);
    }
    buffer_sink_.reset();
  }
}

void PublishingSystem::EnableCheckpointPolicy(std::unique_ptr<CheckpointPolicy> policy,
                                              SimDuration poll_period) {
  checkpoint_scheduler_ = std::make_unique<CheckpointScheduler>(
      cluster_.get(), recorder_.get(), std::move(policy), poll_period);
  checkpoint_scheduler_->Start();
}

void PublishingSystem::EnableNodeCheckpointInterval(SimDuration period) {
  node_checkpoint_task_ = std::make_unique<PeriodicTask>(&sim(), period, [this] {
    if (recorder_->down()) {
      return;
    }
    for (NodeId node : cluster_->node_ids()) {
      NodeKernel* kernel = cluster_->kernel(node);
      if (kernel != nullptr && kernel->node_up() && !kernel->node_recovering()) {
        kernel->CheckpointNode();  // kUnavailable mid-handler: retry next tick.
      }
    }
  });
  node_checkpoint_task_->Start();
}

Status PublishingSystem::CrashProcess(const ProcessId& pid) {
  auto location = cluster_->names().Locate(pid);
  if (!location.ok()) {
    return location.status();
  }
  NodeKernel* kernel = cluster_->kernel(*location);
  if (kernel == nullptr) {
    return Status(StatusCode::kNotFound, "process is not on a processing node");
  }
  // Dump the causal history *at injection time*: the flight recorder rings
  // still hold what led up to the crash.
  if (obs_.lifecycle != nullptr) {
    obs_.lifecycle->NoteFault("crash_process", ToString(pid));
  }
  return kernel->CrashProcess(pid);
}

Status PublishingSystem::CrashNode(NodeId node) {
  NodeKernel* kernel = cluster_->kernel(node);
  if (kernel == nullptr) {
    return Status(StatusCode::kNotFound, "no such node");
  }
  if (obs_.lifecycle != nullptr) {
    obs_.lifecycle->NoteFault("crash_node", ToString(node));
  }
  kernel->CrashNode();
  return Status::Ok();
}

void PublishingSystem::CrashRecorder() {
  if (obs_.lifecycle != nullptr) {
    obs_.lifecycle->NoteFault("crash_recorder", ToString(Cluster::kRecorderNode));
  }
  recorder_->Crash();
}

bool PublishingSystem::RunUntilRecovered(const ProcessId& pid, SimDuration deadline) {
  bool done = false;
  auto previous = [this] { return recovery_.get(); }();
  previous->set_recovery_done_callback([&done, pid](const ProcessId& recovered) {
    if (recovered == pid) {
      done = true;
    }
  });
  const SimTime limit = sim().Now() + deadline;
  while (!done && sim().Now() < limit) {
    if (!sim().Step()) {
      break;
    }
  }
  previous->set_recovery_done_callback(nullptr);
  return done;
}

}  // namespace publishing
