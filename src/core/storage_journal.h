// The recorder database's journal record format.
//
// StableStorage journals every effective mutation through its attached
// StorageBackend as one of these records; RecoverStableStorage (the §4.5
// rebuild, src/storage/recovered_db.h) replays them in log order to
// reconstruct a bit-identical database.  Incremental records mirror the
// public mutators one-for-one, so replay reproduces arrival indices and
// read sequence numbers exactly.  Snapshot records (written by compaction)
// carry the *full* private image instead: restoring through the mutators
// would renumber read sequences and break later checkpoint subsumption.
//
// A snapshot is bracketed by kSnapshotBegin/kSnapshotEnd.  Begin clears the
// database, so a snapshot supersedes everything before it in the log; an
// unterminated snapshot (crash mid-compaction) is detected by the missing
// end marker and ignored by recovery — the pre-compaction segments are only
// deleted after the snapshot is durable, so the old data is still there.

#ifndef SRC_CORE_STORAGE_JOURNAL_H_
#define SRC_CORE_STORAGE_JOURNAL_H_

#include <span>
#include <vector>

#include "src/core/stable_storage.h"

namespace publishing {

enum class JournalOp : uint8_t {
  kInvalid = 0,
  // Incremental mutations (mirror the StableStorage mutators).
  kCreate = 1,
  kDestroy = 2,
  kSetHome = 3,
  kAppendMessage = 4,
  kRecordRead = 5,
  kRecordSent = 6,
  kStoreCheckpoint = 7,
  kSetRecovering = 8,
  kAppendNodeMessage = 9,
  kStampNodeMessage = 10,
  kStoreNodeCheckpoint = 11,
  kRestartNumber = 12,
  // Full-image snapshot written by compaction.
  kSnapshotBegin = 32,
  kSnapshotProcess = 33,
  kSnapshotNode = 34,
  kSnapshotCounters = 35,
  kSnapshotEnd = 36,
};

class StorageJournal {
 public:
  // --- Incremental record encoders (used by StableStorage's mutators) ---
  static Bytes EncodeCreate(const ProcessId& pid, const std::string& program,
                            const std::vector<Link>& links, NodeId home, bool recoverable);
  static Bytes EncodeDestroy(const ProcessId& pid);
  static Bytes EncodeSetHome(const ProcessId& pid, NodeId node);
  // Packet-carrying encoders take spans so shared Buffer views are written
  // straight into the WAL record without an intermediate copy.
  static Bytes EncodeAppendMessage(const ProcessId& pid, const MessageId& id,
                                   std::span<const uint8_t> packet);
  static Bytes EncodeRecordRead(const ProcessId& reader, const MessageId& id);
  static Bytes EncodeRecordSent(const ProcessId& sender, uint64_t seq);
  static Bytes EncodeStoreCheckpoint(const ProcessId& pid, const Bytes& state,
                                     uint64_t reads_done);
  static Bytes EncodeSetRecovering(const ProcessId& pid, bool recovering);
  static Bytes EncodeAppendNodeMessage(NodeId node, const MessageId& id,
                                       std::span<const uint8_t> packet);
  static Bytes EncodeStampNodeMessage(NodeId node, const MessageId& id, uint64_t step);
  static Bytes EncodeStoreNodeCheckpoint(NodeId node, const Bytes& image, uint64_t step);
  static Bytes EncodeRestartNumber(uint64_t number);

  // Op of an encoded record (kInvalid for an empty/unknown record).
  static JournalOp OpOf(std::span<const uint8_t> record);

  // Applies one record to `db`.  `db` must have no backend attached (replay
  // must not re-journal).  Unknown or undecodable records yield kCorrupt.
  static Status Apply(StableStorage& db, std::span<const uint8_t> record);

  // The full-state re-journaling used by compaction: kSnapshotBegin, one
  // kSnapshotProcess per known process (tombstones included), one
  // kSnapshotNode per node log, kSnapshotCounters, kSnapshotEnd.
  static std::vector<Bytes> SnapshotRecords(const StableStorage& db);

 private:
  static Status ApplySnapshotProcess(StableStorage& db, Reader& r);
  static Status ApplySnapshotNode(StableStorage& db, Reader& r);
};

}  // namespace publishing

#endif  // SRC_CORE_STORAGE_JOURNAL_H_
