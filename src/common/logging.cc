#include "src/common/logging.h"

#include <cstdio>

namespace publishing {
namespace {

LogLevel g_level = LogLevel::kWarning;
std::function<int64_t()> g_time_source;
uint64_t g_time_source_token = 0;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

uint64_t SetLogTimeSource(std::function<int64_t()> source) {
  g_time_source = std::move(source);
  return ++g_time_source_token;
}

void ClearLogTimeSource(uint64_t token) {
  if (token == g_time_source_token) {
    g_time_source = nullptr;
  }
}

void Logf(LogLevel level, const char* format, ...) {
  if (level < g_level) {
    return;
  }
  if (g_time_source) {
    std::fprintf(stderr, "[t=%.3fms] ",
                 static_cast<double>(g_time_source()) / 1e6);
  }
  std::fprintf(stderr, "[%s] ", LevelName(level));
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace publishing
