// Lightweight error-handling vocabulary used throughout the library.
//
// Kernel calls in DEMOS return condition codes to the caller (§4.4.3); we
// model that with a small Status type rather than exceptions so that the
// deterministic-replay property of user programs is easy to preserve (a
// Status is part of the visible interaction, an exception unwinding path is
// not).

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace publishing {

enum class StatusCode {
  kOk = 0,
  kNotFound,          // Named object (link, process, file) does not exist.
  kAlreadyExists,     // Creation collided with an existing object.
  kInvalidArgument,   // Malformed request.
  kPermissionDenied,  // Caller lacks the required link/capability.
  kUnavailable,       // Target exists but cannot serve now (e.g. recovering).
  kExhausted,         // Out of table slots, buffer space, or disk pages.
  kCorrupt,           // Checksum or format validation failed.
  kWouldBlock,        // Non-blocking receive found no eligible message.
  kInternal,          // Invariant violation inside the system itself.
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A value-or-error holder in the spirit of std::expected (kept minimal so the
// library builds with any C++20 standard library).
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}                       // NOLINT(runtime/explicit)
  Result(Status status) : state_(std::move(status)) {                 // NOLINT(runtime/explicit)
    assert(!std::get<Status>(state_).ok() && "Result built from OK status needs a value");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(state_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace publishing

#endif  // SRC_COMMON_STATUS_H_
