#include "src/common/status.h"

namespace publishing {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kExhausted:
      return "EXHAUSTED";
    case StatusCode::kCorrupt:
      return "CORRUPT";
    case StatusCode::kWouldBlock:
      return "WOULD_BLOCK";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace publishing
