// Immutable, refcounted byte buffer with cheap slicing.
//
// The publish hot path (sender -> medium -> N overhearing stations ->
// recorder -> stable storage) used to deep-copy the frame payload at nearly
// every hop because Frame carried a std::vector<uint8_t> by value.  Buffer
// replaces that with a shared, immutable payload: copying a Buffer bumps a
// refcount, Slice() adjusts an offset/length view over the same storage, and
// the payload bytes themselves are written exactly once, when the sender
// serializes the packet.
//
// Ownership model (see DESIGN.md §10):
//   - Storage is immutable once a Buffer wraps it.  Nobody may mutate bytes
//     through a Buffer.
//   - Mutation (fault injection: corruption, CRC invalidation) goes through
//     MutateCopy(), which clones the visible window into fresh storage.
//     Those clones are the ONLY copies on the wire path and are counted in
//     buf.bytes_copied.
//   - ToBytes() materializes a std::vector copy for callers that need owned
//     bytes (disk encode paths, legacy APIs); also counted as copied.
//   - Sharing (Buffer copy construction/assignment) is counted in
//     buf.bytes_shared so benchmarks can prove the share/copy ratio.
//
// Counters are plain process-wide uint64s so the hot path never touches a
// registry by default; PublishingSystem::EnableObservability installs a
// BufferStatsSink that forwards increments into MetricsRegistry counters.

#ifndef SRC_COMMON_BUFFER_H_
#define SRC_COMMON_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/common/serialization.h"

namespace publishing {

// Process-wide accounting for buffer copies vs. shares.  Deterministic:
// incremented only by explicit Buffer operations, never by timing.
struct BufferStats {
  uint64_t bytes_copied = 0;   // bytes physically duplicated (CoW, ToBytes)
  uint64_t bytes_shared = 0;   // bytes logically duplicated by refcount bump
  uint64_t copies = 0;         // number of physical copy operations
  uint64_t shares = 0;         // number of refcount-bump duplications
};

// Snapshot of the counters since process start (or since ResetBufferStats).
BufferStats GetBufferStats();
void ResetBufferStats();

// Optional live tap on the counters.  The observability layer installs one
// that mirrors copies/shares into MetricsRegistry counters (buf.bytes_copied,
// buf.bytes_shared); common/ stays free of a dependency on obs/.  Process
// wide, last-install wins, nullptr detaches.
class BufferStatsSink {
 public:
  virtual ~BufferStatsSink() = default;
  virtual void OnBufferCopy(uint64_t bytes) = 0;
  virtual void OnBufferShare(uint64_t bytes) = 0;
};
void SetBufferStatsSink(BufferStatsSink* sink);
BufferStatsSink* GetBufferStatsSink();

class Buffer {
 public:
  // Empty buffer: no storage, size 0.
  Buffer() = default;

  // Takes ownership of an existing byte vector without copying.  Implicit on
  // purpose: the codebase is full of call sites producing Bytes rvalues
  // (Writer::TakeBytes(), test literals) that should flow into Buffer-taking
  // APIs with zero churn and zero copies.
  Buffer(Bytes&& bytes);  // NOLINT(google-explicit-constructor)

  // Copies `bytes` into fresh storage (counted in bytes_copied).
  static Buffer CopyOf(std::span<const uint8_t> bytes);

  // Copy/move share storage.  Copy bumps the refcount and the share counter;
  // move transfers the reference and counts nothing.
  Buffer(const Buffer& other);
  Buffer& operator=(const Buffer& other);
  Buffer(Buffer&& other) noexcept = default;
  Buffer& operator=(Buffer&& other) noexcept = default;
  ~Buffer() = default;

  // Zero-copy sub-view of the same storage.
  Buffer Slice(size_t offset, size_t length) const;

  // Clones the visible window into fresh storage and lets `mutator` damage
  // it.  This is the fault-injection boundary: corruption and CRC vetoes are
  // the only writers on the wire path, and each one pays for exactly one
  // copy of the bytes it damages (counted in bytes_copied).
  template <typename Mutator>
  Buffer MutateCopy(Mutator&& mutator) const {
    Bytes clone = CopyOut();
    mutator(clone);
    return Buffer(std::move(clone));
  }

  // Materializes an owned copy of the visible bytes (counted in
  // bytes_copied).  For disk encoders and legacy Bytes-taking APIs.
  Bytes ToBytes() const { return CopyOut(); }

  const uint8_t* data() const { return storage_ ? storage_->data() + offset_ : nullptr; }
  size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }
  uint8_t operator[](size_t i) const { return data()[i]; }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + length_; }
  std::span<const uint8_t> span() const { return {data(), length_}; }
  operator std::span<const uint8_t>() const { return span(); }  // NOLINT

  // Number of Buffer views currently sharing this storage (1 for sole owner,
  // 0 for the empty buffer).  For tests and benchmarks.
  long use_count() const { return storage_ ? storage_.use_count() : 0; }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.size() == b.size() &&
           (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
  }
  friend bool operator==(const Buffer& a, const Bytes& b) {
    return a.size() == b.size() &&
           (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
  }
  friend bool operator==(const Bytes& a, const Buffer& b) { return b == a; }

 private:
  Buffer(std::shared_ptr<const Bytes> storage, size_t offset, size_t length)
      : storage_(std::move(storage)), offset_(offset), length_(length) {}

  // Physical copy of the visible window, counted in bytes_copied.
  Bytes CopyOut() const;

  std::shared_ptr<const Bytes> storage_;
  size_t offset_ = 0;
  size_t length_ = 0;
};

// Builds a Buffer through the familiar Writer interface, so serializers can
// emit straight into what becomes the shared payload: one allocation, zero
// copies between "serialize" and "on the wire".
class BufferBuilder {
 public:
  BufferBuilder() = default;

  Writer& writer() { return writer_; }

  // Consumes the accumulated bytes into an immutable Buffer.  The builder is
  // empty afterwards and may be reused.
  Buffer Build() { return Buffer(writer_.TakeBytes()); }

 private:
  Writer writer_;
};

}  // namespace publishing

#endif  // SRC_COMMON_BUFFER_H_
