// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (message inter-arrival times,
// fault-injection schedules, queuing-model service sampling) draws from an
// explicitly seeded generator so that a whole-system run is reproducible —
// the same property the paper requires of recoverable processes
// ("deterministic upon their input interactions", §1.1.1) is required of our
// test harness so crash/recovery runs can be compared bit-for-bit against
// crash-free runs.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace publishing {

// xoshiro256** seeded via splitmix64.  Small, fast, and fully deterministic
// across platforms (unlike std::mt19937 + std::distributions, whose outputs
// may differ between standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).  bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Exponentially distributed with the given mean (> 0).  Used for Poisson
  // arrival processes in the Chapter 5 queuing model.
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Forks an independent child stream; children of the same parent with
  // different salts are decorrelated.
  Rng Fork(uint64_t salt) { return Rng(NextU64() ^ (salt * 0x9E3779B97F4A7C15ull)); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
};

}  // namespace publishing

#endif  // SRC_COMMON_RNG_H_
