// Byte-oriented serialization used for message bodies, checkpoints, and the
// recorder's on-disk log pages.
//
// Checkpoints must survive a node crash and be reloaded on a possibly
// different node (§3.3.3), so process state is serialized through these
// explicit little-endian writers/readers rather than memcpy'd structs.

#ifndef SRC_COMMON_SERIALIZATION_H_
#define SRC_COMMON_SERIALIZATION_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"

namespace publishing {

using Bytes = std::vector<uint8_t>;

// Appends primitive values to a growing byte buffer in little-endian order.
class Writer {
 public:
  Writer() = default;

  void WriteU8(uint8_t v) { bytes_.push_back(v); }
  void WriteU16(uint16_t v) { WriteLittleEndian(v); }
  void WriteU32(uint32_t v) { WriteLittleEndian(v); }
  void WriteU64(uint64_t v) { WriteLittleEndian(v); }
  void WriteI64(int64_t v) { WriteLittleEndian(static_cast<uint64_t>(v)); }
  void WriteDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  // Length-prefixed byte string.
  void WriteBytes(std::span<const uint8_t> data) {
    bytes_.reserve(bytes_.size() + sizeof(uint32_t) + data.size());
    WriteU32(static_cast<uint32_t>(data.size()));
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  void WriteString(const std::string& s) {
    WriteBytes(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }

  void WriteNodeId(NodeId id) { WriteU32(id.value); }
  void WriteProcessId(const ProcessId& id) {
    WriteNodeId(id.origin);
    WriteU32(id.local);
  }
  void WriteMessageId(const MessageId& id) {
    WriteProcessId(id.sender);
    WriteU64(id.sequence);
  }

  // Raw append with no length prefix (for framing layers that know sizes).
  void WriteRaw(std::span<const uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  const Bytes& bytes() const { return bytes_; }
  Bytes TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  template <typename T>
  void WriteLittleEndian(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes bytes_;
};

// Bounds-checked reader over a byte span.  All Read* methods return a
// kCorrupt status on underrun so corrupted frames/pages are rejected rather
// than crashing the recorder (§4.5 rebuilds its database from disk pages).
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) {
      return Underrun("u8");
    }
    return data_[pos_++];
  }
  Result<uint16_t> ReadU16() { return ReadLittleEndian<uint16_t>(); }
  Result<uint32_t> ReadU32() { return ReadLittleEndian<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadLittleEndian<uint64_t>(); }
  Result<int64_t> ReadI64() {
    auto v = ReadLittleEndian<uint64_t>();
    if (!v.ok()) {
      return v.status();
    }
    return static_cast<int64_t>(*v);
  }
  Result<double> ReadDouble() {
    auto bits = ReadU64();
    if (!bits.ok()) {
      return bits.status();
    }
    double v;
    std::memcpy(&v, &bits.value(), sizeof(v));
    return v;
  }
  Result<bool> ReadBool() {
    auto v = ReadU8();
    if (!v.ok()) {
      return v.status();
    }
    return *v != 0;
  }

  Result<Bytes> ReadBytes() {
    auto len = ReadU32();
    if (!len.ok()) {
      return len.status();
    }
    if (remaining() < *len) {
      return Underrun("bytes body");
    }
    Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + *len));
    pos_ += *len;
    return out;
  }
  Result<std::string> ReadString() {
    auto raw = ReadBytes();
    if (!raw.ok()) {
      return raw.status();
    }
    return std::string(raw->begin(), raw->end());
  }

  Result<NodeId> ReadNodeId() {
    auto v = ReadU32();
    if (!v.ok()) {
      return v.status();
    }
    return NodeId{*v};
  }
  Result<ProcessId> ReadProcessId() {
    auto origin = ReadNodeId();
    if (!origin.ok()) {
      return origin.status();
    }
    auto local = ReadU32();
    if (!local.ok()) {
      return local.status();
    }
    return ProcessId{*origin, *local};
  }
  Result<MessageId> ReadMessageId() {
    auto sender = ReadProcessId();
    if (!sender.ok()) {
      return sender.status();
    }
    auto seq = ReadU64();
    if (!seq.ok()) {
      return seq.status();
    }
    return MessageId{*sender, *seq};
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  template <typename T>
  Result<T> ReadLittleEndian() {
    if (remaining() < sizeof(T)) {
      return Underrun("integer");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  Status Underrun(const char* what) const {
    return Status(StatusCode::kCorrupt, std::string("buffer underrun reading ") + what);
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace publishing

#endif  // SRC_COMMON_SERIALIZATION_H_
