// Identifier types shared across the publishing system.
//
// The paper (§4.3.1) makes process identifiers unique network-wide by
// appending the identifier of the creating processor to the processor-local
// id.  Message identifiers (§4.3.3) are the pair (sending process id,
// per-process send sequence number); the sequence number increases by one for
// every message the process sends, which is what lets the recorder and the
// kernels suppress duplicate sends during recovery.

#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace publishing {

// Identifies a processing node (a processor attached to the network).
// Node 0 is conventionally the recorder in single-recorder configurations.
struct NodeId {
  uint32_t value = 0;

  friend bool operator==(const NodeId&, const NodeId&) = default;
  friend auto operator<=>(const NodeId&, const NodeId&) = default;
};

// Network-wide unique process identifier: (creating node, local id).
// The local id is never reused by a node, so the pair is unique for the
// lifetime of the system even across process migration (§4.3.1).
struct ProcessId {
  NodeId origin;         // Node on which the process was created.
  uint32_t local = 0;    // Creating node's local sequence number.

  bool IsValid() const { return local != 0; }

  friend bool operator==(const ProcessId&, const ProcessId&) = default;
  friend auto operator<=>(const ProcessId&, const ProcessId&) = default;
};

// Globally unique message identifier: (sender, per-sender sequence number).
// Sequence numbers start at 1; 0 means "no message".
struct MessageId {
  ProcessId sender;
  uint64_t sequence = 0;

  bool IsValid() const { return sequence != 0; }

  friend bool operator==(const MessageId&, const MessageId&) = default;
  friend auto operator<=>(const MessageId&, const MessageId&) = default;
};

// Process-local index into a link table (§4.2.2.1).
struct LinkId {
  uint32_t value = 0;

  bool IsValid() const { return value != 0; }

  friend bool operator==(const LinkId&, const LinkId&) = default;
  friend auto operator<=>(const LinkId&, const LinkId&) = default;
};

std::string ToString(NodeId id);
std::string ToString(const ProcessId& id);
std::string ToString(const MessageId& id);

}  // namespace publishing

template <>
struct std::hash<publishing::NodeId> {
  size_t operator()(const publishing::NodeId& id) const noexcept {
    return std::hash<uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<publishing::ProcessId> {
  size_t operator()(const publishing::ProcessId& id) const noexcept {
    return std::hash<uint64_t>{}((uint64_t{id.origin.value} << 32) | id.local);
  }
};

template <>
struct std::hash<publishing::MessageId> {
  size_t operator()(const publishing::MessageId& id) const noexcept {
    size_t h = std::hash<publishing::ProcessId>{}(id.sender);
    return h ^ (std::hash<uint64_t>{}(id.sequence) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  }
};

#endif  // SRC_COMMON_IDS_H_
