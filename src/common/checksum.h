// CRC-32 (IEEE 802.3 polynomial) used by the link layer (§4.3.3: "wrapping
// all messages with a rotating checksum") and by the token-ring recorder-ack
// trick (§6.1.2: the recorder complements the trailing checksum to invalidate
// a frame it failed to record).

#ifndef SRC_COMMON_CHECKSUM_H_
#define SRC_COMMON_CHECKSUM_H_

#include <cstdint>
#include <span>

namespace publishing {

// Computes the CRC-32 of `data` (reflected, init/final xor 0xFFFFFFFF —
// i.e. the common zlib/Ethernet CRC).
uint32_t Crc32(std::span<const uint8_t> data);

// Incremental form: feed `data` into a running crc previously returned by
// Crc32Init()/Crc32Update(), then finish with Crc32Final().
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data);
uint32_t Crc32Final(uint32_t state);

}  // namespace publishing

#endif  // SRC_COMMON_CHECKSUM_H_
