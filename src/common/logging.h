// Minimal leveled logging.  Quiet by default so tests and benches stay clean;
// examples turn on kInfo to narrate crash/recovery sequences.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdarg>
#include <cstdint>
#include <functional>

namespace publishing {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Installs the virtual-time source used to stamp log lines: a callable
// returning the current virtual time in nanoseconds.  While set, every line
// is prefixed "[t=<ms>ms]" so crash/recovery narrations carry the simulated
// clock.  Pass nullptr to clear.  Returns a registration token; the token
// lets the owner that registered the source clear it without clobbering a
// source someone else installed later (see ClearLogTimeSource).
uint64_t SetLogTimeSource(std::function<int64_t()> source);

// Clears the time source iff `token` is the registration currently active.
void ClearLogTimeSource(uint64_t token);

// printf-style logging; drops the record if `level` is below the global one.
void Logf(LogLevel level, const char* format, ...) __attribute__((format(printf, 2, 3)));

#define PUB_LOG_TRACE(...) ::publishing::Logf(::publishing::LogLevel::kTrace, __VA_ARGS__)
#define PUB_LOG_DEBUG(...) ::publishing::Logf(::publishing::LogLevel::kDebug, __VA_ARGS__)
#define PUB_LOG_INFO(...) ::publishing::Logf(::publishing::LogLevel::kInfo, __VA_ARGS__)
#define PUB_LOG_WARN(...) ::publishing::Logf(::publishing::LogLevel::kWarning, __VA_ARGS__)
#define PUB_LOG_ERROR(...) ::publishing::Logf(::publishing::LogLevel::kError, __VA_ARGS__)

}  // namespace publishing

#endif  // SRC_COMMON_LOGGING_H_
