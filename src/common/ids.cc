#include "src/common/ids.h"

#include <cstdio>

namespace publishing {

std::string ToString(NodeId id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "node%u", id.value);
  return buf;
}

std::string ToString(const ProcessId& id) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "pid(%u.%u)", id.origin.value, id.local);
  return buf;
}

std::string ToString(const MessageId& id) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "msg(%u.%u#%llu)", id.sender.origin.value, id.sender.local,
                static_cast<unsigned long long>(id.sequence));
  return buf;
}

}  // namespace publishing
