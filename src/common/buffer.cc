#include "src/common/buffer.h"

namespace publishing {

namespace {
BufferStats g_stats;
BufferStatsSink* g_sink = nullptr;

void NoteCopy(uint64_t bytes) {
  g_stats.bytes_copied += bytes;
  ++g_stats.copies;
  if (g_sink != nullptr) {
    g_sink->OnBufferCopy(bytes);
  }
}

void NoteShare(uint64_t bytes) {
  g_stats.bytes_shared += bytes;
  ++g_stats.shares;
  if (g_sink != nullptr) {
    g_sink->OnBufferShare(bytes);
  }
}
}  // namespace

BufferStats GetBufferStats() { return g_stats; }

void ResetBufferStats() { g_stats = BufferStats{}; }

void SetBufferStatsSink(BufferStatsSink* sink) { g_sink = sink; }

BufferStatsSink* GetBufferStatsSink() { return g_sink; }

Buffer::Buffer(Bytes&& bytes)
    : storage_(std::make_shared<const Bytes>(std::move(bytes))),
      offset_(0),
      length_(storage_->size()) {}

Buffer Buffer::CopyOf(std::span<const uint8_t> bytes) {
  NoteCopy(bytes.size());
  return Buffer(Bytes(bytes.begin(), bytes.end()));
}

Buffer::Buffer(const Buffer& other)
    : storage_(other.storage_), offset_(other.offset_), length_(other.length_) {
  if (storage_) {
    NoteShare(length_);
  }
}

Buffer& Buffer::operator=(const Buffer& other) {
  if (this != &other) {
    storage_ = other.storage_;
    offset_ = other.offset_;
    length_ = other.length_;
    if (storage_) {
      NoteShare(length_);
    }
  }
  return *this;
}

Buffer Buffer::Slice(size_t offset, size_t length) const {
  if (offset > length_) {
    offset = length_;
  }
  if (length > length_ - offset) {
    length = length_ - offset;
  }
  return Buffer(storage_, offset_ + offset, length);
}

Bytes Buffer::CopyOut() const {
  NoteCopy(length_);
  return Bytes(begin(), end());
}

}  // namespace publishing
