#include "src/storage/wal.h"

#include <algorithm>
#include <cinttypes>
#include <filesystem>
#include <system_error>

#include "src/common/logging.h"

namespace publishing {

namespace fs = std::filesystem;

std::string SegmentPath(const std::string& dir, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%010" PRIu64 ".seg", seq);
  return (fs::path(dir) / name).string();
}

Result<std::vector<std::string>> ListSegmentPaths(const std::string& dir) {
  std::error_code ec;
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    if (std::sscanf(name.c_str(), "wal-%" SCNu64 ".seg", &seq) == 1) {
      found.emplace_back(seq, entry.path().string());
    }
  }
  if (ec) {
    return Status(StatusCode::kInternal, "cannot list " + dir + ": " + ec.message());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [seq, path] : found) {
    paths.push_back(std::move(path));
  }
  return paths;
}

Wal::Wal(WalOptions options) : options_(std::move(options)), compactor_(options_.compactor) {}

Wal::~Wal() {
  // Best effort: stage-to-disk what we have.  Unsynced records may be lost
  // on a hard crash — that is group commit's contract, not a bug.
  if (active_.is_open()) {
    (void)Sync();
  }
}

void Wal::SetObservability(const Observability& obs) {
  tracer_ = obs.tracer;
  if (obs.metrics != nullptr) {
    obs_appends_ = obs.metrics->GetCounter("storage.appends");
    obs_bytes_appended_ = obs.metrics->GetCounter("storage.bytes_appended");
    obs_syncs_ = obs.metrics->GetCounter("storage.syncs");
    obs_segments_created_ = obs.metrics->GetCounter("storage.segments_created");
    obs_compactions_ = obs.metrics->GetCounter("storage.compactions");
    obs_batch_ = obs.metrics->GetHistogram("storage.group_commit_batch");
    obs_wal_bytes_ = obs.metrics->GetGauge("storage.wal_bytes");
    obs_wal_bytes_->Set(static_cast<double>(TotalBytes()));
  } else {
    obs_appends_ = nullptr;
    obs_bytes_appended_ = nullptr;
    obs_syncs_ = nullptr;
    obs_segments_created_ = nullptr;
    obs_compactions_ = nullptr;
    obs_batch_ = nullptr;
    obs_wal_bytes_ = nullptr;
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(WalOptions options) {
  std::unique_ptr<Wal> wal(new Wal(std::move(options)));
  Status status = wal->OpenDirectory();
  if (!status.ok()) {
    return status;
  }
  return wal;
}

Status Wal::OpenDirectory() {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return Status(StatusCode::kInternal,
                  "cannot create " + options_.dir + ": " + ec.message());
  }
  auto existing = ListSegmentPaths(options_.dir);
  if (!existing.ok()) {
    return existing.status();
  }
  for (const std::string& path : *existing) {
    // The header is cheap to read and carries the authoritative sequence.
    auto scan = ScanSegment(path);
    if (!scan.ok()) {
      PUB_LOG_ERROR("wal: ignoring unreadable segment %s", path.c_str());
      continue;
    }
    SealedSegment sealed;
    sealed.seq = scan->seq;
    sealed.path = path;
    sealed.bytes = scan->valid_bytes + scan->dropped_bytes;
    next_seq_ = std::max(next_seq_, scan->seq + 1);
    sealed_.push_back(std::move(sealed));
  }
  std::sort(sealed_.begin(), sealed_.end(),
            [](const SealedSegment& a, const SealedSegment& b) { return a.seq < b.seq; });
  Status status = active_.Open(SegmentPath(options_.dir, next_seq_), next_seq_);
  if (!status.ok()) {
    return status;
  }
  ++next_seq_;
  ++stats_.segments_created;
  baseline_bytes_ = std::max(TotalBytes(), options_.compactor.min_bytes);
  return Status::Ok();
}

size_t Wal::TotalBytes() const {
  size_t total = active_.is_open() ? active_.bytes() : 0;
  for (const SealedSegment& sealed : sealed_) {
    total += sealed.bytes;
  }
  return total;
}

std::vector<std::string> Wal::SegmentPaths() const {
  std::vector<std::string> paths;
  paths.reserve(sealed_.size() + 1);
  for (const SealedSegment& sealed : sealed_) {
    paths.push_back(sealed.path);
  }
  if (active_.is_open()) {
    paths.push_back(active_.path());
  }
  return paths;
}

Status Wal::RollSegment() {
  Status status = Sync();
  if (!status.ok()) {
    return status;
  }
  SealedSegment sealed;
  sealed.seq = active_.seq();
  sealed.path = active_.path();
  sealed.bytes = active_.bytes();
  active_.Close();
  sealed_.push_back(std::move(sealed));
  status = active_.Open(SegmentPath(options_.dir, next_seq_), next_seq_);
  if (!status.ok()) {
    return status;
  }
  ++next_seq_;
  ++stats_.segments_created;
  if (obs_segments_created_ != nullptr) {
    obs_segments_created_->Add(1);
  }
  return Status::Ok();
}

Status Wal::Append(std::span<const uint8_t> record, uint64_t now) {
  if (active_.bytes() + kRecordFrameOverhead + record.size() > options_.segment_bytes &&
      active_.bytes() > kSegmentHeaderBytes) {
    Status status = RollSegment();
    if (!status.ok()) {
      return status;
    }
  }
  Status status = active_.Append(record);
  if (!status.ok()) {
    return status;
  }
  ++stats_.records_appended;
  stats_.bytes_appended += record.size();
  if (obs_appends_ != nullptr) {
    obs_appends_->Add(1);
    obs_bytes_appended_->Add(record.size());
    obs_wal_bytes_->Set(static_cast<double>(TotalBytes()));
  }
  ++pending_records_;
  if (pending_records_ == 1) {
    window_open_now_ = now;
  }
  const bool count_due = pending_records_ >= options_.group_commit_records;
  const bool time_due = options_.group_commit_interval != 0 && now != 0 &&
                        now - last_sync_now_ >= options_.group_commit_interval;
  if (count_due || time_due) {
    status = Sync();
    if (!status.ok()) {
      return status;
    }
    last_sync_now_ = now;
  }
  return Status::Ok();
}

Status Wal::Sync() {
  if (pending_records_ == 0) {
    return Status::Ok();
  }
  Status status = active_.Sync();
  if (!status.ok()) {
    return status;
  }
  const uint64_t batch = pending_records_;
  pending_records_ = 0;
  ++stats_.syncs;
  if (obs_syncs_ != nullptr) {
    obs_syncs_->Add(1);
    obs_batch_->Observe(static_cast<double>(batch));
  }
  if (tracer_ != nullptr) {
    // The group-commit window: first staged record to the fsync that made
    // the batch durable.
    tracer_->Complete(static_cast<SimTime>(window_open_now_), "storage.group_commit",
                      "storage", obs_track::kStorage,
                      {{"records", std::to_string(batch)}});
  }
  return Status::Ok();
}

void Wal::OnCheckpointStored() {
  Status status = Sync();
  if (!status.ok()) {
    PUB_LOG_ERROR("wal: checkpoint sync failed: %s", status.ToString().c_str());
    return;
  }
  if (snapshot_source_ &&
      compactor_.ShouldCompact(TotalBytes(), baseline_bytes_)) {
    (void)CompactNow();
  }
}

bool Wal::CompactNow() {
  if (!snapshot_source_) {
    return false;
  }
  const size_t before = TotalBytes();
  // Seal the active segment: the snapshot must strictly supersede every
  // record written so far, and recovery orders segments by sequence, so the
  // snapshot takes a sequence past the active one and new appends continue
  // in a segment past the snapshot.
  Status status = Sync();
  if (!status.ok()) {
    PUB_LOG_ERROR("wal: compaction sync failed: %s", status.ToString().c_str());
    return false;
  }
  SealedSegment old_active;
  old_active.seq = active_.seq();
  old_active.path = active_.path();
  old_active.bytes = active_.bytes();
  active_.Close();
  sealed_.push_back(std::move(old_active));

  std::vector<Bytes> records = snapshot_source_();
  const uint64_t snapshot_seq = next_seq_++;
  auto result = compactor_.WriteSnapshotSegment(SegmentPath(options_.dir, snapshot_seq),
                                                snapshot_seq, records);
  if (!result.ok()) {
    // Fall through to reopen an active segment; the log is intact, only
    // unrewritten.
    PUB_LOG_ERROR("wal: snapshot write failed: %s", result.status().ToString().c_str());
  } else {
    // The snapshot is durable: everything before it is dead.
    std::error_code ec;
    for (const SealedSegment& sealed : sealed_) {
      fs::remove(sealed.path, ec);
      ++stats_.compaction_segments_deleted;
    }
    sealed_.clear();
    SealedSegment snapshot;
    snapshot.seq = result->segment_seq;
    snapshot.path = result->segment_path;
    snapshot.bytes = result->bytes_written;
    sealed_.push_back(std::move(snapshot));
    ++stats_.compactions;
  }

  status = active_.Open(SegmentPath(options_.dir, next_seq_), next_seq_);
  if (!status.ok()) {
    PUB_LOG_ERROR("wal: cannot reopen active segment: %s", status.ToString().c_str());
    return false;
  }
  ++next_seq_;
  ++stats_.segments_created;
  if (!result.ok()) {
    return false;
  }
  const size_t after = TotalBytes();
  stats_.compaction_bytes_reclaimed += before > after ? before - after : 0;
  baseline_bytes_ = std::max(after, options_.compactor.min_bytes);
  if (obs_compactions_ != nullptr) {
    obs_compactions_->Add(1);
    obs_wal_bytes_->Set(static_cast<double>(after));
  }
  if (tracer_ != nullptr) {
    tracer_->Instant("storage.compaction", "storage", obs_track::kStorage,
                     {{"bytes_before", std::to_string(before)},
                      {"bytes_after", std::to_string(after)}});
  }
  return true;
}

}  // namespace publishing
