#include "src/storage/log_segment.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/checksum.h"

namespace publishing {

namespace {
constexpr char kMagic[kSegmentMagicBytes] = {'P', 'U', 'B', 'W', 'A', 'L', '0', '1'};

Status IoError(const char* what, const std::string& path) {
  return Status(StatusCode::kInternal,
                std::string(what) + " " + path + ": " + std::strerror(errno));
}
}  // namespace

Bytes EncodeSegmentHeader(uint64_t seq) {
  Writer w;
  w.WriteRaw(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(kMagic),
                                      kSegmentMagicBytes));
  w.WriteU32(kSegmentFormatVersion);
  w.WriteU64(seq);
  return w.TakeBytes();
}

Result<uint64_t> DecodeSegmentHeader(std::span<const uint8_t> data) {
  if (data.size() < kSegmentHeaderBytes) {
    return Status(StatusCode::kCorrupt, "segment shorter than its header");
  }
  if (std::memcmp(data.data(), kMagic, kSegmentMagicBytes) != 0) {
    return Status(StatusCode::kCorrupt, "bad segment magic");
  }
  Reader r(data.subspan(kSegmentMagicBytes));
  auto version = r.ReadU32();
  if (!version.ok() || *version != kSegmentFormatVersion) {
    return Status(StatusCode::kCorrupt, "unsupported segment format version");
  }
  auto seq = r.ReadU64();
  if (!seq.ok()) {
    return seq.status();
  }
  return *seq;
}

void AppendRecordFrame(Bytes& out, std::span<const uint8_t> payload) {
  Writer w;
  w.WriteU32(static_cast<uint32_t>(payload.size()));
  w.WriteU32(Crc32(payload));
  const Bytes& header = w.bytes();
  out.insert(out.end(), header.begin(), header.end());
  out.insert(out.end(), payload.begin(), payload.end());
}

FrameDecodeResult DecodeRecordFrame(std::span<const uint8_t> data, size_t offset) {
  FrameDecodeResult result;
  result.next_offset = offset;
  if (offset >= data.size()) {
    result.parse = FrameParse::kEnd;
    return result;
  }
  if (data.size() - offset < kRecordFrameOverhead) {
    result.parse = FrameParse::kTorn;  // Partial frame header.
    return result;
  }
  Reader r(data.subspan(offset, kRecordFrameOverhead));
  const uint32_t len = *r.ReadU32();
  const uint32_t crc = *r.ReadU32();
  if (len > kMaxRecordBytes) {
    result.parse = FrameParse::kCorrupt;
    return result;
  }
  if (data.size() - offset - kRecordFrameOverhead < len) {
    result.parse = FrameParse::kTorn;  // Payload extends past end-of-file.
    return result;
  }
  std::span<const uint8_t> payload = data.subspan(offset + kRecordFrameOverhead, len);
  if (Crc32(payload) != crc) {
    result.parse = FrameParse::kCorrupt;
    return result;
  }
  result.parse = FrameParse::kOk;
  result.payload = payload;
  result.next_offset = offset + kRecordFrameOverhead + len;
  return result;
}

SegmentWriter::~SegmentWriter() { Close(); }

Status SegmentWriter::Open(const std::string& path, uint64_t seq) {
  Close();
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return IoError("cannot create segment", path);
  }
  path_ = path;
  seq_ = seq;
  bytes_ = 0;
  Bytes header = EncodeSegmentHeader(seq);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    return IoError("cannot write segment header", path_);
  }
  bytes_ = header.size();
  return Status::Ok();
}

Status SegmentWriter::Append(std::span<const uint8_t> payload) {
  if (file_ == nullptr) {
    return Status(StatusCode::kInternal, "segment writer is closed");
  }
  if (payload.empty()) {
    return Status::Ok();
  }
  Bytes frame;
  frame.reserve(kRecordFrameOverhead + payload.size());
  AppendRecordFrame(frame, payload);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return IoError("cannot append to segment", path_);
  }
  bytes_ += frame.size();
  return Status::Ok();
}

Status SegmentWriter::Sync() {
  if (file_ == nullptr) {
    return Status(StatusCode::kInternal, "segment writer is closed");
  }
  if (std::fflush(file_) != 0) {
    return IoError("cannot flush segment", path_);
  }
  if (::fsync(::fileno(file_)) != 0) {
    return IoError("cannot fsync segment", path_);
  }
  return Status::Ok();
}

void SegmentWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<SegmentScan> ScanSegment(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return IoError("cannot open segment", path);
  }
  Bytes data;
  uint8_t chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    data.insert(data.end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return IoError("cannot read segment", path);
  }

  auto seq = DecodeSegmentHeader(data);
  if (!seq.ok()) {
    return seq.status();
  }
  SegmentScan scan;
  scan.seq = *seq;
  size_t offset = kSegmentHeaderBytes;
  for (;;) {
    FrameDecodeResult frame = DecodeRecordFrame(data, offset);
    if (frame.parse == FrameParse::kOk) {
      scan.records.emplace_back(frame.payload.begin(), frame.payload.end());
      offset = frame.next_offset;
      continue;
    }
    scan.tail = frame.parse;
    scan.clean = frame.parse == FrameParse::kEnd;
    break;
  }
  scan.valid_bytes = offset;
  scan.dropped_bytes = data.size() - offset;
  return scan;
}

}  // namespace publishing
