// Segmented write-ahead log with group commit: the durable StorageBackend.
//
// Layout: a directory of segment files "wal-<seq>.seg" (format in
// log_segment.h).  Records append to the active (highest-seq) segment; when
// it exceeds `segment_bytes` the WAL rolls to a new one.  Opening an
// existing directory never appends to old segments — it starts a fresh one
// after the highest sequence found, so a torn tail from a previous crash
// stays confined to a dead segment where recovery can drop it.
//
// Group commit (§5.2.2's motivation — publish cost must not be per-message):
// Append() stages the record and only fsyncs once `group_commit_records`
// records are pending or `group_commit_interval` virtual-time units have
// passed since the last sync; records staged but not yet synced are the
// acknowledged-durability window the storage bench measures.  Sync() and
// OnCheckpointStored() force the barrier (§3.3.1: the checkpoint must be
// "reliably stored" before the log prefix it subsumes is discarded).
//
// Compaction: checkpoint-triggered (see compactor.h).  The live image is
// re-journaled into one snapshot segment; old segments are deleted only
// after it is durable.

#ifndef SRC_STORAGE_WAL_H_
#define SRC_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/compactor.h"
#include "src/storage/log_segment.h"
#include "src/storage/storage_backend.h"

namespace publishing {

struct WalOptions {
  std::string dir;                    // Created if missing.
  size_t segment_bytes = 1 << 20;     // Roll the active segment past this.
  // Group commit: fsync after this many staged records...
  size_t group_commit_records = 32;
  // ...or when an Append arrives this much virtual time after the last sync
  // (0 disables the time trigger).  There is no timer: the window closes on
  // the next append, which is the correct model for a recorder whose only
  // work arrives as messages.
  uint64_t group_commit_interval = 0;
  CompactorOptions compactor;
};

struct WalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;      // Record payload bytes.
  uint64_t syncs = 0;               // fsync calls on the active segment.
  uint64_t segments_created = 0;
  uint64_t compactions = 0;
  uint64_t compaction_bytes_reclaimed = 0;
  uint64_t compaction_segments_deleted = 0;
};

class Wal : public StorageBackend {
 public:
  // Opens (creating if needed) the log directory.  Existing segments are
  // preserved and counted toward the compaction baseline; appends go to a
  // new segment after the highest existing sequence.
  static Result<std::unique_ptr<Wal>> Open(WalOptions options);
  ~Wal() override;

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // StorageBackend.
  Status Append(std::span<const uint8_t> record, uint64_t now) override;
  Status Sync() override;
  void OnCheckpointStored() override;
  void SetSnapshotSource(std::function<std::vector<Bytes>()> source) override {
    snapshot_source_ = std::move(source);
  }
  void SetObservability(const Observability& obs) override;

  // Total on-disk bytes across all segments (staged bytes included).
  size_t TotalBytes() const;
  size_t SegmentCount() const { return sealed_.size() + 1; }
  uint64_t PendingRecords() const { return pending_records_; }
  const WalStats& stats() const { return stats_; }
  const std::string& dir() const { return options_.dir; }

  // Forces a compaction attempt regardless of the growth policy (still a
  // no-op without a snapshot source).  Returns true if a rewrite happened.
  bool CompactNow();

  // Segment file names, sorted by sequence, active segment last.
  std::vector<std::string> SegmentPaths() const;

 private:
  explicit Wal(WalOptions options);

  struct SealedSegment {
    uint64_t seq = 0;
    std::string path;
    size_t bytes = 0;
  };

  Status OpenDirectory();
  Status RollSegment();
  void MaybeCompact();

  WalOptions options_;
  Compactor compactor_;
  std::vector<SealedSegment> sealed_;
  SegmentWriter active_;
  uint64_t next_seq_ = 1;
  uint64_t pending_records_ = 0;
  uint64_t last_sync_now_ = 0;
  size_t baseline_bytes_ = 0;  // Size after open / last compaction.
  std::function<std::vector<Bytes>()> snapshot_source_;
  WalStats stats_;

  // Observability handles (null = detached).
  Tracer* tracer_ = nullptr;
  Counter* obs_appends_ = nullptr;
  Counter* obs_bytes_appended_ = nullptr;
  Counter* obs_syncs_ = nullptr;
  Counter* obs_segments_created_ = nullptr;
  Counter* obs_compactions_ = nullptr;
  Histogram* obs_batch_ = nullptr;
  Gauge* obs_wal_bytes_ = nullptr;
  uint64_t window_open_now_ = 0;  // Virtual time the pending batch opened.
};

// Path of segment `seq` inside `dir` ("<dir>/wal-<seq, zero padded>.seg").
std::string SegmentPath(const std::string& dir, uint64_t seq);

// Lists segment files in `dir`, sorted by sequence number.
Result<std::vector<std::string>> ListSegmentPaths(const std::string& dir);

}  // namespace publishing

#endif  // SRC_STORAGE_WAL_H_
