// The seam between the recorder's logical database (StableStorage, src/core)
// and its durable representation (the log-structured engine in src/storage).
//
// StableStorage journals every effective mutation through this interface as
// an opaque, already-serialized record; the backend decides how (and when)
// the record becomes durable.  The interface is bytes-only so that src/core
// needs no link-time dependency on the storage engine: the default remains
// the pure in-memory model (no backend attached), which the queueing
// benchmarks keep using, while a Recorder given a Wal backend survives real
// process restarts (§4.5).

#ifndef SRC_STORAGE_STORAGE_BACKEND_H_
#define SRC_STORAGE_STORAGE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/common/serialization.h"
#include "src/common/status.h"
#include "src/obs/observability.h"

namespace publishing {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  // Resolves the backend's instruments (storage.* series).  The default
  // backend-less / in-memory configuration ignores it.
  virtual void SetObservability(const Observability& obs) { (void)obs; }

  // Journals one mutation record.  `now` is the caller's clock reading in
  // virtual-time nanoseconds (0 when no clock is attached); backends may use
  // it to coalesce fsyncs over a time window (group commit).
  virtual Status Append(std::span<const uint8_t> record, uint64_t now) = 0;

  // Forces every record appended so far to be durable.
  virtual Status Sync() = 0;

  // A checkpoint record was just journaled.  §3.3.1 requires the checkpoint
  // "reliably stored" before the messages it subsumes are discarded, so this
  // is both a durability barrier and the compaction trigger of §5.1 ("older
  // checkpoints and messages can be discarded").
  virtual void OnCheckpointStored() {}

  // Installs the producer of a full-state re-journaling: the complete record
  // sequence (snapshot markers included) that rebuilds the attached
  // database.  Compacting backends rewrite the log from it; the in-memory
  // default ignores it.
  virtual void SetSnapshotSource(std::function<std::vector<Bytes>()> source) {
    (void)source;
  }
};

}  // namespace publishing

#endif  // SRC_STORAGE_STORAGE_BACKEND_H_
