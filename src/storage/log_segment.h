// CRC32-framed append-only segment files — the on-disk unit of the
// recorder's durable log (§4.5: "it is possible to rebuild the data base
// from the disk").
//
// A segment is a header followed by length-prefixed records:
//
//   +--------------------------------------------+
//   | magic "PUBWAL01" (8) | version u32 | seq u64|   20-byte header
//   +--------------------------------------------+
//   | len u32 | crc32(payload) u32 | payload ... |   record frame
//   | len u32 | crc32(payload) u32 | payload ... |
//   | ...                                        |
//
// All integers are little-endian (the Writer/Reader convention).  A crash
// mid-append leaves a *torn tail*: a record whose length field points past
// end-of-file, a partial frame header, or a payload whose CRC does not
// match.  ScanSegment() stops at the first such frame and reports the valid
// prefix, so recovery drops exactly the unacknowledged tail and nothing
// else.

#ifndef SRC_STORAGE_LOG_SEGMENT_H_
#define SRC_STORAGE_LOG_SEGMENT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/serialization.h"
#include "src/common/status.h"

namespace publishing {

inline constexpr uint32_t kSegmentFormatVersion = 1;
inline constexpr size_t kSegmentMagicBytes = 8;
inline constexpr size_t kSegmentHeaderBytes = kSegmentMagicBytes + 4 + 8;
inline constexpr size_t kRecordFrameOverhead = 8;  // len + crc.
// Upper bound on a single record; a length field above this is corruption,
// not a huge record (the biggest legitimate record is a node checkpoint
// image, far below this).
inline constexpr uint32_t kMaxRecordBytes = 64u << 20;

// Returns the 20-byte segment header for segment `seq`.
Bytes EncodeSegmentHeader(uint64_t seq);
// Validates a header; returns the segment sequence number.
Result<uint64_t> DecodeSegmentHeader(std::span<const uint8_t> data);

// Appends one framed record to `out`.
void AppendRecordFrame(Bytes& out, std::span<const uint8_t> payload);

enum class FrameParse {
  kOk,       // A complete, CRC-valid record.
  kEnd,      // Exactly at end of data: clean end.
  kTorn,     // Frame extends past end of data (crash mid-write).
  kCorrupt,  // CRC mismatch or absurd length (bit rot / damage).
};

struct FrameDecodeResult {
  FrameParse parse = FrameParse::kEnd;
  std::span<const uint8_t> payload;  // Valid only when parse == kOk.
  size_t next_offset = 0;            // Offset just past this frame.
};

// Decodes the frame starting at `offset`.  Never throws, never reads out of
// bounds; garbage input yields kTorn/kCorrupt, not a crash.
FrameDecodeResult DecodeRecordFrame(std::span<const uint8_t> data, size_t offset);

// Buffered writer for one segment file.  Append() stages bytes in the stdio
// buffer; Sync() makes everything appended so far durable (fflush + fsync).
class SegmentWriter {
 public:
  SegmentWriter() = default;
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  // Creates `path` (truncating any old file) and writes the header.
  Status Open(const std::string& path, uint64_t seq);
  Status Append(std::span<const uint8_t> payload);
  Status Sync();
  void Close();

  bool is_open() const { return file_ != nullptr; }
  // Bytes written so far, header included (staged bytes count).
  size_t bytes() const { return bytes_; }
  uint64_t seq() const { return seq_; }
  const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t seq_ = 0;
  size_t bytes_ = 0;
};

struct SegmentScan {
  uint64_t seq = 0;
  std::vector<Bytes> records;
  bool clean = true;          // False when a torn/corrupt tail was dropped.
  FrameParse tail = FrameParse::kEnd;
  size_t valid_bytes = 0;     // Length of the parseable prefix.
  size_t dropped_bytes = 0;   // Bytes past the valid prefix.
};

// Reads a whole segment file, stopping at the first torn or corrupt frame.
// Only an unreadable file or a bad header is an error; a damaged tail is
// reported via `clean`/`tail`, because that is the expected shape of a
// crash.
Result<SegmentScan> ScanSegment(const std::string& path);

}  // namespace publishing

#endif  // SRC_STORAGE_LOG_SEGMENT_H_
