// Startup scan: rebuild the recorder database from WAL segments (§4.5,
// "it is possible to rebuild the data base from the disk").
//
// Segments are replayed in sequence order; within a segment, records in
// append order.  Three kinds of damage are tolerated, never fatal:
//   * torn tail — a crash mid-append leaves a partial frame at the end of
//     the then-active segment; only the tail is dropped (log_segment.h),
//   * corrupt frame — CRC mismatch; the segment is cut at the bad frame,
//   * dangling snapshot — a crash mid-compaction leaves kSnapshotBegin with
//     no kSnapshotEnd in the same segment; the whole unterminated snapshot
//     is discarded (the pre-compaction segments it would have replaced are
//     only deleted after the snapshot is durable, so they are still here).

#ifndef SRC_STORAGE_RECOVERED_DB_H_
#define SRC_STORAGE_RECOVERED_DB_H_

#include <string>

#include "src/core/stable_storage.h"

namespace publishing {

struct RecoveryReport {
  uint64_t segments_scanned = 0;
  uint64_t records_applied = 0;
  uint64_t records_skipped = 0;     // Undecodable or inside a dangling snapshot.
  uint64_t torn_segments = 0;       // Segments cut short (torn tail or bad CRC).
  uint64_t dropped_tail_bytes = 0;
  uint64_t dangling_snapshots = 0;  // Crash-mid-compaction artifacts ignored.
  uint64_t snapshots_applied = 0;
};

// Scans every segment in `dir` and replays the journal into a fresh
// StableStorage.  The result has no backend attached; the caller decides
// whether to re-attach one (typically a Wal opened on the same directory,
// which appends after the highest surviving sequence).  An empty or missing
// directory yields an empty database, not an error.
Result<StableStorage> RecoverStableStorage(const std::string& dir,
                                           RecoveryReport* report = nullptr);

}  // namespace publishing

#endif  // SRC_STORAGE_RECOVERED_DB_H_
