#include "src/storage/compactor.h"

#include "src/storage/log_segment.h"

namespace publishing {

Result<CompactionResult> Compactor::WriteSnapshotSegment(
    const std::string& path, uint64_t seq, const std::vector<Bytes>& records) const {
  SegmentWriter writer;
  Status status = writer.Open(path, seq);
  if (!status.ok()) {
    return status;
  }
  for (const Bytes& record : records) {
    status = writer.Append(record);
    if (!status.ok()) {
      return status;
    }
  }
  // The snapshot must be durable before any old segment may be deleted.
  status = writer.Sync();
  if (!status.ok()) {
    return status;
  }
  CompactionResult result;
  result.segment_seq = seq;
  result.segment_path = path;
  result.bytes_written = writer.bytes();
  result.records_written = records.size();
  writer.Close();
  return result;
}

}  // namespace publishing
