// Checkpoint-triggered log compaction (§5.1).
//
// The paper's storage model discards "messages before the checkpoint"; in a
// log-structured engine those discards leave dead records behind in old
// segments.  The compactor rewrites the *live* database image — produced by
// the attached StableStorage as a record sequence bracketed by snapshot
// markers — into one fresh segment, fsyncs it, and only then lets the WAL
// delete the obsolete segments.  A crash at any point leaves either the old
// segments (snapshot incomplete: its end marker is missing, so recovery
// ignores it) or the new one (old segments already deletable), never a state
// that loses acknowledged records.

#ifndef SRC_STORAGE_COMPACTOR_H_
#define SRC_STORAGE_COMPACTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/serialization.h"
#include "src/common/status.h"

namespace publishing {

struct CompactorOptions {
  // Never compact while the log is smaller than this: rewriting a tiny log
  // costs more fsyncs than it reclaims.
  size_t min_bytes = 128 * 1024;
  // Compact when the log has grown past `growth_factor` times its size right
  // after the previous compaction (or its size at open).
  double growth_factor = 2.0;
};

struct CompactionResult {
  uint64_t segment_seq = 0;   // Sequence of the snapshot segment written.
  std::string segment_path;
  size_t bytes_written = 0;   // Size of the snapshot segment.
  size_t records_written = 0;
};

class Compactor {
 public:
  explicit Compactor(CompactorOptions options) : options_(options) {}

  const CompactorOptions& options() const { return options_; }

  // Policy: should a log currently `total_bytes` large, whose post-compaction
  // (or at-open) size was `baseline_bytes`, be rewritten now?
  bool ShouldCompact(size_t total_bytes, size_t baseline_bytes) const {
    if (total_bytes < options_.min_bytes) {
      return false;
    }
    return static_cast<double>(total_bytes) >=
           options_.growth_factor * static_cast<double>(baseline_bytes);
  }

  // Mechanism: writes `records` into a new segment file at `path` with
  // sequence `seq` and makes it durable before returning.  The caller (the
  // WAL) deletes the segments it supersedes afterwards.
  Result<CompactionResult> WriteSnapshotSegment(const std::string& path, uint64_t seq,
                                                const std::vector<Bytes>& records) const;

 private:
  CompactorOptions options_;
};

}  // namespace publishing

#endif  // SRC_STORAGE_COMPACTOR_H_
