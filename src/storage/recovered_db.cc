#include "src/storage/recovered_db.h"

#include <filesystem>

#include "src/common/logging.h"
#include "src/core/storage_journal.h"
#include "src/storage/log_segment.h"
#include "src/storage/wal.h"

namespace publishing {

Result<StableStorage> RecoverStableStorage(const std::string& dir, RecoveryReport* report) {
  RecoveryReport local;
  StableStorage db;
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) {
    if (report != nullptr) {
      *report = local;
    }
    return db;  // Nothing on disk: a brand-new recorder.
  }
  auto paths = ListSegmentPaths(dir);
  if (!paths.ok()) {
    return paths.status();
  }
  for (const std::string& path : *paths) {
    auto scan = ScanSegment(path);
    if (!scan.ok()) {
      PUB_LOG_ERROR("recovery: skipping unreadable segment %s: %s", path.c_str(),
                    scan.status().ToString().c_str());
      ++local.torn_segments;
      continue;
    }
    ++local.segments_scanned;
    if (!scan->clean) {
      ++local.torn_segments;
      local.dropped_tail_bytes += scan->dropped_bytes;
    }
    // A kSnapshotBegin whose kSnapshotEnd never made it to this segment is a
    // crash mid-compaction: every record from the begin onward is part of
    // the unterminated snapshot and must be ignored.
    size_t keep = scan->records.size();
    bool open_snapshot = false;
    for (size_t i = 0; i < scan->records.size(); ++i) {
      const JournalOp op = StorageJournal::OpOf(scan->records[i]);
      if (op == JournalOp::kSnapshotBegin) {
        keep = i;
        open_snapshot = true;
      } else if (op == JournalOp::kSnapshotEnd) {
        keep = scan->records.size();
        open_snapshot = false;
      }
    }
    if (open_snapshot) {
      ++local.dangling_snapshots;
      local.records_skipped += scan->records.size() - keep;
    }
    for (size_t i = 0; i < keep; ++i) {
      Status status = StorageJournal::Apply(db, scan->records[i]);
      if (!status.ok()) {
        PUB_LOG_ERROR("recovery: skipping record %zu of %s: %s", i, path.c_str(),
                      status.ToString().c_str());
        ++local.records_skipped;
        continue;
      }
      ++local.records_applied;
      if (StorageJournal::OpOf(scan->records[i]) == JournalOp::kSnapshotEnd) {
        ++local.snapshots_applied;
      }
    }
  }
  if (report != nullptr) {
    *report = local;
  }
  return db;
}

}  // namespace publishing
