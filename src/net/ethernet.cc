#include "src/net/ethernet.h"

namespace publishing {

void Ethernet::AddContender(NodeId src) {
  if (++queued_per_src_[src.value] == 1) {
    ++distinct_sources_;
  }
}

void Ethernet::RemoveContender(NodeId src) {
  auto it = queued_per_src_.find(src.value);
  if (--it->second == 0) {
    queued_per_src_.erase(it);
    --distinct_sources_;
  }
}

void Ethernet::Send(Frame frame) {
  if (options_.acknowledging && frame.type == FrameType::kAck) {
    // Reserved-slot transmission: no contention, no channel occupancy beyond
    // the (already accounted) ack slot of the frame being acknowledged.
    NoteFrameSent(frame);
    Frame copy = std::move(frame);
    sim()->ScheduleAfter(Micros(10), [this, copy = std::move(copy)]() mutable {
      RunListeners(copy);  // The recorder still overhears acks (§4.4.1).
      DeliverToStations(copy);
    });
    return;
  }
  AddContender(frame.src);
  queue_.push_back(Pending{std::move(frame), sim()->Now()});
  StartNext();
}

void Ethernet::StartNext() {
  if (transmitting_ || queue_.empty()) {
    return;
  }
  transmitting_ = true;
  NoteChannelBusy(true);

  // CSMA contention: if several distinct stations hold queued frames, they
  // all attempt when the channel goes idle; each collision round wastes one
  // slot time until a single winner remains.  The distinct-source count is
  // maintained incrementally on enqueue/dequeue (O(1) per frame) instead of
  // rescanning the queue per transmission.
  SimDuration contention = 0;
  if (distinct_sources_ >= 2) {
    const double collide_p = 1.0 - 1.0 / static_cast<double>(distinct_sources_);
    while (fault_rng().NextBernoulli(collide_p)) {
      contention += options_.slot_time;
      NoteCollision();
    }
  }

  Pending pending = std::move(queue_.front());
  queue_.pop_front();
  RemoveContender(pending.frame.src);
  NoteQueueDelay(ToMillis(sim()->Now() - pending.enqueued));

  SimDuration occupancy = contention + timings().TransmitTime(pending.frame.WireBytes());
  if (options_.acknowledging) {
    occupancy += options_.ack_slot;
  }
  NoteFrameSent(pending.frame);

  const SimTime start = sim()->Now();
  sim()->ScheduleAfter(occupancy, [this, frame = std::move(pending.frame), start]() mutable {
    CompleteTransmission(std::move(frame), start);
  });
}

void Ethernet::CompleteTransmission(Frame frame, SimTime start) {
  TraceTransmission(start, frame);
  bool recorded = RunListeners(frame);
  if (recorded || !options_.recorder_gating || !HasListeners()) {
    DeliverToStations(frame);
  } else {
    NoteVetoed(frame);
  }
  transmitting_ = false;
  NoteChannelBusy(false);
  StartNext();
}

}  // namespace publishing
