#include "src/net/ethernet.h"

#include <unordered_set>

namespace publishing {

void Ethernet::Send(Frame frame) {
  if (options_.acknowledging && frame.type == FrameType::kAck) {
    // Reserved-slot transmission: no contention, no channel occupancy beyond
    // the (already accounted) ack slot of the frame being acknowledged.
    ++stats_.frames_sent;
    stats_.bytes_sent += frame.WireBytes();
    Frame copy = std::move(frame);
    sim()->ScheduleAfter(Micros(10), [this, copy = std::move(copy)]() mutable {
      RunListeners(copy);  // The recorder still overhears acks (§4.4.1).
      DeliverToStations(copy);
    });
    return;
  }
  queue_.push_back(Pending{std::move(frame), sim()->Now()});
  StartNext();
}

void Ethernet::StartNext() {
  if (transmitting_ || queue_.empty()) {
    return;
  }
  transmitting_ = true;
  stats_.channel.SetBusy(sim()->Now(), true);

  // CSMA contention: if several distinct stations hold queued frames, they
  // all attempt when the channel goes idle; each collision round wastes one
  // slot time until a single winner remains.
  std::unordered_set<uint32_t> contenders;
  for (const Pending& p : queue_) {
    contenders.insert(p.frame.src.value);
  }
  SimDuration contention = 0;
  if (contenders.size() >= 2) {
    const double collide_p = 1.0 - 1.0 / static_cast<double>(contenders.size());
    while (fault_rng().NextBernoulli(collide_p)) {
      contention += options_.slot_time;
      ++stats_.collisions;
    }
  }

  Pending pending = std::move(queue_.front());
  queue_.pop_front();
  stats_.queue_delay_ms.Add(ToMillis(sim()->Now() - pending.enqueued));

  SimDuration occupancy = contention + timings().TransmitTime(pending.frame.WireBytes());
  if (options_.acknowledging) {
    occupancy += options_.ack_slot;
  }
  ++stats_.frames_sent;
  stats_.bytes_sent += pending.frame.WireBytes();

  sim()->ScheduleAfter(occupancy, [this, frame = std::move(pending.frame)]() mutable {
    CompleteTransmission(std::move(frame));
  });
}

void Ethernet::CompleteTransmission(Frame frame) {
  bool recorded = RunListeners(frame);
  if (recorded || !options_.recorder_gating || !HasListeners()) {
    DeliverToStations(frame);
  } else {
    ++stats_.frames_vetoed;
  }
  transmitting_ = false;
  stats_.channel.SetBusy(sim()->Now(), false);
  StartNext();
}

}  // namespace publishing
