// Star configuration with the recorder as hub (§4.1, Figure 4.1a).
//
// "We accomplish this by making the recording node the hub of a star
// configuration.  Any messages received incorrectly by the recorder are not
// passed on."  Every frame crosses two links (source→hub, hub→destination);
// the hub runs the promiscuous listeners between the two legs and drops the
// frame if recording failed, so the sender's transport retransmits.

#ifndef SRC_NET_STAR_HUB_H_
#define SRC_NET_STAR_HUB_H_

#include <deque>

#include "src/net/medium.h"

namespace publishing {

class StarHub : public Medium {
 public:
  StarHub(Simulator* sim, MediumTimings timings, MediumFaults faults, uint64_t fault_seed)
      : Medium(sim, timings, faults, fault_seed) {}

  void Send(Frame frame) override;

 private:
  struct Pending {
    Frame frame;
    SimTime enqueued;
  };

  void StartNext();

  // Hub forwarding is serialized: the recorder node copies each frame to its
  // log before relaying it, one at a time.
  std::deque<Pending> queue_;
  bool busy_ = false;
};

}  // namespace publishing

#endif  // SRC_NET_STAR_HUB_H_
