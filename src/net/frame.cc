#include "src/net/frame.h"

namespace publishing {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kData:
      return "DATA";
    case FrameType::kAck:
      return "ACK";
    case FrameType::kControl:
      return "CONTROL";
    case FrameType::kCheckpoint:
      return "CHECKPOINT";
  }
  return "?";
}

}  // namespace publishing
