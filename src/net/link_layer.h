// Link layer: CRC framing (§4.3.3 "wrapping all messages with a rotating
// checksum... messages with an incorrect checksum are discarded").
//
// The CRC is genuinely computed and checked: fault injection damages payload
// bytes in flight and the receiving link layer must catch it.  The token ring
// recorder-veto (§6.1.2) deliberately complements the trailing CRC bytes so
// that "if the recorder could not successfully read it, neither will the
// receiver".

#ifndef SRC_NET_LINK_LAYER_H_
#define SRC_NET_LINK_LAYER_H_

#include "src/common/serialization.h"
#include "src/common/status.h"

namespace publishing {

// Appends a CRC32 trailer to `body` producing a link-layer payload.
Bytes LinkWrap(const Bytes& body);

// Validates and strips the CRC trailer.  Returns kCorrupt if the trailer is
// missing or does not match.
Result<Bytes> LinkUnwrap(const Bytes& payload);

// Complements the CRC trailer in place, guaranteeing validation failure
// (used by the token-ring recorder to invalidate frames it missed, §6.1.2).
void LinkInvalidate(Bytes& payload);

// Damages one payload byte in place (fault-injection helper); position is
// chosen by the caller, typically from a seeded Rng.
void LinkCorruptByte(Bytes& payload, size_t index);

}  // namespace publishing

#endif  // SRC_NET_LINK_LAYER_H_
