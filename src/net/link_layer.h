// Link layer: CRC framing (§4.3.3 "wrapping all messages with a rotating
// checksum... messages with an incorrect checksum are discarded").
//
// The CRC is genuinely computed and checked: fault injection damages payload
// bytes in flight and the receiving link layer must catch it.  The token ring
// recorder-veto (§6.1.2) deliberately complements the trailing CRC bytes so
// that "if the recorder could not successfully read it, neither will the
// receiver".
//
// The API is built around the shared immutable Buffer: wrapping appends the
// CRC to the serialized body in place and freezes it (the one allocation per
// message), unwrapping validates and returns a zero-copy slice, and the two
// fault injectors (invalidate, corrupt) are copy-on-write — the only writers
// on the wire path, each paying for exactly one copy.

#ifndef SRC_NET_LINK_LAYER_H_
#define SRC_NET_LINK_LAYER_H_

#include "src/common/buffer.h"
#include "src/common/serialization.h"
#include "src/common/status.h"

namespace publishing {

// Appends a CRC32 trailer to `body` (in place — takes ownership) and freezes
// the result as the frame's shared link-layer payload.
Buffer LinkWrap(Bytes body);

// Validates the CRC trailer.  Returns a zero-copy slice of `payload` with
// the trailer stripped, or kCorrupt if the trailer is missing or mismatched.
Result<Buffer> LinkUnwrap(const Buffer& payload);

// Returns a copy of `payload` with the CRC trailer complemented, guaranteeing
// validation failure (used by the token-ring recorder to invalidate frames it
// missed, §6.1.2).  Copy-on-write: the shared original is untouched.
Buffer LinkInvalidate(const Buffer& payload);

// Returns a copy of `payload` with one byte damaged (fault-injection helper);
// position is chosen by the caller, typically from a seeded Rng.  CoW.
Buffer LinkCorrupt(const Buffer& payload, size_t index);

}  // namespace publishing

#endif  // SRC_NET_LINK_LAYER_H_
