// Token ring with a recorder acknowledge field (§6.1.2, Figures 6.3/6.4).
//
// Stations sit on a ring in attach order; a single token circulates.  A
// sender waits for the token, fills the slot, and the frame travels around
// the ring.  Frames whose acknowledge field is empty are ignored by every
// station except the recorder; when the frame passes the recorder it is
// recorded and the ack field is filled.  If the recorder received it
// incorrectly, it complements the trailing checksum so the destination —
// which only reads the frame after the ack field is set — rejects it too
// ("if the recorder could not successfully read it, neither will the
// receiver").
//
// Geometry consequence modeled here: the destination reads the frame on the
// first pass only if it lies downstream of the recorder on the sender→ring
// path; otherwise the frame reaches it before the ack is filled and delivery
// happens a full extra rotation later.

#ifndef SRC_NET_TOKEN_RING_H_
#define SRC_NET_TOKEN_RING_H_

#include <deque>

#include "src/net/medium.h"

namespace publishing {

struct TokenRingOptions {
  // Per-hop propagation + station latch delay.
  SimDuration hop_delay = Micros(20);
  // Ring position (attach order index) of the recorder station.  Frames get
  // their ack field filled when passing this position.  Ignored when no
  // promiscuous listener is attached.
  size_t recorder_position = 0;
};

class TokenRing : public Medium {
 public:
  TokenRing(Simulator* sim, MediumTimings timings, MediumFaults faults, uint64_t fault_seed,
            TokenRingOptions options = {})
      : Medium(sim, timings, faults, fault_seed), options_(options) {}

  void Send(Frame frame) override;

  // Extra full rotations paid because the destination preceded the recorder.
  uint64_t extra_rotations() const { return extra_rotations_; }

 private:
  struct Pending {
    Frame frame;
    SimTime enqueued;
  };

  void StartNext();
  size_t RingIndexOf(NodeId node) const;
  size_t HopsBetween(size_t from, size_t to) const;

  TokenRingOptions options_;
  std::deque<Pending> queue_;
  bool token_held_ = false;
  uint64_t extra_rotations_ = 0;
};

}  // namespace publishing

#endif  // SRC_NET_TOKEN_RING_H_
