#include "src/net/star_hub.h"

namespace publishing {

void StarHub::Send(Frame frame) {
  queue_.push_back(Pending{std::move(frame), sim()->Now()});
  StartNext();
}

void StarHub::StartNext() {
  if (busy_ || queue_.empty()) {
    return;
  }
  busy_ = true;
  NoteChannelBusy(true);

  Pending pending = std::move(queue_.front());
  queue_.pop_front();
  NoteQueueDelay(ToMillis(sim()->Now() - pending.enqueued));

  NoteFrameSent(pending.frame);

  // Leg 1: source to hub.
  const SimTime start = sim()->Now();
  const SimDuration leg = timings().TransmitTime(pending.frame.WireBytes());
  sim()->ScheduleAfter(leg, [this, frame = std::move(pending.frame), leg, start]() mutable {
    // The hub is the recorder: record (or fail to) before forwarding.
    bool recorded = RunListeners(frame);
    if (!recorded && HasListeners()) {
      NoteVetoed(frame);
      busy_ = false;
      NoteChannelBusy(false);
      StartNext();
      return;
    }
    // Leg 2: hub to destination.
    sim()->ScheduleAfter(leg, [this, frame = std::move(frame), start]() mutable {
      TraceTransmission(start, frame);
      DeliverToStations(frame);
      busy_ = false;
      NoteChannelBusy(false);
      StartNext();
    });
  });
}

}  // namespace publishing
