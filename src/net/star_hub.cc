#include "src/net/star_hub.h"

namespace publishing {

void StarHub::Send(Frame frame) {
  queue_.push_back(Pending{std::move(frame), sim()->Now()});
  StartNext();
}

void StarHub::StartNext() {
  if (busy_ || queue_.empty()) {
    return;
  }
  busy_ = true;
  stats_.channel.SetBusy(sim()->Now(), true);

  Pending pending = std::move(queue_.front());
  queue_.pop_front();
  stats_.queue_delay_ms.Add(ToMillis(sim()->Now() - pending.enqueued));

  ++stats_.frames_sent;
  stats_.bytes_sent += pending.frame.WireBytes();

  // Leg 1: source to hub.
  const SimDuration leg = timings().TransmitTime(pending.frame.WireBytes());
  sim()->ScheduleAfter(leg, [this, frame = std::move(pending.frame), leg]() mutable {
    // The hub is the recorder: record (or fail to) before forwarding.
    bool recorded = RunListeners(frame);
    if (!recorded && HasListeners()) {
      ++stats_.frames_vetoed;
      busy_ = false;
      stats_.channel.SetBusy(sim()->Now(), false);
      StartNext();
      return;
    }
    // Leg 2: hub to destination.
    sim()->ScheduleAfter(leg, [this, frame = std::move(frame)]() mutable {
      DeliverToStations(frame);
      busy_ = false;
      stats_.channel.SetBusy(sim()->Now(), false);
      StartNext();
    });
  });
}

}  // namespace publishing
