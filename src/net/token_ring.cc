#include "src/net/token_ring.h"

#include "src/net/link_layer.h"

namespace publishing {

void TokenRing::Send(Frame frame) {
  queue_.push_back(Pending{std::move(frame), sim()->Now()});
  StartNext();
}

size_t TokenRing::RingIndexOf(NodeId node) const {
  const auto& order = attach_order();
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == node) {
      return i;
    }
  }
  return 0;
}

size_t TokenRing::HopsBetween(size_t from, size_t to) const {
  const size_t n = attach_order().size();
  if (n == 0) {
    return 0;
  }
  size_t hops = (to + n - from) % n;
  return hops == 0 ? n : hops;
}

void TokenRing::StartNext() {
  if (token_held_ || queue_.empty()) {
    return;
  }
  token_held_ = true;
  NoteChannelBusy(true);

  Pending pending = std::move(queue_.front());
  queue_.pop_front();
  NoteQueueDelay(ToMillis(sim()->Now() - pending.enqueued));

  const size_t n = attach_order().empty() ? 1 : attach_order().size();
  const size_t sender = RingIndexOf(pending.frame.src);
  // Mean token-acquisition wait: half a rotation.
  const SimDuration token_wait = options_.hop_delay * static_cast<SimDuration>(n) / 2;
  const SimDuration transmit = timings().TransmitTime(pending.frame.WireBytes());
  const SimDuration rotation = options_.hop_delay * static_cast<SimDuration>(n);

  NoteFrameSent(pending.frame);

  const size_t hops_to_recorder = HopsBetween(sender, options_.recorder_position % n);
  const SimTime send_start = sim()->Now();
  const SimTime start = sim()->Now() + token_wait + transmit;

  // Recorder pass: record (or invalidate) when the frame reaches the
  // recorder's ring position.
  sim()->ScheduleAt(
      start + options_.hop_delay * static_cast<SimDuration>(hops_to_recorder),
      [this, frame = pending.frame, start, sender, hops_to_recorder, rotation, n]() mutable {
        bool recorded = !HasListeners() || RunListeners(frame);
        if (!recorded) {
          // Complement the checksum (copy-on-write; the sender's shared
          // payload is untouched): the destination will reject the frame.
          frame.payload = LinkInvalidate(frame.payload);
          frame.corrupted = true;
          NoteVetoed(frame);
        }
        // Delivery pass.
        SimDuration delivery_offset;
        if (frame.dst == kBroadcastNode) {
          delivery_offset = rotation;
        } else {
          const size_t hops_to_dst = HopsBetween(sender, RingIndexOf(frame.dst));
          if (hops_to_dst >= hops_to_recorder) {
            delivery_offset = options_.hop_delay * static_cast<SimDuration>(hops_to_dst);
          } else {
            // Destination precedes the recorder: it ignores the unacked frame
            // on the first pass and reads it one rotation later.
            delivery_offset =
                options_.hop_delay * static_cast<SimDuration>(hops_to_dst + n);
            ++extra_rotations_;
          }
        }
        sim()->ScheduleAt(start + delivery_offset, [this, frame = std::move(frame)]() mutable {
          DeliverToStations(frame);
        });
      });

  // The sender removes the frame when it returns and reinserts the token.
  const FrameType sent_type = pending.frame.type;
  const size_t sent_bytes = pending.frame.WireBytes();
  sim()->ScheduleAt(start + rotation, [this, send_start, sent_type, sent_bytes] {
    TraceTransmission(send_start, sent_type, sent_bytes);
    token_held_ = false;
    NoteChannelBusy(false);
    StartNext();
  });
}

}  // namespace publishing
