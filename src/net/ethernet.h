// CSMA/CD broadcast Ethernet and the Acknowledging Ethernet variant.
//
// Standard Ethernet (§6.1.1): stations contend for the channel; overlapping
// attempts collide, wasting slot times before one wins.  Transport
// acknowledgements are ordinary frames, so under load they collide with data
// frames (the Figure 6.2 pathology).
//
// Acknowledging Ethernet (Tokoro & Tamaru, as adapted in §6.1.1): a time
// slot is reserved after every frame during which only the receiver — and,
// for publishing, the recorder — may transmit.  Acks therefore never collide,
// and the recorder's publication acknowledgement rides the reserved slot: if
// the recorder fails to record a frame, no recorder-ack appears in the slot
// and the receiver discards the frame exactly as if it had been damaged.

#ifndef SRC_NET_ETHERNET_H_
#define SRC_NET_ETHERNET_H_

#include <deque>
#include <unordered_map>

#include "src/net/medium.h"

namespace publishing {

struct EthernetOptions {
  // Reserved-ack-slot variant (§6.1.1).  When true, frames of FrameType::kAck
  // use the reserved slot: they do not contend for the channel and cannot
  // collide; every data frame's channel occupancy grows by `ack_slot`.
  bool acknowledging = false;

  // When true and a promiscuous listener (recorder) is attached, frames the
  // listener fails to record are vetoed: no station receives them and the
  // sender's transport must retransmit (§4.4.1).
  bool recorder_gating = true;

  // CSMA contention slot (classic Ethernet slot time, 51.2 us at 10 Mbit).
  SimDuration slot_time = Micros(51);

  // Width of the reserved acknowledgement slot.
  SimDuration ack_slot = Micros(76);
};

class Ethernet : public Medium {
 public:
  Ethernet(Simulator* sim, MediumTimings timings, MediumFaults faults, uint64_t fault_seed,
           EthernetOptions options = {})
      : Medium(sim, timings, faults, fault_seed), options_(options) {}

  void Send(Frame frame) override;

  const EthernetOptions& options() const { return options_; }

 private:
  struct Pending {
    Frame frame;
    SimTime enqueued;
  };

  void StartNext();
  void CompleteTransmission(Frame frame, SimTime start);

  // Incremental contender bookkeeping: per-source count of queued frames and
  // the number of distinct sources, maintained on enqueue/dequeue so
  // StartNext never rescans the queue.
  void AddContender(NodeId src);
  void RemoveContender(NodeId src);

  EthernetOptions options_;
  std::deque<Pending> queue_;
  std::unordered_map<uint32_t, uint32_t> queued_per_src_;
  size_t distinct_sources_ = 0;
  bool transmitting_ = false;
};

}  // namespace publishing

#endif  // SRC_NET_ETHERNET_H_
