#include "src/net/link_layer.h"

#include <utility>

#include "src/common/checksum.h"

namespace publishing {

Buffer LinkWrap(Bytes body) {
  const uint32_t crc = Crc32(std::span<const uint8_t>(body.data(), body.size()));
  for (size_t i = 0; i < 4; ++i) {
    body.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  return Buffer(std::move(body));
}

Result<Buffer> LinkUnwrap(const Buffer& payload) {
  if (payload.size() < 4) {
    return Status(StatusCode::kCorrupt, "frame shorter than CRC trailer");
  }
  const size_t body_len = payload.size() - 4;
  uint32_t stored = 0;
  for (size_t i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(payload[body_len + i]) << (8 * i);
  }
  const uint32_t computed = Crc32(std::span<const uint8_t>(payload.data(), body_len));
  if (stored != computed) {
    return Status(StatusCode::kCorrupt, "CRC mismatch");
  }
  return payload.Slice(0, body_len);
}

Buffer LinkInvalidate(const Buffer& payload) {
  if (payload.size() < 4) {
    return payload;
  }
  return payload.MutateCopy([](Bytes& bytes) {
    for (size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
      bytes[i] = static_cast<uint8_t>(~bytes[i]);
    }
  });
}

Buffer LinkCorrupt(const Buffer& payload, size_t index) {
  if (payload.empty()) {
    return payload;
  }
  return payload.MutateCopy(
      [index](Bytes& bytes) { bytes[index % bytes.size()] ^= 0x5A; });
}

}  // namespace publishing
