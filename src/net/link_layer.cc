#include "src/net/link_layer.h"

#include "src/common/checksum.h"

namespace publishing {

Bytes LinkWrap(const Bytes& body) {
  Bytes out = body;
  uint32_t crc = Crc32(std::span<const uint8_t>(body.data(), body.size()));
  for (size_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  return out;
}

Result<Bytes> LinkUnwrap(const Bytes& payload) {
  if (payload.size() < 4) {
    return Status(StatusCode::kCorrupt, "frame shorter than CRC trailer");
  }
  const size_t body_len = payload.size() - 4;
  uint32_t stored = 0;
  for (size_t i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(payload[body_len + i]) << (8 * i);
  }
  uint32_t computed = Crc32(std::span<const uint8_t>(payload.data(), body_len));
  if (stored != computed) {
    return Status(StatusCode::kCorrupt, "CRC mismatch");
  }
  return Bytes(payload.begin(), payload.begin() + static_cast<ptrdiff_t>(body_len));
}

void LinkInvalidate(Bytes& payload) {
  if (payload.size() < 4) {
    return;
  }
  for (size_t i = payload.size() - 4; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(~payload[i]);
  }
}

void LinkCorruptByte(Bytes& payload, size_t index) {
  if (payload.empty()) {
    return;
  }
  payload[index % payload.size()] ^= 0x5A;
}

}  // namespace publishing
