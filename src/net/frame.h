// Wire frames exchanged on a simulated medium.
//
// A frame is the unit the recorder overhears: the publishing model (§3.1)
// needs every inter-process message — and every transport acknowledgement,
// since acks reveal receive order (§4.4.1) — to appear on the wire as a
// frame the recorder can copy or veto.

#ifndef SRC_NET_FRAME_H_
#define SRC_NET_FRAME_H_

#include <cstdint>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/ids.h"
#include "src/common/serialization.h"
#include "src/obs/causal.h"

namespace publishing {

// Destination address meaning "every station".
inline constexpr NodeId kBroadcastNode{0xFFFFFFFFu};

// Coarse frame class, visible to media for statistics; the payload contents
// are owned by the transport layer.
enum class FrameType : uint8_t {
  kData = 0,       // Transport data packet (guaranteed or unguaranteed).
  kAck = 1,        // Transport end-to-end acknowledgement.
  kControl = 2,    // Watchdog / recovery-manager control traffic.
  kCheckpoint = 3, // Checkpoint pages sent to the recorder.
};

const char* FrameTypeName(FrameType type);

struct Frame {
  NodeId src;
  NodeId dst = kBroadcastNode;
  FrameType type = FrameType::kData;
  // Link-layer payload (already CRC-wrapped by the link layer).  Shared and
  // immutable: broadcast delivery hands every station a view of the same
  // storage; fault injection substitutes a damaged copy-on-write clone.
  Buffer payload;
  // Set by fault injection when the copy handed to a receiver was damaged in
  // flight; the link layer CRC check will reject it.
  bool corrupted = false;
  // Scatter/gather segments: extra shared-Buffer views transmitted after the
  // payload (replay bursts).  Like the payload these are refcounted views —
  // DeliverCopy's per-station Frame copy shares their storage — but they DO
  // occupy simulated wire time (see WireBytes), unlike the causal sidecar.
  std::vector<Buffer> segments;
  // Observability sidecar stamped by the sending transport endpoint: carries
  // the payload packet's message id/origin/attempt so every layer that sees
  // the frame can key its lifecycle observation without re-parsing the
  // payload.  POD, not serialized, zero bytes on the simulated wire.
  CausalContext causal;

  // Physical size on the wire: payload plus preamble/addresses/type header,
  // plus each gather segment and its length prefix.
  size_t WireBytes() const {
    size_t bytes = payload.size() + kHeaderBytes;
    for (const Buffer& segment : segments) {
      bytes += segment.size() + kSegmentHeaderBytes;
    }
    return bytes;
  }

  static constexpr size_t kHeaderBytes = 18;
  static constexpr size_t kSegmentHeaderBytes = 4;
};

}  // namespace publishing

#endif  // SRC_NET_FRAME_H_
