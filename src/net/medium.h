// Abstract broadcast medium with promiscuous-listener support.
//
// Publishing needs exactly one property from the network (§3.2.4): a point
// where a passive recorder can copy — and, when its own reception fails,
// veto — every frame.  Each concrete medium (Ethernet, Acknowledging
// Ethernet, token ring, star hub) provides that property in its own way; the
// PromiscuousListener interface is how the recorder plugs into all of them.

#ifndef SRC_NET_MEDIUM_H_
#define SRC_NET_MEDIUM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/net/frame.h"
#include "src/obs/observability.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace publishing {

// A node's network attachment.  Concrete stations are the per-node transport
// endpoints and the recorder.
class Station {
 public:
  virtual ~Station() = default;

  virtual NodeId Address() const = 0;

  // Called when a frame addressed to this station (or broadcast) finishes
  // arriving.  The frame may be corrupted; the link layer CRC check decides.
  virtual void OnFrame(const Frame& frame) = 0;
};

// Sees every frame on the wire, before delivery.  Returns true if it
// successfully recorded the frame; media that support recorder gating use a
// false return to prevent any station from receiving the frame (§4.4.1:
// "the recorder can block the transmission, ensuring that no other processor
// correctly receives it").
class PromiscuousListener {
 public:
  virtual ~PromiscuousListener() = default;

  virtual bool OnWireFrame(const Frame& frame) = 0;
};

// Per-medium fault injection.  Rates are independent per delivery.
struct MediumFaults {
  double receiver_error_rate = 0.0;  // P(a receiver's copy is damaged).
  double listener_miss_rate = 0.0;   // P(the recorder fails to record).
};

struct MediumStats {
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t frames_delivered = 0;
  uint64_t frames_vetoed = 0;      // Blocked because a listener missed them.
  uint64_t frames_corrupted = 0;   // Damaged copies handed to receivers.
  uint64_t collisions = 0;         // CSMA collision rounds (Ethernet only).
  StatAccumulator queue_delay_ms;  // Send-request to transmission-start.
  UtilizationTracker channel;      // Busy fraction of the shared channel.
};

struct MediumTimings {
  // Fixed per-frame cost before bits flow (Fig. 5.2: 1.6 ms).
  SimDuration interpacket_delay = MillisF(1.6);
  // Channel bandwidth in bits per second (Fig. 5.2: 10 Mbit/s).
  double bits_per_second = 10e6;

  SimDuration TransmitTime(size_t wire_bytes) const {
    return interpacket_delay +
           SecondsF(static_cast<double>(wire_bytes) * 8.0 / bits_per_second);
  }
};

class Medium {
 public:
  Medium(Simulator* sim, MediumTimings timings, MediumFaults faults, uint64_t fault_seed)
      : sim_(sim), timings_(timings), faults_(faults), fault_rng_(fault_seed) {}
  virtual ~Medium() = default;

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  void Attach(Station* station) {
    stations_[station->Address()] = station;
    attach_order_.push_back(station->Address());
  }
  void Detach(NodeId node) { stations_.erase(node); }

  // Attaches a promiscuous listener.  `home` is the node the listener's
  // hardware sits on; it matters only under network partitions (§3.6): a
  // listener overhears exactly the frames its partition carries.  The
  // default home (kBroadcastNode) observes every partition — the
  // single-recorder, never-partitioned configuration.
  void AttachListener(PromiscuousListener* listener, NodeId home = kBroadcastNode) {
    listeners_.push_back(ListenerEntry{listener, home});
  }
  void DetachListener(PromiscuousListener* listener) {
    std::erase_if(listeners_,
                  [listener](const ListenerEntry& e) { return e.listener == listener; });
  }

  // --- Gateway forwarding (src/internet) ---
  // A forwarder is a station that receives the unicast frames whose
  // destination is not attached to this medium — the link-layer hook a
  // gateway uses to pick inter-segment traffic off its attached segments.
  // Forwarders never shadow local delivery: if the destination is attached
  // (even partition-hidden), the frame stays local.  Broadcast frames are
  // segment-local by design and are never handed to forwarders.
  void AttachForwarder(Station* forwarder) { forwarders_.push_back(forwarder); }
  void DetachForwarder(Station* forwarder) {
    std::erase_if(forwarders_, [forwarder](Station* s) { return s == forwarder; });
  }

  // --- Network partitions (§3.6) ---
  // Places `node` into partition `group` (default group is 0).  Frames only
  // reach stations and listeners in the sender's group; guaranteed traffic
  // across a partition simply retransmits until the partition heals.
  void SetPartitionGroup(NodeId node, int group) { partitions_[node] = group; }
  void HealPartitions() { partitions_.clear(); }
  int PartitionGroupOf(NodeId node) const {
    auto it = partitions_.find(node);
    return it == partitions_.end() ? 0 : it->second;
  }

  // Queues `frame` for transmission.  Delivery is asynchronous on the
  // simulator; ordering/latency semantics are medium-specific.
  virtual void Send(Frame frame) = 0;

  const MediumStats& stats() const { return stats_; }
  MediumStats& mutable_stats() { return stats_; }
  Simulator* sim() const { return sim_; }
  const MediumTimings& timings() const { return timings_; }

  // Resolves the medium's instruments under `net.*{medium=label}` and keeps
  // the tracer for per-transmission spans.  Null members detach.
  void SetObservability(const Observability& obs, std::string_view label) {
    tracer_ = obs.tracer;
    lifecycle_ = obs.lifecycle;
    if (obs.metrics != nullptr) {
      const MetricLabels labels = {{"medium", std::string(label)}};
      obs_frames_sent_ = obs.metrics->GetCounter("net.frames_sent", labels);
      obs_bytes_sent_ = obs.metrics->GetCounter("net.bytes_sent", labels);
      obs_frames_delivered_ = obs.metrics->GetCounter("net.frames_delivered", labels);
      obs_frames_vetoed_ = obs.metrics->GetCounter("net.frames_vetoed", labels);
      obs_frames_corrupted_ = obs.metrics->GetCounter("net.frames_corrupted", labels);
      obs_collisions_ = obs.metrics->GetCounter("net.collisions", labels);
      obs_queue_delay_ = obs.metrics->GetHistogram("net.queue_delay_ms", labels);
      obs_utilization_ = obs.metrics->GetGauge("net.channel_utilization", labels);
    } else {
      obs_frames_sent_ = nullptr;
      obs_bytes_sent_ = nullptr;
      obs_frames_delivered_ = nullptr;
      obs_frames_vetoed_ = nullptr;
      obs_frames_corrupted_ = nullptr;
      obs_collisions_ = nullptr;
      obs_queue_delay_ = nullptr;
      obs_utilization_ = nullptr;
    }
  }

 protected:
  // Runs the listeners that share the sender's partition; returns true iff
  // every such listener recorded the frame (the multi-recorder rule of §6.3:
  // a message may be used only once all recorders acknowledge it).
  bool RunListeners(const Frame& frame) {
    const int group = PartitionGroupOf(frame.src);
    bool all_ok = true;
    bool any_reachable = false;
    for (const ListenerEntry& entry : listeners_) {
      if (entry.home != kBroadcastNode && PartitionGroupOf(entry.home) != group) {
        continue;  // The partition hides this frame from the listener.
      }
      any_reachable = true;
      bool miss = faults_.listener_miss_rate > 0.0 &&
                  fault_rng_.NextBernoulli(faults_.listener_miss_rate);
      if (miss || !entry.listener->OnWireFrame(frame)) {
        all_ok = false;
      }
    }
    if (!listeners_.empty() && !any_reachable) {
      // Recorders exist but the partition cut them all off: no publication
      // acknowledgement can arrive, so nothing may be received (§3.6).
      return false;
    }
    return all_ok;
  }

  // Delivers `frame` to its destination (every station except the sender for
  // broadcast), applying receiver fault injection and partition filtering.
  void DeliverToStations(const Frame& frame) {
    const int group = PartitionGroupOf(frame.src);
    if (frame.dst == kBroadcastNode) {
      for (NodeId addr : attach_order_) {
        auto it = stations_.find(addr);
        if (it == stations_.end() || addr == frame.src ||
            PartitionGroupOf(addr) != group) {
          continue;
        }
        DeliverCopy(it->second, frame);
      }
      return;
    }
    auto it = stations_.find(frame.dst);
    if (it != stations_.end()) {
      if (PartitionGroupOf(frame.dst) == group) {
        DeliverCopy(it->second, frame);
      }
      // Attached but partition-hidden: the node is local, merely cut off.
      // Handing the frame to a forwarder would route around the partition.
      return;
    }
    // Destination not on this medium: offer the frame to each forwarder that
    // shares the sender's partition (a gateway decides whether it owns the
    // route).
    for (Station* forwarder : forwarders_) {
      if (PartitionGroupOf(forwarder->Address()) == group) {
        DeliverCopy(forwarder, frame);
      }
    }
  }

  bool HasListeners() const { return !listeners_.empty(); }
  size_t station_count() const { return stations_.size(); }
  const std::vector<NodeId>& attach_order() const { return attach_order_; }
  Rng& fault_rng() { return fault_rng_; }
  const MediumFaults& faults() const { return faults_; }

  // --- Accounting helpers shared by the concrete media ---
  // Each updates the legacy MediumStats and, when attached, the registry;
  // concrete media call these instead of poking stats_ fields directly.
  void NoteFrameSent(const Frame& frame) {
    ++stats_.frames_sent;
    stats_.bytes_sent += frame.WireBytes();
    if (obs_frames_sent_ != nullptr) {
      obs_frames_sent_->Add(1);
      obs_bytes_sent_->Add(frame.WireBytes());
    }
    // Ack frames carry no causal stamp (the ack stage is observed by the
    // transport, which still knows the acked packet's flags).
    if (lifecycle_ != nullptr && frame.causal.valid() && frame.type != FrameType::kAck) {
      lifecycle_->Observe(frame.causal, LifecycleStage::kOnWire, frame.src);
    }
  }
  void NoteQueueDelay(double delay_ms) {
    stats_.queue_delay_ms.Add(delay_ms);
    if (obs_queue_delay_ != nullptr) {
      obs_queue_delay_->Observe(delay_ms);
    }
  }
  void NoteCollision() {
    ++stats_.collisions;
    if (obs_collisions_ != nullptr) {
      obs_collisions_->Add(1);
    }
  }
  void NoteVetoed(const Frame& frame) {
    ++stats_.frames_vetoed;
    if (obs_frames_vetoed_ != nullptr) {
      obs_frames_vetoed_->Add(1);
    }
    if (tracer_ != nullptr) {
      tracer_->Instant("net.veto", "net", obs_track::kNet,
                       {{"type", FrameTypeName(frame.type)}});
    }
  }
  // Marks the shared channel busy/idle, keeping the utilization gauge fresh.
  void NoteChannelBusy(bool busy) {
    stats_.channel.SetBusy(sim_->Now(), busy);
    if (obs_utilization_ != nullptr) {
      obs_utilization_->Set(stats_.channel.Utilization());
    }
  }
  // One complete span per on-wire transmission, [start, now].
  void TraceTransmission(SimTime start, FrameType type, size_t wire_bytes) {
    if (tracer_ != nullptr) {
      tracer_->Complete(start, "net.transmit", "net", obs_track::kNet,
                        {{"type", FrameTypeName(type)},
                         {"bytes", std::to_string(wire_bytes)}});
    }
  }
  void TraceTransmission(SimTime start, const Frame& frame) {
    TraceTransmission(start, frame.type, frame.WireBytes());
  }

 private:
  void DeliverCopy(Station* station, const Frame& frame) {
    Frame copy = frame;
    if (faults_.receiver_error_rate > 0.0 &&
        fault_rng_.NextBernoulli(faults_.receiver_error_rate)) {
      copy.corrupted = true;
      ++stats_.frames_corrupted;
      if (obs_frames_corrupted_ != nullptr) {
        obs_frames_corrupted_->Add(1);
      }
    }
    ++stats_.frames_delivered;
    if (obs_frames_delivered_ != nullptr) {
      obs_frames_delivered_->Add(1);
    }
    station->OnFrame(copy);
  }

  struct ListenerEntry {
    PromiscuousListener* listener;
    NodeId home;
  };

  Simulator* sim_;
  MediumTimings timings_;
  MediumFaults faults_;
  Rng fault_rng_;
  std::unordered_map<NodeId, Station*> stations_;
  std::vector<NodeId> attach_order_;
  std::vector<ListenerEntry> listeners_;
  std::vector<Station*> forwarders_;
  std::unordered_map<NodeId, int> partitions_;

  // Observability handles (null = detached).
  Tracer* tracer_ = nullptr;
  LifecycleTracker* lifecycle_ = nullptr;
  Counter* obs_frames_sent_ = nullptr;
  Counter* obs_bytes_sent_ = nullptr;
  Counter* obs_frames_delivered_ = nullptr;
  Counter* obs_frames_vetoed_ = nullptr;
  Counter* obs_frames_corrupted_ = nullptr;
  Counter* obs_collisions_ = nullptr;
  Histogram* obs_queue_delay_ = nullptr;
  Gauge* obs_utilization_ = nullptr;

 protected:
  MediumStats stats_;
};

}  // namespace publishing

#endif  // SRC_NET_MEDIUM_H_
