// Deterministic discrete-event simulator.
//
// Everything in the reproduction — network media, transport retransmission
// timers, watchdog timeouts, disk service times, user-program execution —
// runs as events on one of these.  Events scheduled for the same instant fire
// in scheduling order (a stable sequence number breaks ties), which makes
// whole-system runs bit-for-bit reproducible; the crash/recovery equivalence
// tests depend on that.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/obs/observability.h"
#include "src/sim/time.h"

namespace publishing {

// Token for cancelling a scheduled event.
struct EventId {
  uint64_t value = 0;

  bool IsValid() const { return value != 0; }

  friend bool operator==(const EventId&, const EventId&) = default;
};

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Resolves the event-loop instruments (counts + queue-depth gauge).  The
  // default null Observability detaches them; instrumentation then costs a
  // null check per event.
  void SetObservability(const Observability& obs) {
    if (obs.metrics != nullptr) {
      events_scheduled_ = obs.metrics->GetCounter("sim.events_scheduled");
      events_fired_ = obs.metrics->GetCounter("sim.events_fired");
      events_cancelled_ = obs.metrics->GetCounter("sim.events_cancelled");
      queue_depth_ = obs.metrics->GetGauge("sim.queue_depth");
    } else {
      events_scheduled_ = nullptr;
      events_fired_ = nullptr;
      events_cancelled_ = nullptr;
      queue_depth_ = nullptr;
    }
  }

  // Schedules `action` to run at absolute time `when` (>= Now()).
  EventId ScheduleAt(SimTime when, Action action) {
    assert(when >= now_ && "cannot schedule into the past");
    EventId id{++next_id_};
    queue_.push(Event{when, id.value, std::move(action)});
    ++pending_;
    if (events_scheduled_ != nullptr) {
      events_scheduled_->Add(1);
      queue_depth_->Set(static_cast<double>(pending_));
    }
    return id;
  }

  // Schedules `action` to run `delay` from now.
  EventId ScheduleAfter(SimDuration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  // Cancels a pending event.  Returns false if the event already ran or was
  // already cancelled.  (Lazy cancellation: the entry stays queued but is
  // skipped when popped.)
  bool Cancel(EventId id) {
    if (!id.IsValid() || id.value > next_id_) {
      return false;
    }
    if (cancelled_.size() <= id.value) {
      cancelled_.resize(next_id_ + 1, false);
    }
    if (fired_.size() <= id.value) {
      fired_.resize(next_id_ + 1, false);
    }
    if (cancelled_[id.value] || fired_[id.value]) {
      return false;
    }
    cancelled_[id.value] = true;
    --pending_;
    if (events_cancelled_ != nullptr) {
      events_cancelled_->Add(1);
      queue_depth_->Set(static_cast<double>(pending_));
    }
    return true;
  }

  // Runs the single next event.  Returns false if the queue is empty.
  bool Step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (IsCancelled(ev.id)) {
        continue;
      }
      MarkFired(ev.id);
      --pending_;
      assert(ev.when >= now_);
      now_ = ev.when;
      if (events_fired_ != nullptr) {
        events_fired_->Add(1);
        queue_depth_->Set(static_cast<double>(pending_));
      }
      ev.action();
      return true;
    }
    return false;
  }

  // Runs events until the queue drains.
  void Run() {
    while (Step()) {
    }
  }

  // Runs events with firing time <= `deadline`, then advances the clock to
  // `deadline` (even if the queue drained earlier).
  void RunUntil(SimTime deadline) {
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (IsCancelled(top.id)) {
        queue_.pop();
        continue;
      }
      if (top.when > deadline) {
        break;
      }
      Step();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
  }

  void RunFor(SimDuration span) { RunUntil(now_ + span); }

  size_t pending_events() const { return pending_; }

 private:
  struct Event {
    SimTime when;
    uint64_t id;
    Action action;

    // std::priority_queue is a max-heap; invert so the earliest time (and,
    // within a time, the lowest id, i.e. FIFO) comes out first.
    bool operator<(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return id > other.id;
    }
  };

  bool IsCancelled(uint64_t id) const { return id < cancelled_.size() && cancelled_[id]; }
  void MarkFired(uint64_t id) {
    if (fired_.size() <= id) {
      fired_.resize(id + 1, false);
    }
    fired_[id] = true;
  }

  SimTime now_ = 0;
  uint64_t next_id_ = 0;
  size_t pending_ = 0;
  std::priority_queue<Event> queue_;
  std::vector<bool> cancelled_;
  std::vector<bool> fired_;

  // Observability handles (null = detached).  All four are resolved together,
  // so checking one suffices on each path.
  Counter* events_scheduled_ = nullptr;
  Counter* events_fired_ = nullptr;
  Counter* events_cancelled_ = nullptr;
  Gauge* queue_depth_ = nullptr;
};

// Re-arms itself every `period` until stopped.  Used for watchdog "are you
// alive" probes (§4.6) and keep-alive traffic (§3.3.2).
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, SimDuration period, std::function<void()> body)
      : sim_(sim), period_(period), body_(std::move(body)) {}

  ~PeriodicTask() { Stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start() {
    if (!running_) {
      running_ = true;
      Arm();
    }
  }

  void Stop() {
    if (running_) {
      running_ = false;
      sim_->Cancel(pending_);
      pending_ = EventId{};
    }
  }

  bool running() const { return running_; }

 private:
  void Arm() {
    pending_ = sim_->ScheduleAfter(period_, [this] {
      if (!running_) {
        return;
      }
      body_();
      if (running_) {
        Arm();
      }
    });
  }

  Simulator* sim_;
  SimDuration period_;
  std::function<void()> body_;
  bool running_ = false;
  EventId pending_;
};

}  // namespace publishing

#endif  // SRC_SIM_SIMULATOR_H_
