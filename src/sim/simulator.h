// Deterministic discrete-event simulator.
//
// Everything in the reproduction — network media, transport retransmission
// timers, watchdog timeouts, disk service times, user-program execution —
// runs as events on one of these.  Events scheduled for the same instant fire
// in scheduling order (a stable sequence number breaks ties), which makes
// whole-system runs bit-for-bit reproducible; the crash/recovery equivalence
// tests depend on that.
//
// Engine layout: pending events live in a slab of pooled nodes (callback
// stored inline via SimCallback's small-buffer optimization) indexed by an
// intrusive binary heap.  Pops move the callback out of the node instead of
// copying a queue entry, cancellation is eager (O(log n) heap removal keyed
// by a generation-stamped handle, so a stale handle can never cancel a
// recycled slot), and freed nodes return to a free list.  Memory is therefore
// bounded by the peak number of *pending* events, not by the total number
// ever scheduled.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/obs/observability.h"
#include "src/sim/callback.h"
#include "src/sim/time.h"

namespace publishing {

// Token for cancelling a scheduled event.  Packs slab slot + slot generation;
// the generation makes handles single-use: once the event fires or is
// cancelled the slot's generation advances and the old handle goes stale.
struct EventId {
  uint64_t value = 0;

  bool IsValid() const { return value != 0; }

  friend bool operator==(const EventId&, const EventId&) = default;
};

class Simulator {
 public:
  using Action = SimCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Resolves the event-loop instruments (counts + queue-depth gauge).  The
  // default null Observability detaches them; instrumentation then costs a
  // null check per event.
  void SetObservability(const Observability& obs) {
    if (obs.metrics != nullptr) {
      events_scheduled_ = obs.metrics->GetCounter("sim.events_scheduled");
      events_fired_ = obs.metrics->GetCounter("sim.events_fired");
      events_cancelled_ = obs.metrics->GetCounter("sim.events_cancelled");
      queue_depth_ = obs.metrics->GetGauge("sim.queue_depth");
    } else {
      events_scheduled_ = nullptr;
      events_fired_ = nullptr;
      events_cancelled_ = nullptr;
      queue_depth_ = nullptr;
    }
  }

  // Schedules `action` to run at absolute time `when` (>= Now()).
  EventId ScheduleAt(SimTime when, Action action) {
    assert(when >= now_ && "cannot schedule into the past");
    const uint32_t slot = AcquireSlot();
    EventNode& node = slab_[slot];
    node.when = when;
    node.seq = ++next_seq_;
    node.action = std::move(action);
    node.heap_pos = static_cast<uint32_t>(heap_.size());
    heap_.push_back(slot);
    SiftUp(node.heap_pos);
    if (events_scheduled_ != nullptr) {
      events_scheduled_->Add(1);
      queue_depth_->Set(static_cast<double>(heap_.size()));
    }
    return EventId{MakeHandle(slot, node.generation)};
  }

  // Schedules `action` to run `delay` from now.
  EventId ScheduleAfter(SimDuration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  // Cancels a pending event: removes it from the heap immediately and
  // recycles its slot.  Returns false if the handle is stale (the event
  // already ran or was already cancelled) or never existed.
  bool Cancel(EventId id) {
    if (!id.IsValid()) {
      return false;
    }
    const uint32_t slot = HandleSlot(id.value);
    if (slot >= slab_.size()) {
      return false;
    }
    EventNode& node = slab_[slot];
    if (node.heap_pos == kNpos || node.generation != HandleGeneration(id.value)) {
      return false;
    }
    RemoveFromHeap(node.heap_pos);
    node.action = Action();
    ReleaseSlot(slot);
    if (events_cancelled_ != nullptr) {
      events_cancelled_->Add(1);
      queue_depth_->Set(static_cast<double>(heap_.size()));
    }
    return true;
  }

  // Runs the single next event.  Returns false if the queue is empty.
  bool Step() {
    if (heap_.empty()) {
      return false;
    }
    const uint32_t slot = heap_.front();
    EventNode& node = slab_[slot];
    assert(node.when >= now_);
    now_ = node.when;
    // Move the callback out and retire the slot before invoking: the action
    // may schedule (growing the slab), cancel, or re-enter the simulator, and
    // a handle to this event must already read as fired.
    Action action = std::move(node.action);
    RemoveFromHeap(0);
    ReleaseSlot(slot);
    if (events_fired_ != nullptr) {
      events_fired_->Add(1);
      queue_depth_->Set(static_cast<double>(heap_.size()));
    }
    action();
    return true;
  }

  // Runs events until the queue drains.
  void Run() {
    while (Step()) {
    }
  }

  // Runs events with firing time <= `deadline`, then advances the clock to
  // `deadline` (even if the queue drained earlier).
  void RunUntil(SimTime deadline) {
    while (!heap_.empty() && slab_[heap_.front()].when <= deadline) {
      Step();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
  }

  void RunFor(SimDuration span) { RunUntil(now_ + span); }

  size_t pending_events() const { return heap_.size(); }

  // Number of slab nodes ever materialized.  Bounded by the peak number of
  // simultaneously pending events (regression test pins this: scheduling and
  // retiring 10M events must not grow it past the peak).
  size_t slab_slots() const { return slab_.size(); }

 private:
  static constexpr uint32_t kNpos = UINT32_MAX;

  struct EventNode {
    SimTime when = 0;
    uint64_t seq = 0;        // schedule order; breaks same-instant ties (FIFO)
    uint32_t generation = 0; // bumped on release; staleness check for handles
    uint32_t heap_pos = kNpos;
    uint32_t next_free = kNpos;
    Action action;
  };

  static uint64_t MakeHandle(uint32_t slot, uint32_t generation) {
    // +1 keeps value != 0 so EventId::IsValid stays "nonzero".
    return (uint64_t{generation} << 32) | (uint64_t{slot} + 1);
  }
  static uint32_t HandleSlot(uint64_t value) {
    return static_cast<uint32_t>((value & 0xFFFFFFFFu) - 1);
  }
  static uint32_t HandleGeneration(uint64_t value) { return static_cast<uint32_t>(value >> 32); }

  uint32_t AcquireSlot() {
    if (free_head_ != kNpos) {
      const uint32_t slot = free_head_;
      free_head_ = slab_[slot].next_free;
      slab_[slot].next_free = kNpos;
      return slot;
    }
    slab_.emplace_back();
    return static_cast<uint32_t>(slab_.size() - 1);
  }

  void ReleaseSlot(uint32_t slot) {
    EventNode& node = slab_[slot];
    node.heap_pos = kNpos;
    ++node.generation;
    node.next_free = free_head_;
    free_head_ = slot;
  }

  // True if the event in slot `a` fires before the one in slot `b`.
  bool Before(uint32_t a, uint32_t b) const {
    const EventNode& na = slab_[a];
    const EventNode& nb = slab_[b];
    if (na.when != nb.when) {
      return na.when < nb.when;
    }
    return na.seq < nb.seq;
  }

  void SiftUp(uint32_t pos) {
    while (pos > 0) {
      const uint32_t parent = (pos - 1) / 2;
      if (!Before(heap_[pos], heap_[parent])) {
        break;
      }
      SwapHeap(pos, parent);
      pos = parent;
    }
  }

  void SiftDown(uint32_t pos) {
    const uint32_t n = static_cast<uint32_t>(heap_.size());
    for (;;) {
      uint32_t best = pos;
      const uint32_t left = 2 * pos + 1;
      const uint32_t right = left + 1;
      if (left < n && Before(heap_[left], heap_[best])) {
        best = left;
      }
      if (right < n && Before(heap_[right], heap_[best])) {
        best = right;
      }
      if (best == pos) {
        break;
      }
      SwapHeap(pos, best);
      pos = best;
    }
  }

  void SwapHeap(uint32_t a, uint32_t b) {
    std::swap(heap_[a], heap_[b]);
    slab_[heap_[a]].heap_pos = a;
    slab_[heap_[b]].heap_pos = b;
  }

  // Removes the entry at heap position `pos`, restoring the heap property.
  void RemoveFromHeap(uint32_t pos) {
    const uint32_t last = static_cast<uint32_t>(heap_.size() - 1);
    if (pos != last) {
      SwapHeap(pos, last);
      heap_.pop_back();
      SiftDown(pos);
      SiftUp(pos);
    } else {
      heap_.pop_back();
    }
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::vector<EventNode> slab_;
  std::vector<uint32_t> heap_;  // slab indices ordered by (when, seq)
  uint32_t free_head_ = kNpos;

  // Observability handles (null = detached).  All four are resolved together,
  // so checking one suffices on each path.
  Counter* events_scheduled_ = nullptr;
  Counter* events_fired_ = nullptr;
  Counter* events_cancelled_ = nullptr;
  Gauge* queue_depth_ = nullptr;
};

// Re-arms itself every `period` until stopped.  Used for watchdog "are you
// alive" probes (§4.6) and keep-alive traffic (§3.3.2).
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, SimDuration period, std::function<void()> body)
      : sim_(sim), period_(period), body_(std::move(body)) {}

  ~PeriodicTask() { Stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start() {
    if (!running_) {
      running_ = true;
      Arm();
    }
  }

  void Stop() {
    if (running_) {
      running_ = false;
      sim_->Cancel(pending_);
      pending_ = EventId{};
    }
  }

  bool running() const { return running_; }

 private:
  void Arm() {
    pending_ = sim_->ScheduleAfter(period_, [this] {
      pending_ = EventId{};
      if (!running_) {
        return;
      }
      body_();
      // The body may have stopped, or stopped-and-restarted, this task; only
      // re-arm if it did not already arm a fresh timer itself.
      if (running_ && !pending_.IsValid()) {
        Arm();
      }
    });
  }

  Simulator* sim_;
  SimDuration period_;
  std::function<void()> body_;
  bool running_ = false;
  EventId pending_;
};

}  // namespace publishing

#endif  // SRC_SIM_SIMULATOR_H_
