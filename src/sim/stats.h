// Statistics helpers for the performance studies (Chapter 5).

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/sim/time.h"

namespace publishing {

// Accumulates scalar samples: count / mean / min / max, exact variance
// (Welford), and approximate percentiles from a bounded reservoir.  The
// reservoir holds the first kReservoirCap samples exactly; past that it
// switches to deterministic reservoir sampling (Vitter's algorithm R with a
// fixed-seed LCG), so percentiles stay unbiased, memory stays bounded, and
// repeated runs reproduce bit-identically.
class StatAccumulator {
 public:
  static constexpr size_t kReservoirCap = 4096;

  void Add(double sample) {
    ++count_;
    sum_ += sample;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
    const double delta = sample - welford_mean_;
    welford_mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - welford_mean_);
    if (reservoir_.size() < kReservoirCap) {
      reservoir_.push_back(sample);
    } else {
      // Replace a random slot with probability cap/count.
      lcg_ = lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
      const uint64_t slot = (lcg_ >> 33) % count_;
      if (slot < kReservoirCap) {
        reservoir_[static_cast<size_t>(slot)] = sample;
      }
    }
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Population variance / standard deviation of all samples seen (exact,
  // not reservoir-based).
  double variance() const { return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_); }
  double stddev() const { return std::sqrt(variance()); }

  // The p-th percentile (p in [0, 100]) by nearest-rank over the reservoir.
  // Exact while count() <= kReservoirCap, an unbiased estimate after.
  double Percentile(double p) const {
    if (reservoir_.empty()) {
      return 0.0;
    }
    std::vector<double> sorted = reservoir_;
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    size_t rank = static_cast<size_t>(clamped / 100.0 * static_cast<double>(sorted.size()));
    rank = std::min(rank, sorted.size() - 1);
    return sorted[rank];
  }
  double p50() const { return Percentile(50.0); }
  double p99() const { return Percentile(99.0); }

  void Reset() { *this = StatAccumulator(); }

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double welford_mean_ = 0.0;
  double m2_ = 0.0;
  uint64_t lcg_ = 0x9e3779b97f4a7c15ULL;  // Fixed seed: deterministic runs.
  std::vector<double> reservoir_;
};

// Tracks the fraction of virtual time a resource spends busy — the
// "% utilization" metric of Figure 5.5.  Call SetBusy(...) on every state
// change and Finish(now) before reading.
class UtilizationTracker {
 public:
  explicit UtilizationTracker(SimTime start = 0) : last_change_(start) {}

  void SetBusy(SimTime now, bool busy) {
    Account(now);
    busy_ = busy;
  }

  void Finish(SimTime now) { Account(now); }

  // Busy fraction over [start, last Finish/SetBusy], in [0, 1].
  double Utilization() const {
    SimDuration total = busy_time_ + idle_time_;
    if (total == 0) {
      return 0.0;
    }
    return static_cast<double>(busy_time_) / static_cast<double>(total);
  }

  SimDuration busy_time() const { return busy_time_; }

 private:
  void Account(SimTime now) {
    SimDuration span = now - last_change_;
    if (busy_) {
      busy_time_ += span;
    } else {
      idle_time_ += span;
    }
    last_change_ = now;
  }

  SimTime last_change_;
  SimDuration busy_time_ = 0;
  SimDuration idle_time_ = 0;
  bool busy_ = false;
};

}  // namespace publishing

#endif  // SRC_SIM_STATS_H_
