// Statistics helpers for the performance studies (Chapter 5).

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "src/sim/time.h"

namespace publishing {

// Accumulates scalar samples: count / mean / min / max.
class StatAccumulator {
 public:
  void Add(double sample) {
    ++count_;
    sum_ += sample;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  void Reset() { *this = StatAccumulator(); }

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Tracks the fraction of virtual time a resource spends busy — the
// "% utilization" metric of Figure 5.5.  Call SetBusy(...) on every state
// change and Finish(now) before reading.
class UtilizationTracker {
 public:
  explicit UtilizationTracker(SimTime start = 0) : last_change_(start) {}

  void SetBusy(SimTime now, bool busy) {
    Account(now);
    busy_ = busy;
  }

  void Finish(SimTime now) { Account(now); }

  // Busy fraction over [start, last Finish/SetBusy], in [0, 1].
  double Utilization() const {
    SimDuration total = busy_time_ + idle_time_;
    if (total == 0) {
      return 0.0;
    }
    return static_cast<double>(busy_time_) / static_cast<double>(total);
  }

  SimDuration busy_time() const { return busy_time_; }

 private:
  void Account(SimTime now) {
    SimDuration span = now - last_change_;
    if (busy_) {
      busy_time_ += span;
    } else {
      idle_time_ += span;
    }
    last_change_ = now;
  }

  SimTime last_change_;
  SimDuration busy_time_ = 0;
  SimDuration idle_time_ = 0;
  bool busy_ = false;
};

}  // namespace publishing

#endif  // SRC_SIM_STATS_H_
