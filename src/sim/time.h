// Virtual time for the discrete-event simulation.
//
// All latencies in the paper are reported in milliseconds with sub-ms
// components (0.8 ms packet service, 1.6 ms interpacket delay, 0.01 ms/byte
// replay cost), so we keep time in integer nanoseconds: fine enough for every
// parameter in Figure 5.2 while staying exactly representable/deterministic.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace publishing {

// Nanoseconds since simulation start.
using SimTime = int64_t;
// A span of virtual time, also in nanoseconds.
using SimDuration = int64_t;

constexpr SimDuration Nanos(int64_t n) { return n; }
constexpr SimDuration Micros(int64_t n) { return n * 1000; }
constexpr SimDuration Millis(int64_t n) { return n * 1000 * 1000; }
constexpr SimDuration Seconds(int64_t n) { return n * 1000 * 1000 * 1000; }

// Fractional helpers for values derived from rates (e.g. bytes / bandwidth).
constexpr SimDuration MillisF(double ms) { return static_cast<SimDuration>(ms * 1e6); }
constexpr SimDuration SecondsF(double s) { return static_cast<SimDuration>(s * 1e9); }

constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e9; }

}  // namespace publishing

#endif  // SRC_SIM_TIME_H_
