// Small-buffer-optimized move-only callable for simulator events.
//
// Nearly every event in the system is a capture-light lambda (a couple of
// pointers plus a frame/packet handle).  std::function heap-allocates many of
// those and drags in copyability requirements; SimCallback stores anything up
// to kInlineSize bytes inline in the event slab node and only falls back to
// the heap for oversized or throwing-move captures.

#ifndef SRC_SIM_CALLBACK_H_
#define SRC_SIM_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace publishing {

class SimCallback {
 public:
  // Enough for half a dozen pointers or a shared Buffer plus ids; measured
  // against the transport/medium lambdas, which are the hot ones.
  static constexpr size_t kInlineSize = 48;

  SimCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SimCallback> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SimCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (kFitsInline<Fn>) {
      ::new (storage_) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SimCallback(SimCallback&& other) noexcept { MoveFrom(std::move(other)); }

  SimCallback& operator=(SimCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  SimCallback(const SimCallback&) = delete;
  SimCallback& operator=(const SimCallback&) = delete;

  ~SimCallback() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  // True if the wrapped callable lives in the inline buffer (no heap
  // allocation).  Exposed so tests can pin the SBO guarantee.
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    // Move-constructs the callable from src storage into dst storage and
    // destroys the source.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* obj) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool kFitsInline = sizeof(Fn) <= kInlineSize &&
                                      alignof(Fn) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* obj) { (*std::launder(reinterpret_cast<Fn*>(obj)))(); },
      [](void* src, void* dst) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* obj) noexcept { std::launder(reinterpret_cast<Fn*>(obj))->~Fn(); },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* obj) { (**reinterpret_cast<Fn**>(obj))(); },
      [](void* src, void* dst) noexcept {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](void* obj) noexcept { delete *reinterpret_cast<Fn**>(obj); },
      /*inline_storage=*/false,
  };

  void MoveFrom(SimCallback&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace publishing

#endif  // SRC_SIM_CALLBACK_H_
