#include "src/internet/segment_map.h"

#include <deque>

namespace publishing {

size_t SegmentMap::AddSegment(NodeId recorder_node) {
  const size_t segment = recorder_nodes_.size();
  recorder_nodes_.push_back(recorder_node);
  homes_[recorder_node] = static_cast<int32_t>(segment);
  RecomputeRoutes();
  return segment;
}

void SegmentMap::AssignNode(NodeId node, size_t segment) {
  homes_[node] = static_cast<int32_t>(segment);
}

size_t SegmentMap::AddGateway(NodeId node, std::vector<size_t> segments) {
  const size_t gateway = gateways_.size();
  gateways_.push_back(GatewayEntry{node, std::move(segments), true});
  RecomputeRoutes();
  return gateway;
}

void SegmentMap::SetGatewayUp(size_t gateway, bool up) {
  if (gateways_[gateway].up == up) {
    return;
  }
  gateways_[gateway].up = up;
  RecomputeRoutes();
}

int32_t SegmentMap::SegmentOf(NodeId node) const {
  auto it = homes_.find(node);
  return it == homes_.end() ? -1 : it->second;
}

std::optional<SegmentMap::Hop> SegmentMap::Route(size_t from, size_t to) const {
  if (from == to || from >= segment_count() || to >= segment_count()) {
    return std::nullopt;
  }
  const size_t index = from * segment_count() + to;
  if (!reachable_[index]) {
    return std::nullopt;
  }
  return routes_[index];
}

void SegmentMap::RecomputeRoutes() {
  const size_t n = segment_count();
  routes_.assign(n * n, Hop{});
  reachable_.assign(n * n, false);
  // BFS per source segment.  Neighbors expand in gateway-index order, so the
  // first (shortest) path found ties toward the lowest gateway index —
  // deterministic, and exactly one gateway owns any (from, to) flow.
  for (size_t src = 0; src < n; ++src) {
    std::vector<bool> visited(n, false);
    visited[src] = true;
    std::deque<size_t> frontier{src};
    // First hop taken from src on the path to each segment.
    std::vector<Hop> first_hop(n);
    while (!frontier.empty()) {
      const size_t seg = frontier.front();
      frontier.pop_front();
      for (size_t g = 0; g < gateways_.size(); ++g) {
        const GatewayEntry& gw = gateways_[g];
        if (!gw.up) {
          continue;
        }
        bool attached = false;
        for (size_t s : gw.segments) {
          if (s == seg) {
            attached = true;
            break;
          }
        }
        if (!attached) {
          continue;
        }
        for (size_t next : gw.segments) {
          if (next == seg || next >= n || visited[next]) {
            continue;
          }
          visited[next] = true;
          first_hop[next] = seg == src ? Hop{g, next} : first_hop[seg];
          routes_[src * n + next] = first_hop[next];
          reachable_[src * n + next] = true;
          frontier.push_back(next);
        }
      }
    }
  }
}

}  // namespace publishing
