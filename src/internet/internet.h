// Internet: a multi-segment DEMOS/MP internetwork (DESIGN.md §13).
//
// Composes S media segments — each with its own recorder, stable storage,
// and recovery manager — bridged by store-and-forward gateways, under one
// shared simulator, name service, and program registry.  Publish
// responsibility is partitioned by home segment (SegmentMap): a segment's
// recorder records the send watermarks of its own nodes and publishes every
// message addressed to them, so a process's complete database entry always
// lives with its home recorder, and recovery replays from exactly that
// recorder's storage.  A DEMOS link crosses segments transparently: the
// sending kernel routes by destination node as always, the home segments'
// gateways carry the frame hop by hop, and the destination segment's
// recorder gates the final delivery.
//
// Node numbering: segment k's recorder is node k*1000, its processing nodes
// are k*1000+1 .. k*1000+n; gateway nodes live at 900000+i and belong to no
// segment.
//
// Typical use:
//
//   InternetConfig config;
//   config.segments = 4;
//   config.nodes_per_segment = 2;
//   Internet net(config);
//   net.registry().Register("worker", ...);
//   auto a = net.Spawn(Internet::ProcessingNode(0, 0), "worker");
//   auto b = net.Spawn(Internet::ProcessingNode(2, 1), "worker");  // 2 hops away
//   net.RunFor(Seconds(1));

#ifndef SRC_INTERNET_INTERNET_H_
#define SRC_INTERNET_INTERNET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/recorder.h"
#include "src/core/recovery_manager.h"
#include "src/demos/cluster.h"
#include "src/internet/gateway.h"
#include "src/internet/segment_map.h"

namespace publishing {

struct InternetConfig {
  // Topology: `segments` media segments of `nodes_per_segment` processing
  // nodes each, chained by gateways (segment i <-> i+1) with a closing
  // ring gateway (last <-> first) unless ring_topology is false.  The ring
  // gives every pair of segments two disjoint gateway paths, so a single
  // gateway fault never partitions the internetwork.
  size_t segments = 2;
  size_t nodes_per_segment = 2;
  bool ring_topology = true;

  // Per-segment medium construction (same knobs as ClusterConfig).
  MediumKind medium = MediumKind::kAcknowledgingEthernet;
  MediumTimings timings;
  MediumFaults faults;
  EthernetOptions ethernet;
  TokenRingOptions token_ring;
  uint64_t seed = 1;

  KernelOptions kernel;              // Template; recorder_node set per segment.
  RecorderOptions recorder;          // Template; node/responsible_for set per segment.
  RecoveryManagerOptions recovery;   // Template, one manager per segment.
  GatewayOptions gateway;
  bool start_recovery_managers = true;
};

class Internet {
 public:
  // Node-numbering scheme.  nodes_per_segment must stay below
  // kSegmentStride - 1; gateway ids below 100000.
  static constexpr uint32_t kSegmentStride = 1000;
  static NodeId SegmentRecorderNode(size_t segment) {
    return NodeId{static_cast<uint32_t>(segment) * kSegmentStride};
  }
  static NodeId ProcessingNode(size_t segment, size_t index) {
    return NodeId{static_cast<uint32_t>(segment) * kSegmentStride + 1 +
                  static_cast<uint32_t>(index)};
  }
  static NodeId GatewayNode(size_t gateway) {
    return NodeId{900000u + static_cast<uint32_t>(gateway)};
  }

  explicit Internet(InternetConfig config);
  ~Internet();

  Internet(const Internet&) = delete;
  Internet& operator=(const Internet&) = delete;

  Simulator& sim() { return sim_; }
  NameService& names() { return names_; }
  ProgramRegistry& registry() { return registry_; }
  SegmentMap& map() { return map_; }

  size_t segment_count() const { return segments_.size(); }
  size_t gateway_count() const { return gateways_.size(); }
  Medium& medium(size_t segment) { return *segments_[segment]->medium; }
  Recorder& recorder(size_t segment) { return *segments_[segment]->recorder; }
  StableStorage& storage(size_t segment) { return segments_[segment]->storage; }
  RecoveryManager& recovery(size_t segment) { return *segments_[segment]->recovery; }
  Gateway& gateway(size_t index) { return *gateways_[index]; }

  // Kernel lookup across every segment; null for unknown/recorder/gateway ids.
  NodeKernel* kernel(NodeId node);
  // Home segment of `node`, -1 for gateways/unknown.
  int32_t SegmentOfNode(NodeId node) const { return map_.SegmentOf(node); }

  // Direct spawn on any processing node of any segment.
  Result<ProcessId> Spawn(NodeId node, const std::string& program,
                          std::vector<Link> initial_links = {},
                          bool recoverable = true);

  // --- Fault injection ---
  Status CrashProcess(const ProcessId& pid);
  Status CrashNode(NodeId node);
  void CrashRecorder(size_t segment);
  void RestartRecorder(size_t segment);
  // Supervisor-level gateway fault/repair: marks the gateway down (its
  // queues drop) AND recomputes the SegmentMap routes around it.  For the
  // harsher fault where the supervisor has not noticed yet, drive
  // gateway(i).SetDown() and map().SetGatewayUp() separately.
  void SetGatewayUp(size_t index, bool up);

  // --- Run control ---
  void RunFor(SimDuration span) { sim_.RunFor(span); }
  // Runs until `pid` finishes recovering on whichever segment owns it.
  bool RunUntilRecovered(const ProcessId& pid, SimDuration deadline);

  // Fans observability out to every layer: the simulator, each segment's
  // medium ("seg<k>"), recorder, storage, kernels, and recovery manager,
  // plus each gateway ("gw<i>").  Installs the SegmentMap's partition
  // function into the oracle for the cross-segment monitors.  Pass a
  // default-constructed value to detach.
  void EnableObservability(const Observability& obs);
  const Observability& observability() const { return obs_; }

 private:
  // The per-segment NodeDirectory handed to that segment's recovery
  // manager: global time and names, but only this segment's kernels.
  class SegmentDirectory : public NodeDirectory {
   public:
    SegmentDirectory(Simulator* sim, NameService* names) : sim_(sim), names_(names) {}
    Simulator& sim() override { return *sim_; }
    NameService& names() override { return *names_; }
    std::vector<NodeId> node_ids() const override {
      std::vector<NodeId> out;
      out.reserve(kernels_.size());
      for (NodeKernel* k : kernels_) {
        out.push_back(k->node());
      }
      return out;
    }
    NodeKernel* kernel(NodeId node) override {
      for (NodeKernel* k : kernels_) {
        if (k->node() == node) {
          return k;
        }
      }
      return nullptr;
    }
    void AddKernel(NodeKernel* kernel) { kernels_.push_back(kernel); }

   private:
    Simulator* sim_;
    NameService* names_;
    std::vector<NodeKernel*> kernels_;
  };

  struct Segment {
    NodeId recorder_node;
    std::unique_ptr<Medium> medium;
    StableStorage storage;
    std::unique_ptr<Recorder> recorder;
    std::vector<std::unique_ptr<NodeKernel>> kernels;
    std::unique_ptr<SegmentDirectory> directory;
    std::unique_ptr<RecoveryManager> recovery;
  };

  std::unique_ptr<Medium> MakeMedium();

  InternetConfig config_;
  Simulator sim_;
  NameService names_;
  ProgramRegistry registry_;
  SegmentMap map_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<Gateway>> gateways_;
  Observability obs_;
  InvariantOracle* obs_oracle_ = nullptr;  // For resolver detach.
  uint64_t log_time_token_ = 0;
};

}  // namespace publishing

#endif  // SRC_INTERNET_INTERNET_H_
