#include "src/internet/gateway.h"

#include "src/obs/lifecycle.h"
#include "src/obs/metrics.h"

namespace publishing {

Gateway::Gateway(Simulator* sim, const SegmentMap* map, size_t index, NodeId node,
                 GatewayOptions options)
    : sim_(sim), map_(map), index_(index), node_(node), options_(options) {}

Gateway::~Gateway() {
  for (auto& egress : egresses_) {
    egress->medium->DetachForwarder(egress->port.get());
  }
}

void Gateway::AttachSegment(size_t segment, Medium* medium) {
  auto egress = std::make_unique<Egress>();
  egress->segment = segment;
  egress->medium = medium;
  egress->port = std::make_unique<Port>();
  egress->port->gateway = this;
  egress->port->segment = segment;
  medium->AttachForwarder(egress->port.get());
  egresses_.push_back(std::move(egress));
}

void Gateway::SetObservability(const Observability& obs, std::string_view label) {
  lifecycle_ = obs.lifecycle;
  if (obs.metrics != nullptr) {
    const MetricLabels labels = {{"gateway", std::string(label)}};
    obs_forwarded_ = obs.metrics->GetCounter("gateway.frames_forwarded", labels);
    obs_bytes_forwarded_ = obs.metrics->GetCounter("gateway.bytes_forwarded", labels);
    obs_dropped_queue_full_ =
        obs.metrics->GetCounter("gateway.dropped_queue_full", labels);
    obs_dropped_down_ = obs.metrics->GetCounter("gateway.dropped_down", labels);
  } else {
    obs_forwarded_ = nullptr;
    obs_bytes_forwarded_ = nullptr;
    obs_dropped_queue_full_ = nullptr;
    obs_dropped_down_ = nullptr;
  }
}

void Gateway::SetDown(bool down) {
  down_ = down;
  if (down_) {
    for (auto& egress : egresses_) {
      stats_.dropped_down += egress->queue.size();
      if (obs_dropped_down_ != nullptr) {
        obs_dropped_down_->Add(egress->queue.size());
      }
      egress->queue.clear();
      egress->queued_bytes = 0;
    }
  }
}

Gateway::Egress* Gateway::FindEgress(size_t segment) {
  for (auto& egress : egresses_) {
    if (egress->segment == segment) {
      return egress.get();
    }
  }
  return nullptr;
}

void Gateway::OnIngress(size_t segment, const Frame& frame) {
  const int32_t dst_segment =
      frame.dst == kBroadcastNode ? -1 : map_->SegmentOf(frame.dst);
  if (dst_segment < 0 || static_cast<size_t>(dst_segment) == segment) {
    // Unknown destination or local traffic a partition hid; not ours.
    return;
  }
  auto hop = map_->Route(segment, static_cast<size_t>(dst_segment));
  if (!hop.has_value()) {
    ++stats_.ignored_unroutable;
    return;
  }
  if (hop->gateway != index_) {
    // The designated next hop is another gateway; staying silent here is
    // what guarantees no frame is forwarded twice.
    ++stats_.ignored_not_owner;
    return;
  }
  if (down_) {
    // The supervisor still routes through us but we are dead: the frame is
    // lost until the map reroutes or we restart (retransmission covers it).
    ++stats_.dropped_down;
    if (obs_dropped_down_ != nullptr) {
      obs_dropped_down_->Add(1);
    }
    return;
  }
  Egress* egress = FindEgress(hop->egress);
  if (egress == nullptr) {
    ++stats_.ignored_unroutable;
    return;
  }
  const size_t wire_bytes = frame.WireBytes();
  if (egress->queue.size() >= options_.max_queue_frames ||
      egress->queued_bytes + wire_bytes > options_.max_queue_bytes) {
    // Bounded store-and-forward: drop and let the end-to-end retransmission
    // back-pressure the sender.
    ++stats_.dropped_queue_full;
    if (obs_dropped_queue_full_ != nullptr) {
      obs_dropped_queue_full_->Add(1);
    }
    return;
  }
  // The frame's payload and gather segments are shared buffers — queueing is
  // a refcount bump, not a copy.
  egress->queue.emplace_back(frame, segment);
  egress->queued_bytes += wire_bytes;
  if (!egress->draining) {
    egress->draining = true;
    for (size_t i = 0; i < egresses_.size(); ++i) {
      if (egresses_[i].get() == egress) {
        sim_->ScheduleAfter(options_.forward_latency, [this, i] { DrainOne(i); });
        break;
      }
    }
  }
}

void Gateway::DrainOne(size_t egress_index) {
  Egress& egress = *egresses_[egress_index];
  if (down_ || egress.queue.empty()) {
    // SetDown already accounted for dropped queue entries.
    egress.draining = false;
    return;
  }
  auto [frame, from_segment] = std::move(egress.queue.front());
  egress.queue.pop_front();
  egress.queued_bytes -= frame.WireBytes();

  ++stats_.frames_forwarded;
  stats_.bytes_forwarded += frame.WireBytes();
  if (obs_forwarded_ != nullptr) {
    obs_forwarded_->Add(1);
    obs_bytes_forwarded_->Add(frame.WireBytes());
  }
  // Ack frames carry no causal stamp; ObserveForwarded's validity guard
  // skips them, matching the medium's kOnWire convention.
  if (lifecycle_ != nullptr && frame.causal.valid() &&
      frame.type != FrameType::kAck) {
    lifecycle_->ObserveForwarded(frame.causal, node_,
                                 static_cast<int32_t>(from_segment),
                                 static_cast<int32_t>(egress.segment));
  }
  egress.medium->Send(std::move(frame));

  if (!egress.queue.empty()) {
    sim_->ScheduleAfter(options_.forward_latency,
                        [this, egress_index] { DrainOne(egress_index); });
  } else {
    egress.draining = false;
  }
}

}  // namespace publishing
