#include "src/internet/internet.h"

#include <string>

#include "src/common/logging.h"
#include "src/obs/oracle.h"

namespace publishing {

std::unique_ptr<Medium> Internet::MakeMedium() {
  // Same factory as Cluster, but each segment draws a distinct seed so the
  // segments' backoff/fault streams are independent (and still deterministic
  // for a fixed config seed).
  const uint64_t seed = config_.seed + segments_.size();
  switch (config_.medium) {
    case MediumKind::kEthernet: {
      EthernetOptions options = config_.ethernet;
      options.acknowledging = false;
      return std::make_unique<Ethernet>(&sim_, config_.timings, config_.faults, seed, options);
    }
    case MediumKind::kAcknowledgingEthernet: {
      EthernetOptions options = config_.ethernet;
      options.acknowledging = true;
      return std::make_unique<Ethernet>(&sim_, config_.timings, config_.faults, seed, options);
    }
    case MediumKind::kStarHub:
      return std::make_unique<StarHub>(&sim_, config_.timings, config_.faults, seed);
    case MediumKind::kTokenRing:
      return std::make_unique<TokenRing>(&sim_, config_.timings, config_.faults, seed,
                                         config_.token_ring);
  }
  return nullptr;
}

Internet::Internet(InternetConfig config) : config_(std::move(config)) {
  // Segments first: each one is a self-contained publishing domain — medium,
  // recorder, storage, kernels, and a recovery manager scoped to the
  // segment's own nodes through its SegmentDirectory.
  for (size_t k = 0; k < config_.segments; ++k) {
    auto segment = std::make_unique<Segment>();
    segment->recorder_node = SegmentRecorderNode(k);
    const size_t id = map_.AddSegment(segment->recorder_node);
    (void)id;
    segment->medium = MakeMedium();

    RecorderOptions recorder_options = config_.recorder;
    recorder_options.node = segment->recorder_node;
    // The home-segment responsibility partition: this recorder records send
    // watermarks for its own nodes and publishes messages addressed to them;
    // transit frames pass through un-vetoed and unrecorded.
    const int32_t home = static_cast<int32_t>(k);
    recorder_options.responsible_for = [this, home](NodeId node) {
      return map_.SegmentOf(node) == home;
    };
    segment->recorder = std::make_unique<Recorder>(&sim_, segment->medium.get(), &names_,
                                                   &segment->storage, recorder_options);

    KernelOptions kernel_options = config_.kernel;
    kernel_options.recorder_node = segment->recorder_node;
    segment->directory = std::make_unique<SegmentDirectory>(&sim_, &names_);
    for (size_t i = 0; i < config_.nodes_per_segment; ++i) {
      const NodeId node = ProcessingNode(k, i);
      map_.AssignNode(node, k);
      segment->kernels.push_back(std::make_unique<NodeKernel>(
          &sim_, segment->medium.get(), node, &registry_, &names_, kernel_options));
      segment->kernels.back()->set_read_order_feed(segment->recorder.get());
      segment->directory->AddKernel(segment->kernels.back().get());
    }

    segment->recovery = std::make_unique<RecoveryManager>(
        segment->directory.get(), segment->recorder.get(), config_.recovery);
    if (config_.start_recovery_managers) {
      segment->recovery->Start();
    }
    segments_.push_back(std::move(segment));
  }

  // Gateways: a chain i <-> i+1, closed into a ring when requested.  Two
  // segments with ring topology get two parallel gateways; the map's
  // lowest-index tie-break makes gateway 0 the owner of both directions
  // until it goes down.
  auto add_gateway = [this](size_t a, size_t b) {
    const size_t index = gateways_.size();
    const NodeId node = GatewayNode(index);
    map_.AddGateway(node, {a, b});
    auto gateway =
        std::make_unique<Gateway>(&sim_, &map_, index, node, config_.gateway);
    gateway->AttachSegment(a, segments_[a]->medium.get());
    gateway->AttachSegment(b, segments_[b]->medium.get());
    gateways_.push_back(std::move(gateway));
  };
  for (size_t k = 0; k + 1 < config_.segments; ++k) {
    add_gateway(k, k + 1);
  }
  if (config_.ring_topology && config_.segments >= 2) {
    add_gateway(config_.segments - 1, 0);
  }

  log_time_token_ = SetLogTimeSource([this] { return sim_.Now(); });
}

Internet::~Internet() {
  if (obs_.enabled()) {
    EnableObservability(Observability{});
  }
  ClearLogTimeSource(log_time_token_);
}

NodeKernel* Internet::kernel(NodeId node) {
  const int32_t segment = map_.SegmentOf(node);
  if (segment < 0 || static_cast<size_t>(segment) >= segments_.size()) {
    return nullptr;
  }
  return segments_[segment]->directory->kernel(node);
}

Result<ProcessId> Internet::Spawn(NodeId node, const std::string& program,
                                  std::vector<Link> initial_links, bool recoverable) {
  NodeKernel* k = kernel(node);
  if (k == nullptr) {
    return Status(StatusCode::kNotFound, "no such processing node " + ToString(node));
  }
  return k->SpawnProcess(program, std::move(initial_links), recoverable);
}

Status Internet::CrashProcess(const ProcessId& pid) {
  auto location = names_.Locate(pid);
  if (!location.ok()) {
    return location.status();
  }
  NodeKernel* k = kernel(*location);
  if (k == nullptr) {
    return Status(StatusCode::kNotFound, "process is not on a processing node");
  }
  if (obs_.lifecycle != nullptr) {
    obs_.lifecycle->NoteFault("crash_process", ToString(pid));
  }
  return k->CrashProcess(pid);
}

Status Internet::CrashNode(NodeId node) {
  NodeKernel* k = kernel(node);
  if (k == nullptr) {
    return Status(StatusCode::kNotFound, "no such node");
  }
  if (obs_.lifecycle != nullptr) {
    obs_.lifecycle->NoteFault("crash_node", ToString(node));
  }
  k->CrashNode();
  return Status::Ok();
}

void Internet::CrashRecorder(size_t segment) {
  if (obs_.lifecycle != nullptr) {
    obs_.lifecycle->NoteFault("crash_recorder",
                              ToString(segments_[segment]->recorder_node));
  }
  segments_[segment]->recorder->Crash();
}

void Internet::RestartRecorder(size_t segment) {
  segments_[segment]->recorder->Restart();
}

void Internet::SetGatewayUp(size_t index, bool up) {
  if (obs_.lifecycle != nullptr && gateways_[index]->down() == up) {
    obs_.lifecycle->NoteFault(up ? "gateway_up" : "gateway_down",
                              ToString(gateways_[index]->node()));
  }
  gateways_[index]->SetDown(!up);
  map_.SetGatewayUp(index, up);
}

bool Internet::RunUntilRecovered(const ProcessId& pid, SimDuration deadline) {
  bool done = false;
  // The pid's home segment owns the replay, but arm every manager: the
  // caller may race this with a names_ entry that is mid-recovery.
  for (auto& segment : segments_) {
    segment->recovery->set_recovery_done_callback(
        [&done, pid](const ProcessId& recovered) {
          if (recovered == pid) {
            done = true;
          }
        });
  }
  const SimTime limit = sim_.Now() + deadline;
  while (!done && sim_.Now() < limit) {
    if (!sim_.Step()) {
      break;
    }
  }
  for (auto& segment : segments_) {
    segment->recovery->set_recovery_done_callback(nullptr);
  }
  return done;
}

void Internet::EnableObservability(const Observability& obs) {
  obs_ = obs;
  sim_.SetObservability(obs);
  for (size_t k = 0; k < segments_.size(); ++k) {
    Segment& segment = *segments_[k];
    segment.medium->SetObservability(obs, "seg" + std::to_string(k));
    segment.recorder->SetObservability(obs);
    segment.storage.SetLifecycle(obs.lifecycle, segment.recorder_node);
    for (auto& kernel : segment.kernels) {
      kernel->SetObservability(obs);
    }
    segment.recovery->SetObservability(obs);
  }
  for (size_t i = 0; i < gateways_.size(); ++i) {
    gateways_[i]->SetObservability(obs, "gw" + std::to_string(i));
  }
  // Teach the oracle the partition function so the cross-segment monitors
  // (per-segment completeness, gateway_forwarding) can resolve home
  // segments.  Cache the oracle pointer: the detach call arrives with a null
  // lifecycle, and the resolver must not outlive this Internet.
  InvariantOracle* oracle =
      obs.lifecycle != nullptr ? obs.lifecycle->oracle() : nullptr;
  if (oracle != nullptr) {
    oracle->SetSegmentResolver(map_.SegmentResolver());
    obs_oracle_ = oracle;
  } else if (obs_oracle_ != nullptr) {
    obs_oracle_->SetSegmentResolver(nullptr);
    obs_oracle_ = nullptr;
  }
}

}  // namespace publishing
