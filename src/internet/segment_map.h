// SegmentMap: the internetwork supervisor's view of the topology.
//
// The multi-segment internetwork (DESIGN.md §13) partitions publish
// responsibility by *home segment*: every node lives on exactly one media
// segment, and that segment's recorder records the send watermarks of its
// nodes and publishes every message addressed to them.  The SegmentMap owns
// that partition function plus the gateway routing tables: which gateway
// carries traffic from segment A toward segment B, recomputed whenever a
// gateway goes down or comes back (the supervisor role of the
// publish-subscribe maintenance literature, PAPERS.md).
//
// Routing is deterministic: breadth-first over the up-gateway adjacency,
// ties broken by lowest gateway index, so identical topologies always yield
// identical routes (and the simulation stays replayable).

#ifndef SRC_INTERNET_SEGMENT_MAP_H_
#define SRC_INTERNET_SEGMENT_MAP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"

namespace publishing {

class SegmentMap {
 public:
  // The next hop from one segment toward another: leave through `gateway`
  // onto `egress` (one of the gateway's attached segments).
  struct Hop {
    size_t gateway = 0;
    size_t egress = 0;
  };

  // Registers a new segment whose responsible recorder lives on
  // `recorder_node`; returns the segment id.  The recorder node is assigned
  // to the segment automatically.
  size_t AddSegment(NodeId recorder_node);

  // Homes `node` on `segment`.  Every processing node must be assigned
  // before traffic flows; reassignment is not supported.
  void AssignNode(NodeId node, size_t segment);

  // Registers a gateway node bridging `segments` (usually two); returns the
  // gateway index.  Gateway nodes belong to no segment — SegmentOf returns
  // -1 for them.  Starts up; routes are recomputed immediately.
  size_t AddGateway(NodeId node, std::vector<size_t> segments);

  // Marks a gateway up/down and recomputes every route (the supervisor
  // reacting to a gateway fault or repair).
  void SetGatewayUp(size_t gateway, bool up);
  bool gateway_up(size_t gateway) const { return gateways_[gateway].up; }

  // Home segment of `node`, or -1 for unknown nodes and gateways.
  int32_t SegmentOf(NodeId node) const;

  size_t segment_count() const { return recorder_nodes_.size(); }
  size_t gateway_count() const { return gateways_.size(); }
  NodeId recorder_node(size_t segment) const { return recorder_nodes_[segment]; }
  NodeId gateway_node(size_t gateway) const { return gateways_[gateway].node; }
  const std::vector<size_t>& gateway_segments(size_t gateway) const {
    return gateways_[gateway].segments;
  }

  // Next hop from segment `from` toward segment `to`; nullopt when no path
  // of up gateways exists (or from == to).
  std::optional<Hop> Route(size_t from, size_t to) const;

  // The partition function as a plain callable, for the oracle's
  // cross-segment checks.  Captures `this`; the map must outlive users.
  std::function<int32_t(NodeId)> SegmentResolver() const {
    return [this](NodeId node) { return SegmentOf(node); };
  }

 private:
  struct GatewayEntry {
    NodeId node;
    std::vector<size_t> segments;
    bool up = true;
  };

  void RecomputeRoutes();

  std::vector<NodeId> recorder_nodes_;        // Indexed by segment id.
  std::vector<GatewayEntry> gateways_;        // Indexed by gateway index.
  std::unordered_map<NodeId, int32_t> homes_;  // Node -> segment.
  // routes_[from * segment_count + to]; gateway == SIZE_MAX means no route.
  std::vector<Hop> routes_;
  std::vector<bool> reachable_;
};

}  // namespace publishing

#endif  // SRC_INTERNET_SEGMENT_MAP_H_
