// Gateway: store-and-forward bridge between media segments (DESIGN.md §13).
//
// A gateway attaches one forwarder port per segment (Medium::AttachForwarder)
// and receives exactly the unicast frames whose destination is not local to
// that segment.  For each such frame it consults the SegmentMap: if this
// gateway is the designated next hop from the ingress segment toward the
// destination's home segment, the frame enters a bounded per-egress FIFO and
// is retransmitted onto the egress segment after a fixed store-and-forward
// latency; otherwise the frame is ignored (exactly one gateway owns any
// segment-pair flow, so no frame is ever duplicated).
//
// Back-pressure is by loss: a full queue drops the frame and the sender's
// end-to-end retransmission recovers it — the same contract as a vetoed or
// collided frame on a single segment.  Forwarding re-enters Medium::Send
// with the original frame (shared payload buffers, no copy), so the original
// source address, causal context, and gather segments all survive the hop;
// the destination segment's recorder overhears the final transmission and
// publishes it there, which is what keeps the responsibility invariant true
// across segments.

#ifndef SRC_INTERNET_GATEWAY_H_
#define SRC_INTERNET_GATEWAY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string_view>
#include <vector>

#include "src/internet/segment_map.h"
#include "src/net/medium.h"

namespace publishing {

struct GatewayOptions {
  // Per-egress store-and-forward queue bounds; overflow drops the frame.
  size_t max_queue_frames = 64;
  size_t max_queue_bytes = 256 * 1024;
  // Fixed per-frame processing latency before the egress transmission.
  SimDuration forward_latency = MillisF(0.2);
};

struct GatewayStats {
  uint64_t frames_forwarded = 0;
  uint64_t bytes_forwarded = 0;
  uint64_t dropped_queue_full = 0;  // Back-pressure losses.
  uint64_t dropped_down = 0;        // Arrived or queued while the gateway was down.
  uint64_t ignored_not_owner = 0;   // Another gateway owns the route.
  uint64_t ignored_unroutable = 0;  // No up-gateway path to the home segment.
};

class Gateway {
 public:
  Gateway(Simulator* sim, const SegmentMap* map, size_t index, NodeId node,
          GatewayOptions options);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  // Attaches a forwarder port on `medium` (the map's segment `segment`).
  // The gateway must outlive the medium detach (the destructor detaches).
  void AttachSegment(size_t segment, Medium* medium);

  // A downed gateway drops everything: queued frames are lost (end-to-end
  // retransmission recovers them once a route exists again) and new ingress
  // is ignored.  The SegmentMap is NOT updated here — the supervisor does
  // that separately, which lets tests model the window where the map still
  // routes through a dead gateway.
  void SetDown(bool down);
  bool down() const { return down_; }

  NodeId node() const { return node_; }
  size_t index() const { return index_; }
  const GatewayStats& stats() const { return stats_; }

  // Resolves the gateway's instruments under `gateway.*{gateway=label}` and
  // keeps the lifecycle tracker for kForwarded observations.
  void SetObservability(const Observability& obs, std::string_view label);

 private:
  struct Port : Station {
    Gateway* gateway = nullptr;
    size_t segment = 0;
    NodeId Address() const override { return gateway->node_; }
    void OnFrame(const Frame& frame) override {
      gateway->OnIngress(segment, frame);
    }
  };

  struct Egress {
    size_t segment = 0;
    Medium* medium = nullptr;
    std::unique_ptr<Port> port;
    // Queued frames with their ingress segment (for the forwarded stage).
    std::deque<std::pair<Frame, size_t>> queue;
    size_t queued_bytes = 0;
    bool draining = false;
  };

  void OnIngress(size_t segment, const Frame& frame);
  void DrainOne(size_t egress_index);
  Egress* FindEgress(size_t segment);

  Simulator* sim_;
  const SegmentMap* map_;
  size_t index_;
  NodeId node_;
  GatewayOptions options_;
  bool down_ = false;
  std::vector<std::unique_ptr<Egress>> egresses_;
  GatewayStats stats_;

  // Observability handles (null = detached).
  LifecycleTracker* lifecycle_ = nullptr;
  Counter* obs_forwarded_ = nullptr;
  Counter* obs_bytes_forwarded_ = nullptr;
  Counter* obs_dropped_queue_full_ = nullptr;
  Counter* obs_dropped_down_ = nullptr;
};

}  // namespace publishing

#endif  // SRC_INTERNET_GATEWAY_H_
