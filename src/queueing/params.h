// Parameters for the Chapter 5 queuing-model study.
//
// Figure 5.2 gives the hardware parameters verbatim; Figures 5.3/5.4 were
// measured on "the most heavily utilized research VAX at UCB over the period
// of a week" and are reproduced here as calibrated synthetic equivalents
// (the thesis scan does not preserve the numeric table bodies; DESIGN.md
// documents the calibration targets: the mean point must remain viable at 5
// nodes, the max-system-call point must saturate beyond ~3 nodes, the
// max-long-message point must saturate the disk unless 4 KB write buffering
// is used, and total capacity lands at the abstract's 115 users).

#ifndef SRC_QUEUEING_PARAMS_H_
#define SRC_QUEUEING_PARAMS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace publishing {

// Figure 5.2: Hardware Parameters for the Queuing Model.
struct HardwareParams {
  SimDuration interpacket_delay = MillisF(1.6);  // Ethernet interface.
  double network_bits_per_second = 10e6;         // 10 megabit Ethernet.
  SimDuration disk_latency = Millis(3);
  double disk_bytes_per_second = 2e6;            // 2 MB/s transfer.
  SimDuration packet_cpu = MillisF(0.8);         // Recorder CPU per packet.
  // Reserved acknowledgement slot on the (Acknowledging) Ethernet; acks ride
  // this slot rather than contending (§6.1.1).
  SimDuration ack_slot = Micros(76);
};

// Message sizes (§5.1): "short messages (128 bytes long), long messages
// (1024 bytes), and checkpointing messages (1024 bytes)".
inline constexpr size_t kShortMessageBytes = 128;
inline constexpr size_t kLongMessageBytes = 1024;
inline constexpr size_t kCheckpointMessageBytes = 1024;

// Figure 5.3: State Sizes for UNIX Processes — the fraction of processes in
// each state-size bucket.
struct StateSizeBucket {
  size_t bytes;
  double fraction;
};

inline const std::array<StateSizeBucket, 5>& StateSizeDistribution() {
  static const std::array<StateSizeBucket, 5> dist = {{
      {4 * 1024, 0.30},
      {8 * 1024, 0.25},
      {16 * 1024, 0.20},
      {32 * 1024, 0.15},
      {64 * 1024, 0.10},
  }};
  return dist;
}

double MeanStateBytes();

// Figure 5.4: Operating Points for the Queuing Model.  Rates are per
// processing node; the load average is processes per node.
struct OperatingPoint {
  std::string name;
  double load_average;           // Processes per processor.
  double short_msgs_per_second;  // System calls → 128 B messages (§5.1).
  double long_msgs_per_second;   // I/O requests → 1024 B messages.
  double users_per_node;         // For the capacity ("115 users") estimate.
  size_t forced_state_bytes = 0; // 0 = sample Figure 5.3; nonzero pins every
                                 // process's state size (max-state point).
};

// The four §5.1 operating points: "one representing the mean of each
// parameter and the other three representing the measurements when each of
// the parameters was maximized."
std::vector<OperatingPoint> StandardOperatingPoints();

}  // namespace publishing

#endif  // SRC_QUEUEING_PARAMS_H_
