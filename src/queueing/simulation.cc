#include "src/queueing/simulation.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>

namespace publishing {
namespace {

// A single FCFS server with utilization and waiting-time accounting.
class Server {
 public:
  explicit Server(Simulator* sim) : sim_(sim) {}

  void Submit(SimDuration service, size_t bytes, std::function<void()> done) {
    queue_.push_back(Job{service, bytes, std::move(done), sim_->Now()});
    queued_bytes_ += bytes;
    StartNext();
  }

  void Finish(SimTime now) { util_.Finish(now); }
  double Utilization() const { return util_.Utilization(); }
  double MeanWaitMs() const { return wait_ms_.mean(); }
  size_t queued_bytes() const { return queued_bytes_; }

 private:
  struct Job {
    SimDuration service;
    size_t bytes;
    std::function<void()> done;
    SimTime enqueued;
  };

  void StartNext() {
    if (busy_ || queue_.empty()) {
      return;
    }
    busy_ = true;
    util_.SetBusy(sim_->Now(), true);
    Job job = std::move(queue_.front());
    queue_.pop_front();
    wait_ms_.Add(ToMillis(sim_->Now() - job.enqueued));
    sim_->ScheduleAfter(job.service, [this, job = std::move(job)] {
      queued_bytes_ -= job.bytes;
      busy_ = false;
      util_.SetBusy(sim_->Now(), false);
      if (job.done) {
        job.done();
      }
      StartNext();
    });
  }

  Simulator* sim_;
  std::deque<Job> queue_;
  bool busy_ = false;
  size_t queued_bytes_ = 0;
  UtilizationTracker util_;
  StatAccumulator wait_ms_;
};

struct SimProcess {
  size_t state_bytes = 0;
  size_t published_since_checkpoint = 0;
  SimTime last_checkpoint = 0;
};

size_t SampleStateBytes(Rng& rng, const OperatingPoint& op) {
  if (op.forced_state_bytes != 0) {
    return op.forced_state_bytes;
  }
  double u = rng.NextDouble();
  double acc = 0.0;
  for (const StateSizeBucket& bucket : StateSizeDistribution()) {
    acc += bucket.fraction;
    if (u <= acc) {
      return bucket.bytes;
    }
  }
  return StateSizeDistribution().back().bytes;
}

// Per-packet network channel occupancy: interface interpacket delay, the
// bits on the wire, and the reserved recorder-ack slot (§6.1.1).
SimDuration NetworkService(const HardwareParams& hw, size_t bytes) {
  return hw.interpacket_delay +
         SecondsF(static_cast<double>(bytes) * 8.0 / hw.network_bits_per_second) + hw.ack_slot;
}

SimDuration DiskService(const HardwareParams& hw, size_t bytes) {
  return hw.disk_latency + SecondsF(static_cast<double>(bytes) / hw.disk_bytes_per_second);
}

}  // namespace

QueueingResult RunQueueingSimulation(const QueueingConfig& config) {
  Simulator sim;
  Rng rng(config.seed);

  Server network(&sim);
  Server cpu(&sim);
  std::vector<std::unique_ptr<Server>> disks;
  disks.reserve(config.disks);
  for (size_t i = 0; i < config.disks; ++i) {
    disks.push_back(std::make_unique<Server>(&sim));
  }

  QueueingResult result;
  StatAccumulator checkpoint_interval_s;
  size_t next_disk = 0;
  std::vector<size_t> write_buffers(config.disks, 0);

  // Persistent storage estimate: checkpoints + retained log bytes.
  size_t checkpoint_storage = 0;
  size_t log_storage = 0;
  size_t peak_storage = 0;

  // Processes per node, each with a sampled state size.  The first
  // checkpoint is the binary image (§3.3.1), charged to storage up front.
  std::vector<std::vector<SimProcess>> procs(config.nodes);
  const size_t per_node = std::max<size_t>(1, static_cast<size_t>(config.op.load_average + 0.5));
  for (size_t n = 0; n < config.nodes; ++n) {
    for (size_t p = 0; p < per_node; ++p) {
      SimProcess proc;
      proc.state_bytes = SampleStateBytes(rng, config.op);
      checkpoint_storage += proc.state_bytes;
      procs[n].push_back(proc);
    }
  }

  auto track_peaks = [&] {
    peak_storage = std::max(peak_storage, checkpoint_storage + log_storage);
    size_t buffered = cpu.queued_bytes();
    for (const auto& disk : disks) {
      buffered += disk->queued_bytes();
    }
    result.peak_recorder_buffer_bytes =
        std::max(result.peak_recorder_buffer_bytes, buffered);
  };

  // Sends `bytes` to a disk, honoring 4 KB write buffering (§5.1).
  auto to_disk = [&](size_t bytes) {
    size_t d = next_disk++ % config.disks;
    if (!config.buffered_writes) {
      disks[d]->Submit(DiskService(config.hw, bytes), bytes, nullptr);
      return;
    }
    write_buffers[d] += bytes;
    while (write_buffers[d] >= config.write_buffer_bytes) {
      write_buffers[d] -= config.write_buffer_bytes;
      disks[d]->Submit(DiskService(config.hw, config.write_buffer_bytes),
                       config.write_buffer_bytes, nullptr);
    }
  };

  std::function<void(size_t, size_t, bool)> publish =
      [&](size_t node, size_t bytes, bool checkpoint_class) {
        ++result.messages;
        if (checkpoint_class) {
          ++result.checkpoint_messages;
        }
        // §6.6.1: messages to non-recoverable processes stop at the media
        // layer — the network still carries them, the recorder ignores them.
        if (!checkpoint_class && config.non_recoverable_fraction > 0.0 &&
            rng.NextBernoulli(config.non_recoverable_fraction)) {
          network.Submit(NetworkService(config.hw, bytes), bytes, nullptr);
          return;
        }
        network.Submit(NetworkService(config.hw, bytes), bytes, [&, node, bytes,
                                                                 checkpoint_class] {
          // Recorder CPU: one event for the data packet and one for tracing
          // the end-to-end acknowledgement (§4.4.1).
          cpu.Submit(config.hw.packet_cpu, bytes, [&, node, bytes, checkpoint_class] {
            to_disk(bytes);
            if (!checkpoint_class) {
              log_storage += bytes;
              // Attribute the published bytes to a random process on the
              // node; the storage-balanced policy checkpoints it once its
              // published storage exceeds its state size (§5.1).
              auto& node_procs = procs[node];
              SimProcess& proc = node_procs[rng.NextBelow(node_procs.size())];
              proc.published_since_checkpoint += bytes;
              if (proc.published_since_checkpoint > proc.state_bytes) {
                checkpoint_interval_s.Add(ToSeconds(sim.Now() - proc.last_checkpoint));
                proc.last_checkpoint = sim.Now();
                log_storage -= std::min(log_storage, proc.published_since_checkpoint);
                proc.published_since_checkpoint = 0;
                const size_t packets =
                    (proc.state_bytes + kCheckpointMessageBytes - 1) / kCheckpointMessageBytes;
                for (size_t i = 0; i < packets; ++i) {
                  publish(node, kCheckpointMessageBytes, true);
                }
              }
            }
            track_peaks();
          });
          cpu.Submit(config.hw.packet_cpu, 0, nullptr);  // The acknowledgement.
          track_peaks();
        });
        track_peaks();
      };

  // Poisson sources per node.
  std::function<void(size_t, bool)> arrival = [&](size_t node, bool is_long) {
    const double rate =
        is_long ? config.op.long_msgs_per_second : config.op.short_msgs_per_second;
    if (rate <= 0.0) {
      return;
    }
    const SimDuration gap = SecondsF(rng.NextExponential(1.0 / rate));
    sim.ScheduleAfter(gap, [&, node, is_long] {
      if (sim.Now() >= config.duration) {
        return;
      }
      publish(node, is_long ? kLongMessageBytes : kShortMessageBytes, false);
      arrival(node, is_long);
    });
  };
  for (size_t n = 0; n < config.nodes; ++n) {
    arrival(n, false);
    arrival(n, true);
  }

  sim.RunUntil(config.duration);
  network.Finish(sim.Now());
  cpu.Finish(sim.Now());
  double disk_util = 0.0;
  for (auto& disk : disks) {
    disk->Finish(sim.Now());
    disk_util += disk->Utilization();
  }

  result.network_utilization = network.Utilization();
  result.cpu_utilization = cpu.Utilization();
  result.disk_utilization = disk_util / static_cast<double>(config.disks);
  result.mean_network_queue_ms = network.MeanWaitMs();
  result.mean_cpu_queue_ms = cpu.MeanWaitMs();
  result.mean_disk_queue_ms = disks[0]->MeanWaitMs();
  result.peak_storage_bytes = peak_storage;
  result.mean_checkpoint_interval_s = checkpoint_interval_s.mean();
  return result;
}

AnalyticUtilizations ComputeAnalyticUtilizations(const QueueingConfig& config) {
  const OperatingPoint& op = config.op;
  const HardwareParams& hw = config.hw;
  const double n = static_cast<double>(config.nodes);

  // Share of traffic that is actually published (§6.6.1).
  const double published = 1.0 - config.non_recoverable_fraction;
  const double msg_bytes_per_s = op.short_msgs_per_second * kShortMessageBytes +
                                 op.long_msgs_per_second * kLongMessageBytes;
  // Storage-balanced checkpointing writes, in steady state, as many bytes as
  // get published (§5.1), in 1024-byte messages.
  const double ckpt_rate = published * msg_bytes_per_s / kCheckpointMessageBytes;

  auto net = [&](size_t bytes) { return ToSeconds(NetworkService(hw, bytes)); };
  AnalyticUtilizations u;
  u.network = n * (op.short_msgs_per_second * net(kShortMessageBytes) +
                   op.long_msgs_per_second * net(kLongMessageBytes) +
                   ckpt_rate * net(kCheckpointMessageBytes));

  const double packet_rate =
      published * (op.short_msgs_per_second + op.long_msgs_per_second) + ckpt_rate;
  u.cpu = n * 2.0 * packet_rate * ToSeconds(hw.packet_cpu);  // Data + ack.

  const double disk_bytes_per_s =
      published * msg_bytes_per_s + ckpt_rate * kCheckpointMessageBytes;
  double disk_busy_per_s;
  if (config.buffered_writes) {
    const double writes = disk_bytes_per_s / static_cast<double>(config.write_buffer_bytes);
    disk_busy_per_s = writes * ToSeconds(DiskService(hw, config.write_buffer_bytes));
  } else {
    disk_busy_per_s =
        published * op.short_msgs_per_second * ToSeconds(DiskService(hw, kShortMessageBytes)) +
        published * op.long_msgs_per_second * ToSeconds(DiskService(hw, kLongMessageBytes)) +
        ckpt_rate * ToSeconds(DiskService(hw, kCheckpointMessageBytes));
  }
  u.disk = n * disk_busy_per_s / static_cast<double>(config.disks);
  return u;
}

CapacityEstimate EstimateCapacity(const QueueingConfig& base, size_t max_nodes_to_try) {
  CapacityEstimate estimate;
  for (size_t nodes = 1; nodes <= max_nodes_to_try; ++nodes) {
    QueueingConfig config = base;
    config.nodes = nodes;
    AnalyticUtilizations u = ComputeAnalyticUtilizations(config);
    const char* binding = "network";
    double worst = u.network;
    if (u.cpu > worst) {
      worst = u.cpu;
      binding = "recorder-cpu";
    }
    if (u.disk > worst) {
      worst = u.disk;
      binding = "disk";
    }
    if (worst >= 1.0) {
      estimate.binding_resource = binding;
      break;
    }
    estimate.max_nodes = nodes;
    estimate.max_users = static_cast<double>(nodes) * base.op.users_per_node;
    estimate.binding_resource = binding;
  }
  return estimate;
}

}  // namespace publishing
