#include "src/queueing/params.h"

namespace publishing {

double MeanStateBytes() {
  double mean = 0.0;
  for (const StateSizeBucket& bucket : StateSizeDistribution()) {
    mean += static_cast<double>(bucket.bytes) * bucket.fraction;
  }
  return mean;
}

std::vector<OperatingPoint> StandardOperatingPoints() {
  return {
      // The week-long mean: a moderately loaded multi-user VAX.
      {"mean", 3.0, 50.0, 16.0, 23.0, 0},
      // Peak number of runnable processes (interactive burst).
      {"max-load-average", 12.0, 75.0, 18.0, 23.0, 0},
      // Peak state sizes (large editors/compilers); traffic as at the mean,
      // but every checkpoint is a full 64 KB image.
      {"max-state-size", 3.0, 50.0, 16.0, 23.0, 64 * 1024},
      // Peak system-call rate (the short-message storm of §5.1 whose
      // saturation "cannot be removed by any simple optimizations").
      {"max-syscall-rate", 4.0, 130.0, 10.0, 23.0, 0},
      // Peak disk access rate (the disk-to-tape backups of §6.6.1); long
      // messages dominate and saturate an unbuffered disk.
      {"max-disk-rate", 3.0, 30.0, 60.0, 23.0, 0},
  };
}

}  // namespace publishing
