// End-to-end recovery latency on the full stack: virtual time from crash to
// recovery-complete as a function of the number of messages received since
// the last checkpoint.  Validates the shape of the §3.2.3 bound — recovery
// time grows linearly in the replayed message count, with the checkpoint
// reload as the intercept — and demonstrates that checkpointing bounds it.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/publishing_system.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

struct RecoveryRun {
  double recovery_ms = -1.0;
  uint64_t replayed = 0;
};

// Runs ping-pong until the server has handled `messages_before_crash` pings
// (checkpointing it at the start if `checkpoint_first`), crashes the server,
// and measures virtual crash-to-recovered time.
RecoveryRun MeasureRecovery(uint64_t messages_before_crash, bool checkpoint_first) {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger", [messages_before_crash] {
    return std::make_unique<PingerProgram>(messages_before_crash + 400);
  });

  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  (void)pinger;

  // Let the requested number of pings flow.
  NodeKernel* kernel = system.cluster().kernel(NodeId{2});
  while (true) {
    auto reads = kernel->ReadsDone(*echo);
    if (reads.ok() && *reads >= messages_before_crash) {
      break;
    }
    if (!system.sim().Step()) {
      break;
    }
  }
  if (checkpoint_first) {
    // Checkpoint right before the crash: the replay shrinks to the handful
    // of messages still in flight.
    kernel->CheckpointProcess(*echo);
    system.RunFor(Millis(50));
  }

  RecoveryRun run;
  const SimTime crash_at = system.sim().Now();
  if (!system.CrashProcess(*echo).ok()) {
    return run;
  }
  if (!system.RunUntilRecovered(*echo, Seconds(600))) {
    return run;
  }
  run.recovery_ms = ToMillis(system.sim().Now() - crash_at);
  run.replayed = system.cluster().kernel(NodeId{2})->stats().replay_accepted;
  return run;
}

void PrintTables(BenchJson& json) {
  PrintHeader("End-to-end recovery time vs messages since checkpoint (full stack)");
  std::printf("  %24s %16s %18s\n", "msgs since checkpoint", "replayed", "recovery (ms)");
  PrintRule();
  for (uint64_t messages : {5u, 20u, 50u, 100u, 200u}) {
    RecoveryRun run = MeasureRecovery(messages, /*checkpoint_first=*/false);
    std::printf("  %24llu %16llu %18.1f\n", static_cast<unsigned long long>(messages),
                static_cast<unsigned long long>(run.replayed), run.recovery_ms);
    json.Set("recovery_ms.msgs" + std::to_string(messages), run.recovery_ms);
    json.Set("replayed.msgs" + std::to_string(messages), static_cast<double>(run.replayed));
  }
  PrintRule();
  RecoveryRun fresh = MeasureRecovery(100, /*checkpoint_first=*/true);
  std::printf("  with a checkpoint taken first, 100-message run recovers in %.1f ms\n",
              fresh.recovery_ms);
  json.Set("recovery_ms.msgs100_checkpointed", fresh.recovery_ms);
  std::printf("  shape check: recovery time is affine in the replayed message count\n"
              "  (the paper's t_max = t_reload + t_mfix*n + t_byte*bytes + t_compute).\n\n");
}

void BM_RecoverFiftyMessages(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureRecovery(50, false));
  }
}
BENCHMARK(BM_RecoverFiftyMessages)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("recovery_end_to_end");
  publishing::PrintTables(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
