// End-to-end recovery latency on the full stack: virtual time from crash to
// recovery-complete as a function of the number of messages received since
// the last checkpoint.  Validates the shape of the §3.2.3 bound — recovery
// time grows linearly in the replayed message count, with the checkpoint
// reload as the intercept — and demonstrates that checkpointing bounds it.
//
// The mass-crash section exercises the DESIGN.md §11 recovery fast path: a
// whole node's worth of processes (>= 64) with large post-checkpoint logs is
// crashed and recovered twice — once with the paper's stop-and-wait replay
// and once with pipelined replay bursts — and the bench FAILS (non-zero
// exit) if the pipelined path is less than 3x faster in virtual time or if
// it physically copies any payload bytes between stable storage and kernel
// delivery.

#include <benchmark/benchmark.h>

#include <set>

#include "bench/bench_util.h"
#include "src/core/publishing_system.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

struct RecoveryRun {
  double recovery_ms = -1.0;
  uint64_t replayed = 0;
};

// Runs ping-pong until the server has handled `messages_before_crash` pings
// (checkpointing it at the start if `checkpoint_first`), crashes the server,
// and measures virtual crash-to-recovered time.
RecoveryRun MeasureRecovery(uint64_t messages_before_crash, bool checkpoint_first) {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger", [messages_before_crash] {
    return std::make_unique<PingerProgram>(messages_before_crash + 400);
  });

  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  (void)pinger;

  // Let the requested number of pings flow.
  NodeKernel* kernel = system.cluster().kernel(NodeId{2});
  while (true) {
    auto reads = kernel->ReadsDone(*echo);
    if (reads.ok() && *reads >= messages_before_crash) {
      break;
    }
    if (!system.sim().Step()) {
      break;
    }
  }
  if (checkpoint_first) {
    // Checkpoint right before the crash: the replay shrinks to the handful
    // of messages still in flight.
    kernel->CheckpointProcess(*echo);
    system.RunFor(Millis(50));
  }

  RecoveryRun run;
  const SimTime crash_at = system.sim().Now();
  if (!system.CrashProcess(*echo).ok()) {
    return run;
  }
  if (!system.RunUntilRecovered(*echo, Seconds(600))) {
    return run;
  }
  run.recovery_ms = ToMillis(system.sim().Now() - crash_at);
  run.replayed = system.cluster().kernel(NodeId{2})->stats().replay_accepted;
  return run;
}

void PrintTables(BenchJson& json) {
  PrintHeader("End-to-end recovery time vs messages since checkpoint (full stack)");
  std::printf("  %24s %16s %18s\n", "msgs since checkpoint", "replayed", "recovery (ms)");
  PrintRule();
  for (uint64_t messages : {5u, 20u, 50u, 100u, 200u}) {
    RecoveryRun run = MeasureRecovery(messages, /*checkpoint_first=*/false);
    std::printf("  %24llu %16llu %18.1f\n", static_cast<unsigned long long>(messages),
                static_cast<unsigned long long>(run.replayed), run.recovery_ms);
    json.Set("recovery_ms.msgs" + std::to_string(messages), run.recovery_ms);
    json.Set("replayed.msgs" + std::to_string(messages), static_cast<double>(run.replayed));
  }
  PrintRule();
  RecoveryRun fresh = MeasureRecovery(100, /*checkpoint_first=*/true);
  std::printf("  with a checkpoint taken first, 100-message run recovers in %.1f ms\n",
              fresh.recovery_ms);
  json.Set("recovery_ms.msgs100_checkpointed", fresh.recovery_ms);
  std::printf("  shape check: recovery time is affine in the replayed message count\n"
              "  (the paper's t_max = t_reload + t_mfix*n + t_byte*bytes + t_compute).\n\n");
}

// --- Mass crash (DESIGN.md §11) -------------------------------------------

constexpr uint64_t kMassProcesses = 64;
constexpr uint64_t kMassMessagesEach = 40;

struct MassCrashRun {
  bool ok = false;
  double recovery_ms = -1.0;        // Crash -> last process recovered.
  StatAccumulator per_process_ms;   // Crash -> each process recovered.
  uint64_t replay_bursts = 0;       // Burst frames the recorder overheard.
  uint64_t replay_segments = 0;     // Logged packets riding in them.
  uint64_t bytes_copied = 0;        // Physical payload copies during recovery.
  uint64_t deferred = 0;            // Recoveries queued behind the scheduler cap.
};

// Crashes a node hosting kMassProcesses echo servers with kMassMessagesEach
// unread-since-checkpoint logged messages each, and measures the virtual
// time until every process has recovered.
MassCrashRun MeasureMassCrash(bool pipelined) {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  // Detection time is a constant shared by both variants; shrink it so the
  // comparison measures replay, not the watchdog.
  config.recovery.watchdog_period = Millis(50);
  config.recovery.watchdog_timeout = Millis(200);
  config.recovery.pipelined_replay = pipelined;
  PublishingSystem system(config);
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger", [] {
    return std::make_unique<PingerProgram>(kMassMessagesEach + 100);
  });

  std::vector<ProcessId> echoes;
  for (uint64_t i = 0; i < kMassProcesses; ++i) {
    auto echo = system.cluster().Spawn(NodeId{2}, "echo");
    if (!echo.ok()) {
      return {};
    }
    auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
    if (!pinger.ok()) {
      return {};
    }
    echoes.push_back(*echo);
  }

  // Let every echo accumulate its post-checkpoint log (no checkpoints are
  // taken, so the whole history replays).
  NodeKernel* kernel = system.cluster().kernel(NodeId{2});
  for (int slice = 0; slice < 10000; ++slice) {
    bool all_done = true;
    for (const ProcessId& echo : echoes) {
      auto reads = kernel->ReadsDone(echo);
      if (!reads.ok() || *reads < kMassMessagesEach) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      break;
    }
    system.RunFor(Millis(100));
  }

  std::set<ProcessId> outstanding(echoes.begin(), echoes.end());
  SimTime crash_at = 0;
  StatAccumulator per_process;
  system.recovery().set_recovery_done_callback(
      [&](const ProcessId& pid) {
        if (outstanding.erase(pid) != 0) {
          per_process.Add(ToMillis(system.sim().Now() - crash_at));
        }
      });

  ResetBufferStats();
  crash_at = system.sim().Now();
  system.CrashNode(NodeId{2});
  for (int slice = 0; slice < 10000 && !outstanding.empty(); ++slice) {
    system.RunFor(Millis(100));
  }
  if (!outstanding.empty()) {
    return {};
  }

  MassCrashRun run;
  run.ok = true;
  run.recovery_ms = ToMillis(system.sim().Now() - crash_at);
  // The slice loop overshoots by up to 100ms past the last completion; the
  // per-process max is the exact crash-to-last-recovery time.
  run.recovery_ms = per_process.max();
  run.per_process_ms = per_process;
  run.replay_bursts = system.recorder().stats().replay_bursts_seen;
  run.replay_segments = system.recorder().stats().replay_segments_seen;
  run.bytes_copied = GetBufferStats().bytes_copied;
  run.deferred = system.recovery().stats().recoveries_deferred;
  return run;
}

// Returns the number of gate failures (0 = all acceptance criteria hold).
int PrintMassCrashTable(BenchJson& json) {
  PrintHeader("Mass crash: " + std::to_string(kMassProcesses) +
              " processes, " + std::to_string(kMassMessagesEach) +
              " logged messages each (DESIGN.md §11)");
  MassCrashRun baseline = MeasureMassCrash(/*pipelined=*/false);
  MassCrashRun pipelined = MeasureMassCrash(/*pipelined=*/true);
  if (!baseline.ok || !pipelined.ok) {
    std::printf("  FAILED: a mass-crash scenario did not recover\n");
    return 1;
  }
  const double speedup = pipelined.recovery_ms > 0.0
                             ? baseline.recovery_ms / pipelined.recovery_ms
                             : 0.0;
  std::printf("  %28s %18s %18s\n", "", "stop-and-wait", "pipelined");
  PrintRule();
  std::printf("  %28s %18.1f %18.1f\n", "crash->all recovered (ms)",
              baseline.recovery_ms, pipelined.recovery_ms);
  std::printf("  %28s %18.1f %18.1f\n", "per-process p50 (ms)",
              baseline.per_process_ms.p50(), pipelined.per_process_ms.p50());
  std::printf("  %28s %18.1f %18.1f\n", "per-process p99 (ms)",
              baseline.per_process_ms.p99(), pipelined.per_process_ms.p99());
  std::printf("  %28s %18llu %18llu\n", "replay bursts on wire",
              static_cast<unsigned long long>(baseline.replay_bursts),
              static_cast<unsigned long long>(pipelined.replay_bursts));
  std::printf("  %28s %18llu %18llu\n", "bytes copied in recovery",
              static_cast<unsigned long long>(baseline.bytes_copied),
              static_cast<unsigned long long>(pipelined.bytes_copied));
  PrintRule();
  std::printf("  speedup: %.2fx (gate: >= 3x); pipelined copies: %llu (gate: 0)\n\n",
              speedup, static_cast<unsigned long long>(pipelined.bytes_copied));

  json.Set("mass_crash.baseline_ms", baseline.recovery_ms);
  json.Set("mass_crash.pipelined_ms", pipelined.recovery_ms);
  json.Set("mass_crash.speedup", speedup);
  json.SetStats("mass_crash.baseline_per_process_ms.", baseline.per_process_ms);
  json.SetStats("mass_crash.pipelined_per_process_ms.", pipelined.per_process_ms);
  json.Set("mass_crash.replay_bursts", static_cast<double>(pipelined.replay_bursts));
  json.Set("mass_crash.replay_segments", static_cast<double>(pipelined.replay_segments));
  json.Set("mass_crash.pipelined_bytes_copied", static_cast<double>(pipelined.bytes_copied));
  json.Set("mass_crash.recoveries_deferred", static_cast<double>(pipelined.deferred));

  int failures = 0;
  if (speedup < 3.0) {
    std::printf("  FAILED: pipelined replay speedup %.2fx < 3x\n", speedup);
    ++failures;
  }
  if (pipelined.bytes_copied != 0) {
    std::printf("  FAILED: pipelined replay copied %llu payload bytes (want 0)\n",
                static_cast<unsigned long long>(pipelined.bytes_copied));
    ++failures;
  }
  if (pipelined.replay_bursts == 0) {
    std::printf("  FAILED: no replay bursts observed on the wire\n");
    ++failures;
  }
  return failures;
}

void BM_RecoverFiftyMessages(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureRecovery(50, false));
  }
}
BENCHMARK(BM_RecoverFiftyMessages)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("recovery_end_to_end");
  publishing::PrintTables(json);
  const int gate_failures = publishing::PrintMassCrashTable(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gate_failures == 0 ? 0 : 1;
}
