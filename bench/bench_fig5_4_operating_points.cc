// Reproduces Figure 5.2 (Hardware Parameters for the Queuing Model) and
// Figure 5.4 (Operating Points for the Queuing Model), plus the analytic
// per-subsystem utilizations each operating point implies per node.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/queueing/simulation.h"

namespace publishing {
namespace {

void PrintTables(BenchJson& json) {
  PrintHeader("Figure 5.2: Hardware Parameters for the Queuing Model");
  HardwareParams hw;
  std::printf("  %-42s %8.1f ms\n", "Ethernet interface interpacket delay",
              ToMillis(hw.interpacket_delay));
  std::printf("  %-42s %8.0f megabits/s\n", "Network bandwidth",
              hw.network_bits_per_second / 1e6);
  std::printf("  %-42s %8.1f ms\n", "Disk latency", ToMillis(hw.disk_latency));
  std::printf("  %-42s %8.0f megabytes/s\n", "Disk transfer rate",
              hw.disk_bytes_per_second / 1e6);
  std::printf("  %-42s %8.1f ms\n", "Time to process a packet", ToMillis(hw.packet_cpu));

  PrintHeader("Figure 5.4: Operating Points for the Queuing Model (per node)");
  std::printf("  %-18s %10s %10s %10s %12s\n", "point", "load avg", "short/s", "long/s",
              "state bytes");
  PrintRule();
  for (const OperatingPoint& op : StandardOperatingPoints()) {
    std::printf("  %-18s %10.1f %10.1f %10.1f %12s\n", op.name.c_str(), op.load_average,
                op.short_msgs_per_second, op.long_msgs_per_second,
                op.forced_state_bytes == 0
                    ? "fig 5.3"
                    : std::to_string(op.forced_state_bytes).c_str());
  }

  PrintHeader("Analytic per-node utilization implied by each operating point");
  std::printf("  %-18s %10s %10s %10s\n", "point", "network", "rec. CPU", "disk");
  PrintRule();
  for (const OperatingPoint& op : StandardOperatingPoints()) {
    QueueingConfig config;
    config.op = op;
    config.nodes = 1;
    AnalyticUtilizations u = ComputeAnalyticUtilizations(config);
    std::printf("  %-18s %9.1f%% %9.1f%% %9.1f%%\n", op.name.c_str(), 100 * u.network,
                100 * u.cpu, 100 * u.disk);
    json.Set(op.name + ".network_utilization", u.network);
    json.Set(op.name + ".cpu_utilization", u.cpu);
    json.Set(op.name + ".disk_utilization", u.disk);
  }
  std::printf("\n");
}

void BM_AnalyticUtilizations(benchmark::State& state) {
  QueueingConfig config;
  config.op = StandardOperatingPoints()[0];
  config.nodes = 5;
  for (auto _ : state) {
    AnalyticUtilizations u = ComputeAnalyticUtilizations(config);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_AnalyticUtilizations);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("fig5_4_operating_points");
  publishing::PrintTables(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
