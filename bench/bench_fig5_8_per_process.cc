// Reproduces Figure 5.8: Per Process Overheads — CPU time for the creation
// and destruction of a null process, with and without publishing.
//
// A driver process creates and destroys a null process 25 times through the
// full process-control chain (process manager → memory scheduler → kernel
// process, §4.2.3).  With publishing, every control-chain message is
// broadcast and recorded and the recorder is notified of each creation and
// destruction; the paper measured ~8.4x more CPU (5135 ms vs 608 ms for the
// 25 iterations), "directly attributable to the servicing of network
// protocols".

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/publishing_system.h"

namespace publishing {
namespace {

constexpr uint64_t kIterations = 25;
constexpr uint16_t kReplyChannel = 5;

class NullProgram : public UserProgram {
 public:
  void OnStart(KernelApi& api) override { (void)api; }
  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    (void)api;
    (void)msg;
  }
  void SaveState(Writer& w) const override { (void)w; }
  Status LoadState(Reader& r) override {
    (void)r;
    return Status::Ok();
  }
};

class CreatorProgram : public UserProgram {
 public:
  void OnStart(KernelApi& api) override { RequestNext(api); }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    if (msg.channel != kReplyChannel || PeekOp(msg.body) != KernelOp::kCreateProcessReply) {
      return;
    }
    auto reply = DecodeCreateProcessReply(msg.body);
    if (!reply.ok() || !reply->ok) {
      return;
    }
    if (msg.passed_link.IsValid()) {
      // Destroy the child over its DELIVERTOKERNEL link.
      api.Send(msg.passed_link, EncodeOpOnly(KernelOp::kDestroyProcess));
    }
    ++completed_;
    if (completed_ < kIterations) {
      RequestNext(api);
    }
  }

  void SaveState(Writer& w) const override { w.WriteU64(completed_); }
  Status LoadState(Reader& r) override {
    auto completed = r.ReadU64();
    if (!completed.ok()) {
      return completed.status();
    }
    completed_ = *completed;
    return Status::Ok();
  }

  uint64_t completed() const { return completed_; }

 private:
  void RequestNext(KernelApi& api) {
    api.RequestCreateProcess("null", kAnyNode, kReplyChannel, {});
  }

  uint64_t completed_ = 0;
};

struct Measurement {
  double total_cpu_ms = 0.0;
  double per_pair_ms = 0.0;
  uint64_t wire_frames = 0;
};

Measurement Measure(bool with_publishing) {
  PublishingSystemConfig config;
  config.cluster.node_count = 1;
  config.cluster.kernel.publishing_enabled = with_publishing;
  config.start_recovery_manager = false;
  PublishingSystem system(config);
  system.cluster().registry().Register("null", [] { return std::make_unique<NullProgram>(); });
  system.cluster().registry().Register("creator",
                                       [] { return std::make_unique<CreatorProgram>(); });
  system.RunFor(Seconds(2));  // Let the system processes settle.

  NodeKernel* kernel = system.cluster().kernel(NodeId{1});
  const SimDuration start_cpu = kernel->stats().kernel_cpu;
  auto pid = system.cluster().Spawn(NodeId{1}, "creator");
  system.RunFor(Seconds(3000));

  Measurement m;
  const auto* program = dynamic_cast<const CreatorProgram*>(kernel->ProgramFor(*pid));
  if (program == nullptr || program->completed() != kIterations) {
    std::fprintf(stderr, "fig5.8 bench: run did not complete (%llu)\n",
                 program ? static_cast<unsigned long long>(program->completed()) : 0ull);
    return m;
  }
  m.total_cpu_ms = ToMillis(kernel->stats().kernel_cpu - start_cpu);
  m.per_pair_ms = m.total_cpu_ms / kIterations;
  m.wire_frames = system.cluster().medium().stats().frames_sent;
  return m;
}

void PrintTables(BenchJson& json) {
  Measurement with = Measure(true);
  Measurement without = Measure(false);
  json.Set("with_publishing.total_cpu_ms", with.total_cpu_ms);
  json.Set("with_publishing.per_pair_ms", with.per_pair_ms);
  json.Set("without_publishing.total_cpu_ms", without.total_cpu_ms);
  json.Set("without_publishing.per_pair_ms", without.per_pair_ms);
  json.Set("cpu_ratio",
           without.total_cpu_ms > 0 ? with.total_cpu_ms / without.total_cpu_ms : 0.0);

  PrintHeader("Figure 5.8: Per Process Overheads (create+destroy a null process, 25x)");
  std::printf("  %-22s %16s %14s %12s\n", "", "total CPU (ms)", "per pair (ms)", "wire frames");
  PrintRule();
  std::printf("  %-22s %16.0f %14.1f %12llu\n", "with publishing", with.total_cpu_ms,
              with.per_pair_ms, static_cast<unsigned long long>(with.wire_frames));
  std::printf("  %-22s %16.0f %14.1f %12llu\n", "without publishing", without.total_cpu_ms,
              without.per_pair_ms, static_cast<unsigned long long>(without.wire_frames));
  PrintRule();
  std::printf("  ratio: %.1fx   (paper: 5135 ms vs 608 ms over 25 iterations = 8.4x)\n\n",
              without.total_cpu_ms > 0 ? with.total_cpu_ms / without.total_cpu_ms : 0.0);
}

void BM_CreateDestroyWithPublishing(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure(true));
  }
}
BENCHMARK(BM_CreateDestroyWithPublishing)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("fig5_8_per_process");
  publishing::PrintTables(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
