// Reproduces Figure 5.3: State Sizes for UNIX Processes — the distribution
// the queuing model samples process state sizes (and therefore checkpoint
// sizes) from, verified against a large sample drawn through the same path
// the simulation uses.

#include <benchmark/benchmark.h>

#include <array>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/queueing/simulation.h"

namespace publishing {
namespace {

void PrintTables(BenchJson& json) {
  PrintHeader("Figure 5.3: State Sizes for UNIX Processes");
  std::printf("  %-14s %12s %14s\n", "state size", "fraction", "sampled (n=1e5)");
  PrintRule();

  // Draw through the distribution exactly as RunQueueingSimulation does.
  Rng rng(12345);
  std::array<uint64_t, 5> counts{};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    double u = rng.NextDouble();
    double acc = 0.0;
    for (size_t b = 0; b < StateSizeDistribution().size(); ++b) {
      acc += StateSizeDistribution()[b].fraction;
      if (u <= acc) {
        ++counts[b];
        break;
      }
    }
  }
  for (size_t b = 0; b < StateSizeDistribution().size(); ++b) {
    const StateSizeBucket& bucket = StateSizeDistribution()[b];
    const double sampled = 100.0 * static_cast<double>(counts[b]) / kSamples;
    std::printf("  %10zu KB %11.0f%% %13.1f%%\n", bucket.bytes / 1024, bucket.fraction * 100,
                sampled);
    json.Set("sampled_fraction." + std::to_string(bucket.bytes / 1024) + "kb",
             sampled / 100.0);
  }
  PrintRule();
  std::printf("  mean state size: %.1f KB\n\n", MeanStateBytes() / 1024.0);
  json.Set("mean_state_bytes", MeanStateBytes());
}

void BM_SampleStateSizes(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextDouble());
  }
}
BENCHMARK(BM_SampleStateSizes);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("fig5_3_state_sizes");
  publishing::PrintTables(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
