// Reproduces Figures 6.3/6.4: the token ring with a recorder acknowledge
// field.
//
// Measures (a) delivery latency as a function of where the destination sits
// relative to the recorder on the ring — destinations upstream of the
// recorder pay a full extra rotation, because they must ignore the frame
// until its ack field has been filled — and (b) the checksum-invalidation
// veto: when the recorder receives a frame incorrectly it complements the
// trailing checksum, so the destination rejects the frame too and the
// transport retransmits.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/link_layer.h"
#include "src/net/token_ring.h"
#include "src/transport/endpoint.h"

namespace publishing {
namespace {

class CountingListener : public PromiscuousListener {
 public:
  bool OnWireFrame(const Frame& frame) override {
    (void)frame;
    ++seen_;
    return true;
  }
  uint64_t seen() const { return seen_; }

 private:
  uint64_t seen_ = 0;
};

void PrintLatencyByPosition(BenchJson& json) {
  PrintHeader("Token ring: delivery latency vs destination position (Fig 6.3/6.4)");
  std::printf("  ring: 8 stations, recorder at position 0 (= node 1), sender at node 2\n");
  std::printf("  %8s %16s %18s\n", "dst node", "latency (ms)", "extra rotations");
  PrintRule();

  for (uint32_t dst = 3; dst <= 8; ++dst) {
    Simulator sim;
    TokenRingOptions options;
    options.recorder_position = 0;
    TokenRing ring(&sim, MediumTimings{}, MediumFaults{}, 5, options);
    CountingListener listener;
    ring.AttachListener(&listener);

    SimTime delivered_at = -1;
    std::map<uint32_t, std::unique_ptr<TransportEndpoint>> endpoints;
    for (uint32_t node = 1; node <= 8; ++node) {
      endpoints[node] = std::make_unique<TransportEndpoint>(
          &sim, &ring, NodeId{node}, TransportOptions{},
          [&delivered_at, &sim](const Packet&) { delivered_at = sim.Now(); });
    }

    Packet packet;
    packet.header.id = MessageId{ProcessId{NodeId{2}, 9}, 1};
    packet.header.src_process = ProcessId{NodeId{2}, 9};
    packet.header.dst_process = ProcessId{NodeId{dst}, 9};
    packet.header.dst_node = NodeId{dst};
    packet.header.flags = kFlagGuaranteed;
    packet.body = Bytes(256, 0x11);
    const SimTime sent_at = sim.Now();
    endpoints[2]->Send(std::move(packet));
    sim.RunFor(Seconds(1));

    const double latency_ms = delivered_at < 0 ? -1.0 : ToMillis(delivered_at - sent_at);
    std::printf("  %8u %16.3f %18llu\n", dst, latency_ms,
                static_cast<unsigned long long>(ring.extra_rotations()));
    json.Set("latency_ms.dst" + std::to_string(dst), latency_ms);
  }
  std::printf("\n");
}

void PrintVetoBehaviour(BenchJson& json) {
  PrintHeader("Token ring: recorder checksum-invalidation veto (§6.1.2)");

  Simulator sim;
  TokenRingOptions options;
  MediumFaults faults;
  faults.listener_miss_rate = 0.3;  // The recorder misreads 30% of frames.
  TokenRing ring(&sim, MediumTimings{}, faults, 21, options);
  CountingListener listener;
  ring.AttachListener(&listener);

  uint64_t delivered = 0;
  std::map<uint32_t, std::unique_ptr<TransportEndpoint>> endpoints;
  for (uint32_t node = 1; node <= 4; ++node) {
    endpoints[node] = std::make_unique<TransportEndpoint>(
        &sim, &ring, NodeId{node}, TransportOptions{},
        [&delivered](const Packet&) { ++delivered; });
  }
  for (uint64_t i = 0; i < 50; ++i) {
    Packet packet;
    packet.header.id = MessageId{ProcessId{NodeId{2}, 9}, i + 1};
    packet.header.src_process = ProcessId{NodeId{2}, 9};
    packet.header.dst_process = ProcessId{NodeId{3}, 9};
    packet.header.dst_node = NodeId{3};
    packet.header.flags = kFlagGuaranteed;
    packet.body = Bytes(128, 0x22);
    endpoints[2]->Send(std::move(packet));
  }
  sim.RunFor(Seconds(60));

  std::printf("  recorder miss rate        : 30%%\n");
  std::printf("  frames vetoed (invalidated): %llu\n",
              static_cast<unsigned long long>(ring.stats().frames_vetoed));
  std::printf("  messages delivered exactly once despite vetoes: %llu / 50\n",
              static_cast<unsigned long long>(delivered));
  std::printf("  retransmits by sender      : %llu\n\n",
              static_cast<unsigned long long>(endpoints[2]->stats().retransmits));
  json.Set("veto.frames_vetoed", static_cast<double>(ring.stats().frames_vetoed));
  json.Set("veto.delivered", static_cast<double>(delivered));
  json.Set("veto.retransmits", static_cast<double>(endpoints[2]->stats().retransmits));
}

void BM_TokenRingRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    TokenRing ring(&sim, MediumTimings{}, MediumFaults{}, 5, TokenRingOptions{});
    benchmark::DoNotOptimize(&ring);
  }
}
BENCHMARK(BM_TokenRingRoundTrip);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("fig6_token_ring");
  publishing::PrintLatencyByPosition(json);
  publishing::PrintVetoBehaviour(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
