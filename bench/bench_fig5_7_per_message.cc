// Reproduces Figures 5.6/5.7: the per-message cost of publishing.
//
// Runs the Figure 5.6 measurement program — a process that sends itself a
// message 512 times — on the full DEMOS/MP stack twice: once with publishing
// (every intranode message is broadcast on the network for the recorder) and
// once without (intranode messages short-circuit the network).  Reports the
// elapsed (virtual) real time and kernel CPU time per send/receive pair.
//
// Paper shape: publishing adds ~2 ms of transmission real time and ~26 ms of
// kernel CPU per message, "due entirely to the network protocol and to the
// servicing of the network device interrupts" (§5.2.1).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/publishing_system.h"

namespace publishing {
namespace {

constexpr uint64_t kMessages = 512;

// The Figure 5.6 program: "Send the message 512 times" to itself.
class SelfSenderProgram : public UserProgram {
 public:
  void OnStart(KernelApi& api) override {
    auto link = api.CreateLink(/*channel=*/1, /*code=*/0);
    if (!link.ok()) {
      return;
    }
    self_link_ = link->value;
    Send(api);
  }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    (void)msg;
    ++received_;
    if (received_ < kMessages) {
      Send(api);
    }
  }

  void SaveState(Writer& w) const override {
    w.WriteU32(self_link_);
    w.WriteU64(received_);
  }
  Status LoadState(Reader& r) override {
    auto link = r.ReadU32();
    if (!link.ok()) {
      return link.status();
    }
    self_link_ = *link;
    auto received = r.ReadU64();
    if (!received.ok()) {
      return received.status();
    }
    received_ = *received;
    return Status::Ok();
  }

  uint64_t received() const { return received_; }

 private:
  void Send(KernelApi& api) { api.Send(LinkId{self_link_}, Bytes(1024, 0xAB)); }

  uint32_t self_link_ = 0;
  uint64_t received_ = 0;
};

struct Measurement {
  double real_ms_per_msg = 0.0;
  double cpu_ms_per_msg = 0.0;
  uint64_t wire_frames = 0;
};

Measurement Measure(bool with_publishing, bool node_unit = false) {
  PublishingSystemConfig config;
  config.cluster.node_count = 1;
  config.cluster.start_system_processes = false;
  config.cluster.kernel.publishing_enabled = with_publishing;
  config.node_unit_mode = node_unit;
  config.start_recovery_manager = false;  // Quiet network: no watchdog pings.
  PublishingSystem system(config);
  system.cluster().registry().Register("self-sender",
                                       [] { return std::make_unique<SelfSenderProgram>(); });

  NodeKernel* kernel = system.cluster().kernel(NodeId{1});
  const SimTime start_time = system.sim().Now();
  const SimDuration start_cpu = kernel->stats().kernel_cpu;

  auto pid = system.cluster().Spawn(NodeId{1}, "self-sender");
  const SimTime deadline = system.sim().Now() + Seconds(600);
  while (system.sim().Now() < deadline) {
    const auto* p = dynamic_cast<const SelfSenderProgram*>(kernel->ProgramFor(*pid));
    if (p != nullptr && p->received() >= kMessages) {
      break;
    }
    if (!system.sim().Step()) {
      break;
    }
  }

  const auto* program = dynamic_cast<const SelfSenderProgram*>(kernel->ProgramFor(*pid));
  Measurement m;
  if (program == nullptr || program->received() != kMessages) {
    std::fprintf(stderr, "fig5.7 bench: run did not complete\n");
    return m;
  }
  m.real_ms_per_msg = ToMillis(system.sim().Now() - start_time) / kMessages;
  m.cpu_ms_per_msg = ToMillis(kernel->stats().kernel_cpu - start_cpu) / kMessages;
  m.wire_frames = system.cluster().medium().stats().frames_sent;
  return m;
}

void PrintTables(BenchJson& json) {
  Measurement with = Measure(true);
  Measurement without = Measure(false);
  Measurement node_unit = Measure(true, /*node_unit=*/true);
  json.Set("with_publishing.real_ms_per_msg", with.real_ms_per_msg);
  json.Set("with_publishing.cpu_ms_per_msg", with.cpu_ms_per_msg);
  json.Set("with_publishing.wire_frames", static_cast<double>(with.wire_frames));
  json.Set("without_publishing.real_ms_per_msg", without.real_ms_per_msg);
  json.Set("without_publishing.cpu_ms_per_msg", without.cpu_ms_per_msg);
  json.Set("node_unit.real_ms_per_msg", node_unit.real_ms_per_msg);
  json.Set("node_unit.cpu_ms_per_msg", node_unit.cpu_ms_per_msg);
  json.Set("overhead.real_ms_per_msg", with.real_ms_per_msg - without.real_ms_per_msg);
  json.Set("overhead.cpu_ms_per_msg", with.cpu_ms_per_msg - without.cpu_ms_per_msg);

  PrintHeader("Figure 5.7: Per Message Overheads (times per intranode send/receive)");
  std::printf("  %-26s %14s %14s %12s\n", "", "realTime (ms)", "cpuTime (ms)", "wire frames");
  PrintRule();
  std::printf("  %-26s %14.2f %14.2f %12llu\n", "with publishing", with.real_ms_per_msg,
              with.cpu_ms_per_msg, static_cast<unsigned long long>(with.wire_frames));
  std::printf("  %-26s %14.2f %14.2f %12llu\n", "without publishing", without.real_ms_per_msg,
              without.cpu_ms_per_msg, static_cast<unsigned long long>(without.wire_frames));
  std::printf("  %-26s %14.2f %14.2f %12llu\n", "node-unit mode (§6.6.2)",
              node_unit.real_ms_per_msg, node_unit.cpu_ms_per_msg,
              static_cast<unsigned long long>(node_unit.wire_frames));
  PrintRule();
  std::printf("  publishing overhead: +%.2f ms real, +%.2f ms CPU per message\n",
              with.real_ms_per_msg - without.real_ms_per_msg,
              with.cpu_ms_per_msg - without.cpu_ms_per_msg);
  std::printf("  paper: +~2 ms transmission, +26 ms CPU (network protocol + interrupts);\n"
              "  node-unit recovery (§6.6.2) eliminates the intranode publishing cost\n"
              "  while keeping the node recoverable as a unit.\n\n");
}

void BM_PerMessageWithPublishing(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure(true));
  }
}
BENCHMARK(BM_PerMessageWithPublishing)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("fig5_7_per_message");
  publishing::PrintTables(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
