// Reproduces Figures 6.1/6.2: standard Ethernet vs Acknowledging Ethernet
// under light and heavy load.
//
// On a standard Ethernet, end-to-end acknowledgements are ordinary frames;
// under load they contend with data frames and collide ("On the normal
// Ethernet this acknowledge, with high probability, will collide with a
// transmission from some other node", §6.1.1).  The Acknowledging Ethernet
// reserves a slot after each frame for the acknowledgement, so acks never
// collide and the channel is better utilized.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/net/ethernet.h"
#include "src/transport/endpoint.h"

namespace publishing {
namespace {

struct LoadResult {
  double collisions_per_data_frame = 0.0;
  double mean_queue_delay_ms = 0.0;
  double retransmit_rate = 0.0;
  uint64_t delivered = 0;
};

// N nodes exchanging guaranteed messages (which generate transport acks) at
// `rate_per_node` messages/second for `duration`.
LoadResult RunLoad(bool acknowledging, double rate_per_node, SimDuration duration) {
  Simulator sim;
  EthernetOptions options;
  options.acknowledging = acknowledging;
  Ethernet ether(&sim, MediumTimings{}, MediumFaults{}, /*fault_seed=*/3, options);

  constexpr size_t kNodes = 6;
  uint64_t delivered = 0;
  std::vector<std::unique_ptr<TransportEndpoint>> endpoints;
  for (size_t i = 0; i < kNodes; ++i) {
    endpoints.push_back(std::make_unique<TransportEndpoint>(
        &sim, &ether, NodeId{static_cast<uint32_t>(i + 1)}, TransportOptions{},
        [&delivered](const Packet&) { ++delivered; }));
  }

  Rng rng(17);
  uint64_t seq = 0;
  std::function<void(size_t)> arrival = [&](size_t node) {
    const SimDuration gap = SecondsF(rng.NextExponential(1.0 / rate_per_node));
    sim.ScheduleAfter(gap, [&, node] {
      if (sim.Now() >= duration) {
        return;
      }
      Packet packet;
      ProcessId src{NodeId{static_cast<uint32_t>(node + 1)}, 10};
      size_t dst = (node + 1 + rng.NextBelow(kNodes - 1)) % kNodes;
      packet.header.id = MessageId{src, ++seq};
      packet.header.src_process = src;
      packet.header.dst_process = ProcessId{NodeId{static_cast<uint32_t>(dst + 1)}, 10};
      packet.header.dst_node = NodeId{static_cast<uint32_t>(dst + 1)};
      packet.header.flags = kFlagGuaranteed;
      packet.body = Bytes(512, 0x55);
      endpoints[node]->Send(std::move(packet));
      arrival(node);
    });
  };
  for (size_t i = 0; i < kNodes; ++i) {
    arrival(i);
  }
  sim.RunUntil(duration + Seconds(2));

  LoadResult result;
  const MediumStats& stats = ether.stats();
  uint64_t data_frames = stats.frames_sent;
  result.collisions_per_data_frame =
      data_frames == 0 ? 0.0
                       : static_cast<double>(stats.collisions) / static_cast<double>(data_frames);
  result.mean_queue_delay_ms = stats.queue_delay_ms.mean();
  uint64_t sent = 0;
  uint64_t retransmits = 0;
  for (const auto& endpoint : endpoints) {
    sent += endpoint->stats().data_sent;
    retransmits += endpoint->stats().retransmits;
  }
  result.retransmit_rate = sent == 0 ? 0.0 : static_cast<double>(retransmits) / sent;
  result.delivered = delivered;
  return result;
}

void PrintTables(BenchJson& json) {
  struct Scenario {
    const char* name;
    const char* key;
    double rate;
  };
  const Scenario scenarios[] = {
      {"lightly loaded (Fig 6.1)", "light", 10.0},
      {"heavily loaded (Fig 6.2)", "heavy", 70.0},
  };
  for (const Scenario& scenario : scenarios) {
    PrintHeader(std::string("Ethernet vs Acknowledging Ethernet — ") + scenario.name);
    std::printf("  %-24s %18s %16s %12s\n", "", "collisions/frame", "queue delay ms",
                "delivered");
    PrintRule();
    LoadResult plain = RunLoad(false, scenario.rate, Seconds(30));
    LoadResult acking = RunLoad(true, scenario.rate, Seconds(30));
    std::printf("  %-24s %18.3f %16.2f %12llu\n", "standard Ethernet",
                plain.collisions_per_data_frame, plain.mean_queue_delay_ms,
                static_cast<unsigned long long>(plain.delivered));
    std::printf("  %-24s %18.3f %16.2f %12llu\n", "Acknowledging Ethernet",
                acking.collisions_per_data_frame, acking.mean_queue_delay_ms,
                static_cast<unsigned long long>(acking.delivered));
    const std::string prefix(scenario.key);
    json.Set(prefix + ".plain.collisions_per_frame", plain.collisions_per_data_frame);
    json.Set(prefix + ".plain.queue_delay_ms", plain.mean_queue_delay_ms);
    json.Set(prefix + ".plain.delivered", static_cast<double>(plain.delivered));
    json.Set(prefix + ".acking.collisions_per_frame", acking.collisions_per_data_frame);
    json.Set(prefix + ".acking.queue_delay_ms", acking.mean_queue_delay_ms);
    json.Set(prefix + ".acking.delivered", static_cast<double>(acking.delivered));
  }
  std::printf("\n  paper shape: under light load the two behave alike; under heavy load\n"
              "  the standard Ethernet wastes bandwidth on ack collisions while the\n"
              "  reserved ack slot keeps the Acknowledging Ethernet collision-free.\n\n");
}

void BM_HeavyLoadAcknowledging(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunLoad(true, 70.0, Seconds(5)));
  }
}
BENCHMARK(BM_HeavyLoadAcknowledging)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("fig6_ether_ack");
  publishing::PrintTables(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
