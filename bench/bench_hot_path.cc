// Hot-path microbenchmarks for the zero-copy + event-loop rewrite.
//
// Measures, and persists to BENCH_hot_path.json:
//   - raw simulator event throughput (events/sec) for the slab/intrusive-heap
//     queue against an in-file reimplementation of the previous design
//     (std::priority_queue of {when, id, std::function} with lazy
//     cancellation bitsets), on the schedule/fire/cancel mix the transport
//     layer actually generates;
//   - end-to-end wall-clock ns per delivered frame on the full stack
//     (ping-pong over the acknowledging ethernet with the recorder
//     publishing every message);
//   - bytes physically copied and logically shared per published message on
//     a fault-free run (the zero-copy acceptance criterion: copied == 0);
//   - recorder publish-path saturation: how many overheard messages per
//     wall-clock second the record-and-append path absorbs.
//
// The binary exits non-zero if the determinism self-check fails (two
// identical instrumented runs must serialize byte-identical metrics), so CI
// can gate on it.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/buffer.h"
#include "src/core/publishing_system.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// The previous event queue, reproduced verbatim in miniature: a
// std::priority_queue of events carrying their std::function payload through
// every sift, plus the two unbounded id-indexed bitsets that implemented
// lazy cancellation.  Kept here as the baseline the rewrite is measured
// against.
// ---------------------------------------------------------------------------

class LegacySimulator {
 public:
  using Action = std::function<void()>;

  SimTime Now() const { return now_; }

  EventId ScheduleAt(SimTime when, Action action) {
    EventId id{++next_id_};
    queue_.push(Event{when, id.value, std::move(action)});
    ++pending_;
    return id;
  }

  EventId ScheduleAfter(SimDuration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  bool Cancel(EventId id) {
    if (!id.IsValid() || id.value > next_id_) {
      return false;
    }
    if (cancelled_.size() <= id.value) {
      cancelled_.resize(next_id_ + 1, false);
    }
    if (fired_.size() <= id.value) {
      fired_.resize(next_id_ + 1, false);
    }
    if (cancelled_[id.value] || fired_[id.value]) {
      return false;
    }
    cancelled_[id.value] = true;
    --pending_;
    return true;
  }

  bool Step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (ev.id < cancelled_.size() && cancelled_[ev.id]) {
        continue;
      }
      if (fired_.size() <= ev.id) {
        fired_.resize(ev.id + 1, false);
      }
      fired_[ev.id] = true;
      --pending_;
      now_ = ev.when;
      ev.action();
      return true;
    }
    return false;
  }

  void Run() {
    while (Step()) {
    }
  }

  size_t pending_events() const { return pending_; }

 private:
  struct Event {
    SimTime when;
    uint64_t id;
    Action action;

    bool operator<(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return id > other.id;
    }
  };

  SimTime now_ = 0;
  uint64_t next_id_ = 0;
  size_t pending_ = 0;
  std::priority_queue<Event> queue_;
  std::vector<bool> cancelled_;
  std::vector<bool> fired_;
};

// ---------------------------------------------------------------------------
// Event churn workload: the mix the transport layer generates.  kChains
// self-rescheduling handler chains (delivery -> next delivery), and per
// firing one retransmission timer that is armed and then cancelled by the
// "ack".  Handler captures are sized like real ones (header-ish payload),
// within the rewrite's inline budget.
// ---------------------------------------------------------------------------

struct HandlerContext {
  uint64_t src = 0;
  uint64_t dst = 0;
  uint64_t sequence = 0;
  uint64_t attempt = 0;
};

template <typename Sim>
struct ChurnDriver {
  Sim* sim;
  uint64_t limit = 0;
  uint64_t fired = 0;

  void Fire(HandlerContext ctx) {
    ++fired;
    // Retransmission timer: armed on send, cancelled when the ack arrives.
    EventId timer = sim->ScheduleAfter(Millis(250), [ctx] {
      benchmark::DoNotOptimize(ctx.sequence);
    });
    sim->Cancel(timer);
    if (fired + sim->pending_events() < limit) {
      ctx.sequence += 1;
      sim->ScheduleAfter(Millis(3) + static_cast<SimDuration>(ctx.src % 7),
                         [this, ctx] { Fire(ctx); });
    }
  }
};

template <typename Sim>
double MeasureEventsPerSec(uint64_t total_events) {
  Sim sim;
  ChurnDriver<Sim> driver{&sim, total_events};
  constexpr uint64_t kChains = 64;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kChains; ++i) {
    HandlerContext ctx{i, i ^ 1, 0, 0};
    sim.ScheduleAfter(static_cast<SimDuration>(i), [&driver, ctx] { driver.Fire(ctx); });
  }
  sim.Run();
  const double elapsed = SecondsSince(start);
  // Every firing also scheduled + cancelled a timer; count both sides of
  // that work as events processed.
  const double events = static_cast<double>(driver.fired) * 2.0;
  return events / elapsed;
}

void RunEventThroughput(BenchJson& json) {
  PrintHeader("Simulator event throughput: slab heap vs legacy priority_queue");
  constexpr uint64_t kEvents = 2'000'000;
  // Interleave and keep the best of 3 to shake out allocator warmup noise.
  double best_new = 0.0;
  double best_legacy = 0.0;
  for (int round = 0; round < 3; ++round) {
    best_legacy = std::max(best_legacy, MeasureEventsPerSec<LegacySimulator>(kEvents));
    best_new = std::max(best_new, MeasureEventsPerSec<Simulator>(kEvents));
  }
  const double ratio = best_new / best_legacy;
  std::printf("  legacy queue : %12.0f events/sec\n", best_legacy);
  std::printf("  slab heap    : %12.0f events/sec\n", best_new);
  std::printf("  speedup      : %12.2fx\n", ratio);
  json.Set("events_per_sec_legacy", best_legacy);
  json.Set("events_per_sec_new", best_new);
  json.Set("speedup_ratio", ratio);
}

// ---------------------------------------------------------------------------
// Full-stack frame path + zero-copy accounting.
// ---------------------------------------------------------------------------

struct FrameRun {
  double wall_seconds = 0;
  uint64_t frames_delivered = 0;
  uint64_t messages_published = 0;
  BufferStats buffers;
};

FrameRun RunFramePath(uint64_t pings) {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register(
      "pinger", [pings] { return std::make_unique<PingerProgram>(pings); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  ResetBufferStats();
  const auto start = std::chrono::steady_clock::now();
  // Step until every ping has been overheard and published (the recovery
  // manager's watchdogs re-arm forever, so the queue never drains on its own).
  while (system.recorder().stats().messages_published < pings && system.sim().Step()) {
  }
  FrameRun run;
  run.wall_seconds = SecondsSince(start);
  run.buffers = GetBufferStats();
  run.frames_delivered = system.cluster().medium().stats().frames_delivered;
  run.messages_published = system.recorder().stats().messages_published;
  return run;
}

void RunFramePathBench(BenchJson& json) {
  PrintHeader("End-to-end frame path (ping-pong, recorder publishing, no faults)");
  const FrameRun run = RunFramePath(/*pings=*/5000);
  const double ns_per_frame =
      run.wall_seconds * 1e9 / static_cast<double>(run.frames_delivered);
  const double copied_per_msg = static_cast<double>(run.buffers.bytes_copied) /
                                static_cast<double>(run.messages_published);
  const double shared_per_msg = static_cast<double>(run.buffers.bytes_shared) /
                                static_cast<double>(run.messages_published);
  std::printf("  frames delivered      : %llu\n",
              static_cast<unsigned long long>(run.frames_delivered));
  std::printf("  messages published    : %llu\n",
              static_cast<unsigned long long>(run.messages_published));
  std::printf("  wall ns/frame         : %.0f\n", ns_per_frame);
  std::printf("  payload bytes copied  : %llu (%.1f per published message)\n",
              static_cast<unsigned long long>(run.buffers.bytes_copied), copied_per_msg);
  std::printf("  payload bytes shared  : %llu (%.1f per published message)\n",
              static_cast<unsigned long long>(run.buffers.bytes_shared), shared_per_msg);
  json.Set("frames_delivered", static_cast<double>(run.frames_delivered));
  json.Set("ns_per_frame", ns_per_frame);
  json.Set("bytes_copied_per_published_message", copied_per_msg);
  json.Set("bytes_shared_per_published_message", shared_per_msg);
  if (run.buffers.bytes_copied != 0) {
    std::fprintf(stderr,
                 "hot_path: FAIL — %llu payload bytes copied on a fault-free "
                 "publish path (expected 0)\n",
                 static_cast<unsigned long long>(run.buffers.bytes_copied));
    std::exit(1);
  }
  std::printf("  zero-copy check       : PASS (0 bytes copied outside faults/disk)\n");
}

// ---------------------------------------------------------------------------
// Recorder saturation: overheard message rate the record-and-append path
// absorbs, measured by driving RecordParsedPacket directly.
// ---------------------------------------------------------------------------

void RunRecorderSaturation(BenchJson& json) {
  PrintHeader("Recorder publish-path saturation (direct overhear feed)");
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);

  Packet packet;
  packet.header.src_process = ProcessId{NodeId{1}, 7};
  packet.header.dst_process = ProcessId{NodeId{2}, 9};
  packet.header.src_node = NodeId{1};
  packet.header.dst_node = NodeId{2};
  packet.header.flags = kFlagGuaranteed;
  packet.body = Bytes(128, 0xAB);

  constexpr uint64_t kMessages = 200'000;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t seq = 1; seq <= kMessages; ++seq) {
    packet.header.id = MessageId{packet.header.src_process, seq};
    Buffer wire{SerializePacket(packet)};
    if (!system.recorder().RecordParsedPacket(packet, wire)) {
      std::fprintf(stderr, "hot_path: recorder refused message %llu\n",
                   static_cast<unsigned long long>(seq));
      std::exit(1);
    }
  }
  const double elapsed = SecondsSince(start);
  const double rate = static_cast<double>(kMessages) / elapsed;
  std::printf("  %llu messages recorded in %.2f s  ->  %.0f msgs/sec saturation\n",
              static_cast<unsigned long long>(kMessages), elapsed, rate);
  json.Set("recorder_saturation_msgs_per_sec", rate);
}

// ---------------------------------------------------------------------------
// Determinism self-check: two identical instrumented runs (including a crash
// and recovery) must serialize byte-identical metrics.
// ---------------------------------------------------------------------------

std::string InstrumentedMetricsSnapshot() {
  MetricsRegistry registry;
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);
  Observability obs;
  obs.metrics = &registry;
  system.EnableObservability(obs);
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(50); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  system.RunFor(Seconds(2));
  if (!system.CrashProcess(*echo).ok() || !system.RunUntilRecovered(*echo, Seconds(30))) {
    std::fprintf(stderr, "hot_path: determinism run failed to recover\n");
    std::exit(1);
  }
  system.RunFor(Seconds(1));
  return registry.ToJson();
}

void RunDeterminismCheck(BenchJson& json) {
  PrintHeader("Determinism self-check");
  const std::string a = InstrumentedMetricsSnapshot();
  const std::string b = InstrumentedMetricsSnapshot();
  if (a != b) {
    std::fprintf(stderr,
                 "hot_path: FAIL — identical seeds produced different metrics "
                 "snapshots (%zu vs %zu bytes)\n",
                 a.size(), b.size());
    std::exit(1);
  }
  std::printf("  two instrumented crash/recovery runs: metrics byte-identical  PASS\n");
  json.Set("determinism_ok", 1.0);
}

// ---------------------------------------------------------------------------
// google-benchmark timing sections for iterating on the hot path.
// ---------------------------------------------------------------------------

void BM_EventChurnSlabHeap(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    ChurnDriver<Simulator> driver{&sim, 100'000};
    sim.ScheduleAfter(0, [&driver] { driver.Fire(HandlerContext{}); });
    sim.Run();
    benchmark::DoNotOptimize(driver.fired);
  }
}
BENCHMARK(BM_EventChurnSlabHeap)->Unit(benchmark::kMillisecond);

void BM_EventChurnLegacyQueue(benchmark::State& state) {
  for (auto _ : state) {
    LegacySimulator sim;
    ChurnDriver<LegacySimulator> driver{&sim, 100'000};
    sim.ScheduleAfter(0, [&driver] { driver.Fire(HandlerContext{}); });
    sim.Run();
    benchmark::DoNotOptimize(driver.fired);
  }
}
BENCHMARK(BM_EventChurnLegacyQueue)->Unit(benchmark::kMillisecond);

void BM_PingPongThousand(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunFramePath(1000));
  }
}
BENCHMARK(BM_PingPongThousand)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("hot_path");
  publishing::RunEventThroughput(json);
  publishing::RunFramePathBench(json);
  publishing::RunRecorderSaturation(json);
  publishing::RunDeterminismCheck(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
