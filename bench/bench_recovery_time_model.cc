// Reproduces the §3.2.3 recovery-time bound model, including the worked
// example of Figure 3.1:
//
//   t=0+   (just after a 4-page checkpoint)          t_max = 140 ms
//   t=200  (100 ms of CPU consumed)                  t_max = 340 ms
//   t=200+ (after receiving a 500-byte message)      t_max = 347 ms
//
// and sweeps t_max against messages-received-since-checkpoint, the curve the
// recovery-bound checkpoint policy clamps.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/recovery_time_model.h"

namespace publishing {
namespace {

void PrintWorkedExample() {
  PrintHeader("§3.2.3 worked example (Figure 3.1 parameters)");
  RecoveryTimeParams params;  // Defaults are the worked example's values.
  std::printf("  t_cfix=%.0fms t_page=%.0fms/page t_mfix=%.0fms t_byte=%.2fms/byte f_cpu=%.1f\n",
              ToMillis(params.t_cfix), ToMillis(params.t_page), ToMillis(params.t_mfix),
              ToMillis(params.t_byte), params.f_cpu);
  PrintRule();

  RecoveryTimeModel model(params);
  // Checkpoint of 4 pages at t=0.
  model.OnCheckpoint(/*pages=*/4, /*now=*/0);
  std::printf("  immediately after checkpoint : t_max = %7.0f ms   (paper: 140 ms)\n",
              ToMillis(model.MaxRecoveryTime(0)));

  // 100 ms of execution later (the example's t=200 ms wall point, at which
  // the process has accumulated 100 ms of CPU at f_cpu=0.5).
  std::printf("  after 100 ms of execution    : t_max = %7.0f ms   (paper: 340 ms)\n",
              ToMillis(model.MaxRecoveryTime(Millis(100))));

  // Immediately after a 500-byte message.
  model.OnMessage(500);
  std::printf("  after a 500-byte message     : t_max = %7.0f ms   (paper: ~347 ms)\n",
              ToMillis(model.MaxRecoveryTime(Millis(100))));
  std::printf("\n");
}

void PrintSweep() {
  PrintHeader("t_max vs messages received since a 16 KB checkpoint (1 KB messages)");
  RecoveryTimeParams params;
  std::printf("  %10s %14s %14s %14s %12s\n", "messages", "reload (ms)", "replay (ms)",
              "compute (ms)", "t_max (ms)");
  PrintRule();
  for (uint64_t messages : {0, 10, 50, 100, 500, 1000}) {
    RecoveryTimeModel model(params);
    model.OnCheckpoint(/*pages=*/4, /*now=*/0);
    for (uint64_t i = 0; i < messages; ++i) {
      model.OnMessage(1024);
    }
    // Assume the process consumed 1 ms of CPU per message.
    SimTime now = Millis(static_cast<int64_t>(messages));
    std::printf("  %10llu %14.0f %14.0f %14.0f %12.0f\n",
                static_cast<unsigned long long>(messages), ToMillis(model.ReloadTime()),
                ToMillis(model.ReplayTime()), ToMillis(model.ComputeTime(now)),
                ToMillis(model.MaxRecoveryTime(now)));
  }
  std::printf("\n");
}

void BM_RecoveryTimeModel(benchmark::State& state) {
  RecoveryTimeModel model;
  model.OnCheckpoint(4, 0);
  for (auto _ : state) {
    model.OnMessage(1024);
    benchmark::DoNotOptimize(model.MaxRecoveryTime(Millis(100)));
  }
}
BENCHMARK(BM_RecoveryTimeModel);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::PrintWorkedExample();
  publishing::PrintSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
