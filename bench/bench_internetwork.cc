// Internetwork scaling study (DESIGN.md §13): users vs segments.
//
// A single recorder saturates around 115 users (bench_users_capacity); the
// multi-segment internetwork shards that responsibility, so aggregate
// capacity should scale with the segment count while per-conversation latency
// stays near the single-segment baseline (cross-segment pairs pay the
// gateway hops).  This bench sweeps a ring internetwork at 1/2/4/8 segments
// with a fixed per-segment population, drives every user to completion, and
// reports the publish-ack latency distribution (virtual time from first send
// to the end-to-end acknowledgement) per sweep point, with the invariant
// oracle watching every lifecycle transition.
//
// Emits BENCH_internetwork.json (flat, deterministic: virtual-time numbers
// only, so two same-seed runs produce byte-identical files — CI diffs them)
// plus internetwork_oracle_report.json (the largest sweep point's oracle
// report).  Exits non-zero if any conversation stalls, any invariant trips,
// or a multi-segment point somehow never crosses a gateway.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/internet/internet.h"
#include "src/obs/lifecycle.h"
#include "src/obs/observability.h"
#include "src/obs/oracle.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

constexpr size_t kNodesPerSegment = 8;
constexpr size_t kUsersPerSegment = 2500;
constexpr uint64_t kPingsPerUser = 2;
constexpr size_t kWaves = 10;

struct SweepResult {
  size_t segments = 0;
  size_t users = 0;
  size_t completed = 0;
  uint64_t messages = 0;
  uint64_t forwarded = 0;
  uint64_t gateway_drops = 0;
  uint64_t violations = 0;
  StatAccumulator publish_ack_ms;
  std::string oracle_report;
};

SweepResult RunSweepPoint(size_t segments) {
  InternetConfig config;
  config.segments = segments;
  config.nodes_per_segment = kNodesPerSegment;
  config.seed = 7;
  // No faults in this study, so the only retransmission trigger would be
  // queueing delay itself; push the timer far past any backlog a 2500-user
  // segment can build, or retransmit storms poison the latency numbers.
  config.kernel.transport.retransmit_timeout = Seconds(60);
  config.kernel.transport.max_retransmit_timeout = Seconds(120);
  // Headroom over the default 64-frame queue: wave fronts of cross-segment
  // conversations arrive in bursts.
  config.gateway.max_queue_frames = 256;
  config.gateway.max_queue_bytes = 1024 * 1024;
  // No crashes: keep the recovery machinery out of the traffic.
  config.start_recovery_managers = false;

  InvariantOracle oracle(OracleOptions{.policy = OraclePolicy::kCount});
  Internet net(config);
  LifecycleTracker lifecycle(&net.sim(), /*max_messages=*/1 << 18);
  lifecycle.AttachOracle(&oracle);
  Observability obs;
  obs.lifecycle = &lifecycle;
  net.EnableObservability(obs);

  net.registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  net.registry().Register("pinger",
                          [] { return std::make_unique<PingerProgram>(kPingsPerUser); });

  // One echo server per node; pingers link to them.
  std::vector<std::vector<ProcessId>> echoes(segments);
  for (size_t s = 0; s < segments; ++s) {
    for (size_t n = 0; n < kNodesPerSegment; ++n) {
      auto echo = net.Spawn(Internet::ProcessingNode(s, n), "echo");
      if (!echo.ok()) {
        std::fprintf(stderr, "bench_internetwork: spawn echo failed: %s\n",
                     echo.status().ToString().c_str());
        std::exit(1);
      }
      echoes[s].push_back(*echo);
    }
  }

  // Users arrive in waves (staggered start keeps the first-wave burst from
  // overstating queueing).  User i on segment s lives on node i % 8 and
  // talks to an echo one node over; every fourth user talks to the next
  // segment around the ring instead (25% cross-segment traffic).
  struct User {
    ProcessId pid;
    NodeId node;
  };
  std::vector<User> users;
  users.reserve(segments * kUsersPerSegment);
  const size_t per_wave = kUsersPerSegment / kWaves;
  for (size_t wave = 0; wave < kWaves; ++wave) {
    for (size_t s = 0; s < segments; ++s) {
      for (size_t j = 0; j < per_wave; ++j) {
        const size_t i = wave * per_wave + j;
        const NodeId home = Internet::ProcessingNode(s, i % kNodesPerSegment);
        const bool cross = segments > 1 && i % 4 == 0;
        const size_t target_segment = cross ? (s + 1) % segments : s;
        const ProcessId& echo =
            echoes[target_segment][(i + 1) % kNodesPerSegment];
        auto pinger = net.Spawn(home, "pinger", {Link{echo, 1, 0, 0}});
        if (!pinger.ok()) {
          std::fprintf(stderr, "bench_internetwork: spawn pinger failed: %s\n",
                       pinger.status().ToString().c_str());
          std::exit(1);
        }
        users.push_back(User{*pinger, home});
      }
    }
    net.RunFor(Seconds(5));
  }

  // Drive to completion: every user must see all its pongs.
  auto all_done = [&net, &users]() {
    for (const User& user : users) {
      const auto* p =
          dynamic_cast<const PingerProgram*>(net.kernel(user.node)->ProgramFor(user.pid));
      if (p == nullptr || !p->done()) {
        return false;
      }
    }
    return true;
  };
  for (size_t round = 0; round < 40 && !all_done(); ++round) {
    net.RunFor(Seconds(30));
  }

  SweepResult result;
  result.segments = segments;
  result.users = users.size();
  for (const User& user : users) {
    const auto* p =
        dynamic_cast<const PingerProgram*>(net.kernel(user.node)->ProgramFor(user.pid));
    if (p != nullptr && p->done()) {
      ++result.completed;
    }
  }
  for (size_t g = 0; g < net.gateway_count(); ++g) {
    result.forwarded += net.gateway(g).stats().frames_forwarded;
    result.gateway_drops += net.gateway(g).stats().dropped_queue_full +
                            net.gateway(g).stats().dropped_down;
  }
  // Publish-ack latency per guaranteed data message: first send to the
  // end-to-end acknowledgement, in virtual ms.
  for (const auto& [id, record] : lifecycle.table()) {
    if ((record.flags & kCausalGuaranteed) == 0 ||
        (record.flags & kCausalControl) != 0) {
      continue;
    }
    const SimTime sent = record.FirstTime(LifecycleStage::kSent);
    const SimTime acked = record.FirstTime(LifecycleStage::kAcked);
    if (sent >= 0 && acked >= 0) {
      result.publish_ack_ms.Add(ToMillis(acked - sent));
    }
    ++result.messages;
  }
  oracle.CheckQuiescent();
  result.violations = oracle.total_violations();
  result.oracle_report = oracle.ReportJson();
  net.EnableObservability(Observability{});
  return result;
}

int RunStudy() {
  BenchJson json("internetwork");
  PrintHeader("Internetwork scaling: users vs segments (ring topology)");
  std::printf("  %8s | %7s %9s | %9s %9s | %8s %6s\n", "segments", "users",
              "messages", "p50 ms", "p99 ms", "forwards", "drops");
  PrintRule();

  bool failed = false;
  std::string largest_report;
  for (size_t segments : {1, 2, 4, 8}) {
    SweepResult r = RunSweepPoint(segments);
    std::printf("  %8zu | %7zu %9llu | %9.2f %9.2f | %8llu %6llu%s\n", r.segments,
                r.users, static_cast<unsigned long long>(r.messages),
                r.publish_ack_ms.p50(), r.publish_ack_ms.p99(),
                static_cast<unsigned long long>(r.forwarded),
                static_cast<unsigned long long>(r.gateway_drops),
                r.violations != 0 ? "  <- ORACLE VIOLATIONS" : "");

    const std::string prefix = "s" + std::to_string(r.segments) + ".";
    json.Set(prefix + "segments", static_cast<double>(r.segments));
    json.Set(prefix + "users", static_cast<double>(r.users));
    json.Set(prefix + "completed", static_cast<double>(r.completed));
    json.Set(prefix + "messages", static_cast<double>(r.messages));
    json.Set(prefix + "forwarded_frames", static_cast<double>(r.forwarded));
    json.Set(prefix + "gateway_drops", static_cast<double>(r.gateway_drops));
    json.Set(prefix + "oracle_violations", static_cast<double>(r.violations));
    json.SetStats(prefix + "publish_ack_ms.", r.publish_ack_ms);

    if (r.completed != r.users) {
      std::fprintf(stderr,
                   "bench_internetwork: %zu segments: only %zu/%zu users completed\n",
                   r.segments, r.completed, r.users);
      failed = true;
    }
    if (r.violations != 0) {
      std::fprintf(stderr, "bench_internetwork: %zu segments: oracle report:\n%s\n",
                   r.segments, r.oracle_report.c_str());
      failed = true;
    }
    if (r.segments > 1 && r.forwarded == 0) {
      std::fprintf(stderr,
                   "bench_internetwork: %zu segments but no gateway traffic\n",
                   r.segments);
      failed = true;
    }
    largest_report = r.oracle_report;
  }
  PrintRule();
  std::printf("  per-segment population fixed at %zu users; aggregate capacity\n"
              "  scales with segments while the recorder on each segment only\n"
              "  ever publishes its home traffic.\n\n", kUsersPerSegment);

  json.Write();
  if (std::FILE* file = std::fopen("internetwork_oracle_report.json", "wb")) {
    std::fputs(largest_report.c_str(), file);
    std::fclose(file);
    std::printf("wrote internetwork_oracle_report.json\n");
  } else {
    std::fprintf(stderr, "bench_internetwork: cannot write oracle report\n");
    failed = true;
  }
  return failed ? 1 : 0;
}

// Timing section: the steady-state cost of one cross-segment conversation on
// a small ring, per ping round-trip.
void BM_CrossSegmentPingPong(benchmark::State& state) {
  InternetConfig config;
  config.segments = 2;
  config.nodes_per_segment = 1;
  config.kernel.transport.retransmit_timeout = Seconds(60);
  Internet net(config);
  net.registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  net.registry().Register("pinger",
                          [] { return std::make_unique<PingerProgram>(1u << 30); });
  auto echo = net.Spawn(Internet::ProcessingNode(1, 0), "echo");
  auto pinger = net.Spawn(Internet::ProcessingNode(0, 0), "pinger",
                          {Link{*echo, 1, 0, 0}});
  const NodeId home = Internet::ProcessingNode(0, 0);
  const auto* p =
      dynamic_cast<const PingerProgram*>(net.kernel(home)->ProgramFor(*pinger));
  uint64_t last = p->received();
  for (auto _ : state) {
    while (p->received() == last) {
      net.RunFor(Millis(1));
    }
    last = p->received();
  }
}
BENCHMARK(BM_CrossSegmentPingPong);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  const int status = publishing::RunStudy();
  if (status != 0) {
    return status;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
