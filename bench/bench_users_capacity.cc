// Reproduces the abstract's capacity claim: "The simulation shows that [a]
// recorder, constructed from current technology, can support a system of up
// to 115 users."  Sweeps node count at the mean operating point until a
// subsystem saturates, and reports the binding resource.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/queueing/simulation.h"

namespace publishing {
namespace {

void PrintTables(BenchJson& json) {
  PrintHeader("Recorder capacity at the mean operating point");
  QueueingConfig config;
  config.op = StandardOperatingPoints()[0];
  std::printf("  %5s | %8s %8s %8s | %6s\n", "nodes", "network", "CPU", "disk", "users");
  PrintRule();
  for (size_t nodes = 1; nodes <= 8; ++nodes) {
    config.nodes = nodes;
    AnalyticUtilizations u = ComputeAnalyticUtilizations(config);
    bool saturated = u.network >= 1.0 || u.cpu >= 1.0 || u.disk >= 1.0;
    std::printf("  %5zu | %7.1f%% %7.1f%% %7.1f%% | %6.0f %s\n", nodes, 100 * u.network,
                100 * u.cpu, 100 * u.disk,
                static_cast<double>(nodes) * config.op.users_per_node,
                saturated ? "<- saturated" : "");
  }
  PrintRule();
  CapacityEstimate capacity = EstimateCapacity(config);
  std::printf("  capacity: %zu nodes = %.0f users (binding resource: %s)\n",
              capacity.max_nodes, capacity.max_users, capacity.binding_resource);
  std::printf("  paper   : \"can support a system of up to 115 users\"\n");
  json.Set("max_nodes", static_cast<double>(capacity.max_nodes));
  json.Set("max_users", capacity.max_users);

  // §6.6.1 ablation: not publishing the traffic of non-recoverable processes
  // ("If these processes were not considered recoverable, the recorder would
  // be able to support one more VAX on the network").
  PrintHeader("§6.6.1 ablation: capacity vs non-recoverable traffic fraction");
  std::printf("  %12s | %10s %8s\n", "fraction", "max nodes", "users");
  PrintRule();
  for (double fraction : {0.0, 0.10, 0.15, 0.25, 0.50}) {
    QueueingConfig ablated = config;
    ablated.non_recoverable_fraction = fraction;
    CapacityEstimate c = EstimateCapacity(ablated);
    std::printf("  %11.0f%% | %10zu %8.0f\n", fraction * 100, c.max_nodes, c.max_users);
    json.Set("ablation.users_at_" + std::to_string(static_cast<int>(fraction * 100)) + "pct",
             c.max_users);
  }
  std::printf("\n");
}

void BM_CapacitySearch(benchmark::State& state) {
  QueueingConfig config;
  config.op = StandardOperatingPoints()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateCapacity(config));
  }
}
BENCHMARK(BM_CapacitySearch);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("users_capacity");
  publishing::PrintTables(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
