// Storage engine performance: append throughput with and without group
// commit, rebuild (recovery-scan) time vs log size, and the effect of
// checkpoint-triggered compaction on both.
//
// §5.2.2 argues the publish-time cost must be amortised across messages;
// the group-commit table below is that argument measured: batch size 1 is
// one fsync per record (the naive durable recorder), larger batches share
// one fsync across N records.  The rebuild table bounds recorder restart
// time (§3.3.4) by how fast the on-disk journal replays into StableStorage.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/core/stable_storage.h"
#include "src/core/storage_journal.h"
#include "src/sim/stats.h"
#include "src/storage/recovered_db.h"
#include "src/storage/wal.h"

namespace publishing {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("pub_bench_storage_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// One representative journal record: an AppendMessage with a 256-byte
// payload, roughly a published packet with headers.
Bytes SampleRecord(uint64_t seq) {
  ProcessId pid{NodeId{1}, 42};
  return StorageJournal::EncodeAppendMessage(pid, MessageId{pid, seq}, Bytes(256, 0xab));
}

struct AppendRun {
  double records_per_sec = 0.0;
  double mb_per_sec = 0.0;
  uint64_t syncs = 0;
  StatAccumulator latency_us;
};

AppendRun MeasureAppends(size_t batch, uint64_t records) {
  const std::string dir = FreshDir("append_b" + std::to_string(batch));
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 8u << 20;
  options.group_commit_records = batch;
  auto wal = Wal::Open(options);
  if (!wal.ok()) {
    std::fprintf(stderr, "wal open failed: %s\n", wal.status().message().c_str());
    return {};
  }

  StatAccumulator latency_us;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < records; ++i) {
    const Bytes record = SampleRecord(i);
    const auto t0 = std::chrono::steady_clock::now();
    (void)(*wal)->Append(record, i);
    const auto t1 = std::chrono::steady_clock::now();
    latency_us.Add(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  (void)(*wal)->Sync();
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();

  AppendRun run;
  run.records_per_sec = static_cast<double>(records) / seconds;
  run.mb_per_sec =
      static_cast<double>((*wal)->stats().bytes_appended) / seconds / (1024.0 * 1024.0);
  run.syncs = (*wal)->stats().syncs;
  run.latency_us = latency_us;
  wal->reset();
  fs::remove_all(dir);
  return run;
}

void PrintAppendTable(BenchJson& json) {
  PrintHeader("Storage engine: append throughput vs group-commit batch");
  std::printf("  %-10s %14s %10s %8s %10s %10s\n", "batch", "records/s", "MB/s", "fsyncs",
              "p50 (us)", "p99 (us)");
  PrintRule();
  constexpr uint64_t kRecords = 20000;
  for (size_t batch : {size_t{1}, size_t{8}, size_t{64}, size_t{256}}) {
    AppendRun run = MeasureAppends(batch, kRecords);
    std::printf("  %-10zu %14.0f %10.1f %8llu %10.1f %10.1f\n", batch, run.records_per_sec,
                run.mb_per_sec, static_cast<unsigned long long>(run.syncs),
                run.latency_us.p50(), run.latency_us.p99());
    const std::string prefix = "append.batch" + std::to_string(batch) + ".";
    json.Set(prefix + "records_per_sec", run.records_per_sec);
    json.Set(prefix + "mb_per_sec", run.mb_per_sec);
    json.SetStats(prefix + "latency_us.", run.latency_us);
  }
  PrintRule();
  std::printf("  batch 1 = no group commit (one fsync per record); larger batches\n");
  std::printf("  amortise the sync, which is the entire gap between the rows.\n");
}

// Fills a log with `messages` journaled appends through a real StableStorage
// (so the rebuild replays genuine records), optionally compacting at the
// end, then times RecoverStableStorage.
void PrintRebuildTable(BenchJson& json) {
  PrintHeader("Storage engine: rebuild time vs log size");
  std::printf("  %-10s %12s %10s %12s %12s\n", "messages", "log bytes", "compact", "records",
              "rebuild ms");
  PrintRule();
  for (uint64_t messages : {uint64_t{2000}, uint64_t{10000}, uint64_t{50000}}) {
    for (bool compacted : {false, true}) {
      const std::string dir = FreshDir("rebuild");
      {
        WalOptions options;
        options.dir = dir;
        options.segment_bytes = 4u << 20;
        options.group_commit_records = 64;
        auto wal = Wal::Open(options);
        if (!wal.ok()) {
          continue;
        }
        StableStorage db;
        db.AttachBackend(wal->get());
        ProcessId pid{NodeId{1}, 7};
        db.RecordCreation(pid, "bench", {}, NodeId{1});
        for (uint64_t i = 1; i <= messages; ++i) {
          db.AppendMessage(pid, MessageId{pid, i}, Bytes(256, 0x5a));
        }
        if (compacted) {
          // A checkpoint subsumes the whole log; compaction rewrites the
          // (small) live image and deletes the message tail.
          db.StoreCheckpoint(pid, Bytes(1024, 0x11), messages);
          (*wal)->CompactNow();
        }
        (void)db.Flush();
      }
      RecoveryReport report;
      const auto t0 = std::chrono::steady_clock::now();
      auto recovered = RecoverStableStorage(dir, &report);
      const auto t1 = std::chrono::steady_clock::now();
      if (!recovered.ok()) {
        continue;
      }
      size_t log_bytes = 0;
      for (const auto& entry : fs::directory_iterator(dir)) {
        log_bytes += fs::file_size(entry.path());
      }
      const double rebuild_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      std::printf("  %-10llu %12zu %10s %12llu %12.2f\n",
                  static_cast<unsigned long long>(messages), log_bytes,
                  compacted ? "yes" : "no",
                  static_cast<unsigned long long>(report.records_applied),
                  rebuild_ms);
      const std::string prefix = "rebuild.msgs" + std::to_string(messages) +
                                 (compacted ? ".compacted." : ".raw.");
      json.Set(prefix + "log_bytes", static_cast<double>(log_bytes));
      json.Set(prefix + "rebuild_ms", rebuild_ms);
      fs::remove_all(dir);
    }
  }
  PrintRule();
  std::printf("  compaction replaces the message tail with the live image, so the\n");
  std::printf("  rebuild cost tracks live state, not log history (§5.1).\n");
}

void BM_WalAppend(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const std::string dir = FreshDir("bm_b" + std::to_string(batch));
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 8u << 20;
  options.group_commit_records = batch;
  auto wal = Wal::Open(options);
  if (!wal.ok()) {
    state.SkipWithError("wal open failed");
    return;
  }
  const Bytes record = SampleRecord(1);
  uint64_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*wal)->Append(record, ++now));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * record.size()));
  wal->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_Rebuild(benchmark::State& state) {
  const uint64_t messages = static_cast<uint64_t>(state.range(0));
  const std::string dir = FreshDir("bm_rebuild");
  {
    WalOptions options;
    options.dir = dir;
    options.group_commit_records = 64;
    auto wal = Wal::Open(options);
    if (!wal.ok()) {
      state.SkipWithError("wal open failed");
      return;
    }
    StableStorage db;
    db.AttachBackend(wal->get());
    ProcessId pid{NodeId{1}, 7};
    db.RecordCreation(pid, "bench", {}, NodeId{1});
    for (uint64_t i = 1; i <= messages; ++i) {
      db.AppendMessage(pid, MessageId{pid, i}, Bytes(256, 0x5a));
    }
    (void)db.Flush();
  }
  for (auto _ : state) {
    auto recovered = RecoverStableStorage(dir);
    benchmark::DoNotOptimize(recovered.ok());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_Rebuild)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("storage_engine");
  publishing::PrintAppendTable(json);
  publishing::PrintRebuildTable(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
