// Reproduces §5.2.2: Publishing time for messages — the per-message CPU cost
// at the recorder for the three interception depths the thesis discusses:
//   57 ms  unmodified DEMOS/MP kernel as recorder software,
//   12 ms  after replacing subroutine calls with inline routines,
//   0.8 ms the design goal, intercepting at the media layer.
//
// Runs the same traffic through the full stack once per path and reports the
// recorder's accumulated publish CPU per message, plus the recorder CPU
// utilization each path would imply at the mean operating point.

#include <benchmark/benchmark.h>

#include <iterator>

#include "bench/bench_util.h"
#include "src/core/publishing_system.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

double MeasurePublishCpuMs(PublishPath path) {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  config.recorder.path = path;
  config.start_recovery_manager = false;
  PublishingSystem system(config);
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(100); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  system.RunFor(Seconds(120));

  const RecorderStats& stats = system.recorder().stats();
  if (stats.messages_published == 0) {
    return 0.0;
  }
  return ToMillis(stats.publish_cpu) / static_cast<double>(stats.messages_published);
}

void PrintTables(BenchJson& json) {
  PrintHeader("§5.2.2: Publishing time for messages (recorder CPU per message)");
  std::printf("  %-34s %14s %16s\n", "interception path", "measured (ms)", "paper (ms)");
  PrintRule();
  struct Row {
    PublishPath path;
    const char* name;
    double paper_ms;
  };
  const Row rows[] = {
      {PublishPath::kFullProtocol, "full protocol stack (naive)", 57.0},
      {PublishPath::kInlined, "inlined routines", 12.0},
      {PublishPath::kMediaLayer, "media-layer interception (goal)", 0.8},
  };
  const char* keys[] = {"publish_ms.full_protocol", "publish_ms.inlined",
                        "publish_ms.media_layer"};
  for (size_t i = 0; i < std::size(rows); ++i) {
    const double measured = MeasurePublishCpuMs(rows[i].path);
    std::printf("  %-34s %14.2f %16.1f\n", rows[i].name, measured, rows[i].paper_ms);
    json.Set(keys[i], measured);
    json.Set(std::string(keys[i]) + ".paper", rows[i].paper_ms);
  }
  PrintRule();
  // What each path means for recorder viability at the queueing model's
  // packet rates: at 0.8 ms the recorder keeps up with 5 nodes; at 57 ms it
  // cannot even keep up with one.
  std::printf("  implied recorder capacity (packets/s): naive %.0f, inlined %.0f, media %.0f\n\n",
              1000.0 / 57.0, 1000.0 / 12.0, 1000.0 / 0.8);
}

void BM_PublishMediaLayer(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasurePublishCpuMs(PublishPath::kMediaLayer));
  }
}
BENCHMARK(BM_PublishMediaLayer)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("sec5_2_2_publish_time");
  publishing::PrintTables(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
