// Ablation of checkpoint intervals against Young's first-order optimum
// (§3.2.4): T_interval = sqrt(2 * T_save * T_mtbf).
//
// Prints the optimum for a range of checkpoint costs and failure rates, and
// the expected overhead curve around the optimum, showing the minimum falls
// where Young predicts.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/recovery_time_model.h"

namespace publishing {
namespace {

void PrintOptimaTable(BenchJson& json) {
  PrintHeader("Young's optimal checkpoint interval: sqrt(2 * T_save * T_mtbf)");
  std::printf("  %14s %14s %18s\n", "T_save", "T_mtbf", "optimal interval");
  PrintRule();
  struct Case {
    SimDuration save;
    SimDuration mtbf;
  };
  const Case cases[] = {
      {Millis(50), Seconds(60)},
      {Millis(50), Seconds(600)},
      {Millis(500), Seconds(60)},
      {Millis(500), Seconds(3600)},
      {Seconds(2), Seconds(3600)},
  };
  for (const Case& c : cases) {
    const double optimal_s = ToSeconds(YoungOptimalInterval(c.save, c.mtbf));
    std::printf("  %11.0f ms %11.0f s %15.1f s\n", ToMillis(c.save), ToSeconds(c.mtbf),
                optimal_s);
    json.Set("optimal_s.save" + std::to_string(static_cast<int>(ToMillis(c.save))) +
                 "ms_mtbf" + std::to_string(static_cast<int>(ToSeconds(c.mtbf))) + "s",
             optimal_s);
  }
  std::printf("\n");
}

void PrintOverheadCurve(BenchJson& json) {
  PrintHeader("Expected overhead fraction vs interval (T_save=500ms, MTBF=600s)");
  const SimDuration save = Millis(500);
  const SimDuration mtbf = Seconds(600);
  const SimDuration young = YoungOptimalInterval(save, mtbf);
  std::printf("  Young optimum: %.1f s\n", ToSeconds(young));
  std::printf("  %16s %20s\n", "interval (s)", "overhead fraction");
  PrintRule();
  double best = 1e9;
  double best_interval = 0;
  for (double factor : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    SimDuration interval = static_cast<SimDuration>(static_cast<double>(young) * factor);
    double overhead = YoungExpectedOverheadFraction(interval, save, mtbf);
    if (overhead < best) {
      best = overhead;
      best_interval = ToSeconds(interval);
    }
    std::printf("  %16.1f %19.4f%s\n", ToSeconds(interval), overhead,
                factor == 1.0 ? "   <- Young" : "");
  }
  PrintRule();
  std::printf("  minimum of the sampled curve at %.1f s (Young: %.1f s)\n\n", best_interval,
              ToSeconds(young));
  json.Set("young_optimum_s", ToSeconds(young));
  json.Set("sampled_minimum_s", best_interval);
  json.Set("overhead_at_optimum", YoungExpectedOverheadFraction(young, save, mtbf));
}

void BM_YoungInterval(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(YoungOptimalInterval(Millis(500), Seconds(600)));
  }
}
BENCHMARK(BM_YoungInterval);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("young_interval");
  publishing::PrintOptimaTable(json);
  publishing::PrintOverheadCurve(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
