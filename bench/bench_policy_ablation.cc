// Ablation of checkpoint policies on the live system (§3.2.4, §5.1).
//
// Same workload, same crash schedule, five policies: no checkpoints, two
// fixed intervals bracketing the optimum, Young's interval, and the
// storage-balanced policy of the queuing study.  Reports checkpoint traffic
// against recovery latency — the trade the policies navigate ("a suboptimum
// choice of checkpointing frequency will yield less than optimum
// performance, but it will not affect the recoverability", §3.3.1).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/publishing_system.h"
#include "tests/test_programs.h"

namespace publishing {
namespace {

struct AblationResult {
  uint64_t checkpoints = 0;
  uint64_t checkpoint_bytes = 0;
  double mean_recovery_ms = 0.0;
  double completion_s = 0.0;
  bool finished = false;
};

constexpr uint64_t kPings = 400;
constexpr int kCrashes = 4;

AblationResult RunPolicy(std::unique_ptr<CheckpointPolicy> policy, const char* /*name*/) {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  config.cluster.seed = 23;
  PublishingSystem system(config);
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(kPings); });
  if (policy != nullptr) {
    system.EnableCheckpointPolicy(std::move(policy), Millis(50));
  }

  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});

  StatAccumulator recovery_ms;
  for (int crash = 0; crash < kCrashes; ++crash) {
    system.RunFor(Millis(220));
    const SimTime crash_at = system.sim().Now();
    if (system.CrashProcess(*echo).ok() && system.RunUntilRecovered(*echo, Seconds(600))) {
      recovery_ms.Add(ToMillis(system.sim().Now() - crash_at));
    }
  }
  const SimTime start_tail = system.sim().Now();
  (void)start_tail;
  system.RunFor(Seconds(600));

  AblationResult result;
  const auto* p =
      dynamic_cast<const PingerProgram*>(system.cluster().kernel(NodeId{1})->ProgramFor(*pinger));
  result.finished = p != nullptr && p->received() == kPings;
  result.checkpoints = system.recorder().stats().checkpoints_stored;
  auto info = system.storage().Info(*echo);
  result.checkpoint_bytes =
      system.recorder().stats().checkpoints_stored * (info.ok() ? info->checkpoint_bytes : 0);
  result.mean_recovery_ms = recovery_ms.mean();
  result.completion_s = ToSeconds(system.sim().Now());
  return result;
}

void PrintTables(BenchJson& json) {
  PrintHeader("Checkpoint-policy ablation: 400-ping workload, 4 server crashes");
  std::printf("  %-24s %12s %16s %14s %10s\n", "policy", "checkpoints", "recovery (ms)",
              "finished", "");
  PrintRule();
  struct Row {
    const char* name;
    const char* key;
    std::function<std::unique_ptr<CheckpointPolicy>()> make;
  };
  const Row rows[] = {
      {"none (image replay)", "none", [] { return std::unique_ptr<CheckpointPolicy>(); }},
      {"fixed 50 ms (eager)", "fixed_50ms",
       [] { return std::make_unique<FixedIntervalPolicy>(Millis(50)); }},
      {"fixed 2 s (lazy)", "fixed_2s",
       [] { return std::make_unique<FixedIntervalPolicy>(Seconds(2)); }},
      {"young (Ts=20ms, Tf=220ms)", "young",
       [] { return std::make_unique<YoungPolicy>(Millis(20), Millis(220)); }},
      {"storage-balanced", "storage_balanced",
       [] { return std::make_unique<StorageBalancedPolicy>(); }},
  };
  for (const Row& row : rows) {
    AblationResult result = RunPolicy(row.make(), row.name);
    std::printf("  %-24s %12llu %16.1f %14s\n", row.name,
                static_cast<unsigned long long>(result.checkpoints), result.mean_recovery_ms,
                result.finished ? "yes" : "NO");
    const std::string prefix(row.key);
    json.Set(prefix + ".checkpoints", static_cast<double>(result.checkpoints));
    json.Set(prefix + ".mean_recovery_ms", result.mean_recovery_ms);
    json.Set(prefix + ".finished", result.finished ? 1.0 : 0.0);
  }
  PrintRule();
  std::printf("  shape: more checkpoints -> shorter replay -> faster recovery, at the\n"
              "  cost of checkpoint traffic; every policy preserves recoverability.\n\n");
}

void BM_PolicyAblationYoung(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunPolicy(std::make_unique<YoungPolicy>(Millis(20), Millis(220)), "young"));
  }
}
BENCHMARK(BM_PolicyAblationYoung)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("policy_ablation");
  publishing::PrintTables(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
