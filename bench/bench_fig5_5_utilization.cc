// Reproduces Figure 5.5: Percent Utilization of System Components — disk,
// recorder-node CPU, and network utilization for 1–5 processing nodes and
// 1–3 disks, at each operating point, from the discrete-event solution of
// the Figure 5.1 open queuing model.  Also reprints the two §5.1 saturation
// findings (unbuffered-disk saturation at the max long-message rate, and
// whole-system saturation beyond 3 nodes at the max system-call rate).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/queueing/simulation.h"

namespace publishing {
namespace {

QueueingConfig MakeConfig(const OperatingPoint& op, size_t nodes, size_t disks) {
  QueueingConfig config;
  config.op = op;
  config.nodes = nodes;
  config.disks = disks;
  config.duration = Seconds(60);
  config.seed = 99;
  return config;
}

void PrintUtilizationSeries(BenchJson& json) {
  for (const OperatingPoint& op : StandardOperatingPoints()) {
    PrintHeader("Figure 5.5 @ operating point '" + op.name + "'");
    std::printf("  %5s | %8s %8s | %28s\n", "nodes", "network", "CPU", "disk (1 / 2 / 3 disks)");
    PrintRule();
    for (size_t nodes = 1; nodes <= 5; ++nodes) {
      double disk_util[3] = {0, 0, 0};
      QueueingResult base;
      for (size_t disks = 1; disks <= 3; ++disks) {
        QueueingResult result = RunQueueingSimulation(MakeConfig(op, nodes, disks));
        disk_util[disks - 1] = result.disk_utilization;
        if (disks == 1) {
          base = result;
        }
      }
      std::printf("  %5zu | %7.1f%% %7.1f%% | %8.1f%% %8.1f%% %8.1f%%\n", nodes,
                  100 * base.network_utilization, 100 * base.cpu_utilization,
                  100 * disk_util[0], 100 * disk_util[1], 100 * disk_util[2]);
      const std::string prefix = op.name + ".nodes" + std::to_string(nodes) + ".";
      json.Set(prefix + "network_utilization", base.network_utilization);
      json.Set(prefix + "cpu_utilization", base.cpu_utilization);
      json.Set(prefix + "disk_utilization_1disk", disk_util[0]);
    }
  }
}

void PrintSaturationFindings(BenchJson& json) {
  PrintHeader("§5.1 saturation findings");

  // Finding 1: at the max long-message rate, one-write-per-message
  // saturates the disk; 4 KB buffering removes the saturation.
  QueueingConfig disk_point = MakeConfig(StandardOperatingPoints()[4], 5, 1);
  disk_point.buffered_writes = false;
  AnalyticUtilizations unbuffered = ComputeAnalyticUtilizations(disk_point);
  disk_point.buffered_writes = true;
  AnalyticUtilizations buffered = ComputeAnalyticUtilizations(disk_point);
  std::printf("  max-disk-rate, 5 nodes, 1 disk:\n");
  std::printf("    one disk write per message : disk %.0f%%  (saturated: %s)\n",
              100 * unbuffered.disk, unbuffered.disk >= 1.0 ? "yes" : "no");
  std::printf("    4 KB write buffering       : disk %.0f%%  (saturated: %s)\n",
              100 * buffered.disk, buffered.disk >= 1.0 ? "yes" : "no");

  // Finding 2: the max system-call point saturates past 3 nodes.
  std::printf("  max-syscall-rate, 1 disk:\n");
  for (size_t nodes = 3; nodes <= 4; ++nodes) {
    AnalyticUtilizations u =
        ComputeAnalyticUtilizations(MakeConfig(StandardOperatingPoints()[3], nodes, 1));
    std::printf("    %zu nodes: network %.0f%%, CPU %.0f%%  (saturated: %s)\n", nodes,
                100 * u.network, 100 * u.cpu,
                (u.network >= 1.0 || u.cpu >= 1.0) ? "yes" : "no");
  }

  // Storage and buffering headroom (§5.1 closing numbers).
  QueueingResult mean = RunQueueingSimulation(MakeConfig(StandardOperatingPoints()[1], 5, 1));
  std::printf("  worst-case observed (max-load point, 5 nodes):\n");
  std::printf("    peak recorder buffering    : %.1f KB   (paper: at most 28 KB)\n",
              static_cast<double>(mean.peak_recorder_buffer_bytes) / 1024.0);
  std::printf("    peak checkpoint+log storage: %.2f MB   (paper: 2.76 MB worst case)\n",
              static_cast<double>(mean.peak_storage_bytes) / (1024.0 * 1024.0));
  std::printf("    mean checkpoint interval   : %.1f s    (paper: 1 s ... 2 min)\n\n",
              mean.mean_checkpoint_interval_s);
  json.Set("saturation.disk_unbuffered", unbuffered.disk);
  json.Set("saturation.disk_buffered", buffered.disk);
  json.Set("peak_recorder_buffer_bytes",
           static_cast<double>(mean.peak_recorder_buffer_bytes));
  json.Set("peak_storage_bytes", static_cast<double>(mean.peak_storage_bytes));
  json.Set("mean_checkpoint_interval_s", mean.mean_checkpoint_interval_s);
}

void BM_QueueingSimulation5Nodes(benchmark::State& state) {
  for (auto _ : state) {
    QueueingConfig config = MakeConfig(StandardOperatingPoints()[0], 5, 1);
    config.duration = Seconds(10);
    benchmark::DoNotOptimize(RunQueueingSimulation(config));
  }
}
BENCHMARK(BM_QueueingSimulation5Nodes)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace publishing

int main(int argc, char** argv) {
  publishing::BenchJson json("fig5_5_utilization");
  publishing::PrintUtilizationSeries(json);
  publishing::PrintSaturationFindings(json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
