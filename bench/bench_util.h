// Shared table-printing helpers for the reproduction benches.  Each bench
// binary prints the paper-style table(s) it regenerates, then runs its
// google-benchmark timing section.  BenchJson additionally persists headline
// numbers as BENCH_<name>.json in the working directory, so CI and plotting
// scripts can diff runs without scraping the tables.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "src/sim/stats.h"

namespace publishing {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

// Machine-readable bench output: collect named scalar results, then write
// them as a flat JSON object to BENCH_<name>.json.  Keys serialize in sorted
// (map) order, so identical results produce identical files.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Set(const std::string& key, double value) { values_[key] = value; }

  // Expands one sample distribution into the standard summary keys
  // (`<prefix>count`, `sum`, `mean`, `min`, `max`, `p50`, `p99`), matching
  // the stats shape the metrics registry exports — one schema for both.
  void SetStats(const std::string& prefix, const StatAccumulator& stats) {
    Set(prefix + "count", static_cast<double>(stats.count()));
    Set(prefix + "sum", stats.sum());
    Set(prefix + "mean", stats.mean());
    Set(prefix + "min", stats.min());
    Set(prefix + "max", stats.max());
    Set(prefix + "p50", stats.p50());
    Set(prefix + "p99", stats.p99());
  }

  // Writes BENCH_<name>.json into the current directory.  Returns false (and
  // complains on stderr) if the file cannot be written.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(file, "{\n  \"bench\": \"%s\"", name_.c_str());
    for (const auto& [key, value] : values_) {
      if (std::isnan(value) || std::isinf(value)) {
        std::fprintf(file, ",\n  \"%s\": 0", key.c_str());
      } else if (value == static_cast<double>(static_cast<long long>(value))) {
        std::fprintf(file, ",\n  \"%s\": %lld", key.c_str(),
                     static_cast<long long>(value));
      } else {
        std::fprintf(file, ",\n  \"%s\": %.17g", key.c_str(), value);
      }
    }
    std::fprintf(file, "\n}\n");
    std::fclose(file);
    std::printf("wrote %s (%zu values)\n", path.c_str(), values_.size());
    return true;
  }

 private:
  std::string name_;
  std::map<std::string, double> values_;
};

}  // namespace publishing

#endif  // BENCH_BENCH_UTIL_H_
