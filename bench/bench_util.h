// Shared table-printing helpers for the reproduction benches.  Each bench
// binary prints the paper-style table(s) it regenerates, then runs its
// google-benchmark timing section.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace publishing {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace publishing

#endif  // BENCH_BENCH_UTIL_H_
