// Durable restart: the recorder's database survives total destruction.
//
// §4.5: "it is possible to rebuild the data base from the disk."  This
// example runs a publishing system whose recorder journals every database
// mutation through a write-ahead log, then destroys the ENTIRE system —
// recorder, kernels, processes, all volatile state.  Only the segment files
// on disk remain.  A second incarnation rebuilds StableStorage by scanning
// those segments, adopts it, restarts the recorder, and lets the §3.3.4
// restart protocol recover every process: the fresh kernels answer the
// state queries with "unknown", which mandates recreation, checkpoint
// restore, and ordered replay.  The workload then finishes exactly-once.
//
//   $ ./durable_restart

#include <cstdio>
#include <filesystem>

#include "src/common/logging.h"
#include "src/core/publishing_system.h"
#include "src/storage/recovered_db.h"
#include "src/storage/wal.h"
#include "tests/test_programs.h"

using namespace publishing;

namespace {
namespace fs = std::filesystem;

constexpr uint64_t kPings = 40;

PublishingSystemConfig BaseConfig() {
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  config.cluster.seed = 7;
  return config;
}

void RegisterPrograms(PublishingSystem& system) {
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(kPings); });
}
}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  const fs::path dir = fs::temp_directory_path() / "pub_example_durable_restart";
  fs::remove_all(dir);

  ProcessId echo_pid, pinger_pid;
  uint64_t pings_before = 0;

  // --- Incarnation 1: durable mode, then total destruction ----------------
  {
    WalOptions options;
    options.dir = dir.string();
    options.group_commit_records = 8;
    auto wal = Wal::Open(options);
    if (!wal.ok()) {
      std::printf("failed to open WAL: %s\n", wal.status().message().c_str());
      return 1;
    }

    auto config = BaseConfig();
    config.storage_backend = wal->get();
    PublishingSystem system(config);
    RegisterPrograms(system);
    auto echo = system.cluster().Spawn(NodeId{2}, "echo");
    auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 7, 0}});
    echo_pid = *echo;
    pinger_pid = *pinger;

    system.RunFor(Millis(120));
    const auto* p = dynamic_cast<const PingerProgram*>(
        system.cluster().kernel(NodeId{1})->ProgramFor(pinger_pid));
    pings_before = p->received();
    if (pings_before == 0 || pings_before >= kPings) {
      std::printf("workload must be mid-run at teardown (got %llu pings)\n",
                  static_cast<unsigned long long>(pings_before));
      return 1;
    }
    if (!system.storage().Flush().ok()) {
      std::printf("flush failed\n");
      return 1;
    }
    std::printf("incarnation 1: %llu/%llu pings done, %zu bytes in %zu segment(s)\n",
                static_cast<unsigned long long>(pings_before),
                static_cast<unsigned long long>(kPings), (*wal)->TotalBytes(),
                (*wal)->SegmentCount());
    // Scope exit destroys the system AND the WAL.  Only the files remain.
  }

  // --- Rebuild from the segment files alone -------------------------------
  RecoveryReport report;
  auto recovered = RecoverStableStorage(dir.string(), &report);
  if (!recovered.ok()) {
    std::printf("rebuild failed: %s\n", recovered.status().message().c_str());
    return 1;
  }
  std::printf("rebuilt database: %llu records over %llu segment(s), knows %zu processes\n",
              static_cast<unsigned long long>(report.records_applied),
              static_cast<unsigned long long>(report.segments_scanned),
              recovered->AllProcesses().size());
  if (!recovered->Knows(echo_pid) || !recovered->Knows(pinger_pid)) {
    std::printf("rebuilt database is missing processes\n");
    return 1;
  }

  // --- Incarnation 2: adopt, restart the recorder, finish the run ---------
  WalOptions reopen;
  reopen.dir = dir.string();
  reopen.group_commit_records = 8;
  auto wal = Wal::Open(reopen);
  if (!wal.ok()) {
    std::printf("failed to reopen WAL: %s\n", wal.status().message().c_str());
    return 1;
  }
  auto config = BaseConfig();
  config.adopt_storage = &*recovered;
  config.storage_backend = wal->get();
  PublishingSystem system(config);
  RegisterPrograms(system);

  system.CrashRecorder();
  system.RestartRecorder();  // §3.3.4: queries every node about every process.
  system.RunFor(Seconds(240));

  const auto* p = dynamic_cast<const PingerProgram*>(
      system.cluster().kernel(NodeId{1})->ProgramFor(pinger_pid));
  const auto* e = dynamic_cast<const EchoProgram*>(
      system.cluster().kernel(NodeId{2})->ProgramFor(echo_pid));
  if (p == nullptr || e == nullptr) {
    std::printf("processes were not recreated by recovery\n");
    return 1;
  }
  std::printf("incarnation 2: pinger %llu sent / %llu received, echo echoed %llu\n",
              static_cast<unsigned long long>(p->sent()),
              static_cast<unsigned long long>(p->received()),
              static_cast<unsigned long long>(e->echoed()));
  if (p->sent() != kPings || p->received() != kPings || e->echoed() != kPings) {
    std::printf("FAILED: workload did not finish exactly-once after the rebuild\n");
    return 1;
  }
  std::printf("OK: full workload completed from the rebuilt database\n");
  fs::remove_all(dir);
  return 0;
}
