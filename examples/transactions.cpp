// Transactions over published communications (§6.4).
//
// "With publishing, the transaction semantics remain the same.  However,
// there is no need to store intentions and transaction state in stable
// store.  When a crashed process recovers, its intentions and transaction
// state will be rebuilt along with the rest of the process state."
//
// A coordinator runs two-phase transfers between account servers on
// different nodes.  Intentions and commit state live ONLY in ordinary
// process state — no per-node stable storage.  We crash the coordinator in
// the middle of the stream and one account server too; publishing rebuilds
// the in-flight transaction and every transfer commits exactly once, with
// money conserved.
//
//   $ ./transactions

#include <cstdio>

#include "src/common/logging.h"
#include "src/core/publishing_system.h"

using namespace publishing;

namespace {

constexpr uint16_t kAccountChannel = 1;
constexpr uint16_t kCoordChannel = 2;
constexpr int64_t kInitialBalance = 1000;
constexpr uint64_t kTransfers = 20;

enum TxOp : uint8_t { kPrepare = 1, kPrepared = 2, kCommit = 3, kCommitted = 4 };

// Holds one account.  Prepared amounts sit in an intentions list (ordinary
// state) until commit.
class AccountProgram : public UserProgram {
 public:
  void OnStart(KernelApi& api) override { (void)api; }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    if (msg.channel != kAccountChannel) {
      return;
    }
    Reader r(std::span<const uint8_t>(msg.body.data(), msg.body.size()));
    const uint8_t op = *r.ReadU8();
    const uint64_t txn = *r.ReadU64();
    const int64_t amount = *r.ReadI64();
    switch (static_cast<TxOp>(op)) {
      case kPrepare: {
        intentions_[txn] = amount;
        if (msg.passed_link.IsValid()) {
          Writer w;
          w.WriteU8(kPrepared);
          w.WriteU64(txn);
          w.WriteI64(amount);
          api.Send(msg.passed_link, w.TakeBytes());
        }
        break;
      }
      case kCommit: {
        auto it = intentions_.find(txn);
        if (it != intentions_.end()) {
          balance_ += it->second;
          ++committed_;
          intentions_.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }

  void SaveState(Writer& w) const override {
    w.WriteI64(balance_);
    w.WriteU64(committed_);
    w.WriteU32(static_cast<uint32_t>(intentions_.size()));
    for (const auto& [txn, amount] : intentions_) {
      w.WriteU64(txn);
      w.WriteI64(amount);
    }
  }
  Status LoadState(Reader& r) override {
    balance_ = *r.ReadI64();
    committed_ = *r.ReadU64();
    const uint32_t n = *r.ReadU32();
    intentions_.clear();
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t txn = *r.ReadU64();
      intentions_[txn] = *r.ReadI64();
    }
    return Status::Ok();
  }

  int64_t balance() const { return balance_; }
  uint64_t committed() const { return committed_; }
  size_t pending_intentions() const { return intentions_.size(); }

 private:
  int64_t balance_ = kInitialBalance;
  uint64_t committed_ = 0;
  std::map<uint64_t, int64_t> intentions_;
};

// Two-phase coordinator.  Initial links: 1 = account A, 2 = account B.
class CoordinatorProgram : public UserProgram {
 public:
  static constexpr uint32_t kAccountA = 1;
  static constexpr uint32_t kAccountB = 2;

  void OnStart(KernelApi& api) override { BeginNext(api); }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    if (msg.channel != kCoordChannel) {
      return;
    }
    Reader r(std::span<const uint8_t>(msg.body.data(), msg.body.size()));
    const uint8_t op = *r.ReadU8();
    const uint64_t txn = *r.ReadU64();
    if (op != kPrepared || txn != current_txn_) {
      return;
    }
    if (++prepared_votes_ < 2) {
      return;
    }
    // Both sides stored their intentions: commit.
    for (uint32_t link : {kAccountA, kAccountB}) {
      Writer w;
      w.WriteU8(kCommit);
      w.WriteU64(txn);
      w.WriteI64(0);
      api.Send(LinkId{link}, w.TakeBytes());
    }
    ++committed_;
    if (committed_ < kTransfers) {
      BeginNext(api);
    }
  }

  void SaveState(Writer& w) const override {
    w.WriteU64(current_txn_);
    w.WriteU64(prepared_votes_);
    w.WriteU64(committed_);
  }
  Status LoadState(Reader& r) override {
    current_txn_ = *r.ReadU64();
    prepared_votes_ = *r.ReadU64();
    committed_ = *r.ReadU64();
    return Status::Ok();
  }

  uint64_t committed() const { return committed_; }

 private:
  void BeginNext(KernelApi& api) {
    current_txn_ = committed_ + 1;
    prepared_votes_ = 0;
    const int64_t amount = 5 + static_cast<int64_t>(current_txn_ % 7);
    // Debit A, credit B.
    SendPrepare(api, kAccountA, -amount);
    SendPrepare(api, kAccountB, amount);
  }

  void SendPrepare(KernelApi& api, uint32_t link, int64_t amount) {
    auto reply = api.CreateLink(kCoordChannel, 0);
    Writer w;
    w.WriteU8(kPrepare);
    w.WriteU64(current_txn_);
    w.WriteI64(amount);
    api.Send(LinkId{link}, w.TakeBytes(), *reply);
  }

  uint64_t current_txn_ = 0;
  uint64_t prepared_votes_ = 0;
  uint64_t committed_ = 0;
};

}  // namespace

int main() {
  SetLogLevel(LogLevel::kInfo);

  PublishingSystemConfig config;
  config.cluster.node_count = 3;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);
  system.EnableCheckpointPolicy(std::make_unique<StorageBalancedPolicy>());
  auto& registry = system.cluster().registry();
  registry.Register("account", [] { return std::make_unique<AccountProgram>(); });
  registry.Register("coordinator", [] { return std::make_unique<CoordinatorProgram>(); });

  auto account_a = system.cluster().Spawn(NodeId{2}, "account");
  auto account_b = system.cluster().Spawn(NodeId{3}, "account");
  auto coordinator = system.cluster().Spawn(
      NodeId{1}, "coordinator",
      {Link{*account_a, kAccountChannel, 0, 0}, Link{*account_b, kAccountChannel, 0, 0}});

  std::printf("running %llu two-phase transfers A->B, intentions in process state only\n",
              static_cast<unsigned long long>(kTransfers));

  system.RunFor(Millis(120));
  std::printf("\n--- crashing the coordinator mid-transaction ---\n");
  system.CrashProcess(*coordinator);
  system.RunUntilRecovered(*coordinator, Seconds(120));

  system.RunFor(Millis(150));
  std::printf("--- crashing account server B ---\n\n");
  system.CrashProcess(*account_b);
  system.RunUntilRecovered(*account_b, Seconds(120));
  system.RunFor(Seconds(300));

  const auto* a = dynamic_cast<const AccountProgram*>(
      system.cluster().kernel(NodeId{2})->ProgramFor(*account_a));
  const auto* b = dynamic_cast<const AccountProgram*>(
      system.cluster().kernel(NodeId{3})->ProgramFor(*account_b));
  const auto* coord = dynamic_cast<const CoordinatorProgram*>(
      system.cluster().kernel(NodeId{1})->ProgramFor(*coordinator));

  const int64_t total = a->balance() + b->balance();
  std::printf("balances: A=%lld  B=%lld  total=%lld (expected %lld)\n",
              static_cast<long long>(a->balance()), static_cast<long long>(b->balance()),
              static_cast<long long>(total), static_cast<long long>(2 * kInitialBalance));
  std::printf("commits : coordinator=%llu  A=%llu  B=%llu  (expected %llu each)\n",
              static_cast<unsigned long long>(coord->committed()),
              static_cast<unsigned long long>(a->committed()),
              static_cast<unsigned long long>(b->committed()),
              static_cast<unsigned long long>(kTransfers));
  std::printf("pending intentions after quiesce: A=%zu B=%zu\n", a->pending_intentions(),
              b->pending_intentions());

  const bool ok = total == 2 * kInitialBalance && coord->committed() == kTransfers &&
                  a->committed() == kTransfers && b->committed() == kTransfers &&
                  a->pending_intentions() == 0 && b->pending_intentions() == 0;
  std::printf("%s\n", ok ? "TRANSACTIONS OK" : "TRANSACTIONS FAILED");
  return ok ? 0 : 1;
}
